// Unit tests for the shared tokenizer.

#include <gtest/gtest.h>

#include "src/idl/lexer.h"

namespace flexrpc {
namespace {

std::vector<Token> Lex(std::string_view src, DiagnosticSink* diags) {
  return Tokenize(src, "test.idl", diags);
}

TEST(LexerTest, EmptyInputYieldsEof) {
  DiagnosticSink diags;
  auto tokens = Lex("", &diags);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, IdentifiersAndPunct) {
  DiagnosticSink diags;
  auto tokens = Lex("interface Foo { void f(); };", &diags);
  EXPECT_FALSE(diags.HasErrors());
  ASSERT_GE(tokens.size(), 11u);
  EXPECT_TRUE(tokens[0].IsIdent("interface"));
  EXPECT_TRUE(tokens[1].IsIdent("Foo"));
  EXPECT_EQ(tokens[2].kind, TokenKind::kLBrace);
  EXPECT_TRUE(tokens[3].IsIdent("void"));
  EXPECT_EQ(tokens[5].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[6].kind, TokenKind::kRParen);
  EXPECT_EQ(tokens[7].kind, TokenKind::kSemicolon);
}

TEST(LexerTest, DecimalAndHexNumbers) {
  DiagnosticSink diags;
  auto tokens = Lex("123 0x1F 0", &diags);
  EXPECT_EQ(tokens[0].int_value, 123u);
  EXPECT_EQ(tokens[1].int_value, 0x1Fu);
  EXPECT_EQ(tokens[2].int_value, 0u);
}

TEST(LexerTest, StringLiteralWithEscapes) {
  DiagnosticSink diags;
  auto tokens = Lex(R"("a\nb\"c")", &diags);
  ASSERT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].string_value, "a\nb\"c");
}

TEST(LexerTest, CommentsAreSkipped) {
  DiagnosticSink diags;
  auto tokens = Lex("a // line\nb /* block\nstill */ c # cpp\nd", &diags);
  EXPECT_FALSE(diags.HasErrors());
  ASSERT_EQ(tokens.size(), 5u);  // a b c d EOF
  EXPECT_TRUE(tokens[0].IsIdent("a"));
  EXPECT_TRUE(tokens[1].IsIdent("b"));
  EXPECT_TRUE(tokens[2].IsIdent("c"));
  EXPECT_TRUE(tokens[3].IsIdent("d"));
}

TEST(LexerTest, ScopeVsColon) {
  DiagnosticSink diags;
  auto tokens = Lex(":: :", &diags);
  EXPECT_EQ(tokens[0].kind, TokenKind::kScope);
  EXPECT_EQ(tokens[1].kind, TokenKind::kColon);
}

TEST(LexerTest, PositionsAreOneBased) {
  DiagnosticSink diags;
  auto tokens = Lex("a\n  b", &diags);
  EXPECT_EQ(tokens[0].pos.line, 1);
  EXPECT_EQ(tokens[0].pos.column, 1);
  EXPECT_EQ(tokens[1].pos.line, 2);
  EXPECT_EQ(tokens[1].pos.column, 3);
}

TEST(LexerTest, UnterminatedCommentIsReported) {
  DiagnosticSink diags;
  Lex("a /* never closed", &diags);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(LexerTest, UnterminatedStringIsReported) {
  DiagnosticSink diags;
  Lex("\"open", &diags);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(LexerTest, UnexpectedCharacterReportedAndSkipped) {
  DiagnosticSink diags;
  auto tokens = Lex("a $ b", &diags);
  EXPECT_TRUE(diags.HasErrors());
  // Lexing continues past the bad character.
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[1].IsIdent("b"));
}

TEST(TokenCursorTest, ExpectAndRecovery) {
  DiagnosticSink diags;
  TokenCursor cursor(Lex("a ; b", &diags), "test.idl", &diags);
  EXPECT_EQ(cursor.ExpectIdentifier("here"), "a");
  EXPECT_FALSE(cursor.Expect(TokenKind::kComma, "oops"));
  EXPECT_TRUE(diags.HasErrors());
  cursor.SkipPast(TokenKind::kSemicolon);
  EXPECT_TRUE(cursor.Peek().IsIdent("b"));
}

TEST(TokenCursorTest, NextStaysOnEof) {
  DiagnosticSink diags;
  TokenCursor cursor(Lex("x", &diags), "test.idl", &diags);
  cursor.Next();
  cursor.Next();
  cursor.Next();
  EXPECT_TRUE(cursor.AtEnd());
}

}  // namespace
}  // namespace flexrpc
