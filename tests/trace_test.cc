// Unit tests for flextrace: counter/histogram semantics, the
// enabled/disabled gate, session windowing, JSON serialization (golden),
// and concurrent counting.

#include <gtest/gtest.h>

#include <set>
#include <string_view>
#include <thread>

#include "src/support/json.h"
#include "src/support/trace.h"

namespace flexrpc {
namespace {

// Every test owns the global registry for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(false);
    ResetTrace();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    ResetTrace();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndAddsAreDropped) {
  EXPECT_FALSE(TraceEnabled());
  TraceAdd(TraceCounter::kKernelTraps);
  TraceAdd(TraceCounter::kDataCopyBytes, 4096);
  TraceObserve(TraceHistogram::kIpcMessageBytes, 64);
  TraceSnapshot snap = CaptureTrace();
  EXPECT_EQ(snap.counter(TraceCounter::kKernelTraps), 0u);
  EXPECT_EQ(snap.counter(TraceCounter::kDataCopyBytes), 0u);
  EXPECT_EQ(snap.histogram(TraceHistogram::kIpcMessageBytes).count, 0u);
}

TEST_F(TraceTest, EnabledCountsAndDeltas) {
  SetTraceEnabled(true);
  TraceAdd(TraceCounter::kKernelTraps);
  TraceAdd(TraceCounter::kKernelTraps);
  TraceAdd(TraceCounter::kDataCopyBytes, 100);
  TraceSnapshot a = CaptureTrace();
  EXPECT_EQ(a.counter(TraceCounter::kKernelTraps), 2u);
  TraceAdd(TraceCounter::kKernelTraps);
  TraceSnapshot delta = TraceDelta(a, CaptureTrace());
  EXPECT_EQ(delta.counter(TraceCounter::kKernelTraps), 1u);
  EXPECT_EQ(delta.counter(TraceCounter::kDataCopyBytes), 0u);
}

TEST_F(TraceTest, HistogramBucketsArePowersOfTwo) {
  SetTraceEnabled(true);
  // Bucket 0 holds zeros; bucket i holds 2^(i-1) <= v < 2^i.
  TraceObserve(TraceHistogram::kIpcMessageBytes, 0);    // bucket 0
  TraceObserve(TraceHistogram::kIpcMessageBytes, 1);    // bucket 1
  TraceObserve(TraceHistogram::kIpcMessageBytes, 2);    // bucket 2
  TraceObserve(TraceHistogram::kIpcMessageBytes, 3);    // bucket 2
  TraceObserve(TraceHistogram::kIpcMessageBytes, 4);    // bucket 3
  TraceObserve(TraceHistogram::kIpcMessageBytes, 255);  // bucket 8
  TraceObserve(TraceHistogram::kIpcMessageBytes, 256);  // bucket 9
  TraceSnapshot snap = CaptureTrace();
  const auto& h = snap.histogram(TraceHistogram::kIpcMessageBytes);
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 4 + 255 + 256);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[8], 1u);
  EXPECT_EQ(h.buckets[9], 1u);
}

TEST_F(TraceTest, HistogramSaturatesIntoLastBucket) {
  SetTraceEnabled(true);
  TraceObserve(TraceHistogram::kIpcMessageBytes, ~0ull);
  TraceSnapshot snap = CaptureTrace();
  const auto& h = snap.histogram(TraceHistogram::kIpcMessageBytes);
  EXPECT_EQ(h.buckets[kTraceHistogramBuckets - 1], 1u);
}

TEST_F(TraceTest, NamesMatchEnumOrder) {
  EXPECT_EQ(TraceCounterName(TraceCounter::kKernelTraps), "kernel.traps");
  EXPECT_EQ(TraceCounterName(TraceCounter::kNetWireVirtualNanos),
            "net.wire_virtual_nanos");
  EXPECT_EQ(TraceHistogramName(TraceHistogram::kRpcMarshalNanos),
            "rpc.marshal_nanos");
  EXPECT_EQ(TraceHistogramName(TraceHistogram::kNetTransferVirtualNanos),
            "net.transfer_virtual_nanos");
}

// Drift guard over the whole catalog via the public name API: every
// enum value must map to a non-empty, unique, dot-separated name. (The
// compile-time static_asserts in trace.cc enforce the same property on
// the tables directly; this keeps the public accessors honest.)
TEST_F(TraceTest, EveryCatalogNameIsNonEmptyAndUnique) {
  std::set<std::string_view> counter_names;
  for (size_t i = 0; i < kTraceCounterCount; ++i) {
    std::string_view name = TraceCounterName(static_cast<TraceCounter>(i));
    EXPECT_FALSE(name.empty()) << "counter " << i << " has no name";
    EXPECT_TRUE(counter_names.insert(name).second)
        << "duplicate counter name " << name;
  }
  EXPECT_EQ(counter_names.size(), kTraceCounterCount);
  std::set<std::string_view> histogram_names;
  for (size_t i = 0; i < kTraceHistogramCount; ++i) {
    std::string_view name =
        TraceHistogramName(static_cast<TraceHistogram>(i));
    EXPECT_FALSE(name.empty()) << "histogram " << i << " has no name";
    EXPECT_TRUE(histogram_names.insert(name).second)
        << "duplicate histogram name " << name;
    // Histogram-count budget keys append ".count" to the histogram name;
    // a histogram name that already collides with a counter name would
    // make the budget keyspace ambiguous.
    EXPECT_EQ(counter_names.count(name), 0u)
        << "histogram name shadows a counter: " << name;
  }
  EXPECT_EQ(histogram_names.size(), kTraceHistogramCount);
}

TEST_F(TraceTest, SessionEnablesAndRestores) {
  EXPECT_FALSE(TraceEnabled());
  {
    TraceSession session;
    EXPECT_TRUE(TraceEnabled());
    TraceAdd(TraceCounter::kRpcBinds);
    EXPECT_EQ(session.Report().counter(TraceCounter::kRpcBinds), 1u);
    session.Rebase();
    EXPECT_EQ(session.Report().counter(TraceCounter::kRpcBinds), 0u);
  }
  EXPECT_FALSE(TraceEnabled());
}

TEST_F(TraceTest, SessionBaselineExcludesPriorWork) {
  SetTraceEnabled(true);
  TraceAdd(TraceCounter::kRpcBinds, 7);
  TraceSession session;
  TraceAdd(TraceCounter::kRpcBinds);
  EXPECT_EQ(session.Report().counter(TraceCounter::kRpcBinds), 1u);
}

TEST_F(TraceTest, SpanFeedsHistogramOnlyWhenEnabled) {
  {
    TraceSpan span(TraceHistogram::kRpcDispatchNanos);
  }
  TraceSnapshot off = CaptureTrace();
  EXPECT_EQ(off.histogram(TraceHistogram::kRpcDispatchNanos).count, 0u);
  SetTraceEnabled(true);
  {
    TraceSpan span(TraceHistogram::kRpcDispatchNanos);
  }
  TraceSnapshot on = CaptureTrace();
  EXPECT_EQ(on.histogram(TraceHistogram::kRpcDispatchNanos).count, 1u);
}

// Golden serialization of a small, fully-controlled snapshot. The shape
// (every counter present incl. zeros, zero-count histograms elided,
// sparse [bucket, count] pairs) is what flextrace_check and the bench
// artifacts rely on.
TEST_F(TraceTest, JsonGolden) {
  SetTraceEnabled(true);
  TraceSnapshot base = CaptureTrace();
  TraceAdd(TraceCounter::kKernelTraps, 3);
  TraceObserve(TraceHistogram::kIpcMessageBytes, 0);
  TraceObserve(TraceHistogram::kIpcMessageBytes, 5);
  std::string json = TraceSnapshotToJson(TraceDelta(base, CaptureTrace()));

  // Spot-check the golden fragments rather than all ~50 zero lines.
  EXPECT_NE(json.find("\"kernel.traps\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"mem.copies\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"ipc.message_bytes\""), std::string::npos);
  // Zero-count histograms are elided entirely.
  EXPECT_EQ(json.find("\"rpc.marshal_nanos\""), std::string::npos);

  // And it round-trips through the in-repo parser.
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->object.size(), kTraceCounterCount);
  const JsonValue* traps = counters->Find("kernel.traps");
  ASSERT_NE(traps, nullptr);
  EXPECT_EQ(traps->number, 3.0);
  const JsonValue* hist =
      parsed->Find("histograms")->Find("ipc.message_bytes");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number, 2.0);
  EXPECT_EQ(hist->Find("sum")->number, 5.0);
  // value 0 -> bucket 0, value 5 -> bucket 3; both with count 1.
  ASSERT_EQ(hist->Find("buckets")->array.size(), 2u);
  EXPECT_EQ(hist->Find("buckets")->array[0].array[0].number, 0.0);
  EXPECT_EQ(hist->Find("buckets")->array[1].array[0].number, 3.0);
}

TEST_F(TraceTest, ConcurrentAddsAreNotLost) {
  SetTraceEnabled(true);
  constexpr int kPerThread = 100000;
  auto work = [] {
    for (int i = 0; i < kPerThread; ++i) {
      TraceAdd(TraceCounter::kDataCopies);
      TraceObserve(TraceHistogram::kIpcMessageBytes,
                   static_cast<uint64_t>(i));
    }
  };
  std::thread t1(work);
  std::thread t2(work);
  t1.join();
  t2.join();
  TraceSnapshot snap = CaptureTrace();
  EXPECT_EQ(snap.counter(TraceCounter::kDataCopies), 2u * kPerThread);
  EXPECT_EQ(snap.histogram(TraceHistogram::kIpcMessageBytes).count,
            2u * kPerThread);
}

}  // namespace
}  // namespace flexrpc
