// Tests for the IPC paths: fast path, traditional typed path, and the
// combination-signature (threaded) transport of §4.5.

#include <gtest/gtest.h>

#include <cstring>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/ipc/fastpath.h"
#include "src/ipc/oldpath.h"
#include "src/ipc/threaded.h"

namespace flexrpc {
namespace {

TEST(FastPathTest, EchoRoundTrip) {
  Kernel kernel;
  FastPath fastpath(&kernel);
  Task* client = kernel.CreateTask("client");
  Task* server = kernel.CreateTask("server");
  PortName pn = kernel.CreatePort(server);
  Port* port = *kernel.ResolvePort(server, pn);

  const uint8_t* seen_in_server = nullptr;
  fastpath.Serve(port, server, [&](ServerCall* call) {
    seen_in_server = call->request;
    call->reply->assign(call->request, call->request + call->request_size);
    std::reverse(call->reply->begin(), call->reply->end());
    return Status::Ok();
  });

  uint8_t request[4] = {1, 2, 3, 4};
  void* reply = nullptr;
  size_t reply_size = 0;
  ASSERT_TRUE(fastpath
                  .Call(client, port, ByteSpan(request, 4), &reply,
                        &reply_size)
                  .ok());
  ASSERT_EQ(reply_size, 4u);
  EXPECT_EQ(static_cast<uint8_t*>(reply)[0], 4);
  // The handler saw a server-space copy, not the client's buffer.
  EXPECT_TRUE(server->space().Owns(seen_in_server));
  // The reply landed in client space.
  EXPECT_TRUE(client->space().Owns(reply));
  client->space().Free(reply);
  EXPECT_EQ(fastpath.calls(), 1u);
  EXPECT_EQ(fastpath.bytes_copied(), 8u);
  EXPECT_EQ(kernel.trap_count(), 2u);  // one in, one out
}

TEST(FastPathTest, UnboundPortFails) {
  Kernel kernel;
  FastPath fastpath(&kernel);
  Task* client = kernel.CreateTask("client");
  Task* other = kernel.CreateTask("other");
  PortName pn = kernel.CreatePort(other);
  Port* port = *kernel.ResolvePort(other, pn);
  void* reply;
  size_t reply_size;
  EXPECT_EQ(fastpath.Call(client, port, ByteSpan(), &reply, &reply_size)
                .code(),
            StatusCode::kNotFound);
}

TEST(FastPathTest, HandlerErrorPropagates) {
  Kernel kernel;
  FastPath fastpath(&kernel);
  Task* client = kernel.CreateTask("client");
  Task* server = kernel.CreateTask("server");
  PortName pn = kernel.CreatePort(server);
  Port* port = *kernel.ResolvePort(server, pn);
  fastpath.Serve(port, server, [](ServerCall*) {
    return InternalError("handler exploded");
  });
  void* reply;
  size_t reply_size;
  EXPECT_EQ(fastpath.Call(client, port, ByteSpan(), &reply, &reply_size)
                .code(),
            StatusCode::kInternal);
}

TEST(OldPathTest, RoundTripWithTypedItems) {
  Kernel kernel;
  OldPath oldpath(&kernel);
  Task* client = kernel.CreateTask("client");
  Task* server = kernel.CreateTask("server");
  PortName pn = kernel.CreatePort(server);
  Port* port = *kernel.ResolvePort(server, pn);
  PortName reply_port = kernel.CreatePort(client);

  oldpath.Serve(port, server, [](ServerCall* call) {
    call->reply->assign(call->request, call->request + call->request_size);
    return Status::Ok();
  });
  uint64_t baseline_refs = server->names().total_refs();

  uint8_t request[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  std::vector<TypedItem> items = {{1, 4}, {2, 4}};
  void* reply = nullptr;
  size_t reply_size = 0;
  ASSERT_TRUE(oldpath
                  .Call(client, port, reply_port, ByteSpan(request, 8),
                        items, &reply, &reply_size)
                  .ok());
  EXPECT_EQ(reply_size, 8u);
  EXPECT_EQ(static_cast<uint8_t*>(reply)[0], 9);
  client->space().Free(reply);
  // Two copies each direction (through the kernel buffer).
  EXPECT_EQ(oldpath.bytes_copied(), 32u);
  EXPECT_EQ(oldpath.descriptors_processed(), 2u);
  // The reply right was translated and then released.
  EXPECT_EQ(server->names().total_refs(), baseline_refs);
}

TEST(OldPathTest, DescriptorMismatchRejected) {
  Kernel kernel;
  OldPath oldpath(&kernel);
  Task* client = kernel.CreateTask("client");
  Task* server = kernel.CreateTask("server");
  PortName pn = kernel.CreatePort(server);
  Port* port = *kernel.ResolvePort(server, pn);
  PortName reply_port = kernel.CreatePort(client);
  oldpath.Serve(port, server, [](ServerCall*) { return Status::Ok(); });

  uint8_t request[8] = {};
  std::vector<TypedItem> bad = {{1, 3}};  // describes 3 of 8 bytes
  void* reply;
  size_t reply_size;
  EXPECT_EQ(oldpath
                .Call(client, port, reply_port, ByteSpan(request, 8), bad,
                      &reply, &reply_size)
                .code(),
            StatusCode::kInvalidArgument);
}

// --- combination-signature transport ---

TEST(ThreadedTest, AssemblyVariesWithTrust) {
  auto count = [](const std::vector<ThreadedOp>& ops, TOpCode code) {
    int n = 0;
    for (const ThreadedOp& op : ops) {
      if (op.code == code) {
        ++n;
      }
    }
    return n;
  };

  auto none = AssembleCombination(TrustLevel::kNone, TrustLevel::kNone,
                                  false, 32);
  EXPECT_EQ(count(none, TOpCode::kSaveRegs), 1);
  EXPECT_EQ(count(none, TOpCode::kRestoreRegs), 1);
  EXPECT_EQ(count(none, TOpCode::kClearRegs), 2);  // both directions

  auto full = AssembleCombination(TrustLevel::kFull, TrustLevel::kFull,
                                  false, 32);
  EXPECT_EQ(count(full, TOpCode::kSaveRegs), 0);
  EXPECT_EQ(count(full, TOpCode::kRestoreRegs), 0);
  EXPECT_EQ(count(full, TOpCode::kClearRegs), 0);

  auto leaky = AssembleCombination(TrustLevel::kLeaky, TrustLevel::kLeaky,
                                   false, 32);
  EXPECT_EQ(count(leaky, TOpCode::kSaveRegs), 1);   // integrity still kept
  EXPECT_EQ(count(leaky, TOpCode::kClearRegs), 0);  // confidentiality waived

  // The paper's observation: a server declaring full trust gets exactly
  // the leaky program.
  auto server_leaky =
      AssembleCombination(TrustLevel::kNone, TrustLevel::kLeaky, false, 32);
  auto server_full =
      AssembleCombination(TrustLevel::kNone, TrustLevel::kFull, false, 32);
  ASSERT_EQ(server_leaky.size(), server_full.size());
  for (size_t i = 0; i < server_leaky.size(); ++i) {
    EXPECT_EQ(server_leaky[i].code, server_full[i].code);
  }
}

TEST(ThreadedTest, NonuniqueSelectsFastTranslateOp) {
  auto unique = AssembleCombination(TrustLevel::kNone, TrustLevel::kNone,
                                    false, 32);
  auto nonunique = AssembleCombination(TrustLevel::kNone, TrustLevel::kNone,
                                       true, 32);
  auto has = [](const std::vector<ThreadedOp>& ops, TOpCode code) {
    for (const ThreadedOp& op : ops) {
      if (op.code == code) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has(unique, TOpCode::kTranslateReplyPortUnique));
  EXPECT_FALSE(has(unique, TOpCode::kTranslateReplyPortNonUnique));
  EXPECT_TRUE(has(nonunique, TOpCode::kTranslateReplyPortNonUnique));
}

class ThreadedBindTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DiagnosticSink diags;
    idl_ = ParseCorbaIdl("interface Null { void ping(); };", "t.idl",
                         &diags);
    ASSERT_NE(idl_, nullptr);
    ASSERT_TRUE(AnalyzeInterfaceFile(idl_.get(), &diags));
    sig_ = BuildSignature(idl_->interfaces[0]);
    client_ = kernel_.CreateTask("client");
    server_ = kernel_.CreateTask("server");
    PortName pn = kernel_.CreatePort(server_);
    port_ = *kernel_.ResolvePort(server_, pn);
  }

  Kernel kernel_;
  std::unique_ptr<InterfaceFile> idl_;
  InterfaceSignature sig_;
  Task* client_ = nullptr;
  Task* server_ = nullptr;
  Port* port_ = nullptr;
};

TEST_F(ThreadedBindTest, NullCallRunsServerWork) {
  SpecializedTransport transport(&kernel_);
  int invocations = 0;
  ASSERT_TRUE(transport
                  .RegisterServer(port_, server_, sig_, TrustLevel::kNone,
                                  [&] { ++invocations; })
                  .ok());
  auto conn = transport.BindClient(client_, port_, sig_, TrustLevel::kNone,
                                   false);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  uint64_t baseline_refs = server_->names().total_refs();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*conn)->NullCall().ok());
  }
  EXPECT_EQ(invocations, 10);
  EXPECT_EQ((*conn)->calls(), 10u);
  // Reply rights were translated into the server and released every call.
  EXPECT_EQ(server_->names().total_refs(), baseline_refs);
}

TEST_F(ThreadedBindTest, IncompatibleSignatureRejectedAtBind) {
  SpecializedTransport transport(&kernel_);
  ASSERT_TRUE(transport
                  .RegisterServer(port_, server_, sig_, TrustLevel::kNone,
                                  [] {})
                  .ok());
  DiagnosticSink diags;
  auto other = ParseCorbaIdl("interface Null { void ping(in long x); };",
                             "o.idl", &diags);
  ASSERT_NE(other, nullptr);
  InterfaceSignature other_sig = BuildSignature(other->interfaces[0]);
  auto conn = transport.BindClient(client_, port_, other_sig,
                                   TrustLevel::kNone, false);
  EXPECT_EQ(conn.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(ThreadedBindTest, DoubleRegistrationRejected) {
  SpecializedTransport transport(&kernel_);
  ASSERT_TRUE(transport
                  .RegisterServer(port_, server_, sig_, TrustLevel::kNone,
                                  [] {})
                  .ok());
  EXPECT_EQ(transport
                .RegisterServer(port_, server_, sig_, TrustLevel::kNone,
                                [] {})
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ThreadedBindTest, TrustShrinksProgram) {
  SpecializedTransport transport(&kernel_);
  ASSERT_TRUE(transport
                  .RegisterServer(port_, server_, sig_, TrustLevel::kFull,
                                  [] {})
                  .ok());
  auto none = transport.BindClient(client_, port_, sig_, TrustLevel::kNone,
                                   false);
  auto full = transport.BindClient(client_, port_, sig_, TrustLevel::kFull,
                                   true);
  ASSERT_TRUE(none.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_GT((*none)->program().size(), (*full)->program().size());
  ASSERT_TRUE((*full)->NullCall().ok());
}

}  // namespace
}  // namespace flexrpc
