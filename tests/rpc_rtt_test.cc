// RttEstimator / AimdController unit tests (ISSUE 7, satellite 4).
//
// The estimator is pure integer arithmetic on virtual-clock nanoseconds,
// so every srtt/rttvar/RTO value is exact and the tests assert them
// against hand-computed RFC 6298 sequences — not ranges. The AIMD
// controller is likewise exact: additive steps, halvings, and the
// recovery holdoff are all deterministic.

#include <gtest/gtest.h>

#include "src/rpc/retry.h"
#include "src/rpc/rtt.h"
#include "src/support/rng.h"

namespace flexrpc {
namespace {

TEST(RttEstimatorTest, BeforeFirstSampleUsesInitialRto) {
  RttEstimator rtt;
  EXPECT_FALSE(rtt.has_sample());
  EXPECT_EQ(rtt.rto_nanos(), 20'000'000u);
  EXPECT_EQ(rtt.samples(), 0u);
}

TEST(RttEstimatorTest, FirstSampleSeedsSrttAndVariance) {
  // RFC 6298 §2.2: srtt = R, rttvar = R/2, RTO = srtt + max(G, 4*rttvar).
  RttEstimator rtt;
  rtt.Sample(10'000'000);
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_EQ(rtt.srtt_nanos(), 10'000'000u);
  EXPECT_EQ(rtt.rttvar_nanos(), 5'000'000u);
  EXPECT_EQ(rtt.rto_nanos(), 30'000'000u);  // 10 ms + 4 * 5 ms / 2... = 3R
}

TEST(RttEstimatorTest, HandComputedSmoothingSequence) {
  // srtt <- 7/8 srtt + 1/8 R, rttvar <- 3/4 rttvar + 1/4 |srtt - R|
  // (old srtt), each term floored independently by integer division.
  RttEstimator rtt;
  rtt.Sample(10'000'000);

  rtt.Sample(10'000'000);  // zero deviation
  EXPECT_EQ(rtt.srtt_nanos(), 10'000'000u);
  EXPECT_EQ(rtt.rttvar_nanos(), 3'750'000u);  // 5M - 5M/4
  EXPECT_EQ(rtt.rto_nanos(), 25'000'000u);    // 10M + 4*3.75M

  rtt.Sample(20'000'000);  // deviation 10M against old srtt
  // rttvar = 3.75M - 937500 + 2.5M = 5312500
  // srtt   = 10M - 1.25M + 2.5M   = 11250000
  EXPECT_EQ(rtt.srtt_nanos(), 11'250'000u);
  EXPECT_EQ(rtt.rttvar_nanos(), 5'312'500u);
  EXPECT_EQ(rtt.rto_nanos(), 11'250'000u + 4u * 5'312'500u);
  EXPECT_EQ(rtt.samples(), 3u);
}

TEST(RttEstimatorTest, SteadyRttDecaysVarianceToGranularityFloor) {
  // Identical samples decay rttvar by 3/4 per step; once 4*rttvar drops
  // below G the granularity term takes over: RTO = srtt + G.
  RttEstimator rtt;
  for (int i = 0; i < 40; ++i) {
    rtt.Sample(2'000'000);
  }
  EXPECT_EQ(rtt.srtt_nanos(), 2'000'000u);
  EXPECT_LT(4 * rtt.rttvar_nanos(), rtt.config().granularity_nanos);
  EXPECT_EQ(rtt.rto_nanos(),
            2'000'000u + rtt.config().granularity_nanos);
}

TEST(RttEstimatorTest, BackoffDoublesUntilMaxClamp) {
  // Karn backoff before any sample: initial 20 ms doubles per timeout and
  // saturates at the 400 ms ceiling (counted as a clamp).
  RttEstimator rtt;
  uint64_t expected = 20'000'000;
  for (int i = 0; i < 4; ++i) {
    rtt.Backoff();
    expected *= 2;
    EXPECT_EQ(rtt.rto_nanos(), expected);
  }
  EXPECT_EQ(rtt.rto_nanos(), 320'000'000u);
  EXPECT_EQ(rtt.clamps(), 0u);
  rtt.Backoff();  // 640 ms clamps to 400 ms
  EXPECT_EQ(rtt.rto_nanos(), 400'000'000u);
  EXPECT_EQ(rtt.clamps(), 1u);
  rtt.Backoff();  // stays pinned
  EXPECT_EQ(rtt.rto_nanos(), 400'000'000u);
}

TEST(RttEstimatorTest, CleanSampleEndsBackedOffRegime) {
  // Karn's rule, estimator side: the backed-off RTO stays in force only
  // until the next unambiguous sample, which recomputes from srtt/rttvar.
  RttEstimator rtt;
  rtt.Sample(10'000'000);  // RTO 30 ms
  rtt.Backoff();
  rtt.Backoff();
  EXPECT_EQ(rtt.rto_nanos(), 120'000'000u);  // 30 ms << 2
  rtt.Sample(10'000'000);
  EXPECT_EQ(rtt.rto_nanos(), 25'000'000u);  // backoff cleared, not doubled
}

TEST(RttEstimatorTest, MinRtoClampFloorsFastPaths) {
  RttConfig config;
  config.min_rto_nanos = 5'000'000;
  RttEstimator rtt(config);
  rtt.Sample(1'000'000);  // base RTO = 1M + 4*500k = 3 ms, under the floor
  EXPECT_EQ(rtt.rto_nanos(), 5'000'000u);
  EXPECT_EQ(rtt.clamps(), 1u);
}

TEST(AimdControllerTest, OneIncreasePerFullWindowOfAcks) {
  AimdController cwnd;  // initial window 2
  EXPECT_EQ(cwnd.window(), 2u);
  EXPECT_FALSE(cwnd.OnAck());  // credit 1 of 2
  EXPECT_TRUE(cwnd.OnAck());   // full window -> 3
  EXPECT_EQ(cwnd.window(), 3u);
  EXPECT_FALSE(cwnd.OnAck());
  EXPECT_FALSE(cwnd.OnAck());
  EXPECT_TRUE(cwnd.OnAck());  // three more acks -> 4
  EXPECT_EQ(cwnd.window(), 4u);
  EXPECT_EQ(cwnd.increases(), 2u);
}

TEST(AimdControllerTest, GrowthStopsAtMaxWindow) {
  AimdConfig config;
  config.initial_window = 3;
  config.max_window = 4;
  AimdController cwnd(config);
  for (int i = 0; i < 3; ++i) {
    cwnd.OnAck();
  }
  EXPECT_EQ(cwnd.window(), 4u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(cwnd.OnAck());
  }
  EXPECT_EQ(cwnd.window(), 4u);
  EXPECT_EQ(cwnd.increases(), 1u);
}

TEST(AimdControllerTest, LossHalvesOncePerRecoveryPeriod) {
  AimdConfig config;
  config.initial_window = 8;
  AimdController cwnd(config);
  EXPECT_TRUE(cwnd.OnLoss(/*now=*/1000, /*hold=*/500));
  EXPECT_EQ(cwnd.window(), 4u);
  // Inside the hold period: further loss signals are the same congestion
  // episode and must not halve again.
  EXPECT_FALSE(cwnd.OnLoss(1200, 500));
  EXPECT_FALSE(cwnd.OnLoss(1499, 500));
  EXPECT_EQ(cwnd.window(), 4u);
  // Past it: a fresh episode halves again.
  EXPECT_TRUE(cwnd.OnLoss(1500, 500));
  EXPECT_EQ(cwnd.window(), 2u);
  EXPECT_EQ(cwnd.decreases(), 2u);
}

TEST(AimdControllerTest, LossNeverDropsBelowMinWindow) {
  AimdController cwnd;  // initial 2, min 1
  EXPECT_TRUE(cwnd.OnLoss(0, 100));
  EXPECT_EQ(cwnd.window(), 1u);
  EXPECT_FALSE(cwnd.OnLoss(1000, 100));  // already at the floor
  EXPECT_EQ(cwnd.window(), 1u);
  EXPECT_EQ(cwnd.decreases(), 1u);
}

TEST(AimdControllerTest, LossResetsAckCredit) {
  // Three of the four acks toward the next increase, then a loss: the
  // credit must not survive into the halved window.
  AimdConfig config;
  config.initial_window = 4;
  AimdController cwnd(config);
  cwnd.OnAck();
  cwnd.OnAck();
  cwnd.OnAck();
  EXPECT_TRUE(cwnd.OnLoss(0, 100));
  EXPECT_EQ(cwnd.window(), 2u);
  EXPECT_FALSE(cwnd.OnAck());  // credit restarted at zero
  EXPECT_TRUE(cwnd.OnAck());
  EXPECT_EQ(cwnd.window(), 3u);
}

TEST(ClipRtoWaitTest, JitterStaysWithinQuarterRto) {
  Rng jitter(7);
  bool expires = true;
  uint64_t wait = ClipRtoWait(/*rto=*/20'000'000,
                              /*deadline=*/1'000'000'000, &jitter,
                              /*now=*/0, &expires);
  EXPECT_FALSE(expires);
  EXPECT_GE(wait, 20'000'000u);
  EXPECT_LE(wait, 25'000'000u);
}

TEST(ClipRtoWaitTest, ClipsAtDeadlineAndReportsExpiry) {
  Rng jitter(7);
  bool expires = false;
  uint64_t wait = ClipRtoWait(20'000'000, /*deadline=*/10'000'000, &jitter,
                              /*now=*/5'000'000, &expires);
  EXPECT_TRUE(expires);
  EXPECT_EQ(wait, 5'000'000u);  // exactly to the deadline, no overshoot
}

TEST(ClipRtoWaitTest, PastDeadlineReturnsZeroWithoutDrawingJitter) {
  // The already-expired branch must not consume a jitter draw — both
  // transports rely on the jitter stream being a pure function of the
  // non-expired waits for run-to-run determinism.
  Rng reference(7);
  uint64_t first_draw = reference.NextBelow(20'000'000 / 4 + 1);
  Rng jitter(7);
  bool expires = false;
  EXPECT_EQ(ClipRtoWait(20'000'000, /*deadline=*/100, &jitter,
                        /*now=*/200, &expires),
            0u);
  EXPECT_TRUE(expires);
  EXPECT_EQ(jitter.NextBelow(20'000'000 / 4 + 1), first_draw);
}

}  // namespace
}  // namespace flexrpc
