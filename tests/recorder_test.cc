// Unit tests for the flexrec flight recorder (src/support/recorder.h) and
// its consumers (src/analysis/flexrec.h): ring semantics incl. wrap and
// drop accounting, call-scope nesting, serialization round trips and
// determinism, Chrome trace_event export structural validity (including
// under truncation), and the latency-attribution invariants — per-phase
// virtual-time components sum exactly to the per-call total, retransmits
// classify against recorded losses.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/flexrec.h"
#include "src/apps/nfs.h"
#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/rpc/pipeline.h"
#include "src/support/event_queue.h"
#include "src/support/json.h"
#include "src/support/recorder.h"
#include "src/support/timing.h"

namespace flexrpc {
namespace {

TEST(RecorderTest, DisabledByDefaultAndOutsideSessions) {
  EXPECT_FALSE(RecorderEnabled());
  // A record point with no session is the zero-overhead no-op path.
  RecordEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, 1, 100);
  RecorderSession session(/*capacity=*/8);
  EXPECT_TRUE(RecorderEnabled());
  RecordEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, 2, 200);
  Recording rec = session.Stop();
  EXPECT_FALSE(RecorderEnabled());
  ASSERT_EQ(rec.events.size(), 1u);  // the pre-session event never landed
  EXPECT_EQ(rec.events[0].xid, 2u);
  EXPECT_EQ(rec.total_events, 1u);
  EXPECT_EQ(rec.dropped_events, 0u);
}

TEST(RecorderTest, RecordsFieldsInOrder) {
  RecorderSession session(/*capacity=*/8);
  RecordEvent(RecEvent::kWireTx, RecEndpoint::kWireAtoB, 7, 1000,
              /*a=*/250, /*b=*/4000);
  RecordEvent(RecEvent::kFaultDrop, RecEndpoint::kWireBtoA, 7, 5000,
              /*a=*/0, /*b=*/3);
  Recording rec = session.Stop();
  ASSERT_EQ(rec.events.size(), 2u);
  EXPECT_EQ(rec.events[0].type, RecEvent::kWireTx);
  EXPECT_EQ(rec.events[0].endpoint, RecEndpoint::kWireAtoB);
  EXPECT_EQ(rec.events[0].xid, 7u);
  EXPECT_EQ(rec.events[0].virtual_nanos, 1000u);
  EXPECT_EQ(rec.events[0].a, 250u);
  EXPECT_EQ(rec.events[0].b, 4000u);
  EXPECT_EQ(rec.events[1].type, RecEvent::kFaultDrop);
  EXPECT_EQ(rec.events[1].b, 3u);
  // Stop() is idempotent: the ring was drained.
  EXPECT_TRUE(session.Stop().events.empty());
}

TEST(RecorderTest, RingWrapOverwritesOldestAndCountsDropped) {
  RecorderSession session(/*capacity=*/4);
  for (uint32_t i = 0; i < 10; ++i) {
    RecordEvent(RecEvent::kWireRx, RecEndpoint::kClient, i, i * 100);
  }
  Recording rec = session.Stop();
  EXPECT_EQ(rec.capacity, 4u);
  EXPECT_EQ(rec.total_events, 10u);
  EXPECT_EQ(rec.dropped_events, 6u);
  ASSERT_EQ(rec.events.size(), 4u);
  // Drained oldest-first: the survivors are the newest four, in order.
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rec.events[i].xid, 6 + i);
    EXPECT_EQ(rec.events[i].virtual_nanos, (6 + i) * 100u);
  }
}

TEST(RecorderTest, CallScopeNestsAndRestores) {
  EXPECT_FALSE(RecorderCallScope::Active());
  VirtualClock outer_clock;
  outer_clock.AdvanceNanos(11);
  VirtualClock inner_clock;
  inner_clock.AdvanceNanos(22);
  {
    RecorderCallScope outer(101, &outer_clock);
    EXPECT_TRUE(RecorderCallScope::Active());
    EXPECT_EQ(RecorderCallScope::CurrentXid(), 101u);
    EXPECT_EQ(RecorderCallScope::CurrentVirtualNanos(), 11u);
    {
      RecorderCallScope inner(202, &inner_clock);
      EXPECT_EQ(RecorderCallScope::CurrentXid(), 202u);
      EXPECT_EQ(RecorderCallScope::CurrentVirtualNanos(), 22u);
    }
    // The inner scope's destructor restored the outer context.
    EXPECT_TRUE(RecorderCallScope::Active());
    EXPECT_EQ(RecorderCallScope::CurrentXid(), 101u);
    EXPECT_EQ(RecorderCallScope::CurrentVirtualNanos(), 11u);
  }
  EXPECT_FALSE(RecorderCallScope::Active());
}

TEST(RecorderTest, EventAndEndpointNamesAreNonEmptyAndUnique) {
  std::set<std::string_view> names;
  for (size_t i = 0; i < kRecEventCount; ++i) {
    std::string_view name = RecEventName(static_cast<RecEvent>(i));
    EXPECT_FALSE(name.empty()) << "event " << i;
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
  }
  std::set<std::string_view> endpoints;
  for (size_t i = 0; i < kRecEndpointCount; ++i) {
    std::string_view name = RecEndpointName(static_cast<RecEndpoint>(i));
    EXPECT_FALSE(name.empty()) << "endpoint " << i;
    EXPECT_TRUE(endpoints.insert(name).second) << "duplicate " << name;
  }
}

// --- serialization ------------------------------------------------------

RecordedEvent MakeEvent(RecEvent type, RecEndpoint ep, uint32_t xid,
                        uint64_t vt, uint64_t a = 0, uint64_t b = 0) {
  RecordedEvent e;
  e.type = type;
  e.endpoint = ep;
  e.xid = xid;
  e.virtual_nanos = vt;
  e.wall_nanos = 123456;  // must not leak into default serialization
  e.a = a;
  e.b = b;
  return e;
}

Recording SmallRecording() {
  Recording rec;
  rec.capacity = 16;
  rec.total_events = 3;
  rec.dropped_events = 0;
  rec.events.push_back(MakeEvent(RecEvent::kCallSubmit,
                                 RecEndpoint::kClient, 9, 100, 512));
  rec.events.push_back(MakeEvent(RecEvent::kWireTx, RecEndpoint::kWireAtoB,
                                 9, 150, 40, 5000));
  rec.events.push_back(MakeEvent(RecEvent::kCallComplete,
                                 RecEndpoint::kClient, 9, 9000, 0));
  return rec;
}

TEST(RecorderTest, JsonRoundTripPreservesEveryField) {
  Recording rec = SmallRecording();
  std::string json = RecordingToJson(rec);
  // Wall stamps are host-dependent and must be absent by default...
  EXPECT_EQ(json.find("\"wt\""), std::string::npos);
  // ...and present on request (live profiling mode).
  EXPECT_NE(RecordingToJson(rec, /*include_wall_nanos=*/true).find("\"wt\""),
            std::string::npos);

  auto parsed = ParseRecording(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->capacity, rec.capacity);
  EXPECT_EQ(parsed->total_events, rec.total_events);
  EXPECT_EQ(parsed->dropped_events, rec.dropped_events);
  ASSERT_EQ(parsed->events.size(), rec.events.size());
  for (size_t i = 0; i < rec.events.size(); ++i) {
    EXPECT_EQ(parsed->events[i].type, rec.events[i].type) << i;
    EXPECT_EQ(parsed->events[i].endpoint, rec.events[i].endpoint) << i;
    EXPECT_EQ(parsed->events[i].xid, rec.events[i].xid) << i;
    EXPECT_EQ(parsed->events[i].virtual_nanos, rec.events[i].virtual_nanos)
        << i;
    EXPECT_EQ(parsed->events[i].a, rec.events[i].a) << i;
    EXPECT_EQ(parsed->events[i].b, rec.events[i].b) << i;
  }
}

TEST(RecorderTest, ParseRejectsUnknownEventName) {
  Recording rec = SmallRecording();
  std::string json = RecordingToJson(rec);
  size_t pos = json.find("\"wire_tx\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 9, "\"wire_zz\"");
  EXPECT_FALSE(ParseRecording(json).ok());
}

// --- a real seeded lossy pipelined NFS run ------------------------------
//
// The acceptance workload: window-8 pipelined read over a drop/dup/reorder
// wire, recorded end to end. Everything downstream (export, analysis,
// determinism) is asserted against this recording.

FaultConfig TestLossyMix(uint64_t seed) {
  FaultConfig config;
  config.drop_prob = 0.05;
  config.dup_prob = 0.03;
  config.reorder_prob = 0.03;
  config.seed = seed;
  return config;
}

Recording RecordLossyPipelinedRead(
    size_t capacity = kDefaultRecorderCapacity) {
  RecorderSession recorder(capacity);
  NfsFileServer server(64 * 1024, /*seed=*/1995);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  DatagramChannel channel(LinkModel(), FaultPlan{TestLossyMix(205)},
                          FaultPlan{TestLossyMix(206)}, &clock);
  EventQueue events(&clock);
  PipelinePolicy policy;
  policy.window = 8;
  policy.retry.deadline_nanos = 60'000'000'000;
  policy.retry.initial_rto_nanos = 20'000'000;
  PipelinedTransport transport(&channel, NfsFileServer::MakeHandler(&server),
                               RemoteServerModel(), policy, &events);
  auto stats = client.ReadFilePipelined(
      NfsClient::StubKind::kGeneratedUserBuffer, &transport, 2048);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return recorder.Stop();
}

TEST(RecorderTest, SameSeedRunsSerializeByteIdentical) {
  std::string first = RecordingToJson(RecordLossyPipelinedRead());
  std::string second = RecordingToJson(RecordLossyPipelinedRead());
  EXPECT_EQ(first, second);
}

// Walks a parsed Chrome trace and asserts the structural contract
// Perfetto/chrome://tracing rely on: every event carries the fixed fields,
// duration (B/E) events balance per track with stack discipline, async
// (b/e) events balance per id, and non-metadata timestamps are
// non-decreasing.
void CheckChromeTraceShape(const JsonValue& trace, uint64_t dropped) {
  const JsonValue* other = trace.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(other->Find("dropped_events")->number),
            dropped);
  const JsonValue* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(events->array.empty());

  size_t metadata = 0;
  size_t instants = 0;
  bool saw_truncated = false;
  std::set<std::string> span_names;
  std::map<uint64_t, std::vector<std::string>> open_spans;  // tid -> stack
  std::map<uint64_t, int> open_calls;                       // id -> depth
  double last_ts = -1;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.Find("name"), nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    if (ph->string == "M") {
      ++metadata;
      continue;
    }
    const JsonValue* ts = e.Find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->IsNumber());
    EXPECT_GE(ts->number, last_ts);
    last_ts = ts->number;
    uint64_t tid = static_cast<uint64_t>(e.Find("tid")->number);
    const std::string& name = e.Find("name")->string;
    if (ph->string == "B") {
      open_spans[tid].push_back(name);
      span_names.insert(name);
    } else if (ph->string == "E") {
      ASSERT_FALSE(open_spans[tid].empty())
          << "E \"" << name << "\" with no open span on tid " << tid;
      EXPECT_EQ(open_spans[tid].back(), name);
      open_spans[tid].pop_back();
    } else if (ph->string == "b") {
      ++open_calls[static_cast<uint64_t>(e.Find("id")->number)];
    } else if (ph->string == "e") {
      uint64_t id = static_cast<uint64_t>(e.Find("id")->number);
      EXPECT_GT(open_calls[id], 0) << "async e with no open b, id " << id;
      --open_calls[id];
    } else {
      ASSERT_EQ(ph->string, "i") << "unexpected phase " << ph->string;
      ++instants;
      if (name == "truncated") {
        saw_truncated = true;
        EXPECT_EQ(e.Find("s")->string, "g");
        EXPECT_GT(e.Find("args")->Find("dropped_events")->number, 0.0);
      }
    }
  }
  // One process_name plus one thread_name per endpoint track.
  EXPECT_EQ(metadata, 1 + kRecEndpointCount);
  EXPECT_GT(instants, 0u);
  for (const auto& [tid, stack] : open_spans) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  for (const auto& [id, depth] : open_calls) {
    EXPECT_EQ(depth, 0) << "unclosed async call id " << id;
  }
  EXPECT_EQ(saw_truncated, dropped > 0);
  if (dropped == 0) {
    // The full recording shows both marshal work and server execution.
    EXPECT_TRUE(span_names.count("marshal"));
    EXPECT_TRUE(span_names.count("unmarshal"));
    EXPECT_TRUE(span_names.count("server_exec"));
  }
}

TEST(RecorderTest, ChromeTraceFromLossyRunIsStructurallyValid) {
  Recording rec = RecordLossyPipelinedRead();
  ASSERT_EQ(rec.dropped_events, 0u);
  auto trace = ParseJson(ExportChromeTrace(rec));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  CheckChromeTraceShape(*trace, /*dropped=*/0);
}

TEST(RecorderTest, TruncatedRecordingExportsMarkerAndStaysValid) {
  // A ring far smaller than the run: most of the timeline is overwritten,
  // leaving orphan E events and unclosed B/b events for the exporter to
  // repair.
  Recording rec = RecordLossyPipelinedRead(/*capacity=*/128);
  ASSERT_GT(rec.dropped_events, 0u);
  ASSERT_EQ(rec.events.size(), 128u);
  auto trace = ParseJson(ExportChromeTrace(rec));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  CheckChromeTraceShape(*trace, rec.dropped_events);
}

// --- latency attribution ------------------------------------------------

TEST(RecorderTest, PhaseComponentsSumExactlyToPerCallTotal) {
  Recording rec = RecordLossyPipelinedRead();
  RecordingAnalysis analysis = AnalyzeRecording(rec);
  ASSERT_GT(analysis.completed_calls, 0u);
  EXPECT_EQ(analysis.completed_calls, 32u);  // 64 KiB file / 2 KiB chunks
  size_t checked = 0;
  for (const CallBreakdown& c : analysis.calls) {
    if (!c.complete) {
      continue;
    }
    uint64_t sum = c.queued_nanos + c.req_wire_nanos + c.req_prop_nanos +
                   c.server_exec_nanos + c.reply_wire_nanos +
                   c.reply_prop_nanos + c.wait_nanos;
    EXPECT_EQ(sum, c.total_nanos) << "xid " << c.xid;
    EXPECT_GT(c.total_nanos, 0u) << "xid " << c.xid;
    ++checked;
  }
  EXPECT_EQ(checked, analysis.completed_calls);
  // The lossy mix actually bit: the run recovered from real drops.
  EXPECT_GT(analysis.total_retransmits, 0u);
  EXPECT_EQ(analysis.total_retransmits, analysis.drop_induced_retransmits +
                                            analysis.spurious_retransmits);
  // And the report over it renders deterministically.
  EXPECT_EQ(RenderReport(analysis),
            RenderReport(AnalyzeRecording(RecordLossyPipelinedRead())));
}

TEST(RecorderTest, RetransmitClassificationConsumesRecordedLosses) {
  Recording rec;
  rec.capacity = 64;
  rec.total_events = 12;
  // xid 1: the first transmit is dropped; the retransmit is drop-induced.
  rec.events.push_back(
      MakeEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, 1, 0, 100));
  rec.events.push_back(
      MakeEvent(RecEvent::kWireTx, RecEndpoint::kWireAtoB, 1, 10, 5, 40));
  rec.events.push_back(
      MakeEvent(RecEvent::kFaultDrop, RecEndpoint::kWireAtoB, 1, 10));
  rec.events.push_back(MakeEvent(RecEvent::kRetransmit, RecEndpoint::kClient,
                                 1, 500, /*attempt=*/2));
  rec.events.push_back(
      MakeEvent(RecEvent::kWireTx, RecEndpoint::kWireAtoB, 1, 500, 5, 40));
  rec.events.push_back(MakeEvent(RecEvent::kServerExecBegin,
                                 RecEndpoint::kServer, 1, 545, 200));
  rec.events.push_back(MakeEvent(RecEvent::kServerExecEnd,
                                 RecEndpoint::kServer, 1, 600, 200));
  rec.events.push_back(
      MakeEvent(RecEvent::kWireTx, RecEndpoint::kWireBtoA, 1, 600, 10, 40));
  rec.events.push_back(
      MakeEvent(RecEvent::kCallComplete, RecEndpoint::kClient, 1, 650, 0));
  // xid 2: every frame was healthy, just slow — the retransmit is a
  // spurious RTO.
  rec.events.push_back(
      MakeEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, 2, 700, 100));
  rec.events.push_back(MakeEvent(RecEvent::kRetransmit, RecEndpoint::kClient,
                                 2, 900, /*attempt=*/2));
  rec.events.push_back(
      MakeEvent(RecEvent::kCallComplete, RecEndpoint::kClient, 2, 950, 0));
  rec.total_events = rec.events.size();

  RecordingAnalysis analysis = AnalyzeRecording(rec);
  ASSERT_EQ(analysis.calls.size(), 2u);
  const CallBreakdown& dropped = analysis.calls[0];
  EXPECT_EQ(dropped.xid, 1u);
  EXPECT_EQ(dropped.attempts, 2u);
  EXPECT_EQ(dropped.drop_induced_retransmits, 1u);
  EXPECT_EQ(dropped.spurious_retransmits, 0u);
  const CallBreakdown& spurious = analysis.calls[1];
  EXPECT_EQ(spurious.xid, 2u);
  EXPECT_EQ(spurious.drop_induced_retransmits, 0u);
  EXPECT_EQ(spurious.spurious_retransmits, 1u);
  EXPECT_EQ(analysis.drop_induced_retransmits, 1u);
  EXPECT_EQ(analysis.spurious_retransmits, 1u);

  // Attribution detail for xid 1: queued until first tx, both wire
  // occupancies, both propagations, the server span, and the uncovered
  // RTO gap — summing exactly to the 650 ns lifetime.
  EXPECT_EQ(dropped.total_nanos, 650u);
  EXPECT_EQ(dropped.queued_nanos, 10u);
  EXPECT_EQ(dropped.req_wire_nanos, 10u);   // both request transmits
  EXPECT_EQ(dropped.server_exec_nanos, 55u);
  EXPECT_EQ(dropped.reply_wire_nanos, 10u);
  EXPECT_EQ(dropped.reply_prop_nanos, 40u);
  uint64_t sum = dropped.queued_nanos + dropped.req_wire_nanos +
                 dropped.req_prop_nanos + dropped.server_exec_nanos +
                 dropped.reply_wire_nanos + dropped.reply_prop_nanos +
                 dropped.wait_nanos;
  EXPECT_EQ(sum, dropped.total_nanos);
}

TEST(RecorderTest, WindowOccupancyCountsOverlappingCalls) {
  Recording rec;
  rec.capacity = 16;
  // Two calls on the wire at once between t=20 and t=30.
  rec.events.push_back(
      MakeEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, 1, 0));
  rec.events.push_back(
      MakeEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, 2, 0));
  rec.events.push_back(
      MakeEvent(RecEvent::kWireTx, RecEndpoint::kWireAtoB, 1, 10, 1, 1));
  rec.events.push_back(
      MakeEvent(RecEvent::kWireTx, RecEndpoint::kWireAtoB, 2, 20, 1, 1));
  rec.events.push_back(
      MakeEvent(RecEvent::kCallComplete, RecEndpoint::kClient, 1, 30, 0));
  rec.events.push_back(
      MakeEvent(RecEvent::kCallComplete, RecEndpoint::kClient, 2, 40, 0));
  rec.total_events = rec.events.size();

  RecordingAnalysis analysis = AnalyzeRecording(rec);
  EXPECT_EQ(analysis.max_in_flight, 2u);
  // Submission alone must NOT count as in-flight (the pipelined path
  // queues submissions behind a full window).
  ASSERT_FALSE(analysis.window.empty());
  EXPECT_EQ(analysis.window.front().at_nanos, 10u);
}

// --- (conn, xid)-keyed analysis and truncation accounting ---------------

RecordedEvent MakeConnEvent(uint32_t conn, RecEvent type, RecEndpoint ep,
                            uint32_t xid, uint64_t vt, uint64_t a = 0,
                            uint64_t b = 0) {
  RecordedEvent e = MakeEvent(type, ep, xid, vt, a, b);
  e.conn = conn;
  return e;
}

TEST(RecorderTest, ConnKeyedCallsAnalyzeSeparately) {
  // Two mux connections colliding on xid 1. Keyed by bare xid the
  // analyzer would fuse them into one nonsense call (two submits, two
  // completes); keyed by (conn, xid) each attributes independently and
  // the phase-sum invariant holds for both.
  Recording rec;
  rec.capacity = 32;
  rec.events.push_back(MakeConnEvent(1, RecEvent::kCallSubmit,
                                     RecEndpoint::kClient, 1, 0, 100));
  rec.events.push_back(MakeConnEvent(2, RecEvent::kCallSubmit,
                                     RecEndpoint::kClient, 1, 5, 100));
  rec.events.push_back(MakeConnEvent(1, RecEvent::kWireTx,
                                     RecEndpoint::kWireAtoB, 1, 10, 5, 40));
  rec.events.push_back(MakeConnEvent(2, RecEvent::kWireTx,
                                     RecEndpoint::kWireAtoB, 1, 15, 5, 40));
  rec.events.push_back(MakeConnEvent(1, RecEvent::kCallComplete,
                                     RecEndpoint::kClient, 1, 100, 0));
  rec.events.push_back(MakeConnEvent(2, RecEvent::kCallComplete,
                                     RecEndpoint::kClient, 1, 120, 0));
  rec.total_events = rec.events.size();

  RecordingAnalysis analysis = AnalyzeRecording(rec);
  ASSERT_EQ(analysis.calls.size(), 2u);
  EXPECT_EQ(analysis.completed_calls, 2u);
  EXPECT_EQ(analysis.truncated_calls, 0u);
  EXPECT_EQ(analysis.calls[0].conn, 1u);
  EXPECT_EQ(analysis.calls[1].conn, 2u);
  EXPECT_EQ(analysis.calls[0].total_nanos, 100u);
  EXPECT_EQ(analysis.calls[1].total_nanos, 115u);
  for (const CallBreakdown& c : analysis.calls) {
    uint64_t sum = c.queued_nanos + c.req_wire_nanos + c.req_prop_nanos +
                   c.server_exec_nanos + c.reply_wire_nanos +
                   c.reply_prop_nanos + c.wait_nanos;
    EXPECT_EQ(sum, c.total_nanos) << "conn " << c.conn;
  }
}

TEST(RecorderTest, RingTruncatedSubmitIsMarkedNotMisattributed) {
  // Bugfix regression. When the ring overwrote a call's kCallSubmit, the
  // analyzer used to drop the call silently — the report's call count
  // disagreed with its own completion events and the "phases sum to
  // total" invariant was unverifiable. Such calls are now listed, marked
  // truncated, counted in truncated_calls, and excluded from aggregates
  // (their span has no anchor).
  Recording rec;
  rec.capacity = 8;
  rec.dropped_events = 5;  // the ring wrapped; xid 7's submit is gone
  rec.events.push_back(MakeConnEvent(1, RecEvent::kServerExecBegin,
                                     RecEndpoint::kServer, 7, 500, 10));
  rec.events.push_back(MakeConnEvent(1, RecEvent::kServerExecEnd,
                                     RecEndpoint::kServer, 7, 520, 10));
  rec.events.push_back(MakeConnEvent(1, RecEvent::kCallComplete,
                                     RecEndpoint::kClient, 7, 600, 0));
  // An intact call alongside it still attributes normally.
  rec.events.push_back(MakeConnEvent(1, RecEvent::kCallSubmit,
                                     RecEndpoint::kClient, 8, 700, 100));
  rec.events.push_back(MakeConnEvent(1, RecEvent::kCallComplete,
                                     RecEndpoint::kClient, 8, 800, 0));
  rec.total_events = rec.events.size() + rec.dropped_events;

  RecordingAnalysis analysis = AnalyzeRecording(rec);
  EXPECT_EQ(analysis.truncated_calls, 1u);
  EXPECT_EQ(analysis.completed_calls, 1u);  // only the intact call
  ASSERT_EQ(analysis.calls.size(), 2u);
  const CallBreakdown* truncated = nullptr;
  const CallBreakdown* intact = nullptr;
  for (const CallBreakdown& c : analysis.calls) {
    (c.truncated ? truncated : intact) = &c;
  }
  ASSERT_NE(truncated, nullptr);
  ASSERT_NE(intact, nullptr);
  EXPECT_EQ(truncated->xid, 7u);
  EXPECT_FALSE(truncated->complete);  // not a completed, attributable call
  EXPECT_EQ(truncated->total_nanos, 0u);  // nothing summed from a lost span
  EXPECT_EQ(intact->xid, 8u);
  EXPECT_EQ(intact->total_nanos, 100u);
  // The report names the truncation instead of silently shrinking.
  std::string report = RenderReport(analysis);
  EXPECT_NE(report.find("truncated"), std::string::npos);
}

TEST(RecorderTest, ConnFieldSerializesOnlyWhenTagged) {
  // Conn 0 (every pre-mux recording) serializes without a "c" key, so
  // existing recordings stay byte-identical; tagged events round-trip.
  Recording untagged = SmallRecording();
  std::string untagged_json = RecordingToJson(untagged);
  EXPECT_EQ(untagged_json.find("\"c\""), std::string::npos);

  Recording tagged = SmallRecording();
  for (RecordedEvent& e : tagged.events) {
    e.conn = 42;
  }
  std::string tagged_json = RecordingToJson(tagged);
  EXPECT_NE(tagged_json.find("\"c\""), std::string::npos);
  auto parsed = ParseRecording(tagged_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->events.size(), tagged.events.size());
  for (const RecordedEvent& e : parsed->events) {
    EXPECT_EQ(e.conn, 42u);
  }
  // And an untagged round trip parses conn back to 0.
  auto untagged_parsed = ParseRecording(untagged_json);
  ASSERT_TRUE(untagged_parsed.ok());
  EXPECT_EQ(untagged_parsed->events[0].conn, 0u);
}

TEST(RecorderTest, ConnScopeNestsAndTagsEvents) {
  EXPECT_EQ(RecorderConnScope::Current(), 0u);
  RecorderSession session(/*capacity=*/8);
  {
    RecorderConnScope outer(5);
    EXPECT_EQ(RecorderConnScope::Current(), 5u);
    RecordEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, 1, 10);
    {
      RecorderConnScope inner(9);
      RecordEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, 1, 20);
    }
    EXPECT_EQ(RecorderConnScope::Current(), 5u);
    RecordEvent(RecEvent::kCallComplete, RecEndpoint::kClient, 1, 30);
  }
  EXPECT_EQ(RecorderConnScope::Current(), 0u);
  Recording rec = session.Stop();
  ASSERT_EQ(rec.events.size(), 3u);
  EXPECT_EQ(rec.events[0].conn, 5u);
  EXPECT_EQ(rec.events[1].conn, 9u);
  EXPECT_EQ(rec.events[2].conn, 5u);
}

}  // namespace
}  // namespace flexrpc
