// Unit tests for the CORBA IDL front-end, including the paper's own
// interface definitions (SysLog from the introduction, FileIO from §4.2).

#include <gtest/gtest.h>

#include "src/idl/corba_parser.h"

namespace flexrpc {
namespace {

std::unique_ptr<InterfaceFile> Parse(std::string_view src,
                                     DiagnosticSink* diags) {
  return ParseCorbaIdl(src, "test.idl", diags);
}

std::unique_ptr<InterfaceFile> ParseOk(std::string_view src) {
  DiagnosticSink diags;
  auto file = Parse(src, &diags);
  EXPECT_FALSE(diags.HasErrors()) << diags.ToString();
  return file;
}

TEST(CorbaParserTest, PaperSysLogInterface) {
  auto file = ParseOk(R"(
    interface SysLog {
      void write_msg(in string msg);
    };
  )");
  ASSERT_NE(file, nullptr);
  const InterfaceDecl* itf = file->FindInterface("SysLog");
  ASSERT_NE(itf, nullptr);
  ASSERT_EQ(itf->ops.size(), 1u);
  const OperationDecl& op = itf->ops[0];
  EXPECT_EQ(op.name, "write_msg");
  EXPECT_EQ(op.result->kind(), TypeKind::kVoid);
  ASSERT_EQ(op.params.size(), 1u);
  EXPECT_EQ(op.params[0].dir, ParamDir::kIn);
  EXPECT_EQ(op.params[0].type->kind(), TypeKind::kString);
}

TEST(CorbaParserTest, PaperFileIoInterface) {
  auto file = ParseOk(R"(
    interface FileIO {
      sequence<octet> read(in unsigned long count);
      void write(in sequence<octet> data);
    };
  )");
  ASSERT_NE(file, nullptr);
  const InterfaceDecl* itf = file->FindInterface("FileIO");
  ASSERT_NE(itf, nullptr);
  ASSERT_EQ(itf->ops.size(), 2u);
  const OperationDecl& read = itf->ops[0];
  EXPECT_EQ(read.result->kind(), TypeKind::kSequence);
  EXPECT_EQ(read.result->element()->kind(), TypeKind::kOctet);
  EXPECT_EQ(read.params[0].type->kind(), TypeKind::kU32);
  const OperationDecl& write = itf->ops[1];
  EXPECT_EQ(write.result->kind(), TypeKind::kVoid);
  EXPECT_EQ(write.params[0].type->kind(), TypeKind::kSequence);
}

TEST(CorbaParserTest, AllPrimitiveTypes) {
  auto file = ParseOk(R"(
    interface P {
      void f(in boolean a, in octet b, in char c, in short d,
             in unsigned short e, in long g, in unsigned long h,
             in long long i, in unsigned long long j, in float k,
             in double l);
    };
  )");
  ASSERT_NE(file, nullptr);
  const auto& params = file->FindInterface("P")->ops[0].params;
  ASSERT_EQ(params.size(), 11u);
  EXPECT_EQ(params[0].type->kind(), TypeKind::kBool);
  EXPECT_EQ(params[1].type->kind(), TypeKind::kOctet);
  EXPECT_EQ(params[2].type->kind(), TypeKind::kChar);
  EXPECT_EQ(params[3].type->kind(), TypeKind::kI16);
  EXPECT_EQ(params[4].type->kind(), TypeKind::kU16);
  EXPECT_EQ(params[5].type->kind(), TypeKind::kI32);
  EXPECT_EQ(params[6].type->kind(), TypeKind::kU32);
  EXPECT_EQ(params[7].type->kind(), TypeKind::kI64);
  EXPECT_EQ(params[8].type->kind(), TypeKind::kU64);
  EXPECT_EQ(params[9].type->kind(), TypeKind::kF32);
  EXPECT_EQ(params[10].type->kind(), TypeKind::kF64);
}

TEST(CorbaParserTest, ParamDirections) {
  auto file = ParseOk(R"(
    interface D {
      void f(in long a, out long b, inout long c);
    };
  )");
  const auto& params = file->FindInterface("D")->ops[0].params;
  EXPECT_EQ(params[0].dir, ParamDir::kIn);
  EXPECT_EQ(params[1].dir, ParamDir::kOut);
  EXPECT_EQ(params[2].dir, ParamDir::kInOut);
}

TEST(CorbaParserTest, StructAndTypedef) {
  auto file = ParseOk(R"(
    struct fattr {
      unsigned long size;
      unsigned long mtime;
    };
    typedef sequence<octet, 8192> nfsdata;
    typedef long grid[4][3];
    interface I {
      void f(in fattr a, in nfsdata d, in grid g);
    };
  )");
  ASSERT_NE(file, nullptr);
  const Type* fattr = file->types.FindNamed("fattr");
  ASSERT_NE(fattr, nullptr);
  EXPECT_EQ(fattr->kind(), TypeKind::kStruct);
  ASSERT_EQ(fattr->fields().size(), 2u);
  EXPECT_EQ(fattr->fields()[0].name, "size");

  const Type* nfsdata = file->types.FindNamed("nfsdata");
  ASSERT_NE(nfsdata, nullptr);
  EXPECT_EQ(nfsdata->kind(), TypeKind::kAlias);
  EXPECT_EQ(nfsdata->Resolve()->kind(), TypeKind::kSequence);
  EXPECT_EQ(nfsdata->Resolve()->bound(), 8192u);

  const Type* grid = file->types.FindNamed("grid")->Resolve();
  ASSERT_EQ(grid->kind(), TypeKind::kArray);
  EXPECT_EQ(grid->bound(), 4u);  // outer dimension first
  EXPECT_EQ(grid->element()->bound(), 3u);
}

TEST(CorbaParserTest, EnumValues) {
  auto file = ParseOk(R"(
    enum nfsstat { NFS_OK = 0, NFSERR_PERM = 1, NFSERR_NOENT };
    interface I { void f(in nfsstat s); };
  )");
  const Type* e = file->types.FindNamed("nfsstat");
  ASSERT_EQ(e->members().size(), 3u);
  EXPECT_EQ(e->members()[2].value, 2u);  // implicit increment
}

TEST(CorbaParserTest, UnionArms) {
  auto file = ParseOk(R"(
    enum status { OK = 0, FAIL = 1 };
    union reply switch (status) {
      case 0: sequence<octet> data;
      default: long error;
    };
    interface I { void f(in reply r); };
  )");
  const Type* u = file->types.FindNamed("reply");
  ASSERT_EQ(u->arms().size(), 2u);
  EXPECT_FALSE(u->arms()[0].is_default);
  EXPECT_TRUE(u->arms()[1].is_default);
}

TEST(CorbaParserTest, ConstantsUsableAsBounds) {
  auto file = ParseOk(R"(
    const unsigned long MAX = 1024;
    typedef sequence<octet, MAX> buf;
    interface I { void f(in buf b); };
  )");
  EXPECT_EQ(file->types.FindNamed("buf")->Resolve()->bound(), 1024u);
  ASSERT_EQ(file->constants.size(), 1u);
  EXPECT_EQ(file->constants[0].value, 1024u);
}

TEST(CorbaParserTest, ConstExprArithmetic) {
  auto file = ParseOk(R"(
    const unsigned long A = 10;
    const unsigned long B = A + 5 - 2;
    interface I { void f(in string<B> s); };
  )");
  EXPECT_EQ(file->constants[1].value, 13u);
}

TEST(CorbaParserTest, ModuleWrapping) {
  auto file = ParseOk(R"(
    module pipes {
      interface FileIO { void write(in sequence<octet> data); };
    };
  )");
  EXPECT_EQ(file->module_name, "pipes");
  EXPECT_NE(file->FindInterface("FileIO"), nullptr);
}

TEST(CorbaParserTest, InterfaceInheritanceParsed) {
  auto file = ParseOk(R"(
    interface A { void fa(); };
    interface B : A { void fb(); };
  )");
  const InterfaceDecl* b = file->FindInterface("B");
  ASSERT_EQ(b->bases.size(), 1u);
  EXPECT_EQ(b->bases[0], "A");
}

TEST(CorbaParserTest, ObjRefParameter) {
  auto file = ParseOk(R"(
    interface Target { void poke(); };
    interface Sender { void send(in Target t); };
  )");
  const auto& p = file->FindInterface("Sender")->ops[0].params[0];
  EXPECT_EQ(p.type->kind(), TypeKind::kObjRef);
  EXPECT_EQ(p.type->name(), "Target");
}

TEST(CorbaParserTest, OnewayRejectsOutputs) {
  DiagnosticSink diags;
  auto file = Parse(R"(
    interface I { oneway void f(out long x); };
  )", &diags);
  EXPECT_EQ(file, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(CorbaParserTest, UnknownTypeIsError) {
  DiagnosticSink diags;
  auto file = Parse("interface I { void f(in bogus x); };", &diags);
  EXPECT_EQ(file, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(CorbaParserTest, DuplicateTypeIsError) {
  DiagnosticSink diags;
  auto file = Parse(R"(
    struct s { long a; };
    struct s { long b; };
    interface I { void f(in s x); };
  )", &diags);
  EXPECT_EQ(file, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(CorbaParserTest, MissingSemicolonRecovers) {
  DiagnosticSink diags;
  Parse("interface I { void f() }", &diags);
  EXPECT_TRUE(diags.HasErrors());  // error, but no crash/hang
}

TEST(CorbaParserTest, SequenceOfStruct) {
  auto file = ParseOk(R"(
    struct entry { long id; string name; };
    interface Dir { void list(out sequence<entry> entries); };
  )");
  const Type* t = file->FindInterface("Dir")->ops[0].params[0].type;
  EXPECT_EQ(t->kind(), TypeKind::kSequence);
  EXPECT_EQ(t->element()->kind(), TypeKind::kStruct);
}

TEST(CorbaParserTest, BoundedString) {
  auto file = ParseOk(R"(
    interface I { void f(in string<64> s); };
  )");
  EXPECT_EQ(file->FindInterface("I")->ops[0].params[0].type->bound(), 64u);
}

}  // namespace
}  // namespace flexrpc
