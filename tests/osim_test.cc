// Tests for the OS simulation substrate: address spaces, copyin/copyout,
// port name tables (unique vs nonunique semantics), and the kernel API.

#include <gtest/gtest.h>

#include <cstring>

#include "src/osim/address_space.h"
#include "src/osim/kernel.h"
#include "src/support/rng.h"

namespace flexrpc {
namespace {

TEST(AddressSpaceTest, SpacesAreDisjoint) {
  AddressSpace a("a");
  AddressSpace b("b");
  void* pa = a.Allocate(64);
  void* pb = b.Allocate(64);
  EXPECT_TRUE(a.Owns(pa));
  EXPECT_FALSE(b.Owns(pa));
  EXPECT_TRUE(b.Owns(pb));
  a.Free(pa);
  b.Free(pb);
}

TEST(AddressSpaceTest, CopyToUserValidatesTarget) {
  AddressSpace user("user");
  AddressSpace kernel("kernel");
  void* ubuf = user.Allocate(16);
  void* kbuf = kernel.Allocate(16);
  std::memset(kbuf, 0xAA, 16);

  EXPECT_TRUE(CopyToUser(&user, ubuf, kbuf, 16).ok());
  EXPECT_EQ(static_cast<uint8_t*>(ubuf)[7], 0xAA);

  // A kernel pointer is not a valid user target (and vice versa).
  EXPECT_EQ(CopyToUser(&user, kbuf, kbuf, 16).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(CopyFromUser(&user, kbuf, kbuf, 16).code(),
            StatusCode::kPermissionDenied);
}

TEST(AddressSpaceTest, CopyFromUserMovesData) {
  AddressSpace user("user");
  AddressSpace kernel("kernel");
  void* ubuf = user.Allocate(16);
  std::memset(ubuf, 0x55, 16);
  void* kbuf = kernel.Allocate(16);
  EXPECT_TRUE(CopyFromUser(&user, kbuf, ubuf, 16).ok());
  EXPECT_EQ(static_cast<uint8_t*>(kbuf)[3], 0x55);
}

class NameTableTest : public ::testing::Test {
 protected:
  Kernel kernel_;
};

TEST_F(NameTableTest, UniqueInsertCoalesces) {
  Task* task = kernel_.CreateTask("t");
  Port port(1, task);
  PortName n1 = task->names().InsertUnique(&port, RightType::kSend);
  PortName n2 = task->names().InsertUnique(&port, RightType::kSend);
  EXPECT_EQ(n1, n2);  // single name per port: the Mach invariant
  EXPECT_EQ(task->names().size(), 1u);
  auto entry = task->names().Lookup(n1);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->refs, 2u);
}

TEST_F(NameTableTest, NonUniqueInsertAllocatesFreshNames) {
  Task* task = kernel_.CreateTask("t");
  Port port(1, task);
  PortName n1 = task->names().InsertNonUnique(&port, RightType::kSend);
  PortName n2 = task->names().InsertNonUnique(&port, RightType::kSend);
  EXPECT_NE(n1, n2);
  EXPECT_EQ(task->names().size(), 2u);
}

TEST_F(NameTableTest, ReleaseDropsRefsThenName) {
  Task* task = kernel_.CreateTask("t");
  Port port(1, task);
  PortName name = task->names().InsertUnique(&port, RightType::kSend);
  task->names().InsertUnique(&port, RightType::kSend);  // refs = 2
  EXPECT_TRUE(task->names().Release(name).ok());
  EXPECT_EQ(task->names().size(), 1u);  // still referenced
  EXPECT_TRUE(task->names().Release(name).ok());
  EXPECT_EQ(task->names().size(), 0u);
  EXPECT_EQ(task->names().Release(name).code(), StatusCode::kNotFound);
}

TEST_F(NameTableTest, ReleasedNameCanBeReinsertedUniquely) {
  Task* task = kernel_.CreateTask("t");
  Port port(1, task);
  PortName n1 = task->names().InsertUnique(&port, RightType::kSend);
  ASSERT_TRUE(task->names().Release(n1).ok());
  PortName n2 = task->names().InsertUnique(&port, RightType::kSend);
  EXPECT_NE(n2, kInvalidPortName);
  EXPECT_EQ(task->names().size(), 1u);
}

TEST_F(NameTableTest, RefConservationUnderRandomOps) {
  Task* task = kernel_.CreateTask("t");
  std::vector<std::unique_ptr<Port>> ports;
  for (int i = 0; i < 4; ++i) {
    ports.push_back(std::make_unique<Port>(100 + i, task));
  }
  Rng rng(42);
  uint64_t inserts = 0;
  uint64_t releases = 0;
  std::vector<PortName> names;
  for (int step = 0; step < 2000; ++step) {
    if (names.empty() || rng.NextBool()) {
      Port* p = ports[rng.NextBelow(ports.size())].get();
      PortName n = rng.NextBool()
                       ? task->names().InsertUnique(p, RightType::kSend)
                       : task->names().InsertNonUnique(p, RightType::kSend);
      names.push_back(n);
      ++inserts;
    } else {
      size_t pick = rng.NextBelow(names.size());
      ASSERT_TRUE(task->names().Release(names[pick]).ok());
      names.erase(names.begin() + static_cast<long>(pick));
      ++releases;
    }
  }
  EXPECT_EQ(task->names().total_refs(), inserts - releases);
}

TEST(KernelTest, CreatePortInsertsReceiveRight) {
  Kernel kernel;
  Task* task = kernel.CreateTask("t");
  PortName name = kernel.CreatePort(task);
  auto entry = task->names().Lookup(name);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->type, RightType::kReceive);
  EXPECT_EQ(kernel.port_count(), 1u);
}

TEST(KernelTest, MakeSendRightRequiresReceiveRight) {
  Kernel kernel;
  Task* server = kernel.CreateTask("server");
  Task* client = kernel.CreateTask("client");
  PortName recv = kernel.CreatePort(server);
  auto send = kernel.MakeSendRight(server, recv, client);
  ASSERT_TRUE(send.ok());
  auto entry = client->names().Lookup(*send);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->type, RightType::kSend);

  // Deriving from a send right fails.
  auto again = kernel.MakeSendRight(client, *send, server);
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(KernelTest, TransferRightUniqueVsNonUnique) {
  Kernel kernel;
  Task* a = kernel.CreateTask("a");
  Task* b = kernel.CreateTask("b");
  PortName recv = kernel.CreatePort(a);
  auto send = kernel.MakeSendRight(a, recv, a);
  ASSERT_TRUE(send.ok());

  auto t1 = kernel.TransferRight(a, *send, b, /*nonunique=*/false);
  auto t2 = kernel.TransferRight(a, *send, b, /*nonunique=*/false);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t1, *t2);  // unique semantics coalesce

  auto t3 = kernel.TransferRight(a, *send, b, /*nonunique=*/true);
  ASSERT_TRUE(t3.ok());
  EXPECT_NE(*t3, *t1);  // relaxed semantics: a fresh name
}

TEST(KernelTest, TransferOfUnknownNameFails) {
  Kernel kernel;
  Task* a = kernel.CreateTask("a");
  Task* b = kernel.CreateTask("b");
  EXPECT_EQ(kernel.TransferRight(a, 0xDEAD, b, false).status().code(),
            StatusCode::kNotFound);
}

TEST(KernelTest, TrapCountsKernelEntries) {
  Kernel kernel;
  uint64_t before = kernel.trap_count();
  kernel.Trap();
  kernel.Trap();
  EXPECT_EQ(kernel.trap_count(), before + 2);
}

}  // namespace
}  // namespace flexrpc
