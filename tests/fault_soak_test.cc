// Seeded randomized soak of the lossy NFS read path (ISSUE 3, satellite 3).
//
// For each seed we derive a fault mix (drop/dup/reorder/corrupt/extra
// delay), run the Figure-2 NFS read through the at-most-once
// RetryingTransport, and assert the robustness contract:
//   * every call terminates with OK or a documented degradation code —
//     never a hang (the virtual clock bounds every wait);
//   * the server work function runs at most once per xid, even under
//     duplicated and retransmitted requests;
//   * trace counters are identical across two runs of the same seed
//     (the whole substrate is deterministic given the seed).
//
// Registered under the `fault` ctest label via the flexrpc_fault_tests
// binary; tools/ci.sh runs the label in every sanitizer configuration.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/analysis/flexrec.h"
#include "src/apps/nfs.h"
#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/rpc/pipeline.h"
#include "src/rpc/retry.h"
#include "src/support/event_queue.h"
#include "src/support/recorder.h"
#include "src/support/rng.h"
#include "src/support/trace.h"

namespace flexrpc {
namespace {

constexpr size_t kSoakFileSize = 64 * 1024;  // 8 chunks of kNfsMaxData

// Fault mix derived deterministically from the seed: moderate enough that
// most seeds finish OK, harsh enough that retransmits and dup-cache hits
// actually happen.
FaultConfig MixForSeed(uint64_t seed, uint64_t direction_salt) {
  Rng rng(seed * 2654435761u + direction_salt);
  FaultConfig config;
  config.drop_prob = rng.NextDouble() * 0.25;
  config.dup_prob = rng.NextDouble() * 0.15;
  config.reorder_prob = rng.NextDouble() * 0.15;
  config.corrupt_prob = rng.NextDouble() * 0.08;
  config.extra_delay_prob = rng.NextDouble() * 0.20;
  config.seed = seed ^ direction_salt;
  return config;
}

struct SoakOutcome {
  Status status = Status::Ok();
  NfsClient::ReadStats stats;
  int max_executions_per_xid = 0;
  TraceSnapshot trace;
};

// One full soak iteration, built from scratch so a repeat with the same
// seed replays the identical event sequence.
SoakOutcome RunSoak(uint64_t seed) {
  TraceSession session;

  NfsFileServer server(kSoakFileSize, /*seed=*/seed);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  DatagramChannel channel(LinkModel(), FaultPlan(MixForSeed(seed, 0xA2B)),
                          FaultPlan(MixForSeed(seed, 0xB2A)), &clock);

  std::map<uint32_t, int> executions;
  DatagramHandler inner = NfsFileServer::MakeHandler(&server);
  DatagramHandler counting = [&executions, inner](
                                 ByteSpan request,
                                 std::vector<uint8_t>* reply) {
    auto xid = PeekXid(request);
    if (xid.ok()) {
      ++executions[*xid];
    }
    return inner(request, reply);
  };

  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.deadline_nanos = 8'000'000'000;  // 8 virtual seconds per call
  policy.jitter_seed = seed + 1;
  RetryingTransport transport(&channel, counting, RemoteServerModel(),
                              policy);

  SoakOutcome outcome;
  auto stats =
      client.ReadFileLossy(NfsClient::StubKind::kGeneratedUserBuffer,
                           &transport);
  if (stats.ok()) {
    outcome.stats = *stats;
  } else {
    outcome.status = stats.status();
  }
  for (const auto& [xid, count] : executions) {
    outcome.max_executions_per_xid =
        std::max(outcome.max_executions_per_xid, count);
  }
  outcome.trace = session.Report();
  return outcome;
}

bool IsDocumentedOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

TEST(FaultSoakTest, EverySeedTerminatesWithDocumentedCode) {
  int ok_runs = 0;
  uint64_t total_retransmits = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SoakOutcome outcome = RunSoak(seed);
    EXPECT_TRUE(IsDocumentedOutcome(outcome.status))
        << "seed " << seed << ": " << outcome.status.ToString();
    EXPECT_LE(outcome.max_executions_per_xid, 1)
        << "seed " << seed << " executed some xid more than once";
    if (outcome.status.ok()) {
      ++ok_runs;
      EXPECT_EQ(outcome.stats.bytes_read, kSoakFileSize) << "seed " << seed;
      total_retransmits += outcome.stats.retransmits;
    }
  }
  // The mix is tuned so the soak exercises both success and recovery: most
  // seeds should finish, and the wire should have actually misbehaved.
  EXPECT_GE(ok_runs, 6);
  EXPECT_GT(total_retransmits, 0u);
}

TEST(FaultSoakTest, SameSeedTwiceYieldsIdenticalTraceCounters) {
  for (uint64_t seed : {3u, 7u}) {
    SoakOutcome first = RunSoak(seed);
    SoakOutcome second = RunSoak(seed);
    EXPECT_EQ(first.status.code(), second.status.code()) << "seed " << seed;
    for (size_t i = 0; i < kTraceCounterCount; ++i) {
      EXPECT_EQ(first.trace.counters[i], second.trace.counters[i])
          << "seed " << seed << " counter "
          << TraceCounterName(static_cast<TraceCounter>(i));
    }
  }
}

TEST(FaultSoakTest, NfsDroppedReplyProvesAtMostOnce) {
  // The acceptance scenario at the NFS layer: a single-chunk read whose
  // reply datagram is dropped. The retransmitted request must be answered
  // from the reply cache — one server execution, one dup-cache hit, OK.
  NfsFileServer server(kNfsMaxData, /*seed=*/21);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  FaultPlan reply_eater;
  reply_eater.DropExactly(0, 0);
  DatagramChannel channel(LinkModel(), FaultPlan(), std::move(reply_eater),
                          &clock);
  RetryingTransport transport(&channel, NfsFileServer::MakeHandler(&server),
                              RemoteServerModel(), RetryPolicy{});

  auto stats = client.ReadFileLossy(
      NfsClient::StubKind::kGeneratedUserBuffer, &transport);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->bytes_read, kNfsMaxData);
  EXPECT_EQ(stats->retransmits, 1u);
  EXPECT_EQ(stats->dup_cache_hits, 1u);
  EXPECT_EQ(stats->server_executions, 1u);
}

TEST(FaultSoakTest, NfsBlackHoleDegradesWithinDeadline) {
  // 100% loss: the read must come back with kUnavailable (attempt budget)
  // or kDeadlineExceeded (virtual deadline) without hanging — the whole
  // wait is charged to the virtual clock.
  NfsFileServer server(kNfsMaxData, /*seed=*/22);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  FaultConfig black_hole;
  black_hole.drop_prob = 1.0;
  DatagramChannel channel(LinkModel(), FaultPlan{black_hole},
                          FaultPlan{black_hole}, &clock);
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.deadline_nanos = 2'000'000'000;
  RetryingTransport transport(&channel, NfsFileServer::MakeHandler(&server),
                              RemoteServerModel(), policy);

  auto stats = client.ReadFileLossy(
      NfsClient::StubKind::kGeneratedUserBuffer, &transport);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().code() == StatusCode::kUnavailable ||
              stats.status().code() == StatusCode::kDeadlineExceeded)
      << stats.status().ToString();
  EXPECT_LE(clock.now_nanos(), policy.deadline_nanos + 100'000'000);
}

// --- pipelined-path interaction matrix (ISSUE 4, satellite 5) -----------
//
// The sliding-window transport multiplexes several xids over the same
// lossy wire, so fault interactions the serial path never sees (a stale
// reply for an already-completed call racing a fresh one, a reordered
// duplicate landing mid-retransmit) are exercised here explicitly.

struct PipelinedOutcome {
  Status status = Status::Ok();
  NfsClient::ReadStats stats;
  int max_executions_per_xid = 0;
  PipelinedTransport::Stats rpc;
  TraceSnapshot trace;
  uint64_t virtual_nanos = 0;
};

PipelinedOutcome RunPipelinedSoak(uint64_t seed, const FaultConfig& to_server,
                                  const FaultConfig& to_client,
                                  uint32_t window = 8,
                                  size_t chunk_bytes = 2048,
                                  bool adaptive = false) {
  TraceSession session;

  NfsFileServer server(kSoakFileSize, /*seed=*/seed);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  DatagramChannel channel(LinkModel(), FaultPlan(to_server),
                          FaultPlan(to_client), &clock);
  EventQueue events(&clock);

  std::map<uint32_t, int> executions;
  DatagramHandler inner = NfsFileServer::MakeHandler(&server);
  DatagramHandler counting = [&executions, inner](
                                 ByteSpan request,
                                 std::vector<uint8_t>* reply) {
    auto xid = PeekXid(request);
    if (xid.ok()) {
      ++executions[*xid];
    }
    return inner(request, reply);
  };

  PipelinePolicy policy;
  policy.window = window;
  policy.retry.max_attempts = 12;
  policy.retry.deadline_nanos = 8'000'000'000;
  policy.retry.jitter_seed = seed + 1;
  policy.retry.adaptive.enabled = adaptive;
  PipelinedTransport transport(&channel, counting, RemoteServerModel(),
                               policy, &events);

  PipelinedOutcome outcome;
  auto stats = client.ReadFilePipelined(
      NfsClient::StubKind::kGeneratedUserBuffer, &transport, chunk_bytes);
  if (stats.ok()) {
    outcome.stats = *stats;
  } else {
    outcome.status = stats.status();
  }
  for (const auto& [xid, count] : executions) {
    outcome.max_executions_per_xid =
        std::max(outcome.max_executions_per_xid, count);
  }
  outcome.rpc = transport.stats();
  outcome.trace = session.Report();
  outcome.virtual_nanos = clock.now_nanos();
  return outcome;
}

TEST(PipelinedFaultMatrixTest, ReorderPlusDuplicateKeepsAtMostOnce) {
  // Reordering shuffles which in-flight xid's reply lands first;
  // duplication makes the shuffled frames arrive twice. The window must
  // still match every reply by xid and the dup cache must absorb the rest.
  FaultConfig mix;
  mix.reorder_prob = 0.5;
  mix.dup_prob = 0.5;
  mix.seed = 1001;
  PipelinedOutcome outcome = RunPipelinedSoak(31, mix, mix);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.stats.bytes_read, kSoakFileSize);
  EXPECT_LE(outcome.max_executions_per_xid, 1);
  EXPECT_GT(outcome.rpc.dup_cache_hits, 0u);   // duplicates were absorbed
  EXPECT_EQ(outcome.rpc.dup_cache_misses, outcome.stats.rpc_calls);
}

TEST(PipelinedFaultMatrixTest, StaleReplyFloodIsCountedAndIgnored) {
  // Duplicate every reply frame: the first copy completes the call, the
  // second finds no in-flight entry and must be dropped as stale — never
  // delivered to a different call's completion.
  FaultConfig reply_dupper;
  reply_dupper.dup_prob = 1.0;
  reply_dupper.seed = 1002;
  PipelinedOutcome outcome =
      RunPipelinedSoak(32, FaultConfig{}, reply_dupper);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.stats.bytes_read, kSoakFileSize);
  EXPECT_LE(outcome.max_executions_per_xid, 1);
  EXPECT_GT(outcome.rpc.stale_replies, 0u);
  // Duplicated frames double the reply wire's occupancy, so queueing delay
  // can push some replies past the RTO — retransmits are allowed, but every
  // one of them must have been answered from the cache, not re-executed.
  EXPECT_EQ(outcome.rpc.dup_cache_misses, outcome.stats.rpc_calls);
}

TEST(PipelinedFaultMatrixTest, CorruptThenRetransmitRecoversViaDupCache) {
  // Corrupt a good fraction of reply frames. The pipelined path treats a
  // checksum failure as a drop, so the RTO retransmits and the server's
  // reply cache answers without re-executing the work function.
  FaultConfig corruptor;
  corruptor.corrupt_prob = 0.5;
  corruptor.seed = 1003;
  PipelinedOutcome outcome =
      RunPipelinedSoak(33, FaultConfig{}, corruptor);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.stats.bytes_read, kSoakFileSize);
  EXPECT_LE(outcome.max_executions_per_xid, 1);
  EXPECT_GT(outcome.rpc.corrupt_replies, 0u);
  EXPECT_GT(outcome.rpc.retransmits, 0u);
  EXPECT_GT(outcome.rpc.dup_cache_hits, 0u);
}

TEST(PipelinedFaultMatrixTest, SameSeedTwiceMatchesPipelineCounters) {
  // Two-run determinism, including the rpc.pipeline.* counters: the event
  // queue's FIFO tie-break plus seeded fault plans make the whole pipelined
  // soak a pure function of the seed.
  FaultConfig mix = MixForSeed(5, 0xA2B);
  FaultConfig reply_mix = MixForSeed(5, 0xB2A);
  PipelinedOutcome first = RunPipelinedSoak(5, mix, reply_mix);
  PipelinedOutcome second = RunPipelinedSoak(5, mix, reply_mix);
  EXPECT_EQ(first.status.code(), second.status.code());
  EXPECT_EQ(first.virtual_nanos, second.virtual_nanos);
  for (size_t i = 0; i < kTraceCounterCount; ++i) {
    EXPECT_EQ(first.trace.counters[i], second.trace.counters[i])
        << "counter " << TraceCounterName(static_cast<TraceCounter>(i));
  }
  EXPECT_GT(first.trace.counters[static_cast<size_t>(
                TraceCounter::kRpcPipelineCalls)],
            0u);
  EXPECT_GT(first.trace.counters[static_cast<size_t>(
                TraceCounter::kRpcPipelineEvents)],
            0u);
}

TEST(PipelinedFaultMatrixTest, SameSeedRecordingsAreByteIdentical) {
  // The flight-recorder determinism gate (ISSUE 5): the serialized
  // recording omits host wall stamps by default, so two runs of the same
  // seeded lossy workload must produce *byte-identical* artifacts — the
  // contract that makes recordings diffable across CI runs and machines.
  FaultConfig mix = MixForSeed(5, 0xA2B);
  FaultConfig reply_mix = MixForSeed(5, 0xB2A);
  std::string first;
  {
    RecorderSession recorder;
    RunPipelinedSoak(5, mix, reply_mix);
    first = RecordingToJson(recorder.Stop());
  }
  std::string second;
  {
    RecorderSession recorder;
    RunPipelinedSoak(5, mix, reply_mix);
    second = RecordingToJson(recorder.Stop());
  }
  EXPECT_GT(first.size(), 1024u);  // the run actually recorded a timeline
  EXPECT_EQ(first, second);
}

// --- adaptive transport under faults (ISSUE 7) --------------------------
//
// The adaptive acceptance bar from the issue: across the fault matrix the
// flight-recorder classification must attribute (essentially) every
// retransmit to a recorded loss — a spurious RTO means the estimator
// under-timed a healthy round trip, the failure mode the whole subsystem
// exists to eliminate.

TEST(AdaptiveFaultMatrixTest, SpuriousRetransmitsStayZeroAcrossMatrix) {
  struct Case {
    const char* name;
    FaultConfig to_server;
    FaultConfig to_client;
  };
  std::vector<Case> matrix;
  matrix.push_back({"clean", FaultConfig{}, FaultConfig{}});
  {
    FaultConfig mix;  // shuffled + doubled frames, nothing lost
    mix.reorder_prob = 0.5;
    mix.dup_prob = 0.5;
    mix.seed = 2001;
    matrix.push_back({"reorder+dup", mix, mix});
  }
  {
    FaultConfig dropper;  // real loss: retransmits must all be drop-induced
    dropper.drop_prob = 0.10;
    dropper.seed = 2002;
    matrix.push_back({"drop10", dropper, dropper});
  }
  {
    FaultConfig corruptor;  // checksum failures count as losses too
    corruptor.corrupt_prob = 0.30;
    corruptor.seed = 2003;
    matrix.push_back({"corrupt30", FaultConfig{}, corruptor});
  }

  for (const Case& c : matrix) {
    RecorderSession recorder;
    PipelinedOutcome outcome =
        RunPipelinedSoak(41, c.to_server, c.to_client, /*window=*/16,
                         /*chunk_bytes=*/kNfsMaxData, /*adaptive=*/true);
    RecordingAnalysis analysis = AnalyzeRecording(recorder.Stop());
    ASSERT_TRUE(outcome.status.ok())
        << c.name << ": " << outcome.status.ToString();
    EXPECT_LE(outcome.max_executions_per_xid, 1) << c.name;
    EXPECT_EQ(analysis.spurious_retransmits, 0u)
        << c.name << ": " << analysis.total_retransmits
        << " retransmits, " << analysis.drop_induced_retransmits
        << " drop-induced";
    EXPECT_EQ(analysis.total_retransmits,
              analysis.drop_induced_retransmits)
        << c.name;
    EXPECT_GT(analysis.rtt_samples, 0u) << c.name;
  }
}

TEST(AdaptiveFaultMatrixTest, FixedWindowCollapsesWhereAdaptiveDoesNot) {
  // Control for the test above: the same full-size-chunk workload with a
  // fixed window of 16 at the default 20 ms RTO DOES retransmit
  // spuriously — proving the matrix would catch an estimator regression.
  RecorderSession recorder;
  PipelinedOutcome outcome =
      RunPipelinedSoak(41, FaultConfig{}, FaultConfig{}, /*window=*/16,
                       /*chunk_bytes=*/kNfsMaxData, /*adaptive=*/false);
  RecordingAnalysis analysis = AnalyzeRecording(recorder.Stop());
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_GT(analysis.spurious_retransmits, 0u)
      << "the collapse scenario stopped collapsing — the adaptive matrix "
         "has lost its control";
}

TEST(AdaptiveFaultMatrixTest, SameSeedAdaptiveRecordingsAreByteIdentical) {
  // Determinism extends to the adaptive control loop: estimator state,
  // AIMD moves, and their kRttSample/kCwndChange events are pure
  // functions of the seed, so two adaptive runs serialize identically.
  FaultConfig mix = MixForSeed(5, 0xA2B);
  FaultConfig reply_mix = MixForSeed(5, 0xB2A);
  std::string first;
  {
    RecorderSession recorder;
    RunPipelinedSoak(5, mix, reply_mix, /*window=*/16,
                     /*chunk_bytes=*/2048, /*adaptive=*/true);
    first = RecordingToJson(recorder.Stop());
  }
  std::string second;
  {
    RecorderSession recorder;
    RunPipelinedSoak(5, mix, reply_mix, /*window=*/16,
                     /*chunk_bytes=*/2048, /*adaptive=*/true);
    second = RecordingToJson(recorder.Stop());
  }
  EXPECT_GT(first.size(), 1024u);
  EXPECT_EQ(first, second);
  // The recording really carries the adaptive timeline.
  EXPECT_NE(first.find("rtt_sample"), std::string::npos);
  EXPECT_NE(first.find("cwnd_change"), std::string::npos);
}

TEST(PipelinedFaultMatrixTest, NfsDroppedReplyProvesAtMostOncePipelined) {
  // The serial acceptance scenario, replayed through the window: one reply
  // datagram eaten, one retransmit, one dup-cache hit, one execution.
  TraceSession session;
  NfsFileServer server(kNfsMaxData, /*seed=*/23);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  FaultPlan eater;
  eater.DropExactly(0, 0);
  DatagramChannel channel(LinkModel(), FaultPlan(), std::move(eater),
                          &clock);
  EventQueue events(&clock);
  PipelinedTransport transport(&channel, NfsFileServer::MakeHandler(&server),
                               RemoteServerModel(), PipelinePolicy{},
                               &events);

  auto stats = client.ReadFilePipelined(
      NfsClient::StubKind::kGeneratedUserBuffer, &transport);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->bytes_read, kNfsMaxData);
  EXPECT_EQ(stats->retransmits, 1u);
  EXPECT_EQ(stats->dup_cache_hits, 1u);
  EXPECT_EQ(stats->server_executions, 1u);
}

}  // namespace
}  // namespace flexrpc
