// Unit tests for the lossy-wire substrate (src/net/fault.h,
// src/net/datagram.h) and the at-most-once retrying transport
// (src/rpc/retry.h): deterministic fault decisions, checksum framing,
// xid-keyed retransmission, duplicate suppression, and graceful
// degradation (kUnavailable / kDeadlineExceeded / kDataLoss — never a
// hang, never a double execution).

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/rpc/retry.h"
#include "src/support/trace.h"

namespace flexrpc {
namespace {

FaultConfig MixedFaults(uint64_t seed) {
  FaultConfig config;
  config.drop_prob = 0.2;
  config.dup_prob = 0.1;
  config.reorder_prob = 0.1;
  config.corrupt_prob = 0.1;
  config.extra_delay_prob = 0.2;
  config.seed = seed;
  return config;
}

TEST(FaultPlanTest, SameSeedSameDecisions) {
  FaultPlan a(MixedFaults(7));
  FaultPlan b(MixedFaults(7));
  for (int i = 0; i < 500; ++i) {
    FaultPlan::Decision da = a.Next();
    FaultPlan::Decision db = b.Next();
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.reorder, db.reorder);
    EXPECT_EQ(da.corrupt, db.corrupt);
    EXPECT_EQ(da.extra_delay_nanos, db.extra_delay_nanos);
    EXPECT_EQ(da.corrupt_salt, db.corrupt_salt);
  }
  EXPECT_EQ(a.packets_decided(), 500u);
}

TEST(FaultPlanTest, PerfectWireByDefault) {
  FaultPlan plan;
  for (int i = 0; i < 100; ++i) {
    FaultPlan::Decision d = plan.Next();
    EXPECT_FALSE(d.drop || d.duplicate || d.reorder || d.corrupt);
    EXPECT_EQ(d.extra_delay_nanos, 0u);
  }
}

TEST(FaultPlanTest, ScriptedDropRange) {
  FaultPlan plan;  // no probabilistic faults
  plan.DropExactly(2, 4);
  bool expected[] = {false, false, true, true, true, false, false};
  for (bool want : expected) {
    EXPECT_EQ(plan.Next().drop, want);
  }
}

TEST(FaultPlanTest, DropSuppressesOtherFaults) {
  FaultConfig config;
  config.dup_prob = 1.0;
  config.corrupt_prob = 1.0;
  config.extra_delay_prob = 1.0;
  FaultPlan plan(config);
  plan.DropExactly(0, 0);
  FaultPlan::Decision d = plan.Next();
  EXPECT_TRUE(d.drop);
  EXPECT_FALSE(d.duplicate);
  EXPECT_FALSE(d.corrupt);
  EXPECT_EQ(d.extra_delay_nanos, 0u);
}

ByteSpan Span(const char* s) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(s), std::strlen(s));
}

TEST(DatagramChannelTest, RoundTripChargesTheClock) {
  VirtualClock clock;
  DatagramChannel ch(LinkModel(), FaultPlan(), FaultPlan(), &clock);
  ch.Send(DatagramChannel::Dir::kAtoB, Span("hello wire"));
  EXPECT_GT(clock.now_nanos(), 0u);
  ASSERT_TRUE(ch.HasPending(DatagramChannel::Dir::kAtoB));
  auto got = ch.Receive(DatagramChannel::Dir::kAtoB);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(std::string(got->begin(), got->end()), "hello wire");
  EXPECT_FALSE(ch.HasPending(DatagramChannel::Dir::kAtoB));
  EXPECT_EQ(ch.stats().sent, 1u);
  EXPECT_EQ(ch.stats().delivered, 1u);
}

TEST(DatagramChannelTest, DirectionsAreIndependent) {
  VirtualClock clock;
  DatagramChannel ch(LinkModel(), FaultPlan(), FaultPlan(), &clock);
  ch.Send(DatagramChannel::Dir::kAtoB, Span("request"));
  EXPECT_FALSE(ch.HasPending(DatagramChannel::Dir::kBtoA));
  ch.Send(DatagramChannel::Dir::kBtoA, Span("reply"));
  auto reply = ch.Receive(DatagramChannel::Dir::kBtoA);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(std::string(reply->begin(), reply->end()), "reply");
}

TEST(DatagramChannelTest, DroppedFrameNeverArrives) {
  VirtualClock clock;
  FaultPlan drops;
  drops.DropExactly(0, 0);
  DatagramChannel ch(LinkModel(), std::move(drops), FaultPlan(), &clock);
  ch.Send(DatagramChannel::Dir::kAtoB, Span("gone"));
  EXPECT_FALSE(ch.HasPending(DatagramChannel::Dir::kAtoB));
  EXPECT_EQ(ch.stats().dropped, 1u);
  EXPECT_GT(clock.now_nanos(), 0u);  // it still occupied the wire
}

TEST(DatagramChannelTest, DuplicateArrivesTwice) {
  VirtualClock clock;
  FaultConfig config;
  config.dup_prob = 1.0;
  DatagramChannel ch(LinkModel(), FaultPlan(config), FaultPlan(), &clock);
  ch.Send(DatagramChannel::Dir::kAtoB, Span("twice"));
  EXPECT_EQ(ch.stats().duplicated, 1u);
  int arrivals = 0;
  while (ch.HasPending(DatagramChannel::Dir::kAtoB)) {
    auto got = ch.Receive(DatagramChannel::Dir::kAtoB);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(got->begin(), got->end()), "twice");
    ++arrivals;
  }
  EXPECT_EQ(arrivals, 2);
}

TEST(DatagramChannelTest, ReorderOvertakesQueuedFrame) {
  VirtualClock clock;
  FaultConfig config;
  config.reorder_prob = 1.0;
  DatagramChannel ch(LinkModel(), FaultPlan(config), FaultPlan(), &clock);
  ch.Send(DatagramChannel::Dir::kAtoB, Span("first"));
  ch.Send(DatagramChannel::Dir::kAtoB, Span("second"));
  EXPECT_EQ(ch.stats().reordered, 1u);  // first send had nothing to pass
  auto got = ch.Receive(DatagramChannel::Dir::kAtoB);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->begin(), got->end()), "second");
}

TEST(DatagramChannelTest, ChecksumCatchesCorruption) {
  VirtualClock clock;
  FaultConfig config;
  config.corrupt_prob = 1.0;
  DatagramChannel ch(LinkModel(), FaultPlan(config), FaultPlan(), &clock);
  ch.Send(DatagramChannel::Dir::kAtoB, Span("fragile payload bytes"));
  ASSERT_TRUE(ch.HasPending(DatagramChannel::Dir::kAtoB));
  auto got = ch.Receive(DatagramChannel::Dir::kAtoB);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(ch.stats().corrupted, 1u);
  EXPECT_EQ(ch.stats().checksum_failures, 1u);
  EXPECT_EQ(ch.stats().delivered, 0u);
}

TEST(DatagramChannelTest, ExtraDelayChargedAtDelivery) {
  VirtualClock clock;
  FaultConfig config;
  config.extra_delay_prob = 1.0;
  config.extra_delay_max_nanos = 5'000'000;
  DatagramChannel ch(LinkModel(), FaultPlan(config), FaultPlan(), &clock);
  ch.Send(DatagramChannel::Dir::kAtoB, Span("late"));
  uint64_t after_send = clock.now_nanos();
  ASSERT_TRUE(ch.Receive(DatagramChannel::Dir::kAtoB).ok());
  EXPECT_GT(clock.now_nanos(), after_send);
}

TEST(DatagramChannelTest, EmptyReceiveIsFailedPrecondition) {
  VirtualClock clock;
  DatagramChannel ch(LinkModel(), FaultPlan(), FaultPlan(), &clock);
  auto got = ch.Receive(DatagramChannel::Dir::kAtoB);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReplyCacheTest, FindInsertAndLruEviction) {
  ReplyCache cache(/*capacity=*/2);
  EXPECT_EQ(cache.Find(1), nullptr);
  cache.Insert(1, {0xAA});
  cache.Insert(2, {0xBB});
  // The lookup marks xid 1 recently used — a retransmit is probing it.
  ASSERT_NE(cache.Find(1), nullptr);
  EXPECT_EQ((*cache.Find(1))[0], 0xAA);
  cache.Insert(3, {0xCC});  // evicts xid 2, the least recently used
  ASSERT_NE(cache.Find(1), nullptr);
  EXPECT_EQ(cache.Find(2), nullptr);
  ASSERT_NE(cache.Find(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ReplyCacheTest, InsertOverwriteRefreshesSlot) {
  ReplyCache cache(/*capacity=*/2);
  cache.Insert(1, {0xAA});
  cache.Insert(2, {0xBB});
  // Overwriting xid 1 must refresh its LRU slot, not leave it the oldest.
  cache.Insert(1, {0xA1});
  cache.Insert(3, {0xCC});  // evicts xid 2
  ASSERT_NE(cache.Find(1), nullptr);
  EXPECT_EQ((*cache.Find(1))[0], 0xA1);
  EXPECT_EQ(cache.Find(2), nullptr);
  ASSERT_NE(cache.Find(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

// Builds a minimal request datagram: big-endian xid plus a marker byte.
std::vector<uint8_t> XidRequest(uint32_t xid) {
  return {static_cast<uint8_t>(xid >> 24), static_cast<uint8_t>(xid >> 16),
          static_cast<uint8_t>(xid >> 8), static_cast<uint8_t>(xid), 0x5A};
}

TEST(AtMostOnceEndpointTest, LruKeepsRetransmittedXidExactlyOnce) {
  // Capacity 2 with three live xids: the endpoint must keep the xid that
  // is still being retransmitted (touched by every duplicate probe) and
  // evict the idle one. With FIFO eviction xid 1 would age out mid-flight
  // and its retransmit would re-execute the handler — at-most-once broken.
  std::map<uint32_t, int> executions;
  AtMostOnceEndpoint endpoint(
      [&executions](ByteSpan request, std::vector<uint8_t>* reply) {
        auto xid = PeekXid(request);
        if (!xid.ok()) {
          return xid.status();
        }
        ++executions[*xid];
        reply->assign(request.begin(), request.end());
        return Status::Ok();
      },
      /*cache_capacity=*/2);
  auto handle = [&endpoint](uint32_t xid) {
    std::vector<uint8_t> request = XidRequest(xid);
    return endpoint.Handle(ByteSpan(request.data(), request.size()));
  };

  ASSERT_TRUE(handle(1).ok());  // executes
  ASSERT_TRUE(handle(2).ok());  // executes; cache now full
  auto dup1 = handle(1);        // retransmit of 1 mid-flight: cache hit
  ASSERT_TRUE(dup1.ok());
  EXPECT_TRUE(dup1->dup_hit);
  ASSERT_TRUE(handle(3).ok());  // overflows capacity: must evict idle 2
  auto dup1_again = handle(1);  // 1 must STILL be suppressed
  ASSERT_TRUE(dup1_again.ok());
  EXPECT_TRUE(dup1_again->dup_hit);
  EXPECT_EQ(executions[1], 1);  // exactly once, despite the overflow
  EXPECT_EQ(executions[3], 1);
  EXPECT_EQ(endpoint.hits(), 2u);
  EXPECT_EQ(endpoint.misses(), 3u);
}

// --- (connection, xid)-keyed at-most-once (the mux-era bugfixes) ---------

// Builds a mux-framed request: [xid u32 BE][conn u32 BE][marker].
std::vector<uint8_t> ConnRequest(uint32_t conn, uint32_t xid,
                                 uint8_t marker) {
  return {static_cast<uint8_t>(xid >> 24),  static_cast<uint8_t>(xid >> 16),
          static_cast<uint8_t>(xid >> 8),   static_cast<uint8_t>(xid),
          static_cast<uint8_t>(conn >> 24), static_cast<uint8_t>(conn >> 16),
          static_cast<uint8_t>(conn >> 8),  static_cast<uint8_t>(conn),
          marker};
}

// An endpoint whose handler echoes the request and counts executions per
// (conn, xid) key — the evidence for every at-most-once claim below.
struct ConnEndpointRig {
  explicit ConnEndpointRig(size_t cache_capacity = 256)
      : endpoint(
            [this](ByteSpan request, std::vector<uint8_t>* reply) {
              auto xid = PeekXid(request);
              if (!xid.ok()) {
                return xid.status();
              }
              ++executions[(static_cast<uint64_t>(last_conn) << 32) | *xid];
              reply->assign(request.begin(), request.end());
              return Status::Ok();
            },
            cache_capacity) {}

  Result<AtMostOnceEndpoint::Handled> Handle(uint32_t conn, uint32_t xid,
                                             uint8_t marker) {
    last_conn = conn;
    std::vector<uint8_t> request = ConnRequest(conn, xid, marker);
    return endpoint.Handle(conn, ByteSpan(request.data(), request.size()));
  }

  AtMostOnceEndpoint endpoint;
  std::map<uint64_t, int> executions;
  uint32_t last_conn = 0;
};

TEST(AtMostOnceEndpointTest, ConnectionsDoNotShareXidSpace) {
  // Bugfix regression. At-most-once state used to be keyed by bare xid;
  // under the mux every connection allocates xids from 1, so two clients
  // collide immediately: the second connection's FIRST request on xid 1
  // matched the first connection's cached reply — answered with another
  // client's bytes and never executed. Keying by (conn, xid) makes both
  // first requests execute, each with its own reply.
  ConnEndpointRig rig;
  auto first = rig.Handle(/*conn=*/1, /*xid=*/1, /*marker=*/0xA1);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->dup_hit);
  std::vector<uint8_t> first_reply = *first->reply;

  auto second = rig.Handle(/*conn=*/2, /*xid=*/1, /*marker=*/0xB2);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->dup_hit);  // pre-fix: dup_hit, handler skipped
  EXPECT_NE(*second->reply, first_reply);
  EXPECT_EQ(second->reply->back(), 0xB2);

  EXPECT_EQ(rig.executions[(1ull << 32) | 1], 1);
  EXPECT_EQ(rig.executions[(2ull << 32) | 1], 1);
  // Each connection's retransmit still hits its own cache.
  auto dup = rig.Handle(/*conn=*/2, /*xid=*/1, /*marker=*/0xB2);
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(dup->dup_hit);
  EXPECT_EQ(rig.executions[(2ull << 32) | 1], 1);
}

TEST(AtMostOnceEndpointTest, PerConnectionCachesIsolateEviction) {
  // Bugfix regression. With one shared fixed-capacity cache, a burst on
  // one connection evicted other connections' in-flight entries — the
  // noisy-neighbor at-most-once hazard. Capacity is per connection now:
  // conn 2 churning through 3x capacity cannot touch conn 1's entry.
  ConnEndpointRig rig(/*cache_capacity=*/2);
  ASSERT_TRUE(rig.Handle(1, 1, 0x11).ok());
  for (uint32_t xid = 1; xid <= 6; ++xid) {
    ASSERT_TRUE(rig.Handle(2, xid, 0x22).ok());  // evicts only conn 2's
  }
  auto dup = rig.Handle(1, 1, 0x11);  // retransmit mid-flight
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(dup->dup_hit);  // pre-fix: evicted, re-executed
  EXPECT_EQ(rig.executions[(1ull << 32) | 1], 1);
  EXPECT_GE(rig.endpoint.CacheFor(2).evictions(), 4u);
  EXPECT_EQ(rig.endpoint.CacheFor(1).evictions(), 0u);
}

TEST(AtMostOnceEndpointTest, EvictionDuringRetransmitIsCountedExactly) {
  // The detector itself: when capacity pressure DOES evict an xid that is
  // still being retransmitted, the re-execution cannot be prevented (the
  // reply bytes are gone) but it must be counted — the endpoint keeps an
  // exact executed-xid memory per connection, so the violation shows up
  // as evicted_reexecs() == 1, which the fleet soak gates at zero.
  ConnEndpointRig rig(/*cache_capacity=*/2);
  ASSERT_TRUE(rig.Handle(1, 1, 0x01).ok());
  ASSERT_TRUE(rig.Handle(1, 2, 0x02).ok());
  ASSERT_TRUE(rig.Handle(1, 3, 0x03).ok());  // evicts xid 1
  EXPECT_EQ(rig.endpoint.evictions(), 1u);
  EXPECT_EQ(rig.endpoint.evicted_reexecs(), 0u);
  auto re = rig.Handle(1, 1, 0x01);  // late retransmit of the evicted xid
  ASSERT_TRUE(re.ok());
  EXPECT_FALSE(re->dup_hit);                      // cache cannot help
  EXPECT_EQ(rig.executions[(1ull << 32) | 1], 2);  // violation happened...
  EXPECT_EQ(rig.endpoint.evicted_reexecs(), 1u);   // ...and was counted
}

TEST(AtMostOnceEndpointTest, ReorderedFirstDeliveryIsNotAReexec) {
  // No false positives: out-of-order FIRST deliveries (wire reorder) are
  // first executions, not re-executions — the detector tracks the exact
  // executed set, not a high-water mark.
  ConnEndpointRig rig(/*cache_capacity=*/2);
  ASSERT_TRUE(rig.Handle(1, 3, 0x03).ok());  // arrives first
  ASSERT_TRUE(rig.Handle(1, 1, 0x01).ok());  // delayed below the max xid
  ASSERT_TRUE(rig.Handle(1, 2, 0x02).ok());
  EXPECT_EQ(rig.endpoint.evicted_reexecs(), 0u);
}

TEST(PeekXidTest, BigEndianAndTruncation) {
  uint8_t bytes[] = {0x01, 0x02, 0x03, 0x04, 0xFF};
  auto xid = PeekXid(ByteSpan(bytes, sizeof(bytes)));
  ASSERT_TRUE(xid.ok());
  EXPECT_EQ(*xid, 0x01020304u);
  auto bad = PeekXid(ByteSpan(bytes, 3));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
}

// --- RetryingTransport over an echo server -------------------------------

// An at-most-once test rig: the handler echoes the request datagram back
// (xid stays in front) and counts executions per xid.
struct EchoRig {
  explicit EchoRig(FaultPlan to_server, FaultPlan to_client,
                   RetryPolicy policy = RetryPolicy{})
      : channel(LinkModel(), std::move(to_server), std::move(to_client),
                &clock),
        transport(
            &channel,
            [this](ByteSpan request, std::vector<uint8_t>* reply) {
              auto xid = PeekXid(request);
              if (!xid.ok()) {
                return xid.status();
              }
              ++executions[*xid];
              reply->assign(request.begin(), request.end());
              return Status::Ok();
            },
            RemoteServerModel(), policy) {}

  Status Call(uint32_t xid, std::vector<uint8_t>* reply) {
    uint8_t request[8] = {
        static_cast<uint8_t>(xid >> 24), static_cast<uint8_t>(xid >> 16),
        static_cast<uint8_t>(xid >> 8),  static_cast<uint8_t>(xid),
        0xDE,                            0xAD,
        0xBE,                            0xEF};
    return transport.Call(xid, ByteSpan(request, sizeof(request)), reply);
  }

  VirtualClock clock;
  DatagramChannel channel;
  RetryingTransport transport;
  std::map<uint32_t, int> executions;
};

TEST(RetryingTransportTest, PerfectWireFirstAttemptSucceeds) {
  EchoRig rig{FaultPlan(), FaultPlan()};
  std::vector<uint8_t> reply;
  ASSERT_TRUE(rig.Call(100, &reply).ok());
  EXPECT_EQ(reply.size(), 8u);
  EXPECT_EQ(rig.executions[100], 1);
  EXPECT_EQ(rig.transport.stats().retransmits, 0u);
  EXPECT_EQ(rig.transport.stats().dup_cache_misses, 1u);
}

TEST(RetryingTransportTest, DroppedRequestRetransmits) {
  FaultPlan to_server;
  to_server.DropExactly(0, 0);  // lose the first request frame
  EchoRig rig{std::move(to_server), FaultPlan()};
  std::vector<uint8_t> reply;
  ASSERT_TRUE(rig.Call(7, &reply).ok());
  EXPECT_EQ(rig.executions[7], 1);  // never executed for the lost frame
  EXPECT_EQ(rig.transport.stats().retransmits, 1u);
  EXPECT_EQ(rig.transport.stats().dup_cache_hits, 0u);
  EXPECT_GT(rig.transport.stats().backoff_nanos, 0u);
}

TEST(RetryingTransportTest, DroppedReplyHitsDupCacheNotTheWorkFunction) {
  // The at-most-once acceptance case: the request executes, the reply is
  // lost, the retransmit must be answered from the reply cache.
  FaultPlan to_client;
  to_client.DropExactly(0, 0);  // lose the first reply frame
  EchoRig rig{FaultPlan(), std::move(to_client)};
  std::vector<uint8_t> reply;
  ASSERT_TRUE(rig.Call(9, &reply).ok());
  EXPECT_EQ(rig.executions[9], 1);  // executed exactly once
  EXPECT_EQ(rig.transport.stats().retransmits, 1u);
  EXPECT_EQ(rig.transport.stats().dup_cache_hits, 1u);
  EXPECT_EQ(rig.transport.stats().dup_cache_misses, 1u);
}

TEST(RetryingTransportTest, TotalLossReturnsUnavailableWithinDeadline) {
  FaultConfig black_hole;
  black_hole.drop_prob = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  EchoRig rig{FaultPlan(black_hole), FaultPlan(), policy};
  std::vector<uint8_t> reply;
  uint64_t start = rig.clock.now_nanos();
  Status st = rig.Call(11, &reply);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rig.executions.count(11), 0u);
  EXPECT_EQ(rig.transport.stats().retransmits, 3u);
  EXPECT_LE(rig.clock.now_nanos() - start, policy.deadline_nanos);
}

TEST(RetryingTransportTest, DeadlineExceededOnTheVirtualClock) {
  FaultConfig black_hole;
  black_hole.drop_prob = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 1000;           // budget will not bind
  policy.deadline_nanos = 100'000'000;  // 100 ms virtual deadline
  EchoRig rig{FaultPlan(black_hole), FaultPlan(), policy};
  std::vector<uint8_t> reply;
  uint64_t start = rig.clock.now_nanos();
  Status st = rig.Call(12, &reply);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // The call gives up at (not past) the deadline on the virtual clock;
  // in-flight wire time already charged can exceed it only marginally.
  EXPECT_LE(rig.clock.now_nanos() - start,
            policy.deadline_nanos + 10'000'000);
  EXPECT_GE(rig.transport.stats().deadline_expiries, 1u);
}

TEST(RetryingTransportTest, LateReplyPastDeadlineIsDeadlineExceeded) {
  // Regression: Call never rechecked the deadline after Send/PumpServer
  // advanced the virtual clock, so a reply that arrived long after the
  // deadline was still returned as OK. With a deadline shorter than one
  // wire round trip, even a perfect wire delivers the reply too late.
  RetryPolicy policy;
  policy.deadline_nanos = 1'000;  // 1 µs: less than any transfer takes
  EchoRig rig{FaultPlan(), FaultPlan(), policy};
  std::vector<uint8_t> reply;
  Status st = rig.Call(40, &reply);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(reply.empty());  // the late reply must not be delivered
  EXPECT_EQ(rig.executions[40], 1);  // the server did execute it
  EXPECT_GE(rig.transport.stats().deadline_expiries, 1u);
}

TEST(RetryingTransportTest, CorruptRepliesRetryByDefault) {
  FaultConfig mangler;
  mangler.corrupt_prob = 1.0;  // every reply fails its checksum
  RetryPolicy policy;
  policy.max_attempts = 3;
  EchoRig rig{FaultPlan(), FaultPlan(mangler), policy};
  std::vector<uint8_t> reply;
  Status st = rig.Call(13, &reply);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);  // degraded, not hung
  EXPECT_GE(rig.transport.stats().corrupt_replies, 3u);
  EXPECT_EQ(rig.executions[13], 1);  // dup cache absorbed the retransmits
  EXPECT_EQ(rig.transport.stats().dup_cache_hits, 2u);
}

TEST(RetryingTransportTest, CorruptReplyFailsFastWhenConfigured) {
  FaultConfig mangler;
  mangler.corrupt_prob = 1.0;
  RetryPolicy policy;
  policy.retry_on_corrupt = false;
  EchoRig rig{FaultPlan(), FaultPlan(mangler), policy};
  std::vector<uint8_t> reply;
  Status st = rig.Call(14, &reply);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(rig.transport.stats().retransmits, 0u);
}

TEST(RetryingTransportTest, StaleDuplicateRepliesAreDiscarded) {
  FaultConfig dupper;
  dupper.dup_prob = 1.0;  // every reply arrives twice
  EchoRig rig{FaultPlan(), FaultPlan(dupper)};
  std::vector<uint8_t> reply;
  ASSERT_TRUE(rig.Call(20, &reply).ok());
  // Call 20's duplicate reply is still queued; call 21 must skip past it.
  ASSERT_TRUE(rig.Call(21, &reply).ok());
  EXPECT_EQ(PeekXid(ByteSpan(reply.data(), reply.size())).value(), 21u);
  EXPECT_GE(rig.transport.stats().stale_replies, 1u);
  EXPECT_EQ(rig.executions[20], 1);
  EXPECT_EQ(rig.executions[21], 1);
}

TEST(RetryingTransportTest, BackoffWaitsGrowExponentially) {
  FaultConfig black_hole;
  black_hole.drop_prob = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_rto_nanos = 1'000'000;
  policy.max_rto_nanos = 1'000'000'000;
  EchoRig rig{FaultPlan(black_hole), FaultPlan(), policy};
  std::vector<uint8_t> reply;
  (void)rig.Call(30, &reply);
  // Three waits of ~1, ~2, ~4 ms (plus ≤25% jitter each).
  uint64_t backoff = rig.transport.stats().backoff_nanos;
  EXPECT_GE(backoff, 7'000'000u);
  EXPECT_LE(backoff, 7'000'000u + 3u * 250'000u + 3u);
}

// --- VirtualTraceSpan: no wall-clock leakage -----------------------------

TEST(RetryingTransportTest, ServerExecSpanRecordsExactVirtualDuration) {
  SetTraceEnabled(false);
  ResetTrace();
  {
    TraceSession session;
    EchoRig rig{FaultPlan(), FaultPlan()};
    std::vector<uint8_t> reply;
    ASSERT_TRUE(rig.Call(1, &reply).ok());
    TraceSnapshot snap = session.Report();
    const auto& h = snap.histogram(TraceHistogram::kRpcDispatchNanos);
    // The span brackets server_model_.Process, which advances the virtual
    // clock by exactly ProcessNanos(reply size) — the histogram sum must
    // equal that modeled duration, not some host-dependent elapsed time.
    EXPECT_EQ(h.count, 1u);
    EXPECT_EQ(h.sum, RemoteServerModel().ProcessNanos(reply.size()));
  }
  SetTraceEnabled(false);
  ResetTrace();
}

TEST(RetryingTransportTest, TraceSnapshotIsByteIdenticalAcrossRuns) {
  // Satellite regression: the server-exec path once timed itself with a
  // wall-clock TraceSpan, leaking host nanos into rpc.dispatch_nanos and
  // breaking same-seed byte identity of trace artifacts. Two identical
  // seeded lossy workloads must now serialize identical snapshots,
  // histograms included.
  auto run = []() {
    TraceSession session;
    FaultConfig mixed = MixedFaults(/*seed=*/17);
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.deadline_nanos = 4'000'000'000;
    policy.jitter_seed = 18;
    EchoRig rig{FaultPlan(mixed), FaultPlan(mixed), policy};
    std::vector<uint8_t> reply;
    for (uint32_t xid = 1; xid <= 24; ++xid) {
      (void)rig.Call(xid, &reply);
    }
    return session.ReportJson();
  };
  SetTraceEnabled(false);
  ResetTrace();
  std::string first = run();
  std::string second = run();
  SetTraceEnabled(false);
  ResetTrace();
  EXPECT_EQ(first, second);
  // The workload actually exercised the histograms being compared.
  EXPECT_NE(first.find("rpc.dispatch_nanos"), std::string::npos);
}

}  // namespace
}  // namespace flexrpc
