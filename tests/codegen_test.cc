// Tests for the C++ stub generator: prototype shapes under different
// presentations (the paper's §1 point rendered in generated code), type
// layout emission, and structural sanity of the output.
//
// Compile-level verification of generated code happens in the build: the
// quickstart example is built from idlc output (see examples/).

#include <gtest/gtest.h>

#include "src/codegen/cpp_gen.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"

namespace flexrpc {
namespace {

struct Generated {
  GeneratedCode code;
};

Generated Generate(std::string_view idl_src, bool sun,
                   std::string_view client_pdl,
                   std::string_view server_pdl) {
  DiagnosticSink diags;
  auto idl = sun ? ParseSunRpc(idl_src, "t.x", &diags)
                 : ParseCorbaIdl(idl_src, "t.idl", &diags);
  EXPECT_NE(idl, nullptr) << diags.ToString();
  EXPECT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags)) << diags.ToString();
  PresentationSet client;
  PresentationSet server;
  if (client_pdl.empty()) {
    EXPECT_TRUE(ApplyPdl(*idl, Side::kClient, nullptr, &client, &diags));
  } else {
    EXPECT_TRUE(ApplyPdlText(*idl, Side::kClient, client_pdl, "c.pdl",
                             &client, &diags))
        << diags.ToString();
  }
  if (server_pdl.empty()) {
    EXPECT_TRUE(ApplyPdl(*idl, Side::kServer, nullptr, &server, &diags));
  } else {
    EXPECT_TRUE(ApplyPdlText(*idl, Side::kServer, server_pdl, "s.pdl",
                             &server, &diags))
        << diags.ToString();
  }
  CppGenOptions options;
  options.header_name = "t.flexgen.h";
  auto generated = GenerateCpp(*idl, client, server, options);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  return Generated{std::move(*generated)};
}

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

constexpr char kSysLogIdl[] =
    "interface SysLog { void write_msg(in string msg); };";

TEST(CodegenTest, DefaultSysLogPrototypeMatchesCorbaMapping) {
  Generated g = Generate(kSysLogIdl, false, "", "");
  // The paper's "standard presentation": NUL-terminated string only.
  EXPECT_TRUE(Contains(g.code.header,
                       "flexrpc::Status write_msg(const char* msg);"))
      << g.code.header;
}

TEST(CodegenTest, AlternateSysLogPrototypeAddsLength) {
  // The paper's alternate presentation (§1): an explicit length parameter.
  Generated g = Generate(
      kSysLogIdl, false,
      "SysLog_write_msg(,, char *[length_is(length)] msg, int length);",
      "");
  EXPECT_TRUE(Contains(
      g.code.header,
      "flexrpc::Status write_msg(const char* msg, uint32_t length);"))
      << g.code.header;
  // The server (default presentation) is unchanged: interoperability.
  EXPECT_TRUE(Contains(g.code.header,
                       "virtual flexrpc::Status write_msg(const char* "
                       "msg) = 0;"))
      << g.code.header;
}

TEST(CodegenTest, StructLayoutEmittedWithAsserts) {
  Generated g = Generate(R"(
    struct fattr { unsigned long size; unsigned long mtime; };
    interface I { void f(in fattr a); };
  )", false, "", "");
  EXPECT_TRUE(Contains(g.code.header, "struct fattr {"));
  EXPECT_TRUE(Contains(g.code.header, "uint32_t size;"));
  EXPECT_TRUE(Contains(g.code.header, "static_assert(sizeof(fattr) == 8,"));
}

TEST(CodegenTest, EnumAndUnionEmitted) {
  Generated g = Generate(R"(
    enum color { RED = 0, BLUE = 5 };
    union pick switch (color) { case 0: long r; default: double d; };
    interface I { void f(in pick p); };
  )", false, "", "");
  EXPECT_TRUE(Contains(g.code.header, "enum class color : uint32_t {"));
  EXPECT_TRUE(Contains(g.code.header, "BLUE = 5,"));
  EXPECT_TRUE(Contains(g.code.header, "struct pick {"));
  EXPECT_TRUE(Contains(g.code.header, "uint32_t _d;"));
  EXPECT_TRUE(Contains(g.code.header, "static_assert(sizeof(pick) == 16,"));
}

TEST(CodegenTest, SequenceOutDefaultUsesMoveForm) {
  Generated g = Generate(
      "interface B { void fetch(in unsigned long n, "
      "out sequence<octet> data); };",
      false, "", "");
  // Client consumes a stub-allocated buffer (CORBA move).
  EXPECT_TRUE(Contains(g.code.header,
                       "fetch(uint32_t n, uint8_t** data, uint32_t* "
                       "data_len);"))
      << g.code.header;
  // Server donates its own buffer.
  EXPECT_TRUE(Contains(g.code.header,
                       "virtual flexrpc::Status fetch(uint32_t n, "
                       "uint8_t** data, uint32_t* data_len) = 0;"))
      << g.code.header;
}

TEST(CodegenTest, AllocUserChangesClientPrototype) {
  Generated g = Generate(
      "interface B { void fetch(in unsigned long n, "
      "out sequence<octet> data); };",
      false, "B_fetch(unsigned long n, char *[alloc(user)] data);", "");
  EXPECT_TRUE(Contains(g.code.header,
                       "fetch(uint32_t n, uint8_t* data, uint32_t "
                       "data_capacity, uint32_t* data_len);"))
      << g.code.header;
}

TEST(CodegenTest, FlattenedNfsPrototype) {
  Generated g = Generate(R"(
const NFS_MAXDATA = 8192;
const NFS_FHSIZE = 32;
enum nfsstat { NFS_OK = 0, NFSERR_IO = 5 };
struct nfs_fh { opaque data[NFS_FHSIZE]; };
struct fattr { unsigned size; unsigned mtime; };
struct readargs { nfs_fh file; unsigned offset; unsigned count;
                  unsigned totalcount; };
struct readokres { fattr attributes; opaque data<NFS_MAXDATA>; };
union readres switch (nfsstat status) {
  case NFS_OK: readokres reply;
  default: void;
};
program NFS_PROGRAM {
  version NFS_VERSION { readres NFSPROC_READ(readargs) = 6; } = 2;
} = 100003;
)", true, R"(
  [comm_status] int NFSPROC_READ(file, offset, count, totalcount,
      [special] data, attributes, status);
)", "");
  // The Figure 1 prototype: flattened fields, user data buffer,
  // attributes/status as out params, no union in sight.
  EXPECT_TRUE(Contains(
      g.code.header,
      "NFSPROC_READ(const nfs_fh* file, uint32_t offset, uint32_t count, "
      "uint32_t totalcount, uint8_t* data, uint32_t data_capacity, "
      "uint32_t* data_len, fattr* attributes, nfsstat* status);"))
      << g.code.header;
}

TEST(CodegenTest, ServerRegisterInstallsAllOps) {
  Generated g = Generate(R"(
    interface KV {
      sequence<octet> get(in string key);
      void put(in string key, in sequence<octet> value);
    };
  )", false, "", "");
  EXPECT_TRUE(Contains(g.code.source, "server->SetWork(\"get\""));
  EXPECT_TRUE(Contains(g.code.source, "server->SetWork(\"put\""));
  EXPECT_TRUE(Contains(g.code.source, "void KVServerBase::Register"));
}

TEST(CodegenTest, ClientBodyRoutesThroughMarshalProgram) {
  Generated g = Generate(kSysLogIdl, false, "", "");
  EXPECT_TRUE(Contains(g.code.source,
                       "conn_->ProgramFor(\"write_msg\")"));
  EXPECT_TRUE(Contains(g.code.source, "conn_->Call(\"write_msg\", &args)"));
}

TEST(CodegenTest, ArrayTypedefUsesDeclaratorForm) {
  Generated g = Generate(R"(
    typedef long grid[4][3];
    interface I { void f(in grid g); };
  )", false, "", "");
  EXPECT_TRUE(Contains(g.code.header, "typedef int32_t grid[4][3];"))
      << g.code.header;
}

TEST(CodegenTest, ScalarOutParamsByPointer) {
  Generated g = Generate(
      "interface C { void stat(in long id, out unsigned long size, "
      "out double ratio); };",
      false, "", "");
  EXPECT_TRUE(Contains(g.code.header,
                       "stat(int32_t id, uint32_t* size, double* ratio);"))
      << g.code.header;
}

TEST(CodegenTest, DeterministicOutput) {
  Generated a = Generate(kSysLogIdl, false, "", "");
  Generated b = Generate(kSysLogIdl, false, "", "");
  EXPECT_EQ(a.code.header, b.code.header);
  EXPECT_EQ(a.code.source, b.code.source);
}

TEST(CodegenTest, ResultScalarReturnsViaOutParam) {
  Generated g = Generate(
      "interface P { unsigned long write(in sequence<octet> data); };",
      false, "", "");
  EXPECT_TRUE(Contains(g.code.header,
                       "write(const uint8_t* data, uint32_t data_len, "
                       "uint32_t* _return);"))
      << g.code.header;
}

}  // namespace
}  // namespace flexrpc
