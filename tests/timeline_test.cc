// Unit tests for flexwatch: quantile-sketch error bounds against exact
// percentiles, merge associativity, bucket math, sampler windowing on a
// virtual clock, trace-counter delta snapshotting, and byte-deterministic
// JSON round trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/support/event_queue.h"
#include "src/support/timeline.h"
#include "src/support/timing.h"
#include "src/support/trace.h"

namespace flexrpc {
namespace {

// ---------------------------------------------------------------- buckets

TEST(QuantileSketchTest, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < 32; ++v) {
    uint32_t b = QuantileSketch::BucketOf(v);
    EXPECT_EQ(QuantileSketch::BucketLowValue(b), v);
    EXPECT_EQ(QuantileSketch::BucketHighValue(b), v);
  }
}

TEST(QuantileSketchTest, BucketRangesCoverAndAreMonotonic) {
  uint32_t prev_bucket = 0;
  for (uint64_t v : std::vector<uint64_t>{0, 1, 31, 32, 33, 47, 48, 63, 64,
                                          100, 1000, 4095, 4096, 65535,
                                          1'000'000, 123'456'789,
                                          (1ull << 40) + 12345}) {
    uint32_t b = QuantileSketch::BucketOf(v);
    EXPECT_GE(b, prev_bucket) << "bucket index not monotonic at " << v;
    prev_bucket = b;
    EXPECT_LE(QuantileSketch::BucketLowValue(b), v);
    EXPECT_GE(QuantileSketch::BucketHighValue(b), v);
  }
}

TEST(QuantileSketchTest, BucketRelativeWidthBounded) {
  // Every bucket's width is at most low/16 — the 1/16 relative error
  // guarantee the header promises.
  for (uint64_t v : std::vector<uint64_t>{32, 100, 999, 12345, 1'000'000,
                                          (1ull << 50) + 7}) {
    uint32_t b = QuantileSketch::BucketOf(v);
    uint64_t low = QuantileSketch::BucketLowValue(b);
    uint64_t high = QuantileSketch::BucketHighValue(b);
    EXPECT_LE(high - low, low / 16)
        << "bucket " << b << " [" << low << "," << high << "] too wide";
  }
}

// --------------------------------------------------------------- quantiles

TEST(QuantileSketchTest, EmptySketch) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_EQ(s.Quantile(0.5), 0u);
}

TEST(QuantileSketchTest, SingleSample) {
  QuantileSketch s;
  s.Record(12345);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.sum(), 12345u);
  EXPECT_EQ(s.min(), 12345u);
  EXPECT_EQ(s.max(), 12345u);
  // With one sample every quantile is that sample: the bucket bound is
  // clamped to [min, max].
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(s.Quantile(q), 12345u) << "q=" << q;
  }
}

// Exact percentile via nearest-rank on a sorted copy, mirroring the
// sketch's rank convention (rank = ceil(q * count), 1-based).
uint64_t ExactQuantile(std::vector<uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(values.size()));
  if (static_cast<double>(rank) < q * static_cast<double>(values.size())) {
    ++rank;
  }
  if (rank == 0) {
    rank = 1;
  }
  return values[rank - 1];
}

void CheckErrorBound(const std::vector<uint64_t>& values) {
  QuantileSketch s;
  for (uint64_t v : values) {
    s.Record(v);
  }
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    uint64_t exact = ExactQuantile(values, q);
    uint64_t approx = s.Quantile(q);
    // The sketch reports the true bucket's upper bound: never below the
    // exact percentile, and above it by at most the bucket width (low/16).
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact + exact / 16 + 1) << "q=" << q;
  }
  EXPECT_EQ(s.Quantile(0.0), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(s.Quantile(1.0), *std::max_element(values.begin(), values.end()));
}

TEST(QuantileSketchTest, ErrorBoundOnUniformDistribution) {
  std::vector<uint64_t> values;
  for (uint64_t v = 1; v <= 10'000; ++v) {
    values.push_back(v);
  }
  CheckErrorBound(values);
}

TEST(QuantileSketchTest, ErrorBoundOnGeometricDistribution) {
  // Deterministic heavy tail: latencies spanning six decades, many small,
  // few huge — the shape flexwatch actually sees past saturation.
  std::vector<uint64_t> values;
  uint64_t v = 100;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(v + static_cast<uint64_t>(i) % 37);
    if (i % 4 == 3) {
      v += v / 8 + 1;  // ~12% growth every 4th sample
    }
  }
  CheckErrorBound(values);
}

TEST(QuantileSketchTest, MergeIsAssociativeAndCommutative) {
  auto fill = [](QuantileSketch* s, uint64_t seed, int n) {
    uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      s->Record((x >> 33) % 1'000'000);
    }
  };
  QuantileSketch a, b, c;
  fill(&a, 1, 300);
  fill(&b, 2, 500);
  fill(&c, 3, 200);

  QuantileSketch ab_c = a;  // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  QuantileSketch bc = b;  // a + (b + c)
  bc.Merge(c);
  QuantileSketch a_bc = a;
  a_bc.Merge(bc);
  QuantileSketch cba = c;  // commuted order
  cba.Merge(b);
  cba.Merge(a);

  for (const QuantileSketch* s : {&a_bc, &cba}) {
    EXPECT_EQ(ab_c.count(), s->count());
    EXPECT_EQ(ab_c.sum(), s->sum());
    EXPECT_EQ(ab_c.min(), s->min());
    EXPECT_EQ(ab_c.max(), s->max());
    EXPECT_EQ(ab_c.buckets(), s->buckets());
  }
  EXPECT_EQ(ab_c.count(), 1000u);
}

TEST(QuantileSketchTest, MergeWithEmptyIsIdentity) {
  QuantileSketch a;
  a.Record(42);
  a.Record(7);
  QuantileSketch empty;
  QuantileSketch merged = a;
  merged.Merge(empty);
  EXPECT_EQ(merged.buckets(), a.buckets());
  EXPECT_EQ(merged.min(), 7u);
  QuantileSketch onto_empty;
  onto_empty.Merge(a);
  EXPECT_EQ(onto_empty.buckets(), a.buckets());
  EXPECT_EQ(onto_empty.min(), 7u);
  EXPECT_EQ(onto_empty.max(), 42u);
}

// ---------------------------------------------------------------- sampler

TEST(TimelineSamplerTest, WindowsCounterDeltasAndGaugeReads) {
  VirtualClock clock;
  EventQueue events(&clock);
  uint64_t work_done = 0;
  uint64_t depth = 0;

  TimelineSampler sampler(&events, 1000);
  sampler.AddCounter("work", [&work_done]() { return work_done; });
  sampler.AddGauge("depth", [&depth]() { return depth; });

  // Three windows of activity: deltas 2, 0, 3; gauge reads 5, 5, 0.
  events.ScheduleAt(100, [&]() { work_done += 2; depth = 5; });
  events.ScheduleAt(2500, [&]() { work_done += 3; depth = 0; });
  events.ScheduleAt(2600, [&]() {});

  sampler.Start();
  EXPECT_TRUE(sampler.running());
  while (events.RunNext()) {
  }
  Timeline t = sampler.Stop();
  EXPECT_FALSE(sampler.running());

  ASSERT_EQ(t.counters.size(), 1u);
  ASSERT_EQ(t.gauges.size(), 1u);
  EXPECT_EQ(t.tick_nanos, 1000u);
  // Windows [0,1000) [1000,2000) close on ticks; the tail past 2000 is
  // flushed by Stop() as a final partial window.
  ASSERT_GE(t.ticks, 3u);
  EXPECT_EQ(t.counters[0].samples[0], 2u);
  EXPECT_EQ(t.counters[0].samples[1], 0u);
  EXPECT_EQ(t.counters[0].samples[2], 3u);
  EXPECT_EQ(t.gauges[0].samples[0], 5u);
  EXPECT_EQ(t.gauges[0].samples[1], 5u);
  EXPECT_EQ(t.gauges[0].samples[2], 0u);
}

TEST(TimelineSamplerTest, ObservationsLandInTheirWindow) {
  VirtualClock clock;
  EventQueue events(&clock);
  TimelineSampler sampler(&events, 1000);

  events.ScheduleAt(500, []() {
    WatchObserve(WatchSeries::kCallLatency, 7, 111);
  });
  events.ScheduleAt(1500, []() {
    WatchObserve(WatchSeries::kCallLatency, 7, 222);
    WatchObserve(WatchSeries::kCallLatency, 9, 333);
  });

  sampler.Start();
  while (events.RunNext()) {
  }
  Timeline t = sampler.Stop();

  ASSERT_EQ(t.sketches.size(), 3u);
  Timeline::SketchKey k0{static_cast<uint16_t>(WatchSeries::kCallLatency), 7,
                         0};
  Timeline::SketchKey k1{static_cast<uint16_t>(WatchSeries::kCallLatency), 7,
                         1};
  Timeline::SketchKey k2{static_cast<uint16_t>(WatchSeries::kCallLatency), 9,
                         1};
  ASSERT_TRUE(t.sketches.count(k0));
  ASSERT_TRUE(t.sketches.count(k1));
  ASSERT_TRUE(t.sketches.count(k2));
  EXPECT_EQ(t.sketches.at(k0).sum(), 111u);
  EXPECT_EQ(t.sketches.at(k1).sum(), 222u);
  EXPECT_EQ(t.sketches.at(k2).sum(), 333u);
}

TEST(TimelineSamplerTest, ObserveWithNoSamplerIsANoOp) {
  WatchObserve(WatchSeries::kCallLatency, 1, 999);  // must not crash
}

TEST(TimelineSamplerTest, TickDoesNotKeepTheLoopAlive) {
  VirtualClock clock;
  EventQueue events(&clock);
  TimelineSampler sampler(&events, 1000);
  events.ScheduleAt(100, []() {});
  sampler.Start();
  size_t steps = 0;
  while (events.RunNext()) {
    ASSERT_LT(++steps, 100u) << "sampler tick kept the event loop alive";
  }
  Timeline t = sampler.Stop();
  EXPECT_GE(t.ticks, 1u);  // the partial window flush still happened
}

TEST(TimelineSamplerTest, TraceCounterDeltasAreSnapshotted) {
  SetTraceEnabled(true);
  ResetTrace();
  VirtualClock clock;
  EventQueue events(&clock);
  TimelineSampler sampler(&events, 1000);
  sampler.AddTraceCounter(TraceCounter::kDataCopies);

  events.ScheduleAt(100, []() { TraceAdd(TraceCounter::kDataCopies, 4); });
  events.ScheduleAt(1100, []() { TraceAdd(TraceCounter::kDataCopies, 6); });

  sampler.Start();
  while (events.RunNext()) {
  }
  Timeline t = sampler.Stop();
  SetTraceEnabled(false);
  ResetTrace();

  ASSERT_EQ(t.counters.size(), 1u);
  EXPECT_EQ(t.counters[0].name, "mem.copies");
  ASSERT_GE(t.ticks, 2u);
  EXPECT_EQ(t.counters[0].samples[0], 4u);
  EXPECT_EQ(t.counters[0].samples[1], 6u);
}

// ------------------------------------------------------------------- json

TEST(TimelineJsonTest, RoundTripIsByteIdentical) {
  VirtualClock clock;
  EventQueue events(&clock);
  uint64_t n = 0;
  TimelineSampler sampler(&events, 500);
  sampler.AddCounter("n", [&n]() { return n; });
  sampler.AddGauge("g", [&n]() { return n * 2; });
  events.ScheduleAt(250, [&n]() {
    ++n;
    WatchObserve(WatchSeries::kQueueDepth, 0, 3);
    WatchObserve(WatchSeries::kWorkerExec, 2, 1'000'000);
  });
  events.ScheduleAt(1250, [&n]() { n += 5; });
  sampler.Start();
  while (events.RunNext()) {
  }
  Timeline t = sampler.Stop();

  std::string json = TimelineToJson(t);
  EXPECT_EQ(json, TimelineToJson(t)) << "serialization not deterministic";

  auto parsed = ParseTimeline(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(TimelineToJson(*parsed), json);
  EXPECT_EQ(parsed->ticks, t.ticks);
  EXPECT_EQ(parsed->sketches.size(), t.sketches.size());
}

TEST(TimelineJsonTest, ParseRejectsWrongSchema) {
  EXPECT_FALSE(ParseTimeline("{\"schema\":\"flexrpc-rec-v1\"}").ok());
  EXPECT_FALSE(ParseTimeline("not json").ok());
}

TEST(TimelineJsonTest, SeriesNamesRoundTrip) {
  for (uint16_t i = 0; i < static_cast<uint16_t>(WatchSeries::kCount); ++i) {
    WatchSeries s = static_cast<WatchSeries>(i);
    auto back = WatchSeriesFromName(WatchSeriesName(s));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(WatchSeriesFromName("bogus_series").ok());
}

}  // namespace
}  // namespace flexrpc
