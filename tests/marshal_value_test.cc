// Tests for the wire formats and recursive value marshaling, including
// round-trip property tests over random values and XDR golden vectors.

#include <gtest/gtest.h>

#include <cstring>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/marshal/layout.h"
#include "src/marshal/native.h"
#include "src/marshal/value.h"
#include "src/marshal/xdr.h"
#include "src/support/rng.h"
#include "tests/value_testutil.h"

namespace flexrpc {
namespace {

TEST(XdrFormatTest, ScalarsWidenedTo32Bits) {
  XdrWriter w;
  w.PutU8(0xAB);
  EXPECT_EQ(w.size(), 4u);  // XDR: everything is at least 4 bytes
  EXPECT_EQ(w.span()[3], 0xAB);
  EXPECT_EQ(w.span()[0], 0x00);
}

TEST(XdrFormatTest, OpaquePadding) {
  XdrWriter w;
  w.PutBytes("abcde", 5);
  EXPECT_EQ(w.size(), 8u);  // padded to 4-byte boundary
  EXPECT_EQ(w.span()[5], 0);
  EXPECT_EQ(w.span()[6], 0);
  EXPECT_EQ(w.span()[7], 0);
}

TEST(XdrFormatTest, GoldenU32) {
  // RFC 1014: integers are big-endian two's complement.
  XdrWriter w;
  w.PutU32(0x01020304);
  const uint8_t expected[] = {0x01, 0x02, 0x03, 0x04};
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(std::memcmp(w.span().data(), expected, 4), 0);
}

TEST(XdrFormatTest, GoldenU64) {
  XdrWriter w;
  w.PutU64(0x0102030405060708ull);
  const uint8_t expected[] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_EQ(w.size(), 8u);
  EXPECT_EQ(std::memcmp(w.span().data(), expected, 8), 0);
}

TEST(XdrFormatTest, ReaderConsumesPadding) {
  XdrWriter w;
  w.PutBytes("ab", 2);
  w.PutU32(7);
  XdrReader r(w.span());
  auto bytes = r.GetBytes(2);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ((*bytes)[0], 'a');
  EXPECT_EQ(r.GetU32().value(), 7u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(XdrFormatTest, TruncationReported) {
  XdrWriter w;
  w.PutU32(1);
  XdrReader r(w.span());
  EXPECT_TRUE(r.GetU32().ok());
  EXPECT_FALSE(r.GetU32().ok());
  EXPECT_FALSE(r.GetBytes(1).ok());
}

TEST(NativeFormatTest, CompactLayout) {
  NativeWriter w;
  w.PutU8(1);
  w.PutU16(2);
  w.PutU32(3);
  w.PutU64(4);
  EXPECT_EQ(w.size(), 15u);  // no padding
  NativeReader r(w.span());
  EXPECT_EQ(r.GetU8().value(), 1);
  EXPECT_EQ(r.GetU16().value(), 2);
  EXPECT_EQ(r.GetU32().value(), 3u);
  EXPECT_EQ(r.GetU64().value(), 4u);
}

TEST(NativeFormatTest, ReserveBytesWritable) {
  NativeWriter w;
  uint8_t* p = w.ReserveBytes(4);
  std::memcpy(p, "wxyz", 4);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.span()[0], 'w');
}

TEST(LayoutTest, FieldOffsetsRespectAlignment) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(R"(
    struct s { octet a; unsigned long b; octet c; double d; };
    interface I { void f(in s x); };
  )", "t.idl", &diags);
  ASSERT_NE(idl, nullptr);
  const Type* s = idl->types.FindNamed("s");
  EXPECT_EQ(NativeFieldOffset(s, 0), 0u);
  EXPECT_EQ(NativeFieldOffset(s, 1), 4u);   // aligned to 4
  EXPECT_EQ(NativeFieldOffset(s, 2), 8u);
  EXPECT_EQ(NativeFieldOffset(s, 3), 16u);  // aligned to 8
  EXPECT_EQ(s->NativeSize(), 24u);
  EXPECT_EQ(s->NativeAlign(), 8u);
}

TEST(LayoutTest, ScalarLoadStoreRoundTrip) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl("interface I { void f(in double d); };", "t.idl",
                           &diags);
  ASSERT_NE(idl, nullptr);
  const Type* f64 = idl->types.F64();
  double v = 3.14159;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  uint8_t mem[8];
  StoreScalar(f64, mem, bits);
  EXPECT_EQ(LoadScalar(f64, mem), bits);
}

// --- round-trip property tests over random values ---

class ValueRoundTrip : public ::testing::TestWithParam<const char*> {};

// Each parameter is an IDL snippet defining type `t` used by interface I.
INSTANTIATE_TEST_SUITE_P(
    Shapes, ValueRoundTrip,
    ::testing::Values(
        "typedef unsigned long t;",
        "typedef string t;",
        "typedef string<16> t;",
        "typedef sequence<octet> t;",
        "typedef sequence<octet, 64> t;",
        "typedef sequence<unsigned long> t;",
        "typedef sequence<string> t;",
        "typedef double t[4];",
        "typedef octet t[8];",
        "struct inner { unsigned long a; string s; };\n"
        "typedef inner t;",
        "struct inner { unsigned long a; string s; };\n"
        "typedef sequence<inner> t;",
        "struct inner { unsigned long a; string s; };\n"
        "struct outer { inner i; sequence<octet> body; double w; };\n"
        "typedef outer t;",
        "enum e { A = 0, B = 3, C = 7 };\n"
        "typedef e t;",
        "enum e { OK = 0, FAIL = 1 };\n"
        "struct payload { unsigned long n; sequence<octet> d; };\n"
        "union u switch (e) { case 0: payload p; default: long err; };\n"
        "typedef u t;"));

TEST_P(ValueRoundTrip, XdrAndNativeAgreeWithOriginal) {
  std::string src = std::string(GetParam()) +
                    "\ninterface I { void f(in t x); };";
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(src, "t.idl", &diags);
  ASSERT_NE(idl, nullptr) << diags.ToString();
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags)) << diags.ToString();
  const Type* t = idl->types.FindNamed("t");
  ASSERT_NE(t, nullptr);

  Rng rng(20260707);
  Arena arena("values");
  for (int iter = 0; iter < 50; ++iter) {
    void* original = RandomNativeValue(&rng, &arena, t);

    // XDR round trip.
    {
      XdrWriter w;
      ASSERT_TRUE(MarshalValue(&w, t, original).ok());
      XdrReader r(w.span());
      void* decoded = arena.AllocateBlock(t->NativeSize());
      std::memset(decoded, 0, t->NativeSize());
      Status st = UnmarshalValue(&r, t, decoded, &arena);
      ASSERT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ(r.remaining(), 0u);
      EXPECT_TRUE(ValueEquals(t, original, decoded)) << "XDR iter " << iter;
    }
    // Native round trip.
    {
      NativeWriter w;
      ASSERT_TRUE(MarshalValue(&w, t, original).ok());
      NativeReader r(w.span());
      void* decoded = arena.AllocateBlock(t->NativeSize());
      std::memset(decoded, 0, t->NativeSize());
      Status st = UnmarshalValue(&r, t, decoded, &arena);
      ASSERT_TRUE(st.ok()) << st.ToString();
      EXPECT_TRUE(ValueEquals(t, original, decoded))
          << "native iter " << iter;
    }
  }
}

TEST_P(ValueRoundTrip, CopyValueProducesEqualIndependentValue) {
  std::string src = std::string(GetParam()) +
                    "\ninterface I { void f(in t x); };";
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(src, "t.idl", &diags);
  ASSERT_NE(idl, nullptr) << diags.ToString();
  const Type* t = idl->types.FindNamed("t");

  Rng rng(99);
  Arena arena("values");
  for (int iter = 0; iter < 20; ++iter) {
    void* original = RandomNativeValue(&rng, &arena, t);
    void* copy = arena.AllocateBlock(t->NativeSize());
    std::memset(copy, 0, t->NativeSize());
    ASSERT_TRUE(CopyValue(&arena, t, original, copy).ok());
    EXPECT_TRUE(ValueEquals(t, original, copy));
  }
}

TEST_P(ValueRoundTrip, TruncatedWireDataRejected) {
  std::string src = std::string(GetParam()) +
                    "\ninterface I { void f(in t x); };";
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(src, "t.idl", &diags);
  ASSERT_NE(idl, nullptr) << diags.ToString();
  const Type* t = idl->types.FindNamed("t");

  Rng rng(7);
  Arena arena("values");
  void* original = RandomNativeValue(&rng, &arena, t);
  XdrWriter w;
  ASSERT_TRUE(MarshalValue(&w, t, original).ok());
  if (w.size() == 0) {
    return;  // nothing to truncate
  }
  // Every strict prefix must fail cleanly (no crash, DATA_LOSS status).
  for (size_t cut = 1; cut <= w.size(); cut += 4) {
    XdrReader r(w.span().subspan(0, w.size() - cut));
    void* decoded = arena.AllocateBlock(t->NativeSize());
    std::memset(decoded, 0, t->NativeSize());
    Status st = UnmarshalValue(&r, t, decoded, &arena);
    EXPECT_FALSE(st.ok()) << "cut " << cut;
  }
}

TEST(ValueTest, StringBoundEnforcedOnMarshal) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(
      "typedef string<4> t; interface I { void f(in t x); };", "t.idl",
      &diags);
  const Type* t = idl->types.FindNamed("t");
  const char* too_long = "abcdef";
  XdrWriter w;
  Status st = MarshalValue(&w, t, &too_long);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, SequenceBoundEnforcedOnUnmarshal) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(
      "typedef sequence<octet, 4> t; interface I { void f(in t x); };",
      "t.idl", &diags);
  const Type* t = idl->types.FindNamed("t");
  // Hand-craft a wire image claiming 100 elements.
  XdrWriter w;
  w.PutU32(100);
  uint8_t junk[100] = {};
  w.PutBytes(junk, 100);
  XdrReader r(w.span());
  Arena arena("a");
  SeqRep rep;
  Status st = UnmarshalValue(&r, t, &rep, &arena);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(ValueTest, UnknownUnionDiscriminantRejected) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(R"(
    enum e { A = 0, B = 1 };
    union u switch (e) { case 0: long x; case 1: long y; };
    interface I { void f(in u v); };
  )", "t.idl", &diags);
  ASSERT_NE(idl, nullptr) << diags.ToString();
  const Type* u = idl->types.FindNamed("u");
  XdrWriter w;
  w.PutU32(42);  // matches no arm, no default
  XdrReader r(w.span());
  Arena arena("a");
  void* dst = arena.AllocateBlock(u->NativeSize());
  EXPECT_EQ(UnmarshalValue(&r, u, dst, &arena).code(),
            StatusCode::kDataLoss);
}

TEST(ValueTest, FreeValueReturnsAllBlocks) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(R"(
    struct inner { string s; sequence<octet> d; };
    typedef sequence<inner> t;
    interface I { void f(in t x); };
  )", "t.idl", &diags);
  ASSERT_NE(idl, nullptr) << diags.ToString();
  const Type* t = idl->types.FindNamed("t");

  Rng rng(5);
  Arena source("src");
  void* original = RandomNativeValue(&rng, &source, t);
  XdrWriter w;
  ASSERT_TRUE(MarshalValue(&w, t, original).ok());

  Arena sink("dst");
  void* decoded = sink.AllocateBlock(t->NativeSize());
  std::memset(decoded, 0, t->NativeSize());
  XdrReader r(w.span());
  ASSERT_TRUE(UnmarshalValue(&r, t, decoded, &sink).ok());
  FreeValue(&sink, t, decoded);
  sink.FreeBlock(decoded);
  EXPECT_EQ(sink.live_blocks(), 0u);  // refcount conservation
}

TEST(ValueTest, XdrMatchesHandEncodedStruct) {
  // Golden test pinning the full XDR encoding of a small struct.
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(R"(
    struct s { unsigned long a; string name; };
    interface I { void f(in s x); };
  )", "t.idl", &diags);
  ASSERT_NE(idl, nullptr) << diags.ToString();
  const Type* s = idl->types.FindNamed("s");

  struct Native {
    uint32_t a;
    uint32_t pad;
    const char* name;
  } value = {0x11223344, 0, "hey"};
  static_assert(sizeof(Native) == 16);

  XdrWriter w;
  ASSERT_TRUE(MarshalValue(&w, s, &value).ok());
  const uint8_t expected[] = {
      0x11, 0x22, 0x33, 0x44,  // a
      0x00, 0x00, 0x00, 0x03,  // strlen("hey")
      'h',  'e',  'y',  0x00,  // bytes + pad
  };
  ASSERT_EQ(w.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(w.span().data(), expected, sizeof(expected)), 0);
}

}  // namespace
}  // namespace flexrpc
