// End-to-end tests for the RPC runtime: IDL text in, cross-domain calls
// out, covering default and annotated presentations over the fast path.

#include <gtest/gtest.h>

#include <cstring>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/rpc/runtime.h"

namespace flexrpc {
namespace {

class RpcRuntimeTest : public ::testing::Test {
 protected:
  void Load(std::string_view idl_src, std::string_view client_pdl = "",
            std::string_view server_pdl = "") {
    DiagnosticSink diags;
    idl_ = ParseCorbaIdl(idl_src, "t.idl", &diags);
    ASSERT_NE(idl_, nullptr) << diags.ToString();
    ASSERT_TRUE(AnalyzeInterfaceFile(idl_.get(), &diags)) << diags.ToString();
    if (client_pdl.empty()) {
      ASSERT_TRUE(ApplyPdl(*idl_, Side::kClient, nullptr, &client_, &diags));
    } else {
      ASSERT_TRUE(ApplyPdlText(*idl_, Side::kClient, client_pdl, "c.pdl",
                               &client_, &diags))
          << diags.ToString();
    }
    if (server_pdl.empty()) {
      ASSERT_TRUE(ApplyPdl(*idl_, Side::kServer, nullptr, &server_, &diags));
    } else {
      ASSERT_TRUE(ApplyPdlText(*idl_, Side::kServer, server_pdl, "s.pdl",
                               &server_, &diags))
          << diags.ToString();
    }
    client_task_ = kernel_.CreateTask("client");
    server_task_ = kernel_.CreateTask("server");
  }

  Kernel kernel_;
  FastPath fastpath_{&kernel_};
  std::unique_ptr<InterfaceFile> idl_;
  PresentationSet client_;
  PresentationSet server_;
  Task* client_task_ = nullptr;
  Task* server_task_ = nullptr;
};

TEST_F(RpcRuntimeTest, EchoStringAcrossDomains) {
  Load(R"(
    interface Echo {
      string shout(in string text);
    };
  )");
  const InterfaceDecl& itf = idl_->interfaces[0];
  ServerObject server(itf, *server_.Find("Echo"), server_task_);
  server.SetWork("shout", [](ArgVec* args, Arena* arena) {
    const char* in = static_cast<const char*>((*args)[0].ptr());
    size_t len = std::strlen(in);
    char* out = static_cast<char*>(arena->AllocateBlock(len + 2));
    out[0] = '!';
    std::memcpy(out + 1, in, len + 1);
    (*args)[args->size() - 1].set_ptr(out);
    return Status::Ok();
  });
  Port* port = ExportServer(&kernel_, &fastpath_, &server);
  auto conn = RpcConnection::Bind(&kernel_, &fastpath_, client_task_, port,
                                  server, itf, *client_.Find("Echo"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const MarshalProgram* prog = (*conn)->ProgramFor("shout");
  ArgVec args(prog->slot_count());
  args[prog->SlotOf("text")].set_ptr("hello");
  ASSERT_TRUE((*conn)->Call("shout", &args).ok());
  EXPECT_STREQ(static_cast<const char*>(args[prog->result_slot()].ptr()),
               "!hello");
  // Server-side request storage was released by the dispatch epilogue; the
  // reply buffer the work function donated was freed after marshaling.
  EXPECT_EQ(server_task_->space().arena().live_blocks(), 0u);
}

TEST_F(RpcRuntimeTest, BindRejectsMismatchedInterface) {
  Load("interface A { void f(in long x); };");
  const InterfaceDecl& itf = idl_->interfaces[0];
  ServerObject server(itf, *server_.Find("A"), server_task_);
  Port* port = ExportServer(&kernel_, &fastpath_, &server);

  DiagnosticSink diags;
  auto other = ParseCorbaIdl("interface A { void f(in string x); };",
                             "o.idl", &diags);
  ASSERT_NE(other, nullptr);
  ASSERT_TRUE(AnalyzeInterfaceFile(other.get(), &diags));
  PresentationSet other_pres;
  ASSERT_TRUE(
      ApplyPdl(*other, Side::kClient, nullptr, &other_pres, &diags));
  auto conn =
      RpcConnection::Bind(&kernel_, &fastpath_, client_task_, port, server,
                          other->interfaces[0], *other_pres.Find("A"));
  EXPECT_EQ(conn.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(RpcRuntimeTest, ServerErrorTravelsInBand) {
  Load("interface A { void f(in long x); };");
  const InterfaceDecl& itf = idl_->interfaces[0];
  ServerObject server(itf, *server_.Find("A"), server_task_);
  server.SetWork("f", [](ArgVec*, Arena*) {
    return FailedPreconditionError("not ready");
  });
  Port* port = ExportServer(&kernel_, &fastpath_, &server);
  auto conn = RpcConnection::Bind(&kernel_, &fastpath_, client_task_, port,
                                  server, itf, *client_.Find("A"));
  ASSERT_TRUE(conn.ok());
  const MarshalProgram* prog = (*conn)->ProgramFor("f");
  ArgVec args(prog->slot_count());
  Status st = (*conn)->Call("f", &args);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(st.message(), "not ready");
}

TEST_F(RpcRuntimeTest, MissingWorkFunctionReported) {
  Load("interface A { void f(); };");
  const InterfaceDecl& itf = idl_->interfaces[0];
  ServerObject server(itf, *server_.Find("A"), server_task_);
  Port* port = ExportServer(&kernel_, &fastpath_, &server);
  auto conn = RpcConnection::Bind(&kernel_, &fastpath_, client_task_, port,
                                  server, itf, *client_.Find("A"));
  ASSERT_TRUE(conn.ok());
  ArgVec args((*conn)->ProgramFor("f")->slot_count());
  EXPECT_EQ((*conn)->Call("f", &args).code(), StatusCode::kUnimplemented);
}

TEST_F(RpcRuntimeTest, UnknownOperationReported) {
  Load("interface A { void f(); };");
  const InterfaceDecl& itf = idl_->interfaces[0];
  ServerObject server(itf, *server_.Find("A"), server_task_);
  Port* port = ExportServer(&kernel_, &fastpath_, &server);
  auto conn = RpcConnection::Bind(&kernel_, &fastpath_, client_task_, port,
                                  server, itf, *client_.Find("A"));
  ASSERT_TRUE(conn.ok());
  ArgVec args(1);
  EXPECT_EQ((*conn)->Call("nope", &args).code(), StatusCode::kNotFound);
}

TEST_F(RpcRuntimeTest, SequenceOutParamWithCallerBuffer) {
  Load(R"(
    interface Blob {
      void fetch(in unsigned long count, out sequence<octet> data);
    };
  )", "Blob_fetch(unsigned long count, char *[alloc(user)] data);", "");
  const InterfaceDecl& itf = idl_->interfaces[0];
  ServerObject server(itf, *server_.Find("Blob"), server_task_);
  server.SetWork("fetch", [](ArgVec* args, Arena* arena) {
    uint32_t count = static_cast<uint32_t>((*args)[0].scalar);
    auto* buf = static_cast<uint8_t*>(arena->AllocateBlock(count));
    std::memset(buf, 0xC3, count);
    (*args)[1].set_ptr(buf);
    (*args)[1].length = count;
    return Status::Ok();
  });
  Port* port = ExportServer(&kernel_, &fastpath_, &server);
  auto conn = RpcConnection::Bind(&kernel_, &fastpath_, client_task_, port,
                                  server, itf, *client_.Find("Blob"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const MarshalProgram* prog = (*conn)->ProgramFor("fetch");
  uint8_t mine[256];
  ArgVec args(prog->slot_count());
  args[prog->SlotOf("count")].scalar = 200;
  args[prog->SlotOf("data")].set_ptr(mine);
  args[prog->SlotOf("data")].capacity = sizeof(mine);
  ASSERT_TRUE((*conn)->Call("fetch", &args).ok());
  EXPECT_EQ(args[prog->SlotOf("data")].length, 200u);
  EXPECT_EQ(mine[100], 0xC3);
  // No stub allocation happened in the client's space for the data.
  EXPECT_EQ(client_task_->space().arena().live_blocks(), 0u);
}

TEST_F(RpcRuntimeTest, ManyCallsNoLeaks) {
  Load(R"(
    interface KV {
      sequence<octet> get(in string key);
    };
  )");
  const InterfaceDecl& itf = idl_->interfaces[0];
  ServerObject server(itf, *server_.Find("KV"), server_task_);
  server.SetWork("get", [](ArgVec* args, Arena* arena) {
    const char* key = static_cast<const char*>((*args)[0].ptr());
    size_t n = std::strlen(key) * 3;
    auto* buf = static_cast<uint8_t*>(arena->AllocateBlock(n > 0 ? n : 1));
    std::memset(buf, 0xEE, n);
    (*args)[args->size() - 1].set_ptr(buf);
    (*args)[args->size() - 1].length = static_cast<uint32_t>(n);
    return Status::Ok();
  });
  Port* port = ExportServer(&kernel_, &fastpath_, &server);
  auto conn = RpcConnection::Bind(&kernel_, &fastpath_, client_task_, port,
                                  server, itf, *client_.Find("KV"));
  ASSERT_TRUE(conn.ok());
  const MarshalProgram* prog = (*conn)->ProgramFor("get");
  for (int i = 0; i < 100; ++i) {
    ArgVec args(prog->slot_count());
    args[prog->SlotOf("key")].set_ptr("some-key");
    ASSERT_TRUE((*conn)->Call("get", &args).ok());
    EXPECT_EQ(args[prog->result_slot()].length, 24u);
    // The client frees the donated buffer (move semantics).
    client_task_->space().Free(args[prog->result_slot()].ptr());
  }
  EXPECT_EQ(server_task_->space().arena().live_blocks(), 0u);
  EXPECT_EQ(client_task_->space().arena().live_blocks(), 0u);
}

}  // namespace
}  // namespace flexrpc
