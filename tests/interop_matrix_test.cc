// The deployability property underlying the whole paper: ANY client
// presentation interoperates with ANY server presentation of the same
// interface, because presentation never reaches the wire. This test runs
// a full cross-product of annotated endpoints over the fast-path
// transport and verifies data integrity in every cell.

#include <gtest/gtest.h>

#include <cstring>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/rpc/runtime.h"

namespace flexrpc {
namespace {

constexpr char kIdl[] = R"(
  interface Store {
    sequence<octet> get(in string key, in unsigned long limit);
    unsigned long put(in string key, in sequence<octet> value);
  };
)";

// Client-side presentation variants.
const char* kClientPdls[] = {
    "",  // default
    // Explicit lengths for the put value.
    "Store_put(char *key, char *[length_is(vlen)] value, int vlen);",
    // Caller-provided receive buffer for get.
    "Store_get()[alloc(user)];",
};

// Server-side presentation variants.
const char* kServerPdls[] = {
    "",  // default (work fn donates; stub frees)
    // Server retains ownership of returned buffers.
    "Store_get()[dealloc(never)];",
    // Server promises not to modify incoming values.
    "Store_put(char *key, char *[preserved] value);",
};

class InteropMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(AllPairs, InteropMatrixTest,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3)));

TEST_P(InteropMatrixTest, PutThenGetRoundTrips) {
  auto [ci, si] = GetParam();
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(kIdl, "store.idl", &diags);
  ASSERT_NE(idl, nullptr) << diags.ToString();
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags));

  PresentationSet client_pres;
  PresentationSet server_pres;
  std::string_view cpdl = kClientPdls[ci];
  std::string_view spdl = kServerPdls[si];
  ASSERT_TRUE(cpdl.empty()
                  ? ApplyPdl(*idl, Side::kClient, nullptr, &client_pres,
                             &diags)
                  : ApplyPdlText(*idl, Side::kClient, cpdl, "c.pdl",
                                 &client_pres, &diags))
      << diags.ToString();
  ASSERT_TRUE(spdl.empty()
                  ? ApplyPdl(*idl, Side::kServer, nullptr, &server_pres,
                             &diags)
                  : ApplyPdlText(*idl, Side::kServer, spdl, "s.pdl",
                                 &server_pres, &diags))
      << diags.ToString();

  Kernel kernel;
  FastPath fastpath(&kernel);
  Task* client_task = kernel.CreateTask("client");
  Task* server_task = kernel.CreateTask("server");

  // A one-slot store. With [dealloc(never)] the server keeps ownership of
  // the buffer it returns; otherwise it donates a copy.
  struct StoreState {
    std::vector<uint8_t> value;
    std::vector<uint8_t> retained;
  };
  StoreState state;
  bool server_retains = si == 1;

  ServerObject server(idl->interfaces[0], *server_pres.Find("Store"),
                      server_task);
  server.SetWork("put", [&state](ArgVec* args, Arena*) {
    const auto* bytes = static_cast<const uint8_t*>((*args)[1].ptr());
    state.value.assign(bytes, bytes + (*args)[1].length);
    (*args)[args->size() - 1].scalar = (*args)[1].length;
    return Status::Ok();
  });
  server.SetWork("get", [&state, server_retains](ArgVec* args,
                                                 Arena* arena) {
    size_t limit = static_cast<size_t>((*args)[1].scalar);
    size_t n = state.value.size() < limit ? state.value.size() : limit;
    size_t result = args->size() - 1;
    if (server_retains) {
      state.retained = state.value;  // server-owned storage
      (*args)[result].set_ptr(state.retained.data());
    } else {
      void* buf = arena->AllocateBlock(n > 0 ? n : 1);
      std::memcpy(buf, state.value.data(), n);
      (*args)[result].set_ptr(buf);
    }
    (*args)[result].length = static_cast<uint32_t>(n);
    return Status::Ok();
  });
  Port* port = ExportServer(&kernel, &fastpath, &server);

  auto conn = RpcConnection::Bind(&kernel, &fastpath, client_task, port,
                                  server, idl->interfaces[0],
                                  *client_pres.Find("Store"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  // --- put ---
  uint8_t payload[300];
  for (size_t i = 0; i < sizeof(payload); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  const MarshalProgram* put = (*conn)->ProgramFor("put");
  {
    ArgVec args(put->slot_count());
    args[put->SlotOf("key")].set_ptr("the-key");
    args[put->SlotOf("value")].set_ptr(payload);
    if (ci == 1) {
      args[put->SlotOf("vlen")].scalar = sizeof(payload);
    } else {
      args[put->SlotOf("value")].length = sizeof(payload);
    }
    Status st = (*conn)->Call("put", &args);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(args[put->result_slot()].scalar, sizeof(payload));
  }

  // --- get ---
  const MarshalProgram* get = (*conn)->ProgramFor("get");
  {
    ArgVec args(get->slot_count());
    args[get->SlotOf("key")].set_ptr("the-key");
    args[get->SlotOf("limit")].scalar = 4096;
    uint8_t mine[4096];
    if (ci == 2) {
      args[get->result_slot()].set_ptr(mine);
      args[get->result_slot()].capacity = sizeof(mine);
    }
    Status st = (*conn)->Call("get", &args);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(args[get->result_slot()].length, sizeof(payload));
    const auto* got =
        static_cast<const uint8_t*>(args[get->result_slot()].ptr());
    EXPECT_EQ(std::memcmp(got, payload, sizeof(payload)), 0)
        << "client pdl " << ci << ", server pdl " << si;
    if (ci != 2) {
      client_task->space().Free(args[get->result_slot()].ptr());
    }
  }
  // Whatever the presentation pair, nothing leaked in either domain.
  EXPECT_EQ(server_task->space().arena().live_blocks(), 0u);
  EXPECT_EQ(client_task->space().arena().live_blocks(), 0u);
}

}  // namespace
}  // namespace flexrpc
