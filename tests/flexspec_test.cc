// flexspec tests: superinstruction compilation, the reference executors'
// byte-for-byte agreement with the interpreter across every seed signature
// family, engine dispatch + hit/miss counters, the registry, the profile
// reader, the --specialize emitter (including blocked emission on a
// corrupted stream), and the drift guards tying examples/idl/nfs.* to the
// embedded NFS texts the build specializes against.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/analysis/flexspec_profile.h"
#include "src/analysis/spec_verifier.h"
#include "src/apps/nfs.h"
#include "src/codegen/spec_gen.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"
#include "src/marshal/spec.h"
#include "src/marshal/xdr.h"
#include "src/pdl/apply.h"
#include "src/support/trace.h"

namespace flexrpc {
namespace {

constexpr size_t kMReq = static_cast<size_t>(SpecStream::kMarshalRequest);
constexpr size_t kUReq = static_cast<size_t>(SpecStream::kUnmarshalRequest);
constexpr size_t kURep = static_cast<size_t>(SpecStream::kUnmarshalReply);

struct Compiled {
  std::unique_ptr<InterfaceFile> idl;
  PresentationSet client;
  PresentationSet server;
};

Compiled Compile(std::string_view idl_src, bool sunrpc,
                 std::string_view client_pdl, std::string_view server_pdl) {
  Compiled c;
  DiagnosticSink diags;
  c.idl = sunrpc ? ParseSunRpc(idl_src, "t.x", &diags)
                 : ParseCorbaIdl(idl_src, "t.idl", &diags);
  EXPECT_NE(c.idl, nullptr) << diags.ToString();
  EXPECT_TRUE(AnalyzeInterfaceFile(c.idl.get(), &diags)) << diags.ToString();
  if (client_pdl.empty()) {
    EXPECT_TRUE(ApplyPdl(*c.idl, Side::kClient, nullptr, &c.client, &diags))
        << diags.ToString();
  } else {
    EXPECT_TRUE(ApplyPdlText(*c.idl, Side::kClient, client_pdl, "c.pdl",
                             &c.client, &diags))
        << diags.ToString();
  }
  if (server_pdl.empty()) {
    EXPECT_TRUE(ApplyPdl(*c.idl, Side::kServer, nullptr, &c.server, &diags))
        << diags.ToString();
  } else {
    EXPECT_TRUE(ApplyPdlText(*c.idl, Side::kServer, server_pdl, "s.pdl",
                             &c.server, &diags))
        << diags.ToString();
  }
  return c;
}

// Restores the global dispatch switch no matter how the test exits.
struct SpecSwitchGuard {
  bool saved = MarshalSpecializationEnabled();
  ~SpecSwitchGuard() { SetMarshalSpecializationEnabled(saved); }
};

void ExpectSameBytes(const XdrWriter& a, const XdrWriter& b,
                     const char* what) {
  ASSERT_EQ(a.span().size(), b.span().size()) << what;
  EXPECT_EQ(std::memcmp(a.span().data(), b.span().data(), a.span().size()),
            0)
      << what;
}

constexpr char kSysLogIdl[] = R"(
  interface SysLog {
    void write_msg(in string msg);
  };
)";

constexpr char kFileIoIdl[] = R"(
  interface FileIO {
    sequence<octet> read(in unsigned long count);
    void write(in sequence<octet> data);
  };
)";

// --- SpecKey identity -------------------------------------------------------

TEST(SpecKeyTest, StructurallyIdenticalOpsShareOpHash) {
  // Names never enter the op hash: two structurally identical operations
  // share specialized code, as they share a combination signature.
  Compiled a = Compile("interface A { void f(in string s); };", false, "",
                       "");
  Compiled b = Compile("interface B { void g(in string t); };", false, "",
                       "");
  SpecKey ka = ComputeSpecKey(a.idl->interfaces[0].ops[0],
                              *a.client.Find("A")->FindOp("f"));
  SpecKey kb = ComputeSpecKey(b.idl->interfaces[0].ops[0],
                              *b.client.Find("B")->FindOp("g"));
  EXPECT_EQ(ka.op_hash, kb.op_hash);
}

TEST(SpecKeyTest, PresentationChangesKey) {
  Compiled def = Compile(kSysLogIdl, false, "", "");
  Compiled alt = Compile(
      kSysLogIdl, false,
      "SysLog_write_msg(,, char *[length_is(length)] msg, int length);",
      "");
  SpecKey kd = ComputeSpecKey(def.idl->interfaces[0].ops[0],
                              *def.client.Find("SysLog")->FindOp("write_msg"));
  SpecKey ka = ComputeSpecKey(alt.idl->interfaces[0].ops[0],
                              *alt.client.Find("SysLog")->FindOp("write_msg"));
  EXPECT_EQ(kd.op_hash, ka.op_hash);  // same wire contract
  EXPECT_NE(kd.pres_hash, ka.pres_hash);
  EXPECT_FALSE(kd == ka);
}

TEST(SpecKeyTest, SameInputsAreDeterministic) {
  Compiled c1 = Compile(kSysLogIdl, false, "", "");
  Compiled c2 = Compile(kSysLogIdl, false, "", "");
  SpecKey k1 = ComputeSpecKey(c1.idl->interfaces[0].ops[0],
                              *c1.client.Find("SysLog")->FindOp("write_msg"));
  SpecKey k2 = ComputeSpecKey(c2.idl->interfaces[0].ops[0],
                              *c2.client.Find("SysLog")->FindOp("write_msg"));
  EXPECT_EQ(k1, k2);
}

// --- differential: executor vs interpreter, per signature family -----------

TEST(SpecExecutorTest, StringDefaultPresentation) {
  SpecSwitchGuard guard;
  Compiled c = Compile(kSysLogIdl, false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  const OpPresentation& pres =
      *c.client.Find("SysLog")->FindOp("write_msg");
  MarshalProgram prog = MarshalProgram::Build(op, pres);
  SpecPlan plan = CompileSpecPlan(op, pres);
  ASSERT_TRUE(plan.has_stream[kMReq]) << plan.rejection[kMReq];
  ASSERT_TRUE(plan.has_stream[kUReq]) << plan.rejection[kUReq];

  ArgVec args(prog.slot_count());
  args[prog.SlotOf("msg")].set_ptr("hello flexspec");
  XdrWriter interp;
  XdrWriter fused;
  SetMarshalSpecializationEnabled(false);
  ASSERT_TRUE(prog.MarshalRequest(args, &interp).ok());
  ASSERT_TRUE(
      RunSpecMarshal(plan.streams[kMReq], args, &fused, nullptr).ok());
  ExpectSameBytes(interp, fused, "string marshal request");

  // Unmarshal side: both paths must produce the same NUL-terminated copy.
  Arena arena_a("interp");
  Arena arena_b("fused");
  ArgVec out_a(prog.slot_count());
  ArgVec out_b(prog.slot_count());
  XdrReader ra(interp.span());
  XdrReader rb(fused.span());
  ASSERT_TRUE(prog.UnmarshalRequest(&ra, &arena_a, &out_a).ok());
  ASSERT_TRUE(RunSpecUnmarshal(plan.streams[kUReq], &rb, &arena_b, &out_b,
                               nullptr, /*borrow_bytes=*/false)
                  .ok());
  int slot = prog.SlotOf("msg");
  EXPECT_STREQ(static_cast<const char*>(out_a[slot].ptr()),
               static_cast<const char*>(out_b[slot].ptr()));
  EXPECT_EQ(arena_a.live_blocks(), arena_b.live_blocks());
}

TEST(SpecExecutorTest, StringExplicitLengthPresentation) {
  SpecSwitchGuard guard;
  Compiled c = Compile(
      kSysLogIdl, false,
      "SysLog_write_msg(,, char *[length_is(length)] msg, int length);",
      "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  const OpPresentation& pres =
      *c.client.Find("SysLog")->FindOp("write_msg");
  MarshalProgram prog = MarshalProgram::Build(op, pres);
  SpecPlan plan = CompileSpecPlan(op, pres);
  ASSERT_TRUE(plan.has_stream[kMReq]) << plan.rejection[kMReq];

  const char buffer[] = {'h', 'e', 'l', 'l', 'o', 'X', 'X', 'X'};
  ArgVec args(prog.slot_count());
  args[prog.SlotOf("msg")].set_ptr(buffer);
  args[prog.SlotOf("length")].scalar = 5;
  XdrWriter interp;
  XdrWriter fused;
  SetMarshalSpecializationEnabled(false);
  ASSERT_TRUE(prog.MarshalRequest(args, &interp).ok());
  ASSERT_TRUE(
      RunSpecMarshal(plan.streams[kMReq], args, &fused, nullptr).ok());
  ExpectSameBytes(interp, fused, "length_is marshal request");
}

TEST(SpecExecutorTest, SequenceWriteAndArenaReadBack) {
  SpecSwitchGuard guard;
  Compiled c = Compile(kFileIoIdl, false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[1];  // write
  const OpPresentation& pres = *c.client.Find("FileIO")->FindOp("write");
  MarshalProgram prog = MarshalProgram::Build(op, pres);
  SpecPlan plan = CompileSpecPlan(op, pres);
  ASSERT_TRUE(plan.has_stream[kMReq]) << plan.rejection[kMReq];
  ASSERT_TRUE(plan.has_stream[kUReq]) << plan.rejection[kUReq];

  uint8_t data[100];
  for (size_t i = 0; i < sizeof(data); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  ArgVec args(prog.slot_count());
  args[prog.SlotOf("data")].set_ptr(data);
  args[prog.SlotOf("data")].length = sizeof(data);
  XdrWriter interp;
  XdrWriter fused;
  SetMarshalSpecializationEnabled(false);
  ASSERT_TRUE(prog.MarshalRequest(args, &interp).ok());
  ASSERT_TRUE(
      RunSpecMarshal(plan.streams[kMReq], args, &fused, nullptr).ok());
  ExpectSameBytes(interp, fused, "sequence marshal request");

  Arena arena_a("interp");
  Arena arena_b("fused");
  ArgVec out_a(prog.slot_count());
  ArgVec out_b(prog.slot_count());
  XdrReader ra(interp.span());
  XdrReader rb(fused.span());
  ASSERT_TRUE(prog.UnmarshalRequest(&ra, &arena_a, &out_a, nullptr,
                                    /*borrow_bytes=*/false)
                  .ok());
  ASSERT_TRUE(RunSpecUnmarshal(plan.streams[kUReq], &rb, &arena_b, &out_b,
                               nullptr, /*borrow_bytes=*/false)
                  .ok());
  int slot = prog.SlotOf("data");
  ASSERT_EQ(out_a[slot].length, out_b[slot].length);
  EXPECT_EQ(std::memcmp(out_a[slot].ptr(), out_b[slot].ptr(),
                        out_a[slot].length),
            0);
  EXPECT_EQ(out_a[slot].borrowed, out_b[slot].borrowed);
  EXPECT_EQ(arena_a.live_blocks(), arena_b.live_blocks());
}

TEST(SpecExecutorTest, SequenceBorrowPolicyMatches) {
  SpecSwitchGuard guard;
  Compiled c = Compile(kFileIoIdl, false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[1];  // write
  const OpPresentation& pres = *c.server.Find("FileIO")->FindOp("write");
  MarshalProgram prog = MarshalProgram::Build(op, pres);
  SpecPlan plan = CompileSpecPlan(op, pres);
  ASSERT_TRUE(plan.has_stream[kUReq]) << plan.rejection[kUReq];

  ArgVec src(prog.slot_count());
  uint8_t data[64];
  std::memset(data, 0xAB, sizeof(data));
  src[prog.SlotOf("data")].set_ptr(data);
  src[prog.SlotOf("data")].length = sizeof(data);
  XdrWriter wire;
  SetMarshalSpecializationEnabled(false);
  ASSERT_TRUE(prog.MarshalRequest(src, &wire).ok());

  // Server-side borrow: both paths must alias the message buffer rather
  // than copy, and flag the slot as borrowed.
  Arena arena_a("interp");
  Arena arena_b("fused");
  ArgVec out_a(prog.slot_count());
  ArgVec out_b(prog.slot_count());
  XdrReader ra(wire.span());
  XdrReader rb(wire.span());
  ASSERT_TRUE(prog.UnmarshalRequest(&ra, &arena_a, &out_a, nullptr,
                                    /*borrow_bytes=*/true)
                  .ok());
  ASSERT_TRUE(RunSpecUnmarshal(plan.streams[kUReq], &rb, &arena_b, &out_b,
                               nullptr, /*borrow_bytes=*/true)
                  .ok());
  int slot = prog.SlotOf("data");
  EXPECT_TRUE(out_a[slot].borrowed);
  EXPECT_TRUE(out_b[slot].borrowed);
  EXPECT_EQ(arena_a.live_blocks(), 0u);
  EXPECT_EQ(arena_b.live_blocks(), 0u);
  ASSERT_EQ(out_a[slot].length, out_b[slot].length);
  EXPECT_EQ(std::memcmp(out_a[slot].ptr(), out_b[slot].ptr(),
                        out_a[slot].length),
            0);
}

TEST(SpecExecutorTest, ScalarWidthsMarshalIdentically) {
  SpecSwitchGuard guard;
  Compiled c = Compile(R"(
    interface Calc {
      void mix(in octet a, in short b, in unsigned long d,
               in long long e, in boolean f);
    };
  )",
                       false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  const OpPresentation& pres = *c.client.Find("Calc")->FindOp("mix");
  MarshalProgram prog = MarshalProgram::Build(op, pres);
  SpecPlan plan = CompileSpecPlan(op, pres);
  ASSERT_TRUE(plan.has_stream[kMReq]) << plan.rejection[kMReq];

  ArgVec args(prog.slot_count());
  args[prog.SlotOf("a")].scalar = 0xC3;
  args[prog.SlotOf("b")].scalar = 0x1234;
  args[prog.SlotOf("d")].scalar = 0xDEADBEEF;
  args[prog.SlotOf("e")].scalar = 0x0123456789ABCDEFull;
  args[prog.SlotOf("f")].scalar = 1;
  XdrWriter interp;
  XdrWriter fused;
  SetMarshalSpecializationEnabled(false);
  ASSERT_TRUE(prog.MarshalRequest(args, &interp).ok());
  ASSERT_TRUE(
      RunSpecMarshal(plan.streams[kMReq], args, &fused, nullptr).ok());
  ExpectSameBytes(interp, fused, "mixed scalar widths");

  ArgVec out_a(prog.slot_count());
  ArgVec out_b(prog.slot_count());
  Arena arena("scalars");
  XdrReader ra(interp.span());
  XdrReader rb(fused.span());
  ASSERT_TRUE(prog.UnmarshalRequest(&ra, &arena, &out_a).ok());
  ASSERT_TRUE(RunSpecUnmarshal(plan.streams[kUReq], &rb, &arena, &out_b,
                               nullptr, /*borrow_bytes=*/false)
                  .ok());
  for (const char* name : {"a", "b", "d", "e", "f"}) {
    int slot = prog.SlotOf(name);
    EXPECT_EQ(out_a[slot].scalar, out_b[slot].scalar) << name;
  }
}

TEST(SpecExecutorTest, BoundedSequenceRejectsOverrunExactly) {
  SpecSwitchGuard guard;
  Compiled c = Compile(R"(
    interface Cap {
      void put(in sequence<octet, 16> data);
    };
  )",
                       false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  const OpPresentation& pres = *c.client.Find("Cap")->FindOp("put");
  MarshalProgram prog = MarshalProgram::Build(op, pres);
  SpecPlan plan = CompileSpecPlan(op, pres);
  ASSERT_TRUE(plan.has_stream[kMReq]) << plan.rejection[kMReq];

  uint8_t data[32] = {};
  ArgVec args(prog.slot_count());
  args[prog.SlotOf("data")].set_ptr(data);
  args[prog.SlotOf("data")].length = 32;  // over the declared bound
  XdrWriter interp;
  XdrWriter fused;
  SetMarshalSpecializationEnabled(false);
  Status a = prog.MarshalRequest(args, &interp);
  Status b = RunSpecMarshal(plan.streams[kMReq], args, &fused, nullptr);
  EXPECT_EQ(a.code(), StatusCode::kInvalidArgument) << a.ToString();
  EXPECT_EQ(b.code(), StatusCode::kInvalidArgument) << b.ToString();
  EXPECT_EQ(a.message(), b.message());
}

// The full NFS pair (the texts the build's generated unit specializes):
// flattened [special] client presentation, union-discriminated reply.
class NfsSpecPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    c_ = Compile(NfsIdlText(), true, NfsClientPdlText(), "");
    op_ = &c_.idl->interfaces[0].ops[0];
    pres_ = c_.client.Find("NFS_VERSION")->FindOp("NFSPROC_READ");
    ASSERT_NE(pres_, nullptr);
    prog_ = std::make_unique<MarshalProgram>(
        MarshalProgram::Build(*op_, *pres_));
    plan_ = CompileSpecPlan(*op_, *pres_);
  }

  Compiled c_;
  const OperationDecl* op_ = nullptr;
  const OpPresentation* pres_ = nullptr;
  std::unique_ptr<MarshalProgram> prog_;
  SpecPlan plan_;
};

TEST_F(NfsSpecPlanTest, FlattenedRequestMarshalsIdentically) {
  SpecSwitchGuard guard;
  ASSERT_TRUE(plan_.has_stream[kMReq]) << plan_.rejection[kMReq];
  uint8_t fh[kNfsFhSize];
  std::memset(fh, 0x3C, sizeof(fh));
  ArgVec args(prog_->slot_count());
  args[prog_->SlotOf("file")].set_ptr(fh);
  args[prog_->SlotOf("offset")].scalar = 4096;
  args[prog_->SlotOf("count")].scalar = 512;
  args[prog_->SlotOf("totalcount")].scalar = 512;
  XdrWriter interp;
  XdrWriter fused;
  SetMarshalSpecializationEnabled(false);
  ASSERT_TRUE(prog_->MarshalRequest(args, &interp).ok());
  ASSERT_TRUE(
      RunSpecMarshal(plan_.streams[kMReq], args, &fused, nullptr).ok());
  ExpectSameBytes(interp, fused, "NFS flattened request");
}

TEST_F(NfsSpecPlanTest, UnionReplyDecodesIdentically) {
  SpecSwitchGuard guard;
  ASSERT_TRUE(plan_.has_stream[kURep]) << plan_.rejection[kURep];

  // Hand-encoded NFS_OK reply: disc + 14-field fattr + 512-byte payload.
  XdrWriter reply;
  reply.PutU32(0);  // NFS_OK
  for (uint32_t i = 0; i < 14; ++i) {
    reply.PutU32(i * 3 + 1);
  }
  uint8_t payload[512];
  for (size_t i = 0; i < sizeof(payload); ++i) {
    payload[i] = static_cast<uint8_t>(i ^ 0x5A);
  }
  reply.PutU32(sizeof(payload));
  reply.PutBytes(payload, sizeof(payload));

  auto decode = [&](bool use_executor, uint8_t* dest, uint8_t* attrs,
                    uint64_t* status, uint32_t* len) {
    Arena arena("nfs");
    ArgVec args(prog_->slot_count());
    int data_slot = prog_->SlotOf("data");
    args[data_slot].set_ptr(dest);
    args[data_slot].capacity = sizeof(payload);
    args[prog_->SlotOf("attributes")].set_ptr(attrs);
    XdrReader r(reply.span());
    Status st =
        use_executor
            ? RunSpecUnmarshal(plan_.streams[kURep], &r, &arena, &args,
                               nullptr, /*borrow_bytes=*/false)
            : prog_->UnmarshalReply(&r, &arena, &args);
    ASSERT_TRUE(st.ok()) << st.ToString();
    *status = args[prog_->SlotOf("status")].scalar;
    *len = args[data_slot].length;
  };

  uint8_t dest_a[512] = {};
  uint8_t dest_b[512] = {};
  uint8_t attrs_a[14 * 4] = {};
  uint8_t attrs_b[14 * 4] = {};
  uint64_t status_a = 99;
  uint64_t status_b = 99;
  uint32_t len_a = 0;
  uint32_t len_b = 0;
  SetMarshalSpecializationEnabled(false);
  decode(false, dest_a, attrs_a, &status_a, &len_a);
  decode(true, dest_b, attrs_b, &status_b, &len_b);
  EXPECT_EQ(status_a, 0u);
  EXPECT_EQ(status_b, 0u);
  EXPECT_EQ(len_a, len_b);
  EXPECT_EQ(std::memcmp(dest_a, dest_b, sizeof(dest_a)), 0);
  EXPECT_EQ(std::memcmp(dest_a, payload, sizeof(payload)), 0);
  EXPECT_EQ(std::memcmp(attrs_a, attrs_b, sizeof(attrs_a)), 0);
}

TEST_F(NfsSpecPlanTest, ErrorArmEndsStreamOnBothPaths) {
  SpecSwitchGuard guard;
  ASSERT_TRUE(plan_.has_stream[kURep]) << plan_.rejection[kURep];
  XdrWriter reply;
  reply.PutU32(5);  // NFSERR_IO: default arm is void, stream ends

  for (bool use_executor : {false, true}) {
    Arena arena("nfs");
    ArgVec args(prog_->slot_count());
    uint8_t dest[16] = {};
    uint8_t attrs[14 * 4] = {};
    int data_slot = prog_->SlotOf("data");
    args[data_slot].set_ptr(dest);
    args[data_slot].capacity = sizeof(dest);
    args[prog_->SlotOf("attributes")].set_ptr(attrs);
    XdrReader r(reply.span());
    SetMarshalSpecializationEnabled(false);
    Status st =
        use_executor
            ? RunSpecUnmarshal(plan_.streams[kURep], &r, &arena, &args,
                               nullptr, /*borrow_bytes=*/false)
            : prog_->UnmarshalReply(&r, &arena, &args);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(args[prog_->SlotOf("status")].scalar, 5u);
    EXPECT_EQ(args[data_slot].length, 0u);
  }
}

TEST_F(NfsSpecPlanTest, SpecialRoutineReceivesTheBytes) {
  SpecSwitchGuard guard;
  ASSERT_TRUE(plan_.has_stream[kURep]) << plan_.rejection[kURep];
  XdrWriter reply;
  reply.PutU32(0);
  for (uint32_t i = 0; i < 14; ++i) {
    reply.PutU32(7);
  }
  uint8_t payload[64];
  std::memset(payload, 0x42, sizeof(payload));
  reply.PutU32(sizeof(payload));
  reply.PutBytes(payload, sizeof(payload));

  // Both paths must route the [special] data run through copy_in — the
  // simulated kernel copyout — rather than a plain memcpy.
  for (bool use_executor : {false, true}) {
    int special_calls = 0;
    SpecialOps special;
    special.copy_in = [&special_calls](void* dst, const uint8_t* src,
                                       size_t n) {
      ++special_calls;
      std::memcpy(dst, src, n);
    };
    Arena arena("nfs");
    ArgVec args(prog_->slot_count());
    uint8_t dest[64] = {};
    uint8_t attrs[14 * 4] = {};
    int data_slot = prog_->SlotOf("data");
    args[data_slot].set_ptr(dest);
    args[data_slot].capacity = sizeof(dest);
    args[prog_->SlotOf("attributes")].set_ptr(attrs);
    XdrReader r(reply.span());
    SetMarshalSpecializationEnabled(false);
    Status st =
        use_executor
            ? RunSpecUnmarshal(plan_.streams[kURep], &r, &arena, &args,
                               &special, /*borrow_bytes=*/false)
            : prog_->UnmarshalReply(&r, &arena, &args, &special);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(special_calls, 1) << "executor=" << use_executor;
    EXPECT_EQ(dest[10], 0x42);
  }
}

// --- the prover sweep over every seed signature family ----------------------

TEST(SpecVerifierSweepTest, AllSeedPlansProveEquivalent) {
  struct Fixture {
    const char* name;
    const char* idl;
    bool sunrpc;
    const char* client_pdl;
    const char* server_pdl;
  };
  const Fixture kFixtures[] = {
      {"syslog-default", kSysLogIdl, false, "", ""},
      {"syslog-length_is", kSysLogIdl, false,
       "SysLog_write_msg(,, char *[length_is(length)] msg, int length);",
       ""},
      {"fileio-default", kFileIoIdl, false, "", ""},
      {"fileio-alloc-user", kFileIoIdl, false, "FileIO_read()[alloc(user)];",
       ""},
      {"fileio-special", kFileIoIdl, false,
       "FileIO_write(char *[special] data);", ""},
      {"fileio-dealloc-never", kFileIoIdl, false, "",
       "FileIO_read()[dealloc(never)];"},
      {"nfs-figure1", nullptr, true, nullptr, ""},
  };
  for (const Fixture& fx : kFixtures) {
    Compiled c = Compile(fx.idl != nullptr ? fx.idl : NfsIdlText(),
                         fx.sunrpc,
                         fx.client_pdl != nullptr ? fx.client_pdl
                                                  : NfsClientPdlText(),
                         fx.server_pdl);
    for (const PresentationSet* set : {&c.client, &c.server}) {
      for (const InterfaceDecl& itf : c.idl->interfaces) {
        for (const OperationDecl& op : itf.ops) {
          const OpPresentation* pres = set->Find(itf.name)->FindOp(op.name);
          ASSERT_NE(pres, nullptr) << fx.name << " " << op.name;
          SpecPlan plan = CompileSpecPlan(op, *pres);
          DiagnosticSink diags;
          EXPECT_EQ(VerifySpecPlan(op, *pres, plan, "sweep", &diags), 0)
              << fx.name << " " << op.name << ": " << diags.ToString();
        }
      }
    }
  }
}

// --- registry + engine dispatch ---------------------------------------------

// SpecFns are plain function pointers, so the executor-backed fakes reach
// their SpecPlan through file scope.
SpecPlan* g_dispatch_plan = nullptr;

Status DispatchMarshalRequest(const ArgVec& args, WireWriter* w,
                              const SpecialOps* special) {
  return RunSpecMarshal(g_dispatch_plan->streams[kMReq], args, w, special);
}

TEST(SpecRegistryTest, FirstRegistrationWinsAndUnregisterRemoves) {
  SpecKey key{0xFEEDFACEDEADBEEFull, 0x1111222233334444ull};
  ASSERT_EQ(FindSpecialization(key), nullptr);
  SpecFns first;
  first.marshal_request = &DispatchMarshalRequest;
  SpecFns second;  // all-null table, distinguishable from `first`
  EXPECT_TRUE(RegisterSpecialization(key, first));
  EXPECT_FALSE(RegisterSpecialization(key, second));
  const SpecFns* found = FindSpecialization(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->marshal_request, &DispatchMarshalRequest);
  UnregisterSpecialization(key);
  EXPECT_EQ(FindSpecialization(key), nullptr);
}

TEST(SpecDispatchTest, EngineDispatchesRegisteredFnAndCountsHitMiss) {
  SpecSwitchGuard guard;
  Compiled c = Compile(kSysLogIdl, false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  const OpPresentation& pres =
      *c.client.Find("SysLog")->FindOp("write_msg");

  static SpecPlan plan;  // outlives the trampoline calls
  plan = CompileSpecPlan(op, pres);
  ASSERT_TRUE(plan.has_stream[kMReq]);
  g_dispatch_plan = &plan;
  SpecFns fns;
  fns.marshal_request = &DispatchMarshalRequest;
  ASSERT_TRUE(RegisterSpecialization(plan.key, fns));

  // Bind after registration: the engine snapshots the table at Build.
  MarshalProgram prog = MarshalProgram::Build(op, pres);
  ArgVec args(prog.slot_count());
  args[prog.SlotOf("msg")].set_ptr("dispatch me");

  SetMarshalSpecializationEnabled(true);
  XdrWriter fast;
  {
    TraceSession session;
    ASSERT_TRUE(prog.MarshalRequest(args, &fast).ok());
    TraceSnapshot report = session.Report();
    EXPECT_EQ(report.counter(TraceCounter::kMarshalSpecHits), 1u);
    EXPECT_EQ(report.counter(TraceCounter::kMarshalSpecMisses), 0u);
    // The dispatch-level byte accounting must credit the fused stream.
    EXPECT_GT(report.counter(TraceCounter::kMarshalBytesOut), 0u);
  }

  // Flipping the global switch falls back per call — no rebind needed —
  // and the interpreter produces the same bytes.
  SetMarshalSpecializationEnabled(false);
  XdrWriter slow;
  {
    TraceSession session;
    ASSERT_TRUE(prog.MarshalRequest(args, &slow).ok());
    TraceSnapshot report = session.Report();
    EXPECT_EQ(report.counter(TraceCounter::kMarshalSpecHits), 0u);
    EXPECT_EQ(report.counter(TraceCounter::kMarshalSpecMisses), 1u);
  }
  ExpectSameBytes(fast, slow, "dispatch vs interpreter");

  UnregisterSpecialization(plan.key);
  g_dispatch_plan = nullptr;
}

TEST(SpecDispatchTest, UnregisteredKeyAlwaysMisses) {
  SpecSwitchGuard guard;
  SetMarshalSpecializationEnabled(true);
  Compiled c = Compile(kFileIoIdl, false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[1];
  MarshalProgram prog =
      MarshalProgram::Build(op, *c.client.Find("FileIO")->FindOp("write"));
  uint8_t data[8] = {};
  ArgVec args(prog.slot_count());
  args[prog.SlotOf("data")].set_ptr(data);
  args[prog.SlotOf("data")].length = sizeof(data);
  XdrWriter w;
  TraceSession session;
  ASSERT_TRUE(prog.MarshalRequest(args, &w).ok());
  EXPECT_EQ(session.Report().counter(TraceCounter::kMarshalSpecHits), 0u);
  EXPECT_GE(session.Report().counter(TraceCounter::kMarshalSpecMisses), 1u);
}

// --- profile reader ---------------------------------------------------------

constexpr char kBenchArtifact[] = R"({
  "schema": "flexrpc-bench-v1",
  "marshal_profile": [
    {"op_hash": "00000000000000aa", "pres_hash": "00000000000000bb",
     "op": "hot_op", "marshal_calls": 100, "unmarshal_calls": 50,
     "wire_bytes": 5000},
    {"op_hash": "00000000000000cc", "pres_hash": "00000000000000dd",
     "op": "cold_op", "marshal_calls": 1, "unmarshal_calls": 0,
     "wire_bytes": 16},
    {"op_hash": "00000000000000ee", "pres_hash": "00000000000000ff",
     "op": "dead_op", "marshal_calls": 0, "unmarshal_calls": 0,
     "wire_bytes": 0}
  ]
})";

constexpr char kRecArtifact[] = R"({
  "schema": "flexrpc-rec-v1",
  "capacity": 16, "total_events": 2, "dropped_events": 0,
  "events": [
    {"type": "marshal_begin", "ep": "client", "xid": 1, "vt": 0,
     "a": 0, "b": 0},
    {"type": "marshal_end", "ep": "client", "xid": 1, "vt": 5,
     "a": 0, "b": 0}
  ]
})";

TEST(FlexspecProfileTest, MergesAndRanksBenchArtifacts) {
  MarshalProfile profile;
  ASSERT_TRUE(MergeProfileArtifact(kBenchArtifact, &profile).ok());
  ASSERT_TRUE(MergeProfileArtifact(kBenchArtifact, &profile).ok());
  FinalizeProfile(&profile);
  ASSERT_EQ(profile.plans.size(), 3u);
  EXPECT_EQ(profile.plans[0].op_name, "hot_op");
  EXPECT_EQ(profile.plans[0].marshal_calls, 200u);  // merged twice
  EXPECT_EQ(profile.plans[0].Score(), 300u);

  // Zero-score keys never make the cut, however large K is.
  std::vector<SpecKey> top = profile.TopKeys(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].op_hash, 0xAAu);
  EXPECT_EQ(top[1].op_hash, 0xCCu);
  top = profile.TopKeys(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].op_hash, 0xAAu);

  const ProfiledPlan* hot = profile.Find(SpecKey{0xAA, 0xBB});
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->wire_bytes, 10000u);
}

TEST(FlexspecProfileTest, RecordingsLandInUnattributedBucket) {
  MarshalProfile profile;
  ASSERT_TRUE(MergeProfileArtifact(kRecArtifact, &profile).ok());
  EXPECT_EQ(profile.plans.size(), 0u);
  EXPECT_EQ(profile.unattributed_recording_spans, 1u);
}

TEST(FlexspecProfileTest, RejectsUnknownSchemaAndMissingPath) {
  MarshalProfile profile;
  EXPECT_FALSE(
      MergeProfileArtifact(R"({"schema": "not-a-profile"})", &profile)
          .ok());
  EXPECT_EQ(LoadProfilePath("/nonexistent/profile.json", &profile).code(),
            StatusCode::kNotFound);
}

TEST(FlexspecProfileTest, LoadsDirectoryOfArtifacts) {
  std::string dir = ::testing::TempDir() + "/flexspec_profile_dir";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  std::ofstream(dir + "/BENCH_fake.json") << kBenchArtifact;
  std::ofstream(dir + "/REC_fake.json") << kRecArtifact;
  std::ofstream(dir + "/README.txt") << "not an artifact";
  MarshalProfile profile;
  ASSERT_TRUE(LoadProfilePath(dir, &profile).ok());
  FinalizeProfile(&profile);
  EXPECT_EQ(profile.artifacts_read, 2u);
  EXPECT_EQ(profile.plans.size(), 3u);
  EXPECT_EQ(profile.unattributed_recording_spans, 1u);
}

// --- the --specialize emitter -----------------------------------------------

TEST(SpecGenTest, EmitsRegistrarForSupportedPlans) {
  Compiled c = Compile(kSysLogIdl, false, "", "");
  SpecGenOptions options;
  options.ns = "spec_test";
  options.header_name = "t.flexspec.h";
  DiagnosticSink diags;
  SpecGenStats stats;
  auto generated = GenerateSpecializations(*c.idl, c.client, c.server,
                                           options, "t.idl", &diags, &stats);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_GE(stats.plans_emitted, 1u);
  EXPECT_GE(stats.streams_emitted, 2u);
  EXPECT_NE(generated->header.find("RegisterSpecializations"),
            std::string::npos);
  EXPECT_NE(generated->source.find("RegisterSpecialization("),
            std::string::npos);
  EXPECT_NE(generated->source.find("namespace spec_test"),
            std::string::npos);
  // The registered key must be the one the engine computes at bind time.
  SpecKey key = ComputeSpecKey(c.idl->interfaces[0].ops[0],
                               *c.client.Find("SysLog")->FindOp("write_msg"));
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(key.op_hash));
  EXPECT_NE(generated->source.find(hex), std::string::npos);
}

TEST(SpecGenTest, CorruptedStreamBlocksEmission) {
  // The acceptance gate: a deliberately broken specialization (one opcode
  // dropped) must trip the stage-3 prover and block the whole unit.
  Compiled c = Compile(kSysLogIdl, false, "", "");
  SpecGenOptions options;
  options.mutate_for_test = [](SpecPlan* plan) {
    for (size_t s = 0; s < kSpecStreamCount; ++s) {
      if (plan->has_stream[s] && !plan->streams[s].ops.empty()) {
        plan->streams[s].ops.pop_back();
        return;
      }
    }
  };
  DiagnosticSink diags;
  SpecGenStats stats;
  auto generated = GenerateSpecializations(*c.idl, c.client, c.server,
                                           options, "t.idl", &diags, &stats);
  EXPECT_FALSE(generated.ok());
  EXPECT_GE(diags.CountCode("FLEX201"), 1) << diags.ToString();
}

TEST(SpecGenTest, ProfileKeepsOnlyTopKeys) {
  Compiled c = Compile(kFileIoIdl, false, "", "");
  // A profile that saw only the client write plan.
  MarshalProfile profile;
  ProfiledPlan hot;
  hot.key = ComputeSpecKey(c.idl->interfaces[0].ops[1],
                           *c.client.Find("FileIO")->FindOp("write"));
  hot.op_name = "write";
  hot.marshal_calls = 1000;
  profile.plans.push_back(hot);
  FinalizeProfile(&profile);

  SpecGenOptions options;
  options.profile = &profile;
  options.top_k = 1;
  DiagnosticSink diags;
  SpecGenStats stats;
  auto generated = GenerateSpecializations(*c.idl, c.client, c.server,
                                           options, "t.idl", &diags, &stats);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_EQ(stats.plans_emitted, 1u);
  EXPECT_GE(stats.plans_skipped_cold, 1u);
}

// --- NFS end to end: the build-time generated unit --------------------------

TEST(NfsSpecE2ETest, GeneratedUnitIsRegisteredAndHit) {
  SpecSwitchGuard guard;
  SetMarshalSpecializationEnabled(true);
  NfsFileServer server(/*file_size=*/64u << 10, /*seed=*/1995);
  NfsClient client(&server, LinkModel(), RemoteServerModel());

  // The ctor's RegisterSpecializations() installed the idlc-generated
  // functions; a small-chunk read must hit them on every call.
  TraceSession session;
  auto stats =
      client.ReadFile(NfsClient::StubKind::kGeneratedUserBuffer, 512);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->bytes_read, 64u << 10);
  EXPECT_GT(session.Report().counter(TraceCounter::kMarshalSpecHits), 0u);
}

TEST(NfsSpecE2ETest, SpecializedAndInterpretedReadsDeliverSameBytes) {
  // ReadFile verifies every delivered byte against the server's content,
  // so a pass on both settings is a byte-identity proof end to end.
  SpecSwitchGuard guard;
  NfsFileServer server(/*file_size=*/32u << 10, /*seed=*/7);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  SetMarshalSpecializationEnabled(true);
  auto fast = client.ReadFile(NfsClient::StubKind::kGeneratedUserBuffer,
                              512);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  SetMarshalSpecializationEnabled(false);
  auto slow = client.ReadFile(NfsClient::StubKind::kGeneratedUserBuffer,
                              512);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_EQ(fast->bytes_read, slow->bytes_read);
  EXPECT_EQ(fast->rpc_calls, slow->rpc_calls);
}

TEST(NfsSpecE2ETest, RequestWireBytesIdenticalAcrossDispatch) {
  SpecSwitchGuard guard;
  NfsFileServer server(/*file_size=*/4096, /*seed=*/1);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  uint8_t fh[kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));
  uint8_t dest[512];
  NfsClient::ChunkArgs chunk{fh, /*offset=*/0, /*count=*/512, dest};
  for (NfsClient::StubKind kind :
       {NfsClient::StubKind::kGeneratedConventional,
        NfsClient::StubKind::kGeneratedUserBuffer}) {
    XdrWriter fast;
    XdrWriter slow;
    SetMarshalSpecializationEnabled(true);
    ASSERT_TRUE(client.EncodeRequest(kind, chunk, &fast).ok());
    SetMarshalSpecializationEnabled(false);
    ASSERT_TRUE(client.EncodeRequest(kind, chunk, &slow).ok());
    ExpectSameBytes(fast, slow, "NFS request across dispatch");
  }
}

// --- drift guards: examples/idl inputs vs the embedded texts ----------------

#ifdef FLEXRPC_SOURCE_DIR

std::string ReadSourceFile(const std::string& relative) {
  std::ifstream in(std::string(FLEXRPC_SOURCE_DIR) + "/" + relative);
  EXPECT_TRUE(in.good()) << relative;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Collapses all whitespace runs to single spaces: the checked-in files and
// the embedded raw strings differ only in indentation.
std::string NormalizeWs(std::string_view text) {
  std::string out;
  bool in_ws = true;  // swallows leading whitespace
  for (char ch : text) {
    if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
      if (!in_ws) {
        out.push_back(' ');
      }
      in_ws = true;
    } else {
      out.push_back(ch);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') {
    out.pop_back();
  }
  return out;
}

// The build generates nfs.flexspec.cc from examples/idl/nfs.x + the PDL
// file, while NfsClient builds its programs from the embedded texts. The
// registry lookup only connects them while both pairs stay structurally
// identical — so drift must fail loudly here, not as a silent spec miss.
TEST(NfsSpecDriftTest, ExamplesMatchEmbeddedTexts) {
  EXPECT_EQ(NormalizeWs(ReadSourceFile("examples/idl/nfs.x")),
            NormalizeWs(NfsIdlText()));
  EXPECT_EQ(NormalizeWs(ReadSourceFile("examples/idl/nfs_client.pdl")),
            NormalizeWs(NfsClientPdlText()));
}

TEST(NfsSpecDriftTest, ExamplesProduceTheEmbeddedSpecKey) {
  Compiled from_files = Compile(ReadSourceFile("examples/idl/nfs.x"), true,
                                ReadSourceFile("examples/idl/nfs_client.pdl"),
                                "");
  Compiled embedded = Compile(NfsIdlText(), true, NfsClientPdlText(), "");
  SpecKey file_key = ComputeSpecKey(
      from_files.idl->interfaces[0].ops[0],
      *from_files.client.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
  SpecKey embedded_key = ComputeSpecKey(
      embedded.idl->interfaces[0].ops[0],
      *embedded.client.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
  EXPECT_EQ(file_key, embedded_key)
      << "generated specializations would never be dispatched";
}

#endif  // FLEXRPC_SOURCE_DIR

}  // namespace
}  // namespace flexrpc
