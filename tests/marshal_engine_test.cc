// Tests for the presentation-aware marshal engine: cross-presentation
// interoperability (the paper's core claim), [special] routines, explicit
// lengths, allocation policies, and dealloc behavior.

#include <gtest/gtest.h>

#include <cstring>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"
#include "src/marshal/engine.h"
#include "src/marshal/layout.h"
#include "src/marshal/native.h"
#include "src/marshal/xdr.h"
#include "src/pdl/apply.h"

namespace flexrpc {
namespace {

struct Compiled {
  std::unique_ptr<InterfaceFile> idl;
  PresentationSet client;
  PresentationSet server;
};

Compiled Compile(std::string_view idl_src, bool sunrpc,
                 std::string_view client_pdl, std::string_view server_pdl) {
  Compiled c;
  DiagnosticSink diags;
  c.idl = sunrpc ? ParseSunRpc(idl_src, "t.x", &diags)
                 : ParseCorbaIdl(idl_src, "t.idl", &diags);
  EXPECT_NE(c.idl, nullptr) << diags.ToString();
  EXPECT_TRUE(AnalyzeInterfaceFile(c.idl.get(), &diags)) << diags.ToString();
  if (client_pdl.empty()) {
    EXPECT_TRUE(ApplyPdl(*c.idl, Side::kClient, nullptr, &c.client, &diags))
        << diags.ToString();
  } else {
    EXPECT_TRUE(ApplyPdlText(*c.idl, Side::kClient, client_pdl, "c.pdl",
                             &c.client, &diags))
        << diags.ToString();
  }
  if (server_pdl.empty()) {
    EXPECT_TRUE(ApplyPdl(*c.idl, Side::kServer, nullptr, &c.server, &diags))
        << diags.ToString();
  } else {
    EXPECT_TRUE(ApplyPdlText(*c.idl, Side::kServer, server_pdl, "s.pdl",
                             &c.server, &diags))
        << diags.ToString();
  }
  return c;
}

constexpr char kSysLogIdl[] = R"(
  interface SysLog {
    void write_msg(in string msg);
  };
)";

// The paper's §1 point: a client using the explicit-length presentation
// interoperates with a server using the default NUL-terminated one, because
// the wire bytes are identical.
TEST(EngineTest, AlternatePresentationInteroperates) {
  Compiled c = Compile(
      kSysLogIdl, false,
      "SysLog_write_msg(,, char *[length_is(length)] msg, int length);",
      /*server_pdl=*/"");
  const InterfaceDecl& itf = c.idl->interfaces[0];
  const OperationDecl& op = itf.ops[0];

  MarshalProgram client_prog = MarshalProgram::Build(
      op, *c.client.Find("SysLog")->FindOp("write_msg"));
  MarshalProgram server_prog = MarshalProgram::Build(
      op, *c.server.Find("SysLog")->FindOp("write_msg"));

  // Client passes an unterminated buffer + explicit length.
  const char buffer[] = {'h', 'e', 'l', 'l', 'o', '!', '!', '!'};
  ArgVec client_args(client_prog.slot_count());
  int msg_slot = client_prog.SlotOf("msg");
  int len_slot = client_prog.SlotOf("length");
  ASSERT_GE(msg_slot, 0);
  ASSERT_GE(len_slot, 0);
  client_args[msg_slot].set_ptr(buffer);
  client_args[len_slot].scalar = 5;  // only "hello"

  XdrWriter wire;
  ASSERT_TRUE(client_prog.MarshalRequest(client_args, &wire).ok());

  // Server (default presentation) sees a NUL-terminated string.
  Arena server_arena("server");
  ArgVec server_args(server_prog.slot_count());
  XdrReader reader(wire.span());
  ASSERT_TRUE(
      server_prog.UnmarshalRequest(&reader, &server_arena, &server_args)
          .ok());
  int s_msg = server_prog.SlotOf("msg");
  EXPECT_STREQ(static_cast<const char*>(server_args[s_msg].ptr()), "hello");

  server_prog.ReleaseRequest(&server_arena, &server_args);
  EXPECT_EQ(server_arena.live_blocks(), 0u);
}

TEST(EngineTest, DefaultStringPresentationUsesStrlen) {
  Compiled c = Compile(kSysLogIdl, false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  MarshalProgram prog = MarshalProgram::Build(
      op, *c.client.Find("SysLog")->FindOp("write_msg"));
  ArgVec args(prog.slot_count());
  args[prog.SlotOf("msg")].set_ptr("four");
  XdrWriter wire;
  ASSERT_TRUE(prog.MarshalRequest(args, &wire).ok());
  XdrReader r(wire.span());
  EXPECT_EQ(r.GetU32().value(), 4u);
}

constexpr char kFileIoIdl[] = R"(
  interface FileIO {
    sequence<octet> read(in unsigned long count);
    void write(in sequence<octet> data);
  };
)";

TEST(EngineTest, ReadReplyRoundTripDefaultPresentation) {
  Compiled c = Compile(kFileIoIdl, false, "", "");
  const OperationDecl& read = c.idl->interfaces[0].ops[0];
  MarshalProgram server_prog =
      MarshalProgram::Build(read, *c.server.Find("FileIO")->FindOp("read"));
  MarshalProgram client_prog =
      MarshalProgram::Build(read, *c.client.Find("FileIO")->FindOp("read"));

  // Server work function "allocated" a buffer and returns it (move).
  Arena server_arena("server");
  void* payload = server_arena.AllocateBlock(1024);
  std::memset(payload, 0x5A, 1024);
  ArgVec server_args(server_prog.slot_count());
  server_args[server_prog.result_slot()].set_ptr(payload);
  server_args[server_prog.result_slot()].length = 1024;

  NativeWriter wire;
  ASSERT_TRUE(
      server_prog.MarshalReply(server_args, &wire, &server_arena).ok());
  // Default server presentation deallocates after marshal (move semantics).
  EXPECT_EQ(server_arena.live_blocks(), 0u);

  Arena client_arena("client");
  ArgVec client_args(client_prog.slot_count());
  NativeReader reader(wire.span());
  ASSERT_TRUE(
      client_prog.UnmarshalReply(&reader, &client_arena, &client_args).ok());
  const ArgValue& result = client_args[client_prog.result_slot()];
  EXPECT_EQ(result.length, 1024u);
  EXPECT_EQ(static_cast<const uint8_t*>(result.ptr())[512], 0x5A);
  // Client owns the returned buffer and must free it.
  EXPECT_EQ(client_arena.live_blocks(), 1u);
  client_prog.ReleaseReply(&client_arena, &client_args);
  EXPECT_EQ(client_arena.live_blocks(), 0u);
}

TEST(EngineTest, DeallocNeverLeavesServerBufferAlone) {
  // Paper Fig. 5: [dealloc(never)] lets the pipe server return a pointer
  // into its own circular buffer without the stub freeing it.
  Compiled c =
      Compile(kFileIoIdl, false, "", "FileIO_read()[dealloc(never)];");
  const OperationDecl& read = c.idl->interfaces[0].ops[0];
  MarshalProgram prog =
      MarshalProgram::Build(read, *c.server.Find("FileIO")->FindOp("read"));

  Arena arena("server");
  void* circular = arena.AllocateBlock(4096);
  std::memset(circular, 0x7E, 4096);
  ArgVec args(prog.slot_count());
  args[prog.result_slot()].set_ptr(static_cast<uint8_t*>(circular) + 100);
  args[prog.result_slot()].length = 256;

  NativeWriter wire;
  ASSERT_TRUE(prog.MarshalReply(args, &wire, &arena).ok());
  // The stub must NOT have freed anything: the buffer belongs to the app.
  EXPECT_EQ(arena.live_blocks(), 1u);
  NativeReader r(wire.span());
  EXPECT_EQ(r.GetU32().value(), 256u);
}

TEST(EngineTest, AllocUserUnmarshalsIntoCallerBuffer) {
  Compiled c =
      Compile(kFileIoIdl, false, "FileIO_read()[alloc(user)];", "");
  const OperationDecl& read = c.idl->interfaces[0].ops[0];
  MarshalProgram client_prog =
      MarshalProgram::Build(read, *c.client.Find("FileIO")->FindOp("read"));
  MarshalProgram server_prog =
      MarshalProgram::Build(read, *c.server.Find("FileIO")->FindOp("read"));

  Arena server_arena("server");
  void* payload = server_arena.AllocateBlock(64);
  std::memset(payload, 0x11, 64);
  ArgVec server_args(server_prog.slot_count());
  server_args[server_prog.result_slot()].set_ptr(payload);
  server_args[server_prog.result_slot()].length = 64;
  NativeWriter wire;
  ASSERT_TRUE(
      server_prog.MarshalReply(server_args, &wire, &server_arena).ok());

  // Client supplies its own buffer; the stub must not allocate.
  uint8_t my_buffer[128] = {};
  Arena client_arena("client");
  ArgVec client_args(client_prog.slot_count());
  client_args[client_prog.result_slot()].set_ptr(my_buffer);
  client_args[client_prog.result_slot()].capacity = sizeof(my_buffer);
  NativeReader reader(wire.span());
  ASSERT_TRUE(
      client_prog.UnmarshalReply(&reader, &client_arena, &client_args).ok());
  EXPECT_EQ(client_arena.live_blocks(), 0u);  // no stub allocation
  EXPECT_EQ(my_buffer[10], 0x11);
  EXPECT_EQ(client_args[client_prog.result_slot()].length, 64u);
}

TEST(EngineTest, AllocUserCapacityEnforced) {
  Compiled c =
      Compile(kFileIoIdl, false, "FileIO_read()[alloc(user)];", "");
  const OperationDecl& read = c.idl->interfaces[0].ops[0];
  MarshalProgram client_prog =
      MarshalProgram::Build(read, *c.client.Find("FileIO")->FindOp("read"));
  MarshalProgram server_prog =
      MarshalProgram::Build(read, *c.server.Find("FileIO")->FindOp("read"));

  Arena server_arena("server");
  void* payload = server_arena.AllocateBlock(64);
  ArgVec server_args(server_prog.slot_count());
  server_args[server_prog.result_slot()].set_ptr(payload);
  server_args[server_prog.result_slot()].length = 64;
  NativeWriter wire;
  ASSERT_TRUE(
      server_prog.MarshalReply(server_args, &wire, &server_arena).ok());

  uint8_t tiny[8];
  Arena client_arena("client");
  ArgVec client_args(client_prog.slot_count());
  client_args[client_prog.result_slot()].set_ptr(tiny);
  client_args[client_prog.result_slot()].capacity = sizeof(tiny);
  NativeReader reader(wire.span());
  Status st =
      client_prog.UnmarshalReply(&reader, &client_arena, &client_args);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(EngineTest, SpecialRoutinesInvokedForByteRuns) {
  // [special] on the write data: the client's copy_out routine must move
  // the bytes (the Linux memcpy_tofs/fromfs analogue).
  Compiled c = Compile(kFileIoIdl, false,
                       "FileIO_write(char *[special] data);", "");
  const OperationDecl& write = c.idl->interfaces[0].ops[1];
  MarshalProgram prog = MarshalProgram::Build(
      write, *c.client.Find("FileIO")->FindOp("write"));

  uint8_t data[32];
  std::memset(data, 0x42, sizeof(data));
  ArgVec args(prog.slot_count());
  args[prog.SlotOf("data")].set_ptr(data);
  args[prog.SlotOf("data")].length = sizeof(data);

  int calls = 0;
  SpecialOps special;
  special.copy_out = [&](uint8_t* dst, const void* src, size_t n) {
    ++calls;
    std::memcpy(dst, src, n);
  };
  NativeWriter wire;
  ASSERT_TRUE(prog.MarshalRequest(args, &wire, &special).ok());
  EXPECT_EQ(calls, 1);

  // And the bytes are on the wire exactly as a normal copy would put them.
  NativeReader r(wire.span());
  EXPECT_EQ(r.GetU32().value(), 32u);
  auto bytes = r.GetBytes(32);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ((*bytes)[0], 0x42);
}

TEST(EngineTest, SpecialUnmarshalDeliversToUserBuffer) {
  Compiled c = Compile(
      kFileIoIdl, false,
      "FileIO_read()[special, alloc(user)];", "");
  const OperationDecl& read = c.idl->interfaces[0].ops[0];
  MarshalProgram client_prog =
      MarshalProgram::Build(read, *c.client.Find("FileIO")->FindOp("read"));
  MarshalProgram server_prog =
      MarshalProgram::Build(read, *c.server.Find("FileIO")->FindOp("read"));

  Arena server_arena("server");
  void* payload = server_arena.AllocateBlock(16);
  std::memset(payload, 0x33, 16);
  ArgVec server_args(server_prog.slot_count());
  server_args[server_prog.result_slot()].set_ptr(payload);
  server_args[server_prog.result_slot()].length = 16;
  NativeWriter wire;
  ASSERT_TRUE(
      server_prog.MarshalReply(server_args, &wire, &server_arena).ok());

  uint8_t user_space[64] = {};
  int calls = 0;
  SpecialOps special;
  special.copy_in = [&](void* dst, const uint8_t* src, size_t n) {
    ++calls;
    std::memcpy(dst, src, n);  // stands in for copy_to_user
  };
  Arena client_arena("client");
  ArgVec client_args(client_prog.slot_count());
  client_args[client_prog.result_slot()].set_ptr(user_space);
  client_args[client_prog.result_slot()].capacity = sizeof(user_space);
  NativeReader reader(wire.span());
  ASSERT_TRUE(client_prog
                  .UnmarshalReply(&reader, &client_arena, &client_args,
                                  &special)
                  .ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(user_space[5], 0x33);
}

// --- Figure 1: flattened Sun RPC presentation interoperating with the
// default (struct-passing) presentation ---

constexpr char kNfsIdl[] = R"(
const NFS_MAXDATA = 8192;
const NFS_FHSIZE = 32;
enum nfsstat { NFS_OK = 0, NFSERR_IO = 5 };
struct nfs_fh { opaque data[NFS_FHSIZE]; };
struct fattr { unsigned size; unsigned mtime; };
struct readargs {
  nfs_fh file;
  unsigned offset;
  unsigned count;
  unsigned totalcount;
};
struct readokres { fattr attributes; opaque data<NFS_MAXDATA>; };
union readres switch (nfsstat status) {
  case NFS_OK: readokres reply;
  default: void;
};
program NFS_PROGRAM {
  version NFS_VERSION {
    readres NFSPROC_READ(readargs) = 6;
  } = 2;
} = 100003;
)";

constexpr char kNfsClientPdl[] = R"(
  [comm_status] int NFSPROC_READ(file, offset, count, totalcount,
      [special] data, attributes, status);
)";

TEST(EngineTest, FlattenedClientTalksToDefaultServer) {
  Compiled c = Compile(kNfsIdl, true, kNfsClientPdl, "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  MarshalProgram client_prog = MarshalProgram::Build(
      op, *c.client.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
  MarshalProgram server_prog = MarshalProgram::Build(
      op, *c.server.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));

  // Client passes the readargs fields as individual parameters.
  uint8_t fh[32];
  std::memset(fh, 0xF1, sizeof(fh));
  ArgVec client_args(client_prog.slot_count());
  client_args[client_prog.SlotOf("file")].set_ptr(fh);
  client_args[client_prog.SlotOf("offset")].scalar = 4096;
  client_args[client_prog.SlotOf("count")].scalar = 1024;
  client_args[client_prog.SlotOf("totalcount")].scalar = 1024;

  XdrWriter wire;
  ASSERT_TRUE(client_prog.MarshalRequest(client_args, &wire).ok());

  // Server with the default presentation sees one readargs struct.
  Arena server_arena("server");
  ArgVec server_args(server_prog.slot_count());
  XdrReader reader(wire.span());
  ASSERT_TRUE(
      server_prog.UnmarshalRequest(&reader, &server_arena, &server_args)
          .ok());
  int arg1 = server_prog.SlotOf("arg1");
  ASSERT_GE(arg1, 0);
  const auto* readargs = static_cast<const uint8_t*>(
      server_args[arg1].ptr());
  EXPECT_EQ(readargs[0], 0xF1);  // nfs_fh bytes at offset 0
  uint32_t offset_field;
  std::memcpy(&offset_field, readargs + 32, sizeof(offset_field));
  EXPECT_EQ(offset_field, 4096u);
}

TEST(EngineTest, FlattenedReplyDeliveredThroughOutParams) {
  Compiled c = Compile(kNfsIdl, true, kNfsClientPdl, "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  MarshalProgram client_prog = MarshalProgram::Build(
      op, *c.client.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
  MarshalProgram server_prog = MarshalProgram::Build(
      op, *c.server.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));

  // Server (default presentation) returns a readres union by value.
  const Type* readres = c.idl->types.FindNamed("readres");
  const Type* readokres = c.idl->types.FindNamed("readokres");
  Arena server_arena("server");
  auto* result = static_cast<uint8_t*>(
      server_arena.AllocateBlock(readres->NativeSize()));
  std::memset(result, 0, readres->NativeSize());
  // status = NFS_OK(0); payload readokres at its overlay offset.
  uint32_t ok = 0;
  std::memcpy(result, &ok, 4);
  size_t payload_off = 8;  // u32 disc aligned up to the union's 8-alignment
  uint8_t* okres = result + payload_off;
  uint32_t size_field = 777;
  std::memcpy(okres, &size_field, 4);  // fattr.size
  uint32_t mtime_field = 888;
  std::memcpy(okres + 4, &mtime_field, 4);  // fattr.mtime
  // readokres.data sequence.
  void* data = server_arena.AllocateBlock(100);
  std::memset(data, 0xD7, 100);
  SeqRep rep{100, 100, data};
  std::memcpy(okres + NativeFieldOffset(readokres, 1), &rep, sizeof(rep));

  ArgVec server_args(server_prog.slot_count());
  server_args[server_prog.result_slot()].set_ptr(result);

  XdrWriter wire;
  ASSERT_TRUE(
      server_prog.MarshalReply(server_args, &wire, &server_arena).ok());

  // Flattened client: data lands in the user buffer via the special
  // routine, attributes and status in their own slots.
  uint8_t user_buffer[8192];
  SpecialOps special;
  special.copy_in = [](void* dst, const uint8_t* src, size_t n) {
    std::memcpy(dst, src, n);
  };
  Arena client_arena("client");
  ArgVec client_args(client_prog.slot_count());
  int data_slot = client_prog.SlotOf("data");
  client_args[data_slot].set_ptr(user_buffer);
  client_args[data_slot].capacity = sizeof(user_buffer);
  // attributes: caller provides fattr storage (fixed-size out param).
  const Type* fattr = c.idl->types.FindNamed("fattr");
  auto* attr_storage = static_cast<uint8_t*>(
      client_arena.AllocateBlock(fattr->NativeSize()));
  client_args[client_prog.SlotOf("attributes")].set_ptr(attr_storage);

  XdrReader reader(wire.span());
  ASSERT_TRUE(client_prog
                  .UnmarshalReply(&reader, &client_arena, &client_args,
                                  &special)
                  .ok());
  EXPECT_EQ(client_args[client_prog.SlotOf("status")].scalar, 0u);
  EXPECT_EQ(client_args[data_slot].length, 100u);
  EXPECT_EQ(user_buffer[50], 0xD7);
  uint32_t got_size;
  std::memcpy(&got_size, attr_storage, 4);
  EXPECT_EQ(got_size, 777u);
}

TEST(EngineTest, FlattenedErrorReplyCarriesOnlyStatus) {
  Compiled c = Compile(kNfsIdl, true, kNfsClientPdl, kNfsClientPdl);
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  MarshalProgram client_prog = MarshalProgram::Build(
      op, *c.client.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));
  MarshalProgram server_prog = MarshalProgram::Build(
      op, *c.server.Find("NFS_VERSION")->FindOp("NFSPROC_READ"));

  // Flattened server reports NFSERR_IO: only the discriminant travels.
  Arena server_arena("server");
  ArgVec server_args(server_prog.slot_count());
  server_args[server_prog.SlotOf("status")].scalar = 5;  // NFSERR_IO

  XdrWriter wire;
  ASSERT_TRUE(
      server_prog.MarshalReply(server_args, &wire, &server_arena).ok());
  EXPECT_EQ(wire.size(), 4u);  // just the discriminant

  Arena client_arena("client");
  ArgVec client_args(client_prog.slot_count());
  XdrReader reader(wire.span());
  ASSERT_TRUE(
      client_prog.UnmarshalReply(&reader, &client_arena, &client_args).ok());
  EXPECT_EQ(client_args[client_prog.SlotOf("status")].scalar, 5u);
}

TEST(EngineTest, InOutParameterTravelsBothWays) {
  Compiled c = Compile(
      "interface Calc { void inc(inout long value); };", false, "", "");
  const OperationDecl& op = c.idl->interfaces[0].ops[0];
  MarshalProgram client_prog =
      MarshalProgram::Build(op, *c.client.Find("Calc")->FindOp("inc"));
  MarshalProgram server_prog =
      MarshalProgram::Build(op, *c.server.Find("Calc")->FindOp("inc"));

  ArgVec client_args(client_prog.slot_count());
  client_args[client_prog.SlotOf("value")].scalar = 41;
  NativeWriter req;
  ASSERT_TRUE(client_prog.MarshalRequest(client_args, &req).ok());

  Arena server_arena("server");
  ArgVec server_args(server_prog.slot_count());
  NativeReader rr(req.span());
  ASSERT_TRUE(
      server_prog.UnmarshalRequest(&rr, &server_arena, &server_args).ok());
  EXPECT_EQ(server_args[server_prog.SlotOf("value")].scalar, 41u);
  server_args[server_prog.SlotOf("value")].scalar = 42;

  NativeWriter rep;
  ASSERT_TRUE(server_prog.MarshalReply(server_args, &rep, &server_arena)
                  .ok());
  Arena client_arena("client");
  NativeReader rr2(rep.span());
  ASSERT_TRUE(
      client_prog.UnmarshalReply(&rr2, &client_arena, &client_args).ok());
  EXPECT_EQ(client_args[client_prog.SlotOf("value")].scalar, 42u);
}

TEST(EngineTest, TruncatedRequestRejected) {
  Compiled c = Compile(kFileIoIdl, false, "", "");
  const OperationDecl& write = c.idl->interfaces[0].ops[1];
  MarshalProgram prog = MarshalProgram::Build(
      write, *c.server.Find("FileIO")->FindOp("write"));
  // A request claiming 100 bytes but providing none.
  NativeWriter w;
  w.PutU32(100);
  Arena arena("server");
  ArgVec args(prog.slot_count());
  NativeReader r(w.span());
  EXPECT_EQ(prog.UnmarshalRequest(&r, &arena, &args).code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace flexrpc
