// Tests for default-presentation computation and PDL application/validation.

#include <gtest/gtest.h>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"
#include "src/pdl/apply.h"

namespace flexrpc {
namespace {

std::unique_ptr<InterfaceFile> MustParseCorba(std::string_view src) {
  DiagnosticSink diags;
  auto file = ParseCorbaIdl(src, "test.idl", &diags);
  EXPECT_NE(file, nullptr) << diags.ToString();
  EXPECT_TRUE(AnalyzeInterfaceFile(file.get(), &diags)) << diags.ToString();
  return file;
}

constexpr char kFileIoIdl[] = R"(
  interface FileIO {
    sequence<octet> read(in unsigned long count);
    void write(in sequence<octet> data);
  };
)";

constexpr char kSysLogIdl[] = R"(
  interface SysLog {
    void write_msg(in string msg);
  };
)";

TEST(DefaultPresentationTest, ClientSideFileIo) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  ASSERT_TRUE(ApplyPdl(*idl, Side::kClient, nullptr, &set, &diags))
      << diags.ToString();
  const InterfacePresentation* pres = set.Find("FileIO");
  ASSERT_NE(pres, nullptr);
  EXPECT_EQ(pres->trust, TrustLevel::kNone);

  const OpPresentation* read = pres->FindOp("read");
  ASSERT_NE(read, nullptr);
  // CORBA move semantics: the client consumes a system buffer.
  EXPECT_EQ(read->result.alloc, AllocPolicy::kStub);
  EXPECT_EQ(read->result.dealloc, DeallocPolicy::kDefault);
  EXPECT_EQ(read->result.binding.kind, BindingKind::kResult);

  const OpPresentation* write = pres->FindOp("write");
  const ParamPresentation* data = write->FindParam("data");
  ASSERT_NE(data, nullptr);
  EXPECT_FALSE(data->trashable);
  EXPECT_FALSE(data->preserved);
  EXPECT_EQ(data->binding.kind, BindingKind::kParam);
  EXPECT_EQ(data->binding.param_index, 0);
}

TEST(DefaultPresentationTest, ServerSideUsesMoveSemantics) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  ASSERT_TRUE(ApplyPdl(*idl, Side::kServer, nullptr, &set, &diags));
  const OpPresentation* read = set.Find("FileIO")->FindOp("read");
  // Server work function allocates and donates; the stub frees after
  // marshaling.
  EXPECT_EQ(read->result.alloc, AllocPolicy::kUser);
  EXPECT_EQ(read->result.dealloc, DeallocPolicy::kAlways);
}

TEST(ApplyPdlTest, PaperFig5DeallocNever) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kServer,
                           "FileIO_read()[dealloc(never)];", "t.pdl", &set,
                           &diags))
      << diags.ToString();
  const OpPresentation* read = set.Find("FileIO")->FindOp("read");
  EXPECT_EQ(read->result.dealloc, DeallocPolicy::kNever);
  // Nothing else changed.
  EXPECT_EQ(read->result.alloc, AllocPolicy::kUser);
}

TEST(ApplyPdlTest, PaperSysLogLengthIs) {
  auto idl = MustParseCorba(kSysLogIdl);
  PresentationSet set;
  DiagnosticSink diags;
  ASSERT_TRUE(ApplyPdlText(
      *idl, Side::kClient,
      "SysLog_write_msg(,, char *[length_is(length)] msg, int length);",
      "t.pdl", &set, &diags))
      << diags.ToString();
  const OpPresentation* op = set.Find("SysLog")->FindOp("write_msg");
  ASSERT_EQ(op->params.size(), 2u);
  const ParamPresentation& msg = op->params[0];
  EXPECT_EQ(msg.name, "msg");
  EXPECT_TRUE(msg.explicit_length);
  EXPECT_EQ(msg.length_param, "length");
  EXPECT_EQ(msg.binding.kind, BindingKind::kParam);
  const ParamPresentation& len = op->params[1];
  EXPECT_TRUE(len.presentation_only);
  EXPECT_EQ(len.binding.kind, BindingKind::kPresentationOnly);
}

TEST(ApplyPdlTest, TrashableOnClientPreservedOnServer) {
  auto idl = MustParseCorba(kFileIoIdl);
  {
    PresentationSet set;
    DiagnosticSink diags;
    ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient,
                             "FileIO_write(char *[trashable] data);",
                             "t.pdl", &set, &diags))
        << diags.ToString();
    EXPECT_TRUE(set.Find("FileIO")
                    ->FindOp("write")
                    ->FindParam("data")
                    ->trashable);
  }
  {
    PresentationSet set;
    DiagnosticSink diags;
    ASSERT_TRUE(ApplyPdlText(*idl, Side::kServer,
                             "FileIO_write(char *[preserved] data);",
                             "t.pdl", &set, &diags))
        << diags.ToString();
    EXPECT_TRUE(set.Find("FileIO")
                    ->FindOp("write")
                    ->FindParam("data")
                    ->preserved);
  }
}

TEST(ApplyPdlTest, TrashableOnServerRejected) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(*idl, Side::kServer,
                            "FileIO_write(char *[trashable] data);", "t.pdl",
                            &set, &diags));
  EXPECT_NE(diags.ToString().find("client-side"), std::string::npos);
}

TEST(ApplyPdlTest, PreservedOnClientRejected) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(*idl, Side::kClient,
                            "FileIO_write(char *[preserved] data);", "t.pdl",
                            &set, &diags));
}

TEST(ApplyPdlTest, TrustLevels) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient,
                           "interface FileIO [leaky, unprotected];", "t.pdl",
                           &set, &diags));
  EXPECT_EQ(set.Find("FileIO")->trust, TrustLevel::kFull);

  PresentationSet set2;
  DiagnosticSink diags2;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient, "interface FileIO [leaky];",
                           "t.pdl", &set2, &diags2));
  EXPECT_EQ(set2.Find("FileIO")->trust, TrustLevel::kLeaky);
}

TEST(ApplyPdlTest, UnprotectedAloneRejected) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(*idl, Side::kClient,
                            "interface FileIO [unprotected];", "t.pdl", &set,
                            &diags));
}

TEST(ApplyPdlTest, TypeAttrAppliesEverywhere) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kServer, "type opaque [special];",
                           "t.pdl", &set, &diags))
      << diags.ToString();
  const InterfacePresentation* pres = set.Find("FileIO");
  EXPECT_TRUE(pres->FindOp("read")->result.special);
  EXPECT_TRUE(pres->FindOp("write")->FindParam("data")->special);
}

TEST(ApplyPdlTest, UnknownTypeAttrRejected) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(*idl, Side::kServer, "type missing [special];",
                            "t.pdl", &set, &diags));
}

TEST(ApplyPdlTest, UnknownOpRejected) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(*idl, Side::kServer, "FileIO_nope();", "t.pdl",
                            &set, &diags));
}

TEST(ApplyPdlTest, LengthIsOnScalarRejected) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(*idl, Side::kClient,
                            "FileIO_read(unsigned long [length_is(n)] count,"
                            " int n);",
                            "t.pdl", &set, &diags));
}

TEST(ApplyPdlTest, LengthIsDanglingTargetRejected) {
  auto idl = MustParseCorba(kSysLogIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(
      *idl, Side::kClient,
      "SysLog_write_msg(char *[length_is(nothere)] msg);", "t.pdl", &set,
      &diags));
}

TEST(ApplyPdlTest, NonuniqueRequiresObjRef) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(*idl, Side::kClient,
                            "FileIO_write(char *[nonunique] data);", "t.pdl",
                            &set, &diags));
}

TEST(ApplyPdlTest, NonuniqueOnObjRefAccepted) {
  auto idl = MustParseCorba(R"(
    interface Target { void poke(); };
    interface Sender { void send(in Target t); };
  )");
  PresentationSet set;
  DiagnosticSink diags;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient,
                           "Sender_send(Target [nonunique] t);", "t.pdl",
                           &set, &diags))
      << diags.ToString();
  EXPECT_TRUE(set.Find("Sender")->FindOp("send")->FindParam("t")->nonunique);
}

TEST(ApplyPdlTest, AllocPoliciesParsed) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient,
                           "FileIO_read()[alloc(user)];", "t.pdl", &set,
                           &diags))
      << diags.ToString();
  EXPECT_EQ(set.Find("FileIO")->FindOp("read")->result.alloc,
            AllocPolicy::kUser);
}

TEST(ApplyPdlTest, AllocOnInParamRejected) {
  auto idl = MustParseCorba(kFileIoIdl);
  PresentationSet set;
  DiagnosticSink diags;
  EXPECT_FALSE(ApplyPdlText(*idl, Side::kClient,
                            "FileIO_write(char *[alloc(user)] data);",
                            "t.pdl", &set, &diags));
}

// --- Figure 1 flattened Sun RPC presentation ---

constexpr char kNfsIdl[] = R"(
const NFS_MAXDATA = 8192;
const NFS_FHSIZE = 32;
enum nfsstat { NFS_OK = 0, NFSERR_IO = 5 };
struct nfs_fh { opaque data[NFS_FHSIZE]; };
struct fattr { unsigned size; unsigned mtime; };
struct readargs {
  nfs_fh file;
  unsigned offset;
  unsigned count;
  unsigned totalcount;
};
struct readokres { fattr attributes; opaque data<NFS_MAXDATA>; };
union readres switch (nfsstat status) {
  case NFS_OK: readokres reply;
  default: void;
};
program NFS_PROGRAM {
  version NFS_VERSION {
    readres NFSPROC_READ(readargs) = 6;
  } = 2;
} = 100003;
)";

constexpr char kNfsPdl[] = R"(
  [comm_status] int NFSPROC_READ(file, offset, count, totalcount,
      [special] data, attributes, status);
)";

TEST(ApplyPdlTest, PaperFig1FlattenedNfsRead) {
  DiagnosticSink diags;
  auto idl = ParseSunRpc(kNfsIdl, "nfs.x", &diags);
  ASSERT_NE(idl, nullptr) << diags.ToString();
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags)) << diags.ToString();

  PresentationSet set;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient, kNfsPdl, "nfs.pdl", &set,
                           &diags))
      << diags.ToString();
  const OpPresentation* op = set.Find("NFS_VERSION")->FindOp("NFSPROC_READ");
  ASSERT_NE(op, nullptr);
  EXPECT_TRUE(op->comm_status);
  EXPECT_TRUE(op->args_flattened);
  EXPECT_TRUE(op->result_flattened);
  ASSERT_EQ(op->params.size(), 7u);

  // Argument-struct fields.
  EXPECT_EQ(op->params[0].name, "file");
  EXPECT_EQ(op->params[0].binding.kind, BindingKind::kParamField);
  EXPECT_EQ(op->params[0].binding.param_index, 0);
  EXPECT_EQ(op->params[0].binding.field_index, 0);
  EXPECT_EQ(op->params[3].name, "totalcount");
  EXPECT_EQ(op->params[3].binding.field_index, 3);

  // Result fields: data is readokres.data (field 1), attributes field 0.
  EXPECT_EQ(op->params[4].name, "data");
  EXPECT_EQ(op->params[4].binding.kind, BindingKind::kResultField);
  EXPECT_EQ(op->params[4].binding.field_index, 1);
  EXPECT_TRUE(op->params[4].special);
  EXPECT_EQ(op->params[5].name, "attributes");
  EXPECT_EQ(op->params[5].binding.kind, BindingKind::kResultField);
  EXPECT_EQ(op->params[6].name, "status");
  EXPECT_EQ(op->params[6].binding.kind, BindingKind::kResultDiscriminant);

  // The C return value no longer carries the wire result.
  EXPECT_TRUE(op->result.presentation_only);
}

TEST(ApplyPdlTest, PartialFlattenFillsMissingFields) {
  DiagnosticSink diags;
  auto idl = ParseSunRpc(kNfsIdl, "nfs.x", &diags);
  ASSERT_NE(idl, nullptr);
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags));
  PresentationSet set;
  // Mention only `offset`; the other readargs fields must be auto-added so
  // the wire contract stays fully covered.
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient,
                           "NFSPROC_READ(unsigned offset);", "t.pdl", &set,
                           &diags))
      << diags.ToString();
  const OpPresentation* op = set.Find("NFS_VERSION")->FindOp("NFSPROC_READ");
  EXPECT_TRUE(op->args_flattened);
  // offset + 3 auto-added fields; result unflattened.
  ASSERT_EQ(op->params.size(), 4u);
  EXPECT_EQ(op->params[0].name, "offset");
  EXPECT_FALSE(op->result_flattened);
  EXPECT_EQ(op->result.binding.kind, BindingKind::kResult);
}

TEST(ApplyPdlTest, DefaultPresentationValidates) {
  // Property: for every interface we can define, the default presentation
  // passes validation on both sides.
  DiagnosticSink diags;
  auto idl = ParseSunRpc(kNfsIdl, "nfs.x", &diags);
  ASSERT_NE(idl, nullptr);
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags));
  for (Side side : {Side::kClient, Side::kServer}) {
    PresentationSet set;
    DiagnosticSink d2;
    EXPECT_TRUE(ApplyPdl(*idl, side, nullptr, &set, &d2)) << d2.ToString();
  }
}

}  // namespace
}  // namespace flexrpc
