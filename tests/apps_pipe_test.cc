// Tests for the pipe server application in all three configurations:
// fast-path RPC (default and zero-copy presentations), fbuf transport
// (standard and [special]), and the monolithic reference pipe.

#include <gtest/gtest.h>

#include <cstring>

#include "src/apps/pipe.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/support/rng.h"

namespace flexrpc {
namespace {

TEST(PipeBufferTest, FifoByteStream) {
  Arena arena("a");
  PipeBuffer pipe(&arena, 16);
  EXPECT_EQ(pipe.Write(reinterpret_cast<const uint8_t*>("abcdef"), 6), 6u);
  uint8_t out[4];
  EXPECT_EQ(pipe.Read(out, 4), 4u);
  EXPECT_EQ(std::memcmp(out, "abcd", 4), 0);
  EXPECT_EQ(pipe.available(), 2u);
}

TEST(PipeBufferTest, FlowControlAtCapacity) {
  Arena arena("a");
  PipeBuffer pipe(&arena, 8);
  uint8_t data[12] = {};
  EXPECT_EQ(pipe.Write(data, 12), 8u);  // only capacity accepted
  EXPECT_EQ(pipe.Write(data, 1), 0u);   // full: accept nothing
  uint8_t out[8];
  EXPECT_EQ(pipe.Read(out, 8), 8u);
  EXPECT_EQ(pipe.Write(data, 12), 8u);  // space again
}

TEST(PipeBufferTest, WrapAroundPreservesData) {
  Arena arena("a");
  PipeBuffer pipe(&arena, 8);
  uint8_t out[8];
  ASSERT_EQ(pipe.Write(reinterpret_cast<const uint8_t*>("12345"), 5), 5u);
  ASSERT_EQ(pipe.Read(out, 3), 3u);
  // Now head=3; writing 6 bytes wraps.
  ASSERT_EQ(pipe.Write(reinterpret_cast<const uint8_t*>("ABCDEF"), 6), 6u);
  ASSERT_EQ(pipe.Read(out, 8), 8u);
  EXPECT_EQ(std::memcmp(out, "45ABCDEF", 8), 0);
}

TEST(PipeBufferTest, PeekConsumeZeroCopy) {
  Arena arena("a");
  PipeBuffer pipe(&arena, 8);
  pipe.Write(reinterpret_cast<const uint8_t*>("xyz"), 3);
  auto [ptr, len] = pipe.Peek(10);
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(ptr[0], 'x');
  pipe.Consume(2);
  auto [ptr2, len2] = pipe.Peek(10);
  EXPECT_EQ(len2, 1u);
  EXPECT_EQ(ptr2[0], 'z');
}

TEST(PipeBufferTest, PeekShortAtWrap) {
  Arena arena("a");
  PipeBuffer pipe(&arena, 8);
  uint8_t out[6];
  pipe.Write(reinterpret_cast<const uint8_t*>("123456"), 6);
  pipe.Read(out, 6);  // head = 6
  pipe.Write(reinterpret_cast<const uint8_t*>("ABCD"), 4);  // wraps at 8
  auto [ptr, len] = pipe.Peek(4);
  EXPECT_EQ(len, 2u);  // only to the wrap point
  EXPECT_EQ(ptr[0], 'A');
}

class PipeRpcTest
    : public ::testing::TestWithParam<PipeServerApp::ReadPresentation> {
 protected:
  void SetUp() override {
    DiagnosticSink diags;
    idl_ = ParseCorbaIdl(PipeIdlText(), "pipe.idl", &diags);
    ASSERT_NE(idl_, nullptr) << diags.ToString();
    ASSERT_TRUE(AnalyzeInterfaceFile(idl_.get(), &diags));
    app_ = std::make_unique<PipeServerApp>(&kernel_, &fastpath_, *idl_,
                                           GetParam(), 4096);
    writer_ = kernel_.CreateTask("writer");
    reader_ = kernel_.CreateTask("reader");
    DiagnosticSink d2;
    ASSERT_TRUE(ApplyPdl(*idl_, Side::kClient, nullptr, &client_pres_, &d2));
    auto wconn = RpcConnection::Bind(
        &kernel_, &fastpath_, writer_, app_->port(), app_->server(),
        idl_->interfaces[0], *client_pres_.Find("FileIO"));
    ASSERT_TRUE(wconn.ok()) << wconn.status().ToString();
    write_conn_ = std::move(*wconn);
    auto rconn = RpcConnection::Bind(
        &kernel_, &fastpath_, reader_, app_->port(), app_->server(),
        idl_->interfaces[0], *client_pres_.Find("FileIO"));
    ASSERT_TRUE(rconn.ok());
    read_conn_ = std::move(*rconn);
  }

  size_t Write(const uint8_t* data, size_t len) {
    const MarshalProgram* prog = write_conn_->ProgramFor("write");
    ArgVec args(prog->slot_count());
    args[prog->SlotOf("data")].set_ptr(data);
    args[prog->SlotOf("data")].length = static_cast<uint32_t>(len);
    Status st = write_conn_->Call("write", &args);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return args[prog->result_slot()].scalar;
  }

  size_t Read(uint8_t* dst, size_t len) {
    const MarshalProgram* prog = read_conn_->ProgramFor("read");
    ArgVec args(prog->slot_count());
    args[prog->SlotOf("count")].scalar = len;
    Status st = read_conn_->Call("read", &args);
    EXPECT_TRUE(st.ok()) << st.ToString();
    size_t got = args[prog->result_slot()].length;
    std::memcpy(dst, args[prog->result_slot()].ptr(), got);
    reader_->space().Free(args[prog->result_slot()].ptr());
    return got;
  }

  Kernel kernel_;
  FastPath fastpath_{&kernel_};
  std::unique_ptr<InterfaceFile> idl_;
  std::unique_ptr<PipeServerApp> app_;
  PresentationSet client_pres_;
  Task* writer_ = nullptr;
  Task* reader_ = nullptr;
  std::unique_ptr<RpcConnection> write_conn_;
  std::unique_ptr<RpcConnection> read_conn_;
};

INSTANTIATE_TEST_SUITE_P(
    Presentations, PipeRpcTest,
    ::testing::Values(PipeServerApp::ReadPresentation::kDefault,
                      PipeServerApp::ReadPresentation::kZeroCopy),
    [](const auto& param_info) {
      return param_info.param == PipeServerApp::ReadPresentation::kDefault
                 ? "Default"
                 : "ZeroCopy";
    });

TEST_P(PipeRpcTest, BytesFlowInOrder) {
  uint8_t data[100];
  for (size_t i = 0; i < sizeof(data); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(Write(data, 100), 100u);
  uint8_t out[100];
  size_t got = 0;
  while (got < 100) {
    got += Read(out + got, 100 - got);
  }
  EXPECT_EQ(std::memcmp(out, data, 100), 0);
}

TEST_P(PipeRpcTest, FlowControlStopsWriter) {
  std::vector<uint8_t> big(8192, 0x42);
  size_t accepted = Write(big.data(), big.size());
  EXPECT_EQ(accepted, 4096u);  // pipe capacity
  EXPECT_EQ(Write(big.data(), 100), 0u);
}

TEST_P(PipeRpcTest, RandomizedStreamIntegrity) {
  // Property: the reader observes exactly the writer's byte stream, under
  // a random schedule of partial reads and writes.
  Rng rng(GetParam() == PipeServerApp::ReadPresentation::kDefault ? 1 : 2);
  std::vector<uint8_t> sent;
  std::vector<uint8_t> received;
  uint8_t next_byte = 0;
  while (sent.size() < 64 * 1024 || received.size() < sent.size()) {
    bool do_write = sent.size() < 64 * 1024 && rng.NextBool();
    if (do_write) {
      size_t n = 1 + rng.NextBelow(3000);
      std::vector<uint8_t> chunk(n);
      for (auto& b : chunk) {
        b = next_byte++;
      }
      size_t accepted = Write(chunk.data(), n);
      sent.insert(sent.end(), chunk.begin(), chunk.begin() +
                                                 static_cast<long>(accepted));
      next_byte = static_cast<uint8_t>(
          sent.empty() ? 0 : sent.back() + 1);  // rewind unaccepted bytes
    } else {
      uint8_t buf[4096];
      size_t n = 1 + rng.NextBelow(sizeof(buf));
      size_t got = Read(buf, n);
      received.insert(received.end(), buf, buf + got);
    }
  }
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(std::memcmp(received.data(), sent.data(), sent.size()), 0);
}

TEST_P(PipeRpcTest, NoServerLeaksAfterManyTransfers) {
  std::vector<uint8_t> data(1024, 0x3C);
  uint8_t out[1024];
  for (int i = 0; i < 200; ++i) {
    size_t accepted = Write(data.data(), data.size());
    size_t got = 0;
    while (got < accepted) {
      got += Read(out, sizeof(out));
    }
  }
  EXPECT_EQ(app_->task()->space().arena().live_blocks(), 0u);
}

TEST_P(PipeRpcTest, ZeroCopyAvoidsServerCopies) {
  std::vector<uint8_t> data(2048, 0x11);
  Write(data.data(), data.size());
  uint8_t out[2048];
  size_t got = 0;
  while (got < 2048) {
    got += Read(out + got, 2048 - got);
  }
  if (GetParam() == PipeServerApp::ReadPresentation::kZeroCopy) {
    EXPECT_EQ(app_->read_copies(), 0u);
  } else {
    EXPECT_GT(app_->read_copies(), 0u);
  }
}

// --- fbuf pipe ---

class FbufPipeTest
    : public ::testing::TestWithParam<PipeServerFbuf::Presentation> {};

INSTANTIATE_TEST_SUITE_P(
    Presentations, FbufPipeTest,
    ::testing::Values(PipeServerFbuf::Presentation::kStandard,
                      PipeServerFbuf::Presentation::kSpecial),
    [](const auto& param_info) {
      return param_info.param == PipeServerFbuf::Presentation::kStandard
                 ? "Standard"
                 : "Special";
    });

TEST_P(FbufPipeTest, StreamIntegrity) {
  Kernel kernel;
  Arena shared("shared-path");
  Arena server_arena("pipe-server");
  FbufChannel channel(&kernel, &shared, 4096, 64);
  PipeServerFbuf server(&channel, GetParam(), &server_arena, 8192);

  Rng rng(99);
  std::vector<uint8_t> sent;
  std::vector<uint8_t> received;
  uint8_t next = 0;
  while (sent.size() < 128 * 1024 || received.size() < sent.size()) {
    if (sent.size() < 128 * 1024 && rng.NextBool()) {
      // Keep writes >= 512 bytes: a tiny queued segment pins its whole
      // 4 KiB fbuf, and the pool must outlast the worst-case pin count.
      size_t n = 512 + rng.NextBelow(5500);
      std::vector<uint8_t> chunk(n);
      for (auto& b : chunk) {
        b = next++;
      }
      size_t accepted = 0;
      ASSERT_TRUE(FbufPipeWrite(&channel, chunk.data(), n, &accepted).ok());
      sent.insert(sent.end(), chunk.begin(),
                  chunk.begin() + static_cast<long>(accepted));
      next = static_cast<uint8_t>(sent.empty() ? 0 : sent.back() + 1);
    } else {
      uint8_t buf[8192];
      size_t n = 1 + rng.NextBelow(sizeof(buf));
      size_t got = 0;
      ASSERT_TRUE(FbufPipeRead(&channel, buf, n, &got).ok());
      received.insert(received.end(), buf, buf + got);
    }
  }
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(std::memcmp(received.data(), sent.data(), sent.size()), 0);
  // All fbufs returned to the pool once the stream drained.
  EXPECT_EQ(channel.pool().in_use(), 0u);
}

TEST_P(FbufPipeTest, SpecialPresentationEliminatesServerCopies) {
  Kernel kernel;
  Arena shared("shared-path");
  Arena server_arena("pipe-server");
  FbufChannel channel(&kernel, &shared, 4096, 64);
  PipeServerFbuf server(&channel, GetParam(), &server_arena, 8192);

  std::vector<uint8_t> data(4096, 0xAD);
  size_t accepted = 0;
  ASSERT_TRUE(
      FbufPipeWrite(&channel, data.data(), data.size(), &accepted).ok());
  uint8_t out[4096];
  size_t got = 0;
  ASSERT_TRUE(FbufPipeRead(&channel, out, sizeof(out), &got).ok());
  EXPECT_EQ(got, 4096u);
  EXPECT_EQ(out[0], 0xAD);
  if (GetParam() == PipeServerFbuf::Presentation::kSpecial) {
    EXPECT_EQ(server.server_copies(), 0u);
  } else {
    EXPECT_GE(server.server_copies(), 2u);
  }
}

TEST(MonolithicPipeTest, CopyInCopyOut) {
  Kernel kernel;
  Arena kernel_space("kernel");
  AddressSpace writer("writer");
  AddressSpace reader("reader");
  MonolithicPipe pipe(&kernel, &kernel_space, 4096);

  uint8_t data[512];
  std::memset(data, 0x66, sizeof(data));
  EXPECT_EQ(pipe.Write(&writer, data, sizeof(data)), 512u);
  uint8_t out[512];
  EXPECT_EQ(pipe.Read(&reader, out, sizeof(out)), 512u);
  EXPECT_EQ(out[100], 0x66);
  EXPECT_EQ(kernel.trap_count(), 4u);  // 2 syscalls x enter/exit
}

}  // namespace
}  // namespace flexrpc
