// Unit tests for the sliding-window pipelined transport
// (src/rpc/pipeline.h): window admission, out-of-order completion,
// per-call RTO timers, at-most-once semantics shared with the serial
// transport, graceful degradation, and the virtual-time speedup the
// window buys on the NFS read path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "src/apps/nfs.h"
#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/rpc/pipeline.h"
#include "src/support/event_queue.h"

namespace flexrpc {
namespace {

std::vector<uint8_t> XidRequest(uint32_t xid) {
  return {static_cast<uint8_t>(xid >> 24), static_cast<uint8_t>(xid >> 16),
          static_cast<uint8_t>(xid >> 8), static_cast<uint8_t>(xid), 0x5A};
}

// Echo rig, pipelined flavor: the handler echoes the request datagram back
// and counts executions per xid; completions record status and order.
struct PipeRig {
  explicit PipeRig(FaultPlan to_server, FaultPlan to_client,
                   PipelinePolicy policy = PipelinePolicy{})
      : channel(LinkModel(), std::move(to_server), std::move(to_client),
                &clock),
        events(&clock),
        transport(
            &channel,
            [this](ByteSpan request, std::vector<uint8_t>* reply) {
              auto xid = PeekXid(request);
              if (!xid.ok()) {
                return xid.status();
              }
              ++executions[*xid];
              reply->assign(request.begin(), request.end());
              return Status::Ok();
            },
            RemoteServerModel(), policy, &events) {}

  void Submit(uint32_t xid) {
    std::vector<uint8_t> request = XidRequest(xid);
    transport.Submit(
        xid, ByteSpan(request.data(), request.size()),
        [this, xid](Status st, std::vector<uint8_t> reply) {
          results[xid] = std::move(st);
          completion_order.push_back(xid);
          if (results[xid].ok()) {
            replies[xid] = std::move(reply);
          }
        });
  }

  VirtualClock clock;
  DatagramChannel channel;
  EventQueue events;
  PipelinedTransport transport;
  std::map<uint32_t, int> executions;
  std::map<uint32_t, Status> results;
  std::map<uint32_t, std::vector<uint8_t>> replies;
  std::vector<uint32_t> completion_order;
};

TEST(PipelinedTransportTest, PerfectWireCompletesEverySubmission) {
  PipelinePolicy policy;
  policy.window = 4;
  PipeRig rig{FaultPlan(), FaultPlan(), policy};
  for (uint32_t xid = 1; xid <= 16; ++xid) {
    rig.Submit(xid);
  }
  ASSERT_TRUE(rig.transport.Drive().ok());
  for (uint32_t xid = 1; xid <= 16; ++xid) {
    ASSERT_TRUE(rig.results[xid].ok()) << rig.results[xid].ToString();
    EXPECT_EQ(rig.executions[xid], 1);
    EXPECT_EQ(PeekXid(ByteSpan(rig.replies[xid].data(),
                               rig.replies[xid].size()))
                  .value(),
              xid);
  }
  const auto& stats = rig.transport.stats();
  EXPECT_EQ(stats.calls, 16u);
  EXPECT_EQ(stats.retransmits, 0u);
  EXPECT_EQ(stats.max_in_flight, 4u);
  EXPECT_GE(stats.window_stalls, 12u);  // submissions 5..16 found it full
  EXPECT_EQ(stats.dup_cache_misses, 16u);
}

TEST(PipelinedTransportTest, WindowOneIsStopAndWait) {
  PipelinePolicy policy;
  policy.window = 0;  // clamped to 1
  PipeRig rig{FaultPlan(), FaultPlan(), policy};
  for (uint32_t xid = 1; xid <= 4; ++xid) {
    rig.Submit(xid);
  }
  ASSERT_TRUE(rig.transport.Drive().ok());
  EXPECT_EQ(rig.transport.stats().max_in_flight, 1u);
  EXPECT_EQ(rig.transport.stats().out_of_order_replies, 0u);
  EXPECT_EQ(rig.completion_order, (std::vector<uint32_t>{1, 2, 3, 4}));
}

TEST(PipelinedTransportTest, SlowCallIsOvertakenByYoungerOnes) {
  // Drop call 1's first request frame: while its RTO runs, calls 2..4
  // complete — out-of-order completion, matched purely by xid.
  FaultPlan to_server;
  to_server.DropExactly(0, 0);
  PipelinePolicy policy;
  policy.window = 4;
  policy.retry.initial_rto_nanos = 5'000'000;  // recover quickly
  PipeRig rig{std::move(to_server), FaultPlan(), policy};
  for (uint32_t xid = 1; xid <= 4; ++xid) {
    rig.Submit(xid);
  }
  ASSERT_TRUE(rig.transport.Drive().ok());
  for (uint32_t xid = 1; xid <= 4; ++xid) {
    ASSERT_TRUE(rig.results[xid].ok()) << rig.results[xid].ToString();
    EXPECT_EQ(rig.executions[xid], 1);
  }
  EXPECT_EQ(rig.completion_order.back(), 1u);  // the dropped call finishes last
  EXPECT_GE(rig.transport.stats().retransmits, 1u);
  EXPECT_GE(rig.transport.stats().out_of_order_replies, 1u);
}

TEST(PipelinedTransportTest, DroppedReplyHitsDupCacheNotTheWorkFunction) {
  // The at-most-once proof on the pipelined path: reply 0 is lost, the
  // retransmit must be answered from the shared reply cache.
  FaultPlan to_client;
  to_client.DropExactly(0, 0);
  PipelinePolicy policy;
  policy.retry.initial_rto_nanos = 5'000'000;
  PipeRig rig{FaultPlan(), std::move(to_client), policy};
  rig.Submit(9);
  ASSERT_TRUE(rig.transport.Drive().ok());
  ASSERT_TRUE(rig.results[9].ok()) << rig.results[9].ToString();
  EXPECT_EQ(rig.executions[9], 1);  // executed exactly once
  EXPECT_GE(rig.transport.stats().retransmits, 1u);
  EXPECT_EQ(rig.transport.stats().dup_cache_hits, 1u);
  EXPECT_EQ(rig.transport.stats().dup_cache_misses, 1u);
}

TEST(PipelinedTransportTest, DuplicatedRequestsExecuteOncePerXid) {
  FaultConfig dupper;
  dupper.dup_prob = 1.0;  // every request frame arrives twice
  PipelinePolicy policy;
  policy.window = 4;
  PipeRig rig{FaultPlan(dupper), FaultPlan(), policy};
  for (uint32_t xid = 1; xid <= 8; ++xid) {
    rig.Submit(xid);
  }
  ASSERT_TRUE(rig.transport.Drive().ok());
  for (uint32_t xid = 1; xid <= 8; ++xid) {
    ASSERT_TRUE(rig.results[xid].ok());
    EXPECT_EQ(rig.executions[xid], 1);  // duplicates suppressed
  }
  EXPECT_EQ(rig.transport.stats().dup_cache_hits, 8u);
  EXPECT_EQ(rig.transport.stats().dup_cache_misses, 8u);
}

TEST(PipelinedTransportTest, TotalLossDegradesToUnavailable) {
  FaultConfig black_hole;
  black_hole.drop_prob = 1.0;
  PipelinePolicy policy;
  policy.retry.max_attempts = 3;
  policy.retry.initial_rto_nanos = 1'000'000;
  PipeRig rig{FaultPlan(black_hole), FaultPlan(), policy};
  rig.Submit(11);
  ASSERT_TRUE(rig.transport.Drive().ok());  // degrades, never stalls
  EXPECT_EQ(rig.results[11].code(), StatusCode::kUnavailable);
  EXPECT_EQ(rig.executions.count(11), 0u);
  EXPECT_EQ(rig.transport.stats().retransmits, 2u);
  EXPECT_EQ(rig.transport.stats().unavailable_failures, 1u);
}

TEST(PipelinedTransportTest, DeadlineShorterThanARoundTripExpires) {
  // Parity with the serial transport's late-reply fix: a deadline shorter
  // than one round trip must surface kDeadlineExceeded even though the
  // wire is perfect and a reply is (eventually) on its way.
  PipelinePolicy policy;
  policy.retry.deadline_nanos = 1'000;  // 1 µs
  PipeRig rig{FaultPlan(), FaultPlan(), policy};
  rig.Submit(12);
  ASSERT_TRUE(rig.transport.Drive().ok());
  EXPECT_EQ(rig.results[12].code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rig.transport.stats().deadline_expiries, 1u);
}

TEST(PipelinedTransportTest, CallConvenienceMatchesSubmitDrive) {
  PipeRig rig{FaultPlan(), FaultPlan()};
  std::vector<uint8_t> request = XidRequest(77);
  std::vector<uint8_t> reply;
  ASSERT_TRUE(rig.transport
                  .Call(77, ByteSpan(request.data(), request.size()), &reply)
                  .ok());
  EXPECT_EQ(PeekXid(ByteSpan(reply.data(), reply.size())).value(), 77u);
  EXPECT_EQ(rig.executions[77], 1);
}

// --- the speedup the window exists for ----------------------------------

// Runs the pipelined NFS read at the given window and returns the virtual
// nanoseconds the whole file took. Contents are verified inside
// ReadFilePipelined against the server's bytes, which are identical to
// what the serial paths deliver (same server, same seed).
uint64_t PipelinedReadNanos(uint32_t window, size_t chunk_bytes,
                            uint64_t* bytes_read) {
  constexpr size_t kFileSize = 64 * 1024;
  NfsFileServer server(kFileSize, /*seed=*/77);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  DatagramChannel channel(LinkModel(), FaultPlan(), FaultPlan(), &clock);
  EventQueue events(&clock);
  PipelinePolicy policy;
  policy.window = window;
  PipelinedTransport rpc(&channel, NfsFileServer::MakeHandler(&server),
                         RemoteServerModel(), policy, &events);
  auto stats = client.ReadFilePipelined(NfsClient::StubKind::kHandUserBuffer,
                                        &rpc, chunk_bytes);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (bytes_read != nullptr) {
    *bytes_read = stats.ok() ? stats->bytes_read : 0;
  }
  return clock.now_nanos();
}

TEST(PipelinedNfsTest, WindowEightIsAtLeastTwiceWindowOne) {
  // 512-byte chunks make the read latency/server-bound, which is where
  // overlapping calls pays: the pipeline is limited by the busiest single
  // resource instead of the sum of request+server+reply legs.
  uint64_t serial_bytes = 0;
  uint64_t pipelined_bytes = 0;
  uint64_t serial = PipelinedReadNanos(1, 512, &serial_bytes);
  uint64_t pipelined = PipelinedReadNanos(8, 512, &pipelined_bytes);
  EXPECT_EQ(serial_bytes, 64u * 1024u);
  EXPECT_EQ(pipelined_bytes, serial_bytes);  // same bytes, same file
  EXPECT_GE(serial, 2 * pipelined)
      << "window=8 took " << pipelined << "ns vs window=1 " << serial
      << "ns — expected at least 2x";
}

TEST(PipelinedNfsTest, SpeedupIsDeterministic) {
  uint64_t a = PipelinedReadNanos(8, 512, nullptr);
  uint64_t b = PipelinedReadNanos(8, 512, nullptr);
  EXPECT_EQ(a, b);  // virtual time is a pure function of the inputs
}

// --- the adaptive transport (ISSUE 7 tentpole) --------------------------

struct NfsRunOutcome {
  uint64_t virtual_nanos = 0;
  uint64_t bytes_read = 0;
  PipelinedTransport::Stats stats;
  uint32_t final_window = 0;
};

// The congestion-collapse rig from the bench: 8 KB chunks at the default
// 20 ms RTO, where a fixed window > ~3 queues more reply wire time than
// the RTO covers and spuriously retransmits.
NfsRunOutcome CollapseRun(uint32_t window, bool adaptive) {
  constexpr size_t kFileSize = 128 * 1024;  // 16 full-size chunks
  NfsFileServer server(kFileSize, /*seed=*/77);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  DatagramChannel channel(LinkModel(), FaultPlan(), FaultPlan(), &clock);
  EventQueue events(&clock);
  PipelinePolicy policy;
  policy.window = window;
  policy.retry.deadline_nanos = 60'000'000'000;
  policy.retry.adaptive.enabled = adaptive;
  PipelinedTransport rpc(&channel, NfsFileServer::MakeHandler(&server),
                         RemoteServerModel(), policy, &events);
  auto stats = client.ReadFilePipelined(NfsClient::StubKind::kHandUserBuffer,
                                        &rpc, kNfsMaxData);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  NfsRunOutcome outcome;
  outcome.virtual_nanos = clock.now_nanos();
  outcome.bytes_read = stats.ok() ? stats->bytes_read : 0;
  outcome.stats = rpc.stats();
  outcome.final_window = rpc.current_window();
  return outcome;
}

TEST(AdaptivePipelineTest, CollapseRecoveryBeatsEveryFixedWindow) {
  // The acceptance bar: with zero hand tuning the adaptive transport must
  // recover at least the best fixed window's throughput — while the fixed
  // windows above the collapse knee burn spurious retransmits.
  uint64_t best_fixed_nanos = UINT64_MAX;
  uint64_t worst_fixed_retransmits = 0;
  for (uint32_t window : {1u, 2u, 4u, 8u, 16u}) {
    NfsRunOutcome fixed = CollapseRun(window, /*adaptive=*/false);
    best_fixed_nanos = std::min(best_fixed_nanos, fixed.virtual_nanos);
    worst_fixed_retransmits =
        std::max(worst_fixed_retransmits, fixed.stats.retransmits);
  }
  EXPECT_GT(worst_fixed_retransmits, 0u)
      << "the scenario no longer collapses — tighten it";

  NfsRunOutcome adaptive = CollapseRun(16, /*adaptive=*/true);
  // Same throughput or better (allow 1% for the ramp-up window).
  EXPECT_LE(adaptive.virtual_nanos, best_fixed_nanos + best_fixed_nanos / 100)
      << "adaptive " << adaptive.virtual_nanos << "ns vs best fixed "
      << best_fixed_nanos << "ns";
  // And it got there without a single spurious retransmit.
  EXPECT_EQ(adaptive.stats.retransmits, 0u);
  EXPECT_GT(adaptive.stats.rtt_samples, 0u);
  EXPECT_GT(adaptive.stats.cwnd_increases, 0u);
}

TEST(AdaptivePipelineTest, CleanRunSamplesEveryReplyAndGrowsWindow) {
  PipelinePolicy policy;
  policy.retry.adaptive.enabled = true;
  PipeRig rig{FaultPlan(), FaultPlan(), policy};
  for (uint32_t xid = 1; xid <= 16; ++xid) {
    rig.Submit(xid);
  }
  ASSERT_TRUE(rig.transport.Drive().ok());
  const auto& stats = rig.transport.stats();
  EXPECT_EQ(stats.rtt_samples, 16u);  // every reply was unambiguous
  EXPECT_EQ(stats.karn_skips, 0u);
  EXPECT_EQ(stats.cwnd_decreases, 0u);
  EXPECT_GT(stats.cwnd_increases, 0u);  // AIMD ramped from the initial 2
  EXPECT_GT(rig.transport.current_window(),
            rig.transport.cwnd().config().initial_window - 1);
  EXPECT_TRUE(rig.transport.rtt().has_sample());
  EXPECT_EQ(rig.transport.rtt().samples(), 16u);
}

TEST(AdaptivePipelineTest, RetransmitIsKarnSkippedAndHalvesWindow) {
  // Drop call 1's first request: its reply answers the retransmission, so
  // the sample is ambiguous (Karn skip), and the RTO fire is a loss signal
  // that must halve the AIMD window (2 -> 1).
  FaultPlan to_server;
  to_server.DropExactly(0, 0);
  PipelinePolicy policy;
  policy.retry.adaptive.enabled = true;
  policy.retry.adaptive.rtt.initial_rto_nanos = 5'000'000;
  PipeRig rig{std::move(to_server), FaultPlan(), policy};
  rig.Submit(1);
  ASSERT_TRUE(rig.transport.Drive().ok());
  ASSERT_TRUE(rig.results[1].ok()) << rig.results[1].ToString();
  const auto& stats = rig.transport.stats();
  EXPECT_EQ(stats.retransmits, 1u);
  EXPECT_EQ(stats.karn_skips, 1u);
  EXPECT_EQ(stats.rtt_samples, 0u);  // the only reply was ambiguous
  EXPECT_EQ(stats.cwnd_decreases, 1u);  // halved 2 -> 1 on the RTO fire
  // The eventual completion still counts as an ack (delivery evidence,
  // even though its RTT is ambiguous), and at a window of 1 a single ack
  // is a full window — so AIMD immediately grew back to 2.
  EXPECT_EQ(stats.cwnd_increases, 1u);
  EXPECT_EQ(rig.transport.current_window(), 2u);
}

TEST(AdaptivePipelineTest, EstimatorRtoTracksTheActualRoundTrip) {
  // After a clean run the RTO must sit near the measured round trip —
  // far below the 20 ms pre-sample seed — which is the whole mechanism
  // that avoids both spurious retransmits and sluggish recovery.
  PipelinePolicy policy;
  policy.retry.adaptive.enabled = true;
  PipeRig rig{FaultPlan(), FaultPlan(), policy};
  for (uint32_t xid = 1; xid <= 8; ++xid) {
    rig.Submit(xid);
  }
  ASSERT_TRUE(rig.transport.Drive().ok());
  const RttEstimator& rtt = rig.transport.rtt();
  ASSERT_TRUE(rtt.has_sample());
  EXPECT_GT(rtt.srtt_nanos(), 0u);
  EXPECT_LT(rtt.rto_nanos(), 20'000'000u);  // adapted below the seed
  EXPECT_GE(rtt.rto_nanos(), rtt.config().min_rto_nanos);
}

TEST(AdaptivePipelineTest, AdaptiveRunIsDeterministic) {
  auto run = [] {
    NfsRunOutcome outcome = CollapseRun(16, /*adaptive=*/true);
    return outcome;
  };
  NfsRunOutcome a = run();
  NfsRunOutcome b = run();
  EXPECT_EQ(a.virtual_nanos, b.virtual_nanos);
  EXPECT_EQ(a.stats.rtt_samples, b.stats.rtt_samples);
  EXPECT_EQ(a.stats.cwnd_increases, b.stats.cwnd_increases);
  EXPECT_EQ(a.stats.cwnd_decreases, b.stats.cwnd_decreases);
  EXPECT_EQ(a.final_window, b.final_window);
}

TEST(AdaptivePipelineTest, DisabledSwitchLeavesFixedBehaviorUntouched) {
  // The A/B contract: adaptive off (the default) must reproduce the
  // pre-adaptive transport exactly, so fixed-window numbers stay benchable.
  PipelinePolicy policy;
  policy.window = 4;
  PipeRig rig{FaultPlan(), FaultPlan(), policy};
  for (uint32_t xid = 1; xid <= 8; ++xid) {
    rig.Submit(xid);
  }
  ASSERT_TRUE(rig.transport.Drive().ok());
  const auto& stats = rig.transport.stats();
  EXPECT_EQ(stats.rtt_samples, 0u);
  EXPECT_EQ(stats.karn_skips, 0u);
  EXPECT_EQ(stats.cwnd_increases, 0u);
  EXPECT_EQ(stats.cwnd_decreases, 0u);
  EXPECT_EQ(rig.transport.current_window(), 4u);
  EXPECT_FALSE(rig.transport.rtt().has_sample());
}

}  // namespace
}  // namespace flexrpc
