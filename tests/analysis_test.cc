// Golden-diagnostic tests for flexcheck: one triggering and one
// non-triggering case per stable code.
//
// Stage 1 (FLEX001-FLEX012) positives are produced by mutating a valid
// presentation in memory: ApplyPdl's own validator rejects most of these
// combinations at parse time (by design), and flexcheck must catch the same
// classes when presentations are built or edited programmatically.
// Stage 2 (FLEX101-FLEX106) positives corrupt the MarshalPlanView snapshot
// of a correctly compiled MarshalProgram, bytecode-verifier style.
// Stage 3 (FLEX201-FLEX207) positives corrupt a compiled SpecPlan's
// superinstruction streams the same way; the wire-equivalence prover must
// refuse each class of divergence.

#include <gtest/gtest.h>

#include <set>

#include "src/analysis/flexcheck.h"
#include "src/analysis/plan_verifier.h"
#include "src/analysis/spec_verifier.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"
#include "src/pdl/apply.h"
#include "src/rpc/runtime.h"

namespace flexrpc {
namespace {

std::unique_ptr<InterfaceFile> MustParseCorba(std::string_view src) {
  DiagnosticSink diags;
  auto file = ParseCorbaIdl(src, "test.idl", &diags);
  EXPECT_NE(file, nullptr) << diags.ToString();
  EXPECT_TRUE(AnalyzeInterfaceFile(file.get(), &diags)) << diags.ToString();
  return file;
}

PresentationSet MustApply(const InterfaceFile& idl, Side side,
                          std::string_view pdl_text = "") {
  PresentationSet set;
  DiagnosticSink diags;
  bool ok = pdl_text.empty()
                ? ApplyPdl(idl, side, nullptr, &set, &diags)
                : ApplyPdlText(idl, side, pdl_text, "t.pdl", &set, &diags);
  EXPECT_TRUE(ok) << diags.ToString();
  return set;
}

// Mutable presentation for the in-memory corruption tests.
InterfacePresentation& Pres(PresentationSet& set, const std::string& name) {
  auto it = set.by_interface.find(name);
  EXPECT_NE(it, set.by_interface.end());
  return it->second;
}

int Lint(const InterfaceFile& idl, const InterfacePresentation& pres,
         DiagnosticSink* diags, bool advisors = false) {
  LintOptions opts;
  opts.advisors = advisors;
  return LintPresentation(idl, idl.interfaces[0], pres, diags, opts);
}

// The lint fixture: every shape the stage 1 checks care about.
constexpr char kStoreIdl[] = R"(
  interface Store {
    sequence<octet> read(in unsigned long count);
    void write(in sequence<octet> data);
    void resize(inout sequence<octet> buf);
    void scale(in sequence<octet> data, in float factor);
    void fetch(in sequence<octet> src, out long n);
    void slice(in long n, in sequence<octet> src);
    long touch(in long ticks);
  };
)";

// --- catalog ---

TEST(FlexCatalogTest, CodesAreStableAndUnique) {
  const auto& catalog = FlexCodeCatalog();
  ASSERT_GE(catalog.size(), 18u);
  std::set<std::string_view> codes;
  for (const FlexCodeInfo& info : catalog) {
    EXPECT_TRUE(codes.insert(info.code).second)
        << "duplicate code " << info.code;
    EXPECT_FALSE(info.summary.empty()) << info.code;
    EXPECT_EQ(FindFlexCode(info.code), &info);
  }
  // Severity tiers: unsound = error, suspicious = warning, advisor = note.
  EXPECT_EQ(FindFlexCode("FLEX001")->severity, DiagSeverity::kError);
  EXPECT_EQ(FindFlexCode("FLEX009")->severity, DiagSeverity::kWarning);
  EXPECT_EQ(FindFlexCode("FLEX011")->severity, DiagSeverity::kNote);
  EXPECT_EQ(FindFlexCode("FLEX101")->severity, DiagSeverity::kError);
  EXPECT_EQ(FindFlexCode("FLEX999"), nullptr);
}

// --- FLEX001 / FLEX002: side-mismatched buffer-sharing attributes ---

TEST(FlexLintTest, Flex001TrashableOnServerSide) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet server = MustApply(*idl, Side::kServer);
  Pres(server, "Store").FindOp("write")->FindParam("data")->trashable = true;
  DiagnosticSink diags;
  Lint(*idl, *server.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX001"), 1) << diags.ToString();
  EXPECT_EQ(diags.FindCode("FLEX001")->severity, DiagSeverity::kError);
}

TEST(FlexLintTest, Flex001NotOnClientSide) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client =
      MustApply(*idl, Side::kClient, "Store_write(char *[trashable] data);");
  DiagnosticSink diags;
  EXPECT_EQ(Lint(*idl, *client.Find("Store"), &diags), 0)
      << diags.ToString();
}

TEST(FlexLintTest, Flex002PreservedOnClientSide) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  Pres(client, "Store").FindOp("write")->FindParam("data")->preserved = true;
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX002"), 1) << diags.ToString();
}

TEST(FlexLintTest, Flex002NotOnServerSide) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet server =
      MustApply(*idl, Side::kServer, "Store_write(char *[preserved] data);");
  DiagnosticSink diags;
  EXPECT_EQ(Lint(*idl, *server.Find("Store"), &diags), 0)
      << diags.ToString();
}

// --- FLEX003 / FLEX004: [length_is] target sanity ---

TEST(FlexLintTest, Flex003LengthIsNamesNoSlot) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  ParamPresentation* data =
      Pres(client, "Store").FindOp("write")->FindParam("data");
  data->explicit_length = true;
  data->length_param = "nope";
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX003"), 1) << diags.ToString();
  // The code rides along in the rendered diagnostic.
  EXPECT_NE(diags.ToString().find("[FLEX003]"), std::string::npos);
}

TEST(FlexLintTest, Flex003LengthIsTargetsNonIntegralSlot) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  ParamPresentation* data =
      Pres(client, "Store").FindOp("scale")->FindParam("data");
  data->explicit_length = true;
  data->length_param = "factor";  // float: cannot carry a length
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX003"), 1) << diags.ToString();
  EXPECT_EQ(diags.CountCode("FLEX004"), 0);  // same-direction pair
}

TEST(FlexLintTest, Flex003NotOnPresentationOnlyLength) {
  // The paper's syslog shape: the length slot exists only in the stub
  // prototype, so it is always available and has no wire direction.
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(
      *idl, Side::kClient,
      "Store_write(char *[length_is(len)] data, int len);");
  DiagnosticSink diags;
  EXPECT_EQ(Lint(*idl, *client.Find("Store"), &diags), 0)
      << diags.ToString();
}

TEST(FlexLintTest, Flex004LengthTravelsWrongDirection) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  ParamPresentation* src =
      Pres(client, "Store").FindOp("fetch")->FindParam("src");
  src->explicit_length = true;
  src->length_param = "n";  // buffer is in, n is out
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX004"), 1) << diags.ToString();
  EXPECT_EQ(diags.CountCode("FLEX003"), 0);  // n itself is integral
}

TEST(FlexLintTest, Flex004NotWhenDirectionsAgree) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(
      *idl, Side::kClient, "Store_slice(int n, char *[length_is(n)] src);");
  DiagnosticSink diags;
  EXPECT_EQ(Lint(*idl, *client.Find("Store"), &diags), 0)
      << diags.ToString();
}

// --- FLEX005: the double-free alloc/dealloc combination ---

TEST(FlexLintTest, Flex005ClientInOutUserAllocFreedByStub) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  ParamPresentation* buf =
      Pres(client, "Store").FindOp("resize")->FindParam("buf");
  buf->alloc = AllocPolicy::kUser;
  buf->dealloc = DeallocPolicy::kAlways;
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX005"), 1) << diags.ToString();
}

TEST(FlexLintTest, Flex005NotOnServerDonatePattern) {
  // Server alloc(user)+dealloc(always) is the legitimate move-semantics
  // donate: the work function allocates, the stub frees after marshaling.
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet server = MustApply(*idl, Side::kServer);
  ParamPresentation* buf =
      Pres(server, "Store").FindOp("resize")->FindParam("buf");
  buf->alloc = AllocPolicy::kUser;
  buf->dealloc = DeallocPolicy::kAlways;
  DiagnosticSink diags;
  Lint(*idl, *server.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX005"), 0) << diags.ToString();
}

// --- FLEX006 / FLEX007: attribute/type mismatches ---

TEST(FlexLintTest, Flex006SpecialOnScalar) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  Pres(client, "Store").FindOp("touch")->FindParam("ticks")->special = true;
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX006"), 1) << diags.ToString();
}

TEST(FlexLintTest, Flex006NotOnBuffer) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client =
      MustApply(*idl, Side::kClient, "Store_write(char *[special] data);");
  DiagnosticSink diags;
  EXPECT_EQ(Lint(*idl, *client.Find("Store"), &diags), 0)
      << diags.ToString();
}

TEST(FlexLintTest, Flex007NonuniqueOnNonObjref) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  Pres(client, "Store").FindOp("write")->FindParam("data")->nonunique = true;
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX007"), 1) << diags.ToString();
}

TEST(FlexLintTest, Flex007NotOnObjref) {
  auto idl = MustParseCorba(R"(
    interface Peer { void ping(); };
    interface Registry { void share(in Peer who); };
  )");
  PresentationSet client = MustApply(*idl, Side::kClient);
  Pres(client, "Registry").FindOp("share")->FindParam("who")->nonunique =
      true;
  DiagnosticSink diags;
  EXPECT_EQ(LintPresentation(*idl, idl->interfaces[1],
                             *client.Find("Registry"), &diags),
            0)
      << diags.ToString();
}

// --- FLEX008: flatten/binding coverage ---

TEST(FlexLintTest, Flex008DoubleCoveredParameter) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  OpPresentation* write = Pres(client, "Store").FindOp("write");
  write->params.push_back(write->params[0]);  // data carried twice
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_GE(diags.CountCode("FLEX008"), 1) << diags.ToString();
}

TEST(FlexLintTest, Flex008OutOfRangeBinding) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  Pres(client, "Store")
      .FindOp("write")
      ->FindParam("data")
      ->binding.param_index = 5;
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_GE(diags.CountCode("FLEX008"), 1) << diags.ToString();
}

TEST(FlexLintTest, Flex008NotOnDefaultPresentation) {
  auto idl = MustParseCorba(kStoreIdl);
  for (Side side : {Side::kClient, Side::kServer}) {
    PresentationSet set = MustApply(*idl, side);
    DiagnosticSink diags;
    EXPECT_EQ(Lint(*idl, *set.Find("Store"), &diags), 0)
        << diags.ToString();
  }
}

// --- FLEX009 / FLEX010: suspicious-but-legal warnings ---

TEST(FlexLintTest, Flex009TrustFullWaivesSharingPromise) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  InterfacePresentation& pres = Pres(client, "Store");
  pres.trust = TrustLevel::kFull;
  pres.FindOp("write")->FindParam("data")->trashable = true;
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX009"), 1) << diags.ToString();
  EXPECT_EQ(diags.FindCode("FLEX009")->severity, DiagSeverity::kWarning);
  EXPECT_TRUE(diags.HasWarnings());
  EXPECT_FALSE(diags.HasErrors());  // trashable itself is client-legal
}

TEST(FlexLintTest, Flex009NotWithoutSharingAttributes) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  Pres(client, "Store").trust = TrustLevel::kFull;
  DiagnosticSink diags;
  EXPECT_EQ(Lint(*idl, *client.Find("Store"), &diags), 0)
      << diags.ToString();
}

TEST(FlexLintTest, Flex010DeadPresentationOnlySlot) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(*idl, Side::kClient);
  ParamPresentation stray;
  stray.name = "len";
  stray.binding.kind = BindingKind::kPresentationOnly;
  stray.presentation_only = true;
  Pres(client, "Store").FindOp("write")->params.push_back(stray);
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX010"), 1) << diags.ToString();
}

TEST(FlexLintTest, Flex010NotWhenSlotIsReferenced) {
  auto idl = MustParseCorba(kStoreIdl);
  PresentationSet client = MustApply(
      *idl, Side::kClient,
      "Store_write(char *[length_is(len)] data, int len);");
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Store"), &diags);
  EXPECT_EQ(diags.CountCode("FLEX010"), 0) << diags.ToString();
}

// --- FLEX011 / FLEX012: the §4 advisor notes (opt-in) ---

TEST(FlexLintTest, Flex011ElidableCopyAdvisor) {
  auto idl = MustParseCorba(R"(
    interface Adv { void send(in sequence<octet> payload); };
  )");
  PresentationSet client = MustApply(*idl, Side::kClient);
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Adv"), &diags, /*advisors=*/true);
  EXPECT_EQ(diags.CountCode("FLEX011"), 1) << diags.ToString();
  EXPECT_EQ(diags.FindCode("FLEX011")->severity, DiagSeverity::kNote);
  EXPECT_FALSE(diags.HasErrors());
  EXPECT_FALSE(diags.HasWarnings());
}

TEST(FlexLintTest, Flex011SilencedByAnnotationOrDefault) {
  auto idl = MustParseCorba(R"(
    interface Adv { void send(in sequence<octet> payload); };
  )");
  {
    // Advisors are opt-in: a bare --lint stays quiet.
    PresentationSet client = MustApply(*idl, Side::kClient);
    DiagnosticSink diags;
    EXPECT_EQ(Lint(*idl, *client.Find("Adv"), &diags), 0);
  }
  {
    // Annotating the buffer answers the advisor.
    PresentationSet client = MustApply(
        *idl, Side::kClient, "Adv_send(char *[trashable] payload);");
    DiagnosticSink diags;
    Lint(*idl, *client.Find("Adv"), &diags, /*advisors=*/true);
    EXPECT_EQ(diags.CountCode("FLEX011"), 0) << diags.ToString();
  }
}

TEST(FlexLintTest, Flex012FixedSizeOutForcedThroughMove) {
  auto idl = MustParseCorba(R"(
    struct Pair { long a; long b; };
    interface Stat { void stat(out Pair info); };
  )");
  PresentationSet client = MustApply(*idl, Side::kClient);
  // Fixed-size out data defaults to caller storage; forcing the CORBA move
  // path costs a per-call allocation the advisor flags.
  Pres(client, "Stat").FindOp("stat")->FindParam("info")->alloc =
      AllocPolicy::kStub;
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Stat"), &diags, /*advisors=*/true);
  EXPECT_EQ(diags.CountCode("FLEX012"), 1) << diags.ToString();
}

TEST(FlexLintTest, Flex012NotOnCallerStorageDefault) {
  auto idl = MustParseCorba(R"(
    struct Pair { long a; long b; };
    interface Stat { void stat(out Pair info); };
  )");
  PresentationSet client = MustApply(*idl, Side::kClient);
  DiagnosticSink diags;
  Lint(*idl, *client.Find("Stat"), &diags, /*advisors=*/true);
  EXPECT_EQ(diags.CountCode("FLEX012"), 0) << diags.ToString();
}

// --- stage 2: the marshal-plan verifier ---

class PlanVerifierTest : public ::testing::Test {
 protected:
  void LoadStore(Side side, std::string_view pdl = "") {
    idl_ = MustParseCorba(kStoreIdl);
    set_ = MustApply(*idl_, side, pdl);
  }

  const OperationDecl& Op(std::string_view name) {
    for (const OperationDecl& op : idl_->interfaces[0].ops) {
      if (op.name == name) {
        return op;
      }
    }
    ADD_FAILURE() << "no op " << name;
    return idl_->interfaces[0].ops[0];
  }

  MarshalProgram Build(std::string_view op_name) {
    const OpPresentation* pres =
        set_.Find(idl_->interfaces[0].name)->FindOp(op_name);
    EXPECT_NE(pres, nullptr);
    return MarshalProgram::Build(Op(op_name), *pres);
  }

  std::unique_ptr<InterfaceFile> idl_;
  PresentationSet set_;
};

TEST_F(PlanVerifierTest, CompiledProgramsVerifyClean) {
  for (Side side : {Side::kClient, Side::kServer}) {
    LoadStore(side);
    for (const OperationDecl& op : idl_->interfaces[0].ops) {
      MarshalProgram program = Build(op.name);
      DiagnosticSink diags;
      EXPECT_EQ(VerifyProgram(program, "test.idl", &diags), 0)
          << op.name << ": " << diags.ToString();
    }
  }
}

TEST_F(PlanVerifierTest, Flex101StreamMissingItems) {
  LoadStore(Side::kClient);
  MarshalProgram program = Build("touch");
  MarshalPlanView plan = program.Plan();
  plan.request.clear();  // the in-param vanished from the wire
  DiagnosticSink diags;
  VerifyMarshalPlan(Op("touch"), program.presentation(), plan, "test.idl",
                    &diags);
  EXPECT_GE(diags.CountCode("FLEX101"), 1) << diags.ToString();
}

TEST_F(PlanVerifierTest, Flex101ItemDeviatesFromIdlOrder) {
  LoadStore(Side::kClient);
  MarshalProgram program = Build("scale");
  MarshalPlanView plan = program.Plan();
  std::swap(plan.request[0], plan.request[1]);  // data/factor reordered
  DiagnosticSink diags;
  VerifyMarshalPlan(Op("scale"), program.presentation(), plan, "test.idl",
                    &diags);
  EXPECT_GE(diags.CountCode("FLEX101"), 1) << diags.ToString();
}

TEST_F(PlanVerifierTest, Flex102SlotOutOfRange) {
  LoadStore(Side::kClient);
  MarshalProgram program = Build("touch");
  MarshalPlanView plan = program.Plan();
  plan.request[0].slot = 99;
  DiagnosticSink diags;
  VerifyMarshalPlan(Op("touch"), program.presentation(), plan, "test.idl",
                    &diags);
  EXPECT_EQ(diags.CountCode("FLEX102"), 1) << diags.ToString();
}

TEST_F(PlanVerifierTest, Flex103LengthMarshaledAfterBuffer) {
  LoadStore(Side::kClient, "Store_slice(int n, char *[length_is(n)] src);");
  MarshalProgram program = Build("slice");
  {
    // Negative: the compiled plan marshals n (slot 0) before src.
    DiagnosticSink diags;
    EXPECT_EQ(VerifyProgram(program, "test.idl", &diags), 0)
        << diags.ToString();
  }
  // Swap the slots: the stream order still matches the IDL, but src now
  // lands in the slot the unmarshaler reads its own length from.
  MarshalPlanView plan = program.Plan();
  std::swap(plan.request[0].slot, plan.request[1].slot);
  DiagnosticSink diags;
  VerifyMarshalPlan(Op("slice"), program.presentation(), plan, "test.idl",
                    &diags);
  EXPECT_EQ(diags.CountCode("FLEX103"), 1) << diags.ToString();
  EXPECT_EQ(diags.CountCode("FLEX101"), 0);  // item order untouched
}

TEST_F(PlanVerifierTest, Flex104ResultNotInFinalSlot) {
  LoadStore(Side::kClient);
  MarshalProgram program = Build("touch");
  MarshalPlanView plan = program.Plan();
  ASSERT_EQ(plan.reply.size(), 1u);
  ASSERT_TRUE(plan.reply[0].is_result);
  plan.reply[0].slot = 0;  // ticks's slot, not the final one
  DiagnosticSink diags;
  VerifyMarshalPlan(Op("touch"), program.presentation(), plan, "test.idl",
                    &diags);
  EXPECT_EQ(diags.CountCode("FLEX104"), 1) << diags.ToString();
}

TEST_F(PlanVerifierTest, Flex105SlotCarriesTwoItems) {
  LoadStore(Side::kClient);
  MarshalProgram program = Build("scale");
  MarshalPlanView plan = program.Plan();
  plan.request[1].slot = plan.request[0].slot;
  DiagnosticSink diags;
  VerifyMarshalPlan(Op("scale"), program.presentation(), plan, "test.idl",
                    &diags);
  EXPECT_EQ(diags.CountCode("FLEX105"), 1) << diags.ToString();
}

TEST(PlanVerifierFlattenTest, Flex106FlattenedFieldWithoutSlot) {
  auto idl = MustParseCorba(R"(
    struct Args { long a; long b; };
    interface Svc { void go(in Args x); };
  )");
  PresentationSet set;
  DiagnosticSink apply_diags;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient, "Svc_go(int a, int b);",
                           "t.pdl", &set, &apply_diags))
      << apply_diags.ToString();
  const OpPresentation* pres = set.Find("Svc")->FindOp("go");
  ASSERT_TRUE(pres->args_flattened);
  MarshalProgram program =
      MarshalProgram::Build(idl->interfaces[0].ops[0], *pres);
  {
    DiagnosticSink diags;
    EXPECT_EQ(VerifyProgram(program, "test.idl", &diags), 0)
        << diags.ToString();
  }
  MarshalPlanView plan = program.Plan();
  ASSERT_EQ(plan.request.size(), 1u);
  ASSERT_TRUE(plan.request[0].flattened);
  ASSERT_EQ(plan.request[0].fields.size(), 2u);
  plan.request[0].fields[1].slot = -1;  // field b would never be marshaled
  DiagnosticSink diags;
  VerifyMarshalPlan(idl->interfaces[0].ops[0], *pres, plan, "test.idl",
                    &diags);
  EXPECT_EQ(diags.CountCode("FLEX106"), 1) << diags.ToString();
}

// The paper's Figure 1 shape end-to-end: flattened Sun RPC read, struct
// args and a union result with a discriminant slot.
TEST(PlanVerifierFlattenTest, Flex106MissingUnionDiscriminant) {
  constexpr char kNfsIdl[] = R"(
    const NFS_MAXDATA = 8192;
    const NFS_FHSIZE = 32;
    enum nfsstat { NFS_OK = 0, NFSERR_IO = 5 };
    struct nfs_fh { opaque data[NFS_FHSIZE]; };
    struct fattr { unsigned size; unsigned mtime; };
    struct readargs {
      nfs_fh file;
      unsigned offset;
      unsigned count;
      unsigned totalcount;
    };
    struct readokres { fattr attributes; opaque data<NFS_MAXDATA>; };
    union readres switch (nfsstat status) {
      case NFS_OK: readokres reply;
      default: void;
    };
    program NFS_PROGRAM {
      version NFS_VERSION {
        readres NFSPROC_READ(readargs) = 6;
      } = 2;
    } = 100003;
  )";
  DiagnosticSink parse_diags;
  auto idl = ParseSunRpc(kNfsIdl, "nfs.x", &parse_diags);
  ASSERT_NE(idl, nullptr) << parse_diags.ToString();
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &parse_diags))
      << parse_diags.ToString();
  PresentationSet set;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kClient,
                           "[comm_status] int NFSPROC_READ(file, offset, "
                           "count, totalcount, [special] data, attributes, "
                           "status);",
                           "nfs.pdl", &set, &parse_diags))
      << parse_diags.ToString();
  const OperationDecl& op = idl->interfaces[0].ops[0];
  const OpPresentation* pres = set.Find("NFS_VERSION")->FindOp(op.name);
  ASSERT_NE(pres, nullptr);
  MarshalProgram program = MarshalProgram::Build(op, *pres);
  {
    DiagnosticSink diags;
    EXPECT_EQ(VerifyProgram(program, "nfs.x", &diags), 0)
        << diags.ToString();
  }
  MarshalPlanView plan = program.Plan();
  PlanItemView* result = nullptr;
  for (PlanItemView& item : plan.reply) {
    if (item.is_result) {
      result = &item;
    }
  }
  ASSERT_NE(result, nullptr);
  ASSERT_TRUE(result->flattened);
  ASSERT_GE(result->disc_slot, 0);
  result->disc_slot = -1;  // the status arm selector vanished
  DiagnosticSink diags;
  VerifyMarshalPlan(op, *pres, plan, "nfs.x", &diags);
  EXPECT_GE(diags.CountCode("FLEX106"), 1) << diags.ToString();
}

// --- stage 3: the flexspec wire-equivalence prover ---

// Positives corrupt one superinstruction of a correctly compiled SpecPlan;
// each corruption class must map to its own stable FLEX2xx code.
class SpecVerifierTest : public ::testing::Test {
 protected:
  static constexpr char kMiniNfs[] = R"(
    const NFS_MAXDATA = 8192;
    const NFS_FHSIZE = 32;
    enum nfsstat { NFS_OK = 0, NFSERR_IO = 5 };
    struct nfs_fh { opaque data[NFS_FHSIZE]; };
    struct fattr { unsigned size; unsigned mtime; };
    struct readargs {
      nfs_fh file;
      unsigned offset;
      unsigned count;
      unsigned totalcount;
    };
    struct readokres { fattr attributes; opaque data<NFS_MAXDATA>; };
    union readres switch (nfsstat status) {
      case NFS_OK: readokres reply;
      default: void;
    };
    program NFS_PROGRAM {
      version NFS_VERSION {
        readres NFSPROC_READ(readargs) = 6;
      } = 2;
    } = 100003;
  )";

  void SetUp() override {
    DiagnosticSink diags;
    idl_ = ParseSunRpc(kMiniNfs, "nfs.x", &diags);
    ASSERT_NE(idl_, nullptr) << diags.ToString();
    ASSERT_TRUE(AnalyzeInterfaceFile(idl_.get(), &diags))
        << diags.ToString();
    ASSERT_TRUE(ApplyPdlText(*idl_, Side::kClient,
                             "[comm_status] int NFSPROC_READ(file, offset, "
                             "count, totalcount, [special] data, "
                             "attributes, status);",
                             "nfs.pdl", &set_, &diags))
        << diags.ToString();
    op_ = &idl_->interfaces[0].ops[0];
    pres_ = set_.Find("NFS_VERSION")->FindOp("NFSPROC_READ");
    ASSERT_NE(pres_, nullptr);
    plan_ = CompileSpecPlan(*op_, *pres_);
  }

  int Verify(DiagnosticSink* diags) {
    return VerifySpecPlan(*op_, *pres_, plan_, "nfs.x", diags);
  }

  SpecProgram& Stream(SpecStream s) {
    return plan_.streams[static_cast<size_t>(s)];
  }

  // First superinstruction of `kind` in `s`; the fixture's streams are
  // known to contain each kind the mutations below target.
  SpecOp& OpOfKind(SpecStream s, SpecOpKind kind) {
    for (SpecOp& op : Stream(s).ops) {
      if (op.kind == kind) {
        return op;
      }
    }
    ADD_FAILURE() << "no " << SpecOpKindName(kind) << " in stream";
    return Stream(s).ops.front();
  }

  std::unique_ptr<InterfaceFile> idl_;
  PresentationSet set_;
  const OperationDecl* op_ = nullptr;
  const OpPresentation* pres_ = nullptr;
  SpecPlan plan_;
};

TEST_F(SpecVerifierTest, CompiledPlansProveClean) {
  ASSERT_TRUE(
      plan_.has_stream[static_cast<size_t>(SpecStream::kMarshalRequest)]);
  ASSERT_TRUE(
      plan_.has_stream[static_cast<size_t>(SpecStream::kUnmarshalReply)]);
  DiagnosticSink diags;
  EXPECT_EQ(Verify(&diags), 0) << diags.ToString();
}

TEST_F(SpecVerifierTest, Flex201EffectCountDiverges) {
  Stream(SpecStream::kMarshalRequest).ops.pop_back();
  DiagnosticSink diags;
  EXPECT_GE(Verify(&diags), 1);
  EXPECT_GE(diags.CountCode("FLEX201"), 1) << diags.ToString();
}

TEST_F(SpecVerifierTest, Flex202EffectKindDiverges) {
  SpecOp& op =
      OpOfKind(SpecStream::kMarshalRequest, SpecOpKind::kPutScalarSlot);
  op.kind = SpecOpKind::kPutBytesFixed;  // scalar became a byte run
  op.count = 4;
  DiagnosticSink diags;
  EXPECT_GE(Verify(&diags), 1);
  EXPECT_GE(diags.CountCode("FLEX202"), 1) << diags.ToString();
}

TEST_F(SpecVerifierTest, Flex203OperandDiverges) {
  SpecOp& op =
      OpOfKind(SpecStream::kMarshalRequest, SpecOpKind::kPutScalarSlot);
  op.slot += 1;  // reads the neighboring argument
  DiagnosticSink diags;
  EXPECT_GE(Verify(&diags), 1);
  EXPECT_GE(diags.CountCode("FLEX203"), 1) << diags.ToString();
}

TEST_F(SpecVerifierTest, Flex204LengthDisciplineDiverges) {
  SpecOp& op =
      OpOfKind(SpecStream::kUnmarshalReply, SpecOpKind::kGetSeqBytes);
  op.bound += 4;  // admits wire lengths the plan rejects
  DiagnosticSink diags;
  EXPECT_GE(Verify(&diags), 1);
  EXPECT_GE(diags.CountCode("FLEX204"), 1) << diags.ToString();
}

TEST_F(SpecVerifierTest, Flex206DestinationPolicyDiverges) {
  SpecOp& op =
      OpOfKind(SpecStream::kUnmarshalReply, SpecOpKind::kGetSeqBytes);
  op.special = !op.special;  // bypasses the [special] copy routine
  DiagnosticSink diags;
  EXPECT_GE(Verify(&diags), 1);
  EXPECT_GE(diags.CountCode("FLEX206"), 1) << diags.ToString();
}

TEST_F(SpecVerifierTest, Flex207UnionDiscriminantDiverges) {
  SpecOp& op =
      OpOfKind(SpecStream::kUnmarshalReply, SpecOpKind::kGetUnionDisc);
  op.label += 1;  // decodes the wrong arm as success
  DiagnosticSink diags;
  EXPECT_GE(Verify(&diags), 1);
  EXPECT_GE(diags.CountCode("FLEX207"), 1) << diags.ToString();
}

TEST(SpecVerifierRejectionTest, Flex205ReportsUnspecializableStream) {
  // sequence<long> needs per-element byte swapping the superinstruction
  // set does not express: the compiler must reject, and the rejection
  // surfaces as an informational FLEX205 — never as miscompiled code.
  auto idl =
      MustParseCorba("interface V { void push(in sequence<long> v); };");
  PresentationSet set = MustApply(*idl, Side::kClient);
  const OperationDecl& op = idl->interfaces[0].ops[0];
  const OpPresentation* pres = set.Find("V")->FindOp("push");
  ASSERT_NE(pres, nullptr);
  SpecPlan plan = CompileSpecPlan(op, *pres);
  EXPECT_FALSE(
      plan.has_stream[static_cast<size_t>(SpecStream::kMarshalRequest)]);
  DiagnosticSink diags;
  // Absent streams are not proof obligations...
  EXPECT_EQ(VerifySpecPlan(op, *pres, plan, "t.idl", &diags), 0)
      << diags.ToString();
  // ...but they are reportable, with the compiler's reason.
  EXPECT_GE(ReportUnspecializedStreams(plan, "t.idl", &diags), 1);
  EXPECT_GE(diags.CountCode("FLEX205"), 1) << diags.ToString();
}

TEST(SpecVerifierCatalogTest, Stage3CodesAreCatalogued) {
  for (const char* code : {"FLEX201", "FLEX202", "FLEX203", "FLEX204",
                           "FLEX205", "FLEX206", "FLEX207"}) {
    const FlexCodeInfo* info = FindFlexCode(code);
    ASSERT_NE(info, nullptr) << code;
    // FLEX205 is advice (an unspecialized stream still interprets
    // correctly); every divergence code is a hard error.
    EXPECT_EQ(info->severity, std::string_view(code) == "FLEX205"
                                  ? DiagSeverity::kWarning
                                  : DiagSeverity::kError)
        << code;
  }
}

// --- bind-time wiring: SetVerifyPlansAtBind ---

TEST(BindVerifyTest, VerifiedBindSucceedsOnSoundPrograms) {
  struct FlagGuard {
    ~FlagGuard() { SetVerifyPlansAtBind(false); }
  } guard;
  EXPECT_FALSE(VerifyPlansAtBind());
  SetVerifyPlansAtBind(true);
  EXPECT_TRUE(VerifyPlansAtBind());

  auto idl = MustParseCorba("interface Echo { long bump(in long x); };");
  PresentationSet client = MustApply(*idl, Side::kClient);
  PresentationSet server = MustApply(*idl, Side::kServer);
  Kernel kernel;
  FastPath fastpath{&kernel};
  Task* client_task = kernel.CreateTask("client");
  Task* server_task = kernel.CreateTask("server");

  const InterfaceDecl& itf = idl->interfaces[0];
  ServerObject object(itf, *server.Find("Echo"), server_task);
  EXPECT_TRUE(object.verify_status().ok())
      << object.verify_status().ToString();
  Port* port = ExportServer(&kernel, &fastpath, &object);
  auto conn = RpcConnection::Bind(&kernel, &fastpath, client_task, port,
                                  object, itf, *client.Find("Echo"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
}

}  // namespace
}  // namespace flexrpc
