// Unit tests for the PDL parser (syntax only; resolution is tested in
// pdl_apply_test.cc).

#include <gtest/gtest.h>

#include "src/pdl/pdl_parser.h"

namespace flexrpc {
namespace {

std::unique_ptr<PdlFile> Parse(std::string_view src, DiagnosticSink* diags) {
  return ParsePdl(src, "test.pdl", diags);
}

std::unique_ptr<PdlFile> ParseOk(std::string_view src) {
  DiagnosticSink diags;
  auto file = Parse(src, &diags);
  EXPECT_FALSE(diags.HasErrors()) << diags.ToString();
  return file;
}

TEST(PdlParserTest, PaperSysLogExample) {
  // The paper §3 example: alternate string presentation with explicit
  // length, with placeholders for the implicit object/exception params.
  auto file =
      ParseOk("SysLog_write_msg(,, char *[length_is(length)] msg,"
              " int length);");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(file->ops.size(), 1u);
  const PdlOpDecl& op = file->ops[0];
  EXPECT_EQ(op.func_name, "SysLog_write_msg");
  ASSERT_EQ(op.slots.size(), 4u);
  EXPECT_TRUE(op.slots[0].empty);
  EXPECT_TRUE(op.slots[1].empty);
  const PdlSlot& msg = op.slots[2];
  EXPECT_EQ(msg.name, "msg");
  EXPECT_EQ(msg.ctype_text, "char *");
  ASSERT_EQ(msg.attrs.size(), 1u);
  EXPECT_EQ(msg.attrs[0].name, "length_is");
  ASSERT_EQ(msg.attrs[0].args.size(), 1u);
  EXPECT_EQ(msg.attrs[0].args[0], "length");
  const PdlSlot& len = op.slots[3];
  EXPECT_EQ(len.name, "length");
  EXPECT_EQ(len.ctype_text, "int");
  EXPECT_TRUE(len.attrs.empty());
}

TEST(PdlParserTest, PaperNfsReadExample) {
  // Figure 1 of the paper, modulo whitespace.
  auto file = ParseOk(R"(
    [comm_status] int nfsproc_read(, nfs_fh *file,
        unsigned offset, unsigned count, unsigned totalcount,
        [special] user_data *data, fattr *attributes, nfsstat *status);
  )");
  ASSERT_NE(file, nullptr);
  const PdlOpDecl& op = file->ops[0];
  ASSERT_EQ(op.op_attrs.size(), 1u);
  EXPECT_EQ(op.op_attrs[0].name, "comm_status");
  EXPECT_EQ(op.return_ctype, "int");
  EXPECT_EQ(op.func_name, "nfsproc_read");
  ASSERT_EQ(op.slots.size(), 8u);
  EXPECT_TRUE(op.slots[0].empty);
  EXPECT_EQ(op.slots[1].name, "file");
  EXPECT_EQ(op.slots[1].ctype_text, "nfs_fh *");
  const PdlSlot& data = op.slots[5];
  EXPECT_EQ(data.name, "data");
  ASSERT_EQ(data.attrs.size(), 1u);
  EXPECT_EQ(data.attrs[0].name, "special");
  EXPECT_EQ(op.slots[7].name, "status");
}

TEST(PdlParserTest, TrashablePreservedExamples) {
  // Figures 8 and 9 of the paper.
  auto client = ParseOk(
      "void FileIO_write(char *[trashable] _buffer, unsigned long _length);");
  EXPECT_EQ(client->ops[0].slots[0].attrs[0].name, "trashable");
  auto server = ParseOk(
      "void FileIO_write(char *[preserved] _buffer, unsigned long _length);");
  EXPECT_EQ(server->ops[0].slots[0].attrs[0].name, "preserved");
}

TEST(PdlParserTest, ReturnAttrsAfterParen) {
  auto file = ParseOk("FileIO_read()[dealloc(never)];");
  const PdlOpDecl& op = file->ops[0];
  EXPECT_TRUE(op.slots.empty());
  ASSERT_EQ(op.return_attrs.size(), 1u);
  EXPECT_EQ(op.return_attrs[0].name, "dealloc");
  EXPECT_EQ(op.return_attrs[0].args[0], "never");
}

TEST(PdlParserTest, InterfaceTrustDecl) {
  auto file = ParseOk("interface FileIO [leaky, unprotected];");
  ASSERT_EQ(file->interfaces.size(), 1u);
  EXPECT_EQ(file->interfaces[0].interface_name, "FileIO");
  ASSERT_EQ(file->interfaces[0].attrs.size(), 2u);
  EXPECT_EQ(file->interfaces[0].attrs[0].name, "leaky");
  EXPECT_EQ(file->interfaces[0].attrs[1].name, "unprotected");
}

TEST(PdlParserTest, TypeDecl) {
  auto file = ParseOk("type user_data [special];");
  ASSERT_EQ(file->types.size(), 1u);
  EXPECT_EQ(file->types[0].type_name, "user_data");
  EXPECT_EQ(file->types[0].attrs[0].name, "special");
}

TEST(PdlParserTest, MultipleDecls) {
  auto file = ParseOk(R"(
    interface FileIO [trust(leaky)];
    type opaque [special];
    FileIO_read()[alloc(user)];
  )");
  EXPECT_EQ(file->interfaces.size(), 1u);
  EXPECT_EQ(file->types.size(), 1u);
  EXPECT_EQ(file->ops.size(), 1u);
  EXPECT_EQ(file->interfaces[0].attrs[0].args[0], "leaky");
}

TEST(PdlParserTest, EmptySlotListAllowed) {
  auto file = ParseOk("foo();");
  EXPECT_TRUE(file->ops[0].slots.empty());
}

TEST(PdlParserTest, AllPlaceholderSlots) {
  auto file = ParseOk("foo(,,);");
  ASSERT_EQ(file->ops[0].slots.size(), 3u);
  for (const PdlSlot& s : file->ops[0].slots) {
    EXPECT_TRUE(s.empty);
  }
}

TEST(PdlParserTest, MissingSemicolonIsError) {
  DiagnosticSink diags;
  EXPECT_EQ(Parse("foo()", &diags), nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(PdlParserTest, DanglingStarIsError) {
  DiagnosticSink diags;
  EXPECT_EQ(Parse("foo(char *);", &diags), nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(PdlParserTest, AttrArgsMustBeSimple) {
  DiagnosticSink diags;
  EXPECT_EQ(Parse("foo(char *[length_is(\"x\")] p);", &diags), nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(PdlParserTest, InterfaceDeclNeedsAttrs) {
  DiagnosticSink diags;
  EXPECT_EQ(Parse("interface FileIO;", &diags), nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

}  // namespace
}  // namespace flexrpc
