// Determinism and idempotence properties of the presentation pipeline:
// the same inputs always produce the same presentation, signature, and
// marshal-program shape — the foundation for bind-time caching.

#include <gtest/gtest.h>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/marshal/engine.h"
#include "src/pdl/apply.h"
#include "src/sig/signature.h"

namespace flexrpc {
namespace {

constexpr char kIdl[] = R"(
  interface FileIO {
    sequence<octet> read(in unsigned long count);
    unsigned long write(in sequence<octet> data);
  };
)";

constexpr char kPdl[] = R"(
  interface FileIO [leaky];
  FileIO_read()[dealloc(never)];
  FileIO_write(char *[preserved] data);
)";

bool SameParam(const ParamPresentation& a, const ParamPresentation& b) {
  return a.name == b.name && a.binding == b.binding &&
         a.explicit_length == b.explicit_length &&
         a.length_param == b.length_param && a.special == b.special &&
         a.trashable == b.trashable && a.preserved == b.preserved &&
         a.nonunique == b.nonunique && a.alloc == b.alloc &&
         a.dealloc == b.dealloc &&
         a.presentation_only == b.presentation_only;
}

bool SamePresentation(const InterfacePresentation& a,
                      const InterfacePresentation& b) {
  if (a.trust != b.trust || a.ops.size() != b.ops.size()) {
    return false;
  }
  for (size_t i = 0; i < a.ops.size(); ++i) {
    const OpPresentation& oa = a.ops[i];
    const OpPresentation& ob = b.ops[i];
    if (oa.op_name != ob.op_name || oa.comm_status != ob.comm_status ||
        oa.args_flattened != ob.args_flattened ||
        oa.result_flattened != ob.result_flattened ||
        oa.params.size() != ob.params.size()) {
      return false;
    }
    for (size_t p = 0; p < oa.params.size(); ++p) {
      if (!SameParam(oa.params[p], ob.params[p])) {
        return false;
      }
    }
    if (!SameParam(oa.result, ob.result)) {
      return false;
    }
  }
  return true;
}

TEST(PdlDeterminismTest, RepeatedApplicationIsIdentical) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(kIdl, "t.idl", &diags);
  ASSERT_NE(idl, nullptr);
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags));

  PresentationSet first;
  PresentationSet second;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kServer, kPdl, "p.pdl", &first,
                           &diags))
      << diags.ToString();
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kServer, kPdl, "p.pdl", &second,
                           &diags));
  EXPECT_TRUE(SamePresentation(*first.Find("FileIO"),
                               *second.Find("FileIO")));
}

TEST(PdlDeterminismTest, SignatureStableAcrossRepeatedBuilds) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(kIdl, "t.idl", &diags);
  ASSERT_NE(idl, nullptr);
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags));
  uint64_t h = SignatureHash(BuildSignature(idl->interfaces[0]));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SignatureHash(BuildSignature(idl->interfaces[0])), h);
  }
}

TEST(PdlDeterminismTest, MarshalProgramShapeStable) {
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(kIdl, "t.idl", &diags);
  ASSERT_NE(idl, nullptr);
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags));
  PresentationSet pres;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kServer, kPdl, "p.pdl", &pres,
                           &diags));
  const OperationDecl& op = idl->interfaces[0].ops[0];
  const OpPresentation& op_pres = *pres.Find("FileIO")->FindOp("read");
  MarshalProgram a = MarshalProgram::Build(op, op_pres);
  MarshalProgram b = MarshalProgram::Build(op, op_pres);
  EXPECT_EQ(a.slot_count(), b.slot_count());
  EXPECT_EQ(a.result_slot(), b.result_slot());
  EXPECT_EQ(a.SlotOf("count"), b.SlotOf("count"));
}

TEST(PdlDeterminismTest, ConflictingAttributesLastWriteWins) {
  // Two decls touching the same op: later PDL statements refine earlier
  // ones deterministically.
  DiagnosticSink diags;
  auto idl = ParseCorbaIdl(kIdl, "t.idl", &diags);
  ASSERT_NE(idl, nullptr);
  ASSERT_TRUE(AnalyzeInterfaceFile(idl.get(), &diags));
  PresentationSet pres;
  ASSERT_TRUE(ApplyPdlText(*idl, Side::kServer,
                           "FileIO_read()[dealloc(never)];\n"
                           "FileIO_read()[dealloc(always)];",
                           "p.pdl", &pres, &diags))
      << diags.ToString();
  EXPECT_EQ(pres.Find("FileIO")->FindOp("read")->result.dealloc,
            DeallocPolicy::kAlways);
}

}  // namespace
}  // namespace flexrpc
