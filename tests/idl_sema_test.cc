// Unit tests for semantic analysis: inheritance flattening, duplicate
// detection, and recursive-type rejection.

#include <gtest/gtest.h>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"

namespace flexrpc {
namespace {

std::unique_ptr<InterfaceFile> ParseAndAnalyze(std::string_view src,
                                               DiagnosticSink* diags) {
  auto file = ParseCorbaIdl(src, "test.idl", diags);
  if (file == nullptr) {
    return nullptr;
  }
  if (!AnalyzeInterfaceFile(file.get(), diags)) {
    return nullptr;
  }
  return file;
}

TEST(SemaTest, CleanFilePasses) {
  DiagnosticSink diags;
  auto file = ParseAndAnalyze(R"(
    interface I { void f(in long a, out long b); };
  )", &diags);
  EXPECT_NE(file, nullptr) << diags.ToString();
}

TEST(SemaTest, InheritanceIsFlattened) {
  DiagnosticSink diags;
  auto file = ParseAndAnalyze(R"(
    interface A { void fa(); };
    interface B : A { void fb(); };
  )", &diags);
  ASSERT_NE(file, nullptr) << diags.ToString();
  const InterfaceDecl* b = file->FindInterface("B");
  ASSERT_EQ(b->ops.size(), 2u);
  EXPECT_EQ(b->ops[0].name, "fa");
  EXPECT_EQ(b->ops[1].name, "fb");
  EXPECT_EQ(b->ops[0].opnum, 0u);
  EXPECT_EQ(b->ops[1].opnum, 1u);
  EXPECT_TRUE(b->bases.empty());  // consumed by flattening
}

TEST(SemaTest, DiamondInheritanceContributesOnce) {
  DiagnosticSink diags;
  auto file = ParseAndAnalyze(R"(
    interface Root { void r(); };
    interface L : Root { void l(); };
    interface R : Root { void rr(); };
    interface D : L, R { void d(); };
  )", &diags);
  ASSERT_NE(file, nullptr) << diags.ToString();
  const InterfaceDecl* d = file->FindInterface("D");
  // r, l, rr, d — Root::r() exactly once.
  ASSERT_EQ(d->ops.size(), 4u);
  int count_r = 0;
  for (const auto& op : d->ops) {
    if (op.name == "r") {
      ++count_r;
    }
  }
  EXPECT_EQ(count_r, 1);
}

TEST(SemaTest, UnknownBaseRejected) {
  DiagnosticSink diags;
  EXPECT_EQ(ParseAndAnalyze("interface B : Missing { void f(); };", &diags),
            nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SemaTest, SelfInheritanceRejected) {
  DiagnosticSink diags;
  EXPECT_EQ(ParseAndAnalyze("interface A : A { void f(); };", &diags),
            nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SemaTest, DuplicateOperationRejected) {
  DiagnosticSink diags;
  EXPECT_EQ(ParseAndAnalyze(R"(
    interface I { void f(); void f(in long x); };
  )", &diags), nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SemaTest, InheritedNameCollisionRejected) {
  DiagnosticSink diags;
  EXPECT_EQ(ParseAndAnalyze(R"(
    interface A { void f(); };
    interface B : A { void f(); };
  )", &diags), nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SemaTest, DuplicateParameterRejected) {
  DiagnosticSink diags;
  EXPECT_EQ(ParseAndAnalyze("interface I { void f(in long x, in long x); };",
                            &diags),
            nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SemaTest, RecursiveStructRejected) {
  DiagnosticSink diags;
  // 'struct node' contains itself via a sequence? A sequence introduces
  // indirection but our by-value rule still flags direct self-containment.
  EXPECT_EQ(ParseAndAnalyze(R"(
    struct a { long x; b inner; };
    struct b { a back; };
    interface I { void f(in a v); };
  )", &diags), nullptr);  // 'b' unknown when 'a' is parsed
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SemaTest, MutuallyRecursiveStructsRejected) {
  DiagnosticSink diags;
  auto file = ParseCorbaIdl(R"(
    struct a { long x; };
    interface I { void f(in a v); };
  )", "test.idl", &diags);
  ASSERT_NE(file, nullptr);
  // Manufacture the recursion directly in the type table (the grammar makes
  // it hard to spell): a.self = a.
  Type* a = const_cast<Type*>(file->types.FindNamed("a"));
  file->types.AddField(a, "self", a);
  EXPECT_FALSE(AnalyzeInterfaceFile(file.get(), &diags));
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SemaTest, DuplicateInterfaceRejected) {
  DiagnosticSink diags;
  EXPECT_EQ(ParseAndAnalyze(R"(
    interface I { void f(); };
    interface I { void g(); };
  )", &diags), nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

}  // namespace
}  // namespace flexrpc
