// Tests for the NFS experiment (paper §4.1): the file server, the four
// client stub variants, and the network model.

#include <gtest/gtest.h>

#include "src/apps/nfs.h"
#include "src/net/sunrpc.h"

namespace flexrpc {
namespace {

TEST(LinkModelTest, TransferTimeScalesWithBytes) {
  LinkModel link;
  double small = link.TransferSeconds(100);
  double large = link.TransferSeconds(100000);
  EXPECT_GT(large, small * 100);  // dominated by serialization at 10 Mbit/s
  VirtualClock clock;
  link.Transfer(8192, &clock);
  EXPECT_GT(clock.now_nanos(), 0u);
}

TEST(LinkModelTest, EmptyDatagramStillCostsAPacket) {
  LinkModel link;
  EXPECT_GT(link.TransferSeconds(0), 0.0);
}

TEST(SunRpcHeaderTest, CallRoundTrip) {
  XdrWriter w;
  EncodeSunRpcCall(&w, SunRpcCall{12345, 100003, 2, 6});
  XdrReader r(w.span());
  auto call = DecodeSunRpcCall(&r);
  ASSERT_TRUE(call.ok()) << call.status().ToString();
  EXPECT_EQ(call->xid, 12345u);
  EXPECT_EQ(call->program, 100003u);
  EXPECT_EQ(call->version, 2u);
  EXPECT_EQ(call->procedure, 6u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SunRpcHeaderTest, ReplyRoundTrip) {
  XdrWriter w;
  EncodeSunRpcReplySuccess(&w, 777);
  XdrReader r(w.span());
  EXPECT_TRUE(DecodeSunRpcReplySuccess(&r, 777).ok());
  XdrReader r2(w.span());
  EXPECT_FALSE(DecodeSunRpcReplySuccess(&r2, 778).ok());  // xid mismatch
}

TEST(SunRpcHeaderTest, StaleXidIsRetryable) {
  // A well-formed reply carrying a different xid is a late duplicate of an
  // earlier call, not wire damage: the decoder must report it with the
  // retryable kUnavailable so the transport discards it and keeps waiting.
  XdrWriter w;
  EncodeSunRpcReplySuccess(&w, 777);
  XdrReader r(w.span());
  Status st = DecodeSunRpcReplySuccess(&r, 778);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST(SunRpcHeaderTest, MalformedReplyIsDataLoss) {
  // Truncated mid-header: the conversation is broken, not retryable.
  XdrWriter w;
  EncodeSunRpcReplySuccess(&w, 5);
  XdrReader truncated(ByteSpan(w.span().data(), 8));
  EXPECT_EQ(DecodeSunRpcReplySuccess(&truncated, 5).code(),
            StatusCode::kDataLoss);
  // Non-SUCCESS accept status is likewise terminal.
  XdrWriter denied;
  denied.PutU32(6);  // xid
  denied.PutU32(1);  // REPLY
  denied.PutU32(1);  // MSG_DENIED
  XdrReader r(denied.span());
  EXPECT_EQ(DecodeSunRpcReplySuccess(&r, 6).code(), StatusCode::kDataLoss);
}

TEST(SunRpcHeaderTest, ReplyToCallMismatchRejected) {
  XdrWriter w;
  EncodeSunRpcCall(&w, SunRpcCall{1, 2, 3, 4});
  XdrReader r(w.span());
  // xid matches but msg_type says CALL — structurally wrong, kDataLoss.
  EXPECT_EQ(DecodeSunRpcReplySuccess(&r, 1).code(), StatusCode::kDataLoss);
}

TEST(NfsFileServerTest, ServesCorrectBytes) {
  NfsFileServer server(64 * 1024, /*seed=*/11);
  XdrWriter request;
  EncodeSunRpcCall(&request, SunRpcCall{1, kNfsProgram, kNfsVersion,
                                        kNfsProcRead});
  uint8_t fh[kNfsFhSize] = {};
  request.PutBytes(fh, sizeof(fh));
  request.PutU32(8192);  // offset
  request.PutU32(4096);  // count
  request.PutU32(4096);  // totalcount

  XdrWriter reply;
  ASSERT_TRUE(server.Handle(request.span(), &reply).ok());
  XdrReader r(reply.span());
  ASSERT_TRUE(DecodeSunRpcReplySuccess(&r, 1).ok());
  EXPECT_EQ(r.GetU32().value(), 0u);  // NFS_OK
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(r.GetU32().ok());  // fattr fields
  }
  EXPECT_EQ(r.GetU32().value(), 4096u);  // data length
  auto bytes = r.GetBytes(4096);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(std::memcmp(*bytes, server.content() + 8192, 4096), 0);
}

TEST(NfsFileServerTest, ReadPastEofReturnsError) {
  NfsFileServer server(1024, 1);
  XdrWriter request;
  EncodeSunRpcCall(&request, SunRpcCall{2, kNfsProgram, kNfsVersion,
                                        kNfsProcRead});
  uint8_t fh[kNfsFhSize] = {};
  request.PutBytes(fh, sizeof(fh));
  request.PutU32(4096);
  request.PutU32(1024);
  request.PutU32(1024);
  XdrWriter reply;
  ASSERT_TRUE(server.Handle(request.span(), &reply).ok());
  XdrReader r(reply.span());
  ASSERT_TRUE(DecodeSunRpcReplySuccess(&r, 2).ok());
  EXPECT_EQ(r.GetU32().value(), 5u);  // NFSERR_IO
}

TEST(NfsFileServerTest, ShortReadAtEof) {
  NfsFileServer server(10000, 3);
  XdrWriter request;
  EncodeSunRpcCall(&request, SunRpcCall{3, kNfsProgram, kNfsVersion,
                                        kNfsProcRead});
  uint8_t fh[kNfsFhSize] = {};
  request.PutBytes(fh, sizeof(fh));
  request.PutU32(8192);
  request.PutU32(8192);
  request.PutU32(8192);
  XdrWriter reply;
  ASSERT_TRUE(server.Handle(request.span(), &reply).ok());
  XdrReader r(reply.span());
  ASSERT_TRUE(DecodeSunRpcReplySuccess(&r, 3).ok());
  EXPECT_EQ(r.GetU32().value(), 0u);
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(r.GetU32().ok());
  }
  EXPECT_EQ(r.GetU32().value(), 1808u);  // 10000 - 8192
}

TEST(NfsFileServerTest, UnknownProcedureRejected) {
  NfsFileServer server(1024, 1);
  XdrWriter request;
  EncodeSunRpcCall(&request, SunRpcCall{4, kNfsProgram, kNfsVersion, 99});
  XdrWriter reply;
  EXPECT_EQ(server.Handle(request.span(), &reply).code(),
            StatusCode::kUnimplemented);
}

class NfsClientTest : public ::testing::TestWithParam<NfsClient::StubKind> {
};

INSTANTIATE_TEST_SUITE_P(
    Stubs, NfsClientTest,
    ::testing::Values(NfsClient::StubKind::kGeneratedConventional,
                      NfsClient::StubKind::kGeneratedUserBuffer,
                      NfsClient::StubKind::kHandConventional,
                      NfsClient::StubKind::kHandUserBuffer),
    [](const auto& param_info) {
      switch (param_info.param) {
        case NfsClient::StubKind::kGeneratedConventional:
          return "GenConventional";
        case NfsClient::StubKind::kGeneratedUserBuffer:
          return "GenUserBuffer";
        case NfsClient::StubKind::kHandConventional:
          return "HandConventional";
        case NfsClient::StubKind::kHandUserBuffer:
          return "HandUserBuffer";
      }
      return "?";
    });

TEST_P(NfsClientTest, ReadsWholeFileCorrectly) {
  // ReadFile verifies content internally; 200 KB keeps the test quick
  // while crossing many 8 KB chunk boundaries.
  NfsFileServer server(200 * 1024, /*seed=*/5);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  auto stats = client.ReadFile(GetParam());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->bytes_read, 200u * 1024u);
  EXPECT_EQ(stats->rpc_calls, 25u);
  EXPECT_GT(stats->client_seconds, 0.0);
  EXPECT_GT(stats->network_server_seconds, 0.0);
  // Network time dominates at 10 Mbit/s — as in the paper's Figure 2.
  EXPECT_GT(stats->network_server_seconds, stats->client_seconds);
}

TEST(NfsClientWireTest, AllStubsProduceIdenticalRequests) {
  // The presentation must not change the network contract: all four stub
  // variants emit byte-identical request bodies.
  NfsFileServer server(8192, 9);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  uint8_t fh[kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));
  uint8_t dest[8192];
  NfsClient::ChunkArgs chunk{fh, 0, 8192, dest};

  std::vector<std::vector<uint8_t>> bodies;
  for (auto kind : {NfsClient::StubKind::kGeneratedConventional,
                    NfsClient::StubKind::kGeneratedUserBuffer,
                    NfsClient::StubKind::kHandConventional,
                    NfsClient::StubKind::kHandUserBuffer}) {
    XdrWriter w;
    auto r = client.EncodeRequest(kind, chunk, &w);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    bodies.emplace_back(w.span().begin(), w.span().end());
  }
  for (size_t i = 1; i < bodies.size(); ++i) {
    EXPECT_EQ(bodies[i], bodies[0]) << "variant " << i;
  }
}

}  // namespace
}  // namespace flexrpc
