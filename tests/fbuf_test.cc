// Tests for the fbuf substrate: pool lifecycle, aggregate splicing and
// splitting, refcount conservation, and the fbuf channel.

#include <gtest/gtest.h>

#include <cstring>

#include "src/fbuf/channel.h"
#include "src/fbuf/fbuf.h"
#include "src/support/rng.h"

namespace flexrpc {
namespace {

class FbufTest : public ::testing::Test {
 protected:
  Arena shared_{"shared-path"};
};

TEST_F(FbufTest, PoolAllocateFreeCycle) {
  FbufPool pool("p", &shared_, 4096, 4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.free_count(), 4u);

  auto fbuf = pool.Allocate();
  ASSERT_TRUE(fbuf.ok());
  EXPECT_EQ((*fbuf)->size(), 4096u);
  EXPECT_EQ((*fbuf)->refs(), 1u);
  EXPECT_EQ(pool.in_use(), 1u);

  (*fbuf)->Unref();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.allocations(), 1u);
}

TEST_F(FbufTest, PoolExhaustionIsReported) {
  FbufPool pool("p", &shared_, 128, 2);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.Allocate();
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.exhaustions(), 1u);
  (*a)->Unref();
  auto d = pool.Allocate();  // freed buffer becomes available again
  EXPECT_TRUE(d.ok());
  (*b)->Unref();
  (*d)->Unref();
}

TEST_F(FbufTest, VolatileFlagTracked) {
  FbufPool pool("p", &shared_, 128, 1);
  auto fbuf = pool.Allocate(/*volatile_buf=*/true);
  ASSERT_TRUE(fbuf.ok());
  EXPECT_TRUE((*fbuf)->is_volatile());
  (*fbuf)->Unref();
  auto again = pool.Allocate(false);
  EXPECT_FALSE((*again)->is_volatile());
  (*again)->Unref();
}

TEST_F(FbufTest, AggregateAppendAndCopyOut) {
  FbufPool pool("p", &shared_, 16, 4);
  FbufAggregate agg;
  for (int i = 0; i < 3; ++i) {
    auto fbuf = pool.Allocate();
    ASSERT_TRUE(fbuf.ok());
    std::memset((*fbuf)->data(), 'a' + i, 16);
    agg.Append(*fbuf, 0, 16);
    (*fbuf)->Unref();  // the aggregate keeps its own reference
  }
  EXPECT_EQ(agg.size(), 48u);
  EXPECT_EQ(agg.segment_count(), 3u);
  EXPECT_EQ(pool.in_use(), 3u);  // aggregate refs keep the buffers live

  char out[48];
  ASSERT_TRUE(agg.CopyOut(0, out, 48).ok());
  EXPECT_EQ(out[0], 'a');
  EXPECT_EQ(out[16], 'b');
  EXPECT_EQ(out[47], 'c');

  // Reads spanning segment boundaries.
  char mid[20];
  ASSERT_TRUE(agg.CopyOut(10, mid, 20).ok());
  EXPECT_EQ(mid[0], 'a');
  EXPECT_EQ(mid[6], 'b');

  agg.Clear();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST_F(FbufTest, CopyOutPastEndRejected) {
  FbufPool pool("p", &shared_, 16, 1);
  FbufAggregate agg;
  auto fbuf = pool.Allocate();
  agg.Append(*fbuf, 0, 16);
  (*fbuf)->Unref();
  char out[32];
  EXPECT_EQ(agg.CopyOut(0, out, 32).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(agg.CopyOut(10, out, 7).code(), StatusCode::kOutOfRange);
}

TEST_F(FbufTest, SpliceMovesSegmentsWithoutCopying) {
  FbufPool pool("p", &shared_, 16, 4);
  FbufAggregate a;
  FbufAggregate b;
  auto f1 = pool.Allocate();
  auto f2 = pool.Allocate();
  std::memset((*f1)->data(), 'x', 16);
  std::memset((*f2)->data(), 'y', 16);
  const uint8_t* data2 = (*f2)->data();
  a.Append(*f1, 0, 16);
  b.Append(*f2, 0, 16);
  (*f1)->Unref();
  (*f2)->Unref();

  a.Splice(&b);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(b.size(), 0u);
  // The spliced segment still points at the same memory: zero-copy.
  EXPECT_EQ(a.segments()[1].fbuf->data(), data2);
}

TEST_F(FbufTest, SplitPrefixTransfersAndSharesCorrectly) {
  FbufPool pool("p", &shared_, 16, 4);
  FbufAggregate agg;
  for (int i = 0; i < 2; ++i) {
    auto fbuf = pool.Allocate();
    std::memset((*fbuf)->data(), '0' + i, 16);
    agg.Append(*fbuf, 0, 16);
    (*fbuf)->Unref();
  }
  // Split in the middle of the second segment.
  auto prefix = agg.SplitPrefix(24);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->size(), 24u);
  EXPECT_EQ(agg.size(), 8u);

  char head[24];
  ASSERT_TRUE(prefix->CopyOut(0, head, 24).ok());
  EXPECT_EQ(head[0], '0');
  EXPECT_EQ(head[23], '1');
  char tail[8];
  ASSERT_TRUE(agg.CopyOut(0, tail, 8).ok());
  EXPECT_EQ(tail[0], '1');

  // The shared fbuf has two references now; everything returns on Clear.
  prefix->Clear();
  agg.Clear();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST_F(FbufTest, SplitMoreThanAvailableRejected) {
  FbufPool pool("p", &shared_, 16, 1);
  FbufAggregate agg;
  auto fbuf = pool.Allocate();
  agg.Append(*fbuf, 0, 10);
  (*fbuf)->Unref();
  EXPECT_EQ(agg.SplitPrefix(11).status().code(), StatusCode::kOutOfRange);
}

TEST_F(FbufTest, RefConservationUnderRandomSplitsAndSplices) {
  FbufPool pool("p", &shared_, 64, 16);
  Rng rng(7);
  std::vector<FbufAggregate> aggs(4);
  for (int step = 0; step < 500; ++step) {
    size_t pick = rng.NextBelow(aggs.size());
    switch (rng.NextBelow(3)) {
      case 0: {  // append fresh data
        auto fbuf = pool.Allocate();
        if (fbuf.ok()) {
          aggs[pick].Append(*fbuf, 0, 1 + rng.NextBelow(64));
          (*fbuf)->Unref();
        }
        break;
      }
      case 1: {  // split some prefix off into another aggregate
        if (aggs[pick].size() > 0) {
          auto prefix =
              aggs[pick].SplitPrefix(1 + rng.NextBelow(aggs[pick].size()));
          ASSERT_TRUE(prefix.ok());
          aggs[(pick + 1) % aggs.size()].Splice(&*prefix);
        }
        break;
      }
      case 2: {  // drop an aggregate's contents
        aggs[pick].Clear();
        break;
      }
    }
  }
  for (FbufAggregate& agg : aggs) {
    agg.Clear();
  }
  EXPECT_EQ(pool.in_use(), 0u);  // no leaked or double-freed buffers
}

TEST_F(FbufTest, ChannelRoundTrip) {
  Kernel kernel;
  FbufChannel channel(&kernel, &shared_, 1024, 8);
  channel.Serve([](uint32_t opnum, FbufAggregate* request,
                   FbufAggregate* reply) {
    EXPECT_EQ(opnum, 7u);
    *reply = std::move(*request);  // echo by reference
    return Status::Ok();
  });

  auto fbuf = channel.pool().Allocate();
  ASSERT_TRUE(fbuf.ok());
  std::memset((*fbuf)->data(), 0x5C, 100);
  FbufAggregate request;
  request.Append(*fbuf, 0, 100);
  (*fbuf)->Unref();

  FbufAggregate reply;
  ASSERT_TRUE(channel.Call(7, std::move(request), &reply).ok());
  EXPECT_EQ(reply.size(), 100u);
  uint8_t out[100];
  ASSERT_TRUE(reply.CopyOut(0, out, 100).ok());
  EXPECT_EQ(out[99], 0x5C);
  EXPECT_EQ(kernel.trap_count(), 2u);
  reply.Clear();
  EXPECT_EQ(channel.pool().in_use(), 0u);
}

TEST_F(FbufTest, ChannelWithoutServerFails) {
  Kernel kernel;
  FbufChannel channel(&kernel, &shared_, 1024, 2);
  FbufAggregate reply;
  EXPECT_EQ(channel.Call(1, FbufAggregate(), &reply).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace flexrpc
