// flexbind unit tests: the FailoverTracker state machine, the pipelined
// transport's Cancel/observer surface (including the corrupt-reply loss
// signal, DESIGN.md §11), and the BinderTransport's routing, cutover, and
// probe/reinstate behavior over scripted per-replica faults.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/apps/nfs.h"
#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/net/link.h"
#include "src/rpc/binder.h"
#include "src/rpc/failover.h"
#include "src/rpc/pipeline.h"
#include "src/rpc/retry.h"
#include "src/support/event_queue.h"
#include "src/support/status.h"
#include "src/support/timing.h"
#include "src/support/trace.h"

namespace flexrpc {
namespace {

// --- FailoverTracker: the pure health state machine ---------------------

FailoverPolicy FastFailover() {
  FailoverPolicy p;
  p.suspect_after = 2;
  p.probe_interval_nanos = 10'000'000;       // 10 ms
  p.max_probe_interval_nanos = 40'000'000;   // 40 ms cap
  return p;
}

TEST(FailoverTrackerTest, SuspectAfterConsecutiveFailures) {
  FailoverTracker t(FastFailover());
  EXPECT_TRUE(t.healthy());
  EXPECT_FALSE(t.OnFailure(100));  // 1 of 2: still healthy
  EXPECT_TRUE(t.healthy());
  EXPECT_TRUE(t.OnFailure(200));  // 2 of 2: the suspect transition
  EXPECT_EQ(t.health(), ReplicaHealth::kSuspect);
  EXPECT_FALSE(t.OnFailure(300));  // more evidence, no new transition
  EXPECT_EQ(t.next_probe_nanos(), 200u + 10'000'000u);
}

TEST(FailoverTrackerTest, SuccessResetsTheConsecutiveCount) {
  FailoverTracker t(FastFailover());
  EXPECT_FALSE(t.OnFailure(100));
  EXPECT_FALSE(t.OnSuccess());  // healthy -> healthy: no transition
  EXPECT_EQ(t.consecutive_failures(), 0u);
  // The count restarted, so it takes the full threshold again.
  EXPECT_FALSE(t.OnFailure(200));
  EXPECT_TRUE(t.OnFailure(300));
}

TEST(FailoverTrackerTest, ProbeBackoffDoublesAndCaps) {
  FailoverTracker t(FastFailover());
  t.OnFailure(0);
  t.OnFailure(0);  // suspect; first probe due at 10 ms
  EXPECT_FALSE(t.ProbeDue(9'999'999));
  EXPECT_TRUE(t.ProbeDue(10'000'000));
  t.OnProbeSent(10'000'000);
  EXPECT_EQ(t.health(), ReplicaHealth::kProbing);
  // Doubled to 20 ms for the retry...
  EXPECT_EQ(t.next_probe_nanos(), 10'000'000u + 20'000'000u);
  t.OnFailure(15'000'000);  // probe timed out: back to suspect
  EXPECT_EQ(t.health(), ReplicaHealth::kSuspect);
  t.OnProbeSent(30'000'000);
  // ...then 40 ms, which is also the cap.
  EXPECT_EQ(t.next_probe_nanos(), 30'000'000u + 40'000'000u);
  t.OnFailure(60'000'000);
  t.OnProbeSent(70'000'000);
  EXPECT_EQ(t.next_probe_nanos(), 70'000'000u + 40'000'000u);
}

TEST(FailoverTrackerTest, AnySuccessReinstatesAndResetsBackoff) {
  FailoverTracker t(FastFailover());
  t.OnFailure(0);
  t.OnFailure(0);
  t.OnProbeSent(10'000'000);
  EXPECT_TRUE(t.OnSuccess());  // the reinstate transition
  EXPECT_TRUE(t.healthy());
  EXPECT_EQ(t.consecutive_failures(), 0u);
  // Backoff reset: the next suspicion starts probing at the base interval.
  t.OnFailure(50'000'000);
  t.OnFailure(60'000'000);
  EXPECT_EQ(t.next_probe_nanos(), 60'000'000u + 10'000'000u);
}

// --- shared rigging -----------------------------------------------------

// 4-byte big-endian xid + filler; the echo handler reflects the request
// back, so the reply's PeekXid matches trivially.
std::vector<uint8_t> MakeRequest(uint32_t xid, size_t payload = 4) {
  std::vector<uint8_t> req = {
      static_cast<uint8_t>(xid >> 24), static_cast<uint8_t>(xid >> 16),
      static_cast<uint8_t>(xid >> 8), static_cast<uint8_t>(xid)};
  req.resize(req.size() + payload, 0x5A);
  return req;
}

PipelinePolicy FastPipeline() {
  PipelinePolicy p;
  p.window = 8;
  p.retry.initial_rto_nanos = 5'000'000;  // 5 ms: fast failure detection
  p.retry.max_rto_nanos = 40'000'000;
  p.retry.max_attempts = 12;
  p.retry.deadline_nanos = 2'000'000'000;
  p.retry.jitter_seed = 77;
  return p;
}

// N echo replicas behind one binder, each replica's wire scripted by its
// own FaultPlan pair. Executions are counted per (replica, xid).
class BinderRig {
 public:
  BinderRig(std::vector<std::pair<FaultPlan, FaultPlan>> plans,
            BinderPolicy binder_policy,
            PipelinePolicy pipeline_policy = FastPipeline())
      : events_(&clock_) {
    size_t n = plans.size();
    executions_.resize(n);
    std::vector<ReplicaGroup::ReplicaSpec> specs;
    for (size_t i = 0; i < n; ++i) {
      channels_.push_back(std::make_unique<DatagramChannel>(
          LinkModel(), std::move(plans[i].first),
          std::move(plans[i].second), &clock_));
      auto* executions = &executions_[i];
      DatagramHandler handler = [executions](ByteSpan request,
                                             std::vector<uint8_t>* reply) {
        auto xid = PeekXid(request);
        if (xid.ok()) {
          ++(*executions)[*xid];
        }
        reply->assign(request.begin(), request.end());
        return Status::Ok();
      };
      specs.push_back({channels_.back().get(), std::move(handler),
                       RemoteServerModel()});
    }
    group_ = std::make_unique<ReplicaGroup>(std::move(specs),
                                            pipeline_policy, &events_);
    binder_ = std::make_unique<BinderTransport>(group_.get(),
                                                std::move(binder_policy));
  }

  BinderTransport& binder() { return *binder_; }
  EventQueue& events() { return events_; }
  const std::map<uint32_t, int>& executions(size_t replica) const {
    return executions_[replica];
  }

  // Submits `count` echo calls (xids 1..count) and drives to completion.
  // Returns how many completed OK.
  size_t RunEchoCalls(size_t count) {
    size_t ok = 0;
    for (uint32_t xid = 1; xid <= count; ++xid) {
      auto request = MakeRequest(xid);
      binder_->Submit(xid, ByteSpan(request.data(), request.size()),
                      [&ok](Status status, std::vector<uint8_t>) {
                        if (status.ok()) {
                          ++ok;
                        }
                      });
    }
    EXPECT_TRUE(binder_->Drive().ok());
    return ok;
  }

 private:
  VirtualClock clock_;
  EventQueue events_;
  std::vector<std::unique_ptr<DatagramChannel>> channels_;
  std::vector<std::map<uint32_t, int>> executions_;
  std::unique_ptr<ReplicaGroup> group_;
  std::unique_ptr<BinderTransport> binder_;
};

std::vector<std::pair<FaultPlan, FaultPlan>> PerfectWires(size_t n) {
  std::vector<std::pair<FaultPlan, FaultPlan>> plans(n);
  return plans;
}

BinderPolicy EchoProbePolicy() {
  BinderPolicy p;
  p.failover = FastFailover();
  p.make_probe = [](uint32_t xid) { return MakeRequest(xid); };
  return p;
}

// --- PipelinedTransport::Cancel -----------------------------------------

TEST(PipelineCancelTest, CancelInFlightSuppressesItsCompletion) {
  VirtualClock clock;
  EventQueue events(&clock);
  DatagramChannel channel(LinkModel(), FaultPlan(), FaultPlan(), &clock);
  DatagramHandler echo = [](ByteSpan request, std::vector<uint8_t>* reply) {
    reply->assign(request.begin(), request.end());
    return Status::Ok();
  };
  PipelinedTransport transport(&channel, echo, RemoteServerModel(),
                               FastPipeline(), &events);
  bool cancelled_completed = false;
  bool kept_completed = false;
  auto req1 = MakeRequest(1);
  auto req2 = MakeRequest(2);
  transport.Submit(1, ByteSpan(req1.data(), req1.size()),
                   [&](Status, std::vector<uint8_t>) {
                     cancelled_completed = true;
                   });
  transport.Submit(2, ByteSpan(req2.data(), req2.size()),
                   [&](Status status, std::vector<uint8_t>) {
                     kept_completed = status.ok();
                   });
  EXPECT_TRUE(transport.Cancel(1));
  EXPECT_FALSE(transport.Cancel(1));   // already withdrawn
  EXPECT_FALSE(transport.Cancel(99));  // never existed
  ASSERT_TRUE(transport.Drive().ok());
  EXPECT_FALSE(cancelled_completed);
  EXPECT_TRUE(kept_completed);
  // Xid 1's request was already on the wire; its reply must land as a
  // stale reply, not a crash or a resurrected completion.
  EXPECT_GE(transport.stats().stale_replies, 1u);
}

TEST(PipelineCancelTest, CancelQueuedCallNeverTransmits) {
  VirtualClock clock;
  EventQueue events(&clock);
  DatagramChannel channel(LinkModel(), FaultPlan(), FaultPlan(), &clock);
  DatagramHandler echo = [](ByteSpan request, std::vector<uint8_t>* reply) {
    reply->assign(request.begin(), request.end());
    return Status::Ok();
  };
  PipelinePolicy policy = FastPipeline();
  policy.window = 1;  // force xid 2 to queue behind xid 1
  PipelinedTransport transport(&channel, echo, RemoteServerModel(), policy,
                               &events);
  bool queued_completed = false;
  auto req1 = MakeRequest(1);
  auto req2 = MakeRequest(2);
  transport.Submit(1, ByteSpan(req1.data(), req1.size()),
                   [](Status, std::vector<uint8_t>) {});
  transport.Submit(2, ByteSpan(req2.data(), req2.size()),
                   [&](Status, std::vector<uint8_t>) {
                     queued_completed = true;
                   });
  EXPECT_TRUE(transport.Cancel(2));
  ASSERT_TRUE(transport.Drive().ok());
  EXPECT_FALSE(queued_completed);
  // Only xid 1 ever reached the wire.
  EXPECT_EQ(transport.stats().calls, 2u);
  EXPECT_EQ(transport.stats().stale_replies, 0u);
}

// --- the §11 divergence, fixed: corrupt replies feed the loss signal ----

TEST(PipelineCorruptLossTest, CorruptRepliesFeedTheAimdLossSignal) {
  // Reply direction: every frame is duplicated AND corrupted. The channel
  // transmits the clean duplicate first and the corrupted original second,
  // so every call completes off the clean copy before its RTO can fire —
  // zero retransmits, zero RTO-driven loss signals. The only evidence of
  // trouble is the stream of checksum failures; before the corrupt-as-loss
  // fix the AIMD window ignored them (cwnd_decreases stayed 0), after it
  // they feed OnLoss exactly like an RTO fire.
  TraceSession session;
  NfsFileServer server(64 * 1024, /*seed=*/7);
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  FaultConfig reply_mangler;
  reply_mangler.dup_prob = 1.0;
  reply_mangler.corrupt_prob = 1.0;
  reply_mangler.seed = 4242;
  DatagramChannel channel(LinkModel(), FaultPlan(),
                          FaultPlan(reply_mangler), &clock);
  EventQueue events(&clock);
  PipelinePolicy policy;
  policy.retry.jitter_seed = 7;
  policy.retry.adaptive.enabled = true;
  PipelinedTransport transport(&channel, NfsFileServer::MakeHandler(&server),
                               RemoteServerModel(), policy, &events);
  auto stats = client.ReadFilePipelined(
      NfsClient::StubKind::kGeneratedUserBuffer, &transport, 2048);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(transport.stats().retransmits, 0u);
  EXPECT_GE(transport.stats().corrupt_replies, 1u);
  EXPECT_GE(transport.stats().cwnd_decreases, 1u)
      << "corrupt replies must reach the AIMD controller";
}

// --- BinderTransport ----------------------------------------------------

TEST(BinderTest, PrimaryBackupRoutesEverythingToThePrimary) {
  BinderRig rig(PerfectWires(3), EchoProbePolicy());
  EXPECT_EQ(rig.RunEchoCalls(8), 8u);
  const auto& stats = rig.binder().stats();
  EXPECT_EQ(stats.calls, 8u);
  EXPECT_EQ(stats.per_replica_calls[0], 8u);
  EXPECT_EQ(stats.per_replica_calls[1], 0u);
  EXPECT_EQ(stats.per_replica_calls[2], 0u);
  EXPECT_EQ(stats.suspects, 0u);
  EXPECT_EQ(stats.cutovers, 0u);
}

TEST(BinderTest, RoundRobinSpreadsAcrossHealthyReplicas) {
  BinderPolicy policy = EchoProbePolicy();
  policy.routing = BinderPolicy::Routing::kRoundRobin;
  BinderRig rig(PerfectWires(3), std::move(policy));
  EXPECT_EQ(rig.RunEchoCalls(9), 9u);
  const auto& stats = rig.binder().stats();
  EXPECT_EQ(stats.per_replica_calls[0], 3u);
  EXPECT_EQ(stats.per_replica_calls[1], 3u);
  EXPECT_EQ(stats.per_replica_calls[2], 3u);
}

TEST(BinderTest, DeadPrimaryCutsOverWithoutDroppingCalls) {
  auto plans = PerfectWires(3);
  plans[0].first.KillFrom(0);   // requests into replica 0 vanish
  plans[0].second.KillFrom(0);  // and nothing ever comes back
  BinderRig rig(std::move(plans), EchoProbePolicy());
  EXPECT_EQ(rig.RunEchoCalls(8), 8u);
  const auto& stats = rig.binder().stats();
  EXPECT_GE(stats.suspects, 1u);
  EXPECT_GE(stats.cutovers, 1u);
  EXPECT_GE(stats.reissues, 8u);  // every call migrated off the corpse
  EXPECT_EQ(rig.binder().primary(), 1u);
  // The dead replica executed nothing; the backup executed each xid
  // exactly once (its own dup cache enforces at-most-once per replica).
  EXPECT_TRUE(rig.executions(0).empty());
  for (const auto& [xid, count] : rig.executions(1)) {
    EXPECT_EQ(count, 1) << "xid " << xid;
  }
  EXPECT_NE(rig.binder().health(0), ReplicaHealth::kHealthy);
  // TTR instrumentation populated: suspect, cutover, then recovery.
  EXPECT_GT(stats.last_suspect_nanos, 0u);
  EXPECT_GE(stats.last_cutover_nanos, stats.last_suspect_nanos);
  EXPECT_GT(stats.first_recovery_nanos, stats.last_cutover_nanos);
}

TEST(BinderTest, TransientOutageIsProbedAndReinstated) {
  auto plans = PerfectWires(3);
  // Replica 0 drops its first 40 inbound requests, then heals. Calls cut
  // over to replica 1; probes keep retrying replica 0 on backoff until one
  // lands past the outage window and reinstates it.
  plans[0].first.DropExactly(0, 39);
  BinderRig rig(std::move(plans), EchoProbePolicy());
  EXPECT_EQ(rig.RunEchoCalls(8), 8u);
  EXPECT_GE(rig.binder().stats().cutovers, 1u);
  // Keep the probe machinery running after the calls finished.
  rig.events().RunUntilIdle(/*max_events=*/200'000);
  const auto& stats = rig.binder().stats();
  EXPECT_GE(stats.probes_sent, 1u);
  EXPECT_GE(stats.reinstates, 1u);
  EXPECT_EQ(rig.binder().health(0), ReplicaHealth::kHealthy);
}

TEST(BinderTest, ManagedNfsReadOverPerfectWiresMatchesPipelined) {
  // The managed path over healthy replicas is just the pipelined path
  // with routing in front: a full NFS read must verify byte-identical.
  NfsFileServer server(64 * 1024, /*seed=*/11);
  std::vector<NfsFileServer> replicas;
  replicas.reserve(3);
  for (int i = 0; i < 3; ++i) {
    replicas.emplace_back(64 * 1024, /*seed=*/11);
  }
  NfsClient client(&server, LinkModel(), RemoteServerModel());
  VirtualClock clock;
  EventQueue events(&clock);
  std::vector<std::unique_ptr<DatagramChannel>> channels;
  std::vector<ReplicaGroup::ReplicaSpec> specs;
  for (int i = 0; i < 3; ++i) {
    channels.push_back(std::make_unique<DatagramChannel>(
        LinkModel(), FaultPlan(), FaultPlan(), &clock));
    specs.push_back({channels.back().get(),
                     NfsFileServer::MakeHandler(&replicas[i]),
                     RemoteServerModel()});
  }
  // Default tuning: the aggressive 5 ms test RTO false-fires on real NFS
  // reply latencies; the clean path must look exactly like the pipelined
  // path, spurious suspects included.
  PipelinePolicy pipeline;
  pipeline.retry.jitter_seed = 11;
  ReplicaGroup group(std::move(specs), pipeline, &events);
  BinderTransport binder(&group, BinderPolicy{});
  auto stats = client.ReadFileManaged(
      NfsClient::StubKind::kGeneratedUserBuffer, &binder, 2048);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->bytes_read, 64u * 1024u);
  EXPECT_EQ(stats->retransmits, 0u);
  EXPECT_EQ(binder.stats().cutovers, 0u);
}

}  // namespace
}  // namespace flexrpc
