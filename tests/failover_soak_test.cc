// Failover soak: scripted replica-death matrix over the managed NFS read.
//
// A 64 KB pipelined read runs through a BinderTransport over three
// replicas; the primary is killed at every point in a swept packet
// schedule (including "before the first packet" and "after the read
// would have finished"). The robustness contract under test:
//   * the read always completes OK and delivers byte-exact file contents;
//   * no replica ever executes the same xid twice (per-replica
//     at-most-once holds through cutover — cross-replica re-execution is
//     the counted, safe case);
//   * total virtual latency stays within 3x the clean run;
//   * the whole timeline is deterministic: two runs of any kill point
//     produce exact-equal trace counters and byte-identical recordings.
//
// Registered under the `failover` ctest label via flexrpc_failover_tests;
// CI runs the label in the fault matrix and under TSan (tools/ci.sh).

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/flexrec.h"
#include "src/apps/nfs.h"
#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/net/link.h"
#include "src/net/sunrpc.h"
#include "src/rpc/binder.h"
#include "src/rpc/pipeline.h"
#include "src/support/event_queue.h"
#include "src/support/recorder.h"
#include "src/support/trace.h"

namespace flexrpc {
namespace {

constexpr size_t kFileSize = 64 * 1024;
constexpr size_t kChunkBytes = 2048;  // 32 chunks: enough packets to sweep
constexpr size_t kReplicas = 3;
constexpr uint64_t kNever = UINT64_MAX;

// Kill replica `replica`'s wire starting at these 0-based packet indices
// (kNever = leave that direction alone).
struct KillSpec {
  size_t replica = 0;
  uint64_t requests_from = kNever;  // a2b: requests stop arriving
  uint64_t replies_from = kNever;   // b2a: replies stop escaping
};

struct FailoverOutcome {
  Status status = Status::Ok();
  NfsClient::ReadStats read;
  BinderTransport::Stats binder;
  std::vector<PipelinedTransport::Stats> transports;
  int max_executions_per_replica_xid = 0;
  uint64_t cross_replica_reexecutions = 0;  // xids executed on >1 replica
  TraceSnapshot trace;
  uint64_t virtual_nanos = 0;
  std::string recording_json;  // deterministic serialization
};

// One full managed read, built from scratch so a repeat with the same
// arguments replays the identical event sequence.
FailoverOutcome RunManagedRead(uint64_t seed,
                               const std::vector<KillSpec>& kills) {
  TraceSession trace_session;
  RecorderSession recorder;

  // Identical file content on every replica (same size, same seed); the
  // client verifies delivered bytes against its own copy.
  NfsFileServer client_server(kFileSize, seed);
  NfsClient client(&client_server, LinkModel(), RemoteServerModel());
  std::vector<std::unique_ptr<NfsFileServer>> replicas;
  for (size_t i = 0; i < kReplicas; ++i) {
    replicas.push_back(std::make_unique<NfsFileServer>(kFileSize, seed));
  }

  VirtualClock clock;
  EventQueue events(&clock);
  std::vector<std::map<uint32_t, int>> executions(kReplicas);
  std::vector<std::unique_ptr<DatagramChannel>> channels;
  std::vector<ReplicaGroup::ReplicaSpec> specs;
  for (size_t i = 0; i < kReplicas; ++i) {
    FaultPlan to_server;
    FaultPlan to_client;
    for (const KillSpec& kill : kills) {
      if (kill.replica != i) {
        continue;
      }
      if (kill.requests_from != kNever) {
        to_server.KillFrom(kill.requests_from);
      }
      if (kill.replies_from != kNever) {
        to_client.KillFrom(kill.replies_from);
      }
    }
    channels.push_back(std::make_unique<DatagramChannel>(
        LinkModel(), std::move(to_server), std::move(to_client), &clock));
    auto* counts = &executions[i];
    DatagramHandler inner = NfsFileServer::MakeHandler(replicas[i].get());
    DatagramHandler counting = [counts, inner](ByteSpan request,
                                               std::vector<uint8_t>* reply) {
      auto xid = PeekXid(request);
      if (xid.ok()) {
        ++(*counts)[*xid];
      }
      return inner(request, reply);
    };
    specs.push_back({channels.back().get(), std::move(counting),
                     RemoteServerModel()});
  }

  PipelinePolicy pipeline;
  pipeline.window = 8;
  pipeline.retry.max_attempts = 12;
  pipeline.retry.deadline_nanos = 8'000'000'000;
  pipeline.retry.jitter_seed = seed + 1;
  ReplicaGroup group(std::move(specs), pipeline, &events);

  BinderPolicy binder_policy;
  binder_policy.failover.suspect_after = 2;
  // A probe is one minimal 1-byte NFS read (cheap, idempotent).
  uint8_t fh[kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));
  binder_policy.make_probe = [&client, &fh](uint32_t xid) {
    XdrWriter w;
    EncodeSunRpcCall(&w, SunRpcCall{xid, kNfsProgram, kNfsVersion,
                                    kNfsProcRead});
    NfsClient::ChunkArgs chunk{fh, 0, 1, nullptr};
    auto encoded = client.EncodeRequest(
        NfsClient::StubKind::kGeneratedUserBuffer, chunk, &w);
    EXPECT_TRUE(encoded.ok());
    ByteSpan span = w.span();
    return std::vector<uint8_t>(span.begin(), span.end());
  };
  BinderTransport binder(&group, std::move(binder_policy));

  FailoverOutcome outcome;
  auto read = client.ReadFileManaged(
      NfsClient::StubKind::kGeneratedUserBuffer, &binder, kChunkBytes);
  if (read.ok()) {
    outcome.read = *read;
  } else {
    outcome.status = read.status();
  }
  outcome.binder = binder.stats();
  for (size_t i = 0; i < kReplicas; ++i) {
    outcome.transports.push_back(group.transport(i)->stats());
  }
  std::map<uint32_t, int> replicas_touched;
  for (size_t i = 0; i < kReplicas; ++i) {
    for (const auto& [xid, count] : executions[i]) {
      outcome.max_executions_per_replica_xid =
          std::max(outcome.max_executions_per_replica_xid, count);
      ++replicas_touched[xid];
    }
  }
  for (const auto& [xid, touched] : replicas_touched) {
    if (touched > 1) {
      ++outcome.cross_replica_reexecutions;
    }
  }
  outcome.virtual_nanos = clock.now_nanos();
  outcome.recording_json = RecordingToJson(recorder.Stop());
  outcome.trace = trace_session.Report();
  return outcome;
}

std::vector<KillSpec> KillPrimaryAt(uint64_t packet) {
  return {{/*replica=*/0, /*requests_from=*/packet,
           /*replies_from=*/packet}};
}

// --- the kill-point matrix ----------------------------------------------

TEST(FailoverSoakTest, PrimaryKilledAtEveryPointStillCompletes) {
  FailoverOutcome clean = RunManagedRead(17, {});
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  ASSERT_EQ(clean.read.bytes_read, kFileSize);
  ASSERT_EQ(clean.binder.cutovers, 0u) << "clean run must not fail over";
  ASSERT_GT(clean.virtual_nanos, 0u);

  const uint64_t kill_points[] = {0, 1, 2, 4, 8, 16, 24, 31, 64};
  for (uint64_t kill : kill_points) {
    SCOPED_TRACE("kill point " + std::to_string(kill));
    FailoverOutcome outcome = RunManagedRead(17, KillPrimaryAt(kill));
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.read.bytes_read, kFileSize);
    // At-most-once per replica, even mid-cutover.
    EXPECT_LE(outcome.max_executions_per_replica_xid, 1);
    // Time to recover is bounded: the whole read, failover included,
    // stays within 3x the clean run.
    EXPECT_LE(outcome.virtual_nanos, 3 * clean.virtual_nanos)
        << outcome.virtual_nanos << " vs clean " << clean.virtual_nanos;
    if (kill < 64) {
      // The death was actually observed and handled.
      EXPECT_GE(outcome.binder.suspects, 1u);
      EXPECT_GE(outcome.binder.cutovers, 1u);
      EXPECT_GT(outcome.binder.per_replica_calls[1], 0u);
      EXPECT_GT(outcome.binder.first_recovery_nanos, 0u);
    } else {
      // Kill point beyond the read: indistinguishable from clean.
      EXPECT_EQ(outcome.binder.cutovers, 0u);
      EXPECT_EQ(outcome.virtual_nanos, clean.virtual_nanos);
    }
  }
}

TEST(FailoverSoakTest, CascadingDeathFailsOverTwice) {
  // Replica 0 dies immediately; replica 1 dies 8 packets into its own
  // tenure as primary. The read must end up whole on replica 2.
  std::vector<KillSpec> kills = {{0, 0, 0}, {1, 8, 8}};
  FailoverOutcome outcome = RunManagedRead(23, kills);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.read.bytes_read, kFileSize);
  EXPECT_LE(outcome.max_executions_per_replica_xid, 1);
  EXPECT_GE(outcome.binder.cutovers, 2u);
  EXPECT_GT(outcome.binder.per_replica_calls[2], 0u);
}

// --- cutover with in-flight xids: the at-most-once proof (satellite 2) --

TEST(FailoverSoakTest, ExecuteThenDieNeverDoubleExecutesOnOneReplica) {
  // Replies are killed from packet 0 but requests flow: the primary
  // EXECUTES every chunk it receives and the client never learns. This is
  // the adversarial case for cutover — every in-flight xid has already
  // run once when it migrates.
  std::vector<KillSpec> kills = {{0, kNever, 0}};
  FailoverOutcome outcome = RunManagedRead(29, kills);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.read.bytes_read, kFileSize);
  // The primary executed work; its dup cache absorbed every retransmit of
  // an already-executed xid (hits with no second execution).
  EXPECT_LE(outcome.max_executions_per_replica_xid, 1);
  EXPECT_GT(outcome.transports[0].dup_cache_misses, 0u);
  EXPECT_GE(outcome.transports[0].dup_cache_hits, 1u);
  // Cross-replica re-execution happened (the safe, counted case): the
  // migrated xids ran again on the backup because the primary's execution
  // was unobservable.
  EXPECT_GE(outcome.cross_replica_reexecutions, 1u);
  EXPECT_GE(outcome.binder.reissues, 1u);
}

// --- determinism (satellite 3) ------------------------------------------

TEST(FailoverSoakTest, KillPointsAreTwoRunDeterministic) {
  const uint64_t kill_points[] = {0, 4, 16, 31};
  for (uint64_t kill : kill_points) {
    SCOPED_TRACE("kill point " + std::to_string(kill));
    FailoverOutcome first = RunManagedRead(5, KillPrimaryAt(kill));
    FailoverOutcome second = RunManagedRead(5, KillPrimaryAt(kill));
    ASSERT_TRUE(first.status.ok());
    ASSERT_TRUE(second.status.ok());
    for (size_t i = 0; i < kTraceCounterCount; ++i) {
      EXPECT_EQ(first.trace.counters[i], second.trace.counters[i])
          << TraceCounterName(static_cast<TraceCounter>(i));
    }
    EXPECT_EQ(first.recording_json, second.recording_json)
        << "recordings must be byte-identical";
    EXPECT_EQ(first.virtual_nanos, second.virtual_nanos);
  }
}

// --- the recording tells the failover story (satellite 6 wiring) --------

TEST(FailoverSoakTest, RecordingCarriesReplicaAttribution) {
  FailoverOutcome outcome = RunManagedRead(31, KillPrimaryAt(2));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();

  auto parsed = ParseRecording(outcome.recording_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  RecordingAnalysis analysis = AnalyzeRecording(*parsed);
  EXPECT_TRUE(analysis.failover.present);
  EXPECT_GE(analysis.failover.suspects, 1u);
  EXPECT_GE(analysis.failover.cutovers, 1u);
  EXPECT_GE(analysis.failover.rebinds, 1u);
  // Submissions were recorded on at least two distinct replicas.
  EXPECT_GE(analysis.failover.per_replica_submits.size(), 2u);
  EXPECT_GT(analysis.failover.cutover_to_recovery_nanos, 0u);

  std::string report = RenderReport(analysis);
  EXPECT_NE(report.find("failover (managed binding)"), std::string::npos);
  EXPECT_NE(report.find("rebinds"), std::string::npos);

  // Chrome export stays loadable and grows per-replica tracks.
  std::string chrome = ExportChromeTrace(*parsed);
  EXPECT_NE(chrome.find("[r1]"), std::string::npos);
  EXPECT_NE(chrome.find("[r2]"), std::string::npos);
}

}  // namespace
}  // namespace flexrpc
