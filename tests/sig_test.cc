// Tests for wire signatures: structural erasure, canonical encoding,
// compatibility checking, and the central architecture property that
// presentations cannot change the network contract.

#include <gtest/gtest.h>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/pdl/apply.h"
#include "src/sig/signature.h"

namespace flexrpc {
namespace {

std::unique_ptr<InterfaceFile> MustParse(std::string_view src) {
  DiagnosticSink diags;
  auto file = ParseCorbaIdl(src, "test.idl", &diags);
  EXPECT_NE(file, nullptr) << diags.ToString();
  EXPECT_TRUE(AnalyzeInterfaceFile(file.get(), &diags)) << diags.ToString();
  return file;
}

constexpr char kFileIoIdl[] = R"(
  interface FileIO {
    sequence<octet> read(in unsigned long count);
    void write(in sequence<octet> data);
  };
)";

TEST(SignatureTest, NamesAreErased) {
  // Two structurally identical interfaces with different names and
  // parameter names produce identical op signatures.
  auto a = MustParse("interface A { void f(in string x, out long y); };");
  auto b = MustParse("interface B { void g(in string p, out long q); };");
  InterfaceSignature sa = BuildSignature(a->interfaces[0]);
  InterfaceSignature sb = BuildSignature(b->interfaces[0]);
  ASSERT_EQ(sa.ops.size(), 1u);
  ASSERT_EQ(sb.ops.size(), 1u);
  EXPECT_TRUE(sa.ops[0] == sb.ops[0]);
}

TEST(SignatureTest, AliasesResolved) {
  auto a = MustParse(R"(
    typedef sequence<octet, 64> buf;
    interface A { void f(in buf b); };
  )");
  auto b = MustParse("interface B { void f(in sequence<octet, 64> b); };");
  EXPECT_TRUE(BuildSignature(a->interfaces[0]).ops[0] ==
              BuildSignature(b->interfaces[0]).ops[0]);
}

TEST(SignatureTest, EnumsLowerToU32) {
  auto a = MustParse(R"(
    enum color { RED = 0, BLUE = 1 };
    interface A { void f(in color c); };
  )");
  auto b = MustParse("interface B { void f(in unsigned long c); };");
  EXPECT_TRUE(BuildSignature(a->interfaces[0]).ops[0] ==
              BuildSignature(b->interfaces[0]).ops[0]);
}

TEST(SignatureTest, EncodeDecodeRoundTrip) {
  auto idl = MustParse(R"(
    struct fattr { unsigned long size; unsigned long mtime; };
    enum st { OK = 0, BAD = 1 };
    union res switch (st) { case 0: fattr ok; default: long err; };
    interface Fs {
      res stat(in string<255> path);
      void chmod(in string path, in unsigned long mode, out fattr attr);
      oneway void ping();
    };
  )");
  InterfaceSignature sig = BuildSignature(idl->interfaces[0]);
  ByteWriter w;
  EncodeSignature(sig, &w);
  ByteReader r(w.span());
  Result<InterfaceSignature> decoded = DecodeSignature(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->ops.size(), sig.ops.size());
  for (size_t i = 0; i < sig.ops.size(); ++i) {
    EXPECT_TRUE(decoded->ops[i] == sig.ops[i]) << "op " << i;
  }
  // Deterministic: re-encoding the decoded form gives identical bytes.
  ByteWriter w2;
  EncodeSignature(*decoded, &w2);
  EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(SignatureTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3};
  ByteReader r(ByteSpan(junk.data(), junk.size()));
  EXPECT_FALSE(DecodeSignature(&r).ok());
}

TEST(SignatureTest, DecodeRejectsTruncation) {
  auto idl = MustParse(kFileIoIdl);
  ByteWriter w;
  EncodeSignature(BuildSignature(idl->interfaces[0]), &w);
  for (size_t cut = 1; cut < w.size(); cut += 7) {
    ByteReader r(w.span().subspan(0, w.size() - cut));
    EXPECT_FALSE(DecodeSignature(&r).ok()) << "cut " << cut;
  }
}

TEST(SignatureTest, CompatibleWithSelf) {
  auto idl = MustParse(kFileIoIdl);
  InterfaceSignature sig = BuildSignature(idl->interfaces[0]);
  std::string why;
  EXPECT_TRUE(SignaturesCompatible(sig, sig, &why)) << why;
}

TEST(SignatureTest, ServerMayImplementMore) {
  auto client = MustParse("interface A { void f(in long x); };");
  auto server = MustParse(
      "interface A { void f(in long x); void g(out string s); };");
  InterfaceSignature cs = BuildSignature(client->interfaces[0]);
  InterfaceSignature ss = BuildSignature(server->interfaces[0]);
  EXPECT_TRUE(SignaturesCompatible(cs, ss));
  // ...but not the other way around.
  std::string why;
  EXPECT_FALSE(SignaturesCompatible(ss, cs, &why));
  EXPECT_NE(why.find("lacks operation"), std::string::npos);
}

TEST(SignatureTest, TypeMismatchDetected) {
  auto a = MustParse("interface A { void f(in long x); };");
  auto b = MustParse("interface A { void f(in string x); };");
  std::string why;
  EXPECT_FALSE(SignaturesCompatible(BuildSignature(a->interfaces[0]),
                                    BuildSignature(b->interfaces[0]), &why));
  EXPECT_NE(why.find("type mismatch"), std::string::npos);
}

TEST(SignatureTest, DirectionMismatchDetected) {
  auto a = MustParse("interface A { void f(in long x); };");
  auto b = MustParse("interface A { void f(out long x); };");
  std::string why;
  EXPECT_FALSE(SignaturesCompatible(BuildSignature(a->interfaces[0]),
                                    BuildSignature(b->interfaces[0]), &why));
  EXPECT_NE(why.find("direction"), std::string::npos);
}

TEST(SignatureTest, BoundMismatchDetected) {
  auto a = MustParse("interface A { void f(in sequence<octet, 16> x); };");
  auto b = MustParse("interface A { void f(in sequence<octet, 32> x); };");
  EXPECT_FALSE(SignaturesCompatible(BuildSignature(a->interfaces[0]),
                                    BuildSignature(b->interfaces[0])));
}

TEST(SignatureTest, ProgramVersionMismatchDetected) {
  auto idl = MustParse(kFileIoIdl);
  InterfaceSignature a = BuildSignature(idl->interfaces[0]);
  InterfaceSignature b = a;
  b.version_number = 99;
  std::string why;
  EXPECT_FALSE(SignaturesCompatible(a, b, &why));
}

TEST(SignatureTest, HashStableAndDiscriminating) {
  auto a = MustParse(kFileIoIdl);
  auto b = MustParse(kFileIoIdl);
  EXPECT_EQ(SignatureHash(BuildSignature(a->interfaces[0])),
            SignatureHash(BuildSignature(b->interfaces[0])));
  auto c = MustParse("interface FileIO { void write(in string data); };");
  EXPECT_NE(SignatureHash(BuildSignature(a->interfaces[0])),
            SignatureHash(BuildSignature(c->interfaces[0])));
}

// The architecture property the paper's design rests on: a PDL file cannot
// change the network contract, no matter what it declares.
TEST(SignatureTest, PresentationCannotChangeContract) {
  auto idl = MustParse(kFileIoIdl);
  InterfaceSignature baseline = BuildSignature(idl->interfaces[0]);

  const char* pdls[] = {
      "FileIO_read()[dealloc(never)];",
      "FileIO_write(char *[trashable] data);",
      "interface FileIO [leaky, unprotected];",
      "type opaque [special];",
      "FileIO_read(unsigned long count)[alloc(user)];",
  };
  for (const char* pdl_text : pdls) {
    PresentationSet set;
    DiagnosticSink diags;
    Side side = std::string_view(pdl_text).find("trashable") !=
                        std::string_view::npos
                    ? Side::kClient
                    : Side::kServer;
    // trashable is client-side; alloc(user) client; rest either.
    if (std::string_view(pdl_text).find("alloc(user)") !=
        std::string_view::npos) {
      side = Side::kClient;
    }
    ASSERT_TRUE(ApplyPdlText(*idl, side, pdl_text, "p.pdl", &set, &diags))
        << pdl_text << "\n"
        << diags.ToString();
    // The signature builder takes only the IDL: by construction the
    // presentation cannot reach it. Re-derive and compare hashes.
    InterfaceSignature after = BuildSignature(idl->interfaces[0]);
    EXPECT_EQ(SignatureHash(baseline), SignatureHash(after)) << pdl_text;
  }
}

}  // namespace
}  // namespace flexrpc
