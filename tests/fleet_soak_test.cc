// Fleet soak — the mux/dispatch stack under the full fault matrix
// (ISSUE 9, satellite 4).
//
// The single-client fault soak proves at-most-once per xid; a fleet makes
// that claim per (connection, xid): N mux connections interleave calls
// over one lossy wire, xids collide across connections by construction,
// and the server's per-connection dup caches must still keep every call's
// handler execution count at <= 1. Each matrix seed derives drop / dup /
// reorder / corrupt / extra-delay mixes for both wire directions, runs a
// fleet to completion, and gates:
//   * no stall — RunFleet returns OK and every call terminates with OK or
//     a documented degradation (kUnavailable / kDeadlineExceeded);
//   * per-(conn, xid) handler executions <= 1, proven by the execution
//     census RunFleet threads through the server handler;
//   * zero evicted re-executions (the LRU reply caches never dropped an
//     xid that was still being retransmitted);
//   * determinism — the same seed replays to a byte-identical flight
//     recording, faults and all.
//
// Registered under the `fault` + `fleet` ctest labels via the
// flexrpc_fleet_tests binary; CI's fault-matrix and TSan jobs include it.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/rpc/dispatch.h"
#include "src/rpc/mux.h"
#include "src/rpc/rtt.h"
#include "src/sim/fleet.h"
#include "src/support/bytes.h"
#include "src/support/event_queue.h"
#include "src/support/recorder.h"
#include "src/support/rng.h"
#include "src/support/timeline.h"
#include "src/support/timing.h"

namespace flexrpc {
namespace {

// Fault mix derived deterministically from the seed; the same shape as
// the single-client soak's but slightly gentler, since a fleet multiplies
// every probability by thousands of packets.
FaultConfig FleetMixForSeed(uint64_t seed, uint64_t direction_salt) {
  Rng rng(seed * 2654435761u + direction_salt);
  FaultConfig config;
  config.drop_prob = rng.NextDouble() * 0.20;
  config.dup_prob = rng.NextDouble() * 0.15;
  config.reorder_prob = rng.NextDouble() * 0.15;
  config.corrupt_prob = rng.NextDouble() * 0.06;
  config.extra_delay_prob = rng.NextDouble() * 0.20;
  config.seed = seed ^ direction_salt;
  return config;
}

// A small fleet that still interleaves: enough clients that xids collide
// across connections, enough calls that windows wrap and caches churn.
FleetConfig SoakConfig(uint64_t seed) {
  FleetConfig config;
  config.num_clients = 12;
  config.calls_per_client = 12;
  config.mean_interarrival_nanos = 400'000;  // 0.4 ms: heavy interleaving
  config.seed = seed;
  config.mux.retry.max_attempts = 12;
  config.mux.retry.deadline_nanos = 8'000'000'000;  // 8 virtual seconds
  config.mux.retry.jitter_seed = seed + 1;
  config.dispatch.workers = 4;
  return config;
}

// The at-most-once proof: every (conn, xid) key in the execution census
// ran the handler at most once, and keys cover at most the submitted
// calls (a shed or lost call may never execute; none executes twice).
void AssertAtMostOnce(const std::map<uint64_t, uint64_t>& executions,
                      uint64_t total_calls) {
  EXPECT_LE(executions.size(), total_calls);
  for (const auto& [key, count] : executions) {
    EXPECT_LE(count, 1u) << "handler ran " << count << " times for conn "
                         << (key >> 32) << " xid "
                         << static_cast<uint32_t>(key);
  }
}

TEST(FleetSoakTest, PeekMuxConnReadsSecondWordAndRejectsShortFrames) {
  const uint8_t frame[] = {0x00, 0x00, 0x00, 0x07,   // xid 7
                           0x00, 0x00, 0x01, 0x02,   // conn 0x102
                           0xAA, 0xBB};              // body
  auto conn = PeekMuxConn(ByteSpan(frame, sizeof(frame)));
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(*conn, 0x102u);
  // The xid slot is unaffected by the mux framing.
  auto xid = PeekXid(ByteSpan(frame, sizeof(frame)));
  ASSERT_TRUE(xid.ok());
  EXPECT_EQ(*xid, 7u);
  // Seven bytes cannot hold the two-word prefix.
  EXPECT_FALSE(PeekMuxConn(ByteSpan(frame, 7)).ok());
}

TEST(FleetSoakTest, MuxInterleavesConnectionsOverPerfectWire) {
  FleetConfig config = SoakConfig(/*seed=*/7);
  std::map<uint64_t, uint64_t> executions;
  FleetResult result = RunFleet(config, &executions);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  const uint64_t total = uint64_t{config.num_clients} *
                         config.calls_per_client;
  EXPECT_EQ(result.completed, total);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.mux.conns_opened, config.num_clients);
  EXPECT_EQ(result.mux.retransmits, 0u);  // perfect wire
  EXPECT_EQ(result.executions, total);
  EXPECT_EQ(result.evicted_reexecs, 0u);
  // Every call executed exactly once, and connections really do reuse
  // the same xid values: with identical per-connection call counts the
  // census holds num_clients entries for xid 1 alone.
  EXPECT_EQ(executions.size(), total);
  AssertAtMostOnce(executions, total);
  uint64_t xid1_conns = 0;
  for (const auto& [key, count] : executions) {
    if (static_cast<uint32_t>(key) == 1) {
      ++xid1_conns;
    }
  }
  EXPECT_EQ(xid1_conns, config.num_clients);
}

TEST(FleetSoakTest, FaultMatrixPreservesPerConnectionAtMostOnce) {
  uint64_t total_retransmits = 0;
  uint64_t total_dup_replies = 0;
  uint64_t total_failed = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FleetConfig config = SoakConfig(seed);
    config.fault_a_to_b = FleetMixForSeed(seed, 0xA2B);
    config.fault_b_to_a = FleetMixForSeed(seed, 0xB2A);

    std::map<uint64_t, uint64_t> executions;
    FleetResult result = RunFleet(config, &executions);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();

    const uint64_t total = uint64_t{config.num_clients} *
                           config.calls_per_client;
    // No hangs and no third outcome: every call completed or failed with
    // a documented degradation code (those are the only failure paths
    // the mux has).
    EXPECT_EQ(result.completed + result.failed, total);
    EXPECT_EQ(result.failed, result.mux.deadline_expiries +
                                 result.mux.unavailable_failures);
    AssertAtMostOnce(executions, total);
    EXPECT_EQ(result.evicted_reexecs, 0u);

    total_retransmits += result.mux.retransmits;
    total_dup_replies += result.dup_replies;
    total_failed += result.failed;
  }
  // The matrix actually bit: packets were lost (forcing retransmits) and
  // duplicated/retransmitted requests hit the server's reply caches.
  EXPECT_GT(total_retransmits, 0u);
  EXPECT_GT(total_dup_replies, 0u);
  // And the mixes are survivable: most calls complete across the matrix.
  EXPECT_LT(total_failed, 6u * 12u * 12u / 4u);
}

TEST(FleetSoakTest, SameSeedReplaysToByteIdenticalRecording) {
  FleetConfig config = SoakConfig(/*seed=*/3);
  config.fault_a_to_b = FleetMixForSeed(3, 0xA2B);
  config.fault_b_to_a = FleetMixForSeed(3, 0xB2A);

  auto run = [&](FleetResult* result) {
    RecorderSession session(1u << 18);
    *result = RunFleet(config);
    return RecordingToJson(session.Stop());
  };
  FleetResult first_result;
  FleetResult second_result;
  std::string first = run(&first_result);
  std::string second = run(&second_result);

  ASSERT_TRUE(first_result.status.ok());
  // Byte identity of the full flight recording — every wire event, every
  // retransmit, every shed decision, at identical virtual timestamps.
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_result.completed, second_result.completed);
  EXPECT_EQ(first_result.failed, second_result.failed);
  EXPECT_EQ(first_result.p99_nanos, second_result.p99_nanos);
  EXPECT_EQ(first_result.mux.retransmits, second_result.mux.retransmits);
  EXPECT_EQ(first_result.wire.delivered, second_result.wire.delivered);
}

TEST(FleetSoakTest, OverloadShedsBeforeExecutionNotAfter) {
  // One slow worker, a tiny run queue, and a burst far past capacity: the
  // shed policy must engage, and because sheds happen before the xid
  // enters the executed set, retransmitted sheds execute cleanly later —
  // the census still never exceeds one execution per (conn, xid).
  FleetConfig config;
  config.num_clients = 30;
  config.calls_per_client = 4;
  config.mean_interarrival_nanos = 100'000;  // 0.1 ms: a burst
  config.seed = 11;
  config.mux.retry.max_attempts = 12;
  config.mux.retry.deadline_nanos = 8'000'000'000;
  config.dispatch.workers = 1;
  config.dispatch.run_queue_limit = 2;

  std::map<uint64_t, uint64_t> executions;
  FleetResult result = RunFleet(config, &executions);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  const uint64_t total = uint64_t{config.num_clients} *
                         config.calls_per_client;
  EXPECT_GT(result.dispatch.shed_run, 0u);
  EXPECT_EQ(result.completed + result.failed, total);
  AssertAtMostOnce(executions, total);
  EXPECT_EQ(result.evicted_reexecs, 0u);
  // Shed calls complete via retransmit: retransmits at least covered the
  // sheds that were eventually answered.
  EXPECT_GT(result.mux.retransmits, 0u);
}

TEST(FleetSoakTest, HeavyTailedArrivalsStallTheWindowNotTheProof) {
  FleetConfig config = SoakConfig(/*seed=*/5);
  config.heavy_tailed = true;
  config.mean_interarrival_nanos = 100'000;
  config.mux.per_conn_window = 1;  // serialize per connection

  std::map<uint64_t, uint64_t> executions;
  FleetResult result = RunFleet(config, &executions);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  const uint64_t total = uint64_t{config.num_clients} *
                         config.calls_per_client;
  // A window of one behind bursty arrivals must queue submissions...
  EXPECT_GT(result.mux.flow_stalls, 0u);
  // ...but over a perfect wire everything still completes exactly once.
  EXPECT_EQ(result.completed, total);
  EXPECT_EQ(executions.size(), total);
  AssertAtMostOnce(executions, total);
  EXPECT_EQ(result.evicted_reexecs, 0u);
}

// Satellite: per-connection RTT estimation. One mux, two connections on
// one wire and one worker pool: connection A issues fast calls (16-byte
// replies), connection B issues slow ones (50 KB replies, ~50 ms of
// modeled service each, paced so B occupies at most one of two workers).
// With a single shared estimator — the failing-before shape — B's 50 ms
// samples would drag the shared srtt up and inflate A's RTO past B's RTT.
// Per-connection estimators keep A's RTO derived from A's own samples.
TEST(FleetSoakTest, AdaptiveRtoIsPerConnection) {
  VirtualClock clock;
  EventQueue events(&clock);
  DatagramChannel channel(LinkModel(FleetLinkConfig()), FaultPlan(),
                          FaultPlan(), &clock);
  DatagramHandler handler = [](ByteSpan request,
                               std::vector<uint8_t>* reply) {
    ByteReader r(request);
    auto xid = r.ReadU32Be();
    auto conn = r.ReadU32Be();
    auto reply_size = r.ReadU32Be();
    if (!xid.ok() || !conn.ok() || !reply_size.ok()) {
      return InvalidArgumentError("short request");
    }
    reply->clear();
    auto push_u32 = [reply](uint32_t v) {
      reply->push_back(static_cast<uint8_t>(v >> 24));
      reply->push_back(static_cast<uint8_t>(v >> 16));
      reply->push_back(static_cast<uint8_t>(v >> 8));
      reply->push_back(static_cast<uint8_t>(v));
    };
    push_u32(*xid);
    push_u32(*conn);
    reply->resize(8 + *reply_size, 0xCD);
    return Status::Ok();
  };

  MuxPolicy policy;
  policy.retry.max_attempts = 12;
  policy.retry.deadline_nanos = 8'000'000'000;
  policy.retry.adaptive.enabled = true;
  // First-sample RTO above B's ~50 ms service time, so neither connection
  // retransmits and every reply yields a clean (Karn-admissible) sample.
  policy.retry.adaptive.rtt.initial_rto_nanos = 200'000'000;
  // A's converged RTO floors here. 5 ms absorbs the wire-sharing delay a
  // 50 KB reply of B's adds in front of A's reply (~0.5 ms) while staying
  // an order of magnitude under B's srtt — the inequality under test.
  policy.retry.adaptive.rtt.min_rto_nanos = 5'000'000;

  DispatchPolicy dispatch_policy;
  dispatch_policy.workers = 2;
  dispatch_policy.service.per_byte_sec = 1e-6;  // 1 us/byte: size is cost

  ConnectionMux mux(&channel, policy, &events);
  ServerDispatch dispatch(&channel, std::move(handler), dispatch_policy,
                          &events);
  mux.set_request_listener([&dispatch]() { dispatch.Poke(); });
  dispatch.set_reply_listener([&mux]() { mux.Poke(); });

  uint32_t conn_a = mux.OpenConnection();
  uint32_t conn_b = mux.OpenConnection();
  auto make_body = [](uint32_t reply_size) {
    std::vector<uint8_t> body(4);
    body[0] = static_cast<uint8_t>(reply_size >> 24);
    body[1] = static_cast<uint8_t>(reply_size >> 16);
    body[2] = static_cast<uint8_t>(reply_size >> 8);
    body[3] = static_cast<uint8_t>(reply_size);
    return body;
  };
  uint64_t ok = 0;
  uint64_t failed = 0;
  auto done = [&ok, &failed](Status st, std::vector<uint8_t>) {
    st.ok() ? ++ok : ++failed;
  };
  // A: 30 fast calls every 10 ms. B: 8 slow calls every 100 ms — spaced
  // past their own service time, so B never occupies both workers and A's
  // samples measure A's service, not queueing behind B.
  for (uint64_t k = 0; k < 30; ++k) {
    events.ScheduleAt(1 + k * 10'000'000,
                      [&mux, &make_body, &done, conn_a]() {
                        auto body = make_body(16);
                        mux.Submit(conn_a,
                                   ByteSpan(body.data(), body.size()), done);
                      });
  }
  for (uint64_t k = 0; k < 8; ++k) {
    events.ScheduleAt(1 + k * 100'000'000,
                      [&mux, &make_body, &done, conn_b]() {
                        auto body = make_body(50'000);
                        mux.Submit(conn_b,
                                   ByteSpan(body.data(), body.size()), done);
                      });
  }
  while (events.RunNext()) {
  }

  ASSERT_EQ(ok, 38u);
  ASSERT_EQ(failed, 0u);
  EXPECT_EQ(mux.stats().retransmits, 0u);

  const RttEstimator* rtt_a = mux.conn_rtt(conn_a);
  const RttEstimator* rtt_b = mux.conn_rtt(conn_b);
  ASSERT_NE(rtt_a, nullptr);
  ASSERT_NE(rtt_b, nullptr);
  EXPECT_EQ(rtt_a->samples(), 30u);
  EXPECT_EQ(rtt_b->samples(), 8u);
  // B's RTT really is an order of magnitude above A's...
  EXPECT_GT(rtt_b->srtt_nanos(), 8 * rtt_a->srtt_nanos());
  // ...and the independence claim: A's RTO sits *below* B's smoothed RTT.
  // A shared estimator would have folded B's ~50 ms samples into the
  // srtt that A's RTO is derived from, forcing A's RTO above it.
  EXPECT_LT(rtt_a->rto_nanos(), rtt_b->srtt_nanos());
  EXPECT_EQ(mux.stats().rtt_samples, 38u);
  EXPECT_EQ(mux.stats().karn_skips, 0u);
}

// flexwatch gate (tentpole): under the full fault matrix, the same seed
// serializes to a byte-identical TIMELINE artifact — and installing the
// sampler does not perturb the simulation (the flight recording with the
// sampler running matches the recording without it, byte for byte).
TEST(FleetSoakTest, SameSeedTimelineIsByteIdenticalAndNonPerturbing) {
  FleetConfig config = SoakConfig(/*seed=*/4);
  config.fault_a_to_b = FleetMixForSeed(4, 0xA2B);
  config.fault_b_to_a = FleetMixForSeed(4, 0xB2A);
  config.mux.retry.adaptive.enabled = true;  // cover the adaptive path too

  auto run = [&](std::string* recording_json) {
    RecorderSession session(1u << 18);
    FleetResult result = RunFleet(config);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    *recording_json = RecordingToJson(session.Stop());
    return TimelineToJson(result.timeline);
  };

  std::string baseline_recording;
  config.timeline_tick_nanos = 0;
  run(&baseline_recording);

  config.timeline_tick_nanos = 1'000'000;  // 1 ms virtual tick
  std::string first_recording;
  std::string second_recording;
  std::string first = run(&first_recording);
  std::string second = run(&second_recording);

  // Same seed, same bytes — the discipline every artifact in this repo
  // follows, now including the timeline.
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_recording, second_recording);
  // The sampler only reads: the recording is identical with it installed.
  EXPECT_EQ(baseline_recording, first_recording);

  auto parsed = ParseTimeline(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tick_nanos, 1'000'000u);
  EXPECT_GT(parsed->ticks, 0u);
  EXPECT_FALSE(parsed->sketches.empty());
  EXPECT_EQ(TimelineToJson(*parsed), first);  // parse/serialize round trip
}

}  // namespace
}  // namespace flexrpc
