// Tests for same-domain invocation semantics (§4.4): copy-vs-borrow for in
// parameters and allocation matching for out parameters.

#include <gtest/gtest.h>

#include <cstring>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/rpc/samedomain.h"

namespace flexrpc {
namespace {

constexpr char kIoIdl[] = R"(
  interface FileIO {
    sequence<octet> read(in unsigned long count);
    void write(in sequence<octet> data);
  };
)";

class SameDomainTest : public ::testing::Test {
 protected:
  void Load(std::string_view client_pdl, std::string_view server_pdl) {
    DiagnosticSink diags;
    idl_ = ParseCorbaIdl(kIoIdl, "t.idl", &diags);
    ASSERT_NE(idl_, nullptr) << diags.ToString();
    ASSERT_TRUE(AnalyzeInterfaceFile(idl_.get(), &diags));
    if (client_pdl.empty()) {
      ASSERT_TRUE(ApplyPdl(*idl_, Side::kClient, nullptr, &client_, &diags));
    } else {
      ASSERT_TRUE(ApplyPdlText(*idl_, Side::kClient, client_pdl, "c.pdl",
                               &client_, &diags))
          << diags.ToString();
    }
    if (server_pdl.empty()) {
      ASSERT_TRUE(ApplyPdl(*idl_, Side::kServer, nullptr, &server_, &diags));
    } else {
      ASSERT_TRUE(ApplyPdlText(*idl_, Side::kServer, server_pdl, "s.pdl",
                               &server_, &diags))
          << diags.ToString();
    }
  }

  const OperationDecl& Op(std::string_view name) {
    return *idl_->interfaces[0].FindOp(name);
  }
  const OpPresentation& ClientOp(std::string_view name) {
    return *client_.Find("FileIO")->FindOp(name);
  }
  const OpPresentation& ServerOp(std::string_view name) {
    return *server_.Find("FileIO")->FindOp(name);
  }

  std::unique_ptr<InterfaceFile> idl_;
  PresentationSet client_;
  PresentationSet server_;
  Arena arena_{"domain"};
};

// §4.4.1: neither side relaxed anything -> the stub must copy.
TEST_F(SameDomainTest, DefaultInParamIsCopied) {
  Load("", "");
  const void* seen = nullptr;
  auto conn = SameDomainConnection::Bind(
      Op("write"), ClientOp("write"), ServerOp("write"), &arena_,
      [&](ArgVec* args, Arena*) {
        seen = (*args)[0].ptr();
        // Server may scribble: it owns the copy.
        std::memset((*args)[0].ptr(), 0, (*args)[0].length);
        return Status::Ok();
      });
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  uint8_t buffer[1024];
  std::memset(buffer, 0x77, sizeof(buffer));
  ArgVec args(3);  // data + presentation slots + result
  args[0].set_ptr(buffer);
  args[0].length = sizeof(buffer);
  ASSERT_TRUE(conn->Call(&args).ok());
  EXPECT_NE(seen, buffer);           // server saw a copy
  EXPECT_EQ(buffer[0], 0x77);        // client data survived
  EXPECT_EQ(conn->copies(), 1u);
  EXPECT_EQ(conn->bytes_copied(), 1024u);
  EXPECT_EQ(arena_.live_blocks(), 0u);  // stub copy was released
}

// §4.4.1: the client said [trashable] -> the pointer is passed through.
TEST_F(SameDomainTest, TrashableInParamIsBorrowed) {
  Load("FileIO_write(char *[trashable] data);", "");
  const void* seen = nullptr;
  auto conn = SameDomainConnection::Bind(
      Op("write"), ClientOp("write"), ServerOp("write"), &arena_,
      [&](ArgVec* args, Arena*) {
        seen = (*args)[0].ptr();
        std::memset((*args)[0].ptr(), 0, (*args)[0].length);
        return Status::Ok();
      });
  ASSERT_TRUE(conn.ok());

  uint8_t buffer[1024];
  std::memset(buffer, 0x77, sizeof(buffer));
  ArgVec args(3);
  args[0].set_ptr(buffer);
  args[0].length = sizeof(buffer);
  ASSERT_TRUE(conn->Call(&args).ok());
  EXPECT_EQ(seen, buffer);     // no copy: the server got the real buffer
  EXPECT_EQ(buffer[0], 0x00);  // and trashed it, as permitted
  EXPECT_EQ(conn->copies(), 0u);
}

// §4.4.1: the server promised [preserved] -> borrow is safe too.
TEST_F(SameDomainTest, PreservedInParamIsBorrowed) {
  Load("", "FileIO_write(char *[preserved] data);");
  const void* seen = nullptr;
  auto conn = SameDomainConnection::Bind(
      Op("write"), ClientOp("write"), ServerOp("write"), &arena_,
      [&](ArgVec* args, Arena*) {
        seen = (*args)[0].ptr();  // reads only
        return Status::Ok();
      });
  ASSERT_TRUE(conn.ok());
  uint8_t buffer[64];
  std::memset(buffer, 0x12, sizeof(buffer));
  ArgVec args(3);
  args[0].set_ptr(buffer);
  args[0].length = sizeof(buffer);
  ASSERT_TRUE(conn->Call(&args).ok());
  EXPECT_EQ(seen, buffer);
  EXPECT_EQ(conn->copies(), 0u);
}

// §4.4.2 group 2: server provides its (already-allocated) buffer, client
// has no constraint -> move, zero copies.
TEST_F(SameDomainTest, OutParamMoveSemantics) {
  Load("", "");
  void* server_buffer = arena_.AllocateBlock(512);
  std::memset(server_buffer, 0xAB, 512);
  auto conn = SameDomainConnection::Bind(
      Op("read"), ClientOp("read"), ServerOp("read"), &arena_,
      [&](ArgVec* args, Arena*) {
        size_t result = args->size() - 1;
        (*args)[result].set_ptr(server_buffer);
        (*args)[result].length = 512;
        return Status::Ok();
      });
  ASSERT_TRUE(conn.ok());
  ArgVec args(2);  // count + result
  args[0].scalar = 512;
  ASSERT_TRUE(conn->Call(&args).ok());
  EXPECT_EQ(args[1].ptr(), server_buffer);  // donated, not copied
  EXPECT_EQ(conn->copies(), 0u);
  arena_.FreeBlock(server_buffer);  // client's responsibility now
}

// §4.4.2 group 3: client provides the buffer, server has no constraint ->
// the work function fills the client's storage directly.
TEST_F(SameDomainTest, OutParamFillsClientBuffer) {
  Load("FileIO_read()[alloc(user)];", "FileIO_read()[alloc(stub)];");
  auto conn = SameDomainConnection::Bind(
      Op("read"), ClientOp("read"), ServerOp("read"), &arena_,
      [&](ArgVec* args, Arena*) {
        size_t result = args->size() - 1;
        // The stub handed us the client's buffer to fill.
        std::memset((*args)[result].ptr(), 0xCD, 128);
        (*args)[result].length = 128;
        return Status::Ok();
      });
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  uint8_t mine[512];
  ArgVec args(2);
  args[0].scalar = 128;
  args[1].set_ptr(mine);
  args[1].capacity = sizeof(mine);
  ASSERT_TRUE(conn->Call(&args).ok());
  EXPECT_EQ(mine[64], 0xCD);
  EXPECT_EQ(args[1].length, 128u);
  EXPECT_EQ(conn->copies(), 0u);
}

// §4.4.2 group 4: both sides insist on their own buffer -> someone must
// copy, and the stub does it.
TEST_F(SameDomainTest, OutParamMismatchCopies) {
  Load("FileIO_read()[alloc(user)];", "FileIO_read()[alloc(user)];");
  void* server_buffer = arena_.AllocateBlock(256);
  std::memset(server_buffer, 0xEF, 256);
  auto conn = SameDomainConnection::Bind(
      Op("read"), ClientOp("read"), ServerOp("read"), &arena_,
      [&](ArgVec* args, Arena*) {
        size_t result = args->size() - 1;
        (*args)[result].set_ptr(server_buffer);
        (*args)[result].length = 256;
        return Status::Ok();
      });
  ASSERT_TRUE(conn.ok());
  uint8_t mine[512];
  ArgVec args(2);
  args[0].scalar = 256;
  args[1].set_ptr(mine);
  args[1].capacity = sizeof(mine);
  ASSERT_TRUE(conn->Call(&args).ok());
  EXPECT_EQ(mine[0], 0xEF);
  EXPECT_EQ(conn->copies(), 1u);
  EXPECT_EQ(conn->bytes_copied(), 256u);
  // Server presentation kept the default dealloc(always): the stub freed
  // the donated-but-copied buffer.
  EXPECT_EQ(arena_.live_blocks(), 0u);
}

TEST_F(SameDomainTest, MismatchCopyChecksClientCapacity) {
  Load("FileIO_read()[alloc(user)];", "FileIO_read()[alloc(user)];");
  void* server_buffer = arena_.AllocateBlock(256);
  auto conn = SameDomainConnection::Bind(
      Op("read"), ClientOp("read"), ServerOp("read"), &arena_,
      [&](ArgVec* args, Arena*) {
        size_t result = args->size() - 1;
        (*args)[result].set_ptr(server_buffer);
        (*args)[result].length = 256;
        return Status::Ok();
      });
  ASSERT_TRUE(conn.ok());
  uint8_t tiny[16];
  ArgVec args(2);
  args[1].set_ptr(tiny);
  args[1].capacity = sizeof(tiny);
  EXPECT_EQ(conn->Call(&args).code(), StatusCode::kResourceExhausted);
  arena_.FreeBlock(server_buffer);
}

TEST_F(SameDomainTest, PerCallModeMatchesBindTimeMode) {
  Load("FileIO_write(char *[trashable] data);", "");
  for (auto mode : {SameDomainConnection::PlanMode::kBindTime,
                    SameDomainConnection::PlanMode::kPerCall}) {
    auto conn = SameDomainConnection::Bind(
        Op("write"), ClientOp("write"), ServerOp("write"), &arena_,
        [](ArgVec*, Arena*) { return Status::Ok(); }, mode);
    ASSERT_TRUE(conn.ok());
    uint8_t buffer[64];
    ArgVec args(3);
    args[0].set_ptr(buffer);
    args[0].length = sizeof(buffer);
    ASSERT_TRUE(conn->Call(&args).ok());
    EXPECT_EQ(conn->copies(), 0u);
  }
}

TEST_F(SameDomainTest, PlanExposedForInspection) {
  Load("", "");
  auto plan = ComputeSameDomainPlan(Op("write"), ClientOp("write"),
                                    ServerOp("write"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 1u);  // one in param, void result
  EXPECT_EQ((*plan)[0].in_action, InAction::kCopyForServer);

  auto read_plan =
      ComputeSameDomainPlan(Op("read"), ClientOp("read"), ServerOp("read"));
  ASSERT_TRUE(read_plan.ok());
  ASSERT_EQ(read_plan->size(), 2u);  // count + result
  EXPECT_EQ((*read_plan)[1].out_action, OutAction::kPassServerBuffer);
}

}  // namespace
}  // namespace flexrpc
