// Test support: deterministic random native-layout values for property
// tests over the marshal engine.

#ifndef FLEXRPC_TESTS_VALUE_TESTUTIL_H_
#define FLEXRPC_TESTS_VALUE_TESTUTIL_H_

#include <cstring>

#include "src/idl/types.h"
#include "src/marshal/layout.h"
#include "src/support/arena.h"
#include "src/support/rng.h"

namespace flexrpc {

// Fills `dst` (NativeSize(type) bytes) with a random value; nested buffers
// come from `arena`.
inline void FillRandomValue(Rng* rng, Arena* arena, const Type* type,
                            void* dst) {
  const Type* t = type->Resolve();
  switch (t->kind()) {
    case TypeKind::kVoid:
      return;
    case TypeKind::kBool:
      StoreScalar(t, dst, rng->NextBool() ? 1 : 0);
      return;
    case TypeKind::kOctet:
    case TypeKind::kChar:
      StoreScalar(t, dst, rng->NextBelow(256));
      return;
    case TypeKind::kI16:
    case TypeKind::kU16:
      StoreScalar(t, dst, rng->NextBelow(1u << 16));
      return;
    case TypeKind::kEnum: {
      // Pick one of the declared members so the value round-trips as a
      // meaningful discriminant too.
      if (t->members().empty()) {
        StoreScalar(t, dst, rng->NextBelow(1u << 31));
      } else {
        StoreScalar(
            t, dst,
            t->members()[rng->NextBelow(t->members().size())].value);
      }
      return;
    }
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kF32:
      StoreScalar(t, dst, rng->NextU32());
      return;
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kObjRef:
      StoreScalar(t, dst, rng->NextU64());
      return;
    case TypeKind::kF64: {
      double v = rng->NextDouble() * 1e6;
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      StoreScalar(t, dst, bits);
      return;
    }
    case TypeKind::kString: {
      uint32_t max_len = t->bound() != 0 && t->bound() < 24 ? t->bound() : 24;
      uint32_t len = static_cast<uint32_t>(rng->NextBelow(max_len + 1));
      char* s = static_cast<char*>(arena->AllocateBlock(len + 1));
      for (uint32_t i = 0; i < len; ++i) {
        s[i] = static_cast<char>('a' + rng->NextBelow(26));
      }
      s[len] = '\0';
      std::memcpy(dst, &s, sizeof(s));
      return;
    }
    case TypeKind::kSequence: {
      uint32_t max_len = t->bound() != 0 && t->bound() < 8 ? t->bound() : 8;
      uint32_t len = static_cast<uint32_t>(rng->NextBelow(max_len + 1));
      const Type* elem = t->element();
      size_t stride = elem->Resolve()->kind() == TypeKind::kOctet ||
                              elem->Resolve()->kind() == TypeKind::kChar
                          ? 1
                          : elem->NativeSize();
      SeqRep rep;
      rep.maximum = len;
      rep.length = len;
      rep.buffer = arena->AllocateBlock(len > 0 ? len * stride : 1);
      auto* base = static_cast<uint8_t*>(rep.buffer);
      for (uint32_t i = 0; i < len; ++i) {
        FillRandomValue(rng, arena, elem, base + i * stride);
      }
      std::memcpy(dst, &rep, sizeof(rep));
      return;
    }
    case TypeKind::kArray: {
      const Type* elem = t->element();
      size_t stride = elem->Resolve()->kind() == TypeKind::kOctet ||
                              elem->Resolve()->kind() == TypeKind::kChar
                          ? 1
                          : elem->NativeSize();
      auto* base = static_cast<uint8_t*>(dst);
      for (uint32_t i = 0; i < t->bound(); ++i) {
        FillRandomValue(rng, arena, elem, base + i * stride);
      }
      return;
    }
    case TypeKind::kStruct: {
      auto* base = static_cast<uint8_t*>(dst);
      for (size_t i = 0; i < t->fields().size(); ++i) {
        FillRandomValue(rng, arena, t->fields()[i].type,
                        base + NativeFieldOffset(t, i));
      }
      return;
    }
    case TypeKind::kUnion: {
      const UnionArm& arm =
          t->arms()[rng->NextBelow(t->arms().size())];
      uint32_t disc = arm.label;
      if (arm.is_default) {
        // Pick a label no other arm uses.
        disc = 0xFFFF;
      }
      std::memcpy(dst, &disc, sizeof(disc));
      if (arm.type->Resolve()->kind() != TypeKind::kVoid) {
        FillRandomValue(rng, arena, arm.type,
                        static_cast<uint8_t*>(dst) + UnionPayloadOffset(t));
      }
      return;
    }
    case TypeKind::kAlias:
      return;  // unreachable: Resolve() strips aliases
  }
}

// Allocates NativeSize(type) bytes from `arena` and fills them randomly.
inline void* RandomNativeValue(Rng* rng, Arena* arena, const Type* type) {
  void* mem = arena->AllocateBlock(type->NativeSize() > 0
                                       ? type->NativeSize()
                                       : 1);
  std::memset(mem, 0, type->NativeSize());
  FillRandomValue(rng, arena, type, mem);
  return mem;
}

}  // namespace flexrpc

#endif  // FLEXRPC_TESTS_VALUE_TESTUTIL_H_
