// Unit tests for src/support: arenas, byte streams, status, strings, rng,
// the discrete-event queue, and the send path's zero-copy framing.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/support/arena.h"
#include "src/support/bytes.h"
#include "src/support/diag.h"
#include "src/support/event_queue.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/strings.h"
#include "src/support/timing.h"
#include "src/support/trace.h"

namespace flexrpc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = DataLossError("truncated");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(st.message(), "truncated");
  EXPECT_EQ(st.ToString(), "DATA_LOSS: truncated");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, TransportDegradationCodes) {
  // The retrying transport's graceful-degradation states are first-class
  // codes, not kInternal: callers dispatch on them.
  Status deadline = DeadlineExceededError("virtual deadline passed");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.message(), "virtual deadline passed");
  EXPECT_EQ(deadline.ToString(),
            "DEADLINE_EXCEEDED: virtual deadline passed");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");

  Status unavailable = UnavailableError("retry budget exhausted");
  EXPECT_FALSE(unavailable.ok());
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "UNAVAILABLE: retry budget exhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return v / 2;
}

Status UseAssignOrReturn(int v, int* out) {
  FLEXRPC_ASSIGN_OR_RETURN(int half, HalveEven(v));
  *out = half;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = UseAssignOrReturn(7, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ArenaTest, AllocationsAreDisjointAndOwned) {
  Arena a("a");
  Arena b("b");
  void* pa = a.Allocate(128);
  void* pb = b.Allocate(128);
  EXPECT_NE(pa, pb);
  EXPECT_TRUE(a.Owns(pa));
  EXPECT_FALSE(a.Owns(pb));
  EXPECT_TRUE(b.Owns(pb));
  EXPECT_FALSE(b.Owns(pa));
}

TEST(ArenaTest, AlignmentHonored) {
  Arena a("a");
  a.Allocate(1);  // misalign the bump pointer
  void* p = a.Allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
}

TEST(ArenaTest, BlockRecycling) {
  Arena a("a");
  void* p1 = a.AllocateBlock(100);
  std::memset(p1, 0xAB, 100);
  a.FreeBlock(p1);
  void* p2 = a.AllocateBlock(100);  // same size class -> recycled
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(a.block_allocs(), 2u);
  EXPECT_EQ(a.block_frees(), 1u);
  EXPECT_EQ(a.live_blocks(), 1u);
}

TEST(ArenaTest, DifferentSizeClassesDoNotMix) {
  Arena a("a");
  void* small = a.AllocateBlock(16);
  a.FreeBlock(small);
  void* large = a.AllocateBlock(4096);
  EXPECT_NE(small, large);
}

TEST(ArenaTest, LargeAllocationsSpanChunks) {
  Arena a("a");
  void* p = a.Allocate(1u << 20);  // 1 MiB, larger than the min chunk
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, 1u << 20);  // must be fully addressable
  EXPECT_TRUE(a.Owns(p));
}

TEST(ArenaTest, ResetReclaimsEverything) {
  Arena a("a");
  a.Allocate(1000);
  a.AllocateBlock(64);
  a.Reset();
  EXPECT_EQ(a.bytes_allocated(), 0u);
  EXPECT_EQ(a.live_blocks(), 0u);
}

TEST(ByteStreamTest, ScalarRoundTrip) {
  ByteWriter w;
  w.WriteU8(0x12);
  w.WriteU16Be(0x3456);
  w.WriteU32Be(0x789ABCDE);
  w.WriteU64Be(0x0123456789ABCDEFull);
  ByteReader r(w.span());
  EXPECT_EQ(r.ReadU8().value(), 0x12);
  EXPECT_EQ(r.ReadU16Be().value(), 0x3456);
  EXPECT_EQ(r.ReadU32Be().value(), 0x789ABCDEu);
  EXPECT_EQ(r.ReadU64Be().value(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteStreamTest, BigEndianLayout) {
  ByteWriter w;
  w.WriteU32Be(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.span()[0], 0x01);
  EXPECT_EQ(w.span()[3], 0x04);
}

TEST(ByteStreamTest, TruncationIsDataLossNotCrash) {
  ByteWriter w;
  w.WriteU16Be(7);
  ByteReader r(w.span());
  EXPECT_TRUE(r.ReadU8().ok());
  Result<uint32_t> big = r.ReadU32Be();
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kDataLoss);
}

TEST(ByteStreamTest, PatchBackfillsLength) {
  ByteWriter w;
  w.WriteU32Be(0);  // placeholder
  w.WriteBytes("abc", 3);
  w.PatchU32Be(0, 3);
  ByteReader r(w.span());
  EXPECT_EQ(r.ReadU32Be().value(), 3u);
}

TEST(ByteStreamTest, ViewAvoidsCopy) {
  ByteWriter w;
  w.WriteBytes("hello", 5);
  ByteReader r(w.span());
  Result<ByteSpan> view = r.ReadView(5);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->data(), w.span().data());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, SplitTrimJoin) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrTrim("  x\t"), "x");
  EXPECT_EQ(StrJoin({"a", "b"}, "::"), "a::b");
}

TEST(StringsTest, Predicates) {
  EXPECT_TRUE(StrStartsWith("foobar", "foo"));
  EXPECT_FALSE(StrStartsWith("fo", "foo"));
  EXPECT_TRUE(StrEndsWith("foobar", "bar"));
  EXPECT_TRUE(IsCIdentifier("_x1"));
  EXPECT_FALSE(IsCIdentifier("1x"));
  EXPECT_FALSE(IsCIdentifier(""));
}

TEST(StringsTest, CamelCaseAndIndent) {
  EXPECT_EQ(ToCamelCase("write_msg"), "WriteMsg");
  EXPECT_EQ(Indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(Indent("a\n\nb", 2), "  a\n\n  b");  // blank lines stay blank
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, RangesRespected) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextInRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SpreadsValues) {
  Rng rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(rng.NextBelow(1u << 30));
  }
  EXPECT_GT(seen.size(), 60u);  // no obvious cycle
}

TEST(TimingTest, VirtualClockAccumulates) {
  VirtualClock clock;
  clock.AdvanceNanos(500);
  clock.AdvanceSeconds(1e-6);
  EXPECT_EQ(clock.now_nanos(), 1500u);
  clock.Reset();
  EXPECT_EQ(clock.now_nanos(), 0u);
}

TEST(TimingTest, StopwatchAdvances) {
  Stopwatch sw;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + static_cast<uint64_t>(i);
  }
  EXPECT_GT(sw.ElapsedNanos(), 0u);
}

TEST(EventQueueTest, RunsInDeadlineOrderAndAdvancesTheClock) {
  VirtualClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_TRUE(q.RunNext());
  EXPECT_EQ(clock.now_nanos(), 100u);
  EXPECT_EQ(q.RunUntilIdle(), 2u);
  EXPECT_EQ(clock.now_nanos(), 300u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, EqualDeadlinesRunInSchedulingOrder) {
  VirtualClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.ScheduleAt(1000, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTest, CancelledEventsNeverRun) {
  VirtualClock clock;
  EventQueue q(&clock);
  int ran = 0;
  EventQueue::EventId keep = q.ScheduleAt(10, [&] { ++ran; });
  EventQueue::EventId gone = q.ScheduleAt(5, [&] { ++ran; });
  EXPECT_TRUE(q.Cancel(gone));
  EXPECT_FALSE(q.Cancel(gone));  // already cancelled
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntilIdle();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(q.Cancel(keep));  // already ran
}

TEST(EventQueueTest, PastDeadlineRunsWithoutRewindingTheClock) {
  VirtualClock clock;
  clock.AdvanceNanos(500);
  EventQueue q(&clock);
  uint64_t observed = 0;
  q.ScheduleAt(100, [&] { observed = q.clock()->now_nanos(); });
  EXPECT_TRUE(q.RunNext());
  EXPECT_EQ(observed, 500u);  // ran "late", clock untouched
  EXPECT_EQ(clock.now_nanos(), 500u);
}

TEST(EventQueueTest, CallbacksMayScheduleAndCancelReentrantly) {
  VirtualClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  EventQueue::EventId victim = q.ScheduleAt(200, [&] { order.push_back(9); });
  q.ScheduleAt(100, [&] {
    order.push_back(1);
    EXPECT_TRUE(q.Cancel(victim));
    q.ScheduleAt(150, [&] { order.push_back(2); });
    q.ScheduleAfter(200, [&] { order.push_back(3); });  // at 300
  });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now_nanos(), 300u);
}

TEST(ByteStreamTest, TakeBufferReleasesWithoutCopying) {
  ByteWriter w;
  w.WriteU32Be(0xDEADBEEF);
  w.WriteSpan(ByteSpan(reinterpret_cast<const uint8_t*>("payload"), 7));
  const uint8_t* data_before = w.span().data();
  std::vector<uint8_t> taken = w.TakeBuffer();
  EXPECT_EQ(taken.data(), data_before);  // same allocation, not a copy
  EXPECT_EQ(taken.size(), 11u);
}

TEST(DatagramSendTest, FramingPerformsNoBufferCopy) {
  VirtualClock clock;
  DatagramChannel ch(LinkModel(), FaultPlan(), FaultPlan(), &clock);
  TraceSession session;
  uint8_t payload[64] = {1, 2, 3};
  ch.Send(DatagramChannel::Dir::kAtoB, ByteSpan(payload, sizeof(payload)));
  ch.Send(DatagramChannel::Dir::kAtoB, ByteSpan(payload, sizeof(payload)));
  // The framed bytes move straight from the writer onto the wire queue.
  EXPECT_EQ(session.Report().counter(TraceCounter::kNetFrameCopies), 0u);
}

TEST(DatagramSendTest, OnlyDuplicatedFramesPayForACopy) {
  VirtualClock clock;
  FaultConfig dupper;
  dupper.dup_prob = 1.0;
  DatagramChannel ch(LinkModel(), FaultPlan(dupper), FaultPlan(), &clock);
  TraceSession session;
  uint8_t payload[16] = {7};
  ch.Send(DatagramChannel::Dir::kAtoB, ByteSpan(payload, sizeof(payload)));
  // A duplicated frame needs its own buffer — exactly one copy, ever.
  EXPECT_EQ(session.Report().counter(TraceCounter::kNetFrameCopies), 1u);
  int arrivals = 0;
  while (ch.HasPending(DatagramChannel::Dir::kAtoB)) {
    ASSERT_TRUE(ch.Receive(DatagramChannel::Dir::kAtoB).ok());
    ++arrivals;
  }
  EXPECT_EQ(arrivals, 2);
}

TEST(DiagTest, FormattingAndCounts) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.HasErrors());
  sink.Error("f.idl", SourcePos{3, 7}, "bad");
  sink.Warning("f.idl", SourcePos{4, 1}, "meh");
  EXPECT_TRUE(sink.HasErrors());
  EXPECT_EQ(sink.error_count(), 1);
  EXPECT_EQ(sink.diagnostics()[0].ToString(), "f.idl:3:7: error: bad");
  EXPECT_NE(sink.ToString().find("warning: meh"), std::string::npos);
}

// The recorder/bench artifacts round-trip through the in-repo JSON layer;
// event names are closed-catalog but user-visible strings (file paths,
// status messages) can carry anything printable or not.
TEST(JsonTest, EscapingRoundTripsControlAndQuoteCharacters) {
  const std::string hostile =
      "quote:\" backslash:\\ newline:\n tab:\t cr:\r bell:\x07 nul-adjacent:"
      "\x01\x1f slash:/ utf8:\xc3\xa9";
  JsonWriter w;
  w.BeginObject();
  w.Key(hostile).String(hostile);
  w.EndObject();
  const std::string& json = w.str();
  // The serialized form must never contain a raw control character —
  // except the pretty-printer's own inter-element newlines, which sit
  // outside string literals.
  for (char c : json) {
    if (c == '\n') {
      continue;
    }
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte in output";
  }
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);

  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->object.size(), 1u);
  EXPECT_EQ(parsed->object[0].first, hostile);
  EXPECT_EQ(parsed->object[0].second.string, hostile);
}

TEST(JsonTest, EscapingRoundTripsEveryControlByte) {
  std::string all_controls;
  for (int c = 1; c < 0x20; ++c) {  // NUL would truncate a C string, skip
    all_controls.push_back(static_cast<char>(c));
  }
  JsonWriter w;
  w.BeginArray().String(all_controls).EndArray();
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->array.size(), 1u);
  EXPECT_EQ(parsed->array[0].string, all_controls);
}

TEST(JsonTest, RawNumberEmitsLiteralVerbatim) {
  // RawNumber exists for exact decimal control (Chrome trace timestamps:
  // nanos rendered as microseconds with three decimals); Double's %.9g
  // would round 18446744073709.551 past sub-microsecond precision.
  JsonWriter w;
  w.BeginObject();
  w.Key("ts").RawNumber("18446744073709.551");
  w.Key("plain").RawNumber("42");
  w.EndObject();
  EXPECT_NE(w.str().find("\"ts\": 18446744073709.551"), std::string::npos);
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("plain")->number, 42.0);
}

}  // namespace
}  // namespace flexrpc
