// Unit tests for the Sun RPC language front-end, centered on the NFSv2
// subset the Linux NFS client experiment (paper §4.1) uses.

#include <gtest/gtest.h>

#include "src/idl/sunrpc_parser.h"

namespace flexrpc {
namespace {

// NFSv2 subset mirroring the declarations used by the paper's Figure 1.
constexpr char kNfsIdl[] = R"(
const NFS_MAXDATA = 8192;
const NFS_FHSIZE = 32;

enum nfsstat {
  NFS_OK = 0,
  NFSERR_PERM = 1,
  NFSERR_NOENT = 2,
  NFSERR_IO = 5
};

struct nfs_fh {
  opaque data[NFS_FHSIZE];
};

struct fattr {
  unsigned type;
  unsigned mode;
  unsigned nlink;
  unsigned uid;
  unsigned gid;
  unsigned size;
  unsigned blocksize;
  unsigned rdev;
  unsigned blocks;
  unsigned fsid;
  unsigned fileid;
  unsigned atime;
  unsigned mtime;
  unsigned ctime;
};

struct readargs {
  nfs_fh file;
  unsigned offset;
  unsigned count;
  unsigned totalcount;
};

struct readokres {
  fattr attributes;
  opaque data<NFS_MAXDATA>;
};

union readres switch (nfsstat status) {
  case NFS_OK:
    readokres reply;
  default:
    void;
};

program NFS_PROGRAM {
  version NFS_VERSION {
    fattr NFSPROC_GETATTR(nfs_fh) = 1;
    readres NFSPROC_READ(readargs) = 6;
  } = 2;
} = 100003;
)";

TEST(SunRpcParserTest, NfsProgramParses) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(kNfsIdl, "nfs.x", &diags);
  ASSERT_NE(file, nullptr) << diags.ToString();
  ASSERT_EQ(file->interfaces.size(), 1u);
  const InterfaceDecl& itf = file->interfaces[0];
  EXPECT_EQ(itf.name, "NFS_VERSION");
  EXPECT_EQ(itf.program_number, 100003u);
  EXPECT_EQ(itf.version_number, 2u);
  ASSERT_EQ(itf.ops.size(), 2u);
  EXPECT_EQ(itf.ops[0].name, "NFSPROC_GETATTR");
  EXPECT_EQ(itf.ops[0].opnum, 1u);
  EXPECT_EQ(itf.ops[1].name, "NFSPROC_READ");
  EXPECT_EQ(itf.ops[1].opnum, 6u);
}

TEST(SunRpcParserTest, OpaqueFixedAndVariable) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(kNfsIdl, "nfs.x", &diags);
  ASSERT_NE(file, nullptr);
  const Type* fh = file->types.FindNamed("nfs_fh");
  ASSERT_NE(fh, nullptr);
  const Type* fh_data = fh->fields()[0].type;
  EXPECT_EQ(fh_data->kind(), TypeKind::kArray);
  EXPECT_EQ(fh_data->bound(), 32u);
  EXPECT_EQ(fh_data->element()->kind(), TypeKind::kOctet);

  const Type* okres = file->types.FindNamed("readokres");
  const Type* data = okres->fields()[1].type;
  EXPECT_EQ(data->kind(), TypeKind::kSequence);
  EXPECT_EQ(data->bound(), 8192u);
}

TEST(SunRpcParserTest, UnionWithVoidDefault) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(kNfsIdl, "nfs.x", &diags);
  ASSERT_NE(file, nullptr);
  const Type* readres = file->types.FindNamed("readres");
  ASSERT_NE(readres, nullptr);
  ASSERT_EQ(readres->arms().size(), 2u);
  EXPECT_EQ(readres->arms()[0].label, 0u);  // NFS_OK resolves to 0
  EXPECT_FALSE(readres->arms()[0].is_default);
  EXPECT_TRUE(readres->arms()[1].is_default);
  EXPECT_EQ(readres->arms()[1].type->kind(), TypeKind::kVoid);
  EXPECT_EQ(readres->discriminant()->kind(), TypeKind::kEnum);
}

TEST(SunRpcParserTest, ProcedureArgumentBecomesInParam) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(kNfsIdl, "nfs.x", &diags);
  ASSERT_NE(file, nullptr);
  const OperationDecl& read = file->interfaces[0].ops[1];
  ASSERT_EQ(read.params.size(), 1u);
  EXPECT_EQ(read.params[0].dir, ParamDir::kIn);
  EXPECT_EQ(read.params[0].type->name(), "readargs");
  EXPECT_EQ(read.result->name(), "readres");
}

TEST(SunRpcParserTest, VoidProcedureArgument) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(R"(
    program P { version V { unsigned NULLPROC(void) = 0; } = 1; } = 200;
  )", "p.x", &diags);
  ASSERT_NE(file, nullptr) << diags.ToString();
  EXPECT_TRUE(file->interfaces[0].ops[0].params.empty());
}

TEST(SunRpcParserTest, TypedefsAndBareString) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(R"(
    typedef string filename<255>;
    typedef unsigned hyper bigint;
    program P { version V { bigint LEN(filename) = 1; } = 1; } = 300;
  )", "p.x", &diags);
  ASSERT_NE(file, nullptr) << diags.ToString();
  EXPECT_EQ(file->types.FindNamed("filename")->Resolve()->kind(),
            TypeKind::kString);
  EXPECT_EQ(file->types.FindNamed("bigint")->Resolve()->kind(),
            TypeKind::kU64);
}

TEST(SunRpcParserTest, IntTypeSpellings) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(R"(
    struct s {
      int a;
      unsigned int b;
      unsigned c;
      hyper d;
      bool e;
    };
    program P { version V { s F(void) = 1; } = 1; } = 400;
  )", "p.x", &diags);
  ASSERT_NE(file, nullptr) << diags.ToString();
  const Type* s = file->types.FindNamed("s");
  EXPECT_EQ(s->fields()[0].type->kind(), TypeKind::kI32);
  EXPECT_EQ(s->fields()[1].type->kind(), TypeKind::kU32);
  EXPECT_EQ(s->fields()[2].type->kind(), TypeKind::kU32);
  EXPECT_EQ(s->fields()[3].type->kind(), TypeKind::kI64);
  EXPECT_EQ(s->fields()[4].type->kind(), TypeKind::kBool);
}

TEST(SunRpcParserTest, OptionalDataIsRejectedWithDiagnostic) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(R"(
    struct node { int v; node *next; };
    program P { version V { node F(void) = 1; } = 1; } = 500;
  )", "p.x", &diags);
  EXPECT_EQ(file, nullptr);
  EXPECT_TRUE(diags.HasErrors());
  EXPECT_NE(diags.ToString().find("optional"), std::string::npos);
}

TEST(SunRpcParserTest, PreprocessorLinesIgnored) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(R"(
#include <rpc/rpc.h>
#define FOO 1
    program P { version V { unsigned F(void) = 1; } = 1; } = 600;
  )", "p.x", &diags);
  ASSERT_NE(file, nullptr) << diags.ToString();
}

TEST(SunRpcParserTest, UnknownTypeReported) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(
      "program P { version V { missing F(void) = 1; } = 1; } = 700;", "p.x",
      &diags);
  EXPECT_EQ(file, nullptr);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SunRpcParserTest, MultipleVersions) {
  DiagnosticSink diags;
  auto file = ParseSunRpc(R"(
    program P {
      version V1 { unsigned F(void) = 1; } = 1;
      version V2 { unsigned F(void) = 1; unsigned G(void) = 2; } = 2;
    } = 800;
  )", "p.x", &diags);
  ASSERT_NE(file, nullptr) << diags.ToString();
  ASSERT_EQ(file->interfaces.size(), 2u);
  EXPECT_EQ(file->interfaces[0].version_number, 1u);
  EXPECT_EQ(file->interfaces[1].version_number, 2u);
  EXPECT_EQ(file->interfaces[1].program_number, 800u);
}

}  // namespace
}  // namespace flexrpc
