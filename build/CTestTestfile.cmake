# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/support")
subdirs("src/idl")
subdirs("src/pdl")
subdirs("src/sig")
subdirs("src/marshal")
subdirs("src/codegen")
subdirs("src/osim")
subdirs("src/ipc")
subdirs("src/fbuf")
subdirs("src/net")
subdirs("src/rpc")
subdirs("src/apps")
subdirs("tools/idlc")
subdirs("tests")
subdirs("bench")
subdirs("examples")
