# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[quickstart_runs]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[quickstart_runs]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;44;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[trust_levels_runs]=] "/root/repo/build/examples/trust_levels")
set_tests_properties([=[trust_levels_runs]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;45;add_test;/root/repo/examples/CMakeLists.txt;0;")
