file(REMOVE_RECURSE
  "CMakeFiles/quickstart.dir/gen/syslog.flexgen.cc.o"
  "CMakeFiles/quickstart.dir/gen/syslog.flexgen.cc.o.d"
  "CMakeFiles/quickstart.dir/quickstart.cpp.o"
  "CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  "gen/syslog.flexgen.cc"
  "gen/syslog.flexgen.h"
  "quickstart"
  "quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
