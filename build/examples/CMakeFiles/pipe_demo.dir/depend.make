# Empty dependencies file for pipe_demo.
# This may be replaced when dependencies are built.
