file(REMOVE_RECURSE
  "CMakeFiles/pipe_demo.dir/pipe_demo.cpp.o"
  "CMakeFiles/pipe_demo.dir/pipe_demo.cpp.o.d"
  "pipe_demo"
  "pipe_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipe_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
