file(REMOVE_RECURSE
  "CMakeFiles/nfs_read.dir/nfs_read.cpp.o"
  "CMakeFiles/nfs_read.dir/nfs_read.cpp.o.d"
  "nfs_read"
  "nfs_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
