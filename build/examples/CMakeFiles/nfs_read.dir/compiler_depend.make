# Empty compiler generated dependencies file for nfs_read.
# This may be replaced when dependencies are built.
