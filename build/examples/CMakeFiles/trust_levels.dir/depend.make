# Empty dependencies file for trust_levels.
# This may be replaced when dependencies are built.
