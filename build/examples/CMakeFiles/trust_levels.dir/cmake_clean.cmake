file(REMOVE_RECURSE
  "CMakeFiles/trust_levels.dir/trust_levels.cpp.o"
  "CMakeFiles/trust_levels.dir/trust_levels.cpp.o.d"
  "trust_levels"
  "trust_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
