
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_nfs_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/apps_nfs_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/apps_nfs_test.cc.o.d"
  "/root/repo/tests/apps_pipe_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/apps_pipe_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/apps_pipe_test.cc.o.d"
  "/root/repo/tests/codegen_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/codegen_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/codegen_test.cc.o.d"
  "/root/repo/tests/fbuf_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/fbuf_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/fbuf_test.cc.o.d"
  "/root/repo/tests/idl_corba_parser_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/idl_corba_parser_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/idl_corba_parser_test.cc.o.d"
  "/root/repo/tests/idl_lexer_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/idl_lexer_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/idl_lexer_test.cc.o.d"
  "/root/repo/tests/idl_sema_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/idl_sema_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/idl_sema_test.cc.o.d"
  "/root/repo/tests/idl_sunrpc_parser_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/idl_sunrpc_parser_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/idl_sunrpc_parser_test.cc.o.d"
  "/root/repo/tests/interop_matrix_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/interop_matrix_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/interop_matrix_test.cc.o.d"
  "/root/repo/tests/ipc_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/ipc_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/ipc_test.cc.o.d"
  "/root/repo/tests/marshal_engine_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/marshal_engine_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/marshal_engine_test.cc.o.d"
  "/root/repo/tests/marshal_value_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/marshal_value_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/marshal_value_test.cc.o.d"
  "/root/repo/tests/osim_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/osim_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/osim_test.cc.o.d"
  "/root/repo/tests/pdl_apply_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/pdl_apply_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/pdl_apply_test.cc.o.d"
  "/root/repo/tests/pdl_determinism_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/pdl_determinism_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/pdl_determinism_test.cc.o.d"
  "/root/repo/tests/pdl_parser_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/pdl_parser_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/pdl_parser_test.cc.o.d"
  "/root/repo/tests/rpc_runtime_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/rpc_runtime_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/rpc_runtime_test.cc.o.d"
  "/root/repo/tests/samedomain_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/samedomain_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/samedomain_test.cc.o.d"
  "/root/repo/tests/sig_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/sig_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/sig_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/flexrpc_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/flexrpc_tests.dir/support_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/flexrpc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/flexrpc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/fbuf/CMakeFiles/flexrpc_fbuf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flexrpc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/flexrpc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/flexrpc_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/osim/CMakeFiles/flexrpc_osim.dir/DependInfo.cmake"
  "/root/repo/build/src/marshal/CMakeFiles/flexrpc_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/flexrpc_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/pdl/CMakeFiles/flexrpc_pdl.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/flexrpc_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flexrpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
