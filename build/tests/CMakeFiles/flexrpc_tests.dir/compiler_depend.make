# Empty compiler generated dependencies file for flexrpc_tests.
# This may be replaced when dependencies are built.
