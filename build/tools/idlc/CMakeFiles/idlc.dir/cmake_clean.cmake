file(REMOVE_RECURSE
  "CMakeFiles/idlc.dir/main.cc.o"
  "CMakeFiles/idlc.dir/main.cc.o.d"
  "idlc"
  "idlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
