file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fbufs.dir/bench_fig7_fbufs.cc.o"
  "CMakeFiles/bench_fig7_fbufs.dir/bench_fig7_fbufs.cc.o.d"
  "bench_fig7_fbufs"
  "bench_fig7_fbufs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fbufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
