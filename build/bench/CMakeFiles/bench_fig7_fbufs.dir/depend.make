# Empty dependencies file for bench_fig7_fbufs.
# This may be replaced when dependencies are built.
