file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_portname.dir/bench_tab_portname.cc.o"
  "CMakeFiles/bench_tab_portname.dir/bench_tab_portname.cc.o.d"
  "bench_tab_portname"
  "bench_tab_portname.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_portname.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
