# Empty compiler generated dependencies file for bench_tab_portname.
# This may be replaced when dependencies are built.
