# Empty compiler generated dependencies file for bench_ablate_plancache.
# This may be replaced when dependencies are built.
