file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_plancache.dir/bench_ablate_plancache.cc.o"
  "CMakeFiles/bench_ablate_plancache.dir/bench_ablate_plancache.cc.o.d"
  "bench_ablate_plancache"
  "bench_ablate_plancache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_plancache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
