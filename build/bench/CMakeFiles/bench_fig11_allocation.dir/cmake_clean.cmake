file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_allocation.dir/bench_fig11_allocation.cc.o"
  "CMakeFiles/bench_fig11_allocation.dir/bench_fig11_allocation.cc.o.d"
  "bench_fig11_allocation"
  "bench_fig11_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
