file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_trust.dir/bench_fig12_trust.cc.o"
  "CMakeFiles/bench_fig12_trust.dir/bench_fig12_trust.cc.o.d"
  "bench_fig12_trust"
  "bench_fig12_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
