file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mutability.dir/bench_fig10_mutability.cc.o"
  "CMakeFiles/bench_fig10_mutability.dir/bench_fig10_mutability.cc.o.d"
  "bench_fig10_mutability"
  "bench_fig10_mutability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mutability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
