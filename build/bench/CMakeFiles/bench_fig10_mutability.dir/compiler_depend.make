# Empty compiler generated dependencies file for bench_fig10_mutability.
# This may be replaced when dependencies are built.
