file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_nfs.dir/bench_fig2_nfs.cc.o"
  "CMakeFiles/bench_fig2_nfs.dir/bench_fig2_nfs.cc.o.d"
  "bench_fig2_nfs"
  "bench_fig2_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
