# Empty dependencies file for bench_fig2_nfs.
# This may be replaced when dependencies are built.
