file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pipe.dir/bench_fig6_pipe.cc.o"
  "CMakeFiles/bench_fig6_pipe.dir/bench_fig6_pipe.cc.o.d"
  "bench_fig6_pipe"
  "bench_fig6_pipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
