# Empty compiler generated dependencies file for bench_ablate_fastpath.
# This may be replaced when dependencies are built.
