file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_fastpath.dir/bench_ablate_fastpath.cc.o"
  "CMakeFiles/bench_ablate_fastpath.dir/bench_ablate_fastpath.cc.o.d"
  "bench_ablate_fastpath"
  "bench_ablate_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
