
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablate_fastpath.cc" "bench/CMakeFiles/bench_ablate_fastpath.dir/bench_ablate_fastpath.cc.o" "gcc" "bench/CMakeFiles/bench_ablate_fastpath.dir/bench_ablate_fastpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/flexrpc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/flexrpc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/flexrpc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/fbuf/CMakeFiles/flexrpc_fbuf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flexrpc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/flexrpc_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/osim/CMakeFiles/flexrpc_osim.dir/DependInfo.cmake"
  "/root/repo/build/src/marshal/CMakeFiles/flexrpc_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/flexrpc_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/pdl/CMakeFiles/flexrpc_pdl.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/flexrpc_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flexrpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
