file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_idl.dir/ast.cc.o"
  "CMakeFiles/flexrpc_idl.dir/ast.cc.o.d"
  "CMakeFiles/flexrpc_idl.dir/corba_parser.cc.o"
  "CMakeFiles/flexrpc_idl.dir/corba_parser.cc.o.d"
  "CMakeFiles/flexrpc_idl.dir/lexer.cc.o"
  "CMakeFiles/flexrpc_idl.dir/lexer.cc.o.d"
  "CMakeFiles/flexrpc_idl.dir/sema.cc.o"
  "CMakeFiles/flexrpc_idl.dir/sema.cc.o.d"
  "CMakeFiles/flexrpc_idl.dir/sunrpc_parser.cc.o"
  "CMakeFiles/flexrpc_idl.dir/sunrpc_parser.cc.o.d"
  "CMakeFiles/flexrpc_idl.dir/types.cc.o"
  "CMakeFiles/flexrpc_idl.dir/types.cc.o.d"
  "libflexrpc_idl.a"
  "libflexrpc_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
