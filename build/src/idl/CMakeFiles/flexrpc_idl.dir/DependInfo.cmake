
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idl/ast.cc" "src/idl/CMakeFiles/flexrpc_idl.dir/ast.cc.o" "gcc" "src/idl/CMakeFiles/flexrpc_idl.dir/ast.cc.o.d"
  "/root/repo/src/idl/corba_parser.cc" "src/idl/CMakeFiles/flexrpc_idl.dir/corba_parser.cc.o" "gcc" "src/idl/CMakeFiles/flexrpc_idl.dir/corba_parser.cc.o.d"
  "/root/repo/src/idl/lexer.cc" "src/idl/CMakeFiles/flexrpc_idl.dir/lexer.cc.o" "gcc" "src/idl/CMakeFiles/flexrpc_idl.dir/lexer.cc.o.d"
  "/root/repo/src/idl/sema.cc" "src/idl/CMakeFiles/flexrpc_idl.dir/sema.cc.o" "gcc" "src/idl/CMakeFiles/flexrpc_idl.dir/sema.cc.o.d"
  "/root/repo/src/idl/sunrpc_parser.cc" "src/idl/CMakeFiles/flexrpc_idl.dir/sunrpc_parser.cc.o" "gcc" "src/idl/CMakeFiles/flexrpc_idl.dir/sunrpc_parser.cc.o.d"
  "/root/repo/src/idl/types.cc" "src/idl/CMakeFiles/flexrpc_idl.dir/types.cc.o" "gcc" "src/idl/CMakeFiles/flexrpc_idl.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/flexrpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
