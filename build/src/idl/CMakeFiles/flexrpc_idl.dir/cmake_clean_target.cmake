file(REMOVE_RECURSE
  "libflexrpc_idl.a"
)
