# Empty dependencies file for flexrpc_idl.
# This may be replaced when dependencies are built.
