file(REMOVE_RECURSE
  "libflexrpc_osim.a"
)
