
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osim/address_space.cc" "src/osim/CMakeFiles/flexrpc_osim.dir/address_space.cc.o" "gcc" "src/osim/CMakeFiles/flexrpc_osim.dir/address_space.cc.o.d"
  "/root/repo/src/osim/kernel.cc" "src/osim/CMakeFiles/flexrpc_osim.dir/kernel.cc.o" "gcc" "src/osim/CMakeFiles/flexrpc_osim.dir/kernel.cc.o.d"
  "/root/repo/src/osim/port.cc" "src/osim/CMakeFiles/flexrpc_osim.dir/port.cc.o" "gcc" "src/osim/CMakeFiles/flexrpc_osim.dir/port.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/flexrpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
