# Empty compiler generated dependencies file for flexrpc_osim.
# This may be replaced when dependencies are built.
