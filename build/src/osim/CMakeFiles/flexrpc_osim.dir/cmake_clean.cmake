file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_osim.dir/address_space.cc.o"
  "CMakeFiles/flexrpc_osim.dir/address_space.cc.o.d"
  "CMakeFiles/flexrpc_osim.dir/kernel.cc.o"
  "CMakeFiles/flexrpc_osim.dir/kernel.cc.o.d"
  "CMakeFiles/flexrpc_osim.dir/port.cc.o"
  "CMakeFiles/flexrpc_osim.dir/port.cc.o.d"
  "libflexrpc_osim.a"
  "libflexrpc_osim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_osim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
