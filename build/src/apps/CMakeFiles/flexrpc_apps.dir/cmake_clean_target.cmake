file(REMOVE_RECURSE
  "libflexrpc_apps.a"
)
