file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_apps.dir/nfs.cc.o"
  "CMakeFiles/flexrpc_apps.dir/nfs.cc.o.d"
  "CMakeFiles/flexrpc_apps.dir/pipe.cc.o"
  "CMakeFiles/flexrpc_apps.dir/pipe.cc.o.d"
  "libflexrpc_apps.a"
  "libflexrpc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
