# Empty dependencies file for flexrpc_apps.
# This may be replaced when dependencies are built.
