file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_codegen.dir/cpp_gen.cc.o"
  "CMakeFiles/flexrpc_codegen.dir/cpp_gen.cc.o.d"
  "libflexrpc_codegen.a"
  "libflexrpc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
