file(REMOVE_RECURSE
  "libflexrpc_codegen.a"
)
