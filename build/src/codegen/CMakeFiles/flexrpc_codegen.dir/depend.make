# Empty dependencies file for flexrpc_codegen.
# This may be replaced when dependencies are built.
