
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/cpp_gen.cc" "src/codegen/CMakeFiles/flexrpc_codegen.dir/cpp_gen.cc.o" "gcc" "src/codegen/CMakeFiles/flexrpc_codegen.dir/cpp_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdl/CMakeFiles/flexrpc_pdl.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/flexrpc_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flexrpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
