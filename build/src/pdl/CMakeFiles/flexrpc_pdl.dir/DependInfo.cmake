
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdl/apply.cc" "src/pdl/CMakeFiles/flexrpc_pdl.dir/apply.cc.o" "gcc" "src/pdl/CMakeFiles/flexrpc_pdl.dir/apply.cc.o.d"
  "/root/repo/src/pdl/pdl_parser.cc" "src/pdl/CMakeFiles/flexrpc_pdl.dir/pdl_parser.cc.o" "gcc" "src/pdl/CMakeFiles/flexrpc_pdl.dir/pdl_parser.cc.o.d"
  "/root/repo/src/pdl/presentation.cc" "src/pdl/CMakeFiles/flexrpc_pdl.dir/presentation.cc.o" "gcc" "src/pdl/CMakeFiles/flexrpc_pdl.dir/presentation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idl/CMakeFiles/flexrpc_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flexrpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
