# Empty compiler generated dependencies file for flexrpc_pdl.
# This may be replaced when dependencies are built.
