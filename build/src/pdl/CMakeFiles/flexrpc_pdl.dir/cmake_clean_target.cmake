file(REMOVE_RECURSE
  "libflexrpc_pdl.a"
)
