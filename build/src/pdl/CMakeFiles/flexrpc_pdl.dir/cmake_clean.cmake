file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_pdl.dir/apply.cc.o"
  "CMakeFiles/flexrpc_pdl.dir/apply.cc.o.d"
  "CMakeFiles/flexrpc_pdl.dir/pdl_parser.cc.o"
  "CMakeFiles/flexrpc_pdl.dir/pdl_parser.cc.o.d"
  "CMakeFiles/flexrpc_pdl.dir/presentation.cc.o"
  "CMakeFiles/flexrpc_pdl.dir/presentation.cc.o.d"
  "libflexrpc_pdl.a"
  "libflexrpc_pdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_pdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
