file(REMOVE_RECURSE
  "libflexrpc_sig.a"
)
