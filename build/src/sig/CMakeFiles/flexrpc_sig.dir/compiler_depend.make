# Empty compiler generated dependencies file for flexrpc_sig.
# This may be replaced when dependencies are built.
