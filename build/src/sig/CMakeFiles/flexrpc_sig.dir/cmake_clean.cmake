file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_sig.dir/signature.cc.o"
  "CMakeFiles/flexrpc_sig.dir/signature.cc.o.d"
  "libflexrpc_sig.a"
  "libflexrpc_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
