# Empty compiler generated dependencies file for flexrpc_support.
# This may be replaced when dependencies are built.
