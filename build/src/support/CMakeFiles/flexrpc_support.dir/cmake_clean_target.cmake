file(REMOVE_RECURSE
  "libflexrpc_support.a"
)
