file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_support.dir/arena.cc.o"
  "CMakeFiles/flexrpc_support.dir/arena.cc.o.d"
  "CMakeFiles/flexrpc_support.dir/diag.cc.o"
  "CMakeFiles/flexrpc_support.dir/diag.cc.o.d"
  "CMakeFiles/flexrpc_support.dir/status.cc.o"
  "CMakeFiles/flexrpc_support.dir/status.cc.o.d"
  "CMakeFiles/flexrpc_support.dir/strings.cc.o"
  "CMakeFiles/flexrpc_support.dir/strings.cc.o.d"
  "libflexrpc_support.a"
  "libflexrpc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
