# Empty dependencies file for flexrpc_net.
# This may be replaced when dependencies are built.
