file(REMOVE_RECURSE
  "libflexrpc_net.a"
)
