file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_net.dir/link.cc.o"
  "CMakeFiles/flexrpc_net.dir/link.cc.o.d"
  "CMakeFiles/flexrpc_net.dir/sunrpc.cc.o"
  "CMakeFiles/flexrpc_net.dir/sunrpc.cc.o.d"
  "libflexrpc_net.a"
  "libflexrpc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
