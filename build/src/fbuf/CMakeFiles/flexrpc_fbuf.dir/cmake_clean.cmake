file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_fbuf.dir/channel.cc.o"
  "CMakeFiles/flexrpc_fbuf.dir/channel.cc.o.d"
  "CMakeFiles/flexrpc_fbuf.dir/fbuf.cc.o"
  "CMakeFiles/flexrpc_fbuf.dir/fbuf.cc.o.d"
  "libflexrpc_fbuf.a"
  "libflexrpc_fbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_fbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
