# Empty dependencies file for flexrpc_fbuf.
# This may be replaced when dependencies are built.
