file(REMOVE_RECURSE
  "libflexrpc_fbuf.a"
)
