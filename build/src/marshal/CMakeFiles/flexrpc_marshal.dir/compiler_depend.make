# Empty compiler generated dependencies file for flexrpc_marshal.
# This may be replaced when dependencies are built.
