
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marshal/engine.cc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/engine.cc.o" "gcc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/engine.cc.o.d"
  "/root/repo/src/marshal/format.cc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/format.cc.o" "gcc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/format.cc.o.d"
  "/root/repo/src/marshal/layout.cc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/layout.cc.o" "gcc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/layout.cc.o.d"
  "/root/repo/src/marshal/native.cc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/native.cc.o" "gcc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/native.cc.o.d"
  "/root/repo/src/marshal/value.cc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/value.cc.o" "gcc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/value.cc.o.d"
  "/root/repo/src/marshal/xdr.cc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/xdr.cc.o" "gcc" "src/marshal/CMakeFiles/flexrpc_marshal.dir/xdr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdl/CMakeFiles/flexrpc_pdl.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/flexrpc_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flexrpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
