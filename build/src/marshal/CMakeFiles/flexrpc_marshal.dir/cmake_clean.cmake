file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_marshal.dir/engine.cc.o"
  "CMakeFiles/flexrpc_marshal.dir/engine.cc.o.d"
  "CMakeFiles/flexrpc_marshal.dir/format.cc.o"
  "CMakeFiles/flexrpc_marshal.dir/format.cc.o.d"
  "CMakeFiles/flexrpc_marshal.dir/layout.cc.o"
  "CMakeFiles/flexrpc_marshal.dir/layout.cc.o.d"
  "CMakeFiles/flexrpc_marshal.dir/native.cc.o"
  "CMakeFiles/flexrpc_marshal.dir/native.cc.o.d"
  "CMakeFiles/flexrpc_marshal.dir/value.cc.o"
  "CMakeFiles/flexrpc_marshal.dir/value.cc.o.d"
  "CMakeFiles/flexrpc_marshal.dir/xdr.cc.o"
  "CMakeFiles/flexrpc_marshal.dir/xdr.cc.o.d"
  "libflexrpc_marshal.a"
  "libflexrpc_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
