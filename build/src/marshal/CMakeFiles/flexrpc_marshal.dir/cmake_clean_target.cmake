file(REMOVE_RECURSE
  "libflexrpc_marshal.a"
)
