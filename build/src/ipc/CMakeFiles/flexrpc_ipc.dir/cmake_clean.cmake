file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_ipc.dir/fastpath.cc.o"
  "CMakeFiles/flexrpc_ipc.dir/fastpath.cc.o.d"
  "CMakeFiles/flexrpc_ipc.dir/oldpath.cc.o"
  "CMakeFiles/flexrpc_ipc.dir/oldpath.cc.o.d"
  "CMakeFiles/flexrpc_ipc.dir/threaded.cc.o"
  "CMakeFiles/flexrpc_ipc.dir/threaded.cc.o.d"
  "libflexrpc_ipc.a"
  "libflexrpc_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
