file(REMOVE_RECURSE
  "libflexrpc_ipc.a"
)
