# Empty compiler generated dependencies file for flexrpc_ipc.
# This may be replaced when dependencies are built.
