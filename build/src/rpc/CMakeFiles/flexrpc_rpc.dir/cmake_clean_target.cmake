file(REMOVE_RECURSE
  "libflexrpc_rpc.a"
)
