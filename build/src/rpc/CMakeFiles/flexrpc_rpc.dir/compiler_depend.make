# Empty compiler generated dependencies file for flexrpc_rpc.
# This may be replaced when dependencies are built.
