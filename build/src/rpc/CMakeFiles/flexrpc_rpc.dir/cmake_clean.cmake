file(REMOVE_RECURSE
  "CMakeFiles/flexrpc_rpc.dir/runtime.cc.o"
  "CMakeFiles/flexrpc_rpc.dir/runtime.cc.o.d"
  "CMakeFiles/flexrpc_rpc.dir/samedomain.cc.o"
  "CMakeFiles/flexrpc_rpc.dir/samedomain.cc.o.d"
  "libflexrpc_rpc.a"
  "libflexrpc_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexrpc_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
