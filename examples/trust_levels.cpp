// Trust-level demo (paper §4.5 / Figure 12): bind a null-RPC connection
// under each client/server trust combination and show (a) the combination
// signature the kernel assembles and (b) the resulting null-RPC latency.

#include <cstdio>

#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/ipc/threaded.h"
#include "src/support/timing.h"

namespace {

const char* TrustLabel(flexrpc::TrustLevel level) {
  switch (level) {
    case flexrpc::TrustLevel::kNone:
      return "none";
    case flexrpc::TrustLevel::kLeaky:
      return "leaky";
    case flexrpc::TrustLevel::kFull:
      return "leaky+unprot";
  }
  return "?";
}

}  // namespace

int main() {
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseCorbaIdl("interface Null { void ping(); };",
                                    "null.idl", &diags);
  if (idl == nullptr || !flexrpc::AnalyzeInterfaceFile(idl.get(), &diags)) {
    std::fprintf(stderr, "%s", diags.ToString().c_str());
    return 1;
  }
  flexrpc::InterfaceSignature sig =
      flexrpc::BuildSignature(idl->interfaces[0]);

  // Show the threaded code for the two extremes.
  std::printf("combination signature, no trust on either side:\n  ");
  for (const flexrpc::ThreadedOp& op : flexrpc::AssembleCombination(
           flexrpc::TrustLevel::kNone, flexrpc::TrustLevel::kNone, false,
           32)) {
    std::printf("%s ", std::string(flexrpc::TOpName(op.code)).c_str());
  }
  std::printf("\n\ncombination signature, full mutual trust + "
              "[nonunique]:\n  ");
  for (const flexrpc::ThreadedOp& op : flexrpc::AssembleCombination(
           flexrpc::TrustLevel::kFull, flexrpc::TrustLevel::kFull, true,
           32)) {
    std::printf("%s ", std::string(flexrpc::TOpName(op.code)).c_str());
  }
  std::printf("\n\nnull RPC latency (ns/call, %d calls each):\n", 200000);
  std::printf("%-16s", "client\\server");
  for (auto server_trust :
       {flexrpc::TrustLevel::kNone, flexrpc::TrustLevel::kLeaky,
        flexrpc::TrustLevel::kFull}) {
    std::printf("%14s", TrustLabel(server_trust));
  }
  std::printf("\n");

  for (auto client_trust :
       {flexrpc::TrustLevel::kNone, flexrpc::TrustLevel::kLeaky,
        flexrpc::TrustLevel::kFull}) {
    std::printf("%-16s", TrustLabel(client_trust));
    for (auto server_trust :
         {flexrpc::TrustLevel::kNone, flexrpc::TrustLevel::kLeaky,
          flexrpc::TrustLevel::kFull}) {
      flexrpc::Kernel kernel;
      flexrpc::SpecializedTransport transport(&kernel);
      flexrpc::Task* client = kernel.CreateTask("client");
      flexrpc::Task* server = kernel.CreateTask("server");
      flexrpc::PortName pn = kernel.CreatePort(server);
      flexrpc::Port* port = *kernel.ResolvePort(server, pn);
      (void)transport.RegisterServer(port, server, sig, server_trust,
                                     [] {});
      auto conn =
          transport.BindClient(client, port, sig, client_trust, false);
      if (!conn.ok()) {
        std::fprintf(stderr, "bind failed\n");
        return 1;
      }
      constexpr int kCalls = 200000;
      // Warm up, then measure.
      for (int i = 0; i < 1000; ++i) {
        (void)(*conn)->NullCall();
      }
      flexrpc::Stopwatch timer;
      for (int i = 0; i < kCalls; ++i) {
        (void)(*conn)->NullCall();
      }
      std::printf("%14.1f",
                  static_cast<double>(timer.ElapsedNanos()) / kCalls);
    }
    std::printf("\n");
  }
  std::printf("\nRelaxed trust removes register save/clear/restore blocks "
              "from the threaded\ncode the kernel builds at bind time "
              "(paper Figure 12).\n");
  return 0;
}
