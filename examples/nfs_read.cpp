// NFS read demo (paper §4.1 / Figure 2): read an 8 MB file over simulated
// 10 Mbit/s Ethernet with four client stub variants — {hand-coded,
// generated} × {conventional kernel-buffer presentation, [special]
// user-space buffer presentation} — and print the Figure 2 breakdown.

#include <cstdio>

#include "src/apps/nfs.h"

int main() {
  constexpr size_t kFileSize = 8u << 20;  // 8 MB, as in the paper
  flexrpc::NfsFileServer server(kFileSize, /*seed=*/2026);
  flexrpc::NfsClient client(&server, flexrpc::LinkModel(),
                            flexrpc::RemoteServerModel());

  std::printf("NFS read of an %zu MB file over simulated 10 Mbit/s "
              "Ethernet\n\n",
              kFileSize >> 20);
  std::printf("%-38s %14s %14s\n", "stub variant", "client CPU (s)",
              "net+server (s)");

  struct Variant {
    flexrpc::NfsClient::StubKind kind;
    const char* label;
  };
  const Variant variants[] = {
      {flexrpc::NfsClient::StubKind::kHandConventional,
       "hand-coded, kernel buffer"},
      {flexrpc::NfsClient::StubKind::kGeneratedConventional,
       "generated,  kernel buffer"},
      {flexrpc::NfsClient::StubKind::kHandUserBuffer,
       "hand-coded, [special] user buffer"},
      {flexrpc::NfsClient::StubKind::kGeneratedUserBuffer,
       "generated,  [special] user buffer"},
  };
  for (const Variant& v : variants) {
    auto stats = client.ReadFile(v.kind);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", v.label,
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-38s %14.4f %14.2f\n", v.label, stats->client_seconds,
                stats->network_server_seconds);
  }
  std::printf(
      "\nThe [special] presentation unmarshals straight into the user\n"
      "buffer through the kernel's copyout routine, removing one full\n"
      "copy of the file from the client's processing time (Figure 2).\n");
  return 0;
}
