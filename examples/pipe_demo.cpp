// Pipe-server demo (paper §4.2): a writer and a reader in separate
// protection domains stream data through a pipe server task, once with the
// default presentation and once with the [dealloc(never)] zero-copy read
// presentation, printing throughput and the server-side copy counts.

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/apps/pipe.h"
#include "src/idl/corba_parser.h"
#include "src/idl/sema.h"
#include "src/support/timing.h"

namespace {

using flexrpc::PipeServerApp;

double RunOnce(PipeServerApp::ReadPresentation pres, size_t total_bytes,
               uint64_t* server_copies) {
  flexrpc::Kernel kernel;
  flexrpc::FastPath transport(&kernel);
  flexrpc::DiagnosticSink diags;
  auto idl = flexrpc::ParseCorbaIdl(flexrpc::PipeIdlText(), "pipe.idl",
                                    &diags);
  if (idl == nullptr ||
      !flexrpc::AnalyzeInterfaceFile(idl.get(), &diags)) {
    std::fprintf(stderr, "%s", diags.ToString().c_str());
    return 0;
  }
  PipeServerApp app(&kernel, &transport, *idl, pres, 4096);

  flexrpc::Task* writer = kernel.CreateTask("writer");
  flexrpc::Task* reader = kernel.CreateTask("reader");
  flexrpc::PresentationSet client_pres;
  flexrpc::DiagnosticSink d2;
  if (!flexrpc::ApplyPdl(*idl, flexrpc::Side::kClient, nullptr,
                         &client_pres, &d2)) {
    std::fprintf(stderr, "%s", d2.ToString().c_str());
    return 0;
  }
  auto wconn = flexrpc::RpcConnection::Bind(
      &kernel, &transport, writer, app.port(), app.server(),
      idl->interfaces[0], *client_pres.Find("FileIO"));
  auto rconn = flexrpc::RpcConnection::Bind(
      &kernel, &transport, reader, app.port(), app.server(),
      idl->interfaces[0], *client_pres.Find("FileIO"));
  if (!wconn.ok() || !rconn.ok()) {
    std::fprintf(stderr, "bind failed\n");
    return 0;
  }
  const flexrpc::MarshalProgram* wprog = (*wconn)->ProgramFor("write");
  const flexrpc::MarshalProgram* rprog = (*rconn)->ProgramFor("read");

  std::vector<uint8_t> chunk(2048, 0xA5);
  flexrpc::Stopwatch timer;
  size_t written = 0;
  size_t read = 0;
  while (read < total_bytes) {
    if (written < total_bytes) {
      flexrpc::ArgVec args(wprog->slot_count());
      args[wprog->SlotOf("data")].set_ptr(chunk.data());
      args[wprog->SlotOf("data")].length =
          static_cast<uint32_t>(chunk.size());
      if (!(*wconn)->Call("write", &args).ok()) {
        return 0;
      }
      written += args[wprog->result_slot()].scalar;
    }
    flexrpc::ArgVec args(rprog->slot_count());
    args[rprog->SlotOf("count")].scalar = 2048;
    if (!(*rconn)->Call("read", &args).ok()) {
      return 0;
    }
    size_t got = args[rprog->result_slot()].length;
    if (got > 0) {
      reader->space().Free(args[rprog->result_slot()].ptr());
    }
    read += got;
  }
  double seconds = timer.ElapsedSeconds();
  *server_copies = app.read_copies();
  return static_cast<double>(total_bytes) / seconds / (1 << 20);
}

}  // namespace

int main() {
  constexpr size_t kTotal = 16u << 20;  // 16 MiB through the pipe
  std::printf("pipe server demo: streaming %zu MiB writer -> pipe server "
              "-> reader\n\n",
              kTotal >> 20);
  for (auto [pres, label] :
       {std::pair{PipeServerApp::ReadPresentation::kDefault,
                  "default presentation (server copies + move)"},
        std::pair{PipeServerApp::ReadPresentation::kZeroCopy,
                  "[dealloc(never)] presentation (zero server copies)"}}) {
    uint64_t copies = 0;
    double mibps = RunOnce(pres, kTotal, &copies);
    std::printf("  %-50s %8.1f MiB/s  (server read-path copies: %llu)\n",
                label, mibps, static_cast<unsigned long long>(copies));
  }
  std::printf("\nThe [dealloc(never)] server presentation returns pointers "
              "straight into the\npipe's circular buffer, eliminating the "
              "allocate+copy+free on every read\n(paper Figure 6).\n");
  return 0;
}
