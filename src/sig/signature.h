// Wire-contract ("network contract") signatures.
//
// A signature captures exactly the information the paper's specialized
// transport registers with the kernel at bind time (§4.5): for every
// operation, the structural wire type of each parameter and of the result.
// Signatures are *structural* — type names, parameter names, and every
// presentation attribute are erased — which is the embodiment of the
// paper's separation: two endpoints with arbitrarily different PDL files
// still register identical signatures, so the kernel can verify that any
// client interoperates with any server of the same interface.

#ifndef FLEXRPC_SRC_SIG_SIGNATURE_H_
#define FLEXRPC_SRC_SIG_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/idl/ast.h"
#include "src/support/bytes.h"
#include "src/support/status.h"

namespace flexrpc {

// Structural wire type: a tree with all names and aliases erased.
struct WireType {
  TypeKind kind = TypeKind::kVoid;
  uint32_t bound = 0;                // string/sequence bound, array count
  std::vector<WireType> children;    // element / fields / union arms
  std::vector<uint32_t> labels;      // union arm labels (children aligned)
  std::vector<uint8_t> defaults;     // union arm is_default flags

  bool operator==(const WireType&) const = default;

  // Canonical spelling for diagnostics, e.g. "seq<u8,8192>".
  std::string ToString() const;
};

// Builds the structural wire type of `type` (aliases resolved, enums
// lowered to u32, object references lowered to a port-reference slot).
WireType WireTypeOf(const Type* type);

struct OpSignature {
  uint32_t opnum = 0;
  bool oneway = false;
  std::vector<ParamDir> dirs;
  std::vector<WireType> params;
  WireType result;

  bool operator==(const OpSignature&) const = default;
};

struct InterfaceSignature {
  // Informational only — not part of structural compatibility.
  std::string interface_name;
  uint32_t program_number = 0;
  uint32_t version_number = 0;

  std::vector<OpSignature> ops;  // sorted by opnum

  const OpSignature* FindOp(uint32_t opnum) const;
};

// Derives the signature of a (flattened) interface declaration.
InterfaceSignature BuildSignature(const InterfaceDecl& itf);

// Canonical byte encoding — what an endpoint registers with the kernel.
// Encoding is deterministic: equal signatures encode to equal bytes.
void EncodeSignature(const InterfaceSignature& sig, ByteWriter* out);
Result<InterfaceSignature> DecodeSignature(ByteReader* in);

// Structural compatibility check performed at bind time. A client is
// compatible with a server when every operation the client may invoke
// exists on the server with identical parameter directions and wire types.
// (The server may implement more operations than the client uses.)
// On mismatch, `why` (if non-null) receives a human-readable explanation.
bool SignaturesCompatible(const InterfaceSignature& client,
                          const InterfaceSignature& server,
                          std::string* why = nullptr);

// A short stable hash of the encoded signature, used as a cheap identity
// for combination-signature caching.
uint64_t SignatureHash(const InterfaceSignature& sig);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SIG_SIGNATURE_H_
