#include "src/sig/signature.h"

#include <algorithm>

#include "src/support/strings.h"

namespace flexrpc {

namespace {

// Stable one-byte tags for the canonical encoding. These are wire-format
// constants: do not renumber.
uint8_t KindTag(TypeKind kind) {
  switch (kind) {
    case TypeKind::kVoid:
      return 0;
    case TypeKind::kBool:
      return 1;
    case TypeKind::kOctet:
      return 2;
    case TypeKind::kChar:
      return 3;
    case TypeKind::kI16:
      return 4;
    case TypeKind::kU16:
      return 5;
    case TypeKind::kI32:
      return 6;
    case TypeKind::kU32:
      return 7;
    case TypeKind::kI64:
      return 8;
    case TypeKind::kU64:
      return 9;
    case TypeKind::kF32:
      return 10;
    case TypeKind::kF64:
      return 11;
    case TypeKind::kString:
      return 12;
    case TypeKind::kSequence:
      return 13;
    case TypeKind::kArray:
      return 14;
    case TypeKind::kStruct:
      return 15;
    case TypeKind::kUnion:
      return 16;
    case TypeKind::kObjRef:
      return 17;
    case TypeKind::kEnum:   // lowered before encoding
    case TypeKind::kAlias:  // resolved before encoding
      break;
  }
  return 0xFF;
}

Result<TypeKind> KindFromTag(uint8_t tag) {
  static constexpr TypeKind kKinds[] = {
      TypeKind::kVoid, TypeKind::kBool,  TypeKind::kOctet,
      TypeKind::kChar, TypeKind::kI16,   TypeKind::kU16,
      TypeKind::kI32,  TypeKind::kU32,   TypeKind::kI64,
      TypeKind::kU64,  TypeKind::kF32,   TypeKind::kF64,
      TypeKind::kString, TypeKind::kSequence, TypeKind::kArray,
      TypeKind::kStruct, TypeKind::kUnion, TypeKind::kObjRef,
  };
  if (tag >= sizeof(kKinds) / sizeof(kKinds[0])) {
    return DataLossError(StrFormat("bad wire-type tag %u", tag));
  }
  return kKinds[tag];
}

void EncodeWireType(const WireType& type, ByteWriter* out) {
  out->WriteU8(KindTag(type.kind));
  switch (type.kind) {
    case TypeKind::kString:
      out->WriteU32Be(type.bound);
      break;
    case TypeKind::kSequence:
    case TypeKind::kArray:
      out->WriteU32Be(type.bound);
      EncodeWireType(type.children[0], out);
      break;
    case TypeKind::kStruct:
      out->WriteU32Be(static_cast<uint32_t>(type.children.size()));
      for (const WireType& field : type.children) {
        EncodeWireType(field, out);
      }
      break;
    case TypeKind::kUnion:
      out->WriteU32Be(static_cast<uint32_t>(type.children.size()));
      for (size_t i = 0; i < type.children.size(); ++i) {
        out->WriteU32Be(type.labels[i]);
        out->WriteU8(type.defaults[i]);
        EncodeWireType(type.children[i], out);
      }
      break;
    default:
      break;
  }
}

Result<WireType> DecodeWireType(ByteReader* in, int depth) {
  if (depth > 32) {
    return DataLossError("wire-type nesting too deep");
  }
  WireType type;
  FLEXRPC_ASSIGN_OR_RETURN(uint8_t tag, in->ReadU8());
  FLEXRPC_ASSIGN_OR_RETURN(type.kind, KindFromTag(tag));
  switch (type.kind) {
    case TypeKind::kString: {
      FLEXRPC_ASSIGN_OR_RETURN(type.bound, in->ReadU32Be());
      break;
    }
    case TypeKind::kSequence:
    case TypeKind::kArray: {
      FLEXRPC_ASSIGN_OR_RETURN(type.bound, in->ReadU32Be());
      FLEXRPC_ASSIGN_OR_RETURN(WireType elem, DecodeWireType(in, depth + 1));
      type.children.push_back(std::move(elem));
      break;
    }
    case TypeKind::kStruct: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t count, in->ReadU32Be());
      if (count > 4096) {
        return DataLossError("implausible struct field count");
      }
      for (uint32_t i = 0; i < count; ++i) {
        FLEXRPC_ASSIGN_OR_RETURN(WireType field,
                                 DecodeWireType(in, depth + 1));
        type.children.push_back(std::move(field));
      }
      break;
    }
    case TypeKind::kUnion: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t count, in->ReadU32Be());
      if (count > 4096) {
        return DataLossError("implausible union arm count");
      }
      for (uint32_t i = 0; i < count; ++i) {
        FLEXRPC_ASSIGN_OR_RETURN(uint32_t label, in->ReadU32Be());
        FLEXRPC_ASSIGN_OR_RETURN(uint8_t is_default, in->ReadU8());
        FLEXRPC_ASSIGN_OR_RETURN(WireType arm, DecodeWireType(in, depth + 1));
        type.labels.push_back(label);
        type.defaults.push_back(is_default);
        type.children.push_back(std::move(arm));
      }
      break;
    }
    default:
      break;
  }
  return type;
}

}  // namespace

std::string WireType::ToString() const {
  switch (kind) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kOctet:
      return "u8";
    case TypeKind::kChar:
      return "char";
    case TypeKind::kI16:
      return "i16";
    case TypeKind::kU16:
      return "u16";
    case TypeKind::kI32:
      return "i32";
    case TypeKind::kU32:
      return "u32";
    case TypeKind::kI64:
      return "i64";
    case TypeKind::kU64:
      return "u64";
    case TypeKind::kF32:
      return "f32";
    case TypeKind::kF64:
      return "f64";
    case TypeKind::kString:
      return bound == 0 ? "string" : StrFormat("string<%u>", bound);
    case TypeKind::kSequence:
      return bound == 0
                 ? StrFormat("seq<%s>", children[0].ToString().c_str())
                 : StrFormat("seq<%s,%u>", children[0].ToString().c_str(),
                             bound);
    case TypeKind::kArray:
      return StrFormat("%s[%u]", children[0].ToString().c_str(), bound);
    case TypeKind::kStruct: {
      std::string out = "{";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += children[i].ToString();
      }
      return out + "}";
    }
    case TypeKind::kUnion: {
      std::string out = "union{";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += defaults[i] != 0 ? "default" : StrFormat("%u", labels[i]);
        out += ":";
        out += children[i].ToString();
      }
      return out + "}";
    }
    case TypeKind::kObjRef:
      return "portref";
    default:
      return "?";
  }
}

WireType WireTypeOf(const Type* type) {
  const Type* t = type->Resolve();
  WireType out;
  switch (t->kind()) {
    case TypeKind::kEnum:
      // Enums travel as u32 — name and member set are presentation.
      out.kind = TypeKind::kU32;
      return out;
    case TypeKind::kString:
      out.kind = TypeKind::kString;
      out.bound = t->bound();
      return out;
    case TypeKind::kSequence:
      out.kind = TypeKind::kSequence;
      out.bound = t->bound();
      out.children.push_back(WireTypeOf(t->element()));
      return out;
    case TypeKind::kArray:
      out.kind = TypeKind::kArray;
      out.bound = t->bound();
      out.children.push_back(WireTypeOf(t->element()));
      return out;
    case TypeKind::kStruct:
      out.kind = TypeKind::kStruct;
      for (const StructField& f : t->fields()) {
        out.children.push_back(WireTypeOf(f.type));
      }
      return out;
    case TypeKind::kUnion:
      out.kind = TypeKind::kUnion;
      for (const UnionArm& arm : t->arms()) {
        out.labels.push_back(arm.label);
        out.defaults.push_back(arm.is_default ? 1 : 0);
        out.children.push_back(WireTypeOf(arm.type));
      }
      return out;
    default:
      out.kind = t->kind();
      return out;
  }
}

const OpSignature* InterfaceSignature::FindOp(uint32_t opnum) const {
  for (const OpSignature& op : ops) {
    if (op.opnum == opnum) {
      return &op;
    }
  }
  return nullptr;
}

InterfaceSignature BuildSignature(const InterfaceDecl& itf) {
  InterfaceSignature sig;
  sig.interface_name = itf.name;
  sig.program_number = itf.program_number;
  sig.version_number = itf.version_number;
  for (const OperationDecl& op : itf.ops) {
    OpSignature osig;
    osig.opnum = op.opnum;
    osig.oneway = op.oneway;
    for (const ParamDecl& param : op.params) {
      osig.dirs.push_back(param.dir);
      osig.params.push_back(WireTypeOf(param.type));
    }
    osig.result = WireTypeOf(op.result);
    sig.ops.push_back(std::move(osig));
  }
  std::sort(sig.ops.begin(), sig.ops.end(),
            [](const OpSignature& a, const OpSignature& b) {
              return a.opnum < b.opnum;
            });
  return sig;
}

void EncodeSignature(const InterfaceSignature& sig, ByteWriter* out) {
  out->WriteU32Be(0x464C5853u);  // "FLXS"
  out->WriteU32Be(sig.program_number);
  out->WriteU32Be(sig.version_number);
  out->WriteU32Be(static_cast<uint32_t>(sig.ops.size()));
  for (const OpSignature& op : sig.ops) {
    out->WriteU32Be(op.opnum);
    out->WriteU8(op.oneway ? 1 : 0);
    out->WriteU32Be(static_cast<uint32_t>(op.params.size()));
    for (size_t i = 0; i < op.params.size(); ++i) {
      out->WriteU8(static_cast<uint8_t>(op.dirs[i]));
      EncodeWireType(op.params[i], out);
    }
    EncodeWireType(op.result, out);
  }
}

Result<InterfaceSignature> DecodeSignature(ByteReader* in) {
  InterfaceSignature sig;
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t magic, in->ReadU32Be());
  if (magic != 0x464C5853u) {
    return DataLossError("bad signature magic");
  }
  FLEXRPC_ASSIGN_OR_RETURN(sig.program_number, in->ReadU32Be());
  FLEXRPC_ASSIGN_OR_RETURN(sig.version_number, in->ReadU32Be());
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t op_count, in->ReadU32Be());
  if (op_count > 65536) {
    return DataLossError("implausible operation count");
  }
  for (uint32_t i = 0; i < op_count; ++i) {
    OpSignature op;
    FLEXRPC_ASSIGN_OR_RETURN(op.opnum, in->ReadU32Be());
    FLEXRPC_ASSIGN_OR_RETURN(uint8_t oneway, in->ReadU8());
    op.oneway = oneway != 0;
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t param_count, in->ReadU32Be());
    if (param_count > 4096) {
      return DataLossError("implausible parameter count");
    }
    for (uint32_t p = 0; p < param_count; ++p) {
      FLEXRPC_ASSIGN_OR_RETURN(uint8_t dir, in->ReadU8());
      if (dir > 2) {
        return DataLossError("bad parameter direction");
      }
      op.dirs.push_back(static_cast<ParamDir>(dir));
      FLEXRPC_ASSIGN_OR_RETURN(WireType type, DecodeWireType(in, 0));
      op.params.push_back(std::move(type));
    }
    FLEXRPC_ASSIGN_OR_RETURN(op.result, DecodeWireType(in, 0));
    sig.ops.push_back(std::move(op));
  }
  return sig;
}

bool SignaturesCompatible(const InterfaceSignature& client,
                          const InterfaceSignature& server,
                          std::string* why) {
  auto fail = [&](std::string message) {
    if (why != nullptr) {
      *why = std::move(message);
    }
    return false;
  };
  if (client.program_number != server.program_number) {
    return fail(StrFormat("program mismatch: client %u vs server %u",
                          client.program_number, server.program_number));
  }
  if (client.version_number != server.version_number) {
    return fail(StrFormat("version mismatch: client %u vs server %u",
                          client.version_number, server.version_number));
  }
  for (const OpSignature& cop : client.ops) {
    const OpSignature* sop = server.FindOp(cop.opnum);
    if (sop == nullptr) {
      return fail(StrFormat("server lacks operation %u", cop.opnum));
    }
    if (cop.oneway != sop->oneway) {
      return fail(StrFormat("operation %u oneway mismatch", cop.opnum));
    }
    if (cop.params.size() != sop->params.size()) {
      return fail(StrFormat("operation %u parameter count mismatch: %zu vs "
                            "%zu",
                            cop.opnum, cop.params.size(),
                            sop->params.size()));
    }
    for (size_t i = 0; i < cop.params.size(); ++i) {
      if (cop.dirs[i] != sop->dirs[i]) {
        return fail(StrFormat("operation %u parameter %zu direction "
                              "mismatch",
                              cop.opnum, i));
      }
      if (!(cop.params[i] == sop->params[i])) {
        return fail(StrFormat(
            "operation %u parameter %zu type mismatch: %s vs %s", cop.opnum,
            i, cop.params[i].ToString().c_str(),
            sop->params[i].ToString().c_str()));
      }
    }
    if (!(cop.result == sop->result)) {
      return fail(StrFormat("operation %u result type mismatch: %s vs %s",
                            cop.opnum, cop.result.ToString().c_str(),
                            sop->result.ToString().c_str()));
    }
  }
  return true;
}

uint64_t SignatureHash(const InterfaceSignature& sig) {
  ByteWriter w;
  EncodeSignature(sig, &w);
  // FNV-1a over the canonical encoding.
  uint64_t hash = 0xcbf29ce484222325ull;
  for (uint8_t byte : w.span()) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace flexrpc
