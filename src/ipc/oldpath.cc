#include "src/ipc/oldpath.h"

#include <cstring>

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

void OldPath::Serve(Port* port, Task* server, FastHandler handler) {
  endpoints_[port] = Endpoint{server, std::move(handler)};
}

Status OldPath::Call(Task* client, Port* port, PortName reply_port_name,
                     ByteSpan request, const std::vector<TypedItem>& items,
                     void** reply, size_t* reply_size) {
  auto it = endpoints_.find(port);
  if (it == endpoints_.end()) {
    return NotFoundError("no server bound to port");
  }
  Endpoint& ep = it->second;
  ++calls_;
  TraceAdd(TraceCounter::kIpcOldpathCalls);
  TraceObserve(TraceHistogram::kIpcMessageBytes, request.size());

  // Validate that the typed descriptors cover the body exactly — the
  // header-parsing work the streamlined path avoids.
  size_t described = 0;
  for (const TypedItem& item : items) {
    ++descriptors_processed_;
    TraceAdd(TraceCounter::kIpcOldpathDescriptors);
    if (item.type_code == 0) {
      return InvalidArgumentError("typed item has no type code");
    }
    described += item.item_bytes;
  }
  if (described != request.size()) {
    return InvalidArgumentError(
        StrFormat("typed items describe %zu bytes, body has %zu", described,
                  request.size()));
  }

  // Translate the reply port (full unique-name machinery on every call).
  kernel_->Trap();
  FLEXRPC_ASSIGN_OR_RETURN(RightEntry * reply_right,
                           client->names().Lookup(reply_port_name));
  PortName server_side_name =
      ep.server->names().InsertUnique(reply_right->port, RightType::kSend);

  // Copy client -> kernel intermediate buffer -> server space.
  kernel_buffer_.assign(request.begin(), request.end());
  bytes_copied_ += request.size();
  void* server_copy = ep.server->space().Allocate(
      request.size() > 0 ? request.size() : 1);
  std::memcpy(server_copy, kernel_buffer_.data(), kernel_buffer_.size());
  bytes_copied_ += request.size();
  TraceAdd(TraceCounter::kDataCopies, 2);
  TraceAdd(TraceCounter::kDataCopyBytes, 2 * request.size());
  TraceAdd(TraceCounter::kIpcBytesCopied, 2 * request.size());

  std::vector<uint8_t> staging;
  ServerCall call;
  call.request = static_cast<const uint8_t*>(server_copy);
  call.request_size = request.size();
  call.reply = &staging;
  Status handler_status = ep.handler(&call);
  ep.server->space().Free(server_copy);

  // The server is done with the reply right.
  FLEXRPC_RETURN_IF_ERROR(ep.server->names().Release(server_side_name));
  if (!handler_status.ok()) {
    return handler_status;
  }

  // Reply: server -> kernel buffer -> client space, plus the return trap.
  kernel_->Trap();
  kernel_buffer_.assign(staging.begin(), staging.end());
  bytes_copied_ += staging.size();
  void* client_copy =
      client->space().Allocate(staging.size() > 0 ? staging.size() : 1);
  std::memcpy(client_copy, kernel_buffer_.data(), kernel_buffer_.size());
  bytes_copied_ += staging.size();
  TraceAdd(TraceCounter::kDataCopies, 2);
  TraceAdd(TraceCounter::kDataCopyBytes, 2 * staging.size());
  TraceAdd(TraceCounter::kIpcBytesCopied, 2 * staging.size());
  *reply = client_copy;
  *reply_size = staging.size();
  return Status::Ok();
}

}  // namespace flexrpc
