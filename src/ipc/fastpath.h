// The streamlined synchronous IPC path (paper §4.2).
//
// Models the "new, streamlined low-level Mach IPC mechanism" the paper's
// pipe server uses: a message is a simple byte buffer copied by the kernel
// directly from the sender's address space into the receiver's, control
// transfers synchronously (LRPC-style handoff), and no copy-on-write or
// typed-descriptor machinery is involved. Each Call performs:
//   trap → copy request into server space → run server handler →
//   trap → copy reply into client space.
// All copies are real memcpys between disjoint arenas.

#ifndef FLEXRPC_SRC_IPC_FASTPATH_H_
#define FLEXRPC_SRC_IPC_FASTPATH_H_

#include <functional>
#include <unordered_map>

#include "src/osim/kernel.h"
#include "src/support/bytes.h"
#include "src/support/status.h"

namespace flexrpc {

// A server-space view of an incoming request plus a place to build the
// reply. The request pointer targets the kernel-made copy in the server's
// address space.
struct ServerCall {
  const uint8_t* request = nullptr;
  size_t request_size = 0;
  // The handler appends reply bytes here (server-space staging buffer).
  std::vector<uint8_t>* reply = nullptr;
};

// Handler invoked in the server's context.
using FastHandler = std::function<Status(ServerCall* call)>;

class FastPath {
 public:
  explicit FastPath(Kernel* kernel) : kernel_(kernel) {}

  // Binds `handler` as the receiver for `port` (owned by `server`).
  void Serve(Port* port, Task* server, FastHandler handler);

  // Synchronous RPC: `request` lives in client memory; on success `*reply`
  // receives a client-space block (caller frees with client->space().Free)
  // and `*reply_size` its length.
  Status Call(Task* client, Port* port, ByteSpan request, void** reply,
              size_t* reply_size);

  uint64_t calls() const { return calls_; }
  uint64_t bytes_copied() const { return bytes_copied_; }

 private:
  struct Endpoint {
    Task* server = nullptr;
    FastHandler handler;
  };

  Kernel* kernel_;
  std::unordered_map<const Port*, Endpoint> endpoints_;
  uint64_t calls_ = 0;
  uint64_t bytes_copied_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IPC_FASTPATH_H_
