// Simulated CPU register file and the save/clear/restore blocks the
// trust-specialized IPC path threads together (paper §4.5, Figure 12).
//
// The paper's mechanism varies how much register state the kernel must
// save (integrity protection), clear (confidentiality protection), and
// restore on an RPC, depending on the trust each side declared. Here the
// register file is a real memory object and the blocks perform real loads
// and stores, so relative costs scale the way the paper's do.

#ifndef FLEXRPC_SRC_IPC_REGISTER_FILE_H_
#define FLEXRPC_SRC_IPC_REGISTER_FILE_H_

#include <cstdint>
#include <cstring>

#include "src/support/trace.h"

namespace flexrpc {

class RegisterFile {
 public:
  static constexpr size_t kRegisterCount = 32;
  // Registers the kernel preserves across an RPC when the client does not
  // fully trust the server (callee-saved set).
  static constexpr size_t kCalleeSaved = 16;
  // Registers that may hold residual client data and must be cleared when
  // the client does not trust the server's confidentiality (scratch set).
  static constexpr size_t kScratch = 16;

  uint64_t& reg(size_t i) { return regs_[i]; }
  const uint64_t& reg(size_t i) const { return regs_[i]; }

  // Spills the first `count` registers into `save_area` (count*8 bytes).
  void Save(size_t count, uint64_t* save_area) {
    TraceAdd(TraceCounter::kRegistersSaved, count);
    std::memcpy(save_area, regs_, count * sizeof(uint64_t));
    Clobber();
  }

  void Restore(size_t count, const uint64_t* save_area) {
    TraceAdd(TraceCounter::kRegistersRestored, count);
    std::memcpy(regs_, save_area, count * sizeof(uint64_t));
    Clobber();
  }

  // Zeroes the scratch window starting at `first`.
  void Clear(size_t first, size_t count) {
    TraceAdd(TraceCounter::kRegistersCleared, count);
    std::memset(regs_ + first, 0, count * sizeof(uint64_t));
    Clobber();
  }

  void FillPattern(uint64_t seed) {
    for (size_t i = 0; i < kRegisterCount; ++i) {
      regs_[i] = seed + i;
    }
  }

 private:
  void Clobber() { asm volatile("" : : "r"(regs_) : "memory"); }

  uint64_t regs_[kRegisterCount] = {};
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IPC_REGISTER_FILE_H_
