#include "src/ipc/fastpath.h"

#include <cstring>

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

void FastPath::Serve(Port* port, Task* server, FastHandler handler) {
  endpoints_[port] = Endpoint{server, std::move(handler)};
}

Status FastPath::Call(Task* client, Port* port, ByteSpan request,
                      void** reply, size_t* reply_size) {
  auto it = endpoints_.find(port);
  if (it == endpoints_.end()) {
    return NotFoundError("no server bound to port");
  }
  Endpoint& ep = it->second;
  ++calls_;
  TraceAdd(TraceCounter::kIpcFastpathCalls);
  TraceObserve(TraceHistogram::kIpcMessageBytes, request.size());

  // Trap + copy the request buffer directly into the server's space.
  kernel_->Trap();
  void* server_copy = ep.server->space().Allocate(
      request.size() > 0 ? request.size() : 1);
  std::memcpy(server_copy, request.data(), request.size());
  bytes_copied_ += request.size();
  TraceAdd(TraceCounter::kDataCopies);
  TraceAdd(TraceCounter::kDataCopyBytes, request.size());
  TraceAdd(TraceCounter::kIpcBytesCopied, request.size());

  // Synchronous handoff into the server.
  std::vector<uint8_t> staging;
  ServerCall call;
  call.request = static_cast<const uint8_t*>(server_copy);
  call.request_size = request.size();
  call.reply = &staging;
  Status handler_status = ep.handler(&call);
  ep.server->space().Free(server_copy);
  if (!handler_status.ok()) {
    return handler_status;
  }

  // Trap + copy the reply into the client's space.
  kernel_->Trap();
  void* client_copy =
      client->space().Allocate(staging.size() > 0 ? staging.size() : 1);
  std::memcpy(client_copy, staging.data(), staging.size());
  bytes_copied_ += staging.size();
  TraceAdd(TraceCounter::kDataCopies);
  TraceAdd(TraceCounter::kDataCopyBytes, staging.size());
  TraceAdd(TraceCounter::kIpcBytesCopied, staging.size());
  *reply = client_copy;
  *reply_size = staging.size();
  return Status::Ok();
}

}  // namespace flexrpc
