// The traditional typed-message IPC path (Mach 3.0 style), kept as the
// baseline the paper's streamlined path is compared against
// (bench_ablate_fastpath).
//
// Compared to FastPath, every message:
//   * carries a header and one typed descriptor per data item, each of
//     which the kernel parses and validates,
//   * passes through an intermediate kernel buffer (two copies per
//     direction instead of one),
//   * translates both the destination and the reply port name through the
//     full unique-name machinery on every call.

#ifndef FLEXRPC_SRC_IPC_OLDPATH_H_
#define FLEXRPC_SRC_IPC_OLDPATH_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "src/ipc/fastpath.h"
#include "src/osim/kernel.h"
#include "src/support/bytes.h"
#include "src/support/status.h"

namespace flexrpc {

// One typed item of a traditional message body.
struct TypedItem {
  uint32_t type_code = 0;   // MACH_MSG_TYPE_* analogue
  uint32_t item_bytes = 0;  // payload bytes described by this descriptor
};

class OldPath {
 public:
  explicit OldPath(Kernel* kernel) : kernel_(kernel) {}

  void Serve(Port* port, Task* server, FastHandler handler);

  // Synchronous RPC with typed descriptors covering `request`. The item
  // list must describe exactly request.size() bytes.
  Status Call(Task* client, Port* port, PortName reply_port_name,
              ByteSpan request, const std::vector<TypedItem>& items,
              void** reply, size_t* reply_size);

  uint64_t calls() const { return calls_; }
  uint64_t bytes_copied() const { return bytes_copied_; }
  uint64_t descriptors_processed() const { return descriptors_processed_; }

 private:
  struct Endpoint {
    Task* server = nullptr;
    FastHandler handler;
  };

  Kernel* kernel_;
  std::unordered_map<const Port*, Endpoint> endpoints_;
  std::vector<uint8_t> kernel_buffer_;
  uint64_t calls_ = 0;
  uint64_t bytes_copied_ = 0;
  uint64_t descriptors_processed_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IPC_OLDPATH_H_
