#include "src/ipc/threaded.h"

#include <cstring>

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

std::string_view TOpName(TOpCode code) {
  switch (code) {
    case TOpCode::kTrap:
      return "trap";
    case TOpCode::kSaveRegs:
      return "save-regs";
    case TOpCode::kClearRegs:
      return "clear-regs";
    case TOpCode::kRestoreRegs:
      return "restore-regs";
    case TOpCode::kSwitchSpace:
      return "switch-space";
    case TOpCode::kCopyMessage:
      return "copy-message";
    case TOpCode::kTranslateReplyPortUnique:
      return "translate-reply-port";
    case TOpCode::kTranslateReplyPortNonUnique:
      return "translate-reply-port-nonunique";
    case TOpCode::kReleaseReplyPort:
      return "release-reply-port";
    case TOpCode::kInvokeServer:
      return "invoke-server";
  }
  return "?";
}

std::vector<ThreadedOp> AssembleCombination(TrustLevel client_trust,
                                            TrustLevel server_trust,
                                            bool nonunique_reply_port,
                                            uint32_t message_bytes) {
  std::vector<ThreadedOp> ops;
  // --- call path ---
  ops.push_back({TOpCode::kTrap, 0});
  if (client_trust != TrustLevel::kFull) {
    // The client wants its register state protected from server damage.
    ops.push_back({TOpCode::kSaveRegs, RegisterFile::kCalleeSaved});
  }
  if (client_trust == TrustLevel::kNone) {
    // The client wants no data leaking to the server through scratch regs.
    ops.push_back({TOpCode::kClearRegs, RegisterFile::kScratch});
  }
  ops.push_back({nonunique_reply_port
                     ? TOpCode::kTranslateReplyPortNonUnique
                     : TOpCode::kTranslateReplyPortUnique,
                 0});
  ops.push_back({TOpCode::kSwitchSpace, 0});
  ops.push_back({TOpCode::kCopyMessage, message_bytes});
  ops.push_back({TOpCode::kInvokeServer, 0});
  // --- reply path ---
  ops.push_back({TOpCode::kReleaseReplyPort, 0});
  if (server_trust == TrustLevel::kNone) {
    // The server wants no data leaking back to the client. Note that a
    // server declaring [leaky, unprotected] gets exactly the [leaky]
    // program: trusting the client's *correctness* needs no extra work.
    ops.push_back({TOpCode::kClearRegs, RegisterFile::kScratch});
  }
  ops.push_back({TOpCode::kSwitchSpace, 0});
  ops.push_back({TOpCode::kCopyMessage, message_bytes});
  if (client_trust != TrustLevel::kFull) {
    ops.push_back({TOpCode::kRestoreRegs, RegisterFile::kCalleeSaved});
  }
  ops.push_back({TOpCode::kTrap, 0});
  return ops;
}

Status BoundConnection::NullCall() {
  ++calls_;
  TraceAdd(TraceCounter::kIpcThreadedCalls);
  TraceAdd(TraceCounter::kIpcThreadedOps, program_.size());
  for (const ThreadedOp& op : program_) {
    switch (op.code) {
      case TOpCode::kTrap:
        kernel_->Trap();
        break;
      case TOpCode::kSaveRegs:
        regs_.Save(op.arg, save_area_);
        break;
      case TOpCode::kClearRegs:
        regs_.Clear(RegisterFile::kRegisterCount - op.arg, op.arg);
        break;
      case TOpCode::kRestoreRegs:
        regs_.Restore(op.arg, save_area_);
        break;
      case TOpCode::kSwitchSpace:
        // Page-table/context switch: swap the space context block.
        std::memcpy(space_context_, client_msg_,
                    sizeof(space_context_) / 2);
        asm volatile("" : : "r"(space_context_) : "memory");
        break;
      case TOpCode::kCopyMessage: {
        size_t n = op.arg <= sizeof(server_msg_) ? op.arg
                                                 : sizeof(server_msg_);
        TraceAdd(TraceCounter::kDataCopies);
        TraceAdd(TraceCounter::kDataCopyBytes, n);
        TraceAdd(TraceCounter::kIpcBytesCopied, n);
        std::memcpy(server_msg_, client_msg_, n);
        break;
      }
      case TOpCode::kTranslateReplyPortUnique:
        translated_reply_ =
            server_->names().InsertUnique(reply_port_, RightType::kSend);
        break;
      case TOpCode::kTranslateReplyPortNonUnique:
        translated_reply_ =
            server_->names().InsertNonUnique(reply_port_, RightType::kSend);
        break;
      case TOpCode::kReleaseReplyPort:
        if (translated_reply_ != kInvalidPortName) {
          FLEXRPC_RETURN_IF_ERROR(
              server_->names().Release(translated_reply_));
          translated_reply_ = kInvalidPortName;
        }
        break;
      case TOpCode::kInvokeServer:
        if (server_work_) {
          server_work_();
        }
        break;
    }
  }
  return Status::Ok();
}

Status SpecializedTransport::RegisterServer(
    Port* port, Task* server, const InterfaceSignature& signature,
    TrustLevel server_trust, std::function<void()> work) {
  if (registrations_.count(port) != 0) {
    return AlreadyExistsError("port already has a registered server");
  }
  registrations_[port] =
      Registration{server, signature, server_trust, std::move(work)};
  return Status::Ok();
}

Result<std::unique_ptr<BoundConnection>> SpecializedTransport::BindClient(
    Task* client, Port* port, const InterfaceSignature& signature,
    TrustLevel client_trust, bool nonunique_reply_port) {
  auto it = registrations_.find(port);
  if (it == registrations_.end()) {
    return NotFoundError("no server registered on port");
  }
  const Registration& reg = it->second;
  std::string why;
  if (!SignaturesCompatible(signature, reg.signature, &why)) {
    return PermissionDeniedError(
        StrFormat("signature check failed at bind time: %s", why.c_str()));
  }

  auto conn = std::unique_ptr<BoundConnection>(new BoundConnection());
  conn->kernel_ = kernel_;
  conn->client_ = client;
  conn->server_ = reg.server;
  conn->server_work_ = reg.work;
  // The client's reply port: created once at bind time; its right is
  // translated into the server's name space on every call.
  PortName reply_name = kernel_->CreatePort(client);
  FLEXRPC_ASSIGN_OR_RETURN(Port * reply_port,
                           kernel_->ResolvePort(client, reply_name));
  conn->reply_port_ = reply_port;
  conn->regs_.FillPattern(0xABCD);
  // The combination signature is a pure function of the signature pair and
  // the presentation attributes; cache the assembly so repeated bindings
  // of the same shape skip it (the paper folds this into bind time).
  uint64_t key = SignatureHash(signature);
  key = key * 0x100000001B3ull ^ SignatureHash(reg.signature);
  key = key * 0x100000001B3ull ^
        (static_cast<uint64_t>(client_trust) << 3 |
         static_cast<uint64_t>(reg.trust) << 1 |
         static_cast<uint64_t>(nonunique_reply_port));
  auto cached = combination_cache_.find(key);
  if (cached != combination_cache_.end()) {
    ++cache_hits_;
    TraceAdd(TraceCounter::kSigCacheHits);
    conn->program_ = cached->second;
  } else {
    ++cache_misses_;
    TraceAdd(TraceCounter::kSigCacheMisses);
    conn->program_ = AssembleCombination(client_trust, reg.trust,
                                         nonunique_reply_port,
                                         /*message_bytes=*/32);
    combination_cache_.emplace(key, conn->program_);
  }
  return conn;
}

}  // namespace flexrpc
