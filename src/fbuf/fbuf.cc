#include "src/fbuf/fbuf.h"

#include <cstring>

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

FbufPool::FbufPool(std::string name, Arena* shared, size_t fbuf_size,
                   size_t count)
    : name_(std::move(name)), fbuf_size_(fbuf_size) {
  all_.reserve(count);
  free_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto fbuf = std::unique_ptr<Fbuf>(new Fbuf());
    fbuf->data_ = static_cast<uint8_t*>(
        shared->Allocate(fbuf_size, /*align=*/64));
    fbuf->size_ = fbuf_size;
    fbuf->pool_ = this;
    free_.push_back(fbuf.get());
    all_.push_back(std::move(fbuf));
  }
}

Result<Fbuf*> FbufPool::Allocate(bool volatile_buf) {
  if (free_.empty()) {
    ++exhaustions_;
    return ResourceExhaustedError(
        StrFormat("fbuf pool '%s' exhausted (%zu buffers in use)",
                  name_.c_str(), in_use()));
  }
  Fbuf* fbuf = free_.back();
  free_.pop_back();
  fbuf->refs_ = 1;
  fbuf->volatile_ = volatile_buf;
  ++allocations_;
  TraceAdd(TraceCounter::kFbufAllocs);
  return fbuf;
}

void FbufPool::Release(Fbuf* fbuf) {
  free_.push_back(fbuf);
}

FbufAggregate::FbufAggregate(FbufAggregate&& other) noexcept
    : segments_(std::move(other.segments_)),
      total_bytes_(other.total_bytes_) {
  other.segments_.clear();
  other.total_bytes_ = 0;
}

FbufAggregate& FbufAggregate::operator=(FbufAggregate&& other) noexcept {
  if (this != &other) {
    Clear();
    segments_ = std::move(other.segments_);
    total_bytes_ = other.total_bytes_;
    other.segments_.clear();
    other.total_bytes_ = 0;
  }
  return *this;
}

void FbufAggregate::Append(Fbuf* fbuf, size_t offset, size_t length) {
  if (length == 0) {
    return;
  }
  fbuf->Ref();
  segments_.push_back(Segment{fbuf, offset, length});
  total_bytes_ += length;
}

void FbufAggregate::Splice(FbufAggregate* other) {
  // References move with the segments: no ref traffic, no data movement.
  TraceAdd(TraceCounter::kFbufSpliceSegments, other->segments_.size());
  TraceAdd(TraceCounter::kFbufBytesByReference, other->total_bytes_);
  for (const Segment& seg : other->segments_) {
    segments_.push_back(seg);
  }
  total_bytes_ += other->total_bytes_;
  other->segments_.clear();
  other->total_bytes_ = 0;
}

Result<FbufAggregate> FbufAggregate::SplitPrefix(size_t bytes) {
  if (bytes > total_bytes_) {
    return OutOfRangeError(
        StrFormat("split of %zu bytes from a %zu-byte aggregate", bytes,
                  total_bytes_));
  }
  FbufAggregate prefix;
  size_t remaining = bytes;
  size_t consumed_segments = 0;
  for (Segment& seg : segments_) {
    if (remaining == 0) {
      break;
    }
    if (seg.length <= remaining) {
      // Whole segment moves: transfer the reference.
      prefix.segments_.push_back(seg);
      prefix.total_bytes_ += seg.length;
      remaining -= seg.length;
      ++consumed_segments;
    } else {
      // Split within the segment: the prefix takes a new reference on the
      // shared fbuf; this aggregate keeps the tail.
      prefix.Append(seg.fbuf, seg.offset, remaining);
      seg.offset += remaining;
      seg.length -= remaining;
      remaining = 0;
    }
  }
  segments_.erase(segments_.begin(),
                  segments_.begin() + static_cast<long>(consumed_segments));
  total_bytes_ -= bytes;
  return prefix;
}

Status FbufAggregate::CopyOut(size_t offset, void* dst,
                              size_t length) const {
  if (offset + length > total_bytes_) {
    return OutOfRangeError("CopyOut past end of aggregate");
  }
  TraceAdd(TraceCounter::kFbufBytesCopied, length);
  TraceAdd(TraceCounter::kDataCopies);
  TraceAdd(TraceCounter::kDataCopyBytes, length);
  auto* out = static_cast<uint8_t*>(dst);
  size_t skip = offset;
  size_t want = length;
  for (const Segment& seg : segments_) {
    if (want == 0) {
      break;
    }
    if (skip >= seg.length) {
      skip -= seg.length;
      continue;
    }
    size_t take = seg.length - skip;
    if (take > want) {
      take = want;
    }
    std::memcpy(out, seg.fbuf->data() + seg.offset + skip, take);
    out += take;
    want -= take;
    skip = 0;
  }
  return Status::Ok();
}

Status FbufAggregate::CopyIn(size_t offset, const void* src, size_t length) {
  if (offset + length > total_bytes_) {
    return OutOfRangeError("CopyIn past end of aggregate");
  }
  TraceAdd(TraceCounter::kFbufBytesCopied, length);
  TraceAdd(TraceCounter::kDataCopies);
  TraceAdd(TraceCounter::kDataCopyBytes, length);
  const auto* in = static_cast<const uint8_t*>(src);
  size_t skip = offset;
  size_t want = length;
  for (Segment& seg : segments_) {
    if (want == 0) {
      break;
    }
    if (skip >= seg.length) {
      skip -= seg.length;
      continue;
    }
    size_t take = seg.length - skip;
    if (take > want) {
      take = want;
    }
    std::memcpy(seg.fbuf->data() + seg.offset + skip, in, take);
    in += take;
    want -= take;
    skip = 0;
  }
  return Status::Ok();
}

void FbufAggregate::Clear() {
  for (Segment& seg : segments_) {
    seg.fbuf->Unref();
  }
  segments_.clear();
  total_bytes_ = 0;
}

}  // namespace flexrpc
