// Fast buffers (fbufs) — a user-level reimplementation of Druschel &
// Peterson's high-bandwidth cross-domain transfer facility, as the paper's
// §4.3 describes ("implements all of the fbuf creation and manipulation
// facilities in user space").
//
// An FbufPool belongs to one *data path* (a semi-fixed producer→…→consumer
// chain) and hands out fixed-size buffers from memory every domain on the
// path can see. Data placed in an fbuf travels the whole path without
// copying or remapping; complex messages are composed and split by splicing
// *aggregates* — ordered lists of (fbuf, offset, length) segments — rather
// than moving bytes.
//
// Constraints faithfully kept from the original design:
//   * producers must generate data into pool buffers (no arbitrary
//     pointers), which is exactly why a conventional RPC presentation
//     needs a copy at each endpoint and a [special] presentation does not;
//   * volatile fbufs may still be observed by earlier domains on the path,
//     so consumers must not assume exclusive access until the path quiesces.

#ifndef FLEXRPC_SRC_FBUF_FBUF_H_
#define FLEXRPC_SRC_FBUF_FBUF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/support/arena.h"
#include "src/support/status.h"

namespace flexrpc {

class FbufPool;

// One fast buffer. Reference-counted: aggregates and application code take
// references; the buffer returns to its pool when the count drops to zero.
class Fbuf {
 public:
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  uint32_t refs() const { return refs_; }
  bool is_volatile() const { return volatile_; }
  FbufPool* pool() const { return pool_; }

  void Ref() { ++refs_; }
  // Declared in-line with pool release semantics; see FbufPool::Release.
  void Unref();

 private:
  friend class FbufPool;
  Fbuf() = default;

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  uint32_t refs_ = 0;
  bool volatile_ = false;
  FbufPool* pool_ = nullptr;
};

// A pool of equally-sized fbufs backed by one shared arena.
class FbufPool {
 public:
  // `shared` is the memory region mapped into every domain on the path.
  FbufPool(std::string name, Arena* shared, size_t fbuf_size, size_t count);

  FbufPool(const FbufPool&) = delete;
  FbufPool& operator=(const FbufPool&) = delete;

  // Allocates a buffer with one reference. `volatile_buf` marks it as a
  // volatile fbuf (the sender retains access while consumers process it —
  // the optimization §1 of the paper cites).
  Result<Fbuf*> Allocate(bool volatile_buf = false);

  // Returns a buffer to the free list (called from Fbuf::Unref).
  void Release(Fbuf* fbuf);

  size_t fbuf_size() const { return fbuf_size_; }
  size_t capacity() const { return all_.size(); }
  size_t free_count() const { return free_.size(); }
  size_t in_use() const { return capacity() - free_count(); }
  uint64_t allocations() const { return allocations_; }
  uint64_t exhaustions() const { return exhaustions_; }

 private:
  std::string name_;
  size_t fbuf_size_;
  std::vector<std::unique_ptr<Fbuf>> all_;
  std::vector<Fbuf*> free_;
  uint64_t allocations_ = 0;
  uint64_t exhaustions_ = 0;
};

inline void Fbuf::Unref() {
  if (--refs_ == 0) {
    pool_->Release(this);
  }
}

// An ordered list of fbuf segments forming one logical byte stream.
// Aggregates own references on their segments' fbufs.
class FbufAggregate {
 public:
  FbufAggregate() = default;
  ~FbufAggregate() { Clear(); }

  FbufAggregate(const FbufAggregate&) = delete;
  FbufAggregate& operator=(const FbufAggregate&) = delete;
  FbufAggregate(FbufAggregate&& other) noexcept;
  FbufAggregate& operator=(FbufAggregate&& other) noexcept;

  struct Segment {
    Fbuf* fbuf = nullptr;
    size_t offset = 0;
    size_t length = 0;
  };

  // Appends `length` bytes of `fbuf` starting at `offset` (takes a ref).
  void Append(Fbuf* fbuf, size_t offset, size_t length);

  // Splices all of `other`'s segments onto the tail (O(segments), no data
  // movement); `other` is drained.
  void Splice(FbufAggregate* other);

  // Removes the first `bytes` bytes into a new aggregate (the pipe-read
  // operation). Fails if the aggregate holds fewer bytes.
  Result<FbufAggregate> SplitPrefix(size_t bytes);

  // Copies bytes out of / into the logical stream (the endpoint copies a
  // *conventional* presentation performs).
  Status CopyOut(size_t offset, void* dst, size_t length) const;
  Status CopyIn(size_t offset, const void* src, size_t length);

  size_t size() const { return total_bytes_; }
  size_t segment_count() const { return segments_.size(); }
  const std::vector<Segment>& segments() const { return segments_; }
  void Clear();

 private:
  std::vector<Segment> segments_;
  size_t total_bytes_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_FBUF_FBUF_H_
