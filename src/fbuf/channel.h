// An RPC-capable channel over an fbuf data path.
//
// Control transfer uses the streamlined IPC path (two kernel traps and a
// small control-message copy per call); bulk data rides in fbuf aggregates
// that are handed over by reference. Used as the transport for the §4.3
// experiments: with standard presentations the stubs copy user data into
// and out of the aggregates at each endpoint (LRPC-like pairwise shared
// memory); with a [special] presentation an endpoint operates on the
// aggregates directly and the copies disappear.

#ifndef FLEXRPC_SRC_FBUF_CHANNEL_H_
#define FLEXRPC_SRC_FBUF_CHANNEL_H_

#include <functional>

#include "src/fbuf/fbuf.h"
#include "src/osim/kernel.h"

namespace flexrpc {

class FbufChannel {
 public:
  // `shared` is the path's shared region; the pool is carved out of it.
  FbufChannel(Kernel* kernel, Arena* shared, size_t fbuf_size, size_t count)
      : kernel_(kernel), pool_("path", shared, fbuf_size, count) {}

  FbufPool& pool() { return pool_; }

  // The server end. The handler consumes `request` and fills `reply`.
  using Handler = std::function<Status(uint32_t opnum,
                                       FbufAggregate* request,
                                       FbufAggregate* reply)>;
  void Serve(Handler handler) { handler_ = std::move(handler); }

  // Synchronous call: transfers `request` to the server by reference and
  // returns its reply aggregate the same way.
  Status Call(uint32_t opnum, FbufAggregate request, FbufAggregate* reply);

  uint64_t calls() const { return calls_; }

 private:
  Kernel* kernel_;
  FbufPool pool_;
  Handler handler_;
  uint64_t calls_ = 0;
  uint8_t control_in_[32] = {};
  uint8_t control_out_[32] = {};
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_FBUF_CHANNEL_H_
