#include "src/fbuf/channel.h"

#include <cstring>

#include "src/support/trace.h"

namespace flexrpc {

Status FbufChannel::Call(uint32_t opnum, FbufAggregate request,
                         FbufAggregate* reply) {
  if (!handler_) {
    return FailedPreconditionError("fbuf channel has no server");
  }
  ++calls_;
  TraceAdd(TraceCounter::kFbufChannelCalls);
  TraceObserve(TraceHistogram::kIpcMessageBytes, request.size());
  // Control transfer into the server: trap + control message copy. The
  // data itself stays in the shared fbufs.
  kernel_->Trap();
  std::memcpy(control_in_, &opnum, sizeof(opnum));
  asm volatile("" : : "r"(control_in_) : "memory");

  FbufAggregate out;
  FLEXRPC_RETURN_IF_ERROR(handler_(opnum, &request, &out));

  // Control transfer back.
  kernel_->Trap();
  std::memcpy(control_out_, control_in_, sizeof(control_out_));
  asm volatile("" : : "r"(control_out_) : "memory");
  *reply = std::move(out);
  return Status::Ok();
}

}  // namespace flexrpc
