// Sun RPC (RFC 1057) message headers over XDR, used by the NFS experiment.
// AUTH_NULL credentials/verifiers only — authentication is orthogonal to
// the presentation questions this library studies.

#ifndef FLEXRPC_SRC_NET_SUNRPC_H_
#define FLEXRPC_SRC_NET_SUNRPC_H_

#include <cstdint>

#include "src/marshal/xdr.h"
#include "src/support/status.h"

namespace flexrpc {

struct SunRpcCall {
  uint32_t xid = 0;
  uint32_t program = 0;
  uint32_t version = 0;
  uint32_t procedure = 0;
};

// Appends a CALL header (msg_type=0, rpcvers=2, AUTH_NULL cred+verf).
void EncodeSunRpcCall(XdrWriter* w, const SunRpcCall& call);

// Parses a CALL header, validating rpcvers.
Result<SunRpcCall> DecodeSunRpcCall(XdrReader* r);

// Appends a REPLY header (MSG_ACCEPTED / SUCCESS, AUTH_NULL verf).
void EncodeSunRpcReplySuccess(XdrWriter* w, uint32_t xid);

// Parses a REPLY header; fails unless it is MSG_ACCEPTED/SUCCESS with the
// expected xid. The failure code distinguishes the two ways this can go
// wrong, because a retransmitting client must react differently:
//   kUnavailable  the reply carries a *different* xid — a harmless late
//                 duplicate of an earlier call. Retryable: discard the
//                 datagram and keep waiting for the right reply.
//   kDataLoss     the reply is structurally malformed (truncated, not a
//                 REPLY, denied, or a non-SUCCESS accept status). Not
//                 retryable: the conversation itself is broken.
Status DecodeSunRpcReplySuccess(XdrReader* r, uint32_t expected_xid);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_NET_SUNRPC_H_
