#include "src/net/link.h"

#include <cmath>

#include "src/support/trace.h"

namespace flexrpc {

LinkModel::LinkModel() : config_(Config{}) {}
LinkModel::LinkModel(Config config) : config_(config) {}

RemoteServerModel::RemoteServerModel() : config_(Config{}) {}
RemoteServerModel::RemoteServerModel(Config config) : config_(config) {}

namespace {

uint64_t PacketsFor(const LinkModel::Config& config, uint64_t payload_bytes) {
  uint64_t packets =
      (payload_bytes + config.mtu_bytes - 1) / config.mtu_bytes;
  return packets == 0 ? 1 : packets;  // even an empty datagram occupies it
}

uint64_t WireBytesFor(const LinkModel::Config& config,
                      uint64_t payload_bytes) {
  return payload_bytes +
         PacketsFor(config, payload_bytes) * config.per_packet_overhead_bytes;
}

}  // namespace

double LinkModel::TransferSeconds(uint64_t payload_bytes) const {
  double serialization = static_cast<double>(WireBytesFor(
                             config_, payload_bytes)) *
                         8.0 / config_.bandwidth_bits_per_sec;
  return serialization + static_cast<double>(PacketsFor(
                             config_, payload_bytes)) *
                             config_.per_packet_latency_sec;
}

uint64_t LinkModel::OccupancyNanos(uint64_t payload_bytes) const {
  return static_cast<uint64_t>(
      static_cast<double>(WireBytesFor(config_, payload_bytes)) * 8.0 /
      config_.bandwidth_bits_per_sec * 1e9);
}

uint64_t LinkModel::LatencyNanos(uint64_t payload_bytes) const {
  return static_cast<uint64_t>(
      static_cast<double>(PacketsFor(config_, payload_bytes)) *
      config_.per_packet_latency_sec * 1e9);
}

void LinkModel::CountTransfer(uint64_t payload_bytes) const {
  if (!TraceEnabled()) {
    return;
  }
  uint64_t nanos = static_cast<uint64_t>(TransferSeconds(payload_bytes) * 1e9);
  TraceAdd(TraceCounter::kNetTransfers);
  TraceAdd(TraceCounter::kNetPackets, PacketsFor(config_, payload_bytes));
  TraceAdd(TraceCounter::kNetBytesOnWire,
           WireBytesFor(config_, payload_bytes));
  TraceAdd(TraceCounter::kNetWireVirtualNanos, nanos);
  TraceObserve(TraceHistogram::kNetTransferVirtualNanos, nanos);
}

void LinkModel::Transfer(uint64_t payload_bytes, VirtualClock* clock) const {
  CountTransfer(payload_bytes);
  clock->AdvanceSeconds(TransferSeconds(payload_bytes));
}

}  // namespace flexrpc
