#include "src/net/link.h"

#include <cmath>

#include "src/support/trace.h"

namespace flexrpc {

LinkModel::LinkModel() : config_(Config{}) {}
LinkModel::LinkModel(Config config) : config_(config) {}

RemoteServerModel::RemoteServerModel() : config_(Config{}) {}
RemoteServerModel::RemoteServerModel(Config config) : config_(config) {}

double LinkModel::TransferSeconds(uint64_t payload_bytes) const {
  uint64_t packets =
      (payload_bytes + config_.mtu_bytes - 1) / config_.mtu_bytes;
  if (packets == 0) {
    packets = 1;  // even an empty datagram occupies the wire
  }
  uint64_t wire_bytes =
      payload_bytes + packets * config_.per_packet_overhead_bytes;
  double serialization =
      static_cast<double>(wire_bytes) * 8.0 / config_.bandwidth_bits_per_sec;
  return serialization +
         static_cast<double>(packets) * config_.per_packet_latency_sec;
}

void LinkModel::Transfer(uint64_t payload_bytes, VirtualClock* clock) const {
  double seconds = TransferSeconds(payload_bytes);
  if (TraceEnabled()) {
    uint64_t packets =
        (payload_bytes + config_.mtu_bytes - 1) / config_.mtu_bytes;
    if (packets == 0) {
      packets = 1;
    }
    uint64_t wire_bytes =
        payload_bytes + packets * config_.per_packet_overhead_bytes;
    uint64_t nanos = static_cast<uint64_t>(seconds * 1e9);
    TraceAdd(TraceCounter::kNetTransfers);
    TraceAdd(TraceCounter::kNetPackets, packets);
    TraceAdd(TraceCounter::kNetBytesOnWire, wire_bytes);
    TraceAdd(TraceCounter::kNetWireVirtualNanos, nanos);
    TraceObserve(TraceHistogram::kNetTransferVirtualNanos, nanos);
  }
  clock->AdvanceSeconds(seconds);
}

}  // namespace flexrpc
