// FaultPlan — a deterministic, seeded model of an imperfect wire.
//
// The LinkModel charges virtual time but can never lose a packet; every
// figure in the paper runs over that perfect wire. FaultPlan is the other
// half of a real network: per-packet drop / duplicate / reorder / corrupt /
// extra-delay decisions drawn from a SplitMix64 stream (support/rng.h), plus
// scripted "drop exactly packets #k..#m" schedules for tests that need one
// precisely-placed fault (e.g. "the first reply is lost").
//
// Determinism contract: decision #n depends only on (seed, n). Every call to
// Next() consumes the same number of RNG draws regardless of which faults
// fire, so two runs of the same seed see identical fault sequences — which
// is what makes lossy benchmark counters exactly gateable in CI.

#ifndef FLEXRPC_SRC_NET_FAULT_H_
#define FLEXRPC_SRC_NET_FAULT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/support/rng.h"

namespace flexrpc {

struct FaultConfig {
  double drop_prob = 0;         // packet vanishes on the wire
  double dup_prob = 0;          // packet arrives twice
  double reorder_prob = 0;      // packet overtakes the queue ahead of it
  double corrupt_prob = 0;      // one byte is flipped in flight
  double extra_delay_prob = 0;  // packet is held back before delivery
  uint64_t extra_delay_max_nanos = 2'000'000;  // uniform in [1, max]
  uint64_t seed = 1;
};

class FaultPlan {
 public:
  // A perfect wire: no faults, no RNG consumption.
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config);

  // Scripted schedule: unconditionally drop packets with 0-based index in
  // [first, last] (inclusive), on top of the probabilistic faults.
  void DropExactly(uint64_t first, uint64_t last);

  // Scripted replica death: every packet from 0-based index `first` on is
  // dropped, forever. Equivalent to DropExactly(first, UINT64_MAX); the
  // failover suite uses it to kill a server at a precise packet count.
  void KillFrom(uint64_t first);

  // Scripted corruption: flip one byte in packets with 0-based index in
  // [first, last] (inclusive). The flipped position comes from a
  // deterministic per-index salt, so the schedule is a pure function of
  // the indices — no RNG draws are consumed.
  void CorruptExactly(uint64_t first, uint64_t last);

  // What the wire does to one packet.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;
    bool corrupt = false;
    uint64_t extra_delay_nanos = 0;
    uint64_t corrupt_salt = 0;  // picks the flipped byte position
    uint64_t index = 0;  // 0-based packet index this decision applies to;
                         // lets the flight recorder attribute a fault to
                         // "decision #n of this plan"
  };

  // Consumes the decision for the next packet. Drop wins over the other
  // faults (a dropped packet cannot also arrive twice).
  Decision Next();

  uint64_t packets_decided() const { return next_index_; }

 private:
  FaultConfig config_;
  Rng rng_{1};
  bool probabilistic_ = false;
  uint64_t next_index_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> drop_ranges_;
  std::vector<std::pair<uint64_t, uint64_t>> corrupt_ranges_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_NET_FAULT_H_
