#include "src/net/datagram.h"

#include <algorithm>

#include "src/support/recorder.h"
#include "src/support/trace.h"

namespace flexrpc {

namespace {
constexpr uint32_t kFrameMagic = 0x46444D31;  // "FDM1"
constexpr size_t kHeaderSize = 16;            // magic, seq, length, checksum

// The payload is a SunRPC message whose first word is the xid, so the
// channel can attribute wire and fault events to a call without the
// transport plumbing identity down. Returns 0 (unattributed) for frames
// too short to carry one.
uint32_t PeekPayloadXid(const uint8_t* payload, size_t size) {
  if (size < 4) {
    return 0;
  }
  return (static_cast<uint32_t>(payload[0]) << 24) |
         (static_cast<uint32_t>(payload[1]) << 16) |
         (static_cast<uint32_t>(payload[2]) << 8) |
         static_cast<uint32_t>(payload[3]);
}

// Under the mux wire format the payload's second word is the connection
// id ([xid][conn][body]); 0 for frames too short to carry one.
uint32_t PeekPayloadConn(const uint8_t* payload, size_t size) {
  if (size < 8) {
    return 0;
  }
  return PeekPayloadXid(payload + 4, size - 4);
}

uint32_t PeekFrameXid(const std::vector<uint8_t>& frame) {
  if (frame.size() < kHeaderSize) {
    return 0;
  }
  return PeekPayloadXid(frame.data() + kHeaderSize,
                        frame.size() - kHeaderSize);
}

RecEndpoint WireEndpoint(DatagramChannel::Dir dir) {
  return dir == DatagramChannel::Dir::kAtoB ? RecEndpoint::kWireAtoB
                                            : RecEndpoint::kWireBtoA;
}
}  // namespace

uint32_t DatagramChecksum(ByteSpan payload) {
  uint32_t h = 2166136261u;
  for (uint8_t b : payload) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

DatagramChannel::DatagramChannel(LinkModel link, FaultPlan plan_a_to_b,
                                 FaultPlan plan_b_to_a, VirtualClock* clock)
    : link_(link), clock_(clock) {
  plans_[0] = std::move(plan_a_to_b);
  plans_[1] = std::move(plan_b_to_a);
}

void DatagramChannel::Transmit(Dir dir, std::vector<uint8_t> bytes,
                               const FaultPlan::Decision& d) {
  const uint32_t rec_xid =
      RecorderEnabled() ? PeekFrameXid(bytes) : 0;
  const RecEndpoint rec_ep = WireEndpoint(dir);
  uint64_t deliver_at = 0;
  if (scheduled_) {
    // The frame occupies the wire from when the medium frees up; latency
    // and extra delay pipeline on top and only push out the delivery time.
    link_.CountTransfer(bytes.size());
    uint64_t& wire_free = wire_free_nanos_[static_cast<size_t>(dir)];
    uint64_t start = std::max(clock_->now_nanos(), wire_free);
    wire_free = start + link_.OccupancyNanos(bytes.size());
    deliver_at =
        wire_free + link_.LatencyNanos(bytes.size()) + d.extra_delay_nanos;
    RecordEvent(RecEvent::kWireTx, rec_ep, rec_xid, start,
                /*a=*/wire_free - start, /*b=*/deliver_at - wire_free);
  } else {
    // Lockstep: the frame occupies the wire whether or not it arrives,
    // charged to the shared clock right now.
    RecordEvent(RecEvent::kWireTx, rec_ep, rec_xid, clock_->now_nanos(),
                /*a=*/link_.OccupancyNanos(bytes.size()),
                /*b=*/link_.LatencyNanos(bytes.size()));
    link_.Transfer(bytes.size(), clock_);
  }
  if (d.extra_delay_nanos > 0) {
    RecordEvent(RecEvent::kFaultDelay, rec_ep, rec_xid, clock_->now_nanos(),
                /*a=*/d.extra_delay_nanos, /*b=*/d.index);
  }
  if (d.drop) {
    ++stats_.dropped;
    TraceAdd(TraceCounter::kNetFaultDrops);
    RecordEvent(RecEvent::kFaultDrop, rec_ep, rec_xid, clock_->now_nanos(),
                /*a=*/0, /*b=*/d.index);
    return;
  }
  Frame frame;
  frame.bytes = std::move(bytes);
  frame.extra_delay_nanos = scheduled_ ? 0 : d.extra_delay_nanos;
  frame.deliver_at_nanos = deliver_at;
  if (d.extra_delay_nanos > 0) {
    TraceAdd(TraceCounter::kNetFaultExtraDelayNanos, d.extra_delay_nanos);
  }
  if (d.corrupt) {
    // Flip one byte in the length/checksum/payload region; the receiver's
    // length or checksum validation detects it. (The magic and sequence
    // words are skipped: they are not covered by the checksum, and an
    // undetectably corrupted frame would break fault accounting.)
    size_t pos = 8 + d.corrupt_salt % (frame.bytes.size() - 8);
    frame.bytes[pos] ^= 0xFF;
    ++stats_.corrupted;
    TraceAdd(TraceCounter::kNetFaultCorrupts);
    RecordEvent(RecEvent::kFaultCorrupt, rec_ep, rec_xid,
                clock_->now_nanos(), /*a=*/0, /*b=*/d.index);
  }
  auto& queue = queues_[static_cast<size_t>(dir)];
  if (d.reorder && !queue.empty()) {
    queue.push_front(std::move(frame));  // overtakes everything in flight
    ++stats_.reordered;
    TraceAdd(TraceCounter::kNetFaultReorders);
  } else {
    queue.push_back(std::move(frame));
  }
}

void DatagramChannel::Send(Dir dir, ByteSpan payload) {
  ++stats_.sent;
  TraceAdd(TraceCounter::kNetDatagramsSent);
  ByteWriter w;
  w.WriteU32Be(kFrameMagic);
  w.WriteU32Be(next_seq_[static_cast<size_t>(dir)]++);
  w.WriteU32Be(static_cast<uint32_t>(payload.size()));
  w.WriteU32Be(DatagramChecksum(payload));
  w.WriteSpan(payload);

  FaultPlan::Decision d = plans_[static_cast<size_t>(dir)].Next();
  // Release the framed bytes straight out of the writer — the send path
  // performs no frame-buffer copy (net.frame_copies counts any that
  // remain; only duplicated frames need one).
  std::vector<uint8_t> bytes = w.TakeBuffer();
  if (d.duplicate) {
    ++stats_.duplicated;
    TraceAdd(TraceCounter::kNetFaultDups);
    TraceAdd(TraceCounter::kNetFrameCopies);
    RecordEvent(RecEvent::kFaultDup, WireEndpoint(dir),
                RecorderEnabled() ? PeekFrameXid(bytes) : 0,
                clock_->now_nanos(), /*a=*/0, /*b=*/d.index);
    // The duplicate travels as its own physical frame with no further
    // faults of its own (the plan decided this packet, not the copy).
    Transmit(dir, bytes, FaultPlan::Decision{});
  }
  Transmit(dir, std::move(bytes), d);
}

bool DatagramChannel::HasPending(Dir dir) const {
  const auto& queue = queues_[static_cast<size_t>(dir)];
  if (queue.empty()) {
    return false;
  }
  return !scheduled_ ||
         queue.front().deliver_at_nanos <= clock_->now_nanos();
}

std::optional<uint64_t> DatagramChannel::NextDeliveryNanos(Dir dir) const {
  const auto& queue = queues_[static_cast<size_t>(dir)];
  if (queue.empty()) {
    return std::nullopt;
  }
  return queue.front().deliver_at_nanos;
}

Result<std::vector<uint8_t>> DatagramChannel::Receive(Dir dir) {
  auto& queue = queues_[static_cast<size_t>(dir)];
  if (queue.empty()) {
    return FailedPreconditionError("no datagram pending");
  }
  if (scheduled_ && queue.front().deliver_at_nanos > clock_->now_nanos()) {
    return FailedPreconditionError("next datagram is still in flight");
  }
  Frame frame = std::move(queue.front());
  queue.pop_front();
  if (frame.extra_delay_nanos > 0) {
    clock_->AdvanceNanos(frame.extra_delay_nanos);
  }
  auto fail = [&](const char* why) -> Result<std::vector<uint8_t>> {
    ++stats_.checksum_failures;
    TraceAdd(TraceCounter::kNetChecksumFailures);
    return DataLossError(why);
  };
  ByteReader r(ByteSpan(frame.bytes.data(), frame.bytes.size()));
  auto magic = r.ReadU32Be();
  if (!magic.ok() || *magic != kFrameMagic) {
    return fail("datagram frame has bad magic");
  }
  auto seq = r.ReadU32Be();
  auto length = r.ReadU32Be();
  auto checksum = r.ReadU32Be();
  (void)seq;
  if (!length.ok() || !checksum.ok() ||
      frame.bytes.size() != kHeaderSize + *length) {
    return fail("datagram frame has bad length");
  }
  ByteSpan payload(frame.bytes.data() + kHeaderSize, *length);
  if (DatagramChecksum(payload) != *checksum) {
    return fail("datagram checksum mismatch");
  }
  ++stats_.delivered;
  TraceAdd(TraceCounter::kNetDatagramsDelivered);
  // Receive runs before the caller has parsed the frame, so no
  // RecorderConnScope encloses it; in conn-tagged mode the channel reads
  // the connection id out of the payload itself.
  std::optional<RecorderConnScope> conn_scope;
  if (conn_tagging_ && RecorderEnabled()) {
    conn_scope.emplace(PeekPayloadConn(payload.data(), *length));
  }
  RecordEvent(RecEvent::kWireRx, WireEndpoint(dir),
              RecorderEnabled() ? PeekPayloadXid(payload.data(), *length) : 0,
              clock_->now_nanos(), /*a=*/*length);
  return std::vector<uint8_t>(payload.begin(), payload.end());
}

}  // namespace flexrpc
