#include "src/net/fault.h"

namespace flexrpc {

FaultPlan::FaultPlan(const FaultConfig& config)
    : config_(config), rng_(config.seed), probabilistic_(true) {}

void FaultPlan::DropExactly(uint64_t first, uint64_t last) {
  drop_ranges_.emplace_back(first, last);
}

void FaultPlan::KillFrom(uint64_t first) {
  drop_ranges_.emplace_back(first, UINT64_MAX);
}

void FaultPlan::CorruptExactly(uint64_t first, uint64_t last) {
  corrupt_ranges_.emplace_back(first, last);
}

FaultPlan::Decision FaultPlan::Next() {
  uint64_t index = next_index_++;
  Decision d;
  d.index = index;
  if (probabilistic_) {
    // Fixed draw schedule: five uniforms and one salt per packet, consumed
    // whether or not each fault fires, so decision #n is a pure function
    // of (seed, n).
    double u_drop = rng_.NextDouble();
    double u_dup = rng_.NextDouble();
    double u_reorder = rng_.NextDouble();
    double u_corrupt = rng_.NextDouble();
    double u_delay = rng_.NextDouble();
    uint64_t salt = rng_.NextU64();
    d.drop = u_drop < config_.drop_prob;
    d.duplicate = u_dup < config_.dup_prob;
    d.reorder = u_reorder < config_.reorder_prob;
    d.corrupt = u_corrupt < config_.corrupt_prob;
    if (u_delay < config_.extra_delay_prob &&
        config_.extra_delay_max_nanos > 0) {
      d.extra_delay_nanos = 1 + salt % config_.extra_delay_max_nanos;
    }
    d.corrupt_salt = salt;
  }
  for (const auto& [first, last] : drop_ranges_) {
    if (index >= first && index <= last) {
      d.drop = true;
    }
  }
  for (const auto& [first, last] : corrupt_ranges_) {
    if (index >= first && index <= last) {
      d.corrupt = true;
      if (d.corrupt_salt == 0) {
        // Deterministic per-index salt (SplitMix64 finalizer) so the
        // flipped byte position depends only on the packet index.
        uint64_t z = index + 0x9E3779B97F4A7C15ull;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        d.corrupt_salt = z ^ (z >> 31);
      }
    }
  }
  if (d.drop) {
    d.duplicate = false;
    d.reorder = false;
    d.corrupt = false;
    d.extra_delay_nanos = 0;
  }
  return d;
}

}  // namespace flexrpc
