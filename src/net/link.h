// Link and remote-host time model for the Figure 2 experiment.
//
// The paper measured an NFS read over a real 10 Mbit/s Ethernet from a BSD
// file server. Neither the wire nor the server CPU is the object of study —
// the paper itself notes the "network and server processing time ... is the
// same in each case". We therefore account for them on a virtual clock
// (bandwidth + per-packet latency + fixed per-RPC server time), while all
// *client-side* work (marshaling, copies, protocol processing) executes for
// real and is measured with a real clock. EXPERIMENTS.md documents this
// substitution.

#ifndef FLEXRPC_SRC_NET_LINK_H_
#define FLEXRPC_SRC_NET_LINK_H_

#include <cstdint>

#include "src/support/timing.h"

namespace flexrpc {

class LinkModel {
 public:
  // Defaults model the paper's testbed: 10 Mbit/s Ethernet, 1500-byte MTU,
  // ~0.2 ms per-packet overhead (media access + interrupt handling).
  struct Config {
    double bandwidth_bits_per_sec = 10e6;
    uint32_t mtu_bytes = 1500;
    uint32_t per_packet_overhead_bytes = 58;  // eth + IP + UDP headers
    double per_packet_latency_sec = 200e-6;
  };

  LinkModel();
  explicit LinkModel(Config config);

  // Charges the transfer of `payload_bytes` in one direction to `clock`.
  void Transfer(uint64_t payload_bytes, VirtualClock* clock) const;

  // Seconds one transfer of `payload_bytes` takes (without a clock).
  double TransferSeconds(uint64_t payload_bytes) const;

  // The two components of TransferSeconds, in nanoseconds, for
  // scheduled-delivery channels that pipeline transfers: occupancy is the
  // interval the shared medium is busy serializing the frame (back-to-back
  // transfers queue behind it), latency is per-packet propagation and
  // handling delay (overlaps between transfers).
  uint64_t OccupancyNanos(uint64_t payload_bytes) const;
  uint64_t LatencyNanos(uint64_t payload_bytes) const;

  // Trace-counts one transfer (packets, bytes on wire, virtual nanos)
  // without advancing any clock — scheduled-delivery channels charge time
  // through delivery timestamps instead of Transfer.
  void CountTransfer(uint64_t payload_bytes) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

// Fixed per-RPC processing time of the (unmodified) remote file server.
class RemoteServerModel {
 public:
  struct Config {
    double per_call_sec = 500e-6;       // request parse + fs lookup
    double per_byte_sec = 50e-9;        // buffer cache copy on the server
  };

  RemoteServerModel();
  explicit RemoteServerModel(Config config);

  void Process(uint64_t bytes, VirtualClock* clock) const {
    clock->AdvanceSeconds(config_.per_call_sec +
                          config_.per_byte_sec * static_cast<double>(bytes));
  }

  // Nanoseconds one call of `bytes` occupies the server CPU (no clock) —
  // event-driven transports serialize executions on a busy-until horizon.
  uint64_t ProcessNanos(uint64_t bytes) const {
    return static_cast<uint64_t>(
        (config_.per_call_sec +
         config_.per_byte_sec * static_cast<double>(bytes)) *
        1e9);
  }

 private:
  Config config_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_NET_LINK_H_
