#include "src/net/sunrpc.h"

#include "src/support/strings.h"

namespace flexrpc {

namespace {
constexpr uint32_t kMsgCall = 0;
constexpr uint32_t kMsgReply = 1;
constexpr uint32_t kRpcVersion = 2;
constexpr uint32_t kMsgAccepted = 0;
constexpr uint32_t kAcceptSuccess = 0;
constexpr uint32_t kAuthNull = 0;

void EncodeAuthNull(XdrWriter* w) {
  w->PutU32(kAuthNull);  // flavor
  w->PutU32(0);          // body length
}

Status DecodeAuth(XdrReader* r) {
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t flavor, r->GetU32());
  (void)flavor;
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
  if (len > 400) {
    return DataLossError("implausible auth body length");
  }
  FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* body, r->GetBytes(len));
  (void)body;
  return Status::Ok();
}
}  // namespace

void EncodeSunRpcCall(XdrWriter* w, const SunRpcCall& call) {
  w->PutU32(call.xid);
  w->PutU32(kMsgCall);
  w->PutU32(kRpcVersion);
  w->PutU32(call.program);
  w->PutU32(call.version);
  w->PutU32(call.procedure);
  EncodeAuthNull(w);  // credentials
  EncodeAuthNull(w);  // verifier
}

Result<SunRpcCall> DecodeSunRpcCall(XdrReader* r) {
  SunRpcCall call;
  FLEXRPC_ASSIGN_OR_RETURN(call.xid, r->GetU32());
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t msg_type, r->GetU32());
  if (msg_type != kMsgCall) {
    return DataLossError("expected a CALL message");
  }
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t rpcvers, r->GetU32());
  if (rpcvers != kRpcVersion) {
    return DataLossError(
        StrFormat("unsupported Sun RPC version %u", rpcvers));
  }
  FLEXRPC_ASSIGN_OR_RETURN(call.program, r->GetU32());
  FLEXRPC_ASSIGN_OR_RETURN(call.version, r->GetU32());
  FLEXRPC_ASSIGN_OR_RETURN(call.procedure, r->GetU32());
  FLEXRPC_RETURN_IF_ERROR(DecodeAuth(r));
  FLEXRPC_RETURN_IF_ERROR(DecodeAuth(r));
  return call;
}

void EncodeSunRpcReplySuccess(XdrWriter* w, uint32_t xid) {
  w->PutU32(xid);
  w->PutU32(kMsgReply);
  w->PutU32(kMsgAccepted);
  EncodeAuthNull(w);  // verifier
  w->PutU32(kAcceptSuccess);
}

Status DecodeSunRpcReplySuccess(XdrReader* r, uint32_t expected_xid) {
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t xid, r->GetU32());
  if (xid != expected_xid) {
    // A stale xid is not damage — it is a late duplicate of an earlier
    // call's reply. kUnavailable tells the retransmit loop to discard it
    // and keep waiting instead of aborting the call.
    return UnavailableError(StrFormat(
        "stale xid: got %u, expected %u", xid, expected_xid));
  }
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t msg_type, r->GetU32());
  if (msg_type != kMsgReply) {
    return DataLossError("expected a REPLY message");
  }
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t stat, r->GetU32());
  if (stat != kMsgAccepted) {
    return DataLossError("Sun RPC call was denied");
  }
  FLEXRPC_RETURN_IF_ERROR(DecodeAuth(r));
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t accept_stat, r->GetU32());
  if (accept_stat != kAcceptSuccess) {
    return DataLossError(
        StrFormat("Sun RPC accept status %u", accept_stat));
  }
  return Status::Ok();
}

}  // namespace flexrpc
