// DatagramChannel — framed, checksummed datagrams over a faulty LinkModel.
//
// The channel moves whole datagrams between two endpoints (A = client,
// B = server) through per-direction FIFO queues. Each send is framed with a
// magic word, a per-direction sequence number, the payload length, and an
// FNV-1a checksum over the payload; the FaultPlan for that direction then
// decides whether the frame is dropped, duplicated, reordered ahead of the
// queue, corrupted (one byte flipped — the checksum catches it at the
// receiver, exactly like a UDP checksum discard), or held back by an extra
// delivery delay. Wire occupancy is charged to the VirtualClock at send
// time for every physical transmission (dropped and duplicated frames
// occupied the wire too); extra delay is charged at delivery.
//
// The channel is a single-threaded simulation artifact: Send/Receive run on
// the caller's thread and "time" is the shared virtual clock, which is what
// keeps every fault sequence and timestamp reproducible from the seeds.

#ifndef FLEXRPC_SRC_NET_DATAGRAM_H_
#define FLEXRPC_SRC_NET_DATAGRAM_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/net/fault.h"
#include "src/net/link.h"
#include "src/support/bytes.h"
#include "src/support/status.h"
#include "src/support/timing.h"

namespace flexrpc {

// FNV-1a over a byte span; the frame checksum.
uint32_t DatagramChecksum(ByteSpan payload);

class DatagramChannel {
 public:
  enum class Dir {
    kAtoB = 0,  // client -> server
    kBtoA = 1,  // server -> client
  };

  struct Stats {
    uint64_t sent = 0;        // frames handed to Send (pre-fault)
    uint64_t delivered = 0;   // frames returned intact by Receive
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t reordered = 0;
    uint64_t corrupted = 0;   // corrupted in flight (by the plan)
    uint64_t checksum_failures = 0;  // corruption detected at the receiver
  };

  DatagramChannel(LinkModel link, FaultPlan plan_a_to_b,
                  FaultPlan plan_b_to_a, VirtualClock* clock);

  // Frames `payload` and transmits it in direction `dir`, applying that
  // direction's fault plan. Charges wire time for every physical frame.
  void Send(Dir dir, ByteSpan payload);

  // True when a frame is waiting to be received in direction `dir`.
  bool HasPending(Dir dir) const;

  // Delivers the next frame's payload. Returns kDataLoss when the frame
  // fails validation (bad magic/length/checksum) — the frame is consumed,
  // as a real UDP stack silently discards it. kFailedPrecondition when the
  // queue is empty (callers should check HasPending first).
  Result<std::vector<uint8_t>> Receive(Dir dir);

  // --- scheduled delivery (event-driven transports) ------------------
  //
  // In the default lockstep mode Send charges wire time to the shared
  // clock inline and a queued frame is receivable immediately. In
  // scheduled mode Send instead stamps each frame with a delivery
  // timestamp: wire occupancy serializes per direction through a
  // busy-until horizon, while per-packet latency and fault extra delay
  // pipeline on top of it. HasPending/Receive then only surface frames
  // whose timestamp the clock has reached, and an event-driven transport
  // polls NextDeliveryNanos to know when to wake up. Pick the mode before
  // the first Send and do not mix transports on one channel.
  void set_scheduled_delivery(bool on) { scheduled_ = on; }
  bool scheduled_delivery() const { return scheduled_; }

  // Multiplexed framing: the payload's second big-endian word is the
  // connection id ([xid][conn][body] — the mux wire format). When on,
  // Receive tags its wire-delivery record events with that connection so
  // flexrec can attribute them to the (conn, xid) call; send-side events
  // inherit the caller's RecorderConnScope instead. Off by default — the
  // single-connection transports put arbitrary body bytes there.
  void set_conn_tagging(bool on) { conn_tagging_ = on; }

  // Delivery timestamp of the frame at the head of `dir`'s queue (which
  // may still be in flight); nullopt when the queue is empty. Only
  // meaningful in scheduled mode (lockstep frames carry timestamp 0).
  std::optional<uint64_t> NextDeliveryNanos(Dir dir) const;

  const Stats& stats() const { return stats_; }
  VirtualClock* clock() { return clock_; }
  const LinkModel& link() const { return link_; }

 private:
  struct Frame {
    std::vector<uint8_t> bytes;       // header + payload, post-corruption
    uint64_t extra_delay_nanos = 0;   // charged at delivery (lockstep mode)
    uint64_t deliver_at_nanos = 0;    // receivable time (scheduled mode)
  };

  void Transmit(Dir dir, std::vector<uint8_t> bytes,
                const FaultPlan::Decision& d);

  LinkModel link_;
  FaultPlan plans_[2];
  VirtualClock* clock_;
  std::deque<Frame> queues_[2];
  uint32_t next_seq_[2] = {0, 0};
  bool scheduled_ = false;
  bool conn_tagging_ = false;
  uint64_t wire_free_nanos_[2] = {0, 0};  // per-direction busy-until horizon
  Stats stats_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_NET_DATAGRAM_H_
