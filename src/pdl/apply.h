// Merging a PDL file over the default presentation, with validation.
//
// ApplyPdl resolves PDL declarations against the IDL, producing one
// InterfacePresentation per interface. By construction nothing here can
// alter the network contract: the output only carries stub-level bindings
// and attributes; the wire signature (src/sig/) is derived solely from the
// InterfaceFile.

#ifndef FLEXRPC_SRC_PDL_APPLY_H_
#define FLEXRPC_SRC_PDL_APPLY_H_

#include <map>
#include <string>

#include "src/idl/ast.h"
#include "src/pdl/pdl_parser.h"
#include "src/pdl/presentation.h"
#include "src/support/diag.h"

namespace flexrpc {

// All presentations for one endpoint of one interface file.
struct PresentationSet {
  Side side = Side::kClient;
  std::map<std::string, InterfacePresentation> by_interface;

  const InterfacePresentation* Find(std::string_view interface_name) const {
    auto it = by_interface.find(std::string(interface_name));
    return it == by_interface.end() ? nullptr : &it->second;
  }
};

// Builds default presentations for every interface in `idl` and overlays
// `pdl` (which may be null for a pure default presentation). Returns false
// and reports to `diags` if the PDL is invalid.
bool ApplyPdl(const InterfaceFile& idl, Side side, const PdlFile* pdl,
              PresentationSet* out, DiagnosticSink* diags);

// Convenience: parse PDL text and apply it in one step.
bool ApplyPdlText(const InterfaceFile& idl, Side side,
                  std::string_view pdl_text, std::string pdl_filename,
                  PresentationSet* out, DiagnosticSink* diags);

// --- Binding helpers shared with the marshal/codegen stages ---

// Type of the wire item a binding denotes (null for kPresentationOnly).
const Type* BindingType(const OperationDecl& op, const Binding& binding);

// Data-flow direction of the bound item (kResult* bindings are kOut).
ParamDir BindingDir(const OperationDecl& op, const Binding& binding);

// If `op` has exactly one in/inout parameter and its type resolves to a
// struct, returns that parameter's index; otherwise -1. This is the
// argument a Figure 1-style flattened presentation explodes.
int FlattenableArgIndex(const OperationDecl& op);

// If the operation result resolves to a union whose non-default arms carry
// a single struct (the Sun RPC `readres` shape) returns that struct; if the
// result is itself a struct, returns it; otherwise null.
const Type* FlattenableResultStruct(const OperationDecl& op);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_PDL_APPLY_H_
