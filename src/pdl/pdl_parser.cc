#include "src/pdl/pdl_parser.h"

#include "src/idl/lexer.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

class PdlParser {
 public:
  PdlParser(std::string_view source, std::string filename,
            DiagnosticSink* diags)
      : file_(std::make_unique<PdlFile>()),
        cursor_(Tokenize(source, filename, diags), filename, diags) {
    file_->filename = std::move(filename);
  }

  std::unique_ptr<PdlFile> Run() {
    while (!cursor_.AtEnd()) {
      ParseDecl();
    }
    if (cursor_.diags()->HasErrors()) {
      return nullptr;
    }
    return std::move(file_);
  }

 private:
  void ParseDecl() {
    if (cursor_.Peek().IsIdent("interface")) {
      ParseInterfaceDecl();
      return;
    }
    if (cursor_.Peek().IsIdent("type")) {
      ParseTypeDecl();
      return;
    }
    ParseOpDecl();
  }

  void ParseInterfaceDecl() {
    PdlInterfaceDecl decl;
    decl.pos = cursor_.Peek().pos;
    cursor_.Next();  // 'interface'
    decl.interface_name = cursor_.ExpectIdentifier("after 'interface'");
    if (!ParseAttrGroup(&decl.attrs)) {
      cursor_.Error("interface declaration needs a [attribute] list");
    }
    cursor_.Expect(TokenKind::kSemicolon, "after interface attributes");
    file_->interfaces.push_back(std::move(decl));
  }

  void ParseTypeDecl() {
    PdlTypeDecl decl;
    decl.pos = cursor_.Peek().pos;
    cursor_.Next();  // 'type'
    decl.type_name = cursor_.ExpectIdentifier("after 'type'");
    if (!ParseAttrGroup(&decl.attrs)) {
      cursor_.Error("type declaration needs a [attribute] list");
    }
    cursor_.Expect(TokenKind::kSemicolon, "after type attributes");
    file_->types.push_back(std::move(decl));
  }

  // Parses `[attr, attr(arg, ...), ...]` if present; returns false if the
  // next token is not '['. Appends to `out`.
  bool ParseAttrGroup(std::vector<PdlAttr>* out) {
    if (!cursor_.TryConsume(TokenKind::kLBracket)) {
      return false;
    }
    if (cursor_.TryConsume(TokenKind::kRBracket)) {
      return true;  // empty group is allowed (and means nothing)
    }
    do {
      PdlAttr attr;
      attr.pos = cursor_.Peek().pos;
      attr.name = cursor_.ExpectIdentifier("as attribute name");
      if (cursor_.TryConsume(TokenKind::kLParen)) {
        if (!cursor_.Peek().Is(TokenKind::kRParen)) {
          do {
            const Token& tok = cursor_.Peek();
            if (tok.Is(TokenKind::kIdentifier) ||
                tok.Is(TokenKind::kIntLiteral)) {
              attr.args.emplace_back(cursor_.Next().text);
            } else {
              cursor_.Error("attribute arguments must be identifiers or "
                            "integers");
              cursor_.Next();
            }
          } while (cursor_.TryConsume(TokenKind::kComma));
        }
        cursor_.Expect(TokenKind::kRParen, "to close attribute arguments");
      }
      out->push_back(std::move(attr));
    } while (cursor_.TryConsume(TokenKind::kComma));
    cursor_.Expect(TokenKind::kRBracket, "to close attribute list");
    return true;
  }

  // An op re-declaration:
  //   [op_attrs] ctype... FuncName ( slot, slot, ... ) [return_attrs] ;
  void ParseOpDecl() {
    PdlOpDecl decl;
    decl.pos = cursor_.Peek().pos;
    ParseAttrGroup(&decl.op_attrs);

    // Everything up to the identifier directly followed by '(' is the
    // (cosmetic) return type.
    std::vector<std::string> ctype_tokens;
    while (true) {
      const Token& tok = cursor_.Peek();
      if (tok.Is(TokenKind::kIdentifier)) {
        if (cursor_.Peek(1).Is(TokenKind::kLParen)) {
          decl.func_name = std::string(cursor_.Next().text);
          break;
        }
        ctype_tokens.emplace_back(cursor_.Next().text);
      } else if (tok.Is(TokenKind::kStar)) {
        ctype_tokens.emplace_back("*");
        cursor_.Next();
      } else {
        cursor_.Error("expected a stub re-declaration");
        cursor_.SkipPast(TokenKind::kSemicolon);
        return;
      }
    }
    decl.return_ctype = StrJoin(ctype_tokens, " ");

    cursor_.Expect(TokenKind::kLParen, "to open parameter slots");
    if (!cursor_.Peek().Is(TokenKind::kRParen)) {
      while (true) {
        decl.slots.push_back(ParseSlot());
        if (cursor_.TryConsume(TokenKind::kComma)) {
          continue;
        }
        break;
      }
    }
    cursor_.Expect(TokenKind::kRParen, "to close parameter slots");
    ParseAttrGroup(&decl.return_attrs);
    cursor_.Expect(TokenKind::kSemicolon, "after stub re-declaration");
    file_->ops.push_back(std::move(decl));
  }

  // One slot: empty, or C-ish declarator tokens with [attr] groups anywhere.
  // The last identifier is the parameter name.
  PdlSlot ParseSlot() {
    PdlSlot slot;
    slot.pos = cursor_.Peek().pos;
    std::vector<std::string> tokens;
    while (true) {
      const Token& tok = cursor_.Peek();
      if (tok.Is(TokenKind::kComma) || tok.Is(TokenKind::kRParen) ||
          tok.Is(TokenKind::kEof)) {
        break;
      }
      if (tok.Is(TokenKind::kLBracket)) {
        ParseAttrGroup(&slot.attrs);
        continue;
      }
      if (tok.Is(TokenKind::kIdentifier)) {
        tokens.emplace_back(cursor_.Next().text);
      } else if (tok.Is(TokenKind::kStar)) {
        tokens.emplace_back("*");
        cursor_.Next();
      } else {
        cursor_.Error(StrFormat("unexpected %s in parameter slot",
                                std::string(TokenKindName(tok.kind)).c_str()));
        cursor_.Next();
      }
    }
    if (tokens.empty()) {
      slot.empty = slot.attrs.empty();
      return slot;
    }
    // The final identifier names the parameter; what precedes it is the
    // cosmetic C type.
    slot.name = tokens.back();
    tokens.pop_back();
    slot.ctype_text = StrJoin(tokens, " ");
    if (slot.name == "*") {
      cursor_.ErrorAt(slot.pos, "parameter slot must end in a name");
      slot.name.clear();
    }
    return slot;
  }

  std::unique_ptr<PdlFile> file_;
  TokenCursor cursor_;
};

}  // namespace

std::unique_ptr<PdlFile> ParsePdl(std::string_view source,
                                  std::string filename,
                                  DiagnosticSink* diags) {
  return PdlParser(source, std::move(filename), diags).Run();
}

}  // namespace flexrpc
