#include "src/pdl/presentation.h"

namespace flexrpc {

std::string_view SideName(Side side) {
  return side == Side::kClient ? "client" : "server";
}

std::string_view BindingKindName(BindingKind kind) {
  switch (kind) {
    case BindingKind::kParam:
      return "param";
    case BindingKind::kParamField:
      return "param-field";
    case BindingKind::kResult:
      return "result";
    case BindingKind::kResultField:
      return "result-field";
    case BindingKind::kResultDiscriminant:
      return "result-discriminant";
    case BindingKind::kPresentationOnly:
      return "presentation-only";
  }
  return "?";
}

std::string_view TrustLevelName(TrustLevel level) {
  switch (level) {
    case TrustLevel::kNone:
      return "none";
    case TrustLevel::kLeaky:
      return "leaky";
    case TrustLevel::kFull:
      return "leaky,unprotected";
  }
  return "?";
}

ParamPresentation* OpPresentation::FindParam(std::string_view name) {
  for (ParamPresentation& p : params) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

const ParamPresentation* OpPresentation::FindParam(
    std::string_view name) const {
  return const_cast<OpPresentation*>(this)->FindParam(name);
}

OpPresentation* InterfacePresentation::FindOp(std::string_view name) {
  for (OpPresentation& op : ops) {
    if (op.op_name == name) {
      return &op;
    }
  }
  return nullptr;
}

const OpPresentation* InterfacePresentation::FindOp(
    std::string_view name) const {
  return const_cast<InterfacePresentation*>(this)->FindOp(name);
}

bool IsBufferLike(const Type* type) {
  switch (type->Resolve()->kind()) {
    case TypeKind::kString:
    case TypeKind::kSequence:
    case TypeKind::kArray:
      return true;
    default:
      return false;
  }
}

bool IsVariableWireSize(const Type* type) {
  const Type* t = type->Resolve();
  switch (t->kind()) {
    case TypeKind::kString:
    case TypeKind::kSequence:
    case TypeKind::kUnion:
      return true;
    case TypeKind::kArray:
      return IsVariableWireSize(t->element());
    case TypeKind::kStruct:
      for (const StructField& f : t->fields()) {
        if (IsVariableWireSize(f.type)) {
          return true;
        }
      }
      return false;
    default:
      return false;
  }
}

bool IsIntegralScalar(const Type* type) {
  switch (type->Resolve()->kind()) {
    case TypeKind::kI16:
    case TypeKind::kU16:
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kEnum:
      return true;
    default:
      return false;
  }
}

namespace {

ParamPresentation DefaultParamPresentation(const std::string& name,
                                           const Type* type, ParamDir dir,
                                           Side side) {
  ParamPresentation p;
  p.name = name;
  const Type* t = type->Resolve();
  bool produces_data =
      dir != ParamDir::kIn;  // out/inout: data flows back to the client
  if (t->kind() == TypeKind::kVoid) {
    return p;
  }
  if (IsVariableWireSize(t) && produces_data) {
    if (side == Side::kServer) {
      // CORBA/COM move semantics: the work function allocates and donates;
      // the stub deallocates once the data has been marshaled out.
      p.alloc = AllocPolicy::kUser;
      p.dealloc = DeallocPolicy::kAlways;
    } else {
      // The client consumes a system-provided buffer (and frees it later).
      p.alloc = AllocPolicy::kStub;
    }
  } else if (produces_data) {
    // Fixed-size out data is written directly into caller storage on the
    // client and stub storage on the server.
    p.alloc = side == Side::kClient ? AllocPolicy::kUser : AllocPolicy::kStub;
  }
  return p;
}

}  // namespace

InterfacePresentation DefaultPresentation(const InterfaceDecl& itf,
                                          Side side) {
  InterfacePresentation pres;
  pres.interface_name = itf.name;
  pres.side = side;
  pres.trust = TrustLevel::kNone;
  for (const OperationDecl& op : itf.ops) {
    OpPresentation op_pres;
    op_pres.op_name = op.name;
    for (size_t i = 0; i < op.params.size(); ++i) {
      const ParamDecl& param = op.params[i];
      ParamPresentation p =
          DefaultParamPresentation(param.name, param.type, param.dir, side);
      p.binding = Binding{BindingKind::kParam, static_cast<int>(i), -1};
      op_pres.params.push_back(std::move(p));
    }
    // The result behaves like an out parameter named "return".
    op_pres.result = DefaultParamPresentation("return", op.result,
                                              ParamDir::kOut, side);
    op_pres.result.binding = Binding{BindingKind::kResult, -1, -1};
    pres.ops.push_back(std::move(op_pres));
  }
  return pres;
}

}  // namespace flexrpc
