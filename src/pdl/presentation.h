// The presentation model: the "programmer's contract" between stubs and the
// code that calls or is called by them (paper §1).
//
// A Presentation never affects the network contract (the wire signature);
// it only controls how parameters are passed, who allocates/frees storage,
// what the endpoint may assume about buffer mutability, and which transport
// specializations (trust, name uniqueness) are safe. Every interface has a
// *default* presentation computed from the IDL by fixed rules (CORBA C
// mapping); a PDL file overrides parts of it for one endpoint.

#ifndef FLEXRPC_SRC_PDL_PRESENTATION_H_
#define FLEXRPC_SRC_PDL_PRESENTATION_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/idl/ast.h"

namespace flexrpc {

// Which endpoint a presentation file configures. Some attributes are only
// meaningful on one side (trashable: client; preserved: server).
enum class Side { kClient, kServer };

std::string_view SideName(Side side);

// Who provides the storage a returned (out/result) parameter lives in, as
// seen from one endpoint (paper §4.4.2). The two endpoints declare their
// preferences independently; the RPC system reconciles them.
//
//   * kUser on the client: the client passes in its own buffer for the stub
//     to fill ("client allocates" — MIG-style for non-COW parameters).
//   * kStub on the client: the stub hands back a system-allocated buffer the
//     client consumes and frees ("server allocates" — CORBA/COM move).
//   * kUser on the server: the work function returns a buffer it owns
//     (donated or retained, per DeallocPolicy) — CORBA/COM default.
//   * kStub on the server: the stub provides a buffer the work function
//     fills in place.
enum class AllocPolicy {
  kAuto,  // no constraint: let the RPC system pick
  kUser,  // this endpoint's application code provides/owns the buffer
  kStub,  // the stub / RPC system provides the buffer
};

// When the stub deallocates a buffer it was handed.
enum class DeallocPolicy {
  kDefault,  // follow the default presentation's rule for this param
  kNever,    // stub must not free: the endpoint manages its own storage
  kAlways,   // stub frees after marshaling (move semantics)
};

// Degree to which this endpoint trusts its peer (paper §4.5).
enum class TrustLevel {
  kNone,   // default: protect confidentiality and integrity
  kLeaky,  // peer may observe leaked data (confidentiality waived)
  kFull,   // [leaky, unprotected]: peer may also corrupt our state
};

std::string_view TrustLevelName(TrustLevel level);

// Where a stub-level parameter's data lives in the wire contract. The
// default presentation binds stub parameters 1:1 onto IDL parameters, but a
// PDL can *flatten* structured parameters: the paper's Figure 1 re-declares
// the Sun RPC `nfsproc_read(readargs)` stub so that the fields of `readargs`
// (and of the `readres` result union) appear as individual C parameters.
enum class BindingKind {
  kParam,               // the IDL parameter at param_index
  kParamField,          // field field_index of the struct param param_index
  kResult,              // the operation result
  kResultField,         // field field_index of the result's success arm
  kResultDiscriminant,  // the discriminant of a union-typed result
  kPresentationOnly,    // exists only in the stub prototype (e.g. a length)
};

struct Binding {
  BindingKind kind = BindingKind::kParam;
  int param_index = -1;
  int field_index = -1;

  bool operator==(const Binding&) const = default;
};

// Per-parameter presentation attributes.
struct ParamPresentation {
  std::string name;  // parameter name (or "return" for the result)

  // What wire item this stub-level parameter carries.
  Binding binding;

  // [length_is(p)]: buffer length travels in parameter `p` of the stub
  // prototype instead of being implied (e.g. by NUL termination).
  bool explicit_length = false;
  std::string length_param;

  // [special]: marshaled/unmarshaled through user-provided routines (the
  // Linux copyin/copyout and fbuf hooks of §4.1/§4.3).
  bool special = false;

  // [trashable] (client side): the endpoint does not care whether the
  // buffer's contents survive the call.
  bool trashable = false;

  // [preserved] (server side): the endpoint promises not to modify the
  // buffer it receives.
  bool preserved = false;

  // [nonunique] (objref params): the receiving task does not require the
  // transferred reference to map to a task-unique local name.
  bool nonunique = false;

  AllocPolicy alloc = AllocPolicy::kAuto;
  DeallocPolicy dealloc = DeallocPolicy::kDefault;

  // Original C declarator text from the PDL file (cosmetic; used by the
  // code generator to reproduce hand-written prototypes). Empty = derive.
  std::string declarator_text;

  // True when this parameter exists only in the presentation (e.g. an
  // explicit `int length` slot) and has no wire footprint of its own.
  bool presentation_only = false;
};

std::string_view BindingKindName(BindingKind kind);

// Per-operation presentation.
struct OpPresentation {
  std::string op_name;

  // [comm_status]: transport/communication failures are reported through
  // the operation's return value instead of an exception out-param.
  bool comm_status = false;

  // True when a single struct argument / a union result was flattened into
  // individual stub parameters (Figure 1 style). When set, `params` contains
  // kParamField / kResultField / kResultDiscriminant bindings and no
  // kParam/kResult binding exists for the flattened item.
  bool args_flattened = false;
  bool result_flattened = false;

  std::vector<ParamPresentation> params;  // stub-prototype order
  ParamPresentation result;               // presentation of the return value

  ParamPresentation* FindParam(std::string_view name);
  const ParamPresentation* FindParam(std::string_view name) const;
};

// Presentation of one interface as seen from one endpoint.
struct InterfacePresentation {
  std::string interface_name;
  Side side = Side::kClient;
  TrustLevel trust = TrustLevel::kNone;

  std::vector<OpPresentation> ops;  // same order as the flattened interface

  OpPresentation* FindOp(std::string_view name);
  const OpPresentation* FindOp(std::string_view name) const;
};

// Computes the default (standard CORBA-mapping) presentation for `itf`:
//  * strings are NUL-terminated char* (no explicit length),
//  * `in` buffers are neither trashable nor preserved (copy semantics),
//  * variable-size `out`/result data uses move semantics: the server work
//    function allocates and donates (server alloc=kUser, dealloc=kAlways),
//    the client consumes a system-provided buffer (client alloc=kStub),
//  * fixed-size `out` data is written into caller storage on the client
//    (alloc=kUser) and stub storage on the server (alloc=kStub),
//  * no special marshaling, unique names, no trust.
InterfacePresentation DefaultPresentation(const InterfaceDecl& itf,
                                          Side side);

// True if `type` is "buffer-like": its wire representation includes a
// variable- or fixed-length run of bytes/elements a presentation can point
// somewhere else (string, sequence, array).
bool IsBufferLike(const Type* type);

// True if the wire size of `type` varies with the value (so the receiver
// cannot preallocate exactly without more information). Drives the default
// alloc/dealloc split and flexcheck's move-semantics advisor.
bool IsVariableWireSize(const Type* type);

// True for integer-valued scalars (including enums) — the types a
// [length_is] slot may carry.
bool IsIntegralScalar(const Type* type);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_PDL_PRESENTATION_H_
