#include "src/pdl/apply.h"

#include <set>
#include <unordered_set>

#include "src/support/strings.h"

namespace flexrpc {

namespace {

ParamPresentation DefaultFieldPresentation(const std::string& name,
                                           const Type* type, ParamDir dir,
                                           Side side, Binding binding) {
  ParamPresentation p;
  p.name = name;
  p.binding = binding;
  bool produces_data = dir != ParamDir::kIn;
  if (produces_data && IsVariableWireSize(type)) {
    if (side == Side::kServer) {
      p.alloc = AllocPolicy::kUser;
      p.dealloc = DeallocPolicy::kAlways;
    } else {
      p.alloc = AllocPolicy::kStub;
    }
  } else if (produces_data) {
    p.alloc = side == Side::kClient ? AllocPolicy::kUser : AllocPolicy::kStub;
  }
  return p;
}

class Applier {
 public:
  Applier(const InterfaceFile& idl, Side side, const PdlFile* pdl,
          PresentationSet* out, DiagnosticSink* diags)
      : idl_(idl), side_(side), pdl_(pdl), out_(out), diags_(diags) {}

  bool Run() {
    out_->side = side_;
    out_->by_interface.clear();
    for (const InterfaceDecl& itf : idl_.interfaces) {
      out_->by_interface.emplace(itf.name, DefaultPresentation(itf, side_));
    }
    if (pdl_ != nullptr) {
      for (const PdlInterfaceDecl& decl : pdl_->interfaces) {
        ApplyInterfaceDecl(decl);
      }
      for (const PdlTypeDecl& decl : pdl_->types) {
        ApplyTypeDecl(decl);
      }
      for (const PdlOpDecl& decl : pdl_->ops) {
        ApplyOpDecl(decl);
      }
    }
    Validate();
    return !diags_->HasErrors();
  }

 private:
  void Error(SourcePos pos, std::string message) {
    diags_->Error(pdl_ != nullptr ? pdl_->filename : idl_.filename, pos,
                  std::move(message));
  }

  void ApplyInterfaceDecl(const PdlInterfaceDecl& decl) {
    auto it = out_->by_interface.find(decl.interface_name);
    if (it == out_->by_interface.end()) {
      Error(decl.pos, StrFormat("unknown interface '%s'",
                                decl.interface_name.c_str()));
      return;
    }
    InterfacePresentation& pres = it->second;
    bool leaky = false;
    bool unprotected = false;
    for (const PdlAttr& attr : decl.attrs) {
      if (attr.name == "leaky") {
        leaky = true;
      } else if (attr.name == "unprotected") {
        unprotected = true;
      } else if (attr.name == "trust" && attr.args.size() == 1) {
        if (attr.args[0] == "none") {
          pres.trust = TrustLevel::kNone;
        } else if (attr.args[0] == "leaky") {
          pres.trust = TrustLevel::kLeaky;
        } else if (attr.args[0] == "full") {
          pres.trust = TrustLevel::kFull;
        } else {
          Error(attr.pos, StrFormat("unknown trust level '%s'",
                                    attr.args[0].c_str()));
        }
      } else {
        Error(attr.pos, StrFormat("unknown interface attribute '%s'",
                                  attr.name.c_str()));
      }
    }
    if (unprotected && !leaky) {
      Error(decl.pos,
            "[unprotected] requires [leaky]: integrity cannot be waived "
            "while confidentiality is protected");
    } else if (unprotected) {
      pres.trust = TrustLevel::kFull;
    } else if (leaky) {
      pres.trust = TrustLevel::kLeaky;
    }
  }

  // Does `type` match a PDL type name? Named types match their name;
  // "string" and "opaque" match the builtin string / byte-sequence shapes.
  static bool TypeMatches(const Type* type, const std::string& name) {
    if (type == nullptr) {
      return false;
    }
    if (!type->name().empty() && type->name() == name) {
      return true;
    }
    const Type* r = type->Resolve();
    if (!r->name().empty() && r->name() == name) {
      return true;
    }
    if (name == "string" && r->kind() == TypeKind::kString) {
      return true;
    }
    if (name == "opaque" && r->kind() == TypeKind::kSequence &&
        r->element()->Resolve()->kind() == TypeKind::kOctet) {
      return true;
    }
    return false;
  }

  void ApplyTypeDecl(const PdlTypeDecl& decl) {
    bool matched_any = false;
    for (const InterfaceDecl& itf : idl_.interfaces) {
      InterfacePresentation& pres = out_->by_interface.at(itf.name);
      for (size_t oi = 0; oi < itf.ops.size(); ++oi) {
        const OperationDecl& op = itf.ops[oi];
        OpPresentation& op_pres = pres.ops[oi];
        for (ParamPresentation& p : op_pres.params) {
          const Type* t = BindingType(op, p.binding);
          if (TypeMatches(t, decl.type_name)) {
            matched_any = true;
            for (const PdlAttr& attr : decl.attrs) {
              ApplyParamAttr(attr, &p);
            }
          }
        }
        const Type* rt = BindingType(op, op_pres.result.binding);
        if (TypeMatches(rt, decl.type_name)) {
          matched_any = true;
          for (const PdlAttr& attr : decl.attrs) {
            ApplyParamAttr(attr, &op_pres.result);
          }
        }
      }
    }
    if (!matched_any) {
      Error(decl.pos,
            StrFormat("type '%s' does not occur in any operation",
                      decl.type_name.c_str()));
    }
  }

  // Resolves a PDL function name like "FileIO_read", "read", or
  // "NFSPROC_READ" to a unique (interface, op) pair.
  bool ResolveOp(const PdlOpDecl& decl, const InterfaceDecl** out_itf,
                 const OperationDecl** out_op) {
    std::vector<std::pair<const InterfaceDecl*, const OperationDecl*>> hits;
    for (const InterfaceDecl& itf : idl_.interfaces) {
      for (const OperationDecl& op : itf.ops) {
        if (decl.func_name == op.name ||
            decl.func_name == itf.name + "_" + op.name) {
          hits.emplace_back(&itf, &op);
        }
      }
    }
    if (hits.empty()) {
      Error(decl.pos, StrFormat("no operation matches '%s'",
                                decl.func_name.c_str()));
      return false;
    }
    if (hits.size() > 1) {
      Error(decl.pos, StrFormat("'%s' is ambiguous between %zu operations",
                                decl.func_name.c_str(), hits.size()));
      return false;
    }
    *out_itf = hits[0].first;
    *out_op = hits[0].second;
    return true;
  }

  void ApplyOpDecl(const PdlOpDecl& decl) {
    const InterfaceDecl* itf = nullptr;
    const OperationDecl* op = nullptr;
    if (!ResolveOp(decl, &itf, &op)) {
      return;
    }
    InterfacePresentation& ipres = out_->by_interface.at(itf->name);
    OpPresentation* op_pres = ipres.FindOp(op->name);

    for (const PdlAttr& attr : decl.op_attrs) {
      if (attr.name == "comm_status") {
        op_pres->comm_status = true;
      } else {
        Error(attr.pos, StrFormat("unknown operation attribute '%s'",
                                  attr.name.c_str()));
      }
    }
    for (const PdlAttr& attr : decl.return_attrs) {
      ApplyParamAttr(attr, &op_pres->result);
    }
    if (decl.slots.empty()) {
      return;  // attribute-only re-declaration
    }

    RebuildParams(decl, *op, op_pres);
  }

  // Rebuilds the stub-level parameter list of `op_pres` from the slots of a
  // full re-declaration, resolving names to IDL params, flattenable-struct
  // fields, the result's success-arm fields, or presentation-only slots.
  void RebuildParams(const PdlOpDecl& decl, const OperationDecl& op,
                     OpPresentation* op_pres) {
    const int flatten_arg = FlattenableArgIndex(op);
    const Type* flatten_arg_type =
        flatten_arg >= 0 ? op.params[static_cast<size_t>(flatten_arg)]
                               .type->Resolve()
                         : nullptr;
    const Type* result_struct = FlattenableResultStruct(op);
    const Type* result_resolved = op.result->Resolve();
    const bool result_is_union = result_resolved->kind() == TypeKind::kUnion;

    std::vector<ParamPresentation> new_params;
    std::set<int> bound_params;
    std::set<int> bound_arg_fields;
    std::set<int> bound_result_fields;
    bool disc_bound = false;
    bool args_flattened = false;
    bool result_flattened = false;

    for (const PdlSlot& slot : decl.slots) {
      if (slot.empty) {
        continue;  // placeholder: keep whatever the defaults say
      }
      if (slot.name.empty()) {
        Error(slot.pos, "presentation attributes require a named slot");
        continue;
      }
      ParamPresentation p;
      // (a) direct IDL parameter?
      int param_index = -1;
      for (size_t i = 0; i < op.params.size(); ++i) {
        if (op.params[i].name == slot.name) {
          param_index = static_cast<int>(i);
          break;
        }
      }
      if (param_index >= 0) {
        if (!bound_params.insert(param_index).second) {
          Error(slot.pos, StrFormat("parameter '%s' re-declared twice",
                                    slot.name.c_str()));
          continue;
        }
        p = *op_pres->FindParam(slot.name);  // keep earlier (type) attrs
      } else if (flatten_arg_type != nullptr &&
                 FieldIndex(flatten_arg_type, slot.name) >= 0) {
        // (b) field of the single struct argument (Figure 1 flattening).
        int fi = FieldIndex(flatten_arg_type, slot.name);
        if (!bound_arg_fields.insert(fi).second) {
          Error(slot.pos, StrFormat("field '%s' re-declared twice",
                                    slot.name.c_str()));
          continue;
        }
        args_flattened = true;
        p = DefaultFieldPresentation(
            slot.name, flatten_arg_type->fields()[static_cast<size_t>(fi)].type,
            op.params[static_cast<size_t>(flatten_arg)].dir, side_,
            Binding{BindingKind::kParamField, flatten_arg, fi});
      } else if (result_struct != nullptr &&
                 FieldIndex(result_struct, slot.name) >= 0) {
        // (c) field of the result's success payload.
        int fi = FieldIndex(result_struct, slot.name);
        if (!bound_result_fields.insert(fi).second) {
          Error(slot.pos, StrFormat("field '%s' re-declared twice",
                                    slot.name.c_str()));
          continue;
        }
        result_flattened = true;
        p = DefaultFieldPresentation(
            slot.name, result_struct->fields()[static_cast<size_t>(fi)].type,
            ParamDir::kOut, side_,
            Binding{BindingKind::kResultField, -1, fi});
      } else if (result_is_union &&
                 !result_resolved->discriminant_name().empty() &&
                 slot.name == result_resolved->discriminant_name()) {
        // (d) the result union's discriminant (e.g. `nfsstat *status`).
        if (disc_bound) {
          Error(slot.pos, "discriminant re-declared twice");
          continue;
        }
        disc_bound = true;
        result_flattened = true;
        p = DefaultFieldPresentation(
            slot.name, result_resolved->discriminant(), ParamDir::kOut,
            side_, Binding{BindingKind::kResultDiscriminant, -1, -1});
      } else {
        // (e) presentation-only parameter (explicit length, etc.).
        p.name = slot.name;
        p.binding = Binding{BindingKind::kPresentationOnly, -1, -1};
        p.presentation_only = true;
      }
      p.declarator_text = slot.ctype_text;
      for (const PdlAttr& attr : slot.attrs) {
        ApplyParamAttr(attr, &p);
      }
      new_params.push_back(std::move(p));
    }

    // Unmentioned IDL parameters keep their current presentation.
    for (size_t i = 0; i < op.params.size(); ++i) {
      int idx = static_cast<int>(i);
      if (bound_params.count(idx) != 0) {
        continue;
      }
      if (args_flattened && idx == flatten_arg) {
        continue;  // replaced by its fields
      }
      new_params.push_back(*op_pres->FindParam(op.params[i].name));
    }
    // Unmentioned fields of a flattened argument are still wire items; give
    // them default per-field presentations so marshaling stays complete.
    if (args_flattened) {
      for (size_t fi = 0; fi < flatten_arg_type->fields().size(); ++fi) {
        if (bound_arg_fields.count(static_cast<int>(fi)) != 0) {
          continue;
        }
        const StructField& f = flatten_arg_type->fields()[fi];
        new_params.push_back(DefaultFieldPresentation(
            f.name, f.type, op.params[static_cast<size_t>(flatten_arg)].dir,
            side_,
            Binding{BindingKind::kParamField, flatten_arg,
                    static_cast<int>(fi)}));
      }
    }
    if (result_flattened) {
      if (result_struct != nullptr) {
        for (size_t fi = 0; fi < result_struct->fields().size(); ++fi) {
          if (bound_result_fields.count(static_cast<int>(fi)) != 0) {
            continue;
          }
          const StructField& f = result_struct->fields()[fi];
          new_params.push_back(DefaultFieldPresentation(
              f.name, f.type, ParamDir::kOut, side_,
              Binding{BindingKind::kResultField, -1, static_cast<int>(fi)}));
        }
      }
      if (result_is_union && !disc_bound) {
        std::string disc_name = result_resolved->discriminant_name().empty()
                                    ? "status"
                                    : result_resolved->discriminant_name();
        new_params.push_back(DefaultFieldPresentation(
            disc_name, result_resolved->discriminant(), ParamDir::kOut,
            side_, Binding{BindingKind::kResultDiscriminant, -1, -1}));
      }
      // The C return value no longer carries the wire result; drop any
      // attributes the old result presentation had.
      op_pres->result = ParamPresentation{};
      op_pres->result.name = "return";
      op_pres->result.binding =
          Binding{BindingKind::kPresentationOnly, -1, -1};
      op_pres->result.presentation_only = true;
    }

    op_pres->args_flattened = args_flattened;
    op_pres->result_flattened = result_flattened;
    op_pres->params = std::move(new_params);
  }

  static int FieldIndex(const Type* struct_type, const std::string& name) {
    const std::vector<StructField>& fields = struct_type->fields();
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void ApplyParamAttr(const PdlAttr& attr, ParamPresentation* p) {
    if (attr.name == "length_is") {
      if (attr.args.size() != 1) {
        Error(attr.pos, "length_is takes exactly one parameter name");
        return;
      }
      p->explicit_length = true;
      p->length_param = attr.args[0];
      return;
    }
    if (attr.name == "special") {
      p->special = true;
      return;
    }
    if (attr.name == "trashable") {
      p->trashable = true;
      return;
    }
    if (attr.name == "preserved") {
      p->preserved = true;
      return;
    }
    if (attr.name == "nonunique") {
      p->nonunique = true;
      return;
    }
    if (attr.name == "dealloc") {
      if (attr.args.size() != 1) {
        Error(attr.pos, "dealloc takes one of: never, always, default");
        return;
      }
      if (attr.args[0] == "never") {
        p->dealloc = DeallocPolicy::kNever;
      } else if (attr.args[0] == "always") {
        p->dealloc = DeallocPolicy::kAlways;
      } else if (attr.args[0] == "default") {
        p->dealloc = DeallocPolicy::kDefault;
      } else {
        Error(attr.pos, StrFormat("unknown dealloc policy '%s'",
                                  attr.args[0].c_str()));
      }
      return;
    }
    if (attr.name == "alloc") {
      if (attr.args.size() != 1) {
        Error(attr.pos, "alloc takes one of: user, stub, auto");
        return;
      }
      if (attr.args[0] == "user") {
        p->alloc = AllocPolicy::kUser;
      } else if (attr.args[0] == "stub") {
        p->alloc = AllocPolicy::kStub;
      } else if (attr.args[0] == "auto") {
        p->alloc = AllocPolicy::kAuto;
      } else {
        Error(attr.pos, StrFormat("unknown alloc policy '%s'",
                                  attr.args[0].c_str()));
      }
      return;
    }
    Error(attr.pos,
          StrFormat("unknown parameter attribute '%s'", attr.name.c_str()));
  }

  // --- final validation over every op presentation ---

  void Validate() {
    for (const InterfaceDecl& itf : idl_.interfaces) {
      auto it = out_->by_interface.find(itf.name);
      if (it == out_->by_interface.end()) {
        continue;
      }
      for (size_t oi = 0; oi < itf.ops.size(); ++oi) {
        ValidateOp(itf.ops[oi], it->second.ops[oi]);
      }
    }
  }

  void ValidateOp(const OperationDecl& op, const OpPresentation& pres) {
    SourcePos pos = op.pos;
    for (const ParamPresentation& p : pres.params) {
      ValidateParam(op, pres, p, pos);
    }
    ValidateParam(op, pres, pres.result, pos);
    ValidateCoverage(op, pres, pos);
  }

  void ValidateParam(const OperationDecl& op, const OpPresentation& pres,
                     const ParamPresentation& p, SourcePos pos) {
    const Type* type = BindingType(op, p.binding);
    if (p.presentation_only) {
      if (p.special || p.trashable || p.preserved || p.nonunique ||
          p.explicit_length || p.alloc != AllocPolicy::kAuto ||
          p.dealloc != DeallocPolicy::kDefault) {
        Error(pos,
              StrFormat("presentation-only parameter '%s' cannot carry "
                        "marshaling attributes",
                        p.name.c_str()));
      }
      return;
    }
    if (type == nullptr) {
      return;
    }
    ParamDir dir = BindingDir(op, p.binding);
    if (p.explicit_length) {
      const Type* r = type->Resolve();
      if (r->kind() != TypeKind::kString &&
          r->kind() != TypeKind::kSequence) {
        Error(pos, StrFormat("[length_is] on '%s' requires a string or "
                             "sequence type",
                             p.name.c_str()));
      }
      const ParamPresentation* len = pres.FindParam(p.length_param);
      if (len == nullptr) {
        Error(pos, StrFormat("[length_is(%s)] names no parameter of this "
                             "stub",
                             p.length_param.c_str()));
      } else if (!len->presentation_only) {
        const Type* lt = BindingType(op, len->binding);
        if (lt != nullptr && !IsIntegralScalar(lt)) {
          Error(pos, StrFormat("length parameter '%s' must be integral",
                               p.length_param.c_str()));
        }
      }
    }
    if (p.special && !IsBufferLike(type)) {
      Error(pos, StrFormat("[special] on '%s' requires a buffer-like type",
                           p.name.c_str()));
    }
    if (p.trashable) {
      if (side_ != Side::kClient) {
        Error(pos, "[trashable] is a client-side attribute");
      } else if (dir == ParamDir::kOut) {
        Error(pos, "[trashable] applies to in/inout parameters");
      } else if (!IsBufferLike(type)) {
        Error(pos, StrFormat("[trashable] on '%s' requires a buffer-like "
                             "type",
                             p.name.c_str()));
      }
    }
    if (p.preserved) {
      if (side_ != Side::kServer) {
        Error(pos, "[preserved] is a server-side attribute");
      } else if (dir == ParamDir::kOut) {
        Error(pos, "[preserved] applies to in/inout parameters");
      } else if (!IsBufferLike(type)) {
        Error(pos, StrFormat("[preserved] on '%s' requires a buffer-like "
                             "type",
                             p.name.c_str()));
      }
    }
    if (p.nonunique && type->Resolve()->kind() != TypeKind::kObjRef) {
      Error(pos, StrFormat("[nonunique] on '%s' requires an object "
                           "reference",
                           p.name.c_str()));
    }
    if (p.alloc != AllocPolicy::kAuto && dir == ParamDir::kIn) {
      Error(pos, StrFormat("[alloc] on '%s' applies to out/result data",
                           p.name.c_str()));
    }
    if (p.dealloc != DeallocPolicy::kDefault &&
        IsScalarKind(type->Resolve()->kind())) {
      Error(pos, StrFormat("[dealloc] on '%s' requires allocated (non-"
                           "scalar) data",
                           p.name.c_str()));
    }
  }

  // Every wire item (each IDL parameter; the result) must be carried by
  // exactly one stub-level binding.
  void ValidateCoverage(const OperationDecl& op, const OpPresentation& pres,
                        SourcePos pos) {
    std::vector<int> param_cover(op.params.size(), 0);
    int result_cover = 0;
    auto count = [&](const ParamPresentation& p) {
      switch (p.binding.kind) {
        case BindingKind::kParam:
          if (p.binding.param_index >= 0 &&
              p.binding.param_index < static_cast<int>(op.params.size())) {
            ++param_cover[static_cast<size_t>(p.binding.param_index)];
          }
          break;
        case BindingKind::kResult:
          ++result_cover;
          break;
        default:
          break;  // field bindings checked via flatten bookkeeping
      }
    };
    for (const ParamPresentation& p : pres.params) {
      count(p);
    }
    count(pres.result);

    int flatten_arg = FlattenableArgIndex(op);
    for (size_t i = 0; i < op.params.size(); ++i) {
      bool flattened_here = pres.args_flattened &&
                            static_cast<int>(i) == flatten_arg;
      if (flattened_here) {
        continue;  // covered by its field bindings
      }
      if (param_cover[i] != 1) {
        Error(pos, StrFormat("parameter '%s' of '%s' is carried by %d stub "
                             "parameters (need exactly 1)",
                             op.params[i].name.c_str(), op.name.c_str(),
                             param_cover[i]));
      }
    }
    bool result_void = op.result->Resolve()->kind() == TypeKind::kVoid;
    if (!result_void && !pres.result_flattened && result_cover != 1) {
      Error(pos, StrFormat("result of '%s' is carried by %d bindings (need "
                           "exactly 1)",
                           op.name.c_str(), result_cover));
    }
  }

  const InterfaceFile& idl_;
  Side side_;
  const PdlFile* pdl_;
  PresentationSet* out_;
  DiagnosticSink* diags_;
};

}  // namespace

bool ApplyPdl(const InterfaceFile& idl, Side side, const PdlFile* pdl,
              PresentationSet* out, DiagnosticSink* diags) {
  return Applier(idl, side, pdl, out, diags).Run();
}

bool ApplyPdlText(const InterfaceFile& idl, Side side,
                  std::string_view pdl_text, std::string pdl_filename,
                  PresentationSet* out, DiagnosticSink* diags) {
  auto pdl = ParsePdl(pdl_text, std::move(pdl_filename), diags);
  if (pdl == nullptr) {
    return false;
  }
  return ApplyPdl(idl, side, pdl.get(), out, diags);
}

namespace {

// Bounds-checked indexing: bindings may come from hand-built or corrupted
// presentations (flexcheck lints exactly those), so out-of-range indices
// must resolve to "no type" rather than UB.
const ParamDecl* BoundParam(const OperationDecl& op, const Binding& binding) {
  if (binding.param_index < 0 ||
      binding.param_index >= static_cast<int>(op.params.size())) {
    return nullptr;
  }
  return &op.params[static_cast<size_t>(binding.param_index)];
}

const Type* BoundField(const Type* aggregate, int field_index) {
  if (aggregate == nullptr) {
    return nullptr;
  }
  const Type* s = aggregate->Resolve();
  if (field_index < 0 ||
      field_index >= static_cast<int>(s->fields().size())) {
    return nullptr;
  }
  return s->fields()[static_cast<size_t>(field_index)].type;
}

}  // namespace

const Type* BindingType(const OperationDecl& op, const Binding& binding) {
  switch (binding.kind) {
    case BindingKind::kParam: {
      const ParamDecl* p = BoundParam(op, binding);
      return p == nullptr ? nullptr : p->type;
    }
    case BindingKind::kParamField: {
      const ParamDecl* p = BoundParam(op, binding);
      return BoundField(p == nullptr ? nullptr : p->type,
                        binding.field_index);
    }
    case BindingKind::kResult:
      return op.result;
    case BindingKind::kResultField:
      return BoundField(FlattenableResultStruct(op), binding.field_index);
    case BindingKind::kResultDiscriminant:
      return op.result->Resolve()->discriminant();
    case BindingKind::kPresentationOnly:
      return nullptr;
  }
  return nullptr;
}

ParamDir BindingDir(const OperationDecl& op, const Binding& binding) {
  switch (binding.kind) {
    case BindingKind::kParam:
    case BindingKind::kParamField: {
      const ParamDecl* p = BoundParam(op, binding);
      return p == nullptr ? ParamDir::kOut : p->dir;
    }
    default:
      return ParamDir::kOut;
  }
}

int FlattenableArgIndex(const OperationDecl& op) {
  int index = -1;
  for (size_t i = 0; i < op.params.size(); ++i) {
    if (op.params[i].dir == ParamDir::kOut) {
      continue;
    }
    if (index >= 0) {
      return -1;  // more than one input parameter
    }
    index = static_cast<int>(i);
  }
  if (index < 0) {
    return -1;
  }
  const Type* t = op.params[static_cast<size_t>(index)].type->Resolve();
  return t->kind() == TypeKind::kStruct ? index : -1;
}

const Type* FlattenableResultStruct(const OperationDecl& op) {
  const Type* r = op.result->Resolve();
  if (r->kind() == TypeKind::kStruct) {
    return r;
  }
  if (r->kind() == TypeKind::kUnion) {
    const Type* found = nullptr;
    for (const UnionArm& arm : r->arms()) {
      const Type* at = arm.type->Resolve();
      if (at->kind() == TypeKind::kVoid) {
        continue;
      }
      if (at->kind() != TypeKind::kStruct || found != nullptr) {
        return nullptr;  // not the single-success-arm shape
      }
      found = at;
    }
    return found;
  }
  return nullptr;
}

}  // namespace flexrpc
