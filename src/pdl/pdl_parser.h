// Presentation Definition Language (PDL) parser.
//
// The PDL re-declares stub prototypes in a C-like syntax with bracketed
// presentation attributes, closely following the paper's examples:
//
//   // Alternate string presentation (paper §1/§3):
//   SysLog_write_msg(,, char *[length_is(length)] msg, int length);
//
//   // Server keeps ownership of the returned buffer (paper Fig. 5):
//   FileIO_read(,,)[dealloc(never)];
//   void FileIO_write(char *[trashable] _buffer, unsigned long _length);
//
//   // Op-level attributes (paper Fig. 1):
//   [comm_status] int nfsproc_read(, nfs_fh *file, unsigned offset,
//       unsigned count, unsigned totalcount, [special] user_data *data,
//       fattr *attributes, nfsstat *status);
//
//   // Connection-level trust (paper §4.5):
//   interface FileIO [leaky, unprotected];
//
//   // Type-level attributes applied wherever the type appears:
//   type user_data [special];
//
// Parameter slots are matched to IDL parameters *by name*; empty slots
// (`,,`) are placeholders that keep the default presentation, which is how
// the paper's examples skip the implicit object/exception parameters. A
// named slot that matches no IDL parameter declares a presentation-only
// parameter (e.g. an explicit `int length`), legal only when another slot
// references it via [length_is(...)] or when it redeclares an implicit
// parameter for cosmetic reasons.
//
// This stage is purely syntactic; ApplyPdl (apply.h) resolves names against
// an InterfaceFile and validates attribute placement.

#ifndef FLEXRPC_SRC_PDL_PDL_PARSER_H_
#define FLEXRPC_SRC_PDL_PDL_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/diag.h"

namespace flexrpc {

struct PdlAttr {
  std::string name;
  std::vector<std::string> args;
  SourcePos pos;
};

// One parameter slot of an op re-declaration.
struct PdlSlot {
  bool empty = false;        // `,,` placeholder
  std::string ctype_text;    // cosmetic C type tokens, e.g. "char *"
  std::string name;          // declarator name; "" for placeholders
  std::vector<PdlAttr> attrs;
  SourcePos pos;
};

struct PdlOpDecl {
  std::vector<PdlAttr> op_attrs;   // leading [,...] before the return type
  std::string return_ctype;        // cosmetic, e.g. "int"
  std::vector<PdlAttr> return_attrs;  // [,...] after the parameter list
  std::string func_name;           // e.g. "SysLog_write_msg"
  std::vector<PdlSlot> slots;
  SourcePos pos;
};

struct PdlInterfaceDecl {
  std::string interface_name;
  std::vector<PdlAttr> attrs;
  SourcePos pos;
};

struct PdlTypeDecl {
  std::string type_name;
  std::vector<PdlAttr> attrs;
  SourcePos pos;
};

struct PdlFile {
  std::string filename;
  std::vector<PdlInterfaceDecl> interfaces;
  std::vector<PdlTypeDecl> types;
  std::vector<PdlOpDecl> ops;
};

// Parses PDL text. Returns null (with diagnostics) on error.
std::unique_ptr<PdlFile> ParsePdl(std::string_view source,
                                  std::string filename,
                                  DiagnosticSink* diags);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_PDL_PDL_PARSER_H_
