// The Linux NFS client experiment (paper §4.1 / Figures 1 and 2).
//
// An in-kernel NFS client reads a large file from a remote file server over
// Sun RPC/XDR. The read data's final destination is a *user-space* buffer;
// the question Figure 2 asks is whether the stub unmarshals into an
// intermediate kernel buffer first (conventional presentation: one extra
// copy via copy_to_user) or directly into the user buffer through the
// kernel's special copy routines ([special] presentation, Figure 1's PDL).
// Both a hand-coded stub and the compiler-generated stub are provided for
// each presentation, reproducing the paper's finding that generated stubs
// match hand-coded ones.

#ifndef FLEXRPC_SRC_APPS_NFS_H_
#define FLEXRPC_SRC_APPS_NFS_H_

#include <memory>
#include <vector>

#include "src/idl/ast.h"
#include "src/marshal/engine.h"
#include "src/marshal/xdr.h"
#include "src/net/link.h"
#include "src/osim/address_space.h"
#include "src/pdl/apply.h"
#include "src/rpc/binder.h"
#include "src/rpc/pipeline.h"
#include "src/rpc/retry.h"
#include "src/support/timing.h"

namespace flexrpc {

// The NFSv2 subset in Sun RPC language (readargs/readres as in the paper).
const char* NfsIdlText();
// The paper's Figure 1 PDL: flattened stub with [comm_status] and a
// [special] user-space data buffer.
const char* NfsClientPdlText();

inline constexpr uint32_t kNfsProgram = 100003;
inline constexpr uint32_t kNfsVersion = 2;
inline constexpr uint32_t kNfsProcRead = 6;
inline constexpr size_t kNfsMaxData = 8192;
inline constexpr size_t kNfsFhSize = 32;

// The remote file server: owns the file bytes, decodes read calls, encodes
// replies. Its CPU time is charged to the virtual clock via
// RemoteServerModel (the encode work it performs on the host is excluded
// from client-side measurements by construction of the benchmark loop).
class NfsFileServer {
 public:
  NfsFileServer(size_t file_size, uint64_t seed);

  // Handles one Sun RPC datagram; appends the reply datagram to `reply`.
  Status Handle(ByteSpan request, XdrWriter* reply);

  size_t file_size() const { return content_.size(); }
  const uint8_t* content() const { return content_.data(); }

  // Adapts Handle to the RetryingTransport's datagram interface. The
  // returned handler counts nothing itself — wrap it when a test needs
  // per-xid execution counts.
  static DatagramHandler MakeHandler(NfsFileServer* server);

 private:
  std::vector<uint8_t> content_;
};

// One NFS read experiment configuration.
class NfsClient {
 public:
  enum class StubKind {
    kGeneratedConventional,  // compiler stubs, default presentation
    kGeneratedUserBuffer,    // compiler stubs, Figure 1 [special] PDL
    kHandConventional,       // hand-written stubs, intermediate buffer
    kHandUserBuffer,         // hand-written stubs, copyout into user space
  };

  NfsClient(NfsFileServer* server, LinkModel link, RemoteServerModel remote);
  ~NfsClient();

  struct ReadStats {
    uint64_t bytes_read = 0;
    double client_seconds = 0;          // measured: marshaling + copies
    double network_server_seconds = 0;  // modeled: wire + remote server
    uint64_t rpc_calls = 0;
    // Lossy-path accounting (zero over the perfect wire).
    uint64_t retransmits = 0;
    uint64_t dup_cache_hits = 0;
    uint64_t server_executions = 0;
  };

  // Reads the whole file in `chunk_bytes` chunks (clamped to kNfsMaxData)
  // into a user-space buffer, then verifies the bytes against the server's
  // content. Small chunks make the per-call marshal overhead dominate —
  // the regime where specialized marshal code shows up most clearly.
  Result<ReadStats> ReadFile(StubKind kind,
                             size_t chunk_bytes = kNfsMaxData);

  // Same read, but every RPC travels as a SunRPC datagram through `rpc`'s
  // lossy DatagramChannel with at-most-once retry semantics. The transport
  // must be wired to this client's server (NfsFileServer::MakeHandler or a
  // counting wrapper around it); its virtual clock replaces the
  // network+server model of the perfect-wire path. Degrades to
  // kUnavailable / kDeadlineExceeded / kDataLoss exactly as
  // RetryingTransport::Call does — never a hang, never a double read.
  Result<ReadStats> ReadFileLossy(StubKind kind, RetryingTransport* rpc);

  // The same read again, but with all chunks submitted up front to a
  // sliding-window PipelinedTransport: up to `window` READs are in flight
  // concurrently, replies may land out of order, and each one is decoded
  // into its own disjoint region of the user buffer as it arrives. The
  // delivered bytes are verified identical to the serial paths.
  // `chunk_bytes` (clamped to kNfsMaxData) sets the per-call payload —
  // small chunks make the workload latency-bound, where the window helps
  // most; the default reproduces the serial call mix. Same degradation
  // contract as ReadFileLossy.
  Result<ReadStats> ReadFilePipelined(StubKind kind, PipelinedTransport* rpc,
                                      size_t chunk_bytes = kNfsMaxData);

  // The pipelined read over a *managed* binding: chunks are submitted to a
  // BinderTransport fronting a replica group, so the read survives replica
  // death mid-transfer — in-flight chunks migrate to a healthy replica and
  // the delivered bytes still verify against the source file. Transport-
  // level stats (retransmits, dup-cache activity) are summed across the
  // group's replicas. Same degradation contract as ReadFilePipelined.
  Result<ReadStats> ReadFileManaged(StubKind kind, BinderTransport* rpc,
                                    size_t chunk_bytes = kNfsMaxData);

  AddressSpace* user_space() { return user_space_.get(); }
  AddressSpace* kernel_space() { return kernel_space_.get(); }

  // One read chunk's parameters (public for white-box tests).
  struct ChunkArgs {
    const uint8_t* fh;
    uint32_t offset;
    uint32_t count;
    uint8_t* user_dest;  // where the data must end up
  };

  // One NFSPROC_READ through the selected stub: appends the request body
  // to `w`; decodes the reply body from `r`. Returns bytes delivered.
  Result<uint32_t> EncodeRequest(StubKind kind, const ChunkArgs& chunk,
                                 XdrWriter* w);
  Result<uint32_t> DecodeReply(StubKind kind, const ChunkArgs& chunk,
                               XdrReader* r);

 private:
  NfsFileServer* server_;
  LinkModel link_;
  RemoteServerModel remote_;
  std::unique_ptr<AddressSpace> kernel_space_;
  std::unique_ptr<AddressSpace> user_space_;

  std::unique_ptr<InterfaceFile> idl_;
  PresentationSet default_pres_;
  PresentationSet special_pres_;
  std::unique_ptr<MarshalProgram> prog_default_;
  std::unique_ptr<MarshalProgram> prog_special_;
  void* attr_storage_ = nullptr;  // kernel-resident fattr, reused per call
  uint32_t next_xid_ = 1;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_APPS_NFS_H_
