// The pipe server (paper §4.2): Unix pipe semantics — bounded buffering,
// flow control, FIFO byte delivery — provided by a separate task over
// synchronous RPC. "Representative of a common model of communication: an
// intermediate entity that performs a data transformation between two
// parties."
//
// The interface (pipe.idl, a superset of the paper's Figure 3 that makes
// flow control explicit):
//
//   interface FileIO {
//     sequence<octet> read(in unsigned long count);
//     unsigned long write(in sequence<octet> data);   // returns #accepted
//   };
//
// Server read-path presentations (the Figure 6 comparison):
//   * kDefault    — standard CORBA move semantics: the work function
//     allocates a fresh buffer, copies the bytes out of the circular
//     buffer into it, and the stub frees it after marshaling.
//   * kZeroCopy   — [dealloc(never)]: the work function returns a pointer
//     directly into the circular buffer; nothing is allocated, copied, or
//     freed in the server. Reads that would wrap the circular buffer are
//     returned short (the paper likewise leaves the wrap case unoptimized).

#ifndef FLEXRPC_SRC_APPS_PIPE_H_
#define FLEXRPC_SRC_APPS_PIPE_H_

#include <memory>

#include "src/fbuf/channel.h"
#include "src/idl/ast.h"
#include "src/pdl/apply.h"
#include "src/rpc/runtime.h"

namespace flexrpc {

// The pipe state machine: a circular byte buffer with explicit flow
// control. Pure logic; transport-independent.
class PipeBuffer {
 public:
  PipeBuffer(Arena* arena, size_t capacity);

  size_t capacity() const { return capacity_; }
  size_t available() const { return size_; }
  size_t space() const { return capacity_ - size_; }

  // Copies up to `len` bytes in; returns the number accepted (flow
  // control: 0 when full).
  size_t Write(const uint8_t* data, size_t len);

  // Copies up to `len` buffered bytes out; returns the number delivered.
  size_t Read(uint8_t* dst, size_t len);

  // Zero-copy read: a contiguous view of up to `len` readable bytes
  // (short at the wrap point). The view stays valid until Consume.
  std::pair<const uint8_t*, size_t> Peek(size_t len) const;
  void Consume(size_t len);

 private:
  uint8_t* data_;
  size_t capacity_;
  size_t head_ = 0;  // read position
  size_t size_ = 0;  // bytes buffered
};

// Returns the pipe-server IDL text (shared by apps, tests, and examples).
const char* PipeIdlText();

// The pipe server bound to the fast-path transport.
class PipeServerApp {
 public:
  enum class ReadPresentation { kDefault, kZeroCopy };

  // `idl` must contain the FileIO interface (use PipeIdlText()).
  // The returned object serves on `port()` once exported.
  PipeServerApp(Kernel* kernel, FastPath* transport,
                const InterfaceFile& idl, ReadPresentation read_pres,
                size_t pipe_capacity);

  Port* port() { return port_; }
  Task* task() { return task_; }
  const ServerObject& server() const { return *server_; }
  const InterfaceFile& idl() const { return *idl_; }

  // Copies performed by the server application + stub on the read path
  // (Figure 6's measured difference).
  uint64_t read_copies() const { return read_copies_; }

 private:
  void ApplyPendingConsume();

  const InterfaceFile* idl_;
  Task* task_;
  PresentationSet presentation_;
  std::unique_ptr<ServerObject> server_;
  std::unique_ptr<PipeBuffer> pipe_;
  Port* port_ = nullptr;
  ReadPresentation read_pres_;
  size_t pending_consume_ = 0;
  uint64_t read_copies_ = 0;
};

// The pipe server over an fbuf data path (paper §4.3 / Figure 7).
class PipeServerFbuf {
 public:
  enum class Presentation {
    kStandard,  // stubs copy data between fbufs and private buffers
    kSpecial,   // [special]: data stays in fbufs along the whole path
  };

  PipeServerFbuf(FbufChannel* channel, Presentation pres,
                 Arena* server_arena, size_t pipe_capacity);

  static constexpr uint32_t kOpWrite = 1;
  static constexpr uint32_t kOpRead = 2;

  uint64_t server_copies() const { return server_copies_; }

 private:
  Status Handle(uint32_t opnum, FbufAggregate* request,
                FbufAggregate* reply);
  Status HandleWrite(FbufAggregate* request, FbufAggregate* reply);
  Status HandleRead(FbufAggregate* request, FbufAggregate* reply);

  FbufChannel* channel_;
  Presentation pres_;
  Arena* arena_;
  // kStandard: bytes live in the circular buffer.
  std::unique_ptr<PipeBuffer> pipe_;
  // kSpecial: bytes stay in fbufs, queued as one aggregate.
  FbufAggregate queue_;
  size_t capacity_;
  uint64_t server_copies_ = 0;
};

// Client helpers for the fbuf pipe (standard presentation: one copy at
// each endpoint to get data into/out of the fbufs).
Status FbufPipeWrite(FbufChannel* channel, const uint8_t* data, size_t len,
                     size_t* accepted);
Status FbufPipeRead(FbufChannel* channel, uint8_t* dst, size_t len,
                    size_t* delivered);

// Reference point for Figure 7: a monolithic-kernel pipe (4.3BSD-like) in
// which writer and reader trap into the same kernel and the pipe buffer
// lives in kernel space: exactly one copyin and one copyout per byte.
class MonolithicPipe {
 public:
  MonolithicPipe(Kernel* kernel, Arena* kernel_space, size_t capacity);

  size_t Write(AddressSpace* writer_space, const uint8_t* user_data,
               size_t len);
  size_t Read(AddressSpace* reader_space, uint8_t* user_dst, size_t len);

 private:
  Kernel* kernel_;
  PipeBuffer pipe_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_APPS_PIPE_H_
