#include "src/apps/nfs.h"

#include <cstring>

#include "nfs.flexspec.h"  // generated: idlc --specialize over examples/idl
#include "src/idl/sema.h"
#include "src/idl/sunrpc_parser.h"
#include "src/marshal/layout.h"
#include "src/marshal/xdr.h"
#include "src/net/sunrpc.h"
#include "src/support/recorder.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace flexrpc {

const char* NfsIdlText() {
  return R"(
const NFS_MAXDATA = 8192;
const NFS_FHSIZE = 32;

enum nfsstat {
  NFS_OK = 0,
  NFSERR_PERM = 1,
  NFSERR_NOENT = 2,
  NFSERR_IO = 5,
  NFSERR_STALE = 70
};

struct nfs_fh {
  opaque data[NFS_FHSIZE];
};

struct fattr {
  unsigned type;
  unsigned mode;
  unsigned nlink;
  unsigned uid;
  unsigned gid;
  unsigned size;
  unsigned blocksize;
  unsigned rdev;
  unsigned blocks;
  unsigned fsid;
  unsigned fileid;
  unsigned atime;
  unsigned mtime;
  unsigned ctime;
};

struct readargs {
  nfs_fh file;
  unsigned offset;
  unsigned count;
  unsigned totalcount;
};

struct readokres {
  fattr attributes;
  opaque data<NFS_MAXDATA>;
};

union readres switch (nfsstat status) {
  case NFS_OK:
    readokres reply;
  default:
    void;
};

program NFS_PROGRAM {
  version NFS_VERSION {
    readres NFSPROC_READ(readargs) = 6;
  } = 2;
} = 100003;
)";
}

const char* NfsClientPdlText() {
  // Figure 1 of the paper, adapted to this PDL's resolved names.
  return R"(
    [comm_status] int NFSPROC_READ(nfs_fh *file,
        unsigned offset, unsigned count, unsigned totalcount,
        [special] user_data *data, fattr *attributes, nfsstat *status);
  )";
}

namespace {

constexpr uint32_t kFattrFieldCount = 14;

// Native layout of readargs (checked against the type table in the ctor).
struct NativeReadArgs {
  uint8_t fh[kNfsFhSize];
  uint32_t offset;
  uint32_t count;
  uint32_t totalcount;
};
static_assert(sizeof(NativeReadArgs) == 44);

}  // namespace

NfsFileServer::NfsFileServer(size_t file_size, uint64_t seed) {
  content_.resize(file_size);
  Rng rng(seed);
  for (size_t i = 0; i < file_size; i += 8) {
    uint64_t word = rng.NextU64();
    size_t n = file_size - i < 8 ? file_size - i : 8;
    std::memcpy(content_.data() + i, &word, n);
  }
}

Status NfsFileServer::Handle(ByteSpan request, XdrWriter* reply) {
  XdrReader r(request);
  FLEXRPC_ASSIGN_OR_RETURN(SunRpcCall call, DecodeSunRpcCall(&r));
  if (call.program != kNfsProgram || call.version != kNfsVersion) {
    return NotFoundError("not an NFSv2 call");
  }
  if (call.procedure != kNfsProcRead) {
    return UnimplementedError(
        StrFormat("NFS procedure %u not implemented", call.procedure));
  }
  // readargs
  FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* fh, r.GetBytes(kNfsFhSize));
  (void)fh;
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t offset, r.GetU32());
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t totalcount, r.GetU32());
  (void)totalcount;

  EncodeSunRpcReplySuccess(reply, call.xid);
  if (offset >= content_.size()) {
    reply->PutU32(5);  // NFSERR_IO: the paper's workload never reads past EOF
    return Status::Ok();
  }
  uint32_t n = count;
  if (n > kNfsMaxData) {
    n = kNfsMaxData;
  }
  if (offset + n > content_.size()) {
    n = static_cast<uint32_t>(content_.size() - offset);
  }
  reply->PutU32(0);  // NFS_OK
  // fattr
  uint32_t now = 0x5F000000;
  uint32_t fattr[kFattrFieldCount] = {
      /*type=*/1,     /*mode=*/0644, /*nlink=*/1,
      /*uid=*/0,      /*gid=*/0,
      /*size=*/static_cast<uint32_t>(content_.size()),
      /*blocksize=*/8192,
      /*rdev=*/0,
      /*blocks=*/static_cast<uint32_t>((content_.size() + 511) / 512),
      /*fsid=*/7,     /*fileid=*/42, /*atime=*/now,
      /*mtime=*/now,  /*ctime=*/now};
  for (uint32_t field : fattr) {
    reply->PutU32(field);
  }
  // data<>
  reply->PutU32(n);
  reply->PutBytes(content_.data() + offset, n);
  return Status::Ok();
}

DatagramHandler NfsFileServer::MakeHandler(NfsFileServer* server) {
  return [server](ByteSpan request, std::vector<uint8_t>* reply) {
    XdrWriter w;
    FLEXRPC_RETURN_IF_ERROR(server->Handle(request, &w));
    reply->assign(w.span().begin(), w.span().end());
    return Status::Ok();
  };
}

NfsClient::NfsClient(NfsFileServer* server, LinkModel link,
                     RemoteServerModel remote)
    : server_(server), link_(link), remote_(remote) {
  kernel_space_ = std::make_unique<AddressSpace>("nfs-kernel");
  user_space_ = std::make_unique<AddressSpace>("nfs-user");

  DiagnosticSink diags;
  idl_ = ParseSunRpc(NfsIdlText(), "nfs.x", &diags);
  if (idl_ == nullptr || !AnalyzeInterfaceFile(idl_.get(), &diags)) {
    std::fprintf(stderr, "NFS IDL failed to compile:\n%s",
                 diags.ToString().c_str());
    std::abort();
  }
  if (!ApplyPdl(*idl_, Side::kClient, nullptr, &default_pres_, &diags) ||
      !ApplyPdlText(*idl_, Side::kClient, NfsClientPdlText(), "nfs.pdl",
                    &special_pres_, &diags)) {
    std::fprintf(stderr, "NFS PDL failed to apply:\n%s",
                 diags.ToString().c_str());
    std::abort();
  }
  // Install the build-time specializations before compiling the programs:
  // MarshalProgram::Build resolves its SpecKey against the registry once,
  // at bind time. The explicit call also keeps the generated object out of
  // the archive linker's dead-object elision.
  flexspec_nfs::RegisterSpecializations();
  const InterfaceDecl* itf = idl_->FindInterface("NFS_VERSION");
  const OperationDecl* op = itf->FindOp("NFSPROC_READ");
  prog_default_ = std::make_unique<MarshalProgram>(MarshalProgram::Build(
      *op, *default_pres_.Find("NFS_VERSION")->FindOp("NFSPROC_READ")));
  prog_special_ = std::make_unique<MarshalProgram>(MarshalProgram::Build(
      *op, *special_pres_.Find("NFS_VERSION")->FindOp("NFSPROC_READ")));
  attr_storage_ = kernel_space_->arena().AllocateBlock(
      idl_->types.FindNamed("fattr")->NativeSize());
}

NfsClient::~NfsClient() = default;

Result<uint32_t> NfsClient::EncodeRequest(StubKind kind,
                                          const ChunkArgs& chunk,
                                          XdrWriter* w) {
  switch (kind) {
    case StubKind::kGeneratedConventional: {
      NativeReadArgs native;
      std::memcpy(native.fh, chunk.fh, kNfsFhSize);
      native.offset = chunk.offset;
      native.count = chunk.count;
      native.totalcount = chunk.count;
      ArgVec args(prog_default_->slot_count());
      args[0].set_ptr(&native);
      FLEXRPC_RETURN_IF_ERROR(prog_default_->MarshalRequest(args, w));
      return 0u;
    }
    case StubKind::kGeneratedUserBuffer: {
      ArgVec args(prog_special_->slot_count());
      args[prog_special_->SlotOf("file")].set_ptr(chunk.fh);
      args[prog_special_->SlotOf("offset")].scalar = chunk.offset;
      args[prog_special_->SlotOf("count")].scalar = chunk.count;
      args[prog_special_->SlotOf("totalcount")].scalar = chunk.count;
      FLEXRPC_RETURN_IF_ERROR(prog_special_->MarshalRequest(args, w));
      return 0u;
    }
    case StubKind::kHandConventional:
    case StubKind::kHandUserBuffer: {
      // The hand-coded stub: identical wire bytes, written out longhand.
      w->PutBytes(chunk.fh, kNfsFhSize);
      w->PutU32(chunk.offset);
      w->PutU32(chunk.count);
      w->PutU32(chunk.count);
      return 0u;
    }
  }
  return InternalError("unknown stub kind");
}

Result<uint32_t> NfsClient::DecodeReply(StubKind kind,
                                        const ChunkArgs& chunk,
                                        XdrReader* r) {
  Arena* karena = &kernel_space_->arena();
  switch (kind) {
    case StubKind::kGeneratedConventional: {
      // The stub unmarshals the readres union into kernel memory...
      ArgVec args(prog_default_->slot_count());
      FLEXRPC_RETURN_IF_ERROR(
          prog_default_->UnmarshalReply(r, karena, &args));
      auto* readres = static_cast<uint8_t*>(
          args[prog_default_->result_slot()].ptr());
      uint32_t status;
      std::memcpy(&status, readres, sizeof(status));
      uint32_t delivered = 0;
      if (status == 0) {
        const Type* readres_t = idl_->types.FindNamed("readres")->Resolve();
        const Type* okres_t = idl_->types.FindNamed("readokres");
        const uint8_t* okres = readres + UnionPayloadOffset(readres_t);
        SeqRep data;
        std::memcpy(&data, okres + NativeFieldOffset(okres_t, 1),
                    sizeof(data));
        // ...and the NFS client must copy it out to user space: the extra
        // copy the [special] presentation eliminates.
        FLEXRPC_RETURN_IF_ERROR(CopyToUser(user_space_.get(),
                                           chunk.user_dest, data.buffer,
                                           data.length));
        delivered = data.length;
      }
      prog_default_->ReleaseReply(karena, &args);
      if (status != 0) {
        return DataLossError(StrFormat("NFS error %u", status));
      }
      return delivered;
    }
    case StubKind::kGeneratedUserBuffer: {
      // Figure 1's stub: [special] routines unmarshal straight into the
      // user buffer via the kernel's copyout.
      SpecialOps special;
      AddressSpace* user = user_space_.get();
      special.copy_in = [user](void* dst, const uint8_t* src, size_t n) {
        Status st = CopyToUser(user, dst, src, n);
        if (!st.ok()) {
          std::abort();  // simulation misconfiguration
        }
      };
      ArgVec args(prog_special_->slot_count());
      int data_slot = prog_special_->SlotOf("data");
      args[data_slot].set_ptr(chunk.user_dest);
      args[data_slot].capacity = chunk.count;
      // fattr lands in a kernel-resident struct, as in the original stub.
      args[prog_special_->SlotOf("attributes")].set_ptr(attr_storage_);
      Status st =
          prog_special_->UnmarshalReply(r, karena, &args, &special);
      uint32_t status = static_cast<uint32_t>(
          args[prog_special_->SlotOf("status")].scalar);
      uint32_t delivered = args[data_slot].length;
      FLEXRPC_RETURN_IF_ERROR(st);
      if (status != 0) {
        return DataLossError(StrFormat("NFS error %u", status));
      }
      return delivered;
    }
    case StubKind::kHandConventional: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t status, r->GetU32());
      if (status != 0) {
        return DataLossError(StrFormat("NFS error %u", status));
      }
      uint32_t fattr[kFattrFieldCount];
      for (uint32_t& field : fattr) {
        FLEXRPC_ASSIGN_OR_RETURN(field, r->GetU32());
      }
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
      FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes, r->GetBytes(len));
      // Intermediate kernel buffer, then copyout: two copies.
      void* staging = karena->AllocateBlock(len > 0 ? len : 1);
      std::memcpy(staging, bytes, len);
      Status st =
          CopyToUser(user_space_.get(), chunk.user_dest, staging, len);
      karena->FreeBlock(staging);
      FLEXRPC_RETURN_IF_ERROR(st);
      return len;
    }
    case StubKind::kHandUserBuffer: {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t status, r->GetU32());
      if (status != 0) {
        return DataLossError(StrFormat("NFS error %u", status));
      }
      uint32_t fattr[kFattrFieldCount];
      for (uint32_t& field : fattr) {
        FLEXRPC_ASSIGN_OR_RETURN(field, r->GetU32());
      }
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t len, r->GetU32());
      FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* bytes, r->GetBytes(len));
      // Straight from the network buffer to user space: one copy.
      FLEXRPC_RETURN_IF_ERROR(
          CopyToUser(user_space_.get(), chunk.user_dest, bytes, len));
      return len;
    }
  }
  return InternalError("unknown stub kind");
}

Result<NfsClient::ReadStats> NfsClient::ReadFile(StubKind kind,
                                                 size_t chunk_bytes) {
  ReadStats stats;
  VirtualClock vclock;
  if (chunk_bytes == 0 || chunk_bytes > kNfsMaxData) {
    chunk_bytes = kNfsMaxData;
  }
  size_t file_size = server_->file_size();
  auto* user_buffer =
      static_cast<uint8_t*>(user_space_->Allocate(file_size));
  uint8_t fh[kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));

  double client_seconds = 0;
  for (size_t offset = 0; offset < file_size; offset += chunk_bytes) {
    uint32_t count = static_cast<uint32_t>(
        file_size - offset < chunk_bytes ? file_size - offset
                                         : chunk_bytes);
    ChunkArgs chunk{fh, static_cast<uint32_t>(offset), count,
                    user_buffer + offset};
    uint32_t xid = next_xid_++;
    // Attribute this chunk's marshal work to its xid (flight recorder).
    RecorderCallScope rec_scope(xid, &vclock);

    // --- client-side marshal (measured) ---
    XdrWriter request;
    Stopwatch encode_timer;
    EncodeSunRpcCall(&request,
                     SunRpcCall{xid, kNfsProgram, kNfsVersion,
                                kNfsProcRead});
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t unused,
                             EncodeRequest(kind, chunk, &request));
    (void)unused;
    client_seconds += encode_timer.ElapsedSeconds();

    // --- network + remote server (modeled) ---
    link_.Transfer(request.size(), &vclock);
    remote_.Process(count, &vclock);
    XdrWriter reply;
    FLEXRPC_RETURN_IF_ERROR(server_->Handle(request.span(), &reply));
    link_.Transfer(reply.size(), &vclock);

    // --- client-side unmarshal + delivery (measured) ---
    Stopwatch decode_timer;
    XdrReader reader(reply.span());
    FLEXRPC_RETURN_IF_ERROR(DecodeSunRpcReplySuccess(&reader, xid));
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t delivered,
                             DecodeReply(kind, chunk, &reader));
    client_seconds += decode_timer.ElapsedSeconds();

    if (delivered != count) {
      return DataLossError(
          StrFormat("short read: wanted %u, got %u", count, delivered));
    }
    stats.bytes_read += delivered;
    ++stats.rpc_calls;
  }

  // Verification (not timed): the user buffer must hold the file bytes.
  if (std::memcmp(user_buffer, server_->content(), file_size) != 0) {
    return DataLossError("file contents corrupted in transit");
  }
  user_space_->Free(user_buffer);
  stats.client_seconds = client_seconds;
  stats.network_server_seconds = vclock.now_seconds();
  return stats;
}

Result<NfsClient::ReadStats> NfsClient::ReadFileLossy(
    StubKind kind, RetryingTransport* rpc) {
  ReadStats stats;
  const uint64_t clock_start = rpc->clock()->now_nanos();
  const RetryingTransport::Stats rpc_start = rpc->stats();
  size_t file_size = server_->file_size();
  auto* user_buffer =
      static_cast<uint8_t*>(user_space_->Allocate(file_size));
  uint8_t fh[kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));

  double client_seconds = 0;
  for (size_t offset = 0; offset < file_size; offset += kNfsMaxData) {
    uint32_t count = static_cast<uint32_t>(
        file_size - offset < kNfsMaxData ? file_size - offset
                                         : kNfsMaxData);
    ChunkArgs chunk{fh, static_cast<uint32_t>(offset), count,
                    user_buffer + offset};
    uint32_t xid = next_xid_++;
    // Attribute this chunk's marshal work to its xid: the encode records
    // at submission time, the decode after the transport advanced the
    // clock to the reply's arrival.
    RecorderCallScope rec_scope(xid, rpc->clock());

    // --- client-side marshal (measured) ---
    XdrWriter request;
    Stopwatch encode_timer;
    EncodeSunRpcCall(&request,
                     SunRpcCall{xid, kNfsProgram, kNfsVersion,
                                kNfsProcRead});
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t unused,
                             EncodeRequest(kind, chunk, &request));
    (void)unused;
    client_seconds += encode_timer.ElapsedSeconds();

    // --- the lossy wire: retransmits, backoff, dedup (modeled time) ---
    std::vector<uint8_t> reply;
    FLEXRPC_RETURN_IF_ERROR(rpc->Call(xid, request.span(), &reply));

    // --- client-side unmarshal + delivery (measured) ---
    Stopwatch decode_timer;
    XdrReader reader(ByteSpan(reply.data(), reply.size()));
    FLEXRPC_RETURN_IF_ERROR(DecodeSunRpcReplySuccess(&reader, xid));
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t delivered,
                             DecodeReply(kind, chunk, &reader));
    client_seconds += decode_timer.ElapsedSeconds();

    if (delivered != count) {
      return DataLossError(
          StrFormat("short read: wanted %u, got %u", count, delivered));
    }
    stats.bytes_read += delivered;
    ++stats.rpc_calls;
  }

  // Verification (not timed): faults must never corrupt delivered data.
  if (std::memcmp(user_buffer, server_->content(), file_size) != 0) {
    return DataLossError("file contents corrupted in transit");
  }
  user_space_->Free(user_buffer);
  stats.client_seconds = client_seconds;
  stats.network_server_seconds = static_cast<double>(
      rpc->clock()->now_nanos() - clock_start) * 1e-9;
  const RetryingTransport::Stats& rpc_end = rpc->stats();
  stats.retransmits = rpc_end.retransmits - rpc_start.retransmits;
  stats.dup_cache_hits = rpc_end.dup_cache_hits - rpc_start.dup_cache_hits;
  stats.server_executions =
      rpc_end.dup_cache_misses - rpc_start.dup_cache_misses;
  return stats;
}

Result<NfsClient::ReadStats> NfsClient::ReadFilePipelined(
    StubKind kind, PipelinedTransport* rpc, size_t chunk_bytes) {
  ReadStats stats;
  if (chunk_bytes == 0 || chunk_bytes > kNfsMaxData) {
    chunk_bytes = kNfsMaxData;
  }
  const uint64_t clock_start = rpc->clock()->now_nanos();
  const PipelinedTransport::Stats rpc_start = rpc->stats();
  size_t file_size = server_->file_size();
  auto* user_buffer =
      static_cast<uint8_t*>(user_space_->Allocate(file_size));
  uint8_t fh[kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));

  double client_seconds = 0;
  Status first_error = Status::Ok();
  // Submit every chunk; the window admits the first `window` immediately
  // and each completion decodes into its own disjoint buffer region, so
  // out-of-order replies cannot interfere with each other.
  for (size_t offset = 0; offset < file_size; offset += chunk_bytes) {
    uint32_t count = static_cast<uint32_t>(
        file_size - offset < chunk_bytes ? file_size - offset
                                         : chunk_bytes);
    ChunkArgs chunk{fh, static_cast<uint32_t>(offset), count,
                    user_buffer + offset};
    uint32_t xid = next_xid_++;

    // --- client-side marshal (measured) ---
    XdrWriter request;
    Stopwatch encode_timer;
    EncodeSunRpcCall(&request,
                     SunRpcCall{xid, kNfsProgram, kNfsVersion,
                                kNfsProcRead});
    {
      // Attribute the encode to its xid (flight recorder).
      RecorderCallScope rec_scope(xid, rpc->clock());
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t unused,
                               EncodeRequest(kind, chunk, &request));
      (void)unused;
    }
    client_seconds += encode_timer.ElapsedSeconds();

    rpc->Submit(xid, request.span(),
                [this, kind, xid, chunk, rpc, &stats, &client_seconds,
                 &first_error](Status st, std::vector<uint8_t> reply) {
                  if (!st.ok()) {
                    if (first_error.ok()) {
                      first_error = std::move(st);
                    }
                    return;
                  }
                  // The decode runs at completion time, deep inside
                  // Drive(); the scope re-attributes it to this xid.
                  RecorderCallScope rec_scope(xid, rpc->clock());
                  // --- client-side unmarshal + delivery (measured) ---
                  Stopwatch decode_timer;
                  XdrReader reader(ByteSpan(reply.data(), reply.size()));
                  Status hdr = DecodeSunRpcReplySuccess(&reader, xid);
                  if (!hdr.ok()) {
                    if (first_error.ok()) {
                      first_error = std::move(hdr);
                    }
                    return;
                  }
                  auto delivered = DecodeReply(kind, chunk, &reader);
                  client_seconds += decode_timer.ElapsedSeconds();
                  if (!delivered.ok()) {
                    if (first_error.ok()) {
                      first_error = delivered.status();
                    }
                    return;
                  }
                  if (*delivered != chunk.count) {
                    if (first_error.ok()) {
                      first_error = DataLossError(
                          StrFormat("short read: wanted %u, got %u",
                                    chunk.count, *delivered));
                    }
                    return;
                  }
                  stats.bytes_read += *delivered;
                  ++stats.rpc_calls;
                });
  }

  // --- the lossy wire, window-wide (modeled time) ---
  FLEXRPC_RETURN_IF_ERROR(rpc->Drive());
  FLEXRPC_RETURN_IF_ERROR(first_error);

  // Verification (not timed): out-of-order completion must still deliver
  // exactly the file bytes the serial paths deliver.
  if (std::memcmp(user_buffer, server_->content(), file_size) != 0) {
    return DataLossError("file contents corrupted in transit");
  }
  user_space_->Free(user_buffer);
  stats.client_seconds = client_seconds;
  stats.network_server_seconds = static_cast<double>(
      rpc->clock()->now_nanos() - clock_start) * 1e-9;
  const PipelinedTransport::Stats& rpc_end = rpc->stats();
  stats.retransmits = rpc_end.retransmits - rpc_start.retransmits;
  stats.dup_cache_hits = rpc_end.dup_cache_hits - rpc_start.dup_cache_hits;
  stats.server_executions =
      rpc_end.dup_cache_misses - rpc_start.dup_cache_misses;
  return stats;
}

namespace {

// Transport-level activity summed across a replica group; the binder's
// callers see one logical endpoint, so its read stats aggregate too.
struct GroupStatsSum {
  uint64_t retransmits = 0;
  uint64_t dup_cache_hits = 0;
  uint64_t dup_cache_misses = 0;
};

GroupStatsSum SumGroupStats(ReplicaGroup* group) {
  GroupStatsSum sum;
  for (size_t i = 0; i < group->size(); ++i) {
    const PipelinedTransport::Stats& s = group->transport(i)->stats();
    sum.retransmits += s.retransmits;
    sum.dup_cache_hits += s.dup_cache_hits;
    sum.dup_cache_misses += s.dup_cache_misses;
  }
  return sum;
}

}  // namespace

Result<NfsClient::ReadStats> NfsClient::ReadFileManaged(
    StubKind kind, BinderTransport* rpc, size_t chunk_bytes) {
  ReadStats stats;
  if (chunk_bytes == 0 || chunk_bytes > kNfsMaxData) {
    chunk_bytes = kNfsMaxData;
  }
  const uint64_t clock_start = rpc->clock()->now_nanos();
  const GroupStatsSum rpc_start = SumGroupStats(rpc->group());
  size_t file_size = server_->file_size();
  auto* user_buffer =
      static_cast<uint8_t*>(user_space_->Allocate(file_size));
  uint8_t fh[kNfsFhSize];
  std::memset(fh, 0xFD, sizeof(fh));

  double client_seconds = 0;
  Status first_error = Status::Ok();
  for (size_t offset = 0; offset < file_size; offset += chunk_bytes) {
    uint32_t count = static_cast<uint32_t>(
        file_size - offset < chunk_bytes ? file_size - offset
                                         : chunk_bytes);
    ChunkArgs chunk{fh, static_cast<uint32_t>(offset), count,
                    user_buffer + offset};
    uint32_t xid = next_xid_++;

    // --- client-side marshal (measured) ---
    XdrWriter request;
    Stopwatch encode_timer;
    EncodeSunRpcCall(&request,
                     SunRpcCall{xid, kNfsProgram, kNfsVersion,
                                kNfsProcRead});
    {
      RecorderCallScope rec_scope(xid, rpc->clock());
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t unused,
                               EncodeRequest(kind, chunk, &request));
      (void)unused;
    }
    client_seconds += encode_timer.ElapsedSeconds();

    rpc->Submit(xid, request.span(),
                [this, kind, xid, chunk, rpc, &stats, &client_seconds,
                 &first_error](Status st, std::vector<uint8_t> reply) {
                  if (!st.ok()) {
                    if (first_error.ok()) {
                      first_error = std::move(st);
                    }
                    return;
                  }
                  // Decode at completion time — possibly after the call
                  // migrated replicas; the reply bytes are the reply
                  // bytes regardless of which replica produced them.
                  RecorderCallScope rec_scope(xid, rpc->clock());
                  // --- client-side unmarshal + delivery (measured) ---
                  Stopwatch decode_timer;
                  XdrReader reader(ByteSpan(reply.data(), reply.size()));
                  Status hdr = DecodeSunRpcReplySuccess(&reader, xid);
                  if (!hdr.ok()) {
                    if (first_error.ok()) {
                      first_error = std::move(hdr);
                    }
                    return;
                  }
                  auto delivered = DecodeReply(kind, chunk, &reader);
                  client_seconds += decode_timer.ElapsedSeconds();
                  if (!delivered.ok()) {
                    if (first_error.ok()) {
                      first_error = delivered.status();
                    }
                    return;
                  }
                  if (*delivered != chunk.count) {
                    if (first_error.ok()) {
                      first_error = DataLossError(
                          StrFormat("short read: wanted %u, got %u",
                                    chunk.count, *delivered));
                    }
                    return;
                  }
                  stats.bytes_read += *delivered;
                  ++stats.rpc_calls;
                });
  }

  // --- the managed wire, group-wide (modeled time) ---
  FLEXRPC_RETURN_IF_ERROR(rpc->Drive());
  FLEXRPC_RETURN_IF_ERROR(first_error);

  // Verification (not timed): failover must deliver exactly the bytes a
  // clean single-replica read delivers.
  if (std::memcmp(user_buffer, server_->content(), file_size) != 0) {
    return DataLossError("file contents corrupted in transit");
  }
  user_space_->Free(user_buffer);
  stats.client_seconds = client_seconds;
  stats.network_server_seconds = static_cast<double>(
      rpc->clock()->now_nanos() - clock_start) * 1e-9;
  const GroupStatsSum rpc_end = SumGroupStats(rpc->group());
  stats.retransmits = rpc_end.retransmits - rpc_start.retransmits;
  stats.dup_cache_hits = rpc_end.dup_cache_hits - rpc_start.dup_cache_hits;
  stats.server_executions =
      rpc_end.dup_cache_misses - rpc_start.dup_cache_misses;
  return stats;
}

}  // namespace flexrpc
