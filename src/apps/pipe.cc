#include "src/apps/pipe.h"

#include <cstring>

#include "src/support/strings.h"

namespace flexrpc {

PipeBuffer::PipeBuffer(Arena* arena, size_t capacity)
    : data_(static_cast<uint8_t*>(arena->Allocate(capacity))),
      capacity_(capacity) {}

size_t PipeBuffer::Write(const uint8_t* data, size_t len) {
  size_t accept = len < space() ? len : space();
  size_t tail = (head_ + size_) % capacity_;
  size_t first = accept < capacity_ - tail ? accept : capacity_ - tail;
  std::memcpy(data_ + tail, data, first);
  std::memcpy(data_, data + first, accept - first);
  size_ += accept;
  return accept;
}

size_t PipeBuffer::Read(uint8_t* dst, size_t len) {
  size_t deliver = len < size_ ? len : size_;
  size_t first = deliver < capacity_ - head_ ? deliver : capacity_ - head_;
  std::memcpy(dst, data_ + head_, first);
  std::memcpy(dst + first, data_, deliver - first);
  head_ = (head_ + deliver) % capacity_;
  size_ -= deliver;
  return deliver;
}

std::pair<const uint8_t*, size_t> PipeBuffer::Peek(size_t len) const {
  size_t deliver = len < size_ ? len : size_;
  size_t contiguous = capacity_ - head_;
  if (deliver > contiguous) {
    deliver = contiguous;  // short read at the wrap point
  }
  return {data_ + head_, deliver};
}

void PipeBuffer::Consume(size_t len) {
  head_ = (head_ + len) % capacity_;
  size_ -= len;
}

const char* PipeIdlText() {
  return R"(
    interface FileIO {
      sequence<octet> read(in unsigned long count);
      unsigned long write(in sequence<octet> data);
    };
  )";
}

PipeServerApp::PipeServerApp(Kernel* kernel, FastPath* transport,
                             const InterfaceFile& idl,
                             ReadPresentation read_pres,
                             size_t pipe_capacity)
    : idl_(&idl), read_pres_(read_pres) {
  task_ = kernel->CreateTask("pipe-server");
  DiagnosticSink diags;
  const char* pdl = read_pres == ReadPresentation::kZeroCopy
                        ? "FileIO_read()[dealloc(never)];"
                        : "";
  bool ok = pdl[0] == '\0'
                ? ApplyPdl(idl, Side::kServer, nullptr, &presentation_,
                           &diags)
                : ApplyPdlText(idl, Side::kServer, pdl, "pipe.pdl",
                               &presentation_, &diags);
  if (!ok) {
    std::fprintf(stderr, "pipe server PDL rejected:\n%s",
                 diags.ToString().c_str());
    std::abort();
  }
  pipe_ = std::make_unique<PipeBuffer>(&task_->space().arena(),
                                       pipe_capacity);
  server_ = std::make_unique<ServerObject>(
      *idl.FindInterface("FileIO"), *presentation_.Find("FileIO"), task_);

  server_->SetWork("write", [this](ArgVec* args, Arena*) {
    ApplyPendingConsume();
    const auto* data = static_cast<const uint8_t*>((*args)[0].ptr());
    size_t accepted = pipe_->Write(data, (*args)[0].length);
    (*args)[args->size() - 1].scalar = accepted;
    return Status::Ok();
  });

  server_->SetWork("read", [this](ArgVec* args, Arena* arena) {
    ApplyPendingConsume();
    size_t count = static_cast<size_t>((*args)[0].scalar);
    size_t result_slot = args->size() - 1;
    if (read_pres_ == ReadPresentation::kZeroCopy) {
      // [dealloc(never)]: hand the stub a pointer straight into the
      // circular buffer; consume once the reply has been marshaled.
      auto [ptr, len] = pipe_->Peek(count);
      (*args)[result_slot].set_ptr(ptr);
      (*args)[result_slot].length = static_cast<uint32_t>(len);
      pending_consume_ = len;
      return Status::Ok();
    }
    // Default move semantics: allocate, copy out, let the stub free.
    size_t want = count < pipe_->available() ? count : pipe_->available();
    auto* buf = static_cast<uint8_t*>(
        arena->AllocateBlock(want > 0 ? want : 1));
    size_t got = pipe_->Read(buf, want);
    ++read_copies_;
    (*args)[result_slot].set_ptr(buf);
    (*args)[result_slot].length = static_cast<uint32_t>(got);
    return Status::Ok();
  });

  port_ = ExportServer(kernel, transport, server_.get());
}

void PipeServerApp::ApplyPendingConsume() {
  if (pending_consume_ > 0) {
    pipe_->Consume(pending_consume_);
    pending_consume_ = 0;
  }
}

PipeServerFbuf::PipeServerFbuf(FbufChannel* channel, Presentation pres,
                               Arena* server_arena, size_t pipe_capacity)
    : channel_(channel), pres_(pres), arena_(server_arena),
      capacity_(pipe_capacity) {
  if (pres_ == Presentation::kStandard) {
    pipe_ = std::make_unique<PipeBuffer>(server_arena, pipe_capacity);
  }
  channel_->Serve([this](uint32_t opnum, FbufAggregate* request,
                         FbufAggregate* reply) {
    return Handle(opnum, request, reply);
  });
}

Status PipeServerFbuf::Handle(uint32_t opnum, FbufAggregate* request,
                              FbufAggregate* reply) {
  switch (opnum) {
    case kOpWrite:
      return HandleWrite(request, reply);
    case kOpRead:
      return HandleRead(request, reply);
    default:
      return NotFoundError(StrFormat("pipe server: unknown op %u", opnum));
  }
}

Status PipeServerFbuf::HandleWrite(FbufAggregate* request,
                                   FbufAggregate* reply) {
  size_t len = request->size();
  size_t accepted;
  if (pres_ == Presentation::kSpecial) {
    // [special]: keep the incoming data in its fbufs; just splice the
    // aggregate onto the pipe queue. Zero copies.
    size_t room = capacity_ - queue_.size();
    if (len <= room) {
      queue_.Splice(request);
      accepted = len;
    } else {
      FLEXRPC_ASSIGN_OR_RETURN(FbufAggregate head,
                               request->SplitPrefix(room));
      queue_.Splice(&head);
      accepted = room;
    }
  } else {
    // Standard presentation: the stub unmarshals the sequence into a
    // private buffer (copy 1), then the work function writes it into the
    // circular buffer (copy 2).
    auto* staged = static_cast<uint8_t*>(
        arena_->AllocateBlock(len > 0 ? len : 1));
    FLEXRPC_RETURN_IF_ERROR(request->CopyOut(0, staged, len));
    ++server_copies_;
    accepted = pipe_->Write(staged, len);
    ++server_copies_;
    arena_->FreeBlock(staged);
  }
  // Reply carries the accepted count in a small fbuf.
  FLEXRPC_ASSIGN_OR_RETURN(Fbuf * header, channel_->pool().Allocate());
  uint32_t accepted32 = static_cast<uint32_t>(accepted);
  std::memcpy(header->data(), &accepted32, sizeof(accepted32));
  reply->Append(header, 0, sizeof(accepted32));
  header->Unref();  // the aggregate holds the reference now
  return Status::Ok();
}

Status PipeServerFbuf::HandleRead(FbufAggregate* request,
                                  FbufAggregate* reply) {
  uint32_t count = 0;
  FLEXRPC_RETURN_IF_ERROR(request->CopyOut(0, &count, sizeof(count)));
  if (pres_ == Presentation::kSpecial) {
    // Split the requested prefix off the queue: reference motion only.
    size_t take = count < queue_.size() ? count : queue_.size();
    FLEXRPC_ASSIGN_OR_RETURN(FbufAggregate data, queue_.SplitPrefix(take));
    *reply = std::move(data);
    return Status::Ok();
  }
  // Standard presentation: copy out of the circular buffer into a private
  // reply buffer (copy 1), then marshal it into a reply fbuf (copy 2).
  size_t want = count < pipe_->available() ? count : pipe_->available();
  auto* staged =
      static_cast<uint8_t*>(arena_->AllocateBlock(want > 0 ? want : 1));
  size_t got = pipe_->Read(staged, want);
  ++server_copies_;
  size_t produced = 0;
  while (produced < got) {
    FLEXRPC_ASSIGN_OR_RETURN(Fbuf * fbuf, channel_->pool().Allocate());
    size_t chunk = got - produced < fbuf->size() ? got - produced
                                                 : fbuf->size();
    std::memcpy(fbuf->data(), staged + produced, chunk);
    ++server_copies_;
    reply->Append(fbuf, 0, chunk);
    fbuf->Unref();
    produced += chunk;
  }
  arena_->FreeBlock(staged);
  return Status::Ok();
}

Status FbufPipeWrite(FbufChannel* channel, const uint8_t* data, size_t len,
                     size_t* accepted) {
  // Standard client presentation: copy the user buffer into fbufs.
  FbufAggregate request;
  size_t produced = 0;
  while (produced < len) {
    FLEXRPC_ASSIGN_OR_RETURN(Fbuf * fbuf, channel->pool().Allocate());
    size_t chunk =
        len - produced < fbuf->size() ? len - produced : fbuf->size();
    std::memcpy(fbuf->data(), data + produced, chunk);
    request.Append(fbuf, 0, chunk);
    fbuf->Unref();
    produced += chunk;
  }
  FbufAggregate reply;
  FLEXRPC_RETURN_IF_ERROR(channel->Call(PipeServerFbuf::kOpWrite,
                                        std::move(request), &reply));
  uint32_t accepted32 = 0;
  FLEXRPC_RETURN_IF_ERROR(
      reply.CopyOut(0, &accepted32, sizeof(accepted32)));
  *accepted = accepted32;
  return Status::Ok();
}

Status FbufPipeRead(FbufChannel* channel, uint8_t* dst, size_t len,
                    size_t* delivered) {
  FbufAggregate request;
  FLEXRPC_ASSIGN_OR_RETURN(Fbuf * header, channel->pool().Allocate());
  uint32_t count = static_cast<uint32_t>(len);
  std::memcpy(header->data(), &count, sizeof(count));
  request.Append(header, 0, sizeof(count));
  header->Unref();

  FbufAggregate reply;
  FLEXRPC_RETURN_IF_ERROR(channel->Call(PipeServerFbuf::kOpRead,
                                        std::move(request), &reply));
  // Standard client presentation: copy the reply out of the fbufs.
  FLEXRPC_RETURN_IF_ERROR(reply.CopyOut(0, dst, reply.size()));
  *delivered = reply.size();
  return Status::Ok();
}

MonolithicPipe::MonolithicPipe(Kernel* kernel, Arena* kernel_space,
                               size_t capacity)
    : kernel_(kernel), pipe_(kernel_space, capacity) {}

size_t MonolithicPipe::Write(AddressSpace* writer_space,
                             const uint8_t* user_data, size_t len) {
  (void)writer_space;
  kernel_->Trap();  // syscall entry
  size_t accepted = pipe_.Write(user_data, len);  // the copyin
  kernel_->Trap();  // syscall exit
  return accepted;
}

size_t MonolithicPipe::Read(AddressSpace* reader_space, uint8_t* user_dst,
                            size_t len) {
  (void)reader_space;
  kernel_->Trap();
  size_t delivered = pipe_.Read(user_dst, len);  // the copyout
  kernel_->Trap();
  return delivered;
}

}  // namespace flexrpc
