// PipelinedTransport — sliding-window at-most-once RPC on an event queue.
//
// The serial RetryingTransport is stop-and-wait: one call occupies the
// whole round trip, so throughput is one call per (request wire time +
// server time + reply wire time). This transport keeps up to `window`
// calls in flight at once over the same DatagramChannel and the same
// at-most-once machinery:
//
//   - every in-flight call carries its own ClientCallState (attempt
//     budget, RTO, deadline) and its own retransmit timer on the shared
//     EventQueue;
//   - replies are matched by xid against the in-flight table, so they may
//     complete out of order;
//   - the server side is the same AtMostOnceEndpoint the serial transport
//     uses — duplicate suppression and exactly-once execution hold no
//     matter how the window interleaves retransmits.
//
// Time is discrete-event: the channel runs in scheduled-delivery mode
// (frames carry delivery timestamps; wire occupancy serializes per
// direction, latency pipelines) and the server serializes executions on a
// busy-until horizon. The transport never advances the clock itself — it
// only schedules callbacks, and EventQueue::RunNext moves the clock to the
// next deadline. Throughput is therefore bounded by the busiest resource
// (a wire direction or the server CPU) instead of the sum of all three,
// which is exactly the speedup the window buys.
//
// One deliberate divergence from the serial path: a corrupt reply cannot
// be attributed to an xid (the checksum rejects the whole frame), so the
// pipelined path always treats it as a drop and lets the RTO cover it —
// RetryPolicy::retry_on_corrupt=false is ignored here. Treating it as a
// drop includes the loss signal: in adaptive mode a checksum failure
// feeds the same AIMD OnLoss path an RTO fire does (DESIGN.md §11), so
// congestion control and failover health see consistent evidence whether
// a frame vanished or arrived mangled. (The RTT estimator is NOT backed
// off — corruption implicates the frame, not the round-trip time.)

#ifndef FLEXRPC_SRC_RPC_PIPELINE_H_
#define FLEXRPC_SRC_RPC_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/datagram.h"
#include "src/net/link.h"
#include "src/rpc/retry.h"
#include "src/rpc/rtt.h"
#include "src/support/event_queue.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace flexrpc {

// Health-evidence taps for a control plane above the transport. The
// binder (src/rpc/binder.h) listens to per-replica transports through
// this interface: RTO fires and corrupt replies are failure evidence,
// matched replies are success evidence. Callbacks run synchronously
// inside the transport's event handling — implementations must not call
// back into the transport from them (defer via the shared EventQueue;
// Submit/Cancel from a *different* transport is fine).
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;
  virtual void OnRtoFired(uint32_t xid, uint32_t attempts) = 0;
  virtual void OnReplyMatched(uint32_t xid) = 0;
  virtual void OnCorruptReply() = 0;
};

struct PipelinePolicy {
  RetryPolicy retry;   // per-call budget, RTO, deadline, jitter — and the
                       // adaptive A/B switch (retry.adaptive): when
                       // enabled, the per-call RTO comes from a shared
                       // Jacobson/Karels estimator and the window below is
                       // replaced by an AIMD controller clamped to
                       // [retry.adaptive.window.min_window, .max_window]
  uint32_t window = 8; // fixed mode: max calls in flight; 0 clamped to 1
};

class PipelinedTransport {
 public:
  // Invoked exactly once per submitted call, from inside Drive. On OK the
  // reply datagram is passed (xid still in front); on failure the vector
  // is empty and the status carries the same degradation codes as the
  // serial transport.
  using Completion = std::function<void(Status, std::vector<uint8_t>)>;

  struct Stats {
    uint64_t calls = 0;
    uint64_t retransmits = 0;
    uint64_t stale_replies = 0;
    uint64_t corrupt_replies = 0;
    uint64_t dup_cache_hits = 0;
    uint64_t dup_cache_misses = 0;     // == server work executions
    uint64_t deadline_expiries = 0;
    uint64_t unavailable_failures = 0;
    uint64_t out_of_order_replies = 0; // completed before an older xid
    uint64_t window_stalls = 0;        // submissions that had to queue
    uint64_t max_in_flight = 0;
    uint64_t events = 0;               // event-queue dispatches
    uint64_t rtt_samples = 0;          // clean samples fed the estimator
    uint64_t karn_skips = 0;           // ambiguous replies excluded
    uint64_t cwnd_increases = 0;       // additive window growth steps
    uint64_t cwnd_decreases = 0;       // multiplicative halvings
  };

  // Switches `channel` into scheduled-delivery mode; do not share it with
  // a lockstep transport. `events` must run on the same VirtualClock as
  // the channel. All referenced objects must outlive the transport.
  PipelinedTransport(DatagramChannel* channel, DatagramHandler handler,
                     RemoteServerModel server_model, PipelinePolicy policy,
                     EventQueue* events);

  // Queues one call. Starts transmitting immediately if a window slot is
  // free; otherwise waits for one (counted as a window stall). `done` runs
  // during a later Drive.
  void Submit(uint32_t xid, ByteSpan request, Completion done);

  // Runs the event queue until every submitted call has completed.
  // Returns non-OK only if the machine stalls (calls outstanding with no
  // scheduled event) — a bug, not a degradation.
  Status Drive();

  // Convenience: Submit one call and Drive to completion (also drains any
  // other outstanding calls). Returns that call's status.
  Status Call(uint32_t xid, ByteSpan request, std::vector<uint8_t>* reply);

  // Withdraws a submitted call without completing it: the RTO timer is
  // cancelled, the window slot freed, and the completion never invoked.
  // A reply already in flight for the xid arrives as a stale reply. Used
  // by the binder's live cutover to re-issue an in-flight xid on another
  // replica. Returns false when the xid is not pending or in flight.
  bool Cancel(uint32_t xid);

  // Health-evidence tap (see PipelineObserver). Null disables the tap.
  void set_observer(PipelineObserver* observer) { observer_ = observer; }

  // Replica identity for flight-recorder attribution: every event this
  // transport (and the channel/server work it drives) records carries the
  // tag, giving each replica its own tracks in the Chrome export. 0 (the
  // default) means unreplicated. Tags are 1-based (ReplicaGroup assigns
  // index + 1).
  void set_replica_tag(uint32_t tag) { replica_tag_ = tag; }
  uint32_t replica_tag() const { return replica_tag_; }

  const Stats& stats() const { return stats_; }
  const PipelinePolicy& policy() const { return policy_; }
  VirtualClock* clock() { return channel_->clock(); }
  size_t in_flight() const { return in_flight_.size(); }

  // Adaptive-mode introspection (meaningful when retry.adaptive.enabled).
  const RttEstimator& rtt() const { return rtt_; }
  const AimdController& cwnd() const { return cwnd_; }
  // The admission limit in force right now: the AIMD window in adaptive
  // mode, the fixed policy window otherwise.
  uint32_t current_window() const {
    return policy_.retry.adaptive.enabled ? cwnd_.window() : policy_.window;
  }

 private:
  struct InFlight {
    ClientCallState call;
    EventQueue::EventId rto_event = EventQueue::kInvalidEvent;
    Completion done;
  };

  struct PendingCall {
    ClientCallState call;  // deadline armed at Submit time
    Completion done;
  };

  // Schedules `fn` at `at_nanos`, counting the dispatch when it runs.
  EventQueue::EventId Schedule(uint64_t at_nanos, std::function<void()> fn);

  void StartNext();               // fill free window slots from pending_
  void TransmitCall(InFlight& f); // send + arm the RTO timer
  void OnRto(uint32_t xid);       // retransmit or fail the call
  void ArmServerPoll();           // wake when the next request lands
  void ArmClientPoll();           // wake when the next reply lands
  void PumpServerSide();          // dedup/execute/schedule replies
  void DrainReplies();            // match replies to in-flight calls
  void Complete(uint32_t xid, Status status, std::vector<uint8_t> reply);

  DatagramChannel* channel_;
  AtMostOnceEndpoint endpoint_;
  RemoteServerModel server_model_;
  PipelinePolicy policy_;
  Rng jitter_;
  RttEstimator rtt_;
  AimdController cwnd_;
  EventQueue* events_;
  PipelineObserver* observer_ = nullptr;
  uint32_t replica_tag_ = 0;

  std::deque<PendingCall> pending_;              // waiting for a slot
  std::unordered_map<uint32_t, InFlight> in_flight_;
  std::deque<uint32_t> start_order_;             // in-flight xids, oldest first
  uint64_t server_free_nanos_ = 0;               // server CPU busy-until

  bool server_poll_armed_ = false;
  uint64_t server_poll_at_ = 0;
  EventQueue::EventId server_poll_event_ = EventQueue::kInvalidEvent;
  bool client_poll_armed_ = false;
  uint64_t client_poll_at_ = 0;
  EventQueue::EventId client_poll_event_ = EventQueue::kInvalidEvent;

  Stats stats_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_PIPELINE_H_
