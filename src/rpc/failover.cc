#include "src/rpc/failover.h"

#include <algorithm>

namespace flexrpc {

std::string_view ReplicaHealthName(ReplicaHealth h) {
  switch (h) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kProbing:
      return "probing";
  }
  return "?";
}

FailoverTracker::FailoverTracker(FailoverPolicy policy) : policy_(policy) {
  policy_.suspect_after = std::max<uint32_t>(policy_.suspect_after, 1);
  policy_.probe_interval_nanos =
      std::max<uint64_t>(policy_.probe_interval_nanos, 1);
  policy_.max_probe_interval_nanos = std::max(
      policy_.max_probe_interval_nanos, policy_.probe_interval_nanos);
  current_probe_interval_nanos_ = policy_.probe_interval_nanos;
}

bool FailoverTracker::OnFailure(uint64_t now_nanos) {
  ++consecutive_failures_;
  switch (health_) {
    case ReplicaHealth::kHealthy:
      if (consecutive_failures_ >= policy_.suspect_after) {
        health_ = ReplicaHealth::kSuspect;
        next_probe_nanos_ = now_nanos + current_probe_interval_nanos_;
        return true;
      }
      return false;
    case ReplicaHealth::kProbing:
      // The probe failed; the next attempt was already scheduled (with
      // backoff) when it was sent — just fall back to waiting for it.
      health_ = ReplicaHealth::kSuspect;
      return false;
    case ReplicaHealth::kSuspect:
      return false;  // more evidence for a verdict already reached
  }
  return false;
}

bool FailoverTracker::OnSuccess() {
  consecutive_failures_ = 0;
  current_probe_interval_nanos_ = policy_.probe_interval_nanos;
  if (health_ == ReplicaHealth::kHealthy) {
    return false;
  }
  health_ = ReplicaHealth::kHealthy;
  return true;
}

bool FailoverTracker::ProbeDue(uint64_t now_nanos) const {
  return health_ == ReplicaHealth::kSuspect &&
         now_nanos >= next_probe_nanos_;
}

void FailoverTracker::OnProbeSent(uint64_t now_nanos) {
  health_ = ReplicaHealth::kProbing;
  current_probe_interval_nanos_ =
      std::min(current_probe_interval_nanos_ * 2,
               policy_.max_probe_interval_nanos);
  next_probe_nanos_ = now_nanos + current_probe_interval_nanos_;
}

}  // namespace flexrpc
