#include "src/rpc/rtt.h"

#include <algorithm>

#include "src/support/trace.h"

namespace flexrpc {

RttEstimator::RttEstimator(RttConfig config) : config_(config) {
  RecomputeRto();
}

void RttEstimator::Sample(uint64_t rtt_nanos) {
  if (samples_ == 0) {
    // RFC 6298 §2.2: first measurement seeds both terms.
    srtt_nanos_ = rtt_nanos;
    rttvar_nanos_ = rtt_nanos / 2;
  } else {
    // rttvar <- 3/4 rttvar + 1/4 |srtt - R| (old srtt, per the RFC),
    // srtt  <- 7/8 srtt + 1/8 R. Integer division floors each term
    // independently — deterministic, and exact for the unit tests.
    uint64_t deviation = srtt_nanos_ > rtt_nanos ? srtt_nanos_ - rtt_nanos
                                                 : rtt_nanos - srtt_nanos_;
    rttvar_nanos_ = rttvar_nanos_ - rttvar_nanos_ / 4 + deviation / 4;
    srtt_nanos_ = srtt_nanos_ - srtt_nanos_ / 8 + rtt_nanos / 8;
  }
  ++samples_;
  TraceAdd(TraceCounter::kRpcRttSamples);
  // Karn: a valid sample ends the backed-off regime.
  backoff_shift_ = 0;
  RecomputeRto();
}

void RttEstimator::Backoff() {
  if (backoff_shift_ < 32) {
    ++backoff_shift_;
  }
  RecomputeRto();
}

void RttEstimator::RecomputeRto() {
  uint64_t base = samples_ > 0
                      ? srtt_nanos_ + std::max(config_.granularity_nanos,
                                               4 * rttvar_nanos_)
                      : config_.initial_rto_nanos;
  // Apply the timeout backoff, saturating well below overflow.
  uint64_t backed = backoff_shift_ < 63 && (base >> (63 - backoff_shift_)) == 0
                        ? base << backoff_shift_
                        : config_.max_rto_nanos;
  uint64_t clamped =
      std::clamp(backed, config_.min_rto_nanos, config_.max_rto_nanos);
  if (clamped != backed) {
    ++clamps_;
    TraceAdd(TraceCounter::kRpcRttClamps);
  }
  rto_nanos_ = clamped;
}

AimdController::AimdController(AimdConfig config)
    : config_(config),
      window_(std::clamp(config.initial_window, config.min_window,
                         config.max_window)) {}

bool AimdController::OnAck() {
  ++ack_credit_;
  if (ack_credit_ < window_) {
    return false;
  }
  ack_credit_ = 0;
  if (window_ >= config_.max_window) {
    return false;
  }
  ++window_;
  ++increases_;
  TraceAdd(TraceCounter::kRpcCwndIncreases);
  return true;
}

bool AimdController::OnLoss(uint64_t now_nanos, uint64_t hold_nanos) {
  if (now_nanos < recovery_until_) {
    return false;  // still inside the last decrease's recovery period
  }
  recovery_until_ = now_nanos + hold_nanos;
  ack_credit_ = 0;
  uint32_t halved = std::max(config_.min_window, window_ / 2);
  if (halved == window_) {
    return false;  // already at the floor
  }
  window_ = halved;
  ++decreases_;
  TraceAdd(TraceCounter::kRpcCwndDecreases);
  return true;
}

}  // namespace flexrpc
