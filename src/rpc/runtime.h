// The RPC runtime: binds endpoints, dispatches calls over a transport.
//
// A ServerObject owns the server side of one interface: per-operation
// marshal programs compiled from the *server's* presentation, plus the work
// functions. An RpcConnection owns the client side, compiled from the
// *client's* presentation. Binding verifies the two signatures against each
// other (the same check the specialized transport performs in the kernel),
// then wires calls through the streamlined IPC fast path.
//
// Message format on the wire (native byte order):
//   request:  u32 opnum, then the request body
//   reply:    u32 status (0 = ok), then the reply body or an error string

#ifndef FLEXRPC_SRC_RPC_RUNTIME_H_
#define FLEXRPC_SRC_RPC_RUNTIME_H_

#include <functional>
#include <map>
#include <memory>

#include "src/ipc/fastpath.h"
#include "src/marshal/engine.h"
#include "src/osim/kernel.h"
#include "src/pdl/apply.h"
#include "src/sig/signature.h"

namespace flexrpc {

// A server work function. `args` is laid out by the server presentation's
// slot order; in-params are filled on entry, the function fills out-params
// and the result slot. `arena` is the server's address space allocator.
using WorkFunction = std::function<Status(ArgVec* args, Arena* arena)>;

// Debug switch: when enabled, every marshal program compiled at bind time
// (by ServerObject and RpcConnection::Bind) is audited by the flexcheck
// plan verifier (src/analysis/plan_verifier.h). A server with a bad plan
// fails every dispatch; a client with one fails Bind. Off by default: the
// programs MarshalProgram::Build compiles from a validated presentation
// are correct by construction, so production binds skip the audit.
void SetVerifyPlansAtBind(bool enabled);
bool VerifyPlansAtBind();

class ServerObject {
 public:
  // `itf` and `pres` must outlive the object.
  ServerObject(const InterfaceDecl& itf, const InterfacePresentation& pres,
               Task* task);

  void SetWork(std::string_view op_name, WorkFunction work);

  // Optional [special] marshal routines used by this server's stubs.
  void SetSpecialOps(SpecialOps special) { special_ = std::move(special); }

  // Transport-level entry point: unmarshals, invokes, marshals the reply.
  Status Dispatch(ServerCall* call);

  const InterfaceSignature& signature() const { return signature_; }
  const InterfacePresentation& presentation() const { return *pres_; }
  Task* task() const { return task_; }
  const MarshalProgram* ProgramFor(uint32_t opnum) const;

  // OK unless VerifyPlansAtBind() found a bad plan at construction; a
  // non-OK status is returned (in-band) by every Dispatch.
  const Status& verify_status() const { return verify_status_; }

 private:
  struct OpState {
    const OperationDecl* decl = nullptr;
    MarshalProgram program;
    WorkFunction work;
  };

  const InterfaceDecl* itf_;
  const InterfacePresentation* pres_;
  Task* task_;
  InterfaceSignature signature_;
  std::map<uint32_t, OpState> ops_;
  SpecialOps special_;
  Status verify_status_;
};

class RpcConnection {
 public:
  // Binds `client` to the server behind `port`. Fails (PERMISSION_DENIED)
  // when the client's signature is incompatible with the server's — the
  // bind-time contract check.
  static Result<std::unique_ptr<RpcConnection>> Bind(
      Kernel* kernel, FastPath* transport, Task* client, Port* port,
      const ServerObject& server, const InterfaceDecl& itf,
      const InterfacePresentation& client_pres);

  // Invokes operation `op_name`. `args` is laid out by the client
  // presentation's slot order (see MarshalProgram::SlotOf).
  Status Call(std::string_view op_name, ArgVec* args);

  void SetSpecialOps(SpecialOps special) { special_ = std::move(special); }

  const MarshalProgram* ProgramFor(std::string_view op_name) const;
  uint64_t calls() const { return calls_; }

 private:
  RpcConnection() = default;

  FastPath* transport_ = nullptr;
  Task* client_ = nullptr;
  Port* port_ = nullptr;
  std::map<std::string, std::pair<uint32_t, MarshalProgram>> ops_;
  SpecialOps special_;
  uint64_t calls_ = 0;
};

// Convenience: creates a port in `server_task`, registers the server's
// dispatch function with the fast path, and returns the port.
Port* ExportServer(Kernel* kernel, FastPath* transport,
                   ServerObject* server);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_RUNTIME_H_
