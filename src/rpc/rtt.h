// Adaptive transport parameters: smoothed-RTT RTO estimation and an AIMD
// congestion window.
//
// PR 4 shipped the sliding-window pipelined transport with a *fixed* RTO
// and a *fixed* window, and documented the failure mode that combination
// has: once the window queues more reply bytes than the RTO covers,
// healthy-but-queued replies trigger spurious retransmits, the
// retransmits add more queueing, and throughput collapses (congestion
// collapse in miniature). PR 5's flight recorder classifies exactly those
// spurious RTOs. This module closes the loop with the two classic
// controllers, shared by the serial and pipelined transports:
//
//   * RttEstimator — Jacobson/Karels smoothed RTT + mean deviation
//     (RFC 6298 arithmetic: srtt <- 7/8 srtt + 1/8 R, rttvar <- 3/4
//     rttvar + 1/4 |srtt - R|, RTO = srtt + max(G, 4 rttvar)), with
//     Karn's rule split across the API: the *caller* never feeds samples
//     from retransmit-ambiguous exchanges (it cannot know which
//     transmission the reply answers), and Backoff() keeps the
//     exponentially backed-off RTO in force until the next unambiguous
//     sample. RTO is clamped to [min_rto, max_rto].
//
//   * AimdController — additive-increase/multiplicative-decrease window:
//     +1 call per window of clean acks, halved on a loss signal (an RTO
//     fire), with at most one decrease per recovery period so a single
//     loss burst is not charged once per lost frame. Clamped to
//     [min_window, max_window].
//
// Both are pure integer state machines on virtual-clock nanoseconds —
// no floating point, so every value is exactly reproducible and the
// estimator can be unit-tested against hand-computed sequences.
//
// Divergences from TCP proper are deliberate and documented in
// DESIGN.md §14: there is no slow-start phase (the AIMD ramp from a
// 2-call window reaches steady state within a few RTTs at RPC scale),
// the loss signal is the RTO timer only (no dupack fast retransmit —
// datagram RPC has no cumulative ack stream), and the decrease holdoff
// is time-based (one per RTO interval) rather than flight-based.

#ifndef FLEXRPC_SRC_RPC_RTT_H_
#define FLEXRPC_SRC_RPC_RTT_H_

#include <cstdint>

namespace flexrpc {

struct RttConfig {
  uint64_t initial_rto_nanos = 20'000'000;  // RTO before the first sample
  uint64_t min_rto_nanos = 1'000'000;       // 1 ms floor
  uint64_t max_rto_nanos = 400'000'000;     // 400 ms ceiling (matches the
                                            // fixed policy's backoff cap)
  uint64_t granularity_nanos = 100'000;     // G in RFC 6298: the minimum
                                            // variance term, 0.1 ms
};

// Jacobson/Karels smoothed RTT + variance, integer arithmetic. Feed it
// only unambiguous samples (Karn's rule: a reply to a retransmitted
// request matches an unknown transmission — skip it); call Backoff() on
// every retransmission timeout.
class RttEstimator {
 public:
  explicit RttEstimator(RttConfig config = RttConfig{});

  // One clean round-trip sample. Updates srtt/rttvar, recomputes the RTO,
  // and clears any timeout backoff (Karn: the backed-off RTO stays in
  // force only until the next valid sample).
  void Sample(uint64_t rtt_nanos);

  // Retransmission timeout: double the effective RTO (saturating at the
  // max clamp). srtt/rttvar are untouched — the timeout says nothing
  // about the real round trip.
  void Backoff();

  // Current retransmit timeout, clamped to [min_rto, max_rto]. Before the
  // first sample this is initial_rto (plus any backoff).
  uint64_t rto_nanos() const { return rto_nanos_; }

  bool has_sample() const { return samples_ > 0; }
  uint64_t srtt_nanos() const { return srtt_nanos_; }
  uint64_t rttvar_nanos() const { return rttvar_nanos_; }
  uint64_t samples() const { return samples_; }
  uint64_t clamps() const { return clamps_; }  // RTO hit a min/max bound
  const RttConfig& config() const { return config_; }

 private:
  void RecomputeRto();

  RttConfig config_;
  uint64_t srtt_nanos_ = 0;
  uint64_t rttvar_nanos_ = 0;
  uint64_t rto_nanos_ = 0;
  uint64_t samples_ = 0;
  uint64_t clamps_ = 0;
  uint32_t backoff_shift_ = 0;  // doublings since the last clean sample
};

struct AimdConfig {
  uint32_t initial_window = 2;
  uint32_t min_window = 1;
  uint32_t max_window = 64;
};

// Additive-increase/multiplicative-decrease window controller. The caller
// reports clean completions (OnAck) and loss signals (OnLoss); window()
// is the current max-calls-in-flight.
class AimdController {
 public:
  explicit AimdController(AimdConfig config = AimdConfig{});

  uint32_t window() const { return window_; }

  // One clean completion. Returns true when a full window of acks has
  // accumulated and the window grew by one.
  bool OnAck();

  // One loss signal (an RTO fired). Halves the window — but at most once
  // per `hold_nanos` recovery period, so a burst of timeouts from one
  // congestion episode costs one decrease, not one per frame. Returns
  // true when the window actually decreased.
  bool OnLoss(uint64_t now_nanos, uint64_t hold_nanos);

  uint64_t increases() const { return increases_; }
  uint64_t decreases() const { return decreases_; }
  const AimdConfig& config() const { return config_; }

 private:
  AimdConfig config_;
  uint32_t window_;
  uint32_t ack_credit_ = 0;        // clean acks toward the next increase
  uint64_t recovery_until_ = 0;    // no second decrease before this time
  uint64_t increases_ = 0;
  uint64_t decreases_ = 0;
};

// The A/B switch both transports take: disabled (the default) keeps the
// fixed RetryPolicy RTO and the fixed PipelinePolicy window benchable;
// enabled replaces them with the estimator RTO and the AIMD window.
struct AdaptiveConfig {
  bool enabled = false;
  RttConfig rtt;
  AimdConfig window;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_RTT_H_
