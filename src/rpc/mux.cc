#include "src/rpc/mux.h"

#include <algorithm>
#include <utility>

#include "src/support/recorder.h"
#include "src/support/strings.h"
#include "src/support/timeline.h"
#include "src/support/trace.h"

namespace flexrpc {

namespace {
constexpr auto kAtoB = DatagramChannel::Dir::kAtoB;
constexpr auto kBtoA = DatagramChannel::Dir::kBtoA;
}  // namespace

Result<uint32_t> PeekMuxConn(ByteSpan datagram) {
  if (datagram.size() < 8) {
    return DataLossError("datagram too short to carry a connection id");
  }
  ByteReader r(ByteSpan(datagram.data() + 4, 4));
  return r.ReadU32Be();
}

ConnectionMux::ConnectionMux(DatagramChannel* channel, MuxPolicy policy,
                             EventQueue* events)
    : channel_(channel), policy_(policy), events_(events),
      jitter_(policy.retry.jitter_seed) {
  if (policy_.per_conn_window == 0) {
    policy_.per_conn_window = 1;
  }
  channel_->set_scheduled_delivery(true);
  channel_->set_conn_tagging(true);
}

uint32_t ConnectionMux::OpenConnection() {
  uint32_t conn = next_conn_++;
  conns_.emplace(conn, Conn(policy_.retry.adaptive.rtt,
                            policy_.retry.adaptive.window));
  ++stats_.conns_opened;
  TraceAdd(TraceCounter::kRpcMuxConnsOpened);
  return conn;
}

uint64_t ConnectionMux::total_window() const {
  uint64_t total = 0;
  for (const auto& [id, c] : conns_) {
    total += WindowFor(c);
  }
  return total;
}

const RttEstimator* ConnectionMux::conn_rtt(uint32_t conn) const {
  auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : &it->second.rtt;
}

EventQueue::EventId ConnectionMux::Schedule(uint64_t at_nanos,
                                            std::function<void()> fn) {
  // Timer events fire with no ambient identity; capture the connection
  // scope active at scheduling time and reopen it inside the event, so
  // retransmits and reply sends downstream of timers record under the
  // right connection.
  uint32_t conn_tag = RecorderConnScope::Current();
  return events_->ScheduleAt(at_nanos, [this, conn_tag,
                                        fn = std::move(fn)]() {
    RecorderConnScope conn_scope(conn_tag);
    ++stats_.events;
    fn();
  });
}

void ConnectionMux::Submit(uint32_t conn_id, ByteSpan body, Completion done) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    done(InvalidArgumentError(
             StrFormat("submit on unopened connection %u", conn_id)),
         {});
    return;
  }
  Conn& c = it->second;
  RecorderConnScope conn_scope(conn_id);
  ++stats_.calls;
  TraceAdd(TraceCounter::kRpcMuxCalls);
  uint32_t xid = c.next_xid++;
  ByteWriter w;
  w.WriteU32Be(xid);
  w.WriteU32Be(conn_id);
  w.WriteSpan(body);
  PendingCall pending;
  pending.call.xid = xid;
  pending.call.request = w.TakeBuffer();
  // The deadline starts at submission: time queued behind this
  // connection's window counts against it, like a kernel send queue.
  pending.call.Arm(policy_.retry, events_->clock()->now_nanos());
  pending.done = std::move(done);
  RecordEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, xid,
              events_->clock()->now_nanos(),
              /*a=*/pending.call.request.size());
  if (c.in_flight >= WindowFor(c)) {
    ++stats_.flow_stalls;
    TraceAdd(TraceCounter::kRpcMuxFlowStalls);
  }
  ++outstanding_;
  c.pending.push_back(std::move(pending));
  StartNext(conn_id);
}

void ConnectionMux::StartNext(uint32_t conn_id) {
  auto conn_it = conns_.find(conn_id);
  if (conn_it == conns_.end()) {
    return;
  }
  Conn& c = conn_it->second;
  while (c.in_flight < WindowFor(c) && !c.pending.empty()) {
    PendingCall next = std::move(c.pending.front());
    c.pending.pop_front();
    uint64_t key = Key(conn_id, next.call.xid);
    InFlight& f = in_flight_[key];
    f.conn = conn_id;
    f.call = std::move(next.call);
    f.done = std::move(next.done);
    ++c.in_flight;
    stats_.max_in_flight =
        std::max<uint64_t>(stats_.max_in_flight, in_flight_.size());
    TransmitCall(f);
  }
}

void ConnectionMux::TransmitCall(InFlight& f) {
  RecorderConnScope conn_scope(f.conn);
  ++f.call.attempts;
  if (f.call.attempts > 1) {
    ++stats_.retransmits;
    TraceAdd(TraceCounter::kRpcMuxRetransmits);
    RecordEvent(RecEvent::kRetransmit, RecEndpoint::kClient, f.call.xid,
                events_->clock()->now_nanos(), /*a=*/f.call.attempts);
  }
  f.call.last_tx_nanos = events_->clock()->now_nanos();
  channel_->Send(kAtoB,
                 ByteSpan(f.call.request.data(), f.call.request.size()));
  if (request_listener_) {
    request_listener_();
  }
  uint64_t now = events_->clock()->now_nanos();
  bool expires = false;
  uint64_t wait;
  auto conn_it = conns_.find(f.conn);
  if (policy_.retry.adaptive.enabled && conn_it != conns_.end()) {
    // This connection's estimator owns the RTO (and its Karn backoff —
    // see OnRto); samples never cross connections, so a slow peer cannot
    // inflate this one's timer.
    wait = ClipRtoWait(conn_it->second.rtt.rto_nanos(),
                       f.call.deadline_nanos, &jitter_, now, &expires);
  } else {
    wait = f.call.NextBackoffWait(policy_.retry, &jitter_, now, &expires);
  }
  // When the wait was clipped the timer fires at the deadline and OnRto
  // fails the call; no special case needed here.
  uint64_t key = Key(f.conn, f.call.xid);
  f.rto_event = Schedule(now + wait, [this, key]() { OnRto(key); });
}

void ConnectionMux::OnRto(uint64_t key) {
  auto it = in_flight_.find(key);
  if (it == in_flight_.end()) {
    return;  // completed after this timer was already popped
  }
  InFlight& f = it->second;
  f.rto_event = EventQueue::kInvalidEvent;
  uint64_t now = events_->clock()->now_nanos();
  RecordEvent(RecEvent::kRtoFire, RecEndpoint::kClient, f.call.xid, now,
              /*a=*/f.call.attempts);
  auto conn_it = conns_.find(f.conn);
  if (policy_.retry.adaptive.enabled && conn_it != conns_.end() &&
      !f.call.DeadlinePassed(now)) {
    // A genuine timeout on this connection: Karn-backoff its RTO until
    // the next clean sample, and signal its AIMD loss. OnLoss holds off
    // repeat decreases for one RTO, so a burst of timeouts from one
    // congestion episode halves this connection's window once.
    Conn& c = conn_it->second;
    c.rtt.Backoff();
    if (c.cwnd.OnLoss(now, c.rtt.rto_nanos())) {
      ++stats_.cwnd_decreases;
      RecordEvent(RecEvent::kCwndChange, RecEndpoint::kClient, f.call.xid,
                  now, /*a=*/c.cwnd.window(), /*b=*/1);
    }
  }
  if (f.call.AttemptsExhausted(policy_.retry)) {
    Complete(key, UnavailableError(StrFormat(
                      "no reply for conn %u xid %u after %u attempts",
                      f.conn, f.call.xid, f.call.attempts)),
             {});
    return;
  }
  if (f.call.DeadlinePassed(now)) {
    Complete(key, DeadlineExceededError(StrFormat(
                      "deadline passed after %u attempts for conn %u xid %u",
                      f.call.attempts, f.conn, f.call.xid)),
             {});
    return;
  }
  TransmitCall(f);
}

void ConnectionMux::Poke() { ArmClientPoll(); }

void ConnectionMux::ArmClientPoll() {
  auto next = channel_->NextDeliveryNanos(kBtoA);
  if (!next) {
    return;
  }
  if (client_poll_armed_ && client_poll_at_ <= *next) {
    return;  // an earlier (or equal) wakeup already covers this frame
  }
  if (client_poll_armed_) {
    events_->Cancel(client_poll_event_);
  }
  client_poll_armed_ = true;
  client_poll_at_ = *next;
  client_poll_event_ = Schedule(*next, [this]() {
    client_poll_armed_ = false;
    DrainReplies();
  });
}

void ConnectionMux::DrainReplies() {
  while (channel_->HasPending(kBtoA)) {
    auto datagram = channel_->Receive(kBtoA);
    if (!datagram.ok()) {
      // A corrupt reply has no attributable identity; treat it as a drop
      // and let that call's RTO fire.
      ++stats_.corrupt_replies;
      TraceAdd(TraceCounter::kRpcCorruptReplies);
      continue;
    }
    ByteSpan reply_span(datagram->data(), datagram->size());
    auto xid = PeekXid(reply_span);
    auto conn = PeekMuxConn(reply_span);
    if (!xid.ok() || !conn.ok()) {
      ++stats_.stale_replies;  // too short to carry (conn, xid)
      TraceAdd(TraceCounter::kRpcMuxStaleReplies);
      continue;
    }
    RecorderConnScope conn_scope(*conn);
    uint64_t now = events_->clock()->now_nanos();
    uint64_t key = Key(*conn, *xid);
    auto it = in_flight_.find(key);
    if (it == in_flight_.end()) {
      // A late duplicate of a call that already completed (or failed) on
      // this connection — or a reply whose conn half does not match any
      // open call, which the per-connection keying rejects here.
      ++stats_.stale_replies;
      TraceAdd(TraceCounter::kRpcMuxStaleReplies);
      RecordEvent(RecEvent::kReplyStale, RecEndpoint::kClient, *xid, now);
      continue;
    }
    if (it->second.call.DeadlinePassed(now)) {
      RecordEvent(RecEvent::kReplyLate, RecEndpoint::kClient, *xid, now);
      Complete(key, DeadlineExceededError(StrFormat(
                        "reply for conn %u xid %u arrived after the "
                        "deadline",
                        *conn, *xid)),
               {});
      continue;
    }
    if (policy_.retry.adaptive.enabled) {
      auto conn_state = conns_.find(*conn);
      if (conn_state != conns_.end()) {
        Conn& c = conn_state->second;
        if (it->second.call.attempts == 1) {
          // Karn's rule, per connection: only a reply to this
          // connection's never-retransmitted request is an unambiguous
          // measurement of *its* path.
          uint64_t sample = now - it->second.call.last_tx_nanos;
          c.rtt.Sample(sample);
          ++stats_.rtt_samples;
          RecordEvent(RecEvent::kRttSample, RecEndpoint::kClient, *xid,
                      now, /*a=*/sample, /*b=*/c.rtt.rto_nanos());
        } else {
          ++stats_.karn_skips;
          TraceAdd(TraceCounter::kRpcRttKarnSkips);
        }
        if (c.cwnd.OnAck()) {
          ++stats_.cwnd_increases;
          RecordEvent(RecEvent::kCwndChange, RecEndpoint::kClient, *xid,
                      now, /*a=*/c.cwnd.window(), /*b=*/0);
        }
      }
    }
    RecordEvent(RecEvent::kReplyMatch, RecEndpoint::kClient, *xid, now,
                /*a=*/datagram->size());
    Complete(key, Status::Ok(), std::move(*datagram));
  }
  ArmClientPoll();  // more replies may still be in flight
}

void ConnectionMux::Complete(uint64_t key, Status status,
                             std::vector<uint8_t> reply) {
  auto it = in_flight_.find(key);
  if (it == in_flight_.end()) {
    return;
  }
  InFlight& f = it->second;
  RecorderConnScope conn_scope(f.conn);
  if (f.rto_event != EventQueue::kInvalidEvent) {
    events_->Cancel(f.rto_event);
  }
  if (status.ok()) {
    ++stats_.completed;
    // flexwatch: per-connection submit-to-complete latency (queued time
    // behind the window included, exactly like the deadline accounting).
    WatchObserve(WatchSeries::kCallLatency, f.conn,
                 events_->clock()->now_nanos() - f.call.submit_nanos);
  } else if (status.code() == StatusCode::kUnavailable) {
    ++stats_.unavailable_failures;
    TraceAdd(TraceCounter::kRpcUnavailableFailures);
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.deadline_expiries;
    TraceAdd(TraceCounter::kRpcDeadlineExpiries);
  }
  RecordEvent(RecEvent::kCallComplete, RecEndpoint::kClient, f.call.xid,
              events_->clock()->now_nanos(),
              /*a=*/static_cast<uint64_t>(status.code()));
  uint32_t conn_id = f.conn;
  Completion done = std::move(f.done);
  in_flight_.erase(it);
  auto conn_it = conns_.find(conn_id);
  if (conn_it != conns_.end() && conn_it->second.in_flight > 0) {
    --conn_it->second.in_flight;
  }
  --outstanding_;
  StartNext(conn_id);  // the freed window slot admits the next queued call
  done(std::move(status), std::move(reply));
}

Status ConnectionMux::Drive() {
  while (outstanding_ > 0) {
    if (!events_->RunNext()) {
      return InternalError(StrFormat(
          "connection mux stalled: %zu calls outstanding, no events "
          "pending",
          outstanding_));
    }
  }
  return Status::Ok();
}

}  // namespace flexrpc
