#include "src/rpc/runtime.h"

#include <cstring>

#include "src/analysis/plan_verifier.h"
#include "src/marshal/native.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

namespace {
bool g_verify_plans_at_bind = false;

// Runs the flexcheck plan verifier over one freshly compiled program.
Status AuditProgram(const MarshalProgram& program,
                    const std::string& where) {
  DiagnosticSink diags;
  if (VerifyProgram(program, where, &diags) == 0) {
    return Status::Ok();
  }
  return InternalError(StrFormat("marshal plan failed verification:\n%s",
                                 diags.ToString().c_str()));
}
}  // namespace

void SetVerifyPlansAtBind(bool enabled) {
  g_verify_plans_at_bind = enabled;
}

bool VerifyPlansAtBind() { return g_verify_plans_at_bind; }

ServerObject::ServerObject(const InterfaceDecl& itf,
                           const InterfacePresentation& pres, Task* task)
    : itf_(&itf), pres_(&pres), task_(task),
      signature_(BuildSignature(itf)) {
  for (const OperationDecl& op : itf.ops) {
    const OpPresentation* op_pres = pres.FindOp(op.name);
    OpState state;
    state.decl = &op;
    state.program = MarshalProgram::Build(op, *op_pres);
    if (g_verify_plans_at_bind && verify_status_.ok()) {
      verify_status_ =
          AuditProgram(state.program, itf.name + "." + op.name);
    }
    ops_.emplace(op.opnum, std::move(state));
  }
}

void ServerObject::SetWork(std::string_view op_name, WorkFunction work) {
  for (auto& [opnum, state] : ops_) {
    if (state.decl->name == op_name) {
      state.work = std::move(work);
      return;
    }
  }
}

const MarshalProgram* ServerObject::ProgramFor(uint32_t opnum) const {
  auto it = ops_.find(opnum);
  return it == ops_.end() ? nullptr : &it->second.program;
}

Status ServerObject::Dispatch(ServerCall* call) {
  TraceAdd(TraceCounter::kRpcDispatches);
  TraceSpan span(TraceHistogram::kRpcDispatchNanos);
  NativeReader reader(ByteSpan(call->request, call->request_size));
  FLEXRPC_ASSIGN_OR_RETURN(uint32_t opnum, reader.GetU32());
  auto it = ops_.find(opnum);

  NativeWriter reply;
  auto send_error = [&](const Status& st) {
    reply.Clear();
    reply.PutU32(static_cast<uint32_t>(st.code()));
    reply.PutU32(static_cast<uint32_t>(st.message().size()));
    reply.PutBytes(st.message().data(), st.message().size());
    call->reply->assign(reply.span().begin(), reply.span().end());
    return Status::Ok();  // the error travels in-band
  };

  if (!verify_status_.ok()) {
    return send_error(verify_status_);
  }
  if (it == ops_.end()) {
    return send_error(NotFoundError(
        StrFormat("server implements no operation %u", opnum)));
  }
  OpState& state = it->second;
  if (!state.work) {
    return send_error(UnimplementedError(
        StrFormat("no work function bound for '%s'",
                  state.decl->name.c_str())));
  }

  Arena* arena = &task_->space().arena();
  ArgVec args(state.program.slot_count());
  Status st = state.program.UnmarshalRequest(&reader, arena, &args,
                                             &special_);
  if (!st.ok()) {
    return send_error(st);
  }
  st = state.work(&args, arena);
  if (!st.ok()) {
    state.program.ReleaseRequest(arena, &args);
    return send_error(st);
  }
  reply.PutU32(0);
  st = state.program.MarshalReply(args, &reply, arena, &special_);
  state.program.ReleaseRequest(arena, &args);
  if (!st.ok()) {
    return send_error(st);
  }
  TraceAdd(TraceCounter::kRpcReplyBytes, reply.span().size());
  call->reply->assign(reply.span().begin(), reply.span().end());
  return Status::Ok();
}

Port* ExportServer(Kernel* kernel, FastPath* transport,
                   ServerObject* server) {
  PortName name = kernel->CreatePort(server->task());
  Result<Port*> port = kernel->ResolvePort(server->task(), name);
  transport->Serve(*port, server->task(),
                   [server](ServerCall* call) {
                     return server->Dispatch(call);
                   });
  return *port;
}

Result<std::unique_ptr<RpcConnection>> RpcConnection::Bind(
    Kernel* kernel, FastPath* transport, Task* client, Port* port,
    const ServerObject& server, const InterfaceDecl& itf,
    const InterfacePresentation& client_pres) {
  (void)kernel;
  InterfaceSignature client_sig = BuildSignature(itf);
  std::string why;
  if (!SignaturesCompatible(client_sig, server.signature(), &why)) {
    return PermissionDeniedError(
        StrFormat("bind-time signature check failed: %s", why.c_str()));
  }
  TraceAdd(TraceCounter::kRpcBinds);
  auto conn = std::unique_ptr<RpcConnection>(new RpcConnection());
  conn->transport_ = transport;
  conn->client_ = client;
  conn->port_ = port;
  for (const OperationDecl& op : itf.ops) {
    const OpPresentation* op_pres = client_pres.FindOp(op.name);
    MarshalProgram program = MarshalProgram::Build(op, *op_pres);
    if (g_verify_plans_at_bind) {
      FLEXRPC_RETURN_IF_ERROR(
          AuditProgram(program, itf.name + "." + op.name));
    }
    conn->ops_.emplace(op.name,
                       std::make_pair(op.opnum, std::move(program)));
  }
  return conn;
}

const MarshalProgram* RpcConnection::ProgramFor(
    std::string_view op_name) const {
  auto it = ops_.find(std::string(op_name));
  return it == ops_.end() ? nullptr : &it->second.second;
}

Status RpcConnection::Call(std::string_view op_name, ArgVec* args) {
  auto it = ops_.find(std::string(op_name));
  if (it == ops_.end()) {
    return NotFoundError(StrFormat("no operation '%s' in this interface",
                                   std::string(op_name).c_str()));
  }
  ++calls_;
  TraceAdd(TraceCounter::kRpcClientCalls);
  uint32_t opnum = it->second.first;
  const MarshalProgram& program = it->second.second;

  NativeWriter request;
  request.PutU32(opnum);
  {
    TraceSpan span(TraceHistogram::kRpcMarshalNanos);
    FLEXRPC_RETURN_IF_ERROR(
        program.MarshalRequest(*args, &request, &special_));
  }
  TraceAdd(TraceCounter::kRpcRequestBytes, request.span().size());

  void* reply_block = nullptr;
  size_t reply_size = 0;
  FLEXRPC_RETURN_IF_ERROR(transport_->Call(client_, port_, request.span(),
                                           &reply_block, &reply_size));
  NativeReader reader(
      ByteSpan(static_cast<const uint8_t*>(reply_block), reply_size));
  Status st = [&]() -> Status {
    FLEXRPC_ASSIGN_OR_RETURN(uint32_t code, reader.GetU32());
    if (code != 0) {
      FLEXRPC_ASSIGN_OR_RETURN(uint32_t msg_len, reader.GetU32());
      FLEXRPC_ASSIGN_OR_RETURN(const uint8_t* msg, reader.GetBytes(msg_len));
      return Status(static_cast<StatusCode>(code),
                    std::string(reinterpret_cast<const char*>(msg),
                                msg_len));
    }
    TraceSpan span(TraceHistogram::kRpcUnmarshalNanos);
    return program.UnmarshalReply(&reader, &client_->space().arena(), args,
                                  &special_);
  }();
  client_->space().Free(reply_block);
  return st;
}

}  // namespace flexrpc
