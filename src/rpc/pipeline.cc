#include "src/rpc/pipeline.h"

#include <algorithm>
#include <utility>

#include "src/support/recorder.h"
#include "src/support/strings.h"
#include "src/support/timeline.h"
#include "src/support/trace.h"

namespace flexrpc {

namespace {
constexpr auto kAtoB = DatagramChannel::Dir::kAtoB;
constexpr auto kBtoA = DatagramChannel::Dir::kBtoA;
}  // namespace

PipelinedTransport::PipelinedTransport(DatagramChannel* channel,
                                       DatagramHandler handler,
                                       RemoteServerModel server_model,
                                       PipelinePolicy policy,
                                       EventQueue* events)
    : channel_(channel), endpoint_(std::move(handler)),
      server_model_(server_model), policy_(policy),
      jitter_(policy.retry.jitter_seed), rtt_(policy.retry.adaptive.rtt),
      cwnd_(policy.retry.adaptive.window), events_(events) {
  if (policy_.window == 0) {
    policy_.window = 1;
  }
  channel_->set_scheduled_delivery(true);
}

EventQueue::EventId PipelinedTransport::Schedule(uint64_t at_nanos,
                                                 std::function<void()> fn) {
  return events_->ScheduleAt(at_nanos, [this, fn = std::move(fn)]() {
    // Everything this transport does downstream of an event — channel
    // sends, server executions, reply matching — records under its
    // replica identity (0 = unreplicated, scope is a no-op tag).
    RecorderReplicaScope replica_scope(replica_tag_);
    ++stats_.events;
    TraceAdd(TraceCounter::kRpcPipelineEvents);
    fn();
  });
}

void PipelinedTransport::Submit(uint32_t xid, ByteSpan request,
                                Completion done) {
  RecorderReplicaScope replica_scope(replica_tag_);
  ++stats_.calls;
  TraceAdd(TraceCounter::kRpcPipelineCalls);
  RecordEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, xid,
              events_->clock()->now_nanos(), /*a=*/request.size());
  PendingCall pending;
  pending.call.xid = xid;
  pending.call.request.assign(request.begin(), request.end());
  // The deadline starts at submission: time a call spends queued behind a
  // full window counts against it, exactly as a kernel send queue would.
  pending.call.Arm(policy_.retry, events_->clock()->now_nanos());
  pending.done = std::move(done);
  if (in_flight_.size() >= current_window()) {
    ++stats_.window_stalls;
    TraceAdd(TraceCounter::kRpcPipelineWindowStalls);
  }
  pending_.push_back(std::move(pending));
  StartNext();
}

void PipelinedTransport::StartNext() {
  while (in_flight_.size() < current_window() && !pending_.empty()) {
    PendingCall next = std::move(pending_.front());
    pending_.pop_front();
    uint32_t xid = next.call.xid;
    InFlight& f = in_flight_[xid];
    f.call = std::move(next.call);
    f.done = std::move(next.done);
    start_order_.push_back(xid);
    stats_.max_in_flight =
        std::max<uint64_t>(stats_.max_in_flight, in_flight_.size());
    TransmitCall(f);
  }
}

void PipelinedTransport::TransmitCall(InFlight& f) {
  ++f.call.attempts;
  if (f.call.attempts > 1) {
    ++stats_.retransmits;
    TraceAdd(TraceCounter::kRpcPipelineRetransmits);
    RecordEvent(RecEvent::kRetransmit, RecEndpoint::kClient, f.call.xid,
                events_->clock()->now_nanos(), /*a=*/f.call.attempts);
  }
  f.call.last_tx_nanos = events_->clock()->now_nanos();
  channel_->Send(kAtoB,
                 ByteSpan(f.call.request.data(), f.call.request.size()));
  ArmServerPoll();
  uint64_t now = events_->clock()->now_nanos();
  bool expires = false;
  uint64_t wait;
  if (policy_.retry.adaptive.enabled) {
    // The estimator owns the RTO (and its Karn backoff — see OnRto); the
    // per-call doubling schedule in ClientCallState is bypassed entirely.
    wait = ClipRtoWait(rtt_.rto_nanos(), f.call.deadline_nanos, &jitter_,
                       now, &expires);
  } else {
    wait = f.call.NextBackoffWait(policy_.retry, &jitter_, now, &expires);
  }
  // When the wait was clipped the timer fires at the deadline and OnRto
  // fails the call; no special case needed here.
  uint32_t xid = f.call.xid;
  f.rto_event = Schedule(now + wait, [this, xid]() { OnRto(xid); });
}

void PipelinedTransport::OnRto(uint32_t xid) {
  auto it = in_flight_.find(xid);
  if (it == in_flight_.end()) {
    return;  // completed after this timer was already popped
  }
  InFlight& f = it->second;
  f.rto_event = EventQueue::kInvalidEvent;
  uint64_t now = events_->clock()->now_nanos();
  RecordEvent(RecEvent::kRtoFire, RecEndpoint::kClient, xid, now,
              /*a=*/f.call.attempts);
  if (observer_ != nullptr) {
    observer_->OnRtoFired(xid, f.call.attempts);
  }
  if (policy_.retry.adaptive.enabled && !f.call.DeadlinePassed(now)) {
    // A genuine timeout (not a timer clipped to the deadline): Karn-backoff
    // the RTO until the next clean sample, and signal AIMD loss. OnLoss
    // holds off repeat decreases for one RTO, so a burst of timeouts from
    // the same congestion episode halves the window once.
    rtt_.Backoff();
    if (cwnd_.OnLoss(now, rtt_.rto_nanos())) {
      ++stats_.cwnd_decreases;
      RecordEvent(RecEvent::kCwndChange, RecEndpoint::kClient, xid, now,
                  /*a=*/cwnd_.window(), /*b=*/1);
    }
  }
  if (f.call.AttemptsExhausted(policy_.retry)) {
    Complete(xid, UnavailableError(StrFormat(
                      "no reply for xid %u after %u attempts", xid,
                      f.call.attempts)),
             {});
    return;
  }
  if (f.call.DeadlinePassed(now)) {
    Complete(xid, DeadlineExceededError(StrFormat(
                      "deadline passed after %u attempts for xid %u",
                      f.call.attempts, xid)),
             {});
    return;
  }
  TransmitCall(f);
}

void PipelinedTransport::ArmServerPoll() {
  auto next = channel_->NextDeliveryNanos(kAtoB);
  if (!next) {
    return;
  }
  if (server_poll_armed_ && server_poll_at_ <= *next) {
    return;  // an earlier (or equal) wakeup already covers this frame
  }
  if (server_poll_armed_) {
    events_->Cancel(server_poll_event_);
  }
  server_poll_armed_ = true;
  server_poll_at_ = *next;
  server_poll_event_ = Schedule(*next, [this]() {
    server_poll_armed_ = false;
    PumpServerSide();
  });
}

void PipelinedTransport::ArmClientPoll() {
  auto next = channel_->NextDeliveryNanos(kBtoA);
  if (!next) {
    return;
  }
  if (client_poll_armed_ && client_poll_at_ <= *next) {
    return;
  }
  if (client_poll_armed_) {
    events_->Cancel(client_poll_event_);
  }
  client_poll_armed_ = true;
  client_poll_at_ = *next;
  client_poll_event_ = Schedule(*next, [this]() {
    client_poll_armed_ = false;
    DrainReplies();
  });
}

void PipelinedTransport::PumpServerSide() {
  while (channel_->HasPending(kAtoB)) {
    auto request = channel_->Receive(kAtoB);
    if (!request.ok()) {
      continue;  // checksum discard — the sender's RTO covers it
    }
    auto handled =
        endpoint_.Handle(ByteSpan(request->data(), request->size()));
    if (!handled.ok()) {
      continue;  // unparseable or rejected: nothing to send back
    }
    if (handled->dup_hit) {
      // Cache hit costs no server CPU; the cached reply goes straight out.
      ++stats_.dup_cache_hits;
      channel_->Send(kBtoA, ByteSpan(handled->reply->data(),
                                     handled->reply->size()));
      ArmClientPoll();
      continue;
    }
    ++stats_.dup_cache_misses;
    // The one real execution occupies the server CPU; executions queue
    // behind each other on the busy-until horizon, and the reply enters
    // the wire only when this one finishes.
    uint64_t now = events_->clock()->now_nanos();
    uint64_t start = std::max(now, server_free_nanos_);
    uint64_t finish = start + server_model_.ProcessNanos(handled->reply->size());
    server_free_nanos_ = finish;
    // Modeled (scheduled, not elapsed) exec span — observed directly so
    // the histogram carries deterministic virtual durations.
    TraceObserve(TraceHistogram::kRpcDispatchNanos, finish - start);
    // The modeled CPU span lies in the clock's future; the recorder takes
    // explicit timestamps for exactly this reason.
    RecordEvent(RecEvent::kServerExecBegin, RecEndpoint::kServer,
                handled->xid, start, /*a=*/handled->reply->size());
    RecordEvent(RecEvent::kServerExecEnd, RecEndpoint::kServer,
                handled->xid, finish, /*a=*/handled->reply->size());
    Schedule(finish, [this, reply = *handled->reply]() {
      channel_->Send(kBtoA, ByteSpan(reply.data(), reply.size()));
      ArmClientPoll();
    });
  }
  ArmServerPoll();  // more requests may still be in flight
}

void PipelinedTransport::DrainReplies() {
  while (channel_->HasPending(kBtoA)) {
    auto datagram = channel_->Receive(kBtoA);
    if (!datagram.ok()) {
      // A corrupt reply has no attributable xid; treat it as a drop and
      // let that call's RTO fire (retry_on_corrupt=false is ignored on
      // the pipelined path — see the header). A drop is a loss signal:
      // feed AIMD the same way OnRto does so the window reacts to mangled
      // frames, not just vanished ones. The RTT estimator is left alone —
      // the frame did arrive, so the path's timing is not in question.
      ++stats_.corrupt_replies;
      TraceAdd(TraceCounter::kRpcCorruptReplies);
      if (policy_.retry.adaptive.enabled) {
        uint64_t now = events_->clock()->now_nanos();
        if (cwnd_.OnLoss(now, rtt_.rto_nanos())) {
          ++stats_.cwnd_decreases;
          RecordEvent(RecEvent::kCwndChange, RecEndpoint::kClient,
                      /*xid=*/0, now, /*a=*/cwnd_.window(), /*b=*/1);
        }
      }
      if (observer_ != nullptr) {
        observer_->OnCorruptReply();
      }
      continue;
    }
    auto xid = PeekXid(ByteSpan(datagram->data(), datagram->size()));
    if (!xid.ok()) {
      ++stats_.stale_replies;  // too short to match anything
      TraceAdd(TraceCounter::kRpcPipelineStaleReplies);
      continue;
    }
    auto it = in_flight_.find(*xid);
    if (it == in_flight_.end()) {
      // A late duplicate of a call that already completed (or failed).
      ++stats_.stale_replies;
      TraceAdd(TraceCounter::kRpcPipelineStaleReplies);
      RecordEvent(RecEvent::kReplyStale, RecEndpoint::kClient, *xid,
                  events_->clock()->now_nanos());
      continue;
    }
    if (it->second.call.DeadlinePassed(events_->clock()->now_nanos())) {
      RecordEvent(RecEvent::kReplyLate, RecEndpoint::kClient, *xid,
                  events_->clock()->now_nanos());
      Complete(*xid, DeadlineExceededError(StrFormat(
                         "reply for xid %u arrived after the deadline",
                         *xid)),
               {});
      continue;
    }
    uint64_t now = events_->clock()->now_nanos();
    if (policy_.retry.adaptive.enabled) {
      if (it->second.call.attempts == 1) {
        // Karn's rule: only a reply to a never-retransmitted request is an
        // unambiguous round-trip measurement.
        uint64_t sample = now - it->second.call.last_tx_nanos;
        rtt_.Sample(sample);
        ++stats_.rtt_samples;
        RecordEvent(RecEvent::kRttSample, RecEndpoint::kClient, *xid, now,
                    /*a=*/sample, /*b=*/rtt_.rto_nanos());
      } else {
        ++stats_.karn_skips;
        TraceAdd(TraceCounter::kRpcRttKarnSkips);
      }
      if (cwnd_.OnAck()) {
        ++stats_.cwnd_increases;
        RecordEvent(RecEvent::kCwndChange, RecEndpoint::kClient, *xid, now,
                    /*a=*/cwnd_.window(), /*b=*/0);
      }
    }
    RecordEvent(RecEvent::kReplyMatch, RecEndpoint::kClient, *xid, now,
                /*a=*/datagram->size());
    if (observer_ != nullptr) {
      observer_->OnReplyMatched(*xid);
    }
    Complete(*xid, Status::Ok(), std::move(*datagram));
  }
  ArmClientPoll();  // more replies may still be in flight
}

void PipelinedTransport::Complete(uint32_t xid, Status status,
                                  std::vector<uint8_t> reply) {
  auto it = in_flight_.find(xid);
  if (it == in_flight_.end()) {
    return;
  }
  if (it->second.rto_event != EventQueue::kInvalidEvent) {
    events_->Cancel(it->second.rto_event);
  }
  if (!start_order_.empty() && start_order_.front() != xid) {
    ++stats_.out_of_order_replies;
    TraceAdd(TraceCounter::kRpcPipelineOutOfOrder);
  }
  auto pos = std::find(start_order_.begin(), start_order_.end(), xid);
  if (pos != start_order_.end()) {
    start_order_.erase(pos);
  }
  if (status.ok()) {
    // flexwatch: submit-to-complete latency. The pipelined transport is
    // single-connection, so the series is untagged (dim 0).
    WatchObserve(WatchSeries::kCallLatency, 0,
                 events_->clock()->now_nanos() -
                     it->second.call.submit_nanos);
  } else if (status.code() == StatusCode::kUnavailable) {
    ++stats_.unavailable_failures;
    TraceAdd(TraceCounter::kRpcUnavailableFailures);
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.deadline_expiries;
    TraceAdd(TraceCounter::kRpcDeadlineExpiries);
  }
  RecordEvent(RecEvent::kCallComplete, RecEndpoint::kClient, xid,
              events_->clock()->now_nanos(),
              /*a=*/static_cast<uint64_t>(status.code()));
  Completion done = std::move(it->second.done);
  in_flight_.erase(it);
  StartNext();  // the freed slot admits the next queued call
  done(std::move(status), std::move(reply));
}

bool PipelinedTransport::Cancel(uint32_t xid) {
  RecorderReplicaScope replica_scope(replica_tag_);
  auto it = in_flight_.find(xid);
  if (it != in_flight_.end()) {
    if (it->second.rto_event != EventQueue::kInvalidEvent) {
      events_->Cancel(it->second.rto_event);
    }
    auto pos = std::find(start_order_.begin(), start_order_.end(), xid);
    if (pos != start_order_.end()) {
      start_order_.erase(pos);
    }
    in_flight_.erase(it);
    StartNext();  // the freed slot admits the next queued call
    return true;
  }
  for (auto p = pending_.begin(); p != pending_.end(); ++p) {
    if (p->call.xid == xid) {
      pending_.erase(p);
      return true;
    }
  }
  return false;
}

Status PipelinedTransport::Drive() {
  while (!in_flight_.empty() || !pending_.empty()) {
    if (!events_->RunNext()) {
      return InternalError(StrFormat(
          "pipelined transport stalled: %zu in flight, %zu queued, no "
          "events pending",
          in_flight_.size(), pending_.size()));
    }
  }
  return Status::Ok();
}

Status PipelinedTransport::Call(uint32_t xid, ByteSpan request,
                                std::vector<uint8_t>* reply) {
  Status result = Status::Ok();
  Submit(xid, request, [&result, reply](Status st,
                                        std::vector<uint8_t> r) {
    result = std::move(st);
    if (result.ok() && reply != nullptr) {
      *reply = std::move(r);
    }
  });
  Status driven = Drive();
  if (!driven.ok()) {
    return driven;
  }
  return result;
}

}  // namespace flexrpc
