#include "src/rpc/samedomain.h"

#include <cstring>

#include "src/marshal/value.h"
#include "src/pdl/apply.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

namespace {

bool IsScalarish(const Type* type) {
  const Type* t = type->Resolve();
  return IsScalarKind(t->kind()) || t->kind() == TypeKind::kEnum ||
         t->kind() == TypeKind::kObjRef || t->kind() == TypeKind::kVoid;
}

// Bytes a buffer-like value occupies (for copy accounting and block sizes).
size_t BufferBytes(const Type* type, const ArgValue& slot) {
  const Type* t = type->Resolve();
  switch (t->kind()) {
    case TypeKind::kString: {
      const char* s = static_cast<const char*>(slot.ptr());
      return (s == nullptr ? 0 : std::strlen(s)) + 1;
    }
    case TypeKind::kSequence: {
      const Type* elem = t->element()->Resolve();
      size_t stride = elem->kind() == TypeKind::kOctet ||
                              elem->kind() == TypeKind::kChar
                          ? 1
                          : elem->NativeSize();
      return slot.length * stride;
    }
    default:
      return t->NativeSize();
  }
}

}  // namespace

Result<std::vector<ParamPlan>> ComputeSameDomainPlan(
    const OperationDecl& op, const OpPresentation& client,
    const OpPresentation& server) {
  if (client.args_flattened || client.result_flattened ||
      server.args_flattened || server.result_flattened) {
    return UnimplementedError(
        "flattened presentations are not supported for same-domain "
        "invocation");
  }
  std::vector<ParamPlan> plan;
  for (size_t i = 0; i < op.params.size(); ++i) {
    const ParamDecl& decl = op.params[i];
    ParamPlan p;
    p.param_index = static_cast<int>(i);
    p.is_in = decl.dir != ParamDir::kOut;
    p.is_out = decl.dir != ParamDir::kIn;
    const ParamPresentation* cp = client.FindParam(decl.name);
    const ParamPresentation* sp = server.FindParam(decl.name);
    if (cp == nullptr || sp == nullptr) {
      return UnimplementedError(
          "same-domain invocation requires both sides to keep IDL "
          "parameter names");
    }
    if (p.is_in && !IsScalarish(decl.type)) {
      // §4.4.1: copy only when *neither* side relaxed its requirement.
      p.in_action = (cp->trashable || sp->preserved)
                        ? InAction::kPassPointer
                        : InAction::kCopyForServer;
    }
    if (p.is_out) {
      if (IsScalarish(decl.type)) {
        p.out_action = OutAction::kScalarCopy;
      } else {
        bool client_user = cp->alloc == AllocPolicy::kUser;
        bool server_user = sp->alloc == AllocPolicy::kUser;
        if (client_user && server_user) {
          p.out_action = OutAction::kCopyToClient;
        } else if (client_user) {
          p.out_action = OutAction::kFillClientBuffer;
        } else {
          // Server provides (kUser) or nobody constrained it: the buffer
          // the server produces is donated to the client either way.
          p.out_action = OutAction::kPassServerBuffer;
        }
      }
    }
    plan.push_back(p);
  }
  // The result behaves like an out parameter.
  const Type* result = op.result->Resolve();
  if (result->kind() != TypeKind::kVoid) {
    ParamPlan p;
    p.param_index = -1;
    p.is_out = true;
    if (IsScalarish(result)) {
      p.out_action = OutAction::kScalarCopy;
    } else {
      bool client_user = client.result.alloc == AllocPolicy::kUser;
      bool server_user = server.result.alloc == AllocPolicy::kUser;
      if (client_user && server_user) {
        p.out_action = OutAction::kCopyToClient;
      } else if (client_user) {
        p.out_action = OutAction::kFillClientBuffer;
      } else {
        p.out_action = OutAction::kPassServerBuffer;
      }
    }
    plan.push_back(p);
  }
  return plan;
}

Result<SameDomainConnection> SameDomainConnection::Bind(
    const OperationDecl& op, const OpPresentation& client,
    const OpPresentation& server, Arena* arena, WorkFunction work,
    PlanMode mode) {
  SameDomainConnection conn;
  conn.op_ = &op;
  conn.client_ = &client;
  conn.server_ = &server;
  conn.arena_ = arena;
  conn.work_ = std::move(work);
  conn.mode_ = mode;
  FLEXRPC_ASSIGN_OR_RETURN(conn.plan_,
                           ComputeSameDomainPlan(op, client, server));
  return conn;
}

Status SameDomainConnection::Call(ArgVec* args) {
  TraceAdd(TraceCounter::kSameDomainCalls);
  if (mode_ == PlanMode::kPerCall) {
    // The paper's "dumb" implementation: recompute invocation semantics on
    // every call.
    FLEXRPC_ASSIGN_OR_RETURN(std::vector<ParamPlan> plan,
                             ComputeSameDomainPlan(*op_, *client_, *server_));
    return Execute(plan, args);
  }
  return Execute(plan_, args);
}

Status SameDomainConnection::Execute(const std::vector<ParamPlan>& plan,
                                     ArgVec* args) {
  size_t result_slot = args->size() - 1;
  ArgVec server_args(args->size());
  // Stub prologue: marshal-by-reference into the server's view.
  std::vector<void*> stub_copies;
  for (const ParamPlan& p : plan) {
    size_t slot = p.param_index < 0 ? result_slot
                                    : static_cast<size_t>(p.param_index);
    const Type* type = p.param_index < 0
                           ? op_->result
                           : op_->params[static_cast<size_t>(p.param_index)]
                                 .type;
    ArgValue& client_slot = (*args)[slot];
    ArgValue& server_slot = server_args[slot];
    if (p.is_in) {
      if (IsScalarish(type)) {
        server_slot = client_slot;
      } else if (p.in_action == InAction::kPassPointer) {
        server_slot = client_slot;  // borrow
      } else {
        size_t bytes = BufferBytes(type, client_slot);
        void* copy = arena_->AllocateBlock(bytes > 0 ? bytes : 1);
        const Type* t = type->Resolve();
        if (t->kind() == TypeKind::kStruct || t->kind() == TypeKind::kUnion) {
          FLEXRPC_RETURN_IF_ERROR(
              CopyValue(arena_, t, client_slot.ptr(), copy));
        } else {
          std::memcpy(copy, client_slot.ptr(), bytes);
        }
        ++copies_;
        bytes_copied_ += bytes;
        TraceAdd(TraceCounter::kSameDomainCopies);
        TraceAdd(TraceCounter::kSameDomainCopyBytes, bytes);
        TraceAdd(TraceCounter::kDataCopies);
        TraceAdd(TraceCounter::kDataCopyBytes, bytes);
        ++stub_allocs_;
        stub_copies.push_back(copy);
        server_slot.set_ptr(copy);
        server_slot.length = client_slot.length;
        server_slot.capacity = static_cast<uint32_t>(bytes);
      }
    }
    if (p.is_out && p.out_action == OutAction::kFillClientBuffer) {
      // The server work function writes straight into the client's buffer.
      server_slot = client_slot;
    }
    // kPassServerBuffer / kCopyToClient: the server produces its own
    // buffer; its slot starts empty.
  }

  FLEXRPC_RETURN_IF_ERROR(work_(&server_args, arena_));

  // Stub epilogue: deliver out values per plan.
  for (const ParamPlan& p : plan) {
    if (!p.is_out) {
      continue;
    }
    size_t slot = p.param_index < 0 ? result_slot
                                    : static_cast<size_t>(p.param_index);
    const Type* type = p.param_index < 0
                           ? op_->result
                           : op_->params[static_cast<size_t>(p.param_index)]
                                 .type;
    ArgValue& client_slot = (*args)[slot];
    ArgValue& server_slot = server_args[slot];
    switch (p.out_action) {
      case OutAction::kScalarCopy:
        client_slot.scalar = server_slot.scalar;
        client_slot.length = server_slot.length;
        break;
      case OutAction::kPassServerBuffer:
        client_slot.set_ptr(server_slot.ptr());
        client_slot.length = server_slot.length;
        break;
      case OutAction::kFillClientBuffer:
        client_slot.length = server_slot.length;
        break;
      case OutAction::kCopyToClient: {
        size_t bytes = BufferBytes(type, server_slot);
        if (client_slot.capacity < bytes) {
          return ResourceExhaustedError(
              "client buffer too small for returned data");
        }
        std::memcpy(client_slot.ptr(), server_slot.ptr(), bytes);
        ++copies_;
        bytes_copied_ += bytes;
        TraceAdd(TraceCounter::kSameDomainCopies);
        TraceAdd(TraceCounter::kSameDomainCopyBytes, bytes);
        TraceAdd(TraceCounter::kDataCopies);
        TraceAdd(TraceCounter::kDataCopyBytes, bytes);
        client_slot.length = server_slot.length;
        // The server's donated buffer has been consumed.
        const ParamPresentation* sp =
            p.param_index < 0
                ? &server_->result
                : server_->FindParam(
                      op_->params[static_cast<size_t>(p.param_index)].name);
        if (sp->dealloc == DeallocPolicy::kAlways) {
          arena_->FreeBlock(server_slot.ptr());
        }
        break;
      }
    }
  }

  // Free the temporary copies the stub made for in parameters.
  for (void* copy : stub_copies) {
    arena_->FreeBlock(copy);
  }
  return Status::Ok();
}

}  // namespace flexrpc
