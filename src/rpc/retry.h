// RetryingTransport — at-most-once datagram RPC over a lossy channel.
//
// The specializable transports in this library assume the wire delivers;
// this layer is what sits underneath the call path when it does not. It
// implements the classic SunRPC/NFS-style at-most-once state machine:
//
//   client: transmit request (xid first) -> wait RTO on the virtual clock
//           -> retransmit with exponential backoff + deterministic jitter
//           -> give up with kUnavailable when the attempt budget is spent,
//              or kDeadlineExceeded when the per-call deadline passes
//              (including when a matching reply lands only after it).
//   server: every valid request datagram is looked up in an xid-keyed
//           reply cache. Miss -> execute the work function once, cache and
//           send the reply. Hit -> resend the cached reply without
//           re-executing (duplicate suppression: the work function runs at
//           most once per xid, even when requests arrive twice).
//
// Both halves are reusable pieces shared with the pipelined transport
// (src/rpc/pipeline.h): ClientCallState carries the per-call client state
// machine (attempt budget, RTO/backoff arithmetic, deadline), and
// AtMostOnceEndpoint is the server half (reply cache + execute-at-most-
// once). RetryingTransport composes them into the serial stop-and-wait
// loop.
//
// Degradation is always a Status, never a hang or a double execution:
//   kUnavailable       retry budget exhausted (nothing came back)
//   kDeadlineExceeded  virtual deadline passed while waiting
//   kDataLoss          structurally malformed reply, or — when
//                      retry_on_corrupt is off — a checksum failure
// Stale replies (late duplicates carrying an old xid) are discarded and
// the wait continues; checksum failures are treated as drops by default.
//
// All waiting happens on the channel's VirtualClock, so a "two second"
// deadline costs no host time and every timestamp is reproducible.

#ifndef FLEXRPC_SRC_RPC_RETRY_H_
#define FLEXRPC_SRC_RPC_RETRY_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/net/datagram.h"
#include "src/net/link.h"
#include "src/rpc/rtt.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace flexrpc {

struct RetryPolicy {
  uint32_t max_attempts = 8;                  // transmissions incl. first
  uint64_t initial_rto_nanos = 20'000'000;    // 20 ms
  uint64_t max_rto_nanos = 400'000'000;       // 400 ms backoff ceiling
  uint64_t deadline_nanos = 4'000'000'000;    // 4 s per call, virtual
  uint64_t jitter_seed = 42;                  // deterministic jitter stream
  bool retry_on_corrupt = true;  // false: surface checksum loss as kDataLoss
  // A/B switch (src/rpc/rtt.h): when adaptive.enabled, the per-call RTO
  // comes from a shared Jacobson/Karels estimator instead of the fixed
  // initial_rto_nanos/max_rto_nanos doubling schedule.
  AdaptiveConfig adaptive;
};

// Bounded server-side xid reply cache (the at-most-once memory). LRU
// eviction: Find and Insert both move the xid to the most-recently-used
// position, so an xid that is still being retransmitted cannot be pushed
// out by a burst of newer calls — evicting an in-flight xid would let a
// late retransmit re-execute the work and break exactly-once execution.
class ReplyCache {
 public:
  explicit ReplyCache(size_t capacity = 256) : capacity_(capacity) {}

  // nullptr on miss; the cached reply datagram on hit. A hit refreshes the
  // entry's LRU position (which is why Find is not const).
  const std::vector<uint8_t>* Find(uint32_t xid);
  void Insert(uint32_t xid, std::vector<uint8_t> reply);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  // How many entries LRU pressure has pushed out. An evicted xid that is
  // still being retransmitted is the at-most-once hazard the per-
  // connection sizing in AtMostOnceEndpoint exists to prevent.
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::vector<uint8_t> reply;
    std::list<uint32_t>::iterator slot;  // position in order_
  };

  size_t capacity_;
  uint64_t evictions_ = 0;
  std::unordered_map<uint32_t, Entry> entries_;
  std::list<uint32_t> order_;  // front = least recent, back = most recent
};

// The server side of one endpoint: consumes request datagrams, produces
// reply datagrams. Returning a non-OK status means the request was
// malformed; the transport drops it (a real server cannot reply to a
// datagram it cannot parse).
using DatagramHandler =
    std::function<Status(ByteSpan request, std::vector<uint8_t>* reply)>;

// Server half of the at-most-once state machine, shared by the serial,
// pipelined, and multiplexed transports. At-most-once state is keyed by
// the (connection, xid) pair: each connection gets its own xid namespace
// and its own ReplyCache of cache_capacity entries, so two clients
// colliding on an xid cannot poison each other's dedup state, total dedup
// memory scales with the number of active connections, and one
// connection's burst can never evict another connection's in-flight xid.
// The single-argument Handle keeps the pre-mux contract — everything on
// connection 0 — so the serial and pipelined transports are unchanged.
class AtMostOnceEndpoint {
 public:
  struct Handled {
    uint32_t xid = 0;
    bool dup_hit = false;  // true: reply came from the cache, not execution
    // The reply datagram to (re)send. Points into the cache; valid until
    // the next Handle call.
    const std::vector<uint8_t>* reply = nullptr;
  };

  AtMostOnceEndpoint(DatagramHandler handler, size_t cache_capacity = 256)
      : handler_(std::move(handler)), cache_capacity_(cache_capacity) {}

  // Processes one request datagram on `conn`'s at-most-once state. Non-OK
  // means the datagram was unparseable or the handler rejected it —
  // nothing executed beyond the (at most one) handler attempt, nothing to
  // send.
  Result<Handled> Handle(uint32_t conn, ByteSpan request);
  Result<Handled> Handle(ByteSpan request) { return Handle(0, request); }

  // Dedup probe without execution: the cached reply for (conn, xid), or
  // nullptr. A hit counts as a dup-cache hit — the caller resends it (the
  // dispatch loop probes before admission so a duplicate never occupies a
  // worker or a run-queue slot).
  const std::vector<uint8_t>* FindCached(uint32_t conn, uint32_t xid);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }  // == handler executions
  // Executions of an xid this connection had already executed — the
  // entry was evicted mid-retransmit and at-most-once was violated. The
  // fleet soak gates this at zero; see ConnState for how it is detected.
  uint64_t evicted_reexecs() const { return evicted_reexecs_; }
  uint64_t evictions() const;  // summed over all connection caches
  ReplyCache& cache() { return CacheFor(0); }  // the pre-mux conn-0 cache
  ReplyCache& CacheFor(uint32_t conn);
  size_t connections() const { return conns_.size(); }

 private:
  struct ConnState {
    explicit ConnState(size_t capacity) : cache(capacity) {}
    ReplyCache cache;
    // Exact executed-xid memory backing the eviction hazard detector:
    // every xid <= executed_upto has executed, plus the out-of-order set
    // above it (gaps close as delayed first deliveries land, so the set
    // stays small under monotonic per-connection allocation). This
    // cannot replace the cache — it remembers THAT an xid executed, not
    // the reply bytes — but it can prove a re-execution exactly.
    uint64_t executed_upto = 0;
    std::set<uint32_t> executed_above;

    bool AlreadyExecuted(uint32_t xid) const;
    void MarkExecuted(uint32_t xid);
  };

  ConnState& StateFor(uint32_t conn);

  DatagramHandler handler_;
  size_t cache_capacity_;
  std::map<uint32_t, ConnState> conns_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evicted_reexecs_ = 0;
};

// Client half of the at-most-once state machine for one call: the attempt
// budget, the RTO/backoff/jitter arithmetic, and the absolute deadline.
// The serial transport steps it inside a blocking loop; the pipelined
// transport steps one per in-flight call from timer events.
struct ClientCallState {
  uint32_t xid = 0;
  std::vector<uint8_t> request;  // owned: retransmits outlive the caller
  uint32_t attempts = 0;         // transmissions so far
  uint64_t rto_nanos = 0;
  uint64_t deadline_nanos = 0;   // absolute, on the virtual clock
  uint64_t submit_nanos = 0;     // when Arm ran — submit-to-complete
                                 // latency for flexwatch series
  uint64_t last_tx_nanos = 0;    // most recent transmission time — an RTT
                                 // sample is reply time minus this, valid
                                 // only when attempts == 1 (Karn's rule)

  void Arm(const RetryPolicy& policy, uint64_t now_nanos) {
    attempts = 0;
    rto_nanos = policy.initial_rto_nanos;
    submit_nanos = now_nanos;
    deadline_nanos = now_nanos + policy.deadline_nanos;
  }

  bool AttemptsExhausted(const RetryPolicy& policy) const {
    return attempts >= policy.max_attempts;
  }

  bool DeadlinePassed(uint64_t now_nanos) const {
    return now_nanos >= deadline_nanos;
  }

  // How long to wait before the next retransmit: the current RTO plus up
  // to 25% deterministic jitter, clipped so the wait never overshoots the
  // deadline (`*expires` reports the clip — the wait ends the call).
  // Doubles the RTO, capped at the policy ceiling.
  uint64_t NextBackoffWait(const RetryPolicy& policy, Rng* jitter,
                           uint64_t now_nanos, bool* expires);
};

// Shared wait arithmetic for an explicitly supplied RTO (the adaptive
// path, where the estimator owns backoff): RTO plus up to 25%
// deterministic jitter, clipped at the deadline with `*expires` reporting
// the clip. Returns 0 with *expires=true when the deadline already passed.
uint64_t ClipRtoWait(uint64_t rto_nanos, uint64_t deadline_nanos,
                     Rng* jitter, uint64_t now_nanos, bool* expires);

class RetryingTransport {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t retransmits = 0;
    uint64_t backoff_nanos = 0;
    uint64_t stale_replies = 0;
    uint64_t corrupt_replies = 0;
    uint64_t dup_cache_hits = 0;
    uint64_t dup_cache_misses = 0;   // == server work executions
    uint64_t deadline_expiries = 0;
    uint64_t unavailable_failures = 0;
    uint64_t rtt_samples = 0;        // clean samples fed to the estimator
    uint64_t karn_skips = 0;         // ambiguous replies excluded from it
  };

  // `channel` and everything reachable from `handler` must outlive the
  // transport. `server_model` charges the remote CPU per executed call.
  RetryingTransport(DatagramChannel* channel, DatagramHandler handler,
                    RemoteServerModel server_model, RetryPolicy policy);

  // One at-most-once call. `xid` must be the first (big-endian) word of
  // `request` — the SunRPC layout — and unique per logical call; reply
  // matching and duplicate suppression key on it. On OK, `*reply` holds
  // the matched reply datagram (xid still in front).
  Status Call(uint32_t xid, ByteSpan request, std::vector<uint8_t>* reply);

  const Stats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }
  VirtualClock* clock() { return channel_->clock(); }
  // The shared estimator (meaningful when policy.adaptive.enabled): RTT
  // state accumulates across calls on this transport, like a TCP
  // connection's, not per call.
  const RttEstimator& rtt() const { return rtt_; }

 private:
  // Drains the server-side queue: validates, deduplicates, executes,
  // replies. Runs on the caller's thread (single-threaded simulation).
  void PumpServer();

  DatagramChannel* channel_;
  AtMostOnceEndpoint endpoint_;
  RemoteServerModel server_model_;
  RetryPolicy policy_;
  Rng jitter_;
  RttEstimator rtt_;
  Stats stats_;
};

// Reads the leading big-endian word of a datagram — the xid slot shared by
// SunRPC calls and replies. kDataLoss when the datagram is too short.
Result<uint32_t> PeekXid(ByteSpan datagram);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_RETRY_H_
