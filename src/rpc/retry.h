// RetryingTransport — at-most-once datagram RPC over a lossy channel.
//
// The specializable transports in this library assume the wire delivers;
// this layer is what sits underneath the call path when it does not. It
// implements the classic SunRPC/NFS-style at-most-once state machine:
//
//   client: transmit request (xid first) -> wait RTO on the virtual clock
//           -> retransmit with exponential backoff + deterministic jitter
//           -> give up with kUnavailable when the attempt budget is spent,
//              or kDeadlineExceeded when the per-call deadline passes.
//   server: every valid request datagram is looked up in an xid-keyed
//           reply cache. Miss -> execute the work function once, cache and
//           send the reply. Hit -> resend the cached reply without
//           re-executing (duplicate suppression: the work function runs at
//           most once per xid, even when requests arrive twice).
//
// Degradation is always a Status, never a hang or a double execution:
//   kUnavailable       retry budget exhausted (nothing came back)
//   kDeadlineExceeded  virtual deadline passed while waiting
//   kDataLoss          structurally malformed reply, or — when
//                      retry_on_corrupt is off — a checksum failure
// Stale replies (late duplicates carrying an old xid) are discarded and
// the wait continues; checksum failures are treated as drops by default.
//
// All waiting happens on the channel's VirtualClock, so a "two second"
// deadline costs no host time and every timestamp is reproducible.

#ifndef FLEXRPC_SRC_RPC_RETRY_H_
#define FLEXRPC_SRC_RPC_RETRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/datagram.h"
#include "src/net/link.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace flexrpc {

struct RetryPolicy {
  uint32_t max_attempts = 8;                  // transmissions incl. first
  uint64_t initial_rto_nanos = 20'000'000;    // 20 ms
  uint64_t max_rto_nanos = 400'000'000;       // 400 ms backoff ceiling
  uint64_t deadline_nanos = 4'000'000'000;    // 4 s per call, virtual
  uint64_t jitter_seed = 42;                  // deterministic jitter stream
  bool retry_on_corrupt = true;  // false: surface checksum loss as kDataLoss
};

// Bounded server-side xid reply cache (the at-most-once memory). FIFO
// eviction: old xids age out once `capacity` newer calls completed, which
// mirrors the fixed-size duplicate caches in real NFS servers.
class ReplyCache {
 public:
  explicit ReplyCache(size_t capacity = 256) : capacity_(capacity) {}

  // nullptr on miss; the cached reply datagram on hit.
  const std::vector<uint8_t>* Find(uint32_t xid) const;
  void Insert(uint32_t xid, std::vector<uint8_t> reply);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::unordered_map<uint32_t, std::vector<uint8_t>> entries_;
  std::deque<uint32_t> order_;
};

// The server side of one endpoint: consumes request datagrams, produces
// reply datagrams. Returning a non-OK status means the request was
// malformed; the transport drops it (a real server cannot reply to a
// datagram it cannot parse).
using DatagramHandler =
    std::function<Status(ByteSpan request, std::vector<uint8_t>* reply)>;

class RetryingTransport {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t retransmits = 0;
    uint64_t backoff_nanos = 0;
    uint64_t stale_replies = 0;
    uint64_t corrupt_replies = 0;
    uint64_t dup_cache_hits = 0;
    uint64_t dup_cache_misses = 0;   // == server work executions
    uint64_t deadline_expiries = 0;
    uint64_t unavailable_failures = 0;
  };

  // `channel` and everything reachable from `handler` must outlive the
  // transport. `server_model` charges the remote CPU per executed call.
  RetryingTransport(DatagramChannel* channel, DatagramHandler handler,
                    RemoteServerModel server_model, RetryPolicy policy);

  // One at-most-once call. `xid` must be the first (big-endian) word of
  // `request` — the SunRPC layout — and unique per logical call; reply
  // matching and duplicate suppression key on it. On OK, `*reply` holds
  // the matched reply datagram (xid still in front).
  Status Call(uint32_t xid, ByteSpan request, std::vector<uint8_t>* reply);

  const Stats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }
  VirtualClock* clock() { return channel_->clock(); }

 private:
  // Drains the server-side queue: validates, deduplicates, executes,
  // replies. Runs on the caller's thread (single-threaded simulation).
  void PumpServer();

  DatagramChannel* channel_;
  DatagramHandler handler_;
  RemoteServerModel server_model_;
  RetryPolicy policy_;
  Rng jitter_;
  ReplyCache reply_cache_;
  Stats stats_;
};

// Reads the leading big-endian word of a datagram — the xid slot shared by
// SunRPC calls and replies. kDataLoss when the datagram is too short.
Result<uint32_t> PeekXid(ByteSpan datagram);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_RETRY_H_
