#include "src/rpc/retry.h"

#include <algorithm>

#include "src/support/recorder.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

const std::vector<uint8_t>* ReplyCache::Find(uint32_t xid) {
  auto it = entries_.find(xid);
  if (it == entries_.end()) {
    return nullptr;
  }
  // Refresh: a looked-up xid is being retransmitted right now and must not
  // be the next eviction victim.
  order_.splice(order_.end(), order_, it->second.slot);
  return &it->second.reply;
}

void ReplyCache::Insert(uint32_t xid, std::vector<uint8_t> reply) {
  auto it = entries_.find(xid);
  if (it != entries_.end()) {
    // Overwrite refreshes the LRU slot too — a re-inserted xid is as live
    // as a freshly inserted one.
    it->second.reply = std::move(reply);
    order_.splice(order_.end(), order_, it->second.slot);
    return;
  }
  if (entries_.size() >= capacity_ && !order_.empty()) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++evictions_;
    TraceAdd(TraceCounter::kRpcDupCacheEvictions);
  }
  order_.push_back(xid);
  entries_.emplace(xid, Entry{std::move(reply), std::prev(order_.end())});
}

Result<uint32_t> PeekXid(ByteSpan datagram) {
  if (datagram.size() < 4) {
    return DataLossError("datagram too short to carry an xid");
  }
  return (static_cast<uint32_t>(datagram[0]) << 24) |
         (static_cast<uint32_t>(datagram[1]) << 16) |
         (static_cast<uint32_t>(datagram[2]) << 8) |
         static_cast<uint32_t>(datagram[3]);
}

bool AtMostOnceEndpoint::ConnState::AlreadyExecuted(uint32_t xid) const {
  return xid <= executed_upto || executed_above.count(xid) > 0;
}

void AtMostOnceEndpoint::ConnState::MarkExecuted(uint32_t xid) {
  if (xid <= executed_upto) {
    return;
  }
  if (xid == executed_upto + 1) {
    executed_upto = xid;
    // Close the gap: out-of-order executions become contiguous.
    auto it = executed_above.begin();
    while (it != executed_above.end() && *it == executed_upto + 1) {
      executed_upto = *it;
      it = executed_above.erase(it);
    }
    return;
  }
  executed_above.insert(xid);
}

AtMostOnceEndpoint::ConnState& AtMostOnceEndpoint::StateFor(uint32_t conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    it = conns_.emplace(conn, ConnState(cache_capacity_)).first;
  }
  return it->second;
}

ReplyCache& AtMostOnceEndpoint::CacheFor(uint32_t conn) {
  return StateFor(conn).cache;
}

uint64_t AtMostOnceEndpoint::evictions() const {
  uint64_t total = 0;
  for (const auto& [conn, state] : conns_) {
    total += state.cache.evictions();
  }
  return total;
}

const std::vector<uint8_t>* AtMostOnceEndpoint::FindCached(uint32_t conn,
                                                           uint32_t xid) {
  const std::vector<uint8_t>* cached = StateFor(conn).cache.Find(xid);
  if (cached != nullptr) {
    ++hits_;
    TraceAdd(TraceCounter::kRpcDupCacheHits);
  }
  return cached;
}

Result<AtMostOnceEndpoint::Handled> AtMostOnceEndpoint::Handle(
    uint32_t conn, ByteSpan request) {
  auto xid = PeekXid(request);
  if (!xid.ok()) {
    return xid.status();  // unparseable datagram: nothing to reply to
  }
  ConnState& state = StateFor(conn);
  if (const std::vector<uint8_t>* cached = state.cache.Find(*xid)) {
    // Duplicate request: hand back the cached reply, do NOT re-execute.
    ++hits_;
    TraceAdd(TraceCounter::kRpcDupCacheHits);
    return Handled{*xid, true, cached};
  }
  std::vector<uint8_t> reply;
  Status st = handler_(request, &reply);
  if (!st.ok()) {
    return st;  // malformed request body: drop, as a real server would
  }
  if (state.AlreadyExecuted(*xid)) {
    // The cache missed on an xid this connection has executed before: LRU
    // churn evicted the entry while the client was still retransmitting,
    // and the handler just ran a second time. At-most-once is broken —
    // count it loudly so the soak tests can gate it at zero.
    ++evicted_reexecs_;
    TraceAdd(TraceCounter::kRpcDupCacheEvictedReexecs);
  }
  state.MarkExecuted(*xid);
  ++misses_;
  TraceAdd(TraceCounter::kRpcDupCacheMisses);
  state.cache.Insert(*xid, std::move(reply));
  return Handled{*xid, false, state.cache.Find(*xid)};
}

uint64_t ClipRtoWait(uint64_t rto_nanos, uint64_t deadline_nanos,
                     Rng* jitter, uint64_t now_nanos, bool* expires) {
  if (now_nanos >= deadline_nanos) {
    *expires = true;
    return 0;
  }
  uint64_t wait = rto_nanos + jitter->NextBelow(rto_nanos / 4 + 1);
  *expires = now_nanos + wait >= deadline_nanos;
  if (*expires) {
    wait = deadline_nanos - now_nanos;
  }
  return wait;
}

uint64_t ClientCallState::NextBackoffWait(const RetryPolicy& policy,
                                          Rng* jitter, uint64_t now_nanos,
                                          bool* expires) {
  uint64_t wait =
      ClipRtoWait(rto_nanos, deadline_nanos, jitter, now_nanos, expires);
  rto_nanos = std::min(rto_nanos * 2, policy.max_rto_nanos);
  return wait;
}

RetryingTransport::RetryingTransport(DatagramChannel* channel,
                                     DatagramHandler handler,
                                     RemoteServerModel server_model,
                                     RetryPolicy policy)
    : channel_(channel), endpoint_(std::move(handler)),
      server_model_(server_model), policy_(policy),
      jitter_(policy.jitter_seed), rtt_(policy.adaptive.rtt) {}

void RetryingTransport::PumpServer() {
  while (channel_->HasPending(DatagramChannel::Dir::kAtoB)) {
    auto request = channel_->Receive(DatagramChannel::Dir::kAtoB);
    if (!request.ok()) {
      continue;  // checksum discard — the retransmit loop covers it
    }
    auto handled =
        endpoint_.Handle(ByteSpan(request->data(), request->size()));
    if (!handled.ok()) {
      continue;  // unparseable or rejected: nothing to send back
    }
    if (handled->dup_hit) {
      ++stats_.dup_cache_hits;
    } else {
      ++stats_.dup_cache_misses;
      // Charge the remote CPU for the one real execution. The span is
      // virtual-clock-fed: Process advances the clock inline, and a
      // wall-clock TraceSpan here would leak host nanos into artifacts
      // that are gated on byte identity.
      VirtualTraceSpan exec_span(TraceHistogram::kRpcDispatchNanos,
                                 channel_->clock());
      RecordEvent(RecEvent::kServerExecBegin, RecEndpoint::kServer,
                  handled->xid, channel_->clock()->now_nanos(),
                  /*a=*/handled->reply->size());
      server_model_.Process(handled->reply->size(), channel_->clock());
      RecordEvent(RecEvent::kServerExecEnd, RecEndpoint::kServer,
                  handled->xid, channel_->clock()->now_nanos(),
                  /*a=*/handled->reply->size());
    }
    channel_->Send(DatagramChannel::Dir::kBtoA,
                   ByteSpan(handled->reply->data(), handled->reply->size()));
  }
}

Status RetryingTransport::Call(uint32_t xid, ByteSpan request,
                               std::vector<uint8_t>* reply) {
  ++stats_.calls;
  VirtualClock* clock = channel_->clock();
  RecordEvent(RecEvent::kCallSubmit, RecEndpoint::kClient, xid,
              clock->now_nanos(), /*a=*/request.size());
  // Every exit path stamps the call's completion with its status code.
  auto complete = [&](Status st) {
    RecordEvent(RecEvent::kCallComplete, RecEndpoint::kClient, xid,
                clock->now_nanos(), /*a=*/static_cast<uint64_t>(st.code()));
    return st;
  };
  ClientCallState call;
  call.xid = xid;
  call.request.assign(request.begin(), request.end());
  call.Arm(policy_, clock->now_nanos());

  for (;;) {
    ++call.attempts;
    if (call.attempts > 1) {
      ++stats_.retransmits;
      TraceAdd(TraceCounter::kRpcRetransmits);
      RecordEvent(RecEvent::kRetransmit, RecEndpoint::kClient, xid,
                  clock->now_nanos(), /*a=*/call.attempts);
    }
    call.last_tx_nanos = clock->now_nanos();
    channel_->Send(DatagramChannel::Dir::kAtoB,
                   ByteSpan(call.request.data(), call.request.size()));
    PumpServer();

    // Drain everything the wire delivered before the RTO would fire.
    while (channel_->HasPending(DatagramChannel::Dir::kBtoA)) {
      auto datagram = channel_->Receive(DatagramChannel::Dir::kBtoA);
      if (!datagram.ok()) {
        ++stats_.corrupt_replies;
        TraceAdd(TraceCounter::kRpcCorruptReplies);
        if (!policy_.retry_on_corrupt) {
          return complete(DataLossError(StrFormat(
              "reply for xid %u failed its checksum", xid)));
        }
        continue;  // treat as a drop; the retransmit loop covers it
      }
      auto reply_xid = PeekXid(ByteSpan(datagram->data(), datagram->size()));
      if (!reply_xid.ok()) {
        return complete(reply_xid.status());  // structurally malformed reply
      }
      if (*reply_xid != xid) {
        // A late duplicate of an earlier call: discard, keep waiting.
        ++stats_.stale_replies;
        TraceAdd(TraceCounter::kRpcStaleReplies);
        RecordEvent(RecEvent::kReplyStale, RecEndpoint::kClient, *reply_xid,
                    clock->now_nanos());
        continue;
      }
      // The wire and the server advanced the clock while we waited; a
      // reply that arrives after the deadline is as dead as no reply at
      // all — the caller already moved on.
      if (call.DeadlinePassed(clock->now_nanos())) {
        ++stats_.deadline_expiries;
        TraceAdd(TraceCounter::kRpcDeadlineExpiries);
        RecordEvent(RecEvent::kReplyLate, RecEndpoint::kClient, xid,
                    clock->now_nanos());
        return complete(DeadlineExceededError(StrFormat(
            "reply for xid %u arrived after the deadline", xid)));
      }
      if (policy_.adaptive.enabled) {
        // Karn's rule: only a reply to a never-retransmitted request is an
        // unambiguous round-trip measurement.
        if (call.attempts == 1) {
          uint64_t sample = clock->now_nanos() - call.last_tx_nanos;
          rtt_.Sample(sample);
          ++stats_.rtt_samples;
          RecordEvent(RecEvent::kRttSample, RecEndpoint::kClient, xid,
                      clock->now_nanos(), /*a=*/sample,
                      /*b=*/rtt_.rto_nanos());
        } else {
          ++stats_.karn_skips;
          TraceAdd(TraceCounter::kRpcRttKarnSkips);
        }
      }
      RecordEvent(RecEvent::kReplyMatch, RecEndpoint::kClient, xid,
                  clock->now_nanos(), /*a=*/datagram->size());
      *reply = std::move(*datagram);
      return complete(Status::Ok());
    }

    // Nothing matched. Give up, or back off and retransmit.
    if (call.AttemptsExhausted(policy_)) {
      ++stats_.unavailable_failures;
      TraceAdd(TraceCounter::kRpcUnavailableFailures);
      return complete(UnavailableError(StrFormat(
          "no reply for xid %u after %u attempts", xid, call.attempts)));
    }
    uint64_t now = clock->now_nanos();
    if (call.DeadlinePassed(now)) {
      ++stats_.deadline_expiries;
      TraceAdd(TraceCounter::kRpcDeadlineExpiries);
      return complete(DeadlineExceededError(StrFormat(
          "deadline passed after %u attempts for xid %u", call.attempts,
          xid)));
    }
    bool expires = false;
    uint64_t wait;
    if (policy_.adaptive.enabled) {
      wait = ClipRtoWait(rtt_.rto_nanos(), call.deadline_nanos, &jitter_,
                         now, &expires);
      // The wait we are about to sit out IS a retransmission timeout:
      // Karn-backoff the estimator for the next one.
      rtt_.Backoff();
    } else {
      wait = call.NextBackoffWait(policy_, &jitter_, now, &expires);
    }
    clock->AdvanceNanos(wait);
    stats_.backoff_nanos += wait;
    TraceAdd(TraceCounter::kRpcBackoffNanos, wait);
    if (expires) {
      ++stats_.deadline_expiries;
      TraceAdd(TraceCounter::kRpcDeadlineExpiries);
      return complete(DeadlineExceededError(StrFormat(
          "deadline passed while backing off for xid %u", xid)));
    }
    RecordEvent(RecEvent::kRtoFire, RecEndpoint::kClient, xid,
                clock->now_nanos(), /*a=*/call.attempts);
  }
}

}  // namespace flexrpc
