#include "src/rpc/retry.h"

#include <algorithm>

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

const std::vector<uint8_t>* ReplyCache::Find(uint32_t xid) const {
  auto it = entries_.find(xid);
  return it == entries_.end() ? nullptr : &it->second;
}

void ReplyCache::Insert(uint32_t xid, std::vector<uint8_t> reply) {
  if (entries_.count(xid) != 0) {
    entries_[xid] = std::move(reply);
    return;
  }
  if (entries_.size() >= capacity_ && !order_.empty()) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  entries_.emplace(xid, std::move(reply));
  order_.push_back(xid);
}

Result<uint32_t> PeekXid(ByteSpan datagram) {
  if (datagram.size() < 4) {
    return DataLossError("datagram too short to carry an xid");
  }
  return (static_cast<uint32_t>(datagram[0]) << 24) |
         (static_cast<uint32_t>(datagram[1]) << 16) |
         (static_cast<uint32_t>(datagram[2]) << 8) |
         static_cast<uint32_t>(datagram[3]);
}

RetryingTransport::RetryingTransport(DatagramChannel* channel,
                                     DatagramHandler handler,
                                     RemoteServerModel server_model,
                                     RetryPolicy policy)
    : channel_(channel), handler_(std::move(handler)),
      server_model_(server_model), policy_(policy),
      jitter_(policy.jitter_seed) {}

void RetryingTransport::PumpServer() {
  while (channel_->HasPending(DatagramChannel::Dir::kAtoB)) {
    auto request = channel_->Receive(DatagramChannel::Dir::kAtoB);
    if (!request.ok()) {
      continue;  // checksum discard — the retransmit loop covers it
    }
    auto xid = PeekXid(ByteSpan(request->data(), request->size()));
    if (!xid.ok()) {
      continue;  // unparseable datagram: nothing to reply to
    }
    if (const std::vector<uint8_t>* cached = reply_cache_.Find(*xid)) {
      // Duplicate request: resend the cached reply, do NOT re-execute.
      ++stats_.dup_cache_hits;
      TraceAdd(TraceCounter::kRpcDupCacheHits);
      channel_->Send(DatagramChannel::Dir::kBtoA,
                     ByteSpan(cached->data(), cached->size()));
      continue;
    }
    std::vector<uint8_t> reply;
    Status st =
        handler_(ByteSpan(request->data(), request->size()), &reply);
    if (!st.ok()) {
      continue;  // malformed request body: drop, as a real server would
    }
    ++stats_.dup_cache_misses;
    TraceAdd(TraceCounter::kRpcDupCacheMisses);
    // Charge the remote CPU for the one real execution.
    server_model_.Process(reply.size(), channel_->clock());
    reply_cache_.Insert(*xid, reply);
    channel_->Send(DatagramChannel::Dir::kBtoA,
                   ByteSpan(reply.data(), reply.size()));
  }
}

Status RetryingTransport::Call(uint32_t xid, ByteSpan request,
                               std::vector<uint8_t>* reply) {
  ++stats_.calls;
  VirtualClock* clock = channel_->clock();
  const uint64_t deadline = clock->now_nanos() + policy_.deadline_nanos;
  uint64_t rto = policy_.initial_rto_nanos;

  for (uint32_t attempt = 1;; ++attempt) {
    if (attempt > 1) {
      ++stats_.retransmits;
      TraceAdd(TraceCounter::kRpcRetransmits);
    }
    channel_->Send(DatagramChannel::Dir::kAtoB, request);
    PumpServer();

    // Drain everything the wire delivered before the RTO would fire.
    while (channel_->HasPending(DatagramChannel::Dir::kBtoA)) {
      auto datagram = channel_->Receive(DatagramChannel::Dir::kBtoA);
      if (!datagram.ok()) {
        ++stats_.corrupt_replies;
        TraceAdd(TraceCounter::kRpcCorruptReplies);
        if (!policy_.retry_on_corrupt) {
          return DataLossError(StrFormat(
              "reply for xid %u failed its checksum", xid));
        }
        continue;  // treat as a drop; the retransmit loop covers it
      }
      auto reply_xid = PeekXid(ByteSpan(datagram->data(), datagram->size()));
      if (!reply_xid.ok()) {
        return reply_xid.status();  // structurally malformed reply
      }
      if (*reply_xid != xid) {
        // A late duplicate of an earlier call: discard, keep waiting.
        ++stats_.stale_replies;
        TraceAdd(TraceCounter::kRpcStaleReplies);
        continue;
      }
      *reply = std::move(*datagram);
      return Status::Ok();
    }

    // Nothing matched. Give up, or back off and retransmit.
    if (attempt >= policy_.max_attempts) {
      ++stats_.unavailable_failures;
      TraceAdd(TraceCounter::kRpcUnavailableFailures);
      return UnavailableError(StrFormat(
          "no reply for xid %u after %u attempts", xid, attempt));
    }
    uint64_t now = clock->now_nanos();
    if (now >= deadline) {
      ++stats_.deadline_expiries;
      TraceAdd(TraceCounter::kRpcDeadlineExpiries);
      return DeadlineExceededError(StrFormat(
          "deadline passed after %u attempts for xid %u", attempt, xid));
    }
    // Full backoff plus up to 25% deterministic jitter, clipped so the
    // wait never overshoots the deadline.
    uint64_t wait = rto + jitter_.NextBelow(rto / 4 + 1);
    bool expires = now + wait >= deadline;
    if (expires) {
      wait = deadline - now;
    }
    clock->AdvanceNanos(wait);
    stats_.backoff_nanos += wait;
    TraceAdd(TraceCounter::kRpcBackoffNanos, wait);
    if (expires) {
      ++stats_.deadline_expiries;
      TraceAdd(TraceCounter::kRpcDeadlineExpiries);
      return DeadlineExceededError(StrFormat(
          "deadline passed while backing off for xid %u", xid));
    }
    rto = std::min(rto * 2, policy_.max_rto_nanos);
  }
}

}  // namespace flexrpc
