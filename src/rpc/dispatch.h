// ServerDispatch — the server half of the multiplexed transport: a
// modeled worker pool behind bounded queues with an explicit shed policy.
//
// ConnectionMux (src/rpc/mux.h) puts many connections' requests on one
// channel; this loop is what stands between that channel and the handler.
// Per poll event it drains arrived frames and, for each one:
//
//   1. accept gate   — at most accept_limit frames admitted per poll;
//                      overflow is shed (dropped without reply, counted,
//                      recorded as kDispatchShed b=1). Models a bounded
//                      kernel accept/receive queue.
//   2. dedup probe   — the conn-aware AtMostOnceEndpoint is probed
//                      (FindCached) BEFORE admission control, so a
//                      retransmit of a completed call is answered from
//                      the reply cache at zero worker cost and can never
//                      be shed into a livelock with the client's RTO.
//   3. run-queue gate — executions whose start time still lies in the
//                      future form the run queue; when its depth reaches
//                      run_queue_limit the request is shed (kDispatchShed
//                      b=2) instead of executed. Shedding BEFORE
//                      execution preserves at-most-once: the xid never
//                      enters the executed set, so the client's
//                      retransmit executes it cleanly later.
//   4. execution     — the handler runs (at most once per (conn, xid)),
//                      the reply is assigned to the earliest-free worker
//                      of a pool of `workers` modeled CPUs, occupies it
//                      for RemoteServerModel::ProcessNanos(reply size),
//                      and is sent when the worker finishes.
//
// Dropped/shed requests are invisible to the client except as silence —
// exactly a UDP server under overload — and the mux's RTO machinery
// carries the retry. The queue-depth histogram (rpc.dispatch.queue_depth)
// samples the run-queue depth at every admission; flexrec locates the
// saturation knee from it and from queued-vs-exec phase attribution.

#ifndef FLEXRPC_SRC_RPC_DISPATCH_H_
#define FLEXRPC_SRC_RPC_DISPATCH_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/net/datagram.h"
#include "src/net/link.h"
#include "src/rpc/retry.h"
#include "src/support/event_queue.h"
#include "src/support/status.h"

namespace flexrpc {

struct DispatchPolicy {
  uint32_t workers = 4;           // modeled server CPUs
  size_t accept_limit = 128;      // frames admitted per poll event
  size_t run_queue_limit = 64;    // waiting-to-start executions
  size_t cache_capacity = 64;     // per-connection reply-cache entries
  RemoteServerModel::Config service;  // per-call/per-byte execution cost
};

class ServerDispatch {
 public:
  struct Stats {
    uint64_t accepted = 0;       // frames past the accept gate
    uint64_t executions = 0;     // handler runs (== dedup misses)
    uint64_t dup_replies = 0;    // answered from the reply cache
    uint64_t shed_accept = 0;    // shed at the accept gate
    uint64_t shed_run = 0;       // shed at the run-queue gate
    uint64_t max_queue_depth = 0;
    uint64_t busy_nanos = 0;     // summed worker occupancy
    uint64_t events = 0;         // event-queue dispatches
  };

  // `channel` and `events` must outlive the dispatch (and share the
  // clock with the mux on the other end).
  ServerDispatch(DatagramChannel* channel, DatagramHandler handler,
                 DispatchPolicy policy, EventQueue* events);

  // Arms the accept poll — the mux calls this (via its request_listener
  // hook) after every request transmission.
  void Poke();

  // Invoked after every reply send; the fleet wires it to
  // ConnectionMux::Poke so the client polls the arrival.
  void set_reply_listener(std::function<void()> fn) {
    reply_listener_ = std::move(fn);
  }

  const Stats& stats() const { return stats_; }
  AtMostOnceEndpoint& endpoint() { return endpoint_; }

  // Run-queue depth right now (pruned to the current clock) — the
  // flexwatch queue-depth gauge. Pruning only discards starts that have
  // already passed, so sampling never perturbs the simulation.
  uint64_t CurrentQueueDepth() {
    return QueueDepth(events_->clock()->now_nanos());
  }

 private:
  EventQueue::EventId Schedule(uint64_t at_nanos, std::function<void()> fn);
  void ArmAcceptPoll();
  void PumpRequests();
  // Prunes executions that have started by `now` off the run queue and
  // returns its depth.
  uint64_t QueueDepth(uint64_t now);

  DatagramChannel* channel_;
  AtMostOnceEndpoint endpoint_;
  DispatchPolicy policy_;
  RemoteServerModel service_;
  EventQueue* events_;
  std::function<void()> reply_listener_;

  // Busy-until horizon per worker; assignment picks the earliest free.
  std::vector<uint64_t> worker_free_;
  // Start times of admitted executions not yet begun, in nondecreasing
  // order (the min worker horizon only moves forward), so pruning is a
  // pop from the front.
  std::deque<uint64_t> queued_starts_;

  bool accept_poll_armed_ = false;
  uint64_t accept_poll_at_ = 0;
  EventQueue::EventId accept_poll_event_ = EventQueue::kInvalidEvent;

  Stats stats_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_DISPATCH_H_
