#include "src/rpc/dispatch.h"

#include <algorithm>
#include <utility>

#include "src/rpc/mux.h"

#include "src/support/recorder.h"
#include "src/support/timeline.h"
#include "src/support/trace.h"

namespace flexrpc {

namespace {
constexpr auto kAtoB = DatagramChannel::Dir::kAtoB;
constexpr auto kBtoA = DatagramChannel::Dir::kBtoA;
}  // namespace

ServerDispatch::ServerDispatch(DatagramChannel* channel,
                               DatagramHandler handler,
                               DispatchPolicy policy, EventQueue* events)
    : channel_(channel),
      endpoint_(std::move(handler), policy.cache_capacity),
      policy_(policy), service_(policy.service), events_(events) {
  if (policy_.workers == 0) {
    policy_.workers = 1;
  }
  worker_free_.assign(policy_.workers, 0);
  channel_->set_scheduled_delivery(true);
  channel_->set_conn_tagging(true);
}

EventQueue::EventId ServerDispatch::Schedule(uint64_t at_nanos,
                                             std::function<void()> fn) {
  uint32_t conn_tag = RecorderConnScope::Current();
  return events_->ScheduleAt(at_nanos, [this, conn_tag,
                                        fn = std::move(fn)]() {
    RecorderConnScope conn_scope(conn_tag);
    ++stats_.events;
    fn();
  });
}

void ServerDispatch::Poke() { ArmAcceptPoll(); }

void ServerDispatch::ArmAcceptPoll() {
  auto next = channel_->NextDeliveryNanos(kAtoB);
  if (!next) {
    return;
  }
  if (accept_poll_armed_ && accept_poll_at_ <= *next) {
    return;  // an earlier (or equal) wakeup already covers this frame
  }
  if (accept_poll_armed_) {
    events_->Cancel(accept_poll_event_);
  }
  accept_poll_armed_ = true;
  accept_poll_at_ = *next;
  accept_poll_event_ = Schedule(*next, [this]() {
    accept_poll_armed_ = false;
    PumpRequests();
  });
}

uint64_t ServerDispatch::QueueDepth(uint64_t now) {
  while (!queued_starts_.empty() && queued_starts_.front() <= now) {
    queued_starts_.pop_front();
  }
  return queued_starts_.size();
}

void ServerDispatch::PumpRequests() {
  size_t admitted = 0;
  while (channel_->HasPending(kAtoB)) {
    auto request = channel_->Receive(kAtoB);
    if (!request.ok()) {
      continue;  // checksum discard — the sender's RTO covers it
    }
    ByteSpan request_span(request->data(), request->size());
    auto xid = PeekXid(request_span);
    if (!xid.ok()) {
      continue;  // too short to be a call; nothing to reply to
    }
    // Single-connection callers (no mux framing) land on connection 0.
    uint32_t conn = 0;
    if (auto c = PeekMuxConn(request_span); c.ok()) {
      conn = *c;
    }
    RecorderConnScope conn_scope(conn);
    uint64_t now = events_->clock()->now_nanos();
    if (++admitted > policy_.accept_limit) {
      ++stats_.shed_accept;
      TraceAdd(TraceCounter::kRpcDispatchShed);
      RecordEvent(RecEvent::kDispatchShed, RecEndpoint::kServer, *xid, now,
                  /*a=*/QueueDepth(now), /*b=*/1);
      continue;
    }
    ++stats_.accepted;
    TraceAdd(TraceCounter::kRpcDispatchAccepts);
    // Dedup probe before admission control: a duplicate of a completed
    // call is answered from the cache at zero worker cost and is never
    // shed (shedding a retransmit the server already paid for would turn
    // overload into a retransmit storm).
    if (const std::vector<uint8_t>* cached = endpoint_.FindCached(conn,
                                                                  *xid)) {
      ++stats_.dup_replies;
      channel_->Send(kBtoA, ByteSpan(cached->data(), cached->size()));
      if (reply_listener_) {
        reply_listener_();
      }
      continue;
    }
    uint64_t depth = QueueDepth(now);
    if (depth >= policy_.run_queue_limit) {
      // Shed BEFORE execution: the xid never enters the executed set, so
      // the client's retransmit can execute it cleanly later.
      ++stats_.shed_run;
      TraceAdd(TraceCounter::kRpcDispatchShed);
      RecordEvent(RecEvent::kDispatchShed, RecEndpoint::kServer, *xid, now,
                  /*a=*/depth, /*b=*/2);
      continue;
    }
    auto handled = endpoint_.Handle(conn, request_span);
    if (!handled.ok()) {
      continue;  // unparseable or rejected: nothing to send back
    }
    TraceObserve(TraceHistogram::kRpcDispatchQueueDepth, depth);
    WatchObserve(WatchSeries::kQueueDepth, 0, depth);
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
    ++stats_.executions;
    TraceAdd(TraceCounter::kRpcDispatchExecutions);
    // Earliest-free worker takes the call; its CPU span may lie in the
    // clock's future (the recorder takes explicit timestamps for this).
    size_t w = 0;
    for (size_t i = 1; i < worker_free_.size(); ++i) {
      if (worker_free_[i] < worker_free_[w]) {
        w = i;
      }
    }
    uint64_t start = std::max(now, worker_free_[w]);
    uint64_t finish = start + service_.ProcessNanos(handled->reply->size());
    worker_free_[w] = finish;
    stats_.busy_nanos += finish - start;
    // The modeled execution span, deterministically: the worker's CPU
    // window is scheduled rather than elapsed, so a wall-clock TraceSpan
    // cannot time it (and would poison byte-identical artifacts if it
    // tried). Observed directly instead; per-worker for flexwatch.
    TraceObserve(TraceHistogram::kRpcDispatchNanos, finish - start);
    WatchObserve(WatchSeries::kWorkerExec, static_cast<uint32_t>(w + 1),
                 finish - start);
    if (start > now) {
      queued_starts_.push_back(start);
    }
    RecordEvent(RecEvent::kServerExecBegin, RecEndpoint::kServer, *xid,
                start, /*a=*/handled->reply->size(), /*b=*/w + 1);
    RecordEvent(RecEvent::kServerExecEnd, RecEndpoint::kServer, *xid,
                finish, /*a=*/handled->reply->size(), /*b=*/w + 1);
    Schedule(finish, [this, reply = *handled->reply]() {
      channel_->Send(kBtoA, ByteSpan(reply.data(), reply.size()));
      if (reply_listener_) {
        reply_listener_();
      }
    });
  }
  ArmAcceptPoll();  // more requests may still be in flight
}

}  // namespace flexrpc
