// flexbind — a managed-RPC control plane over replicated endpoints.
//
// Everything below the binder treats one transport as one server. This
// layer makes N at-most-once replicas look like a single logical binding
// that survives the death of any of them:
//
//   ReplicaGroup    owns one PipelinedTransport per replica, all driven
//                   by one shared EventQueue, each tagged (1-based) so
//                   flight-recorder events attribute to their replica.
//   BinderTransport routes calls to replicas by policy, watches each
//                   transport's health evidence through PipelineObserver,
//                   and on failure *re-binds live calls*: in-flight xids
//                   on a dead replica are cancelled and re-issued on a
//                   healthy one without completing (or dropping) them.
//
// Health and failover (see failover.h for the state machine):
//   * Every RTO fire on a replica's transport is failure evidence; every
//     matched reply is success evidence. `suspect_after` consecutive
//     failures move the replica out of the routing rotation.
//   * A suspect with calls bound to it triggers a cutover: a new target
//     is chosen and every xid bound to an unhealthy replica is Cancel'd
//     and re-submitted there. The cutover runs as a deferred event (same
//     virtual instant, after the current callback unwinds) because the
//     evidence arrives from inside the transport's own event handling.
//   * Suspects are probed with a policy-supplied idempotent request on a
//     doubling backoff; any success reinstates them into the rotation.
//     Reinstatement does not fail back live traffic — the primary moves
//     only when it has to.
//
// Why re-binding is safe: each replica runs its own AtMostOnceEndpoint,
// so re-issuing an xid on replica B after replica A may (or may not)
// have executed it yields at most one execution *per replica* — the
// standard at-most-once guarantee, per binding. What the binder adds is
// that the duplicate-suppression state stays consistent under cutover:
// a given replica can never execute the same xid twice, because the xid
// reaches each replica through that replica's own dup cache. Cross-
// replica re-execution is the price of liveness (the first replica may
// have executed and died before replying) and is exactly the semantics
// NFS-style idempotent operations are designed for.
//
// Determinism: routing, health transitions, probes, and cutovers are all
// pure functions of the evidence sequence and virtual time, so a seeded
// kill schedule produces byte-identical recordings and exact-equal
// counters across runs — the failover soak tests gate on this.

#ifndef FLEXRPC_SRC_RPC_BINDER_H_
#define FLEXRPC_SRC_RPC_BINDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/net/datagram.h"
#include "src/rpc/failover.h"
#include "src/rpc/pipeline.h"
#include "src/support/event_queue.h"
#include "src/support/status.h"

namespace flexrpc {

// One logical binding's worth of replicas: a PipelinedTransport per
// replica over caller-owned channels, all on one EventQueue. Transport i
// carries replica tag i+1 (tag 0 means "unreplicated" in recordings).
class ReplicaGroup {
 public:
  struct ReplicaSpec {
    DatagramChannel* channel = nullptr;  // caller-owned, outlives group
    DatagramHandler handler;             // that replica's server
    RemoteServerModel server_model;
  };

  // `policy` applies to every replica; jitter seeds are decorrelated by
  // adding the replica index so retransmit timers do not phase-lock.
  ReplicaGroup(std::vector<ReplicaSpec> specs, PipelinePolicy policy,
               EventQueue* events);

  size_t size() const { return transports_.size(); }
  PipelinedTransport* transport(size_t i) { return transports_[i].get(); }
  EventQueue* events() { return events_; }
  static uint32_t Tag(size_t i) { return static_cast<uint32_t>(i) + 1; }

 private:
  std::vector<std::unique_ptr<PipelinedTransport>> transports_;
  EventQueue* events_;
};

struct BinderPolicy {
  enum class Routing {
    kPrimaryBackup,  // all calls to one primary; backups idle until cutover
    kRoundRobin,     // calls rotate across the healthy set
  };
  Routing routing = Routing::kPrimaryBackup;
  FailoverPolicy failover;
  // Re-issues a single call may consume across replicas (cutover or
  // failure-driven) before its failure is surfaced to the caller.
  uint32_t reissue_budget = 4;
  // Builds a small idempotent request (keyed by the probe's xid) used to
  // test a suspect replica. Null disables probing: suspects then only
  // reinstate if a stray real reply arrives.
  std::function<std::vector<uint8_t>(uint32_t xid)> make_probe;
};

class BinderTransport {
 public:
  using Completion = PipelinedTransport::Completion;

  struct Stats {
    uint64_t calls = 0;
    uint64_t reissues = 0;   // cancel+resubmit of a live xid
    uint64_t cutovers = 0;   // rebinding episodes
    uint64_t probes_sent = 0;
    uint64_t suspects = 0;   // healthy -> suspect transitions
    uint64_t reinstates = 0; // suspect/probing -> healthy transitions
    uint64_t failures = 0;   // calls surfaced non-OK to the caller
    // Time-to-recover instrumentation (virtual nanos; 0 = never):
    uint64_t last_suspect_nanos = 0;   // most recent suspect transition
    uint64_t last_cutover_nanos = 0;   // most recent cutover
    uint64_t first_recovery_nanos = 0; // first OK completion after the
                                       // first suspect transition
    std::vector<uint64_t> per_replica_calls;  // submissions per replica
  };

  // `group` is caller-owned and must outlive the binder. The binder
  // installs itself as each transport's PipelineObserver.
  BinderTransport(ReplicaGroup* group, BinderPolicy policy);
  ~BinderTransport();

  // Queues one call on the current routing target. `done` runs during a
  // later Drive — possibly after the call has migrated replicas.
  void Submit(uint32_t xid, ByteSpan request, Completion done);

  // Runs the shared event queue until every submitted call has completed
  // (probes may remain outstanding). Non-OK only on a stalled machine.
  Status Drive();

  // Convenience: Submit one call and Drive. Returns that call's status.
  Status Call(uint32_t xid, ByteSpan request, std::vector<uint8_t>* reply);

  const Stats& stats() const { return stats_; }
  const BinderPolicy& policy() const { return policy_; }
  ReplicaGroup* group() { return group_; }
  VirtualClock* clock() { return group_->events()->clock(); }
  size_t primary() const { return primary_; }
  ReplicaHealth health(size_t replica) const {
    return trackers_[replica].health();
  }
  size_t calls_in_flight() const { return calls_.size(); }

 private:
  // Per-replica adapter: PipelineObserver callbacks carry no replica
  // identity, so each transport gets a forwarding shim.
  struct ReplicaObserver : PipelineObserver {
    BinderTransport* binder = nullptr;
    size_t replica = 0;
    void OnRtoFired(uint32_t xid, uint32_t attempts) override;
    void OnReplyMatched(uint32_t xid) override;
    void OnCorruptReply() override;
  };

  struct BoundCall {
    std::vector<uint8_t> request;  // kept for re-issue
    Completion done;
    size_t replica = 0;
    uint32_t reissues = 0;
    uint64_t issued_nanos = 0;  // last (re)issue time — flexwatch
                                // per-replica latency is measured from it
  };

  uint64_t Now();
  size_t PickReplica();                 // routing-policy target selection
  void SubmitToReplica(uint32_t xid, size_t replica);
  void OnInnerComplete(uint32_t xid, size_t replica, Status status,
                       std::vector<uint8_t> reply);
  void Finish(uint32_t xid, Status status, std::vector<uint8_t> reply);
  void OnReplicaFailure(size_t replica);   // RTO evidence
  void OnReplicaSuccess(size_t replica);   // matched-reply evidence
  void RequestCutover();                   // deferred, coalesced
  void Cutover();
  void ScheduleProbe(size_t replica);
  void ProbeTick(size_t replica);
  void OnProbeResult(size_t replica, uint32_t probe_xid, bool ok);

  ReplicaGroup* group_;
  BinderPolicy policy_;
  EventQueue* events_;
  std::vector<FailoverTracker> trackers_;
  std::vector<std::unique_ptr<ReplicaObserver>> observers_;
  // std::map (not unordered) so cutover iteration order is an explicit
  // function of the xids, not of hash-table history.
  std::map<uint32_t, BoundCall> calls_;
  size_t primary_ = 0;
  size_t rr_next_ = 0;                    // round-robin cursor
  bool cutover_pending_ = false;
  uint32_t next_probe_xid_ = 0xF0000000;  // probe xid namespace
  std::vector<bool> probe_outstanding_;
  std::vector<EventQueue::EventId> probe_event_;
  Stats stats_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_BINDER_H_
