// Same-domain ("short-circuited") invocation with run-time semantics
// computation — paper §4.4.
//
// When client and server share a protection domain, an RPC should cost
// little more than a procedure call. But invocation *semantics* still
// matter: may the server scribble on an `in` buffer the client still owns?
// Who allocates the storage an `out` parameter returns in? A fixed
// presentation answers these questions the same way for everyone and
// forces avoidable copies; flexible presentation lets the RPC system derive
// the cheapest safe action from the two sides' attributes:
//
//   in-parameter (copy vs borrow, §4.4.1):
//     copy needed  ⇔  !client.trashable && !server.preserved
//
//   out-parameter (allocation matching, §4.4.2):
//     server kUser,  client kStub/kAuto → pass the server's buffer (move)
//     server kStub/kAuto, client kUser  → server fills the client's buffer
//     both kStub/kAuto                  → stub allocates; client frees
//     both kUser                        → copy server buffer → client buffer
//
// The engine supports both bind-time plan computation and the paper's
// current "dumb" per-call recomputation (whose overhead §4.4 reports as
// negligible — bench_ablate_plancache quantifies that).

#ifndef FLEXRPC_SRC_RPC_SAMEDOMAIN_H_
#define FLEXRPC_SRC_RPC_SAMEDOMAIN_H_

#include <vector>

#include "src/marshal/engine.h"
#include "src/pdl/apply.h"
#include "src/rpc/runtime.h"
#include "src/support/arena.h"

namespace flexrpc {

enum class InAction : uint8_t {
  kPassPointer,    // borrow is safe: hand the client's pointer through
  kCopyForServer,  // stub copies so the server may modify freely
};

enum class OutAction : uint8_t {
  kScalarCopy,        // plain value copy (fixed-size scalar)
  kPassServerBuffer,  // move: client consumes the buffer the server
                      // produced (covers both "server allocates" and the
                      // unconstrained case where the system allocates)
  kFillClientBuffer,  // server writes directly into the client's buffer
  kCopyToClient,      // both sides insisted on their own buffer: copy
};

struct ParamPlan {
  int param_index = -1;  // -1 = result
  bool is_in = false;
  bool is_out = false;
  InAction in_action = InAction::kCopyForServer;
  OutAction out_action = OutAction::kScalarCopy;
};

// Computes the plan for one operation from the two presentations.
// Flattened presentations are not supported in same-domain mode.
Result<std::vector<ParamPlan>> ComputeSameDomainPlan(
    const OperationDecl& op, const OpPresentation& client,
    const OpPresentation& server);

class SameDomainConnection {
 public:
  enum class PlanMode {
    kBindTime,  // plan computed once at bind
    kPerCall,   // the paper's "dumb" mode: recomputed on every invocation
  };

  // `op`, presentations, and `arena` (the shared domain's allocator) must
  // outlive the connection.
  static Result<SameDomainConnection> Bind(const OperationDecl& op,
                                           const OpPresentation& client,
                                           const OpPresentation& server,
                                           Arena* arena, WorkFunction work,
                                           PlanMode mode =
                                               PlanMode::kBindTime);

  // Invokes the work function, applying the per-parameter actions. `args`
  // is laid out by the *client* presentation (slots in client param order,
  // result last).
  Status Call(ArgVec* args);

  // Statistics for the Figure 10/11 measurements.
  uint64_t copies() const { return copies_; }
  uint64_t bytes_copied() const { return bytes_copied_; }
  uint64_t stub_allocs() const { return stub_allocs_; }
  const std::vector<ParamPlan>& plan() const { return plan_; }

 private:
  SameDomainConnection() = default;

  Status Execute(const std::vector<ParamPlan>& plan, ArgVec* args);

  const OperationDecl* op_ = nullptr;
  const OpPresentation* client_ = nullptr;
  const OpPresentation* server_ = nullptr;
  Arena* arena_ = nullptr;
  WorkFunction work_;
  PlanMode mode_ = PlanMode::kBindTime;
  std::vector<ParamPlan> plan_;
  uint64_t copies_ = 0;
  uint64_t bytes_copied_ = 0;
  uint64_t stub_allocs_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_SAMEDOMAIN_H_
