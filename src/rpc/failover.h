// FailoverTracker — per-replica health as a pure state machine.
//
// The binder (binder.h) needs one judgement per replica: is it safe to
// route calls there? This class condenses the transport's evidence stream
// (RTO fires and failed calls vs. matched replies) into a three-state
// health machine, with no clocks, timers, or I/O of its own — the binder
// feeds it timestamps and acts on the transitions it reports:
//
//     kHealthy --(suspect_after consecutive failures)--> kSuspect
//     kSuspect --(probe due, binder sends one)---------> kProbing
//     kProbing --(probe times out)---------------------> kSuspect
//     kSuspect/kProbing --(any success)----------------> kHealthy
//
// Design points:
//   * Failures must be *consecutive*: one matched reply resets the count,
//     so a lossy-but-alive replica is not declared dead by sporadic RTOs.
//     The threshold trades detection latency against false suspects — the
//     evidence is the same RTO signal the AIMD controller consumes, so a
//     congested path looks identical to a dead one until a probe settles
//     the question.
//   * Suspects are probed, not abandoned: the binder sends a cheap
//     idempotent call (policy-supplied) on a doubling backoff schedule.
//     Any success — a probe reply or a late real reply — reinstates the
//     replica immediately and resets the backoff.
//   * Everything is deterministic: transitions depend only on the
//     evidence sequence and the timestamps the caller passes in, so
//     seeded runs produce identical failover timelines.

#ifndef FLEXRPC_SRC_RPC_FAILOVER_H_
#define FLEXRPC_SRC_RPC_FAILOVER_H_

#include <cstdint>
#include <string_view>

namespace flexrpc {

struct FailoverPolicy {
  // Consecutive failures (RTO fires or call failures) that tip a healthy
  // replica into kSuspect. 0 is clamped to 1.
  uint32_t suspect_after = 3;
  // Delay from suspicion to the first probe, and between probe attempts.
  // Doubles after every probe sent, capped below.
  uint64_t probe_interval_nanos = 20'000'000;       // 20 ms
  uint64_t max_probe_interval_nanos = 320'000'000;  // 320 ms
};

enum class ReplicaHealth : uint8_t {
  kHealthy = 0,  // in the routing rotation
  kSuspect,      // out of rotation, next probe scheduled
  kProbing,      // out of rotation, a probe is in flight
};

std::string_view ReplicaHealthName(ReplicaHealth h);

class FailoverTracker {
 public:
  explicit FailoverTracker(FailoverPolicy policy);

  // Failure evidence: an RTO fire or a failed call (including a failed
  // probe — kProbing drops back to kSuspect with the next probe already
  // scheduled). Returns true exactly when this failure tips a healthy
  // replica into kSuspect.
  bool OnFailure(uint64_t now_nanos);

  // Success evidence: any matched reply, probe or real. Returns true
  // exactly when it reinstates a suspect/probing replica to kHealthy.
  bool OnSuccess();

  // True when the replica is suspect and its probe timer has expired;
  // the binder should send a probe and call OnProbeSent.
  bool ProbeDue(uint64_t now_nanos) const;

  // Marks a probe in flight and schedules the next attempt one doubled
  // (capped) interval out, so a lost probe is retried without any extra
  // bookkeeping: the replica just becomes ProbeDue again.
  void OnProbeSent(uint64_t now_nanos);

  ReplicaHealth health() const { return health_; }
  bool healthy() const { return health_ == ReplicaHealth::kHealthy; }
  uint32_t consecutive_failures() const { return consecutive_failures_; }
  // Meaningful only while unhealthy: when the next probe becomes due.
  uint64_t next_probe_nanos() const { return next_probe_nanos_; }

 private:
  FailoverPolicy policy_;
  ReplicaHealth health_ = ReplicaHealth::kHealthy;
  uint32_t consecutive_failures_ = 0;
  uint64_t next_probe_nanos_ = 0;
  uint64_t current_probe_interval_nanos_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_FAILOVER_H_
