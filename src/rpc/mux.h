// ConnectionMux — many client connections multiplexed over one channel.
//
// Every transport below this layer carries one client's calls. The fleet
// simulation needs thousands: this mux runs N logical connections over a
// single DatagramChannel (the server's NIC), giving each connection its
// own xid namespace, its own flow-control window, and its own stream of
// interleaved calls. The demux key — on the wire and in every table — is
// the (connection-id, xid) pair; a bare xid means nothing fleet-wide.
//
// Wire format: the mux frames every datagram as
//
//   [xid u32 BE][conn u32 BE][body...]
//
// The xid stays the FIRST word — the SunRPC layout every layer below
// assumes, and what lets DatagramChannel attribute wire events without
// parsing — and the connection id rides in the second word. Replies come
// back with the same two-word prefix; completions hand the caller the
// full datagram (prefix included), like the other transports do.
//
// Client machinery is PipelinedTransport's, per connection: each call is
// a ClientCallState with an attempt budget, a per-call RTO timer with
// exponential backoff and deterministic jitter, and an absolute deadline;
// replies are drained from coalesced poll events armed on the channel's
// NextDeliveryNanos. Per-connection flow control mirrors the pipelined
// window: at most per_conn_window calls of one connection are in flight,
// the rest queue (counted as flow stalls, attributed as queued time).
//
// When policy.retry.adaptive.enabled, every connection carries its own
// RttEstimator + AimdController (the ROADMAP item 1/2 follow-on): the
// estimator RTO replaces the fixed doubling schedule and the AIMD window
// replaces per_conn_window, keyed per connection so one slow connection's
// samples can never inflate another's RTO. Corrupt replies carry no
// (conn, xid) identity, so — unlike the single-connection pipelined
// transport — they feed no per-connection loss signal; the owning call's
// RTO covers them.
//
// The server side is ServerDispatch (src/rpc/dispatch.h); the two halves
// share the channel and the EventQueue and wake each other through
// listener hooks (request_listener -> dispatch.Poke, reply_listener ->
// mux.Poke).

#ifndef FLEXRPC_SRC_RPC_MUX_H_
#define FLEXRPC_SRC_RPC_MUX_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/net/datagram.h"
#include "src/rpc/retry.h"
#include "src/support/event_queue.h"
#include "src/support/status.h"

namespace flexrpc {

struct MuxPolicy {
  RetryPolicy retry;
  // Per-connection flow-control window: calls of one connection in flight
  // at once. Submissions beyond it queue on that connection (time spent
  // there counts against the deadline and shows up as queued phase).
  uint32_t per_conn_window = 4;
};

class ConnectionMux {
 public:
  using Completion = std::function<void(Status, std::vector<uint8_t>)>;

  struct Stats {
    uint64_t conns_opened = 0;
    uint64_t calls = 0;
    uint64_t completed = 0;        // ok completions
    uint64_t retransmits = 0;
    uint64_t stale_replies = 0;    // matched no in-flight (conn, xid)
    uint64_t corrupt_replies = 0;
    uint64_t flow_stalls = 0;      // queued behind a full per-conn window
    uint64_t deadline_expiries = 0;
    uint64_t unavailable_failures = 0;
    uint64_t max_in_flight = 0;    // across all connections
    uint64_t events = 0;           // event-queue dispatches
    // Adaptive-mode accounting (all zero when adaptive is disabled).
    uint64_t rtt_samples = 0;      // clean per-connection RTT measurements
    uint64_t karn_skips = 0;       // retransmit-ambiguous replies skipped
    uint64_t cwnd_increases = 0;   // per-connection additive growth
    uint64_t cwnd_decreases = 0;   // per-connection halvings
  };

  // `channel` and `events` must outlive the mux (and share the clock).
  // Puts the channel into scheduled-delivery, conn-tagged mode.
  ConnectionMux(DatagramChannel* channel, MuxPolicy policy,
                EventQueue* events);

  // Opens a new connection and returns its id (1-based; ids never reuse).
  uint32_t OpenConnection();

  // Submits one call on `conn` (which must be open). The mux allocates
  // the per-connection xid and frames [xid][conn][body]. `done` fires
  // exactly once — with the full reply datagram on OK, or a terminal
  // kUnavailable / kDeadlineExceeded status.
  void Submit(uint32_t conn, ByteSpan body, Completion done);

  // Arms the reply poll — the server side calls this (via its
  // reply_listener hook) after sending so the mux wakes when the frame
  // lands.
  void Poke();

  // Invoked after every request transmission; the fleet wires it to
  // ServerDispatch::Poke so the server polls the arrival.
  void set_request_listener(std::function<void()> fn) {
    request_listener_ = std::move(fn);
  }

  // Runs the event queue until every submitted call completed. Errors if
  // the simulation stalls with calls outstanding.
  Status Drive();

  size_t outstanding() const { return outstanding_; }
  const Stats& stats() const { return stats_; }

  // Calls currently in flight across all connections — the flexwatch
  // in-flight gauge.
  size_t in_flight_calls() const { return in_flight_.size(); }

  // Sum of every open connection's effective window (AIMD when adaptive,
  // the fixed per_conn_window otherwise) — the flexwatch cwnd gauge.
  uint64_t total_window() const;

  // The per-connection estimator, or nullptr for an unknown connection.
  // Meaningful when policy.retry.adaptive.enabled; tests assert one
  // connection's RTO is untouched by another's slow replies.
  const RttEstimator* conn_rtt(uint32_t conn) const;

 private:
  struct PendingCall {
    ClientCallState call;
    Completion done;
  };
  struct InFlight {
    uint32_t conn = 0;
    ClientCallState call;
    Completion done;
    EventQueue::EventId rto_event = EventQueue::kInvalidEvent;
  };
  struct Conn {
    uint32_t next_xid = 1;   // per-connection namespace
    uint32_t in_flight = 0;  // window occupancy
    std::deque<PendingCall> pending;
    // Per-connection adaptive state; idle unless adaptive.enabled.
    RttEstimator rtt;
    AimdController cwnd;
    Conn(const RttConfig& rtt_config, const AimdConfig& window_config)
        : rtt(rtt_config), cwnd(window_config) {}
  };

  // Effective flow-control window for one connection.
  uint32_t WindowFor(const Conn& c) const {
    return policy_.retry.adaptive.enabled ? c.cwnd.window()
                                          : policy_.per_conn_window;
  }

  static uint64_t Key(uint32_t conn, uint32_t xid) {
    return (static_cast<uint64_t>(conn) << 32) | xid;
  }

  // Every scheduled event reopens the connection scope it was scheduled
  // under, so record points downstream of timers inherit the right tag.
  EventQueue::EventId Schedule(uint64_t at_nanos, std::function<void()> fn);
  void StartNext(uint32_t conn_id);
  void TransmitCall(InFlight& f);
  void OnRto(uint64_t key);
  void ArmClientPoll();
  void DrainReplies();
  void Complete(uint64_t key, Status status, std::vector<uint8_t> reply);

  DatagramChannel* channel_;
  MuxPolicy policy_;
  EventQueue* events_;
  Rng jitter_;
  std::function<void()> request_listener_;

  uint32_t next_conn_ = 1;
  std::map<uint32_t, Conn> conns_;
  std::unordered_map<uint64_t, InFlight> in_flight_;  // by Key(conn, xid)
  size_t outstanding_ = 0;  // submitted, not yet completed

  bool client_poll_armed_ = false;
  uint64_t client_poll_at_ = 0;
  EventQueue::EventId client_poll_event_ = EventQueue::kInvalidEvent;

  Stats stats_;
};

// Reads the second big-endian word of a mux-framed datagram — the
// connection id slot. kDataLoss when the datagram is too short.
Result<uint32_t> PeekMuxConn(ByteSpan datagram);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_RPC_MUX_H_
