#include "src/rpc/binder.h"

#include <algorithm>
#include <utility>

#include "src/support/recorder.h"
#include "src/support/strings.h"
#include "src/support/timeline.h"
#include "src/support/trace.h"

namespace flexrpc {

ReplicaGroup::ReplicaGroup(std::vector<ReplicaSpec> specs,
                           PipelinePolicy policy, EventQueue* events)
    : events_(events) {
  transports_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    PipelinePolicy p = policy;
    p.retry.jitter_seed += i;  // decorrelate retransmit jitter per replica
    auto t = std::make_unique<PipelinedTransport>(
        specs[i].channel, std::move(specs[i].handler),
        specs[i].server_model, p, events);
    t->set_replica_tag(Tag(i));
    transports_.push_back(std::move(t));
  }
}

void BinderTransport::ReplicaObserver::OnRtoFired(uint32_t /*xid*/,
                                                  uint32_t /*attempts*/) {
  binder->OnReplicaFailure(replica);
}

void BinderTransport::ReplicaObserver::OnReplyMatched(uint32_t /*xid*/) {
  binder->OnReplicaSuccess(replica);
}

void BinderTransport::ReplicaObserver::OnCorruptReply() {
  // A corrupt reply proves the replica is alive (it sent *something*), so
  // it is neither failure nor success evidence for the health machine;
  // the transport's own RTO/AIMD handling covers the damage.
}

BinderTransport::BinderTransport(ReplicaGroup* group, BinderPolicy policy)
    : group_(group), policy_(std::move(policy)), events_(group->events()) {
  size_t n = group_->size();
  trackers_.assign(n, FailoverTracker(policy_.failover));
  probe_outstanding_.assign(n, false);
  probe_event_.assign(n, EventQueue::kInvalidEvent);
  stats_.per_replica_calls.assign(n, 0);
  observers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto obs = std::make_unique<ReplicaObserver>();
    obs->binder = this;
    obs->replica = i;
    group_->transport(i)->set_observer(obs.get());
    observers_.push_back(std::move(obs));
  }
}

BinderTransport::~BinderTransport() {
  for (size_t i = 0; i < group_->size(); ++i) {
    group_->transport(i)->set_observer(nullptr);
    if (probe_event_[i] != EventQueue::kInvalidEvent) {
      events_->Cancel(probe_event_[i]);
    }
  }
}

uint64_t BinderTransport::Now() { return events_->clock()->now_nanos(); }

size_t BinderTransport::PickReplica() {
  size_t n = group_->size();
  if (policy_.routing == BinderPolicy::Routing::kRoundRobin) {
    // Rotate, skipping unhealthy replicas; if none are healthy, fall back
    // to the cursor position (the call will retry there and either get
    // through or feed more failure evidence).
    for (size_t step = 0; step < n; ++step) {
      size_t candidate = (rr_next_ + step) % n;
      if (trackers_[candidate].healthy()) {
        rr_next_ = (candidate + 1) % n;
        return candidate;
      }
    }
    size_t candidate = rr_next_;
    rr_next_ = (rr_next_ + 1) % n;
    return candidate;
  }
  // Primary-backup: the primary takes everything while healthy; otherwise
  // the lowest-indexed healthy replica stands in (Cutover makes that
  // stand-in official for in-flight calls too).
  if (trackers_[primary_].healthy()) {
    return primary_;
  }
  for (size_t i = 0; i < n; ++i) {
    if (trackers_[i].healthy()) {
      return i;
    }
  }
  return primary_;
}

void BinderTransport::Submit(uint32_t xid, ByteSpan request,
                             Completion done) {
  ++stats_.calls;
  TraceAdd(TraceCounter::kRpcBinderCalls);
  BoundCall call;
  call.request.assign(request.begin(), request.end());
  call.done = std::move(done);
  calls_.emplace(xid, std::move(call));
  SubmitToReplica(xid, PickReplica());
}

void BinderTransport::SubmitToReplica(uint32_t xid, size_t replica) {
  BoundCall& call = calls_.at(xid);
  call.replica = replica;
  call.issued_nanos = Now();
  ++stats_.per_replica_calls[replica];
  group_->transport(replica)->Submit(
      xid, ByteSpan(call.request.data(), call.request.size()),
      [this, xid, replica](Status status, std::vector<uint8_t> reply) {
        OnInnerComplete(xid, replica, std::move(status), std::move(reply));
      });
}

void BinderTransport::OnInnerComplete(uint32_t xid, size_t replica,
                                      Status status,
                                      std::vector<uint8_t> reply) {
  auto it = calls_.find(xid);
  if (it == calls_.end() || it->second.replica != replica) {
    return;  // completion from a binding this call has already left
  }
  if (status.ok()) {
    // flexwatch: time the replica took to answer this (re)issue, tagged
    // with the replica so a timeline attributes slow windows to it.
    WatchObserve(WatchSeries::kReplicaLatency, ReplicaGroup::Tag(replica),
                 Now() - it->second.issued_nanos);
    Finish(xid, std::move(status), std::move(reply));
    return;
  }
  // The transport gave up (attempts exhausted or deadline). The per-RTO
  // evidence already drove the health machine; here the only question is
  // whether the *call* still has budget to try another replica. Note the
  // re-issue re-arms the attempt budget and deadline on the new replica —
  // reissue_budget is what bounds the total.
  BoundCall& call = it->second;
  if (call.reissues < policy_.reissue_budget) {
    size_t target = PickReplica();
    if (target != replica || !trackers_[replica].healthy()) {
      ++call.reissues;
      ++stats_.reissues;
      TraceAdd(TraceCounter::kRpcBinderReissues);
      uint64_t now = Now();
      RecorderReplicaScope scope(ReplicaGroup::Tag(target));
      RecordEvent(RecEvent::kRebind, RecEndpoint::kClient, xid, now,
                  /*a=*/ReplicaGroup::Tag(target),
                  /*b=*/ReplicaGroup::Tag(replica));
      SubmitToReplica(xid, target);
      return;
    }
  }
  Finish(xid, std::move(status), std::move(reply));
}

void BinderTransport::Finish(uint32_t xid, Status status,
                             std::vector<uint8_t> reply) {
  auto it = calls_.find(xid);
  Completion done = std::move(it->second.done);
  calls_.erase(it);
  if (!status.ok()) {
    ++stats_.failures;
  } else if (stats_.last_suspect_nanos != 0 &&
             stats_.first_recovery_nanos == 0) {
    stats_.first_recovery_nanos = Now();
  }
  done(std::move(status), std::move(reply));
}

void BinderTransport::OnReplicaFailure(size_t replica) {
  uint64_t now = Now();
  if (!trackers_[replica].OnFailure(now)) {
    return;
  }
  // Healthy -> suspect: out of the rotation, probes scheduled, and any
  // calls bound here need rescue. The evidence arrived from inside the
  // transport's own OnRto, so the rebind is deferred to a same-instant
  // event (FIFO tie-break keeps this deterministic).
  ++stats_.suspects;
  TraceAdd(TraceCounter::kRpcFailoverSuspects);
  stats_.last_suspect_nanos = now;
  {
    RecorderReplicaScope scope(ReplicaGroup::Tag(replica));
    RecordEvent(RecEvent::kFailover, RecEndpoint::kClient, /*xid=*/0, now,
                /*a=*/ReplicaGroup::Tag(replica), /*b=*/1);
  }
  ScheduleProbe(replica);
  bool has_bound_calls = false;
  for (const auto& [xid, call] : calls_) {
    if (call.replica == replica) {
      has_bound_calls = true;
      break;
    }
  }
  if (has_bound_calls) {
    RequestCutover();
  }
}

void BinderTransport::OnReplicaSuccess(size_t replica) {
  if (!trackers_[replica].OnSuccess()) {
    return;
  }
  ++stats_.reinstates;
  TraceAdd(TraceCounter::kRpcFailoverReinstates);
  RecorderReplicaScope scope(ReplicaGroup::Tag(replica));
  RecordEvent(RecEvent::kFailover, RecEndpoint::kClient, /*xid=*/0, Now(),
              /*a=*/ReplicaGroup::Tag(replica), /*b=*/3);
  // No automatic fail-back: the reinstated replica rejoins the rotation
  // (and becomes eligible as a cutover target) but live traffic stays
  // where it is.
}

void BinderTransport::RequestCutover() {
  if (cutover_pending_) {
    return;
  }
  cutover_pending_ = true;
  events_->ScheduleAt(Now(), [this]() { Cutover(); });
}

void BinderTransport::Cutover() {
  cutover_pending_ = false;
  size_t n = group_->size();
  size_t new_primary = primary_;
  for (size_t i = 0; i < n; ++i) {
    if (trackers_[i].healthy()) {
      new_primary = i;
      break;
    }
  }
  // Every xid bound to an unhealthy replica migrates. std::map order
  // makes the re-issue sequence a function of the xids alone.
  std::vector<uint32_t> doomed;
  for (const auto& [xid, call] : calls_) {
    if (!trackers_[call.replica].healthy()) {
      doomed.push_back(xid);
    }
  }
  if (new_primary == primary_ && doomed.empty()) {
    return;  // evidence arrived but nothing is left to move
  }
  uint64_t now = Now();
  ++stats_.cutovers;
  TraceAdd(TraceCounter::kRpcBinderCutovers);
  stats_.last_cutover_nanos = now;
  primary_ = new_primary;
  {
    RecorderReplicaScope scope(ReplicaGroup::Tag(new_primary));
    RecordEvent(RecEvent::kFailover, RecEndpoint::kClient, /*xid=*/0, now,
                /*a=*/ReplicaGroup::Tag(new_primary), /*b=*/4);
  }
  for (uint32_t xid : doomed) {
    BoundCall& call = calls_.at(xid);
    size_t old_replica = call.replica;
    group_->transport(old_replica)->Cancel(xid);
    size_t target = PickReplica();
    ++call.reissues;
    ++stats_.reissues;
    TraceAdd(TraceCounter::kRpcBinderReissues);
    {
      RecorderReplicaScope scope(ReplicaGroup::Tag(target));
      RecordEvent(RecEvent::kRebind, RecEndpoint::kClient, xid, now,
                  /*a=*/ReplicaGroup::Tag(target),
                  /*b=*/ReplicaGroup::Tag(old_replica));
    }
    SubmitToReplica(xid, target);
  }
}

void BinderTransport::ScheduleProbe(size_t replica) {
  if (!policy_.make_probe || trackers_[replica].healthy() ||
      probe_outstanding_[replica]) {
    return;
  }
  uint64_t due = std::max(trackers_[replica].next_probe_nanos(), Now());
  if (probe_event_[replica] != EventQueue::kInvalidEvent) {
    events_->Cancel(probe_event_[replica]);
  }
  probe_event_[replica] =
      events_->ScheduleAt(due, [this, replica]() { ProbeTick(replica); });
}

void BinderTransport::ProbeTick(size_t replica) {
  probe_event_[replica] = EventQueue::kInvalidEvent;
  FailoverTracker& tracker = trackers_[replica];
  uint64_t now = Now();
  if (tracker.healthy() || probe_outstanding_[replica] ||
      !tracker.ProbeDue(now)) {
    return;
  }
  uint32_t probe_xid = next_probe_xid_++;
  std::vector<uint8_t> request = policy_.make_probe(probe_xid);
  tracker.OnProbeSent(now);
  probe_outstanding_[replica] = true;
  ++stats_.probes_sent;
  TraceAdd(TraceCounter::kRpcBinderProbes);
  {
    RecorderReplicaScope scope(ReplicaGroup::Tag(replica));
    RecordEvent(RecEvent::kFailover, RecEndpoint::kClient, probe_xid, now,
                /*a=*/ReplicaGroup::Tag(replica), /*b=*/2);
  }
  group_->transport(replica)->Submit(
      probe_xid, ByteSpan(request.data(), request.size()),
      [this, replica, probe_xid](Status status, std::vector<uint8_t>) {
        OnProbeResult(replica, probe_xid, status.ok());
      });
}

void BinderTransport::OnProbeResult(size_t replica, uint32_t /*probe_xid*/,
                                    bool ok) {
  probe_outstanding_[replica] = false;
  // A successful probe already reinstated the replica through the
  // OnReplyMatched evidence path; a failed one already fed its RTO fires
  // in. All that is left is to keep the probe clock ticking.
  if (!ok && !trackers_[replica].healthy()) {
    ScheduleProbe(replica);
  }
}

Status BinderTransport::Drive() {
  while (!calls_.empty()) {
    if (!events_->RunNext()) {
      return InternalError(StrFormat(
          "binder stalled: %zu calls outstanding, no events pending",
          calls_.size()));
    }
  }
  return Status::Ok();
}

Status BinderTransport::Call(uint32_t xid, ByteSpan request,
                             std::vector<uint8_t>* reply) {
  Status result = Status::Ok();
  Submit(xid, request,
         [&result, reply](Status status, std::vector<uint8_t> r) {
           result = std::move(status);
           if (result.ok() && reply != nullptr) {
             *reply = std::move(r);
           }
         });
  Status driven = Drive();
  if (!driven.ok()) {
    return driven;
  }
  return result;
}

}  // namespace flexrpc
