#include "src/support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/support/strings.h"

namespace flexrpc {

// --- writer -------------------------------------------------------------

void JsonWriter::Indent() {
  out_.push_back('\n');
  out_.append(scopes_.size() * 2, ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (scopes_.empty()) {
    return;
  }
  if (scope_has_items_.back()) {
    out_.push_back(',');
  }
  scope_has_items_.back() = true;
  Indent();
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  scopes_.push_back(true);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  bool had_items = scope_has_items_.back();
  scopes_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) {
    Indent();
  }
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  scopes_.push_back(false);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  bool had_items = scope_has_items_.back();
  scopes_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) {
    Indent();
  }
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (scope_has_items_.back()) {
    out_.push_back(',');
  }
  scope_has_items_.back() = true;
  Indent();
  AppendEscaped(key);
  out_ += ": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "0";
    return *this;
  }
  // Shortest representation that round-trips well enough for timings.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::RawNumber(std::string_view literal) {
  BeforeValue();
  out_ += literal;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

// --- parser -------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    FLEXRPC_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const char* what) const {
    return InvalidArgumentError(
        StrFormat("json: %s at offset %zu", what, pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      FLEXRPC_ASSIGN_OR_RETURN(v.string, ParseString());
      return v;
    }
    JsonValue v;
    if (ConsumeWord("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (ConsumeWord("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (ConsumeWord("null")) {
      v.kind = JsonValue::Kind::kNull;
      return v;
    }
    return ParseNumber();
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // The emitter only escapes control characters; decode the BMP
          // subset as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected value");
    }
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      return Error("malformed number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) {
      return v;
    }
    while (true) {
      SkipSpace();
      FLEXRPC_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      FLEXRPC_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object.emplace_back(std::move(key), std::move(member));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return v;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) {
      return v;
    }
    while (true) {
      FLEXRPC_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      v.array.push_back(std::move(item));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return v;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace flexrpc
