// Shared diagnostics machinery for the IDL and PDL front-ends.
//
// Parsers report errors through a DiagnosticSink rather than aborting, so a
// single compiler run can surface multiple problems, and tests can assert on
// exact diagnostic locations.

#ifndef FLEXRPC_SRC_SUPPORT_DIAG_H_
#define FLEXRPC_SRC_SUPPORT_DIAG_H_

#include <string>
#include <string_view>
#include <vector>

namespace flexrpc {

// 1-based line/column position within a named source buffer.
struct SourcePos {
  int line = 1;
  int column = 1;

  bool operator==(const SourcePos&) const = default;
};

enum class DiagSeverity { kError, kWarning, kNote };

std::string_view DiagSeverityName(DiagSeverity severity);

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  // Stable machine-checkable code ("FLEX001"); empty for ad-hoc parser
  // diagnostics. Codes never change meaning once shipped.
  std::string code;
  std::string file;
  SourcePos pos;
  std::string message;

  // "file:line:col: error: message [CODE]"
  std::string ToString() const;
};

class DiagnosticSink {
 public:
  void Error(std::string file, SourcePos pos, std::string message) {
    Add(DiagSeverity::kError, std::move(file), pos, std::move(message));
  }
  void Warning(std::string file, SourcePos pos, std::string message) {
    Add(DiagSeverity::kWarning, std::move(file), pos, std::move(message));
  }
  void Note(std::string file, SourcePos pos, std::string message) {
    Add(DiagSeverity::kNote, std::move(file), pos, std::move(message));
  }

  void Add(DiagSeverity severity, std::string file, SourcePos pos,
           std::string message) {
    Report(severity, /*code=*/"", std::move(file), pos, std::move(message));
  }

  // Full-fidelity entry point: a coded diagnostic (flexcheck's FLEXnnn).
  void Report(DiagSeverity severity, std::string code, std::string file,
              SourcePos pos, std::string message);

  bool HasErrors() const { return error_count_ > 0; }
  bool HasWarnings() const { return warning_count_ > 0; }
  int error_count() const { return error_count_; }
  int warning_count() const { return warning_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // Occurrences of a coded diagnostic; the machine-checkable test interface.
  int CountCode(std::string_view code) const;
  const Diagnostic* FindCode(std::string_view code) const;

  // All diagnostics joined with newlines; convenient for test failure output.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  int error_count_ = 0;
  int warning_count_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_DIAG_H_
