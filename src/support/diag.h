// Shared diagnostics machinery for the IDL and PDL front-ends.
//
// Parsers report errors through a DiagnosticSink rather than aborting, so a
// single compiler run can surface multiple problems, and tests can assert on
// exact diagnostic locations.

#ifndef FLEXRPC_SRC_SUPPORT_DIAG_H_
#define FLEXRPC_SRC_SUPPORT_DIAG_H_

#include <string>
#include <vector>

namespace flexrpc {

// 1-based line/column position within a named source buffer.
struct SourcePos {
  int line = 1;
  int column = 1;

  bool operator==(const SourcePos&) const = default;
};

enum class DiagSeverity { kError, kWarning, kNote };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  std::string file;
  SourcePos pos;
  std::string message;

  // "file:line:col: error: message"
  std::string ToString() const;
};

class DiagnosticSink {
 public:
  void Error(std::string file, SourcePos pos, std::string message) {
    Add(DiagSeverity::kError, std::move(file), pos, std::move(message));
  }
  void Warning(std::string file, SourcePos pos, std::string message) {
    Add(DiagSeverity::kWarning, std::move(file), pos, std::move(message));
  }

  void Add(DiagSeverity severity, std::string file, SourcePos pos,
           std::string message);

  bool HasErrors() const { return error_count_ > 0; }
  int error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // All diagnostics joined with newlines; convenient for test failure output.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  int error_count_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_DIAG_H_
