#include "src/support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace flexrpc {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string_view> StrSplit(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StrStartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool IsCIdentifier(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  auto head = static_cast<unsigned char>(name[0]);
  if (!std::isalpha(head) && name[0] != '_') {
    return false;
  }
  for (char c : name.substr(1)) {
    auto uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && c != '_') {
      return false;
    }
  }
  return true;
}

std::string ToCamelCase(std::string_view snake) {
  std::string out;
  bool upper_next = true;
  for (char c : snake) {
    if (c == '_') {
      upper_next = true;
      continue;
    }
    out += upper_next
               ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
               : c;
    upper_next = false;
  }
  return out;
}

std::string Indent(std::string_view text, int spaces) {
  std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    std::string_view line =
        pos == std::string_view::npos ? text.substr(start)
                                      : text.substr(start, pos - start);
    if (!line.empty()) {
      out += pad;
      out += line;
    }
    if (pos == std::string_view::npos) {
      break;
    }
    out += '\n';
    start = pos + 1;
  }
  return out;
}

}  // namespace flexrpc
