// EventQueue — a deterministic discrete-event scheduler over a VirtualClock.
//
// The lossy-wire transports used to interleave retransmit timers, server
// processing, and link delays through a lockstep Send/PumpServer loop; an
// event queue makes that interleaving explicit and reproducible. Each event
// is a (deadline_nanos, seq, callback) triple ordered by deadline with a
// FIFO tie-break on seq, so two events due at the same instant always run
// in the order they were scheduled — the property that makes every trace
// counter of an event-driven run two-run identical.
//
// RunNext advances the clock *to* the popped event's deadline before
// invoking it. The clock never moves backwards: an event whose deadline is
// already in the past (because a model charged the clock inline after the
// event was scheduled) simply runs at the current time. Callbacks may
// schedule and cancel further events, including re-entrantly.

#ifndef FLEXRPC_SRC_SUPPORT_EVENT_QUEUE_H_
#define FLEXRPC_SRC_SUPPORT_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/support/timing.h"

namespace flexrpc {

class EventQueue {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  // `clock` must outlive the queue; every event's deadline is read against
  // and applied to it.
  explicit EventQueue(VirtualClock* clock) : clock_(clock) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run once the clock reaches `deadline_nanos`. Events
  // with equal deadlines run in scheduling order (FIFO tie-break).
  EventId ScheduleAt(uint64_t deadline_nanos, std::function<void()> fn);

  // Schedules `fn` to run `delay_nanos` after the clock's current time.
  EventId ScheduleAfter(uint64_t delay_nanos, std::function<void()> fn);

  // Cancels a pending event in O(1). Returns false when the event already
  // ran, was cancelled before, or never existed.
  bool Cancel(EventId id);

  // Runs the earliest pending event, advancing the clock to its deadline
  // first (never backwards). Returns false when no event is pending.
  bool RunNext();

  // Runs events until none remain, or until `max_events` have been
  // dispatched (0 = unbounded). Returns the number dispatched.
  size_t RunUntilIdle(size_t max_events = 0);

  size_t pending() const { return live_.size(); }
  bool empty() const { return live_.empty(); }
  VirtualClock* clock() { return clock_; }

 private:
  struct HeapEntry {
    uint64_t deadline_nanos;
    EventId id;  // monotonically increasing: doubles as the FIFO tie-break
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.deadline_nanos != b.deadline_nanos
                 ? a.deadline_nanos > b.deadline_nanos
                 : a.id > b.id;
    }
  };

  VirtualClock* clock_;
  EventId next_id_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  // Cancelled events are erased here and lazily skipped when popped.
  std::unordered_map<EventId, std::function<void()>> live_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_EVENT_QUEUE_H_
