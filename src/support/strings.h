// Small string utilities shared by the compiler front-ends and code
// generators. GCC 12 lacks <format>, so StrFormat wraps vsnprintf.

#ifndef FLEXRPC_SRC_SUPPORT_STRINGS_H_
#define FLEXRPC_SRC_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace flexrpc {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Splits on a single character; empty fields are kept.
std::vector<std::string_view> StrSplit(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

bool StrStartsWith(std::string_view text, std::string_view prefix);
bool StrEndsWith(std::string_view text, std::string_view suffix);

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// True if `name` is a valid C identifier.
bool IsCIdentifier(std::string_view name);

// "foo_bar" -> "FooBar".
std::string ToCamelCase(std::string_view snake);

// Indents every line of `text` by `spaces` spaces.
std::string Indent(std::string_view text, int spaces);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_STRINGS_H_
