#include "src/support/event_queue.h"

#include <utility>

namespace flexrpc {

EventQueue::EventId EventQueue::ScheduleAt(uint64_t deadline_nanos,
                                           std::function<void()> fn) {
  EventId id = next_id_++;
  heap_.push(HeapEntry{deadline_nanos, id});
  live_.emplace(id, std::move(fn));
  return id;
}

EventQueue::EventId EventQueue::ScheduleAfter(uint64_t delay_nanos,
                                              std::function<void()> fn) {
  return ScheduleAt(clock_->now_nanos() + delay_nanos, std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  // The heap entry stays behind and is skipped when popped.
  return live_.erase(id) != 0;
}

bool EventQueue::RunNext() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    auto it = live_.find(top.id);
    if (it == live_.end()) {
      continue;  // cancelled: tombstone left in the heap
    }
    // Detach before running so the callback can schedule/cancel freely.
    std::function<void()> fn = std::move(it->second);
    live_.erase(it);
    if (top.deadline_nanos > clock_->now_nanos()) {
      clock_->AdvanceNanos(top.deadline_nanos - clock_->now_nanos());
    }
    fn();
    return true;
  }
  return false;
}

size_t EventQueue::RunUntilIdle(size_t max_events) {
  size_t ran = 0;
  while ((max_events == 0 || ran < max_events) && RunNext()) {
    ++ran;
  }
  return ran;
}

}  // namespace flexrpc
