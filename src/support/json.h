// Minimal JSON support for the flextrace observability layer.
//
// The writer produces the BENCH_<name>.json artifacts (and TraceSession
// snapshots); the parser reads them back in the budget gate
// (tools/flextrace) and in tests. It intentionally covers only the JSON
// subset the emitter produces — objects, arrays, strings, numbers,
// booleans, null — with no streaming, comments, or NaN/Inf extensions.

#ifndef FLEXRPC_SRC_SUPPORT_JSON_H_
#define FLEXRPC_SRC_SUPPORT_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace flexrpc {

// Streaming writer with bracket bookkeeping and comma insertion. Output is
// pretty-printed (two-space indent) so the artifacts diff well in review.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Must be called before each value inside an object scope.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Emits a pre-formatted numeric literal verbatim. For values that need
  // exact decimal control (e.g. nanosecond timestamps rendered as
  // microseconds) where Double's %.9g would lose precision. The caller
  // must pass a valid JSON number.
  JsonWriter& RawNumber(std::string_view literal);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void Indent();
  void AppendEscaped(std::string_view s);

  std::string out_;
  // One entry per open scope: true = object, false = array.
  std::vector<bool> scopes_;
  std::vector<bool> scope_has_items_;
  bool pending_key_ = false;
};

// Parsed JSON tree.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order
  std::vector<JsonValue> array;

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsObject() const { return kind == Kind::kObject; }
};

// Parses a complete JSON document (trailing whitespace allowed).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_JSON_H_
