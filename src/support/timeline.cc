#include "src/support/timeline.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/support/json.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

// 16 linear sub-buckets per power of two. Buckets 0..31 are exact (the
// sub-bucket stride is 1 for the first two scale groups); from 32 up,
// scale group s covers [16 << s, 32 << s) in strides of 1 << s.
constexpr uint32_t kSubBuckets = 16;

// Highest set bit position (value > 0).
uint32_t HighBit(uint64_t value) {
  uint32_t bit = 0;
  while (value >>= 1) {
    ++bit;
  }
  return bit;
}

}  // namespace

uint32_t QuantileSketch::BucketOf(uint64_t value) {
  if (value < 2 * kSubBuckets) {
    return static_cast<uint32_t>(value);
  }
  uint32_t shift = HighBit(value) - 4;
  return shift * kSubBuckets + static_cast<uint32_t>(value >> shift);
}

uint64_t QuantileSketch::BucketLowValue(uint32_t bucket) {
  if (bucket < 2 * kSubBuckets) {
    return bucket;
  }
  uint32_t shift = bucket / kSubBuckets - 1;
  return static_cast<uint64_t>(bucket - shift * kSubBuckets) << shift;
}

uint64_t QuantileSketch::BucketHighValue(uint32_t bucket) {
  if (bucket < 2 * kSubBuckets) {
    return bucket;
  }
  uint32_t shift = bucket / kSubBuckets - 1;
  return ((static_cast<uint64_t>(bucket - shift * kSubBuckets) + 1) << shift) -
         1;
}

void QuantileSketch::Record(uint64_t value) {
  ++buckets_[BucketOf(value)];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) {
    return;
  }
  for (const auto& [bucket, cells] : other.buckets_) {
    buckets_[bucket] += cells;
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t QuantileSketch::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) {
    ++rank;  // ceil
  }
  if (rank == 0) {
    rank = 1;
  }
  // The rank-1 sample *is* the minimum and the rank-count sample *is* the
  // maximum, both tracked exactly — substitute them so the extremes carry
  // no bucket error.
  if (rank <= 1) {
    return min();
  }
  if (rank >= count_) {
    return max_;
  }
  uint64_t seen = 0;
  for (const auto& [bucket, cells] : buckets_) {
    seen += cells;
    if (seen >= rank) {
      // Clamp to the exact extremes: the lowest bucket's high bound can
      // overshoot min() and the highest can overshoot max().
      uint64_t high = BucketHighValue(bucket);
      return std::min(std::max(high, min()), max_);
    }
  }
  return max_;
}

QuantileSketch QuantileSketch::FromParts(uint64_t count, uint64_t sum,
                                         uint64_t min, uint64_t max,
                                         std::map<uint32_t, uint64_t> buckets) {
  QuantileSketch sketch;
  sketch.count_ = count;
  sketch.sum_ = sum;
  sketch.min_ = min;
  sketch.max_ = max;
  sketch.buckets_ = std::move(buckets);
  return sketch;
}

namespace {

constexpr std::string_view kWatchSeriesNames[] = {
    "call_latency_nanos",
    "replica_latency_nanos",
    "worker_exec_nanos",
    "queue_depth",
};
static_assert(sizeof(kWatchSeriesNames) / sizeof(kWatchSeriesNames[0]) ==
                  static_cast<size_t>(WatchSeries::kCount),
              "every WatchSeries needs a stable name");

}  // namespace

std::string_view WatchSeriesName(WatchSeries series) {
  return kWatchSeriesNames[static_cast<size_t>(series)];
}

Result<WatchSeries> WatchSeriesFromName(std::string_view name) {
  for (size_t i = 0; i < static_cast<size_t>(WatchSeries::kCount); ++i) {
    if (kWatchSeriesNames[i] == name) {
      return static_cast<WatchSeries>(i);
    }
  }
  return InvalidArgumentError(
      StrFormat("unknown watch series \"%s\"", std::string(name).c_str()));
}

namespace watch_internal {
std::atomic<TimelineSampler*> g_sampler{nullptr};
}  // namespace watch_internal

TimelineSampler::TimelineSampler(EventQueue* events, uint64_t tick_nanos)
    : events_(events), tick_nanos_(tick_nanos) {
  if (tick_nanos_ == 0) {
    std::abort();  // a zero tick would divide the clock by zero
  }
}

TimelineSampler::~TimelineSampler() {
  if (running_) {
    if (tick_armed_) {
      events_->Cancel(tick_event_);
      tick_armed_ = false;
    }
    watch_internal::g_sampler.store(nullptr, std::memory_order_relaxed);
    running_ = false;
  }
}

void TimelineSampler::AddCounter(std::string name,
                                 std::function<uint64_t()> read) {
  CounterSource source;
  source.read = std::move(read);
  source.index = timeline_.counters.size();
  counter_sources_.push_back(std::move(source));
  timeline_.counters.push_back({std::move(name), {}});
}

void TimelineSampler::AddTraceCounter(TraceCounter counter) {
  size_t slot = static_cast<size_t>(counter);
  AddCounter(std::string(TraceCounterName(counter)), [slot]() {
    return trace_internal::g_counters[slot].load(std::memory_order_relaxed);
  });
}

void TimelineSampler::AddGauge(std::string name,
                               std::function<uint64_t()> read) {
  GaugeSource source;
  source.read = std::move(read);
  source.index = timeline_.gauges.size();
  gauge_sources_.push_back(std::move(source));
  timeline_.gauges.push_back({std::move(name), {}});
}

void TimelineSampler::Start() {
  TimelineSampler* expected = nullptr;
  if (!watch_internal::g_sampler.compare_exchange_strong(
          expected, this, std::memory_order_relaxed)) {
    std::abort();  // nested samplers are a bug, same as nested recorders
  }
  running_ = true;
  timeline_.tick_nanos = tick_nanos_;
  timeline_.start_nanos = events_->clock()->now_nanos();
  sampled_through_nanos_ = timeline_.start_nanos;
  for (auto& counter : counter_sources_) {
    counter.prev = counter.read();
  }
  ScheduleNextTick();
}

Timeline TimelineSampler::Stop() {
  if (tick_armed_) {
    events_->Cancel(tick_event_);
    tick_armed_ = false;
  }
  if (running_) {
    if (events_->clock()->now_nanos() > sampled_through_nanos_) {
      SampleWindow();  // flush the final partial window
    }
    watch_internal::g_sampler.store(nullptr, std::memory_order_relaxed);
    running_ = false;
  }
  timeline_.end_nanos = events_->clock()->now_nanos();
  return std::move(timeline_);
}

void TimelineSampler::Observe(WatchSeries series, uint32_t dim,
                              uint64_t value) {
  uint64_t now = events_->clock()->now_nanos();
  uint64_t window =
      now <= timeline_.start_nanos
          ? 0
          : (now - timeline_.start_nanos) / tick_nanos_;
  Timeline::SketchKey key;
  key.series = static_cast<uint16_t>(series);
  key.dim = dim;
  key.window = window;
  timeline_.sketches[key].Record(value);
}

void TimelineSampler::ScheduleNextTick() {
  uint64_t deadline =
      timeline_.start_nanos + (timeline_.ticks + 1) * tick_nanos_;
  tick_event_ = events_->ScheduleAt(deadline, [this]() { OnTick(); });
  tick_armed_ = true;
}

void TimelineSampler::OnTick() {
  tick_armed_ = false;
  SampleWindow();
  // Reschedule only while real work remains: the tick itself has already
  // popped, so pending() counts only the simulation's own events. A bare
  // queue means the run is over — stop, or the loop would never drain.
  if (events_->pending() > 0) {
    ScheduleNextTick();
  }
}

void TimelineSampler::SampleWindow() {
  for (auto& counter : counter_sources_) {
    uint64_t value = counter.read();
    timeline_.counters[counter.index].samples.push_back(value - counter.prev);
    counter.prev = value;
  }
  for (auto& gauge : gauge_sources_) {
    timeline_.gauges[gauge.index].samples.push_back(gauge.read());
  }
  ++timeline_.ticks;
  sampled_through_nanos_ = events_->clock()->now_nanos();
}

namespace {

void WriteSeriesArray(JsonWriter& w, std::string_view key,
                      const std::vector<Timeline::Series>& series) {
  w.Key(key).BeginArray();
  for (const auto& s : series) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("samples").BeginArray();
    for (uint64_t sample : s.samples) {
      w.UInt(sample);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace

std::string TimelineToJson(const Timeline& timeline) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("flexrpc-timeline-v1");
  w.Key("tick_nanos").UInt(timeline.tick_nanos);
  w.Key("start_nanos").UInt(timeline.start_nanos);
  w.Key("end_nanos").UInt(timeline.end_nanos);
  w.Key("ticks").UInt(timeline.ticks);
  WriteSeriesArray(w, "counters", timeline.counters);
  WriteSeriesArray(w, "gauges", timeline.gauges);
  w.Key("sketches").BeginArray();
  for (const auto& [key, sketch] : timeline.sketches) {
    w.BeginObject();
    w.Key("series").String(
        WatchSeriesName(static_cast<WatchSeries>(key.series)));
    w.Key("dim").UInt(key.dim);
    w.Key("window").UInt(key.window);
    w.Key("count").UInt(sketch.count());
    w.Key("sum").UInt(sketch.sum());
    w.Key("min").UInt(sketch.min());
    w.Key("max").UInt(sketch.max());
    w.Key("buckets").BeginArray();
    for (const auto& [bucket, cells] : sketch.buckets()) {
      w.BeginArray().UInt(bucket).UInt(cells).EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

Result<uint64_t> ReadUInt(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->IsNumber()) {
    return InvalidArgumentError(StrFormat(
        "timeline: missing numeric field \"%s\"", std::string(key).c_str()));
  }
  return static_cast<uint64_t>(value->number);
}

Result<std::vector<Timeline::Series>> ParseSeriesArray(
    const JsonValue& root, std::string_view key) {
  const JsonValue* array = root.Find(key);
  if (array == nullptr || array->kind != JsonValue::Kind::kArray) {
    return InvalidArgumentError(StrFormat(
        "timeline: missing array field \"%s\"", std::string(key).c_str()));
  }
  std::vector<Timeline::Series> out;
  for (const JsonValue& entry : array->array) {
    if (!entry.IsObject()) {
      return InvalidArgumentError("timeline: series entry is not an object");
    }
    const JsonValue* name = entry.Find("name");
    const JsonValue* samples = entry.Find("samples");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        samples == nullptr || samples->kind != JsonValue::Kind::kArray) {
      return InvalidArgumentError("timeline: malformed series entry");
    }
    Timeline::Series series;
    series.name = name->string;
    for (const JsonValue& sample : samples->array) {
      if (!sample.IsNumber()) {
        return InvalidArgumentError("timeline: non-numeric sample");
      }
      series.samples.push_back(static_cast<uint64_t>(sample.number));
    }
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace

Result<Timeline> ParseTimeline(std::string_view json) {
  FLEXRPC_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.IsObject()) {
    return InvalidArgumentError("timeline: document is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->string != "flexrpc-timeline-v1") {
    return InvalidArgumentError("timeline: missing or unknown schema");
  }
  Timeline timeline;
  FLEXRPC_ASSIGN_OR_RETURN(timeline.tick_nanos, ReadUInt(root, "tick_nanos"));
  FLEXRPC_ASSIGN_OR_RETURN(timeline.start_nanos,
                           ReadUInt(root, "start_nanos"));
  FLEXRPC_ASSIGN_OR_RETURN(timeline.end_nanos, ReadUInt(root, "end_nanos"));
  FLEXRPC_ASSIGN_OR_RETURN(timeline.ticks, ReadUInt(root, "ticks"));
  FLEXRPC_ASSIGN_OR_RETURN(timeline.counters,
                           ParseSeriesArray(root, "counters"));
  FLEXRPC_ASSIGN_OR_RETURN(timeline.gauges, ParseSeriesArray(root, "gauges"));

  const JsonValue* sketches = root.Find("sketches");
  if (sketches == nullptr || sketches->kind != JsonValue::Kind::kArray) {
    return InvalidArgumentError("timeline: missing sketches array");
  }
  for (const JsonValue& entry : sketches->array) {
    if (!entry.IsObject()) {
      return InvalidArgumentError("timeline: sketch entry is not an object");
    }
    const JsonValue* series_name = entry.Find("series");
    if (series_name == nullptr ||
        series_name->kind != JsonValue::Kind::kString) {
      return InvalidArgumentError("timeline: sketch without a series name");
    }
    FLEXRPC_ASSIGN_OR_RETURN(WatchSeries series,
                             WatchSeriesFromName(series_name->string));
    Timeline::SketchKey key;
    key.series = static_cast<uint16_t>(series);
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t dim, ReadUInt(entry, "dim"));
    key.dim = static_cast<uint32_t>(dim);
    FLEXRPC_ASSIGN_OR_RETURN(key.window, ReadUInt(entry, "window"));
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t count, ReadUInt(entry, "count"));
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t sum, ReadUInt(entry, "sum"));
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t min, ReadUInt(entry, "min"));
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t max, ReadUInt(entry, "max"));
    const JsonValue* buckets = entry.Find("buckets");
    if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray) {
      return InvalidArgumentError("timeline: sketch without buckets");
    }
    std::map<uint32_t, uint64_t> cells;
    for (const JsonValue& pair : buckets->array) {
      if (pair.kind != JsonValue::Kind::kArray || pair.array.size() != 2 ||
          !pair.array[0].IsNumber() || !pair.array[1].IsNumber()) {
        return InvalidArgumentError("timeline: malformed sketch bucket");
      }
      cells[static_cast<uint32_t>(pair.array[0].number)] =
          static_cast<uint64_t>(pair.array[1].number);
    }
    timeline.sketches[key] =
        QuantileSketch::FromParts(count, sum, min, max, std::move(cells));
  }
  return timeline;
}

}  // namespace flexrpc
