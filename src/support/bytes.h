// Bounds-checked byte stream primitives used by the marshal engines.
//
// ByteWriter appends big-endian or little-endian scalars and raw spans to a
// growable buffer; ByteReader consumes them and reports truncation as a
// Status instead of crashing, which the failure-injection tests rely on.

#ifndef FLEXRPC_SRC_SUPPORT_BYTES_H_
#define FLEXRPC_SRC_SUPPORT_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace flexrpc {

using ByteSpan = std::span<const uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v) { buffer_.push_back(v); }

  void WriteU16Be(uint16_t v) {
    buffer_.push_back(static_cast<uint8_t>(v >> 8));
    buffer_.push_back(static_cast<uint8_t>(v));
  }

  void WriteU32Be(uint32_t v) {
    buffer_.push_back(static_cast<uint8_t>(v >> 24));
    buffer_.push_back(static_cast<uint8_t>(v >> 16));
    buffer_.push_back(static_cast<uint8_t>(v >> 8));
    buffer_.push_back(static_cast<uint8_t>(v));
  }

  void WriteU64Be(uint64_t v) {
    WriteU32Be(static_cast<uint32_t>(v >> 32));
    WriteU32Be(static_cast<uint32_t>(v));
  }

  void WriteBytes(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  void WriteSpan(ByteSpan span) { WriteBytes(span.data(), span.size()); }

  // Appends `count` zero bytes (XDR padding).
  void WriteZeros(size_t count) { buffer_.insert(buffer_.end(), count, 0); }

  // Overwrites 4 bytes at `offset` (for back-patched length fields).
  void PatchU32Be(size_t offset, uint32_t v) {
    buffer_[offset] = static_cast<uint8_t>(v >> 24);
    buffer_[offset + 1] = static_cast<uint8_t>(v >> 16);
    buffer_[offset + 2] = static_cast<uint8_t>(v >> 8);
    buffer_[offset + 3] = static_cast<uint8_t>(v);
  }

  size_t size() const { return buffer_.size(); }
  ByteSpan span() const { return ByteSpan(buffer_.data(), buffer_.size()); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  void Clear() { buffer_.clear(); }

 private:
  std::vector<uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return remaining() == 0; }

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) {
      return Truncated("u8");
    }
    return data_[pos_++];
  }

  Result<uint16_t> ReadU16Be() {
    if (remaining() < 2) {
      return Truncated("u16");
    }
    uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  Result<uint32_t> ReadU32Be() {
    if (remaining() < 4) {
      return Truncated("u32");
    }
    uint32_t v = static_cast<uint32_t>(data_[pos_]) << 24 |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64Be() {
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t hi, ReadU32Be());
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t lo, ReadU32Be());
    return (hi << 32) | lo;
  }

  // Copies `size` bytes into `dest`.
  Status ReadBytes(void* dest, size_t size) {
    if (remaining() < size) {
      return DataLossError("truncated byte stream reading raw bytes");
    }
    std::memcpy(dest, data_.data() + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  // Returns a view of the next `size` bytes without copying.
  Result<ByteSpan> ReadView(size_t size) {
    if (remaining() < size) {
      return Status(StatusCode::kDataLoss,
                    "truncated byte stream reading view");
    }
    ByteSpan view = data_.subspan(pos_, size);
    pos_ += size;
    return view;
  }

  Status Skip(size_t size) {
    if (remaining() < size) {
      return DataLossError("truncated byte stream skipping bytes");
    }
    pos_ += size;
    return Status::Ok();
  }

 private:
  Status Truncated(const char* what) {
    return DataLossError(std::string("truncated byte stream reading ") +
                         what);
  }

  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_BYTES_H_
