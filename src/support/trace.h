// flextrace — the per-call observability layer.
//
// The paper's evaluation (§4) is entirely about *counting work*: copies,
// allocations, name-table traffic, register save/clear/restore, bytes on
// the wire. flextrace makes those counts first-class runtime data so every
// benchmark (and any embedding application) can emit them as a
// machine-readable artifact instead of a hand-transcribed table.
//
// Design constraints, in order:
//   1. Zero overhead when disabled. Tracing is off by default; every trace
//      point is one relaxed atomic bool load and a predictable branch.
//      No strings, no hashing, no locks anywhere near a hot path: the
//      counter catalog is a closed enum indexing a flat array.
//   2. Exact and deterministic when enabled. Counters count operations the
//      simulation performs, so two runs of the same fixed-iteration
//      workload produce identical values — which is what lets CI gate on
//      them with equality-tight budgets (tools/flextrace).
//   3. Thread-safe. Counters and histogram buckets are relaxed atomics, so
//      the TSan suite (tools/ci.sh, FLEXRPC_SANITIZE=thread) stays clean
//      even when multiple tasks trace concurrently.
//
// Vocabulary:
//   * TraceCounter  — a monotonic event/byte count (one enum per source).
//   * TraceHistogram — power-of-two-bucketed value distribution with
//     count/sum, used for span timers and per-message sizes. Virtual-clock
//     durations (modeled wire time) use the same shape.
//   * TraceSpan — RAII wall-clock span timer feeding a histogram.
//   * TraceSession — enables tracing, snapshots a baseline, and reports
//     the delta as a structured object or JSON.

#ifndef FLEXRPC_SRC_SUPPORT_TRACE_H_
#define FLEXRPC_SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/timing.h"

namespace flexrpc {

// The closed counter catalog. Names (TraceCounterName) are dot-separated
// and stable: budgets, dashboards, and EXPERIMENTS.md refer to them.
// Append new counters at the end of their section; never renumber.
enum class TraceCounter : uint16_t {
  // osim: the simulated kernel.
  kKernelTraps = 0,          // kernel.traps
  kPortTransfersUnique,      // kernel.port_transfers.unique
  kPortTransfersNonunique,   // kernel.port_transfers.nonunique
  kNameTableLookups,         // names.lookups
  kNameTableInserts,         // names.inserts
  kNameTableReverseHits,     // names.reverse_hits (unique insert found one)
  kNameTableReleases,        // names.releases

  // support: arena allocator traffic ("allocations" in the paper's sense).
  kArenaBumpAllocs,          // arena.bump_allocs
  kArenaBumpBytes,           // arena.bump_bytes
  kArenaBlockAllocs,         // arena.block_allocs
  kArenaBlockFrees,          // arena.block_frees
  kArenaBlockBytes,          // arena.block_bytes

  // Cross-layer data-copy accounting ("copies" in the paper's sense):
  // every traced memcpy of payload data, wherever it happens.
  kDataCopies,               // mem.copies
  kDataCopyBytes,            // mem.copy_bytes

  // ipc: transports.
  kIpcFastpathCalls,         // ipc.fastpath.calls
  kIpcOldpathCalls,          // ipc.oldpath.calls
  kIpcOldpathDescriptors,    // ipc.oldpath.descriptors
  kIpcBytesCopied,           // ipc.bytes_copied
  kIpcThreadedCalls,         // ipc.threaded.calls
  kIpcThreadedOps,           // ipc.threaded.ops
  kRegistersSaved,           // ipc.registers.saved
  kRegistersCleared,         // ipc.registers.cleared
  kRegistersRestored,        // ipc.registers.restored
  kSigCacheHits,             // ipc.sigcache.hits
  kSigCacheMisses,           // ipc.sigcache.misses

  // rpc: runtime and same-domain engine.
  kRpcBinds,                 // rpc.binds
  kRpcClientCalls,           // rpc.client.calls
  kRpcDispatches,            // rpc.server.dispatches
  kRpcRequestBytes,          // rpc.request_bytes
  kRpcReplyBytes,            // rpc.reply_bytes
  kSameDomainCalls,          // rpc.samedomain.calls
  kSameDomainCopies,         // rpc.samedomain.copies
  kSameDomainCopyBytes,      // rpc.samedomain.copy_bytes
  kRpcRetransmits,           // rpc.retry.retransmits
  kRpcBackoffNanos,          // rpc.retry.backoff_nanos (virtual clock)
  kRpcDeadlineExpiries,      // rpc.retry.deadline_expiries
  kRpcUnavailableFailures,   // rpc.retry.unavailable (budget exhausted)
  kRpcStaleReplies,          // rpc.retry.stale_replies (late duplicates)
  kRpcCorruptReplies,        // rpc.retry.corrupt_replies
  kRpcDupCacheHits,          // rpc.dupcache.hits (at-most-once suppressions)
  kRpcDupCacheMisses,        // rpc.dupcache.misses (work executions)
  kRpcPipelineCalls,         // rpc.pipeline.calls
  kRpcPipelineRetransmits,   // rpc.pipeline.retransmits
  kRpcPipelineStaleReplies,  // rpc.pipeline.stale_replies
  kRpcPipelineOutOfOrder,    // rpc.pipeline.out_of_order (completions that
                             //   beat an older in-flight xid)
  kRpcPipelineWindowStalls,  // rpc.pipeline.window_stalls (waited for a slot)
  kRpcPipelineEvents,        // rpc.pipeline.events (event-queue dispatches)
  kRpcRttSamples,            // rpc.rtt.samples (clean RTT measurements)
  kRpcRttKarnSkips,          // rpc.rtt.karn_skips (retransmit-ambiguous
                             //   replies excluded from estimation)
  kRpcRttClamps,             // rpc.rtt.clamps (RTO hit a min/max bound)
  kRpcCwndIncreases,         // rpc.cwnd.increases (additive window growth)
  kRpcCwndDecreases,         // rpc.cwnd.decreases (multiplicative halvings)
  kRpcBinderCalls,           // rpc.binder.calls (calls routed by a binding)
  kRpcBinderReissues,        // rpc.binder.reissues (in-flight xids moved to
                             //   another replica)
  kRpcBinderProbes,          // rpc.binder.probes (health probes sent)
  kRpcBinderCutovers,        // rpc.binder.cutovers (primary changed)
  kRpcFailoverSuspects,      // rpc.failover.suspects (healthy -> suspect)
  kRpcFailoverReinstates,    // rpc.failover.reinstates (probe succeeded)
  kRpcMuxConnsOpened,        // rpc.mux.conns_opened
  kRpcMuxCalls,              // rpc.mux.calls (submissions across all conns)
  kRpcMuxRetransmits,        // rpc.mux.retransmits
  kRpcMuxStaleReplies,       // rpc.mux.stale_replies (no in-flight match)
  kRpcMuxFlowStalls,         // rpc.mux.flow_stalls (queued behind the
                             //   per-connection window)
  kRpcDispatchAccepts,       // rpc.dispatch.accepts (frames admitted)
  kRpcDispatchExecutions,    // rpc.dispatch.executions (worker runs)
  kRpcDispatchShed,          // rpc.dispatch.shed (requests dropped at a
                             //   full accept/run queue)
  kRpcDupCacheEvictions,     // rpc.dupcache.evictions (LRU pushed an xid out)
  kRpcDupCacheEvictedReexecs,  // rpc.dupcache.evicted_reexecs (an evicted
                               //   xid was executed again — the at-most-once
                               //   hazard the per-connection sizing prevents)

  // marshal: interpreter opcode mix.
  kMarshalOpScalar,          // marshal.ops.scalar
  kMarshalOpBytes,           // marshal.ops.bytes
  kMarshalOpString,          // marshal.ops.string
  kMarshalOpStruct,          // marshal.ops.struct
  kMarshalOpUnion,           // marshal.ops.union
  kMarshalOpSpecial,         // marshal.ops.special
  kMarshalBytesOut,          // marshal.bytes_marshaled
  kMarshalBytesIn,           // marshal.bytes_unmarshaled
  kMarshalSpecHits,          // marshal.spec.hit
  kMarshalSpecMisses,        // marshal.spec.miss

  // fbuf: reference passing vs copying.
  kFbufAllocs,               // fbuf.allocs
  kFbufChannelCalls,         // fbuf.channel.calls
  kFbufSpliceSegments,       // fbuf.splice_segments
  kFbufBytesByReference,     // fbuf.bytes_by_reference
  kFbufBytesCopied,          // fbuf.bytes_copied

  // net: the modeled wire.
  kNetTransfers,             // net.transfers
  kNetPackets,               // net.packets
  kNetBytesOnWire,           // net.bytes_on_wire
  kNetWireVirtualNanos,      // net.wire_virtual_nanos
  kNetDatagramsSent,         // net.datagrams_sent (framed sends attempted)
  kNetDatagramsDelivered,    // net.datagrams_delivered (valid receives)
  kNetFaultDrops,            // net.fault.drops
  kNetFaultDups,             // net.fault.dups
  kNetFaultReorders,         // net.fault.reorders
  kNetFaultCorrupts,         // net.fault.corrupts
  kNetFaultExtraDelayNanos,  // net.fault.extra_delay_nanos (virtual clock)
  kNetChecksumFailures,      // net.checksum_failures (corruption detected)
  kNetFrameCopies,           // net.frame_copies (frame buffers copied in Send)

  kCount,
};

enum class TraceHistogram : uint16_t {
  kRpcMarshalNanos = 0,      // rpc.marshal_nanos (client request marshal)
  kRpcUnmarshalNanos,        // rpc.unmarshal_nanos (client reply unmarshal)
  kRpcDispatchNanos,         // rpc.dispatch_nanos (server-side dispatch)
  kIpcMessageBytes,          // ipc.message_bytes (per-message size)
  kNetTransferVirtualNanos,  // net.transfer_virtual_nanos (modeled wire)
  kRpcDispatchQueueDepth,    // rpc.dispatch.queue_depth (run-queue depth
                             //   observed at each admission)
  kCount,
};

inline constexpr size_t kTraceCounterCount =
    static_cast<size_t>(TraceCounter::kCount);
inline constexpr size_t kTraceHistogramCount =
    static_cast<size_t>(TraceHistogram::kCount);
// Bucket i counts values v with 2^(i-1) <= v < 2^i (bucket 0: v == 0).
inline constexpr size_t kTraceHistogramBuckets = 40;

// Stable dot-separated names for serialization and budgets.
std::string_view TraceCounterName(TraceCounter c);
std::string_view TraceHistogramName(TraceHistogram h);

namespace trace_internal {

struct HistogramCells {
  std::atomic<uint64_t> buckets[kTraceHistogramBuckets];
  std::atomic<uint64_t> count;
  std::atomic<uint64_t> sum;
};

extern std::atomic<bool> g_enabled;
extern std::atomic<uint64_t> g_counters[kTraceCounterCount];
extern HistogramCells g_histograms[kTraceHistogramCount];

void ObserveSlow(TraceHistogram h, uint64_t value);

}  // namespace trace_internal

// True while some TraceSession (or an explicit SetTraceEnabled) has
// tracing on. The relaxed load compiles to a plain byte load.
inline bool TraceEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

// Manual switch. TraceSession is the usual owner; benches use this to
// measure the disabled path while a session is active.
void SetTraceEnabled(bool enabled);

// Counts `n` events on `c`. The whole body folds to a test-and-skip when
// tracing is disabled — safe on any hot path.
inline void TraceAdd(TraceCounter c, uint64_t n = 1) {
  if (TraceEnabled()) {
    trace_internal::g_counters[static_cast<size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }
}

// Records `value` into histogram `h`.
inline void TraceObserve(TraceHistogram h, uint64_t value) {
  if (TraceEnabled()) {
    trace_internal::ObserveSlow(h, value);
  }
}

// Zeroes every counter and histogram (not the enabled flag).
void ResetTrace();

// RAII wall-clock span feeding a histogram; captures nothing when tracing
// is disabled at construction.
class TraceSpan {
 public:
  explicit TraceSpan(TraceHistogram h)
      : histogram_(h), armed_(TraceEnabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~TraceSpan() {
    if (armed_) {
      uint64_t nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
      TraceObserve(histogram_, nanos);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceHistogram histogram_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

// RAII *virtual-clock* span feeding a histogram. TraceSpan reads the host
// clock, so its observations differ run-over-run — fine for the osim
// microbenches it times, but poison for any artifact gated on byte
// identity. Deterministic paths (the event-driven transports, whose
// server-exec time is charged to a VirtualClock) use this variant: the
// recorded duration is however far the models advanced the clock between
// construction and destruction, so two same-seed runs observe identical
// values. A null clock disarms the span.
class VirtualTraceSpan {
 public:
  VirtualTraceSpan(TraceHistogram h, const VirtualClock* clock)
      : histogram_(h), clock_(TraceEnabled() ? clock : nullptr) {
    if (clock_ != nullptr) {
      start_nanos_ = clock_->now_nanos();
    }
  }
  ~VirtualTraceSpan() {
    if (clock_ != nullptr) {
      TraceObserve(histogram_, clock_->now_nanos() - start_nanos_);
    }
  }

  VirtualTraceSpan(const VirtualTraceSpan&) = delete;
  VirtualTraceSpan& operator=(const VirtualTraceSpan&) = delete;

 private:
  TraceHistogram histogram_;
  const VirtualClock* clock_;
  uint64_t start_nanos_ = 0;
};

// Point-in-time copy of the whole registry.
struct TraceSnapshot {
  uint64_t counters[kTraceCounterCount] = {};
  struct Histogram {
    uint64_t buckets[kTraceHistogramBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  Histogram histograms[kTraceHistogramCount];

  uint64_t counter(TraceCounter c) const {
    return counters[static_cast<size_t>(c)];
  }
  const Histogram& histogram(TraceHistogram h) const {
    return histograms[static_cast<size_t>(h)];
  }
};

TraceSnapshot CaptureTrace();

// b - a, fieldwise. Meaningful when `a` was captured before `b` with no
// intervening ResetTrace.
TraceSnapshot TraceDelta(const TraceSnapshot& a, const TraceSnapshot& b);

// Serializes a snapshot as one JSON object:
//   {"counters": {"kernel.traps": 12, ...},
//    "histograms": {"rpc.marshal_nanos": {"count":..,"sum":..,
//                                         "buckets":[..]}, ...}}
// Every counter in the catalog appears, including zeros, so downstream
// consumers (budget gate, diffs) never see a missing key. Histograms with
// zero observations are elided; `buckets` holds [bucket_index, count]
// pairs for the non-empty buckets.
std::string TraceSnapshotToJson(const TraceSnapshot& snapshot);

// Same serialization, written as a nested value into an existing writer
// (the caller has already positioned it, e.g. after a Key()).
class JsonWriter;
void WriteTraceSnapshot(JsonWriter& w, const TraceSnapshot& snapshot);

// Scoped measurement window: enables tracing on construction (remembering
// the previous state), captures a baseline, and reports deltas on demand.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Work counters accumulated since construction (or since the enclosing
  // baseline was re-armed with Rebase).
  TraceSnapshot Report() const;
  std::string ReportJson() const { return TraceSnapshotToJson(Report()); }

  // Moves the baseline to "now" — everything before is discarded.
  void Rebase();

 private:
  TraceSnapshot baseline_;
  bool was_enabled_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_TRACE_H_
