// Lightweight error-handling primitives used throughout flexrpc.
//
// The library does not use exceptions for anticipated failures (parse errors,
// transport failures, exhausted pools). Functions that can fail return a
// Status, or a Result<T> when they also produce a value.

#ifndef FLEXRPC_SRC_SUPPORT_STATUS_H_
#define FLEXRPC_SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace flexrpc {

// Coarse error taxonomy. Codes are stable and intended for programmatic
// dispatch; the message carries the human-readable detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed something structurally wrong
  kNotFound,           // name/port/file lookup failed
  kAlreadyExists,      // duplicate registration
  kFailedPrecondition, // object in wrong state for the operation
  kOutOfRange,         // index/offset beyond bounds
  kResourceExhausted,  // pool/queue/arena is full
  kUnimplemented,      // feature intentionally not supported
  kDataLoss,           // malformed or truncated wire data
  kPermissionDenied,   // trust/contract violation
  kInternal,           // invariant violation ("should never happen")
  kDeadlineExceeded,   // the call's deadline passed before completion
  kUnavailable,        // transient transport failure; safe to retry later
};

// Returns the canonical spelling of a code, e.g. "INVALID_ARGUMENT".
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring the code names.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);
Status PermissionDeniedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnavailableError(std::string message);

// A value of type T or a non-OK Status. Accessing the value when the result
// holds an error is a programming bug and asserts.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}                 // NOLINT
  Result(Status status) : storage_(std::move(status)) {           // NOLINT
    assert(!std::get<Status>(storage_).ok() &&
           "cannot construct Result<T> from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(storage_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

// Propagates a non-OK Status out of the current function.
#define FLEXRPC_RETURN_IF_ERROR(expr)        \
  do {                                       \
    ::flexrpc::Status _st = (expr);          \
    if (!_st.ok()) {                         \
      return _st;                            \
    }                                        \
  } while (0)

// Evaluates a Result<T> expression; on error returns its status, otherwise
// moves the value into `lhs` (which must be a declaration or assignable).
#define FLEXRPC_ASSIGN_OR_RETURN(lhs, expr)                \
  FLEXRPC_ASSIGN_OR_RETURN_IMPL_(                          \
      FLEXRPC_STATUS_CONCAT_(_result_, __LINE__), lhs, expr)

#define FLEXRPC_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                   \
  if (!result.ok()) {                                     \
    return result.status();                               \
  }                                                       \
  lhs = std::move(result).value()

#define FLEXRPC_STATUS_CONCAT_INNER_(a, b) a##b
#define FLEXRPC_STATUS_CONCAT_(a, b) FLEXRPC_STATUS_CONCAT_INNER_(a, b)

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_STATUS_H_
