#include "src/support/arena.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "src/support/trace.h"

namespace flexrpc {

namespace {
constexpr size_t kMinChunkSize = 256u << 10;  // 256 KiB

size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}
}  // namespace

Arena::Arena(std::string name, size_t capacity)
    : name_(std::move(name)), capacity_(capacity) {}

Arena::~Arena() = default;

Arena::Chunk& Arena::ChunkWithRoom(size_t size, size_t align) {
  if (!chunks_.empty()) {
    Chunk& last = chunks_.back();
    uintptr_t base = reinterpret_cast<uintptr_t>(last.data.get());
    size_t aligned = AlignUp(base + last.used, align) - base;
    if (aligned + size <= last.size) {
      return last;
    }
  }
  size_t chunk_size = kMinChunkSize;
  while (chunk_size < size + align) {
    chunk_size *= 2;
  }
  if (bytes_allocated_ + chunk_size > capacity_ &&
      bytes_allocated_ + size > capacity_) {
    std::fprintf(stderr, "flexrpc: arena '%s' exhausted (%zu + %zu > %zu)\n",
                 name_.c_str(), bytes_allocated_, size, capacity_);
    std::abort();
  }
  Chunk chunk;
  chunk.data = std::make_unique<uint8_t[]>(chunk_size);
  chunk.size = chunk_size;
  chunks_.push_back(std::move(chunk));
  return chunks_.back();
}

void* Arena::Allocate(size_t size, size_t align) {
  if (size == 0) {
    size = 1;
  }
  Chunk& chunk = ChunkWithRoom(size, align);
  uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get());
  size_t offset = AlignUp(base + chunk.used, align) - base;
  chunk.used = offset + size;
  bytes_allocated_ += size;
  TraceAdd(TraceCounter::kArenaBumpAllocs);
  TraceAdd(TraceCounter::kArenaBumpBytes, size);
  return chunk.data.get() + offset;
}

size_t Arena::SizeClassFor(size_t size) {
  // Power-of-two classes from 32 bytes up.
  size_t cls = 32;
  while (cls < size) {
    cls *= 2;
  }
  return cls;
}

void* Arena::AllocateBlock(size_t size) {
  size_t cls = SizeClassFor(size);
  ++block_allocs_;
  TraceAdd(TraceCounter::kArenaBlockAllocs);
  TraceAdd(TraceCounter::kArenaBlockBytes, cls);
  auto it = free_lists_.find(cls);
  if (it != free_lists_.end() && !it->second.empty()) {
    void* ptr = it->second.back();
    it->second.pop_back();
    return ptr;
  }
  void* mem =
      Allocate(sizeof(BlockHeader) + cls, alignof(std::max_align_t));
  auto* header = static_cast<BlockHeader*>(mem);
  header->size_class = static_cast<uint32_t>(cls);
  header->magic = kBlockMagic;
  return header + 1;
}

void Arena::FreeBlock(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  auto* header = static_cast<BlockHeader*>(ptr) - 1;
  if (header->magic != kBlockMagic) {
    std::fprintf(stderr,
                 "flexrpc: arena '%s': FreeBlock on non-block pointer\n",
                 name_.c_str());
    std::abort();
  }
  ++block_frees_;
  TraceAdd(TraceCounter::kArenaBlockFrees);
  free_lists_[header->size_class].push_back(ptr);
}

bool Arena::Owns(const void* ptr) const {
  const auto* p = static_cast<const uint8_t*>(ptr);
  for (const Chunk& chunk : chunks_) {
    if (p >= chunk.data.get() && p < chunk.data.get() + chunk.size) {
      return true;
    }
  }
  return false;
}

void Arena::Reset() {
  chunks_.clear();
  free_lists_.clear();
  bytes_allocated_ = 0;
  block_allocs_ = 0;
  block_frees_ = 0;
}

}  // namespace flexrpc
