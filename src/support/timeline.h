// flexwatch — virtual-clock time-series telemetry, the third leg of the
// observability stack next to flextrace (end-of-run aggregate counters)
// and flexrec (per-call event rings).
//
// flextrace answers "how much work did the whole run do"; flexrec answers
// "what happened to call #N". Neither answers "when did queueing begin,
// which connection saturated first, and how did shed rate and queue depth
// co-evolve". flexwatch does: a TimelineSampler rides the same EventQueue
// that drives the simulation and, every `tick_nanos` of *virtual* time,
// closes a window — snapshotting deltas of registered cumulative counters
// and instantaneous gauge reads — while dimensioned observations
// (per-connection call latency, per-worker execution time, per-replica
// latency, queue depth) stream into per-(series, dim, window) quantile
// sketches.
//
// Design constraints, in order (the same three as flextrace):
//   1. Zero overhead when no sampler is installed: WatchObserve is one
//      relaxed pointer load and a predictable branch.
//   2. Deterministic. Every timestamp, window index, and sketch bucket is
//      derived from the VirtualClock, and the sampler's tick events touch
//      no simulation state — they only *read* registered sources — so a
//      run with a sampler installed replays the exact same event order as
//      one without, and two same-seed runs serialize to byte-identical
//      TIMELINE_*.json artifacts (gated in fleet_soak_test). No floats
//      are ever serialized.
//   3. Bounded. The tick reschedules itself only while other events are
//      pending, so a sampler never keeps an event loop alive: when the
//      tick pops with an empty queue it stops, and Stop() flushes the
//      final partial window. (Corollary: ticks do not resume if new work
//      is scheduled after the queue has gone idle — the simulations here
//      schedule all arrivals up front, so quiescence is terminal.)
//
// The sketch is fixed-bucket log-linear (HDR-style): 16 linear sub-buckets
// per power of two, values below 32 exact, giving a guaranteed relative
// error of at most 1/16 on any quantile while staying integer-only and
// mergeable (merge = bucket-wise add, associative and commutative).

#ifndef FLEXRPC_SRC_SUPPORT_TIMELINE_H_
#define FLEXRPC_SRC_SUPPORT_TIMELINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/event_queue.h"
#include "src/support/status.h"
#include "src/support/trace.h"

namespace flexrpc {

// Mergeable log-linear histogram with deterministic integer buckets.
// Values 0..31 land in exact buckets; larger values keep their top five
// significant bits (16 sub-buckets per power of two), so any reported
// quantile is the true bucket's inclusive upper bound and overshoots the
// exact percentile by at most a factor of 1/16.
class QuantileSketch {
 public:
  // Bucket index for a value (dense, monotonic in the value).
  static uint32_t BucketOf(uint64_t value);
  // Inclusive [low, high] value range covered by a bucket.
  static uint64_t BucketLowValue(uint32_t bucket);
  static uint64_t BucketHighValue(uint32_t bucket);

  void Record(uint64_t value);
  // Bucket-wise sum; associative and commutative.
  void Merge(const QuantileSketch& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  bool empty() const { return count_ == 0; }

  // Upper bound of the bucket holding the rank-ceil(q * count) sample
  // (q clamped to [0, 1]; 0 on an empty sketch). Exact min/max are
  // substituted at the extremes so Quantile(0) == min() and
  // Quantile(1) == max().
  uint64_t Quantile(double q) const;

  // Sparse (bucket -> count) cells in ascending bucket order — the
  // serialized form and the deterministic iteration order.
  const std::map<uint32_t, uint64_t>& buckets() const { return buckets_; }

  // Reassembles a sketch from its serialized parts (ParseTimeline).
  static QuantileSketch FromParts(uint64_t count, uint64_t sum, uint64_t min,
                                  uint64_t max,
                                  std::map<uint32_t, uint64_t> buckets);

 private:
  std::map<uint32_t, uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// The closed catalog of dimensioned observation series. Names are stable:
// TIMELINE_*.json artifacts, the timeline budget gate, and EXPERIMENTS.md
// refer to them. Append at the end; never renumber.
enum class WatchSeries : uint16_t {
  kCallLatency = 0,  // call_latency_nanos  (dim: mux connection id; 0 = none)
  kReplicaLatency,   // replica_latency_nanos (dim: replica tag, 1-based)
  kWorkerExec,       // worker_exec_nanos  (dim: dispatch worker, 1-based)
  kQueueDepth,       // queue_depth        (dim: 0)
  kCount,
};

std::string_view WatchSeriesName(WatchSeries series);
Result<WatchSeries> WatchSeriesFromName(std::string_view name);

// A finished timeline: per-window counter deltas, gauge samples, and the
// dimensioned sketches. `ticks` counts recorded windows, including the
// final partial window Stop() flushes when the run ends mid-window.
struct Timeline {
  uint64_t tick_nanos = 0;
  uint64_t start_nanos = 0;
  uint64_t end_nanos = 0;
  uint64_t ticks = 0;

  struct Series {
    std::string name;
    std::vector<uint64_t> samples;  // one per recorded window
  };
  std::vector<Series> counters;  // window deltas of cumulative sources
  std::vector<Series> gauges;    // instantaneous reads at window close

  struct SketchKey {
    uint16_t series = 0;  // WatchSeries
    uint32_t dim = 0;
    uint64_t window = 0;
    bool operator<(const SketchKey& o) const {
      if (series != o.series) return series < o.series;
      if (dim != o.dim) return dim < o.dim;
      return window < o.window;
    }
  };
  // std::map: iteration (and therefore serialization) order is the sorted
  // key order, independent of insertion order.
  std::map<SketchKey, QuantileSketch> sketches;
};

// Serializes a timeline as the `flexrpc-timeline-v1` artifact. Integer
// fields only; two identical timelines produce byte-identical text.
std::string TimelineToJson(const Timeline& timeline);

// Parses a serialized timeline back (flexwatch_report, the --timeline
// budget gate, and diff tooling).
Result<Timeline> ParseTimeline(std::string_view json);

class TimelineSampler;

namespace watch_internal {
// The installed sampler, if any. Relaxed atomics keep the disabled path
// to a single load under TSan; the sampler itself is only touched from
// the (single-threaded) simulation that owns its EventQueue.
extern std::atomic<TimelineSampler*> g_sampler;
}  // namespace watch_internal

// Routes a dimensioned observation into the active sampler's current
// window. One relaxed load and a branch when no sampler is installed —
// safe on any hot path, mirroring TraceAdd. (Defined inline below the
// sampler class.)
inline void WatchObserve(WatchSeries series, uint32_t dim, uint64_t value);

// Periodic sampler over an EventQueue's virtual clock. Register sources,
// Start() before driving the queue, Stop() after it drains.
class TimelineSampler {
 public:
  // `events` must outlive the sampler; `tick_nanos` must be non-zero.
  TimelineSampler(EventQueue* events, uint64_t tick_nanos);
  ~TimelineSampler();

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  // A cumulative source: each window records read() - previous read().
  void AddCounter(std::string name, std::function<uint64_t()> read);
  // Registers a flextrace counter as a cumulative source under its stable
  // dot-separated name. Reads the live registry, so deltas are exact when
  // tracing is enabled and all-zero (still deterministic) when disabled.
  void AddTraceCounter(TraceCounter counter);
  // An instantaneous source: each window records read() at window close.
  void AddGauge(std::string name, std::function<uint64_t()> read);

  // Installs the sampler (aborts if another is already installed — same
  // nesting discipline as RecorderSession), snapshots counter baselines,
  // and schedules the first tick.
  void Start();

  // Flushes the final partial window, uninstalls, and returns the
  // finished timeline. Idempotent.
  Timeline Stop();

  // WatchObserve's target; callable directly in tests.
  void Observe(WatchSeries series, uint32_t dim, uint64_t value);

  bool running() const { return running_; }

 private:
  void OnTick();
  void ScheduleNextTick();
  void SampleWindow();

  struct CounterSource {
    std::function<uint64_t()> read;
    uint64_t prev = 0;
    size_t index = 0;  // into timeline_.counters
  };
  struct GaugeSource {
    std::function<uint64_t()> read;
    size_t index = 0;  // into timeline_.gauges
  };

  EventQueue* events_;
  uint64_t tick_nanos_;
  std::vector<CounterSource> counter_sources_;
  std::vector<GaugeSource> gauge_sources_;
  Timeline timeline_;
  bool running_ = false;
  bool tick_armed_ = false;
  EventQueue::EventId tick_event_ = EventQueue::kInvalidEvent;
  uint64_t sampled_through_nanos_ = 0;
};

inline void WatchObserve(WatchSeries series, uint32_t dim, uint64_t value) {
  TimelineSampler* sampler =
      watch_internal::g_sampler.load(std::memory_order_relaxed);
  if (sampler != nullptr) {
    sampler->Observe(series, dim, value);
  }
}

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_TIMELINE_H_
