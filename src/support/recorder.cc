#include "src/support/recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/support/json.h"
#include "src/support/strings.h"
#include "src/support/timeline.h"

namespace flexrpc {
namespace rec_internal {

std::atomic<bool> g_enabled{false};

namespace {

// The ring itself: slots are sized once per session (before recording is
// enabled) and written at a fetch_add'ed index, so concurrent recorders
// never contend on anything but the index counter.
std::vector<RecordedEvent> g_slots;
std::atomic<uint64_t> g_next{0};

thread_local uint32_t tls_replica_tag = 0;
thread_local uint32_t tls_conn_tag = 0;

uint64_t WallNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void RecordSlow(RecEvent type, RecEndpoint endpoint, uint32_t xid,
                uint64_t virtual_nanos, uint64_t a, uint64_t b) {
  uint64_t index = g_next.fetch_add(1, std::memory_order_relaxed);
  RecordedEvent& slot = g_slots[index % g_slots.size()];
  slot.virtual_nanos = virtual_nanos;
  slot.wall_nanos = WallNanos();
  slot.a = a;
  slot.b = b;
  slot.xid = xid;
  slot.replica = tls_replica_tag;
  slot.conn = tls_conn_tag;
  slot.type = type;
  slot.endpoint = endpoint;
}

}  // namespace rec_internal

namespace {

// Indexed by RecEvent value; keep in lockstep with the enum.
constexpr std::string_view kRecEventNames[kRecEventCount] = {
    "call_submit",
    "marshal_begin",
    "marshal_end",
    "wire_tx",
    "wire_rx",
    "fault_drop",
    "fault_dup",
    "fault_corrupt",
    "fault_delay",
    "server_exec_begin",
    "server_exec_end",
    "retransmit",
    "rto_fire",
    "reply_match",
    "reply_stale",
    "reply_late",
    "call_complete",
    "rtt_sample",
    "cwnd_change",
    "failover",
    "rebind",
    "dispatch_shed",
};

constexpr std::string_view kRecEndpointNames[kRecEndpointCount] = {
    "client",
    "server",
    "wire.a2b",
    "wire.b2a",
};

template <size_t N>
constexpr bool NamesNonEmptyAndUnique(const std::string_view (&names)[N]) {
  for (size_t i = 0; i < N; ++i) {
    if (names[i].empty()) {
      return false;
    }
    for (size_t j = i + 1; j < N; ++j) {
      if (names[i] == names[j]) {
        return false;
      }
    }
  }
  return true;
}

static_assert(NamesNonEmptyAndUnique(kRecEventNames),
              "RecEvent name table must cover the enum with unique names");
static_assert(NamesNonEmptyAndUnique(kRecEndpointNames),
              "RecEndpoint name table must cover the enum with unique names");

thread_local bool tls_scope_active = false;
thread_local uint32_t tls_scope_xid = 0;
thread_local const VirtualClock* tls_scope_clock = nullptr;

}  // namespace

std::string_view RecEventName(RecEvent e) {
  return kRecEventNames[static_cast<size_t>(e)];
}

std::string_view RecEndpointName(RecEndpoint e) {
  return kRecEndpointNames[static_cast<size_t>(e)];
}

RecorderCallScope::RecorderCallScope(uint32_t xid, const VirtualClock* clock)
    : prev_xid_(tls_scope_xid),
      prev_clock_(tls_scope_clock),
      prev_active_(tls_scope_active) {
  tls_scope_xid = xid;
  tls_scope_clock = clock;
  tls_scope_active = true;
}

RecorderCallScope::~RecorderCallScope() {
  tls_scope_xid = prev_xid_;
  tls_scope_clock = prev_clock_;
  tls_scope_active = prev_active_;
}

RecorderReplicaScope::RecorderReplicaScope(uint32_t replica_tag)
    : prev_tag_(rec_internal::tls_replica_tag) {
  rec_internal::tls_replica_tag = replica_tag;
}

RecorderReplicaScope::~RecorderReplicaScope() {
  rec_internal::tls_replica_tag = prev_tag_;
}

uint32_t RecorderReplicaScope::Current() {
  return rec_internal::tls_replica_tag;
}

RecorderConnScope::RecorderConnScope(uint32_t conn_tag)
    : prev_tag_(rec_internal::tls_conn_tag) {
  rec_internal::tls_conn_tag = conn_tag;
}

RecorderConnScope::~RecorderConnScope() {
  rec_internal::tls_conn_tag = prev_tag_;
}

uint32_t RecorderConnScope::Current() { return rec_internal::tls_conn_tag; }

bool RecorderCallScope::Active() { return tls_scope_active; }

uint32_t RecorderCallScope::CurrentXid() { return tls_scope_xid; }

uint64_t RecorderCallScope::CurrentVirtualNanos() {
  return tls_scope_clock != nullptr ? tls_scope_clock->now_nanos() : 0;
}

RecorderSession::RecorderSession(size_t capacity) {
  if (RecorderEnabled()) {
    std::fprintf(stderr, "recorder: nested RecorderSession\n");
    std::abort();
  }
  rec_internal::g_slots.assign(capacity == 0 ? 1 : capacity,
                               RecordedEvent{});
  rec_internal::g_next.store(0, std::memory_order_relaxed);
  rec_internal::g_enabled.store(true, std::memory_order_relaxed);
}

RecorderSession::~RecorderSession() {
  if (!stopped_) {
    rec_internal::g_enabled.store(false, std::memory_order_relaxed);
  }
}

Recording RecorderSession::Stop() {
  Recording recording;
  if (stopped_) {
    return recording;
  }
  stopped_ = true;
  rec_internal::g_enabled.store(false, std::memory_order_relaxed);
  uint64_t total = rec_internal::g_next.load(std::memory_order_relaxed);
  size_t capacity = rec_internal::g_slots.size();
  recording.capacity = capacity;
  recording.total_events = total;
  if (total <= capacity) {
    recording.events.assign(rec_internal::g_slots.begin(),
                            rec_internal::g_slots.begin() +
                                static_cast<ptrdiff_t>(total));
  } else {
    // The ring wrapped: the oldest surviving event sits at total % capacity.
    recording.dropped_events = total - capacity;
    size_t start = static_cast<size_t>(total % capacity);
    recording.events.reserve(capacity);
    recording.events.insert(recording.events.end(),
                            rec_internal::g_slots.begin() +
                                static_cast<ptrdiff_t>(start),
                            rec_internal::g_slots.end());
    recording.events.insert(recording.events.end(),
                            rec_internal::g_slots.begin(),
                            rec_internal::g_slots.begin() +
                                static_cast<ptrdiff_t>(start));
  }
  return recording;
}

std::string RecordingToJson(const Recording& recording,
                            bool include_wall_nanos) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("flexrpc-rec-v1");
  w.Key("capacity").UInt(recording.capacity);
  w.Key("total_events").UInt(recording.total_events);
  w.Key("dropped_events").UInt(recording.dropped_events);
  w.Key("events").BeginArray();
  for (const RecordedEvent& e : recording.events) {
    w.BeginObject();
    w.Key("type").String(RecEventName(e.type));
    w.Key("ep").String(RecEndpointName(e.endpoint));
    w.Key("xid").UInt(e.xid);
    if (e.replica != 0) {
      // Only replicated runs carry the key, so recordings made before the
      // replica field existed — and all single-transport recordings —
      // serialize byte-identically.
      w.Key("r").UInt(e.replica);
    }
    if (e.conn != 0) {
      // Same rule as "r": only multiplexed runs carry the key, so every
      // single-connection recording stays byte-identical.
      w.Key("c").UInt(e.conn);
    }
    w.Key("vt").UInt(e.virtual_nanos);
    w.Key("a").UInt(e.a);
    w.Key("b").UInt(e.b);
    if (include_wall_nanos) {
      w.Key("wt").UInt(e.wall_nanos);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

Result<uint64_t> RequireUInt(const JsonValue& object, const char* key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || !v->IsNumber()) {
    return InvalidArgumentError(
        StrFormat("recording event missing numeric \"%s\"", key));
  }
  return static_cast<uint64_t>(v->number);
}

}  // namespace

Result<Recording> ParseRecording(std::string_view json) {
  FLEXRPC_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json));
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->string != "flexrpc-rec-v1") {
    return InvalidArgumentError("not a flexrpc-rec-v1 recording");
  }
  Recording recording;
  FLEXRPC_ASSIGN_OR_RETURN(uint64_t capacity, RequireUInt(doc, "capacity"));
  recording.capacity = static_cast<size_t>(capacity);
  FLEXRPC_ASSIGN_OR_RETURN(recording.total_events,
                           RequireUInt(doc, "total_events"));
  FLEXRPC_ASSIGN_OR_RETURN(recording.dropped_events,
                           RequireUInt(doc, "dropped_events"));
  const JsonValue* events = doc.Find("events");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return InvalidArgumentError("recording has no events array");
  }
  recording.events.reserve(events->array.size());
  for (const JsonValue& entry : events->array) {
    RecordedEvent e;
    const JsonValue* type = entry.Find("type");
    const JsonValue* ep = entry.Find("ep");
    if (type == nullptr || ep == nullptr) {
      return InvalidArgumentError("recording event missing type/ep");
    }
    bool found = false;
    for (size_t i = 0; i < kRecEventCount; ++i) {
      if (kRecEventNames[i] == type->string) {
        e.type = static_cast<RecEvent>(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return InvalidArgumentError(
          StrFormat("unknown event type \"%s\"", type->string.c_str()));
    }
    found = false;
    for (size_t i = 0; i < kRecEndpointCount; ++i) {
      if (kRecEndpointNames[i] == ep->string) {
        e.endpoint = static_cast<RecEndpoint>(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return InvalidArgumentError(
          StrFormat("unknown endpoint \"%s\"", ep->string.c_str()));
    }
    FLEXRPC_ASSIGN_OR_RETURN(uint64_t xid, RequireUInt(entry, "xid"));
    e.xid = static_cast<uint32_t>(xid);
    if (const JsonValue* r = entry.Find("r"); r != nullptr && r->IsNumber()) {
      e.replica = static_cast<uint32_t>(r->number);
    }
    if (const JsonValue* c = entry.Find("c"); c != nullptr && c->IsNumber()) {
      e.conn = static_cast<uint32_t>(c->number);
    }
    FLEXRPC_ASSIGN_OR_RETURN(e.virtual_nanos, RequireUInt(entry, "vt"));
    FLEXRPC_ASSIGN_OR_RETURN(e.a, RequireUInt(entry, "a"));
    FLEXRPC_ASSIGN_OR_RETURN(e.b, RequireUInt(entry, "b"));
    if (const JsonValue* wt = entry.Find("wt");
        wt != nullptr && wt->IsNumber()) {
      e.wall_nanos = static_cast<uint64_t>(wt->number);
    }
    recording.events.push_back(e);
  }
  return recording;
}

// --- Chrome trace_event export ------------------------------------------

namespace {

// Virtual nanoseconds -> the "ts" microsecond field, exactly (three
// decimal places keeps sub-microsecond event ordering without going
// through a double).
std::string ChromeTs(uint64_t virtual_nanos) {
  return StrFormat("%llu.%03llu",
                   static_cast<unsigned long long>(virtual_nanos / 1000),
                   static_cast<unsigned long long>(virtual_nanos % 1000));
}

// One (replica, endpoint) pair maps to one thread track. Replica 0 keeps
// the original tids 1..4, so unreplicated traces are unchanged; each
// replica tag shifts its four endpoint tracks up as a block.
uint64_t ChromeTid(uint32_t replica, RecEndpoint endpoint) {
  return static_cast<uint64_t>(replica) * kRecEndpointCount +
         static_cast<uint64_t>(endpoint) + 1;
}

// One trace event's fixed fields. tid is the (replica, endpoint) track.
void ChromeEventHead(JsonWriter& w, std::string_view name,
                     std::string_view ph, uint64_t virtual_nanos,
                     RecEndpoint endpoint, uint32_t replica = 0) {
  w.BeginObject();
  w.Key("name").String(name);
  w.Key("ph").String(ph);
  w.Key("ts").RawNumber(ChromeTs(virtual_nanos));
  w.Key("pid").UInt(0);
  w.Key("tid").UInt(ChromeTid(replica, endpoint));
}

void ChromeArgsXid(JsonWriter& w, const RecordedEvent& e) {
  w.Key("args").BeginObject();
  w.Key("xid").UInt(e.xid);
  if (e.conn != 0) {
    w.Key("conn").UInt(e.conn);
  }
  if (e.a != 0) {
    w.Key("a").UInt(e.a);
  }
  if (e.b != 0) {
    w.Key("b").UInt(e.b);
  }
  w.EndObject();
}

struct SpanKind {
  std::string_view begin_name;  // span label when opened by this event
  RecEvent end_type;
};

// One flexwatch series as a Perfetto counter track: a ph:"C" event per
// recorded window, stamped at the window-close time (the final partial
// window closes at end_nanos). tid 0 keeps counter tracks off the
// endpoint thread tracks.
void ChromeCounterSeries(JsonWriter& w, const Timeline& timeline,
                         const Timeline::Series& series) {
  for (size_t k = 0; k < series.samples.size(); ++k) {
    uint64_t ts = timeline.start_nanos + (k + 1) * timeline.tick_nanos;
    if (ts > timeline.end_nanos) {
      ts = timeline.end_nanos;
    }
    w.BeginObject();
    w.Key("name").String(series.name);
    w.Key("ph").String("C");
    w.Key("ts").RawNumber(ChromeTs(ts));
    w.Key("pid").UInt(0);
    w.Key("tid").UInt(0);
    w.Key("args").BeginObject().Key("value").UInt(series.samples[k])
        .EndObject();
    w.EndObject();
  }
}

}  // namespace

std::string ExportChromeTrace(const Recording& recording) {
  return ExportChromeTrace(recording, nullptr);
}

std::string ExportChromeTrace(const Recording& recording,
                              const Timeline* timeline) {
  // Stable-sort by virtual time: ring order is the deterministic
  // tie-break, and B/E pairing below requires chronological order.
  std::vector<const RecordedEvent*> ordered;
  ordered.reserve(recording.events.size());
  for (const RecordedEvent& e : recording.events) {
    ordered.push_back(&e);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RecordedEvent* a, const RecordedEvent* b) {
                     return a->virtual_nanos < b->virtual_nanos;
                   });
  uint64_t last_nanos =
      ordered.empty() ? 0 : ordered.back()->virtual_nanos;

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("otherData").BeginObject();
  w.Key("dropped_events").UInt(recording.dropped_events);
  w.Key("total_events").UInt(recording.total_events);
  w.EndObject();
  w.Key("traceEvents").BeginArray();

  // Track-name metadata: one named thread per endpoint.
  w.BeginObject();
  w.Key("name").String("process_name");
  w.Key("ph").String("M");
  w.Key("pid").UInt(0);
  w.Key("tid").UInt(0);
  w.Key("args").BeginObject().Key("name").String("flexrpc").EndObject();
  w.EndObject();
  // Replica tags present in the recording: 0 (the unreplicated tracks)
  // plus every tag a RecorderReplicaScope stamped. Each gets its own block
  // of endpoint tracks, named "server[r2]" style for replicas.
  std::vector<uint32_t> replicas{0};
  for (const RecordedEvent* ep : ordered) {
    if (ep->replica != 0 &&
        std::find(replicas.begin(), replicas.end(), ep->replica) ==
            replicas.end()) {
      replicas.push_back(ep->replica);
    }
  }
  std::sort(replicas.begin(), replicas.end());
  for (uint32_t replica : replicas) {
    for (size_t i = 0; i < kRecEndpointCount; ++i) {
      w.BeginObject();
      w.Key("name").String("thread_name");
      w.Key("ph").String("M");
      w.Key("pid").UInt(0);
      w.Key("tid").UInt(ChromeTid(replica, static_cast<RecEndpoint>(i)));
      std::string track(kRecEndpointNames[i]);
      if (replica != 0) {
        track += StrFormat("[r%u]", replica);
      }
      w.Key("args").BeginObject().Key("name").String(track).EndObject();
      w.EndObject();
    }
  }

  if (recording.dropped_events > 0) {
    // Make truncation visible in the viewer instead of silently showing a
    // partial timeline.
    RecordedEvent marker;
    marker.virtual_nanos =
        ordered.empty() ? 0 : ordered.front()->virtual_nanos;
    ChromeEventHead(w, "truncated", "i", marker.virtual_nanos,
                    RecEndpoint::kClient);
    w.Key("s").String("g");
    w.Key("args")
        .BeginObject()
        .Key("dropped_events")
        .UInt(recording.dropped_events)
        .EndObject();
    w.EndObject();
  }

  // B/E pairing state per (replica, endpoint) track: a truncated
  // recording can hold an End whose Begin was overwritten (suppress it)
  // or a Begin whose End never landed (close it at the final timestamp).
  // Marshal and server spans never nest within a track, so open-span
  // bookkeeping is a stack of labels.
  std::map<uint64_t, std::vector<std::string_view>> open_spans;  // by tid
  // Async call spans keyed by (conn, xid), same repair rules — xids are
  // only unique per connection under the mux. A rebound call is
  // resubmitted under the same xid on another replica; its async span
  // stays open from the first submission until the one completion.
  std::vector<uint64_t> open_calls;
  auto call_key = [](const RecordedEvent& e) {
    return (static_cast<uint64_t>(e.conn) << 32) | e.xid;
  };

  for (const RecordedEvent* ep : ordered) {
    const RecordedEvent& e = *ep;
    switch (e.type) {
      case RecEvent::kCallSubmit: {
        if (std::find(open_calls.begin(), open_calls.end(), call_key(e)) !=
            open_calls.end()) {
          break;  // re-issue on another replica; span already open
        }
        ChromeEventHead(w, "call", "b", e.virtual_nanos, e.endpoint,
                        e.replica);
        w.Key("cat").String("rpc");
        w.Key("id").UInt(call_key(e));
        ChromeArgsXid(w, e);
        w.EndObject();
        open_calls.push_back(call_key(e));
        break;
      }
      case RecEvent::kCallComplete: {
        auto it =
            std::find(open_calls.begin(), open_calls.end(), call_key(e));
        if (it == open_calls.end()) {
          break;  // begin lost to truncation
        }
        open_calls.erase(it);
        ChromeEventHead(w, "call", "e", e.virtual_nanos, e.endpoint,
                        e.replica);
        w.Key("cat").String("rpc");
        w.Key("id").UInt(call_key(e));
        ChromeArgsXid(w, e);
        w.EndObject();
        break;
      }
      case RecEvent::kMarshalBegin:
      case RecEvent::kServerExecBegin: {
        std::string_view name = e.type == RecEvent::kServerExecBegin
                                    ? "server_exec"
                                : e.a != 0 ? "unmarshal"
                                           : "marshal";
        ChromeEventHead(w, name, "B", e.virtual_nanos, e.endpoint,
                        e.replica);
        ChromeArgsXid(w, e);
        w.EndObject();
        open_spans[ChromeTid(e.replica, e.endpoint)].push_back(name);
        break;
      }
      case RecEvent::kMarshalEnd:
      case RecEvent::kServerExecEnd: {
        auto& stack = open_spans[ChromeTid(e.replica, e.endpoint)];
        if (stack.empty()) {
          break;  // begin lost to truncation
        }
        std::string_view name = stack.back();
        stack.pop_back();
        ChromeEventHead(w, name, "E", e.virtual_nanos, e.endpoint,
                        e.replica);
        w.EndObject();
        break;
      }
      default: {
        // Everything else is an instant on its (replica, endpoint) track.
        ChromeEventHead(w, RecEventName(e.type), "i", e.virtual_nanos,
                        e.endpoint, e.replica);
        w.Key("s").String("t");
        ChromeArgsXid(w, e);
        w.EndObject();
        break;
      }
    }
  }

  // Repair unmatched begins so the trace stays structurally valid. The
  // tid already encodes (replica, endpoint); emit the close directly.
  for (auto& [tid, stack] : open_spans) {
    while (!stack.empty()) {
      std::string_view name = stack.back();
      stack.pop_back();
      w.BeginObject();
      w.Key("name").String(name);
      w.Key("ph").String("E");
      w.Key("ts").RawNumber(ChromeTs(last_nanos));
      w.Key("pid").UInt(0);
      w.Key("tid").UInt(tid);
      w.EndObject();
    }
  }
  for (uint64_t key : open_calls) {
    ChromeEventHead(w, "call", "e", last_nanos, RecEndpoint::kClient);
    w.Key("cat").String("rpc");
    w.Key("id").UInt(key);
    w.EndObject();
  }

  if (timeline != nullptr) {
    for (const Timeline::Series& series : timeline->counters) {
      ChromeCounterSeries(w, *timeline, series);
    }
    for (const Timeline::Series& series : timeline->gauges) {
      ChromeCounterSeries(w, *timeline, series);
    }
  }

  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace flexrpc
