// flexrec — the per-call RPC flight recorder.
//
// flextrace (trace.h) answers "how much work did the run perform" with
// aggregate counters; this layer answers "why did THIS call take the time
// it did" with a causal, per-xid event timeline. Every interesting moment
// on the call path — submission, marshal begin/end, each physical frame
// entering and leaving the wire, every fault decision, server execution,
// retransmits and RTO fires, reply matching, completion — is recorded as
// one fixed-size typed event into a fixed-capacity lock-free ring buffer.
//
// Design constraints, in order (mirroring flextrace):
//   1. Zero overhead when disabled. Recording is off by default; every
//      record point is one relaxed atomic bool load and a predictable
//      branch. No strings, no allocation, no locks on any hot path: an
//      event is a POD slot write at a fetch_add'ed ring index.
//   2. Deterministic recordings. Events are stamped with both the
//      simulation's virtual clock and the host's wall clock, but the
//      serialized recording carries only the virtual stamps by default —
//      so two runs of the same seeded workload produce *byte-identical*
//      recordings, which is what lets the fault soak tests gate on them.
//      (Pass include_wall_nanos=true for live profiling; such recordings
//      are not run-to-run comparable.)
//   3. Bounded memory. The ring overwrites the oldest events at capacity
//      and reports how many were dropped; consumers must stay well-formed
//      under truncation (the Chrome exporter emits an explicit truncation
//      marker instead of a malformed trace).
//
// Consumers:
//   * ExportChromeTrace — Chrome trace_event-format JSON, loadable in
//     Perfetto / chrome://tracing: one track per endpoint, spans from
//     begin/end event pairs, instant events for faults and retransmits.
//   * tools/flextrace/flexrec_report (via src/analysis/flexrec.h) — a
//     deterministic per-call latency breakdown, retransmit cause
//     classification, and window-occupancy timeline.

#ifndef FLEXRPC_SRC_SUPPORT_RECORDER_H_
#define FLEXRPC_SRC_SUPPORT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"
#include "src/support/timing.h"

namespace flexrpc {

// The closed event catalog. Names (RecEventName) are stable: recordings,
// reports, and EXPERIMENTS.md refer to them. Append new events at the end;
// never renumber (serialized recordings store names, not ordinals, so old
// recordings stay readable).
enum class RecEvent : uint8_t {
  kCallSubmit = 0,   // call enters the transport        a=request bytes
  kMarshalBegin,     // stub marshal/unmarshal starts    a=1 if unmarshal
  kMarshalEnd,       // ... ends                         a=1 if unmarshal
  kWireTx,           // frame starts occupying the wire  a=occupancy ns,
                     //                                  b=propagation ns
  kWireRx,           // frame delivered intact           a=payload bytes
  kFaultDrop,        // plan dropped the frame           b=decision index
  kFaultDup,         // plan duplicated the frame        b=decision index
  kFaultCorrupt,     // plan flipped a byte              b=decision index
  kFaultDelay,       // plan held the frame back         a=extra ns,
                     //                                  b=decision index
  kServerExecBegin,  // modeled server CPU span starts   a=reply bytes
  kServerExecEnd,    // ... ends                         a=reply bytes
  kRetransmit,       // client re-sent the request       a=attempt number
  kRtoFire,          // retransmit timer fired           a=attempt number
  kReplyMatch,       // reply matched an in-flight xid   a=reply bytes
  kReplyStale,       // reply matched nothing (late dup)
  kReplyLate,        // reply matched but past deadline
  kCallComplete,     // call left the transport          a=status code
  kRttSample,        // clean RTT fed the estimator      a=sample ns,
                     //                                  b=RTO after update
  kCwndChange,       // AIMD window moved                a=new window,
                     //                                  b=1 on decrease
  kFailover,         // replica health transition        a=replica tag,
                     //                                  b=1 suspect,
                     //                                  2 probe sent,
                     //                                  3 reinstated,
                     //                                  4 new primary
  kRebind,           // in-flight xid re-issued          a=new replica tag,
                     //                                  b=old replica tag
  kDispatchShed,     // server shed the request at a     a=queue depth,
                     //   full accept/run queue          b=1 accept, 2 run
  kCount,
};

// Which track of the timeline an event belongs to. kWireAtoB is the
// client->server direction, kWireBtoA the reverse (DatagramChannel::Dir).
enum class RecEndpoint : uint8_t {
  kClient = 0,
  kServer,
  kWireAtoB,
  kWireBtoA,
  kCount,
};

inline constexpr size_t kRecEventCount = static_cast<size_t>(RecEvent::kCount);
inline constexpr size_t kRecEndpointCount =
    static_cast<size_t>(RecEndpoint::kCount);
inline constexpr size_t kDefaultRecorderCapacity = 1u << 16;

// Stable names for serialization ("call_submit", "wire_tx", ...).
std::string_view RecEventName(RecEvent e);
std::string_view RecEndpointName(RecEndpoint e);

// One ring slot. `a` and `b` are event-specific payloads (see the catalog
// comments); both are zero when an event has nothing to say.
struct RecordedEvent {
  uint64_t virtual_nanos = 0;  // simulation time (deterministic)
  uint64_t wall_nanos = 0;     // host steady_clock (not serialized by
                               // default — host-dependent)
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t xid = 0;      // 0 when the event is not attributable to a call
  uint32_t replica = 0;  // replica tag from the enclosing
                         // RecorderReplicaScope; 0 = unreplicated (the
                         // single-transport paths never set one)
  uint32_t conn = 0;     // connection tag from the enclosing
                         // RecorderConnScope; 0 = unmultiplexed. Call
                         // identity under the mux is the (conn, xid) pair —
                         // xids are only unique per connection.
  RecEvent type = RecEvent::kCallSubmit;
  RecEndpoint endpoint = RecEndpoint::kClient;
};

namespace rec_internal {

extern std::atomic<bool> g_enabled;

void RecordSlow(RecEvent type, RecEndpoint endpoint, uint32_t xid,
                uint64_t virtual_nanos, uint64_t a, uint64_t b);

}  // namespace rec_internal

// True while a RecorderSession is active. The relaxed load compiles to a
// plain byte load, so a disabled record point costs one test-and-skip.
inline bool RecorderEnabled() {
  return rec_internal::g_enabled.load(std::memory_order_relaxed);
}

// Records one event. Callers pass the virtual timestamp explicitly —
// scheduled-delivery transports record spans whose endpoints lie in the
// future of the current clock (e.g. a modeled server execution window).
inline void RecordEvent(RecEvent type, RecEndpoint endpoint, uint32_t xid,
                        uint64_t virtual_nanos, uint64_t a = 0,
                        uint64_t b = 0) {
  if (RecorderEnabled()) {
    rec_internal::RecordSlow(type, endpoint, xid, virtual_nanos, a, b);
  }
}

// Thread-local per-call context for layers that have no call identity of
// their own (the marshal engine interprets plans without knowing which
// xid, or even which clock, it is working for). The transport-facing code
// (src/apps/nfs.cc) opens a scope around each stub invocation; engine
// record points then attribute to the scope's xid at the scope clock's
// current time. Scopes nest (the previous scope is restored on exit) and
// are per-thread, so concurrent un-scoped marshaling records nothing.
class RecorderCallScope {
 public:
  RecorderCallScope(uint32_t xid, const VirtualClock* clock);
  ~RecorderCallScope();

  RecorderCallScope(const RecorderCallScope&) = delete;
  RecorderCallScope& operator=(const RecorderCallScope&) = delete;

  // Current thread's scope, if any.
  static bool Active();
  static uint32_t CurrentXid();
  static uint64_t CurrentVirtualNanos();

 private:
  uint32_t prev_xid_;
  const VirtualClock* prev_clock_;
  bool prev_active_;
};

// Thread-local replica context. A replicated binding runs one transport
// per replica over the same record points; each transport opens this scope
// around its entry points (Submit, Cancel, every scheduled event), so
// channel- and server-side events inherit the replica identity without any
// record-point signature change. Events recorded outside any scope carry
// replica 0, which serializes and exports exactly as before — single-
// transport recordings are byte-identical to pre-replica ones. Scopes
// nest; tags are 1-based (ReplicaGroup assigns index + 1).
class RecorderReplicaScope {
 public:
  explicit RecorderReplicaScope(uint32_t replica_tag);
  ~RecorderReplicaScope();

  RecorderReplicaScope(const RecorderReplicaScope&) = delete;
  RecorderReplicaScope& operator=(const RecorderReplicaScope&) = delete;

  // Current thread's replica tag (0 when no scope is open).
  static uint32_t Current();

 private:
  uint32_t prev_tag_;
};

// Thread-local connection context, the multiplexed sibling of
// RecorderReplicaScope. The mux and the server dispatch open this scope
// around every per-connection operation (submission, timer events, reply
// handling, worker assignment), and the conn-tagging DatagramChannel opens
// it around wire events, so the whole record-point surface inherits the
// (conn, xid) call identity without signature changes. Events recorded
// outside any scope carry conn 0 and serialize exactly as before — all
// single-connection recordings are byte-identical to pre-mux ones. Scopes
// nest; tags are 1-based (ConnectionMux assigns them from OpenConnection).
class RecorderConnScope {
 public:
  explicit RecorderConnScope(uint32_t conn_tag);
  ~RecorderConnScope();

  RecorderConnScope(const RecorderConnScope&) = delete;
  RecorderConnScope& operator=(const RecorderConnScope&) = delete;

  // Current thread's connection tag (0 when no scope is open).
  static uint32_t Current();

 private:
  uint32_t prev_tag_;
};

// A drained ring: events oldest-first, plus how many were overwritten.
struct Recording {
  size_t capacity = 0;
  uint64_t total_events = 0;    // everything ever recorded this session
  uint64_t dropped_events = 0;  // total_events - events.size()
  std::vector<RecordedEvent> events;
};

// Scoped recording window: allocates the ring, enables recording, and
// restores the previous enabled state on destruction. One session at a
// time (nesting aborts); Stop() may be called early to drain the ring
// before the scope ends.
class RecorderSession {
 public:
  explicit RecorderSession(size_t capacity = kDefaultRecorderCapacity);
  ~RecorderSession();

  RecorderSession(const RecorderSession&) = delete;
  RecorderSession& operator=(const RecorderSession&) = delete;

  // Disables recording and drains the ring oldest-first. Idempotent — the
  // second call returns an empty recording.
  Recording Stop();

 private:
  bool stopped_ = false;
};

// Serializes a recording as one JSON document:
//   {"schema": "flexrpc-rec-v1", "capacity": N, "total_events": N,
//    "dropped_events": N, "events": [{"type": "wire_tx", "ep": "wire.a2b",
//    "xid": 7, "vt": 1234, "a": 0, "b": 0}, ...]}
// With include_wall_nanos=false (the default) the output is a pure
// function of the simulation, i.e. byte-identical across runs of the same
// seeded workload.
std::string RecordingToJson(const Recording& recording,
                            bool include_wall_nanos = false);

// Parses a RecordingToJson document back (the flexrec_report CLI reads
// recordings from disk). Unknown event/endpoint names are an error — the
// catalog is closed.
Result<Recording> ParseRecording(std::string_view json);

// Exports a recording as Chrome trace_event-format JSON (the "JSON Array
// with metadata" flavor: {"traceEvents": [...], ...}), loadable in
// Perfetto and chrome://tracing. One thread track per RecEndpoint; span
// (B/E) pairs for marshal and server-execution windows; async (b/e) spans
// for call lifetimes keyed by xid; instant events for faults, wire
// activity, retransmits, and reply dispositions. Timestamps are virtual
// microseconds. Truncated recordings stay well-formed: unmatched end
// events are suppressed, unmatched begins are closed at the final
// timestamp, and a "truncated" instant event reports the dropped count.
std::string ExportChromeTrace(const Recording& recording);

// Same export, plus Perfetto counter tracks (ph:"C") when `timeline` is
// non-null: every flexwatch counter and gauge series (queue depth, cwnd,
// in-flight, shed rate, throughput deltas) becomes a value-over-time
// track sampled at its window-close timestamps. Passing nullptr is
// byte-identical to the single-argument overload.
struct Timeline;
std::string ExportChromeTrace(const Recording& recording,
                              const Timeline* timeline);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_RECORDER_H_
