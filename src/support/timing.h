// Timing utilities.
//
// Stopwatch measures real (host) CPU wall time for the work the benchmarks
// perform. VirtualClock accumulates *modeled* time for components that are
// simulated rather than executed (the Ethernet link and remote server in the
// Figure 2 experiment); the two are reported separately, exactly as the paper
// separates "network + server processing" from "client processing".

#ifndef FLEXRPC_SRC_SUPPORT_TIMING_H_
#define FLEXRPC_SRC_SUPPORT_TIMING_H_

#include <chrono>
#include <cstdint>

namespace flexrpc {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates simulated time, advanced explicitly by models (e.g. a link
// model charging bytes/bandwidth + per-packet latency).
class VirtualClock {
 public:
  void AdvanceNanos(uint64_t nanos) { now_nanos_ += nanos; }
  void AdvanceSeconds(double seconds) {
    now_nanos_ += static_cast<uint64_t>(seconds * 1e9);
  }
  uint64_t now_nanos() const { return now_nanos_; }
  double now_seconds() const { return static_cast<double>(now_nanos_) * 1e-9; }
  void Reset() { now_nanos_ = 0; }

 private:
  uint64_t now_nanos_ = 0;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_TIMING_H_
