#include "src/support/diag.h"

#include "src/support/strings.h"

namespace flexrpc {

namespace {
const char* SeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::ToString() const {
  return StrFormat("%s:%d:%d: %s: %s", file.c_str(), pos.line, pos.column,
                   SeverityName(severity), message.c_str());
}

void DiagnosticSink::Add(DiagSeverity severity, std::string file,
                         SourcePos pos, std::string message) {
  if (severity == DiagSeverity::kError) {
    ++error_count_;
  }
  diagnostics_.push_back(
      Diagnostic{severity, std::move(file), pos, std::move(message)});
}

std::string DiagnosticSink::ToString() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics_) {
    out += diag.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace flexrpc
