#include "src/support/diag.h"

#include "src/support/strings.h"

namespace flexrpc {

std::string_view DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = StrFormat(
      "%s:%d:%d: %s: %s", file.c_str(), pos.line, pos.column,
      std::string(DiagSeverityName(severity)).c_str(), message.c_str());
  if (!code.empty()) {
    out += StrFormat(" [%s]", code.c_str());
  }
  return out;
}

void DiagnosticSink::Report(DiagSeverity severity, std::string code,
                            std::string file, SourcePos pos,
                            std::string message) {
  if (severity == DiagSeverity::kError) {
    ++error_count_;
  } else if (severity == DiagSeverity::kWarning) {
    ++warning_count_;
  }
  diagnostics_.push_back(Diagnostic{severity, std::move(code),
                                    std::move(file), pos,
                                    std::move(message)});
}

int DiagnosticSink::CountCode(std::string_view code) const {
  int n = 0;
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.code == code) {
      ++n;
    }
  }
  return n;
}

const Diagnostic* DiagnosticSink::FindCode(std::string_view code) const {
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.code == code) {
      return &diag;
    }
  }
  return nullptr;
}

std::string DiagnosticSink::ToString() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics_) {
    out += diag.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace flexrpc
