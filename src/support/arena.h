// Arena: a region allocator that backs one simulated address space.
//
// Every osim::AddressSpace owns an Arena. Allocations from different arenas
// live in genuinely disjoint host memory, so "crossing a protection domain"
// in the simulation is a real memcpy between distinct regions — the memory
// traffic the paper measures is therefore real work on the host CPU.
//
// The arena supports two allocation styles:
//   * Bump allocation (Allocate) for long-lived objects; freed only by Reset.
//   * Sized blocks (AllocateBlock/FreeBlock) with per-size-class free lists,
//     used for RPC buffer traffic so that steady-state benchmarks do not grow
//     memory without bound and so that malloc/free cost is modeled faithfully.

#ifndef FLEXRPC_SRC_SUPPORT_ARENA_H_
#define FLEXRPC_SRC_SUPPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace flexrpc {

class Arena {
 public:
  // `capacity` bounds total bump space; chunks are allocated lazily.
  explicit Arena(std::string name, size_t capacity = kDefaultCapacity);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `size` bytes aligned to `align`. Never returns null;
  // aborts if capacity is exhausted (simulation configuration error).
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t));

  // Allocates a block that can later be returned with FreeBlock. Blocks are
  // rounded up to a size class and recycled through a free list, emulating a
  // kmem/malloc-style allocator inside the address space.
  void* AllocateBlock(size_t size);
  void FreeBlock(void* ptr);

  // Convenience: construct a T inside the arena (bump space, no destructor
  // will run — use only for trivially destructible payloads).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects never run destructors");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  // Returns true if `ptr` points into memory owned by this arena.
  bool Owns(const void* ptr) const;

  // Releases all bump allocations and block free lists.
  void Reset();

  const std::string& name() const { return name_; }
  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t block_allocs() const { return block_allocs_; }
  size_t block_frees() const { return block_frees_; }
  // Blocks currently handed out (allocs minus frees); used by leak tests.
  size_t live_blocks() const { return block_allocs_ - block_frees_; }

  static constexpr size_t kDefaultCapacity = 64u << 20;  // 64 MiB

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  // Header stored immediately before each sized block.
  struct BlockHeader {
    uint32_t size_class;
    uint32_t magic;
  };
  static constexpr uint32_t kBlockMagic = 0xB10CB10Cu;

  static size_t SizeClassFor(size_t size);

  Chunk& ChunkWithRoom(size_t size, size_t align);

  std::string name_;
  size_t capacity_;
  size_t bytes_allocated_ = 0;
  size_t block_allocs_ = 0;
  size_t block_frees_ = 0;
  std::vector<Chunk> chunks_;
  // size class (bytes) -> stack of recycled blocks.
  std::unordered_map<size_t, std::vector<void*>> free_lists_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_ARENA_H_
