// Deterministic pseudo-random number generator for tests and workload
// generators. SplitMix64: tiny, fast, and reproducible across platforms,
// which keeps property tests and benchmark workloads stable.

#ifndef FLEXRPC_SRC_SUPPORT_RNG_H_
#define FLEXRPC_SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace flexrpc {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound) {
    return bound == 0 ? 0 : NextU64() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  bool NextBool() { return (NextU64() & 1) != 0; }

  double NextDouble() {  // in [0, 1)
    return static_cast<double>(NextU64() >> 11) * (1.0 / (1ull << 53));
  }

 private:
  uint64_t state_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SUPPORT_RNG_H_
