#include "src/support/trace.h"

#include <bit>

#include "src/support/json.h"

namespace flexrpc {
namespace trace_internal {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_counters[kTraceCounterCount]{};
HistogramCells g_histograms[kTraceHistogramCount]{};

void ObserveSlow(TraceHistogram h, uint64_t value) {
  // Bucket 0 holds zeros; bucket i holds 2^(i-1) <= v < 2^i. bit_width
  // maps 1->1, 2..3->2, ... and saturates into the last bucket.
  size_t bucket = static_cast<size_t>(std::bit_width(value));
  if (bucket >= kTraceHistogramBuckets) {
    bucket = kTraceHistogramBuckets - 1;
  }
  HistogramCells& cells = g_histograms[static_cast<size_t>(h)];
  cells.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cells.count.fetch_add(1, std::memory_order_relaxed);
  cells.sum.fetch_add(value, std::memory_order_relaxed);
}

}  // namespace trace_internal

namespace {

// Indexed by TraceCounter value; keep in lockstep with the enum.
constexpr std::string_view kCounterNames[kTraceCounterCount] = {
    "kernel.traps",
    "kernel.port_transfers.unique",
    "kernel.port_transfers.nonunique",
    "names.lookups",
    "names.inserts",
    "names.reverse_hits",
    "names.releases",
    "arena.bump_allocs",
    "arena.bump_bytes",
    "arena.block_allocs",
    "arena.block_frees",
    "arena.block_bytes",
    "mem.copies",
    "mem.copy_bytes",
    "ipc.fastpath.calls",
    "ipc.oldpath.calls",
    "ipc.oldpath.descriptors",
    "ipc.bytes_copied",
    "ipc.threaded.calls",
    "ipc.threaded.ops",
    "ipc.registers.saved",
    "ipc.registers.cleared",
    "ipc.registers.restored",
    "ipc.sigcache.hits",
    "ipc.sigcache.misses",
    "rpc.binds",
    "rpc.client.calls",
    "rpc.server.dispatches",
    "rpc.request_bytes",
    "rpc.reply_bytes",
    "rpc.samedomain.calls",
    "rpc.samedomain.copies",
    "rpc.samedomain.copy_bytes",
    "rpc.retry.retransmits",
    "rpc.retry.backoff_nanos",
    "rpc.retry.deadline_expiries",
    "rpc.retry.unavailable",
    "rpc.retry.stale_replies",
    "rpc.retry.corrupt_replies",
    "rpc.dupcache.hits",
    "rpc.dupcache.misses",
    "rpc.pipeline.calls",
    "rpc.pipeline.retransmits",
    "rpc.pipeline.stale_replies",
    "rpc.pipeline.out_of_order",
    "rpc.pipeline.window_stalls",
    "rpc.pipeline.events",
    "rpc.rtt.samples",
    "rpc.rtt.karn_skips",
    "rpc.rtt.clamps",
    "rpc.cwnd.increases",
    "rpc.cwnd.decreases",
    "rpc.binder.calls",
    "rpc.binder.reissues",
    "rpc.binder.probes",
    "rpc.binder.cutovers",
    "rpc.failover.suspects",
    "rpc.failover.reinstates",
    "rpc.mux.conns_opened",
    "rpc.mux.calls",
    "rpc.mux.retransmits",
    "rpc.mux.stale_replies",
    "rpc.mux.flow_stalls",
    "rpc.dispatch.accepts",
    "rpc.dispatch.executions",
    "rpc.dispatch.shed",
    "rpc.dupcache.evictions",
    "rpc.dupcache.evicted_reexecs",
    "marshal.ops.scalar",
    "marshal.ops.bytes",
    "marshal.ops.string",
    "marshal.ops.struct",
    "marshal.ops.union",
    "marshal.ops.special",
    "marshal.bytes_marshaled",
    "marshal.bytes_unmarshaled",
    "marshal.spec.hit",
    "marshal.spec.miss",
    "fbuf.allocs",
    "fbuf.channel.calls",
    "fbuf.splice_segments",
    "fbuf.bytes_by_reference",
    "fbuf.bytes_copied",
    "net.transfers",
    "net.packets",
    "net.bytes_on_wire",
    "net.wire_virtual_nanos",
    "net.datagrams_sent",
    "net.datagrams_delivered",
    "net.fault.drops",
    "net.fault.dups",
    "net.fault.reorders",
    "net.fault.corrupts",
    "net.fault.extra_delay_nanos",
    "net.checksum_failures",
    "net.frame_copies",
};

constexpr std::string_view kHistogramNames[kTraceHistogramCount] = {
    "rpc.marshal_nanos",
    "rpc.unmarshal_nanos",
    "rpc.dispatch_nanos",
    "ipc.message_bytes",
    "net.transfer_virtual_nanos",
    "rpc.dispatch.queue_depth",
};

// Enum/name-table drift guard. The array extents above already force the
// table *length* to match kCount (excess initializers fail to compile),
// but a missing trailing entry would silently value-initialize to an
// empty string_view — catch that, and accidental duplicates, here.
template <size_t N>
constexpr bool NamesNonEmptyAndUnique(const std::string_view (&names)[N]) {
  for (size_t i = 0; i < N; ++i) {
    if (names[i].empty()) {
      return false;
    }
    for (size_t j = i + 1; j < N; ++j) {
      if (names[i] == names[j]) {
        return false;
      }
    }
  }
  return true;
}

static_assert(NamesNonEmptyAndUnique(kCounterNames),
              "TraceCounter name table must cover the enum with unique "
              "names — append the new counter's name in enum order");
static_assert(NamesNonEmptyAndUnique(kHistogramNames),
              "TraceHistogram name table must cover the enum with unique "
              "names — append the new histogram's name in enum order");

}  // namespace

std::string_view TraceCounterName(TraceCounter c) {
  return kCounterNames[static_cast<size_t>(c)];
}

std::string_view TraceHistogramName(TraceHistogram h) {
  return kHistogramNames[static_cast<size_t>(h)];
}

void SetTraceEnabled(bool enabled) {
  trace_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void ResetTrace() {
  for (auto& c : trace_internal::g_counters) {
    c.store(0, std::memory_order_relaxed);
  }
  for (auto& h : trace_internal::g_histograms) {
    for (auto& b : h.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
  }
}

TraceSnapshot CaptureTrace() {
  TraceSnapshot snap;
  for (size_t i = 0; i < kTraceCounterCount; ++i) {
    snap.counters[i] =
        trace_internal::g_counters[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kTraceHistogramCount; ++i) {
    const auto& cells = trace_internal::g_histograms[i];
    auto& out = snap.histograms[i];
    for (size_t b = 0; b < kTraceHistogramBuckets; ++b) {
      out.buckets[b] = cells.buckets[b].load(std::memory_order_relaxed);
    }
    out.count = cells.count.load(std::memory_order_relaxed);
    out.sum = cells.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

TraceSnapshot TraceDelta(const TraceSnapshot& a, const TraceSnapshot& b) {
  TraceSnapshot d;
  for (size_t i = 0; i < kTraceCounterCount; ++i) {
    d.counters[i] = b.counters[i] - a.counters[i];
  }
  for (size_t i = 0; i < kTraceHistogramCount; ++i) {
    for (size_t bk = 0; bk < kTraceHistogramBuckets; ++bk) {
      d.histograms[i].buckets[bk] =
          b.histograms[i].buckets[bk] - a.histograms[i].buckets[bk];
    }
    d.histograms[i].count = b.histograms[i].count - a.histograms[i].count;
    d.histograms[i].sum = b.histograms[i].sum - a.histograms[i].sum;
  }
  return d;
}

void WriteTraceSnapshot(JsonWriter& w, const TraceSnapshot& snapshot) {
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (size_t i = 0; i < kTraceCounterCount; ++i) {
    w.Key(kCounterNames[i]).UInt(snapshot.counters[i]);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (size_t i = 0; i < kTraceHistogramCount; ++i) {
    const auto& h = snapshot.histograms[i];
    if (h.count == 0) {
      continue;
    }
    w.Key(kHistogramNames[i]).BeginObject();
    w.Key("count").UInt(h.count);
    w.Key("sum").UInt(h.sum);
    w.Key("buckets").BeginArray();
    for (size_t b = 0; b < kTraceHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) {
        continue;
      }
      w.BeginArray().UInt(b).UInt(h.buckets[b]).EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string TraceSnapshotToJson(const TraceSnapshot& snapshot) {
  JsonWriter w;
  WriteTraceSnapshot(w, snapshot);
  return w.str();
}

TraceSession::TraceSession() : was_enabled_(TraceEnabled()) {
  SetTraceEnabled(true);
  baseline_ = CaptureTrace();
}

TraceSession::~TraceSession() { SetTraceEnabled(was_enabled_); }

TraceSnapshot TraceSession::Report() const {
  return TraceDelta(baseline_, CaptureTrace());
}

void TraceSession::Rebase() { baseline_ = CaptureTrace(); }

}  // namespace flexrpc
