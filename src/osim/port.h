// Ports, port rights, and per-task port name tables.
//
// This models the Mach naming machinery whose cost §4.5 of the paper
// targets: every task refers to ports through small integer *names* in a
// per-task table. The standard semantics require that all rights a task
// holds to one port share a single name, which forces a reverse lookup
// (port → existing name), an insert-or-increment, and refcount bookkeeping
// on every right transfer. The [nonunique] presentation relaxes this and
// takes the fast path: allocate a fresh name, insert, done.
//
// The unique path is deliberately structured as a chain of noinline helper
// calls, mirroring the paper's observation that "these operations invoke
// many layers of function calls and are surprisingly expensive."

#ifndef FLEXRPC_SRC_OSIM_PORT_H_
#define FLEXRPC_SRC_OSIM_PORT_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/support/status.h"

namespace flexrpc {

using PortName = uint64_t;
inline constexpr PortName kInvalidPortName = 0;

class Task;

// A kernel port object: a capability target. Message queues live in the
// IPC layer; the port itself is pure identity plus its receiver.
class Port {
 public:
  Port(uint64_t id, Task* receiver) : id_(id), receiver_(receiver) {}

  uint64_t id() const { return id_; }
  Task* receiver() const { return receiver_; }
  void set_receiver(Task* task) { receiver_ = task; }

 private:
  uint64_t id_;
  Task* receiver_;
};

enum class RightType : uint8_t { kSend, kReceive };

struct RightEntry {
  Port* port = nullptr;
  RightType type = RightType::kSend;
  uint32_t refs = 0;
};

// One task's port name space.
class NameTable {
 public:
  // Inserts a right under the standard unique-name semantics: if the task
  // already holds a right to `port`, the existing name's refcount is
  // incremented and that name returned; otherwise a fresh name is chosen
  // and both the forward and reverse maps updated.
  PortName InsertUnique(Port* port, RightType type);

  // The [nonunique] fast path: always allocates a fresh name; no reverse
  // lookup, no refcounting against existing entries.
  PortName InsertNonUnique(Port* port, RightType type);

  // Resolves a name to its right entry.
  Result<RightEntry*> Lookup(PortName name);

  // Drops one reference; removes the name (and reverse mapping) when the
  // count reaches zero.
  Status Release(PortName name);

  size_t size() const { return names_.size(); }
  // Total references outstanding (for conservation property tests).
  uint64_t total_refs() const;

 private:
  // Deliberately-noinline stages of the unique insert path.
  PortName ReverseLookup(const Port* port) const;
  PortName BumpExisting(PortName name);
  PortName InstallFresh(Port* port, RightType type, bool track_reverse);

  std::unordered_map<PortName, RightEntry> names_;
  std::unordered_map<const Port*, PortName> by_port_;
  PortName next_name_ = 0x1000;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_OSIM_PORT_H_
