#include "src/osim/address_space.h"

#include <cstring>

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

Status CopyToUser(AddressSpace* user, void* user_ptr, const void* kernel_src,
                  size_t size) {
  if (!user->Owns(user_ptr)) {
    return PermissionDeniedError(
        StrFormat("copyout target is not mapped in address space '%s'",
                  user->name().c_str()));
  }
  TraceAdd(TraceCounter::kDataCopies);
  TraceAdd(TraceCounter::kDataCopyBytes, size);
  std::memcpy(user_ptr, kernel_src, size);
  return Status::Ok();
}

Status CopyFromUser(AddressSpace* user, void* kernel_dst,
                    const void* user_ptr, size_t size) {
  if (!user->Owns(user_ptr)) {
    return PermissionDeniedError(
        StrFormat("copyin source is not mapped in address space '%s'",
                  user->name().c_str()));
  }
  TraceAdd(TraceCounter::kDataCopies);
  TraceAdd(TraceCounter::kDataCopyBytes, size);
  std::memcpy(kernel_dst, user_ptr, size);
  return Status::Ok();
}

}  // namespace flexrpc
