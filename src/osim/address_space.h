// Simulated address spaces.
//
// Each AddressSpace owns a disjoint host-memory arena. "Crossing a
// protection domain" in this simulation therefore performs real memory
// traffic: a copy from one space to another is a memcpy between disjoint
// regions, an allocation is a real allocator operation in the target space.
// The costs the paper measures (extra copies, allocation churn) are thus
// executed, not modeled.

#ifndef FLEXRPC_SRC_OSIM_ADDRESS_SPACE_H_
#define FLEXRPC_SRC_OSIM_ADDRESS_SPACE_H_

#include <string>

#include "src/support/arena.h"
#include "src/support/status.h"

namespace flexrpc {

class AddressSpace {
 public:
  explicit AddressSpace(std::string name,
                        size_t capacity = Arena::kDefaultCapacity)
      : arena_(name, capacity), name_(std::move(name)) {}

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }
  const std::string& name() const { return name_; }

  void* Allocate(size_t size) { return arena_.AllocateBlock(size); }
  void Free(void* ptr) { arena_.FreeBlock(ptr); }
  bool Owns(const void* ptr) const { return arena_.Owns(ptr); }

 private:
  Arena arena_;
  std::string name_;
};

// The user/kernel boundary copy routines of a monolithic kernel — the
// analogues of Linux's memcpy_tofs()/memcpy_fromfs() that the paper's §4.1
// [special] presentation plugs into the generated NFS stubs. The validation
// that `user_ptr` really lies in `user` models the access_ok() check.
Status CopyToUser(AddressSpace* user, void* user_ptr, const void* kernel_src,
                  size_t size);
Status CopyFromUser(AddressSpace* user, void* kernel_dst,
                    const void* user_ptr, size_t size);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_OSIM_ADDRESS_SPACE_H_
