#include "src/osim/kernel.h"

#include <cstring>

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

Task* Kernel::CreateTask(std::string name, size_t capacity) {
  tasks_.push_back(
      std::make_unique<Task>(next_task_id_++, std::move(name), capacity));
  return tasks_.back().get();
}

PortName Kernel::CreatePort(Task* receiver) {
  ports_.push_back(std::make_unique<Port>(next_port_id_++, receiver));
  return receiver->names().InsertUnique(ports_.back().get(),
                                        RightType::kReceive);
}

Result<PortName> Kernel::MakeSendRight(Task* receiver, PortName receive_name,
                                       Task* holder) {
  FLEXRPC_ASSIGN_OR_RETURN(RightEntry * entry,
                           receiver->names().Lookup(receive_name));
  if (entry->type != RightType::kReceive) {
    return FailedPreconditionError(
        "send rights derive from a receive right");
  }
  return holder->names().InsertUnique(entry->port, RightType::kSend);
}

Result<PortName> Kernel::TransferRight(Task* from, PortName name, Task* to,
                                       bool nonunique) {
  Trap();
  FLEXRPC_ASSIGN_OR_RETURN(RightEntry * entry, from->names().Lookup(name));
  Port* port = entry->port;
  if (nonunique) {
    TraceAdd(TraceCounter::kPortTransfersNonunique);
    return to->names().InsertNonUnique(port, RightType::kSend);
  }
  TraceAdd(TraceCounter::kPortTransfersUnique);
  return to->names().InsertUnique(port, RightType::kSend);
}

Result<Port*> Kernel::ResolvePort(Task* task, PortName name) {
  FLEXRPC_ASSIGN_OR_RETURN(RightEntry * entry, task->names().Lookup(name));
  return entry->port;
}

void Kernel::Trap() {
  ++trap_count_;
  TraceAdd(TraceCounter::kKernelTraps);
  // Mode switch: spill a trap frame onto the kernel stack. This is the
  // fixed per-IPC cost that all presentations share.
  uint64_t frame[8];
  for (size_t i = 0; i < 8; ++i) {
    frame[i] = trap_count_ + i;
  }
  std::memcpy(kernel_stack_, frame, sizeof(frame));
  // Prevent the compiler from eliding the spill.
  asm volatile("" : : "r"(kernel_stack_) : "memory");
}

}  // namespace flexrpc
