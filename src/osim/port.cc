#include "src/osim/port.h"

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace flexrpc {

#define FLEXRPC_NOINLINE __attribute__((noinline))

FLEXRPC_NOINLINE PortName NameTable::ReverseLookup(const Port* port) const {
  auto it = by_port_.find(port);
  return it == by_port_.end() ? kInvalidPortName : it->second;
}

FLEXRPC_NOINLINE PortName NameTable::BumpExisting(PortName name) {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return kInvalidPortName;
  }
  ++it->second.refs;
  return name;
}

FLEXRPC_NOINLINE PortName NameTable::InstallFresh(Port* port, RightType type,
                                                  bool track_reverse) {
  PortName name = next_name_++;
  names_.emplace(name, RightEntry{port, type, 1});
  if (track_reverse) {
    by_port_.emplace(port, name);
  }
  return name;
}

PortName NameTable::InsertUnique(Port* port, RightType type) {
  TraceAdd(TraceCounter::kNameTableInserts);
  PortName existing = ReverseLookup(port);
  if (existing != kInvalidPortName) {
    PortName bumped = BumpExisting(existing);
    if (bumped != kInvalidPortName) {
      TraceAdd(TraceCounter::kNameTableReverseHits);
      return bumped;
    }
  }
  return InstallFresh(port, type, /*track_reverse=*/true);
}

PortName NameTable::InsertNonUnique(Port* port, RightType type) {
  TraceAdd(TraceCounter::kNameTableInserts);
  return InstallFresh(port, type, /*track_reverse=*/false);
}

Result<RightEntry*> NameTable::Lookup(PortName name) {
  TraceAdd(TraceCounter::kNameTableLookups);
  auto it = names_.find(name);
  if (it == names_.end()) {
    return NotFoundError(StrFormat("no right named %llu in this task",
                                   static_cast<unsigned long long>(name)));
  }
  return &it->second;
}

Status NameTable::Release(PortName name) {
  TraceAdd(TraceCounter::kNameTableReleases);
  auto it = names_.find(name);
  if (it == names_.end()) {
    return NotFoundError(StrFormat("no right named %llu in this task",
                                   static_cast<unsigned long long>(name)));
  }
  if (--it->second.refs == 0) {
    auto rev = by_port_.find(it->second.port);
    if (rev != by_port_.end() && rev->second == name) {
      by_port_.erase(rev);
    }
    names_.erase(it);
  }
  return Status::Ok();
}

uint64_t NameTable::total_refs() const {
  uint64_t total = 0;
  for (const auto& [name, entry] : names_) {
    total += entry.refs;
  }
  return total;
}

}  // namespace flexrpc
