// A simulated task: one protection domain (address space) plus its port
// name space.

#ifndef FLEXRPC_SRC_OSIM_TASK_H_
#define FLEXRPC_SRC_OSIM_TASK_H_

#include <cstdint>
#include <string>

#include "src/osim/address_space.h"
#include "src/osim/port.h"

namespace flexrpc {

class Task {
 public:
  Task(uint64_t id, std::string name, size_t capacity)
      : id_(id), space_(name, capacity), name_(std::move(name)) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  AddressSpace& space() { return space_; }
  NameTable& names() { return names_; }
  const NameTable& names() const { return names_; }

 private:
  uint64_t id_;
  AddressSpace space_;
  NameTable names_;
  std::string name_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_OSIM_TASK_H_
