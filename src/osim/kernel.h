// The simulated kernel: task and port lifecycle, right transfer between
// name spaces, and the fixed trap/domain-switch work every IPC pays.

#ifndef FLEXRPC_SRC_OSIM_KERNEL_H_
#define FLEXRPC_SRC_OSIM_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/osim/port.h"
#include "src/osim/task.h"
#include "src/support/status.h"

namespace flexrpc {

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Task* CreateTask(std::string name,
                   size_t capacity = Arena::kDefaultCapacity);

  // Creates a port whose receive right lands in `receiver`'s name table.
  // Returns the receive right's name in that task.
  PortName CreatePort(Task* receiver);

  // Creates a send right to the port named `receive_name` in `receiver`'s
  // space, inserting it into `holder`'s name table.
  Result<PortName> MakeSendRight(Task* receiver, PortName receive_name,
                                 Task* holder);

  // Transfers (copies) the send right named `name` in `from` into `to`'s
  // name space — the §4.5 micro-operation. `nonunique` selects the relaxed
  // fast path the [nonunique] presentation enables.
  Result<PortName> TransferRight(Task* from, PortName name, Task* to,
                                 bool nonunique);

  // Resolves a name in `task` to the underlying port.
  Result<Port*> ResolvePort(Task* task, PortName name);

  // Simulated kernel entry: the fixed work (mode switch, stack switch)
  // every trap performs regardless of presentation. Real work, small cost.
  void Trap();

  uint64_t trap_count() const { return trap_count_; }
  size_t task_count() const { return tasks_.size(); }
  size_t port_count() const { return ports_.size(); }

 private:
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<Port>> ports_;
  uint64_t next_task_id_ = 1;
  uint64_t next_port_id_ = 1;
  uint64_t trap_count_ = 0;
  // The simulated kernel stack the trap path touches.
  uint8_t kernel_stack_[256] = {};
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_OSIM_KERNEL_H_
