#include "src/sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "src/support/event_queue.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

// NFS-style op mix; weights sum to 100. A zero request/reply size means
// the size is drawn per call from kBulkSizes (read replies and write
// requests are bimodal in real traces).
struct OpSpec {
  uint32_t weight;
  uint32_t op;
  uint32_t request_body_bytes;  // excludes the 8-byte mux prefix
  uint32_t reply_body_bytes;    // excludes the 8-byte echoed prefix
};
constexpr OpSpec kOps[] = {
    {40, 0, 120, 112},  // getattr
    {26, 1, 168, 128},  // lookup
    {22, 2, 136, 0},    // read: reply size drawn
    {8, 3, 0, 32},      // write: request size drawn
    {4, 4, 152, 512},   // readdir
};
constexpr uint32_t kBulkSizes[] = {512, 2048, 8192};

void AppendU32Be(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t Interarrival(Rng* rng, const FleetConfig& config) {
  double u = rng->NextDouble();
  double mean = static_cast<double>(config.mean_interarrival_nanos);
  double x;
  if (config.heavy_tailed) {
    // Bounded Pareto, alpha 1.5, on [mean/4, 50*mean]: most gaps are
    // short bursts, a heavy tail of long silences keeps the mean
    // comparable to the exponential draw.
    constexpr double kAlpha = 1.5;
    double lo = mean / 4.0;
    double hi = mean * 50.0;
    double la = std::pow(lo, kAlpha);
    double ha = std::pow(hi, kAlpha);
    x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / kAlpha);
  } else {
    x = -std::log(1.0 - u) * mean;  // exponential: Poisson arrivals
  }
  return x < 1.0 ? 1 : static_cast<uint64_t>(x);
}

// One call's request body: [op u32][reply_size u32][pad]. The pad mimics
// the op's real argument size so wire occupancy is honest.
std::vector<uint8_t> MakeBody(Rng* rng) {
  uint64_t draw = rng->NextBelow(100);
  const OpSpec* spec = &kOps[0];
  for (const OpSpec& candidate : kOps) {
    spec = &candidate;
    if (draw < candidate.weight) {
      break;
    }
    draw -= candidate.weight;
  }
  uint32_t request_body = spec->request_body_bytes != 0
                              ? spec->request_body_bytes
                              : kBulkSizes[rng->NextBelow(3)];
  uint32_t reply_body = spec->reply_body_bytes != 0
                            ? spec->reply_body_bytes
                            : kBulkSizes[rng->NextBelow(3)];
  std::vector<uint8_t> body;
  body.reserve(request_body);
  AppendU32Be(&body, spec->op);
  AppendU32Be(&body, reply_body);
  while (body.size() < request_body) {
    body.push_back(static_cast<uint8_t>(body.size() & 0xFF));
  }
  return body;
}

}  // namespace

FleetResult RunFleet(const FleetConfig& config,
                     std::map<uint64_t, uint64_t>* executions) {
  VirtualClock clock;
  EventQueue events(&clock);
  DatagramChannel channel(LinkModel(config.link),
                          FaultPlan(config.fault_a_to_b),
                          FaultPlan(config.fault_b_to_a), &clock);

  // The server: echo the [xid][conn] prefix, fill the requested number of
  // deterministic payload bytes. The executions census is the at-most-
  // once proof's evidence — one increment per handler run.
  DatagramHandler handler = [executions](ByteSpan request,
                                         std::vector<uint8_t>* reply) {
    ByteReader r(request);
    auto xid = r.ReadU32Be();
    auto conn = r.ReadU32Be();
    auto op = r.ReadU32Be();
    auto reply_size = r.ReadU32Be();
    if (!xid.ok() || !conn.ok() || !op.ok() || !reply_size.ok()) {
      return InvalidArgumentError("fleet request too short");
    }
    if (executions != nullptr) {
      ++(*executions)[(static_cast<uint64_t>(*conn) << 32) | *xid];
    }
    reply->clear();
    reply->reserve(8 + *reply_size);
    AppendU32Be(reply, *xid);
    AppendU32Be(reply, *conn);
    for (uint32_t i = 0; i < *reply_size; ++i) {
      reply->push_back(static_cast<uint8_t>((*xid + i) & 0xFF));
    }
    return Status::Ok();
  };

  ConnectionMux mux(&channel, config.mux, &events);
  ServerDispatch dispatch(&channel, std::move(handler), config.dispatch,
                          &events);
  mux.set_request_listener([&dispatch]() { dispatch.Poke(); });
  dispatch.set_reply_listener([&mux]() { mux.Poke(); });

  // flexwatch: the sampler rides the same event queue. Its ticks only
  // *read* mux/dispatch state, so the simulation's event interleaving —
  // and every recording and trace counter — is identical with or without
  // it; the timeline itself is deterministic because the run is.
  std::optional<TimelineSampler> sampler;
  if (config.timeline_tick_nanos != 0) {
    sampler.emplace(&events, config.timeline_tick_nanos);
    sampler->AddCounter("mux.completed",
                        [&mux]() { return mux.stats().completed; });
    sampler->AddCounter("mux.retransmits",
                        [&mux]() { return mux.stats().retransmits; });
    sampler->AddCounter("dispatch.executions",
                        [&dispatch]() { return dispatch.stats().executions; });
    sampler->AddCounter("dispatch.shed", [&dispatch]() {
      return dispatch.stats().shed_accept + dispatch.stats().shed_run;
    });
    sampler->AddGauge("mux.in_flight", [&mux]() {
      return static_cast<uint64_t>(mux.in_flight_calls());
    });
    sampler->AddGauge("mux.total_window",
                      [&mux]() { return mux.total_window(); });
    sampler->AddGauge("dispatch.queue_depth",
                      [&dispatch]() { return dispatch.CurrentQueueDepth(); });
  }

  FleetResult result;
  std::vector<uint64_t> latencies;
  latencies.reserve(static_cast<size_t>(config.num_clients) *
                    config.calls_per_client);
  uint64_t first_arrival = UINT64_MAX;
  uint64_t last_complete = 0;

  for (uint32_t i = 0; i < config.num_clients; ++i) {
    uint32_t conn = mux.OpenConnection();
    // Per-client SplitMix64 stream: arrivals, ops, and sizes all derive
    // from (seed, client index).
    Rng rng(config.seed ^ ((i + 1) * 0x9E3779B97F4A7C15ull));
    uint64_t t = 0;
    for (uint32_t k = 0; k < config.calls_per_client; ++k) {
      t += Interarrival(&rng, config);
      first_arrival = std::min(first_arrival, t);
      std::vector<uint8_t> body = MakeBody(&rng);
      // Open loop: the submission fires at the precomputed arrival time
      // whether or not earlier calls completed.
      events.ScheduleAt(t, [&mux, &clock, &result, &latencies,
                            &last_complete, conn,
                            body = std::move(body)]() {
        uint64_t submitted = clock.now_nanos();
        mux.Submit(conn, ByteSpan(body.data(), body.size()),
                   [&clock, &result, &latencies, &last_complete,
                    submitted](Status st, std::vector<uint8_t>) {
                     uint64_t now = clock.now_nanos();
                     last_complete = std::max(last_complete, now);
                     if (st.ok()) {
                       ++result.completed;
                       latencies.push_back(now - submitted);
                     } else {
                       ++result.failed;
                     }
                   });
      });
    }
  }

  if (sampler) {
    sampler->Start();
  }
  while (events.RunNext()) {
  }
  if (sampler) {
    result.timeline = sampler->Stop();
  }
  if (mux.outstanding() != 0) {
    result.status = InternalError(
        StrFormat("fleet stalled: %zu calls outstanding, no events pending",
                  mux.outstanding()));
  }

  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&latencies](double q) -> uint64_t {
    if (latencies.empty()) {
      return 0;
    }
    double pos = q * static_cast<double>(latencies.size() - 1);
    return latencies[static_cast<size_t>(pos + 0.5)];
  };
  result.p50_nanos = percentile(0.50);
  result.p99_nanos = percentile(0.99);
  result.p999_nanos = percentile(0.999);
  if (last_complete > first_arrival) {
    result.span_nanos = last_complete - first_arrival;
    result.throughput_cps = static_cast<double>(result.completed) /
                            (static_cast<double>(result.span_nanos) * 1e-9);
  }
  result.mux = mux.stats();
  result.dispatch = dispatch.stats();
  result.wire = channel.stats();
  result.dup_replies = dispatch.stats().dup_replies;
  result.executions = dispatch.endpoint().misses();
  result.cache_evictions = dispatch.endpoint().evictions();
  result.evicted_reexecs = dispatch.endpoint().evicted_reexecs();
  return result;
}

}  // namespace flexrpc
