// Fleet — an open-loop many-client workload generator for the mux stack.
//
// The serial/pipelined benchmarks drive one client in a closed loop: each
// call waits for the previous completion, so the offered load collapses
// exactly when the server saturates and the knee never shows. A fleet is
// the opposite: N simulated clients (one mux connection each) submit
// calls at precomputed arrival times drawn from a seeded interarrival
// process — Poisson (exponential interarrivals) or heavy-tailed (bounded
// Pareto, alpha 1.5) — regardless of whether earlier calls completed.
// Offered load stays fixed while latency grows without bound past
// saturation, which is what lets the saturation sweep locate the knee.
//
// The op mix models an NFS client population (weights from the paper's
// workload discussion): getattr 40%, lookup 26%, read 22% (bimodal reply
// sizes 512/2048/8192), write 8% (bimodal request sizes), readdir 4%.
// Request bodies carry [op u32][reply_size u32][pad]; the server handler
// echoes the mux prefix and fills reply_size deterministic bytes.
//
// Everything — arrivals, op draws, sizes, faults, jitter — derives from
// FleetConfig::seed through SplitMix64 streams, so one config produces
// byte-identical recordings run over run. The at-most-once proof in the
// fleet soak threads an `executions` map through the handler: one entry
// per (conn, xid) key, incremented per handler run, gated at <= 1.

#ifndef FLEXRPC_SRC_SIM_FLEET_H_
#define FLEXRPC_SRC_SIM_FLEET_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/net/datagram.h"
#include "src/net/fault.h"
#include "src/net/link.h"
#include "src/rpc/dispatch.h"
#include "src/rpc/mux.h"
#include "src/support/status.h"
#include "src/support/timeline.h"

namespace flexrpc {

// The fleet's default wire: a fast LAN (1 Gbit/s, 50 us per-packet
// latency) so the saturation knee lands on the server worker pool, not
// on the paper's 10 Mbit/s Ethernet.
inline LinkModel::Config FleetLinkConfig() {
  LinkModel::Config c;
  c.bandwidth_bits_per_sec = 1e9;
  c.per_packet_latency_sec = 50e-6;
  return c;
}

struct FleetConfig {
  uint32_t num_clients = 10;
  uint32_t calls_per_client = 20;
  // Mean interarrival per client; fleet-wide offered load is
  // num_clients / mean (open loop: arrivals never wait for completions).
  uint64_t mean_interarrival_nanos = 2'000'000;
  bool heavy_tailed = false;  // bounded Pareto instead of exponential
  uint64_t seed = 1;
  LinkModel::Config link = FleetLinkConfig();
  FaultConfig fault_a_to_b;   // client -> server wire faults
  FaultConfig fault_b_to_a;   // server -> client wire faults
  MuxPolicy mux;
  DispatchPolicy dispatch;
  // flexwatch: when non-zero, a TimelineSampler rides the fleet's event
  // queue at this virtual tick, and FleetResult.timeline carries the
  // finished per-window series (queue depth, in-flight, cwnd, sheds,
  // throughput) and per-connection/per-worker latency sketches.
  uint64_t timeline_tick_nanos = 0;
};

struct FleetResult {
  Status status = Status::Ok();  // non-OK: the simulation stalled
  uint64_t completed = 0;        // ok completions
  uint64_t failed = 0;           // kUnavailable / kDeadlineExceeded
  uint64_t span_nanos = 0;       // first arrival to last completion
  double throughput_cps = 0;     // completions per virtual second
  // Call latency (submission to completion, virtual) percentiles.
  uint64_t p50_nanos = 0;
  uint64_t p99_nanos = 0;
  uint64_t p999_nanos = 0;
  ConnectionMux::Stats mux;
  ServerDispatch::Stats dispatch;
  DatagramChannel::Stats wire;
  uint64_t dup_replies = 0;      // server answers from the reply cache
  uint64_t executions = 0;       // handler runs
  uint64_t cache_evictions = 0;  // summed over per-connection caches
  uint64_t evicted_reexecs = 0;  // at-most-once violations (gate: 0)
  Timeline timeline;             // empty unless timeline_tick_nanos set
};

// Runs one fleet to completion on a fresh virtual clock. When
// `executions` is non-null, every handler run increments
// (*executions)[(conn << 32) | xid] — the per-call execution census the
// at-most-once proof gates at <= 1.
FleetResult RunFleet(const FleetConfig& config,
                     std::map<uint64_t, uint64_t>* executions = nullptr);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_SIM_FLEET_H_
