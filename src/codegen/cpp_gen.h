// C++ stub generation: the compiler back-end that turns (interface ×
// presentation) into compilable source.
//
// For each interface the generator emits:
//   * C++ declarations for the IDL's named types (structs, enums, unions)
//     whose memory layout matches the runtime engine's native layout —
//     generated code and interpreted marshal programs interoperate on the
//     same bytes (checked by static_asserts in the generated header);
//   * a client proxy class whose method signatures are shaped by the
//     *client* presentation (explicit lengths, caller buffers, flattened
//     parameters all change the prototype, exactly as the paper's §1
//     SysLog example shows);
//   * a server skeleton (abstract base class) shaped by the *server*
//     presentation, with a Register() that installs the virtual work
//     functions on a ServerObject.
//
// The generated stub bodies delegate marshaling to the bind-time-compiled
// MarshalProgram, so the wire behavior of generated and runtime stubs is
// identical by construction (differential-tested in codegen_test.cc).

#ifndef FLEXRPC_SRC_CODEGEN_CPP_GEN_H_
#define FLEXRPC_SRC_CODEGEN_CPP_GEN_H_

#include <string>

#include "src/idl/ast.h"
#include "src/pdl/apply.h"
#include "src/support/status.h"

namespace flexrpc {

struct CppGenOptions {
  std::string ns = "flexgen";       // namespace for generated code
  std::string header_name;          // e.g. "syslog.flexgen.h" for includes
  bool emit_client = true;
  bool emit_server = true;
};

struct GeneratedCode {
  std::string header;
  std::string source;
};

// Generates stubs for every interface in `idl` under the presentations in
// `client_pres` / `server_pres` (either may be identical to the other).
Result<GeneratedCode> GenerateCpp(const InterfaceFile& idl,
                                  const PresentationSet& client_pres,
                                  const PresentationSet& server_pres,
                                  const CppGenOptions& options);

// The C++ spelling of an IDL type in parameter position (helper exposed
// for tests). `is_input` selects const-ness for pointer types.
std::string CppTypeName(const Type* type);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_CODEGEN_CPP_GEN_H_
