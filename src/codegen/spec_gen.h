// flexspec specialization emitter: `idlc --specialize`'s back end.
//
// Compiles every (operation × side presentation) of an interface file into
// SpecPlans (src/marshal/spec.h), optionally keeps only the top-K plans a
// marshal profile ranks hottest, and emits one C++ translation unit of
// fused straight-line marshal/unmarshal superinstruction functions plus a
// RegisterSpecializations() entry point that installs them in the flexspec
// registry.
//
// Proof obligation: emission is gated on the flexcheck stage-3 verifier
// (src/analysis/spec_verifier.h). Every claimed stream of every plan is
// proven wire-equivalent to the interpreted MarshalProgram before any code
// is generated; a single FLEX2xx divergence blocks the whole unit. Streams
// the spec compiler could not express surface as FLEX205 warnings and the
// engine keeps interpreting them — never a correctness risk, only a missed
// speedup.

#ifndef FLEXRPC_SRC_CODEGEN_SPEC_GEN_H_
#define FLEXRPC_SRC_CODEGEN_SPEC_GEN_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/analysis/flexspec_profile.h"
#include "src/codegen/cpp_gen.h"
#include "src/idl/ast.h"
#include "src/marshal/spec.h"
#include "src/pdl/apply.h"
#include "src/support/diag.h"
#include "src/support/status.h"

namespace flexrpc {

struct SpecGenOptions {
  std::string ns = "flexspec";
  // Name the generated source #includes; defaults to
  // "<basename>.flexspec.h" at the idlc driver level.
  std::string header_name = "generated.flexspec.h";
  // With a profile: specialize only the hottest `top_k` keys it ranks.
  // Without one (profile == nullptr): specialize every supported plan.
  size_t top_k = 8;
  const MarshalProfile* profile = nullptr;
  // Test-only hook, applied to each plan after compilation but before
  // verification: lets tests corrupt a stream and prove the verifier
  // blocks emission. Never set by the driver.
  std::function<void(SpecPlan*)> mutate_for_test;
};

// Per-run accounting for --specialize logs and tests.
struct SpecGenStats {
  size_t plans_emitted = 0;
  size_t streams_emitted = 0;
  size_t plans_skipped_cold = 0;    // profile present, key below top-K
  size_t plans_skipped_empty = 0;   // no specializable stream at all
  std::vector<std::string> notes;   // human-readable per-plan log lines
};

// Generates the specialization unit for `idl` under both side
// presentations (identical keys across sides are emitted once). Reports
// FLEX201–FLEX207 errors and FLEX205 warnings to `diags` attributed to
// `source_file`; returns a non-OK status — and emits nothing — if any
// plan fails the equivalence proof. `stats` may be null.
Result<GeneratedCode> GenerateSpecializations(
    const InterfaceFile& idl, const PresentationSet& client_pres,
    const PresentationSet& server_pres, const SpecGenOptions& options,
    const std::string& source_file, DiagnosticSink* diags,
    SpecGenStats* stats);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_CODEGEN_SPEC_GEN_H_
