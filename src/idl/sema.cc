#include "src/idl/sema.h"

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/support/strings.h"

namespace flexrpc {

namespace {

class Analyzer {
 public:
  Analyzer(InterfaceFile* file, DiagnosticSink* diags)
      : file_(file), diags_(diags) {}

  bool Run() {
    CheckDuplicateInterfaces();
    FlattenInheritance();
    for (const InterfaceDecl& itf : file_->interfaces) {
      CheckInterface(itf);
    }
    return !diags_->HasErrors();
  }

 private:
  void Error(SourcePos pos, std::string message) {
    diags_->Error(file_->filename, pos, std::move(message));
  }

  void CheckDuplicateInterfaces() {
    std::unordered_set<std::string> seen;
    for (const InterfaceDecl& itf : file_->interfaces) {
      if (!seen.insert(itf.name).second) {
        Error(itf.pos,
              StrFormat("duplicate interface '%s'", itf.name.c_str()));
      }
    }
  }

  // Copies base-interface operations (recursively) ahead of each derived
  // interface's own operations, renumbering all opnums to keep them unique.
  // Works against a snapshot of the original declarations so that diamond
  // bases contribute exactly once even after earlier interfaces in the file
  // have already been flattened in place.
  void FlattenInheritance() {
    std::vector<InterfaceDecl> snapshot = file_->interfaces;
    std::unordered_map<std::string, const InterfaceDecl*> by_name;
    for (const InterfaceDecl& itf : snapshot) {
      by_name[itf.name] = &itf;
    }
    for (InterfaceDecl& itf : file_->interfaces) {
      if (itf.bases.empty()) {
        continue;
      }
      std::vector<OperationDecl> flattened;
      std::set<std::string> visited;
      bool ok = true;
      for (const std::string& base : itf.bases) {
        ok = CollectBaseOps(base, itf, by_name, &visited, &flattened) && ok;
      }
      if (!ok) {
        continue;
      }
      for (OperationDecl& op : itf.ops) {
        flattened.push_back(std::move(op));
      }
      for (size_t i = 0; i < flattened.size(); ++i) {
        flattened[i].opnum = static_cast<uint32_t>(i);
      }
      itf.ops = std::move(flattened);
      itf.bases.clear();
    }
  }

  bool CollectBaseOps(
      const std::string& base_name, const InterfaceDecl& derived,
      const std::unordered_map<std::string, const InterfaceDecl*>& by_name,
      std::set<std::string>* visited, std::vector<OperationDecl>* out) {
    if (base_name == derived.name) {
      Error(derived.pos, StrFormat("interface '%s' inherits from itself",
                                   derived.name.c_str()));
      return false;
    }
    if (!visited->insert(base_name).second) {
      return true;  // diamond inheritance: each base contributes once
    }
    auto it = by_name.find(base_name);
    if (it == by_name.end()) {
      Error(derived.pos, StrFormat("unknown base interface '%s'",
                                   base_name.c_str()));
      return false;
    }
    const InterfaceDecl* base = it->second;
    bool ok = true;
    for (const std::string& grand : base->bases) {
      ok = CollectBaseOps(grand, derived, by_name, visited, out) && ok;
    }
    for (const OperationDecl& op : base->ops) {
      out->push_back(op);
    }
    return ok;
  }

  void CheckInterface(const InterfaceDecl& itf) {
    std::unordered_set<std::string> op_names;
    std::unordered_set<uint32_t> op_numbers;
    for (const OperationDecl& op : itf.ops) {
      if (!op_names.insert(op.name).second) {
        Error(op.pos, StrFormat("duplicate operation '%s' in interface '%s'",
                                op.name.c_str(), itf.name.c_str()));
      }
      if (!op_numbers.insert(op.opnum).second) {
        Error(op.pos,
              StrFormat("duplicate procedure number %u in interface '%s'",
                        op.opnum, itf.name.c_str()));
      }
      CheckOperation(itf, op);
    }
  }

  void CheckOperation(const InterfaceDecl& itf, const OperationDecl& op) {
    std::unordered_set<std::string> param_names;
    for (const ParamDecl& param : op.params) {
      if (!param_names.insert(param.name).second) {
        Error(param.pos,
              StrFormat("duplicate parameter '%s' in operation '%s::%s'",
                        param.name.c_str(), itf.name.c_str(),
                        op.name.c_str()));
      }
      if (param.type->Resolve()->kind() == TypeKind::kVoid) {
        Error(param.pos,
              StrFormat("parameter '%s' may not have type void",
                        param.name.c_str()));
      }
      CheckValueType(param.type, param.pos, {});
    }
    if (op.result != nullptr) {
      CheckValueType(op.result, op.pos, {});
    }
  }

  // Rejects by-value recursion: a struct/union that (transitively) contains
  // itself by value has no finite wire size.
  void CheckValueType(const Type* type, SourcePos pos,
                      std::set<const Type*> active) {
    const Type* resolved = type->Resolve();
    if (!active.insert(resolved).second) {
      Error(pos, StrFormat("type '%s' recursively contains itself by value",
                           resolved->ToString().c_str()));
      return;
    }
    switch (resolved->kind()) {
      case TypeKind::kSequence:
      case TypeKind::kArray:
        CheckValueType(resolved->element(), pos, active);
        break;
      case TypeKind::kStruct:
        for (const StructField& f : resolved->fields()) {
          CheckValueType(f.type, pos, active);
        }
        break;
      case TypeKind::kUnion:
        for (const UnionArm& arm : resolved->arms()) {
          if (arm.type->Resolve()->kind() != TypeKind::kVoid) {
            CheckValueType(arm.type, pos, active);
          }
        }
        break;
      default:
        break;
    }
  }

  InterfaceFile* file_;
  DiagnosticSink* diags_;
};

}  // namespace

bool AnalyzeInterfaceFile(InterfaceFile* file, DiagnosticSink* diags) {
  return Analyzer(file, diags).Run();
}

}  // namespace flexrpc
