// Sun RPC language (rpcgen ".x") front-end.
//
// Parses the RPC-language subset needed for Sun RPC services like NFS:
// program/version blocks, struct/enum/union/typedef/const declarations,
// `opaque` fixed and variable-length data, bounded strings, and procedure
// declarations with explicit procedure numbers. Each `version` block becomes
// one InterfaceDecl carrying its program and version numbers.

#ifndef FLEXRPC_SRC_IDL_SUNRPC_PARSER_H_
#define FLEXRPC_SRC_IDL_SUNRPC_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/idl/ast.h"
#include "src/support/diag.h"

namespace flexrpc {

// Parses Sun RPC language text into an InterfaceFile. Returns null and
// reports to `diags` on error.
std::unique_ptr<InterfaceFile> ParseSunRpc(std::string_view source,
                                           std::string filename,
                                           DiagnosticSink* diags);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IDL_SUNRPC_PARSER_H_
