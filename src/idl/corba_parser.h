// CORBA IDL front-end.
//
// Parses the CORBA 1.1 IDL subset exercised by the paper: modules,
// interfaces (with inheritance), operations with in/out/inout parameters,
// typedef/struct/enum/union/const declarations, strings, bounded and
// unbounded sequences, and fixed arrays.

#ifndef FLEXRPC_SRC_IDL_CORBA_PARSER_H_
#define FLEXRPC_SRC_IDL_CORBA_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/idl/ast.h"
#include "src/support/diag.h"
#include "src/support/status.h"

namespace flexrpc {

// Parses CORBA IDL text into an InterfaceFile. Parse errors go to `diags`;
// the returned pointer is null when any error was reported.
std::unique_ptr<InterfaceFile> ParseCorbaIdl(std::string_view source,
                                             std::string filename,
                                             DiagnosticSink* diags);

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IDL_CORBA_PARSER_H_
