#include "src/idl/corba_parser.h"

#include <unordered_map>

#include "src/idl/lexer.h"
#include "src/support/strings.h"

namespace flexrpc {

namespace {

// IDL keywords that may not be used as identifiers for user declarations.
bool IsReservedWord(std::string_view word) {
  static const char* kReserved[] = {
      "module",  "interface", "typedef", "struct", "enum",   "union",
      "switch",  "case",      "default", "const",  "oneway", "in",
      "out",     "inout",     "void",    "boolean", "octet",  "char",
      "short",   "long",      "unsigned", "float",  "double", "string",
      "sequence"};
  for (const char* r : kReserved) {
    if (word == r) {
      return true;
    }
  }
  return false;
}

class CorbaParser {
 public:
  CorbaParser(std::string_view source, std::string filename,
              DiagnosticSink* diags)
      : file_(std::make_unique<InterfaceFile>()),
        cursor_(Tokenize(source, filename, diags), filename, diags) {
    file_->filename = std::move(filename);
  }

  std::unique_ptr<InterfaceFile> Run() {
    while (!cursor_.AtEnd()) {
      if (cursor_.TryConsumeIdent("module")) {
        ParseModule();
      } else {
        ParseDefinition();
      }
    }
    if (cursor_.diags()->HasErrors()) {
      return nullptr;
    }
    AssignOpNumbers();
    return std::move(file_);
  }

 private:
  TypeTable& types() { return file_->types; }

  void AssignOpNumbers() {
    for (InterfaceDecl& itf : file_->interfaces) {
      uint32_t next = 0;
      for (OperationDecl& op : itf.ops) {
        // Sun front-end assigns explicit procedure numbers; keep them.
        if (op.opnum == 0) {
          op.opnum = next;
        }
        next = op.opnum + 1;
      }
    }
  }

  void ParseModule() {
    std::string name = cursor_.ExpectIdentifier("after 'module'");
    if (!file_->module_name.empty()) {
      cursor_.Error("nested modules are not supported");
    }
    file_->module_name = name;
    cursor_.Expect(TokenKind::kLBrace, "to open module body");
    while (!cursor_.AtEnd() && !cursor_.Peek().Is(TokenKind::kRBrace)) {
      ParseDefinition();
    }
    cursor_.Expect(TokenKind::kRBrace, "to close module body");
    cursor_.TryConsume(TokenKind::kSemicolon);
  }

  void ParseDefinition() {
    const Token& tok = cursor_.Peek();
    if (tok.IsIdent("interface")) {
      ParseInterface();
    } else if (tok.IsIdent("typedef")) {
      ParseTypedef();
    } else if (tok.IsIdent("struct")) {
      ParseStruct();
    } else if (tok.IsIdent("enum")) {
      ParseEnum();
    } else if (tok.IsIdent("union")) {
      ParseUnion();
    } else if (tok.IsIdent("const")) {
      ParseConst();
    } else {
      cursor_.Error(StrFormat("expected a definition, found '%s'",
                              std::string(tok.text).c_str()));
      cursor_.SkipPast(TokenKind::kSemicolon);
    }
  }

  void ParseInterface() {
    SourcePos pos = cursor_.Peek().pos;
    cursor_.Next();  // 'interface'
    std::string name = cursor_.ExpectIdentifier("after 'interface'");
    // Forward declaration: interface Foo;
    if (cursor_.TryConsume(TokenKind::kSemicolon)) {
      if (types().FindNamed(name) == nullptr) {
        types().NewObjRef(name);
      }
      return;
    }

    InterfaceDecl itf;
    itf.name = name;
    itf.pos = pos;
    if (types().FindNamed(name) == nullptr) {
      types().NewObjRef(name);
    }

    if (cursor_.TryConsume(TokenKind::kColon)) {
      do {
        itf.bases.push_back(cursor_.ExpectIdentifier("as base interface"));
      } while (cursor_.TryConsume(TokenKind::kComma));
    }

    cursor_.Expect(TokenKind::kLBrace, "to open interface body");
    while (!cursor_.AtEnd() && !cursor_.Peek().Is(TokenKind::kRBrace)) {
      const Token& tok = cursor_.Peek();
      if (tok.IsIdent("typedef")) {
        ParseTypedef();
      } else if (tok.IsIdent("struct")) {
        ParseStruct();
      } else if (tok.IsIdent("enum")) {
        ParseEnum();
      } else if (tok.IsIdent("union")) {
        ParseUnion();
      } else if (tok.IsIdent("const")) {
        ParseConst();
      } else {
        ParseOperation(&itf);
      }
    }
    cursor_.Expect(TokenKind::kRBrace, "to close interface body");
    cursor_.Expect(TokenKind::kSemicolon, "after interface");
    file_->interfaces.push_back(std::move(itf));
  }

  void ParseOperation(InterfaceDecl* itf) {
    OperationDecl op;
    op.pos = cursor_.Peek().pos;
    op.oneway = cursor_.TryConsumeIdent("oneway");
    op.result = ParseTypeSpec();
    if (op.result == nullptr) {
      cursor_.SkipPast(TokenKind::kSemicolon);
      return;
    }
    op.name = cursor_.ExpectIdentifier("as operation name");
    if (op.name.empty()) {
      cursor_.SkipPast(TokenKind::kSemicolon);
      return;
    }
    cursor_.Expect(TokenKind::kLParen, "to open parameter list");
    if (!cursor_.Peek().Is(TokenKind::kRParen)) {
      do {
        ParamDecl param;
        param.pos = cursor_.Peek().pos;
        if (cursor_.TryConsumeIdent("in")) {
          param.dir = ParamDir::kIn;
        } else if (cursor_.TryConsumeIdent("out")) {
          param.dir = ParamDir::kOut;
        } else if (cursor_.TryConsumeIdent("inout")) {
          param.dir = ParamDir::kInOut;
        } else {
          cursor_.Error("parameter must start with in/out/inout");
        }
        param.type = ParseTypeSpec();
        if (param.type == nullptr) {
          cursor_.SkipPast(TokenKind::kSemicolon);
          return;
        }
        param.name = cursor_.ExpectIdentifier("as parameter name");
        op.params.push_back(std::move(param));
      } while (cursor_.TryConsume(TokenKind::kComma));
    }
    cursor_.Expect(TokenKind::kRParen, "to close parameter list");
    cursor_.Expect(TokenKind::kSemicolon, "after operation");
    if (op.oneway) {
      bool has_outputs = op.result->Resolve()->kind() != TypeKind::kVoid;
      for (const ParamDecl& p : op.params) {
        has_outputs = has_outputs || p.dir != ParamDir::kIn;
      }
      if (has_outputs) {
        cursor_.ErrorAt(op.pos,
                        "oneway operation may not have results or "
                        "out/inout parameters");
      }
    }
    itf->ops.push_back(std::move(op));
  }

  void ParseTypedef() {
    cursor_.Next();  // 'typedef'
    const Type* base = ParseTypeSpec();
    if (base == nullptr) {
      cursor_.SkipPast(TokenKind::kSemicolon);
      return;
    }
    do {
      SourcePos pos = cursor_.Peek().pos;
      std::string name = cursor_.ExpectIdentifier("as typedef name");
      const Type* actual = ParseArraySuffix(base);
      if (IsReservedWord(name) || types().NewAlias(name, actual) == nullptr) {
        cursor_.ErrorAt(pos, StrFormat("redefinition of type '%s'",
                                       name.c_str()));
      }
    } while (cursor_.TryConsume(TokenKind::kComma));
    cursor_.Expect(TokenKind::kSemicolon, "after typedef");
  }

  void ParseStruct() {
    SourcePos pos = cursor_.Peek().pos;
    cursor_.Next();  // 'struct'
    std::string name = cursor_.ExpectIdentifier("after 'struct'");
    Type* s = types().NewStruct(name);
    if (s == nullptr) {
      cursor_.ErrorAt(pos,
                      StrFormat("redefinition of type '%s'", name.c_str()));
    }
    cursor_.Expect(TokenKind::kLBrace, "to open struct body");
    while (!cursor_.AtEnd() && !cursor_.Peek().Is(TokenKind::kRBrace)) {
      const Type* field_type = ParseTypeSpec();
      if (field_type == nullptr) {
        cursor_.SkipPast(TokenKind::kSemicolon);
        continue;
      }
      do {
        std::string field_name = cursor_.ExpectIdentifier("as field name");
        const Type* actual = ParseArraySuffix(field_type);
        if (s != nullptr) {
          for (const StructField& f : s->fields()) {
            if (f.name == field_name) {
              cursor_.Error(StrFormat("duplicate field '%s' in struct '%s'",
                                      field_name.c_str(), name.c_str()));
            }
          }
          types().AddField(s, std::move(field_name), actual);
        }
      } while (cursor_.TryConsume(TokenKind::kComma));
      cursor_.Expect(TokenKind::kSemicolon, "after struct field");
    }
    cursor_.Expect(TokenKind::kRBrace, "to close struct body");
    cursor_.Expect(TokenKind::kSemicolon, "after struct");
  }

  void ParseEnum() {
    SourcePos pos = cursor_.Peek().pos;
    cursor_.Next();  // 'enum'
    std::string name = cursor_.ExpectIdentifier("after 'enum'");
    Type* e = types().NewEnum(name);
    if (e == nullptr) {
      cursor_.ErrorAt(pos,
                      StrFormat("redefinition of type '%s'", name.c_str()));
    }
    cursor_.Expect(TokenKind::kLBrace, "to open enum body");
    uint32_t next_value = 0;
    do {
      std::string member = cursor_.ExpectIdentifier("as enum member");
      uint32_t value = next_value;
      if (cursor_.TryConsume(TokenKind::kEquals)) {
        value = static_cast<uint32_t>(ParseConstExpr());
      }
      next_value = value + 1;
      if (e != nullptr) {
        types().AddEnumMember(e, member, value);
        enum_values_[member] = value;
      }
    } while (cursor_.TryConsume(TokenKind::kComma));
    cursor_.Expect(TokenKind::kRBrace, "to close enum body");
    cursor_.Expect(TokenKind::kSemicolon, "after enum");
  }

  void ParseUnion() {
    SourcePos pos = cursor_.Peek().pos;
    cursor_.Next();  // 'union'
    std::string name = cursor_.ExpectIdentifier("after 'union'");
    cursor_.TryConsumeIdent("switch");
    cursor_.Expect(TokenKind::kLParen, "after 'switch'");
    const Type* disc = ParseTypeSpec();
    cursor_.Expect(TokenKind::kRParen, "after union discriminant");
    Type* u = types().NewUnion(name, disc);
    if (u == nullptr) {
      cursor_.ErrorAt(pos,
                      StrFormat("redefinition of type '%s'", name.c_str()));
    }
    cursor_.Expect(TokenKind::kLBrace, "to open union body");
    while (!cursor_.AtEnd() && !cursor_.Peek().Is(TokenKind::kRBrace)) {
      bool is_default = false;
      uint32_t label = 0;
      if (cursor_.TryConsumeIdent("default")) {
        is_default = true;
        cursor_.Expect(TokenKind::kColon, "after 'default'");
      } else if (cursor_.TryConsumeIdent("case")) {
        label = static_cast<uint32_t>(ParseConstExpr());
        cursor_.Expect(TokenKind::kColon, "after case label");
      } else {
        cursor_.Error("expected 'case' or 'default' in union body");
        cursor_.SkipPast(TokenKind::kSemicolon);
        continue;
      }
      const Type* arm_type = ParseTypeSpec();
      std::string arm_name = cursor_.ExpectIdentifier("as union arm name");
      cursor_.Expect(TokenKind::kSemicolon, "after union arm");
      if (u != nullptr && arm_type != nullptr) {
        types().AddUnionArm(u, label, is_default, std::move(arm_name),
                            arm_type);
      }
    }
    cursor_.Expect(TokenKind::kRBrace, "to close union body");
    cursor_.Expect(TokenKind::kSemicolon, "after union");
  }

  void ParseConst() {
    cursor_.Next();  // 'const'
    ConstDecl decl;
    decl.pos = cursor_.Peek().pos;
    decl.type = ParseTypeSpec();
    decl.name = cursor_.ExpectIdentifier("as constant name");
    cursor_.Expect(TokenKind::kEquals, "in constant definition");
    decl.value = ParseConstExpr();
    cursor_.Expect(TokenKind::kSemicolon, "after constant");
    const_values_[decl.name] = decl.value;
    file_->constants.push_back(std::move(decl));
  }

  // Constant expressions: literals, previously defined constant or enum
  // names, with + and - (sufficient for the IDLs in this repository).
  uint64_t ParseConstExpr() {
    uint64_t value = ParseConstTerm();
    while (true) {
      if (cursor_.TryConsume(TokenKind::kPlus)) {
        value += ParseConstTerm();
      } else if (cursor_.TryConsume(TokenKind::kMinus)) {
        value -= ParseConstTerm();
      } else {
        return value;
      }
    }
  }

  uint64_t ParseConstTerm() {
    const Token& tok = cursor_.Peek();
    if (tok.Is(TokenKind::kIntLiteral)) {
      return cursor_.Next().int_value;
    }
    if (tok.Is(TokenKind::kIdentifier)) {
      std::string name(cursor_.Next().text);
      auto it = const_values_.find(name);
      if (it != const_values_.end()) {
        return it->second;
      }
      auto eit = enum_values_.find(name);
      if (eit != enum_values_.end()) {
        return eit->second;
      }
      cursor_.Error(StrFormat("unknown constant '%s'", name.c_str()));
      return 0;
    }
    cursor_.Error("expected constant expression");
    cursor_.Next();
    return 0;
  }

  // Parses `name[N][M]...` suffixes, wrapping `base` in array types
  // outermost-first (IDL declarator order).
  const Type* ParseArraySuffix(const Type* base) {
    std::vector<uint32_t> dims;
    while (cursor_.TryConsume(TokenKind::kLBracket)) {
      dims.push_back(static_cast<uint32_t>(ParseConstExpr()));
      cursor_.Expect(TokenKind::kRBracket, "to close array dimension");
    }
    const Type* t = base;
    for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
      t = types().Array(t, *it);
    }
    return t;
  }

  const Type* ParseTypeSpec() {
    const Token& tok = cursor_.Peek();
    if (!tok.Is(TokenKind::kIdentifier)) {
      cursor_.Error("expected a type");
      return nullptr;
    }
    if (tok.IsIdent("void")) {
      cursor_.Next();
      return types().Void();
    }
    if (tok.IsIdent("boolean")) {
      cursor_.Next();
      return types().Bool();
    }
    if (tok.IsIdent("octet")) {
      cursor_.Next();
      return types().Octet();
    }
    if (tok.IsIdent("char")) {
      cursor_.Next();
      return types().Char();
    }
    if (tok.IsIdent("short")) {
      cursor_.Next();
      return types().I16();
    }
    if (tok.IsIdent("long")) {
      cursor_.Next();
      if (cursor_.TryConsumeIdent("long")) {
        return types().I64();
      }
      return types().I32();
    }
    if (tok.IsIdent("unsigned")) {
      cursor_.Next();
      if (cursor_.TryConsumeIdent("short")) {
        return types().U16();
      }
      if (cursor_.TryConsumeIdent("long")) {
        if (cursor_.TryConsumeIdent("long")) {
          return types().U64();
        }
        return types().U32();
      }
      cursor_.Error("expected 'short' or 'long' after 'unsigned'");
      return nullptr;
    }
    if (tok.IsIdent("float")) {
      cursor_.Next();
      return types().F32();
    }
    if (tok.IsIdent("double")) {
      cursor_.Next();
      return types().F64();
    }
    if (tok.IsIdent("string")) {
      cursor_.Next();
      uint32_t bound = 0;
      if (cursor_.TryConsume(TokenKind::kLAngle)) {
        bound = static_cast<uint32_t>(ParseConstExpr());
        cursor_.Expect(TokenKind::kRAngle, "to close string bound");
      }
      return types().String(bound);
    }
    if (tok.IsIdent("sequence")) {
      cursor_.Next();
      cursor_.Expect(TokenKind::kLAngle, "after 'sequence'");
      const Type* element = ParseTypeSpec();
      if (element == nullptr) {
        return nullptr;
      }
      uint32_t bound = 0;
      if (cursor_.TryConsume(TokenKind::kComma)) {
        bound = static_cast<uint32_t>(ParseConstExpr());
      }
      cursor_.Expect(TokenKind::kRAngle, "to close sequence");
      return types().Sequence(element, bound);
    }
    // A named type reference.
    std::string name(cursor_.Next().text);
    const Type* named = types().FindNamed(name);
    if (named == nullptr) {
      cursor_.Error(StrFormat("unknown type '%s'", name.c_str()));
      return nullptr;
    }
    return named;
  }

  std::unique_ptr<InterfaceFile> file_;
  TokenCursor cursor_;
  std::unordered_map<std::string, uint64_t> const_values_;
  std::unordered_map<std::string, uint32_t> enum_values_;
};

}  // namespace

std::unique_ptr<InterfaceFile> ParseCorbaIdl(std::string_view source,
                                             std::string filename,
                                             DiagnosticSink* diags) {
  return CorbaParser(source, std::move(filename), diags).Run();
}

}  // namespace flexrpc
