#include "src/idl/lexer.h"

#include <cctype>

#include "src/support/strings.h"

namespace flexrpc {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of file";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLAngle:
      return "'<'";
    case TokenKind::kRAngle:
      return "'>'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kScope:
      return "'::'";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kDot:
      return "'.'";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  Lexer(std::string_view source, std::string_view file, DiagnosticSink* diags)
      : source_(source), file_(file), diags_(diags) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token tok = Scan();
      tokens.push_back(tok);
      if (tok.kind == TokenKind::kEof) {
        break;
      }
    }
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Cur() const { return AtEnd() ? '\0' : source_[pos_]; }
  char Ahead(size_t n = 1) const {
    return pos_ + n < source_.size() ? source_[pos_ + n] : '\0';
  }

  void Advance() {
    if (AtEnd()) {
      return;
    }
    if (source_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  SourcePos Here() const { return SourcePos{line_, column_}; }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Cur();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Ahead() == '/') {
        while (!AtEnd() && Cur() != '\n') {
          Advance();
        }
      } else if (c == '/' && Ahead() == '*') {
        SourcePos start = Here();
        Advance();
        Advance();
        while (!AtEnd() && !(Cur() == '*' && Ahead() == '/')) {
          Advance();
        }
        if (AtEnd()) {
          diags_->Error(std::string(file_), start, "unterminated comment");
        } else {
          Advance();
          Advance();
        }
      } else if (c == '#') {
        // Preprocessor-style lines (rpcgen inputs) are ignored wholesale.
        while (!AtEnd() && Cur() != '\n') {
          Advance();
        }
      } else {
        break;
      }
    }
  }

  Token Scan() {
    Token tok;
    tok.pos = Here();
    if (AtEnd()) {
      tok.kind = TokenKind::kEof;
      tok.text = source_.substr(source_.size(), 0);
      return tok;
    }
    char c = Cur();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ScanIdentifier();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return ScanNumber();
    }
    if (c == '"') {
      return ScanString();
    }
    return ScanPunct();
  }

  Token ScanIdentifier() {
    Token tok;
    tok.pos = Here();
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Cur())) ||
                        Cur() == '_')) {
      Advance();
    }
    tok.kind = TokenKind::kIdentifier;
    tok.text = source_.substr(start, pos_ - start);
    return tok;
  }

  Token ScanNumber() {
    Token tok;
    tok.pos = Here();
    size_t start = pos_;
    uint64_t value = 0;
    if (Cur() == '0' && (Ahead() == 'x' || Ahead() == 'X')) {
      Advance();
      Advance();
      while (!AtEnd() &&
             std::isxdigit(static_cast<unsigned char>(Cur()))) {
        char c = Cur();
        uint64_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint64_t>(c - '0');
        } else {
          digit = static_cast<uint64_t>(
                      std::tolower(static_cast<unsigned char>(c)) - 'a') +
                  10;
        }
        value = value * 16 + digit;
        Advance();
      }
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Cur()))) {
        value = value * 10 + static_cast<uint64_t>(Cur() - '0');
        Advance();
      }
    }
    tok.kind = TokenKind::kIntLiteral;
    tok.text = source_.substr(start, pos_ - start);
    tok.int_value = value;
    return tok;
  }

  Token ScanString() {
    Token tok;
    tok.pos = Here();
    size_t start = pos_;
    Advance();  // opening quote
    std::string value;
    while (!AtEnd() && Cur() != '"') {
      char c = Cur();
      if (c == '\\') {
        Advance();
        switch (Cur()) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case '\\':
            value += '\\';
            break;
          case '"':
            value += '"';
            break;
          default:
            value += Cur();
            break;
        }
        Advance();
      } else {
        value += c;
        Advance();
      }
    }
    if (AtEnd()) {
      diags_->Error(std::string(file_), tok.pos, "unterminated string");
    } else {
      Advance();  // closing quote
    }
    tok.kind = TokenKind::kStringLiteral;
    tok.text = source_.substr(start, pos_ - start);
    tok.string_value = std::move(value);
    return tok;
  }

  Token ScanPunct() {
    Token tok;
    tok.pos = Here();
    size_t start = pos_;
    char c = Cur();
    Advance();
    switch (c) {
      case '{':
        tok.kind = TokenKind::kLBrace;
        break;
      case '}':
        tok.kind = TokenKind::kRBrace;
        break;
      case '(':
        tok.kind = TokenKind::kLParen;
        break;
      case ')':
        tok.kind = TokenKind::kRParen;
        break;
      case '[':
        tok.kind = TokenKind::kLBracket;
        break;
      case ']':
        tok.kind = TokenKind::kRBracket;
        break;
      case '<':
        tok.kind = TokenKind::kLAngle;
        break;
      case '>':
        tok.kind = TokenKind::kRAngle;
        break;
      case ',':
        tok.kind = TokenKind::kComma;
        break;
      case ';':
        tok.kind = TokenKind::kSemicolon;
        break;
      case ':':
        if (Cur() == ':') {
          Advance();
          tok.kind = TokenKind::kScope;
        } else {
          tok.kind = TokenKind::kColon;
        }
        break;
      case '=':
        tok.kind = TokenKind::kEquals;
        break;
      case '*':
        tok.kind = TokenKind::kStar;
        break;
      case '+':
        tok.kind = TokenKind::kPlus;
        break;
      case '-':
        tok.kind = TokenKind::kMinus;
        break;
      case '/':
        tok.kind = TokenKind::kSlash;
        break;
      case '%':
        tok.kind = TokenKind::kPercent;
        break;
      case '&':
        tok.kind = TokenKind::kAmp;
        break;
      case '.':
        tok.kind = TokenKind::kDot;
        break;
      default:
        diags_->Error(std::string(file_), tok.pos,
                      StrFormat("unexpected character '%c'", c));
        // Treat as EOF-safe filler; caller loop continues scanning.
        return Scan();
    }
    tok.text = source_.substr(start, pos_ - start);
    return tok;
  }

  std::string_view source_;
  std::string_view file_;
  DiagnosticSink* diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(std::string_view source, std::string_view file,
                            DiagnosticSink* diags) {
  return Lexer(source, file, diags).Run();
}

bool TokenCursor::Expect(TokenKind kind, std::string_view context) {
  if (Peek().Is(kind)) {
    Next();
    return true;
  }
  Error(StrFormat("expected %s %s, found %s",
                  std::string(TokenKindName(kind)).c_str(),
                  std::string(context).c_str(),
                  std::string(TokenKindName(Peek().kind)).c_str()));
  return false;
}

std::string TokenCursor::ExpectIdentifier(std::string_view context) {
  if (Peek().Is(TokenKind::kIdentifier)) {
    return std::string(Next().text);
  }
  Error(StrFormat("expected identifier %s, found %s",
                  std::string(context).c_str(),
                  std::string(TokenKindName(Peek().kind)).c_str()));
  return std::string();
}

void TokenCursor::SkipPast(TokenKind sync) {
  while (!AtEnd()) {
    if (Next().Is(sync)) {
      return;
    }
  }
}

}  // namespace flexrpc
