// Tokenizer shared by the CORBA IDL, Sun RPC language, and PDL front-ends.
//
// Keywords are not distinguished at the lexical level; each parser decides
// which identifiers are reserved, which lets one lexer serve three grammars
// (and matches the paper's PDL rule that "length_is" is reserved only inside
// presentation brackets).

#ifndef FLEXRPC_SRC_IDL_LEXER_H_
#define FLEXRPC_SRC_IDL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/diag.h"

namespace flexrpc {

enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kStringLiteral,
  // Punctuation (one token kind each keeps the parsers readable).
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kLAngle,     // <
  kRAngle,     // >
  kComma,      // ,
  kSemicolon,  // ;
  kColon,      // :
  kScope,      // ::
  kEquals,     // =
  kStar,       // *
  kPlus,       // +
  kMinus,      // -
  kSlash,      // /
  kPercent,    // %
  kAmp,        // &
  kDot,        // .
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string_view text;   // points into the source buffer
  uint64_t int_value = 0;  // valid for kIntLiteral
  std::string string_value;  // valid for kStringLiteral (escapes resolved)
  SourcePos pos;

  bool Is(TokenKind k) const { return kind == k; }
  bool IsIdent(std::string_view name) const {
    return kind == TokenKind::kIdentifier && text == name;
  }
};

// Tokenizes `source` completely. Lexical errors are reported to `diags` and
// the offending characters skipped, so the token stream always ends in kEof.
// The returned tokens reference `source`, which must outlive them.
std::vector<Token> Tokenize(std::string_view source, std::string_view file,
                            DiagnosticSink* diags);

// A cursor over a token stream with the usual recursive-descent helpers.
class TokenCursor {
 public:
  TokenCursor(std::vector<Token> tokens, std::string file,
              DiagnosticSink* diags)
      : tokens_(std::move(tokens)), file_(std::move(file)), diags_(diags) {}

  const Token& Peek(int lookahead = 0) const {
    size_t idx = pos_ + static_cast<size_t>(lookahead);
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }

  const Token& Next() {
    const Token& tok = Peek();
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    } else {
      pos_ = tokens_.size() - 1;  // stay on EOF
    }
    return tok;
  }

  bool TryConsume(TokenKind kind) {
    if (Peek().Is(kind)) {
      Next();
      return true;
    }
    return false;
  }

  bool TryConsumeIdent(std::string_view name) {
    if (Peek().IsIdent(name)) {
      Next();
      return true;
    }
    return false;
  }

  // Consumes a token of `kind` or reports an error (returning false).
  bool Expect(TokenKind kind, std::string_view context);

  // Consumes an identifier token, returning its text; empty on error.
  std::string ExpectIdentifier(std::string_view context);

  void Error(std::string message) {
    diags_->Error(file_, Peek().pos, std::move(message));
  }
  void ErrorAt(SourcePos pos, std::string message) {
    diags_->Error(file_, pos, std::move(message));
  }

  bool AtEnd() const { return Peek().Is(TokenKind::kEof); }
  const std::string& file() const { return file_; }
  DiagnosticSink* diags() { return diags_; }

  // Skips tokens until one of `sync` (or EOF); used for error recovery.
  void SkipPast(TokenKind sync);

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string file_;
  DiagnosticSink* diags_;
};

}  // namespace flexrpc

#endif  // FLEXRPC_SRC_IDL_LEXER_H_
