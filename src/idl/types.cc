#include "src/idl/types.h"

#include <algorithm>
#include <cassert>

#include "src/support/strings.h"

namespace flexrpc {

bool IsFixedSizeKind(TypeKind kind) {
  switch (kind) {
    case TypeKind::kString:
    case TypeKind::kSequence:
    case TypeKind::kUnion:
      return false;
    default:
      return true;
  }
}

bool IsScalarKind(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBool:
    case TypeKind::kOctet:
    case TypeKind::kChar:
    case TypeKind::kI16:
    case TypeKind::kU16:
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kF32:
    case TypeKind::kF64:
      return true;
    default:
      return false;
  }
}

std::string_view TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kBool:
      return "boolean";
    case TypeKind::kOctet:
      return "octet";
    case TypeKind::kChar:
      return "char";
    case TypeKind::kI16:
      return "short";
    case TypeKind::kU16:
      return "unsigned short";
    case TypeKind::kI32:
      return "long";
    case TypeKind::kU32:
      return "unsigned long";
    case TypeKind::kI64:
      return "long long";
    case TypeKind::kU64:
      return "unsigned long long";
    case TypeKind::kF32:
      return "float";
    case TypeKind::kF64:
      return "double";
    case TypeKind::kString:
      return "string";
    case TypeKind::kSequence:
      return "sequence";
    case TypeKind::kArray:
      return "array";
    case TypeKind::kStruct:
      return "struct";
    case TypeKind::kEnum:
      return "enum";
    case TypeKind::kUnion:
      return "union";
    case TypeKind::kObjRef:
      return "interface";
    case TypeKind::kAlias:
      return "typedef";
  }
  return "?";
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kString:
      return bound_ == 0 ? "string" : StrFormat("string<%u>", bound_);
    case TypeKind::kSequence:
      return bound_ == 0
                 ? StrFormat("sequence<%s>", element_->ToString().c_str())
                 : StrFormat("sequence<%s,%u>", element_->ToString().c_str(),
                             bound_);
    case TypeKind::kArray:
      return StrFormat("%s[%u]", element_->ToString().c_str(), bound_);
    case TypeKind::kStruct:
      return "struct " + name_;
    case TypeKind::kEnum:
      return "enum " + name_;
    case TypeKind::kUnion:
      return "union " + name_;
    case TypeKind::kObjRef:
      return "interface " + name_;
    case TypeKind::kAlias:
      return name_;
    default:
      return std::string(TypeKindName(kind_));
  }
}

size_t Type::NativeSize() const {
  if (cached_size_ == kLayoutUncached) {
    cached_size_ = ComputeNativeSize();
  }
  return cached_size_;
}

size_t Type::NativeAlign() const {
  if (cached_align_ == kLayoutUncached) {
    cached_align_ = ComputeNativeAlign();
  }
  return cached_align_;
}

size_t Type::FieldOffset(size_t index) const {
  assert(kind_ == TypeKind::kStruct);
  if (cached_field_offsets_.empty() && !fields_.empty()) {
    size_t offset = 0;
    cached_field_offsets_.reserve(fields_.size());
    for (const StructField& f : fields_) {
      size_t align = f.type->NativeAlign();
      offset = (offset + align - 1) & ~(align - 1);
      cached_field_offsets_.push_back(offset);
      offset += f.type->NativeSize();
    }
  }
  assert(index < cached_field_offsets_.size());
  return cached_field_offsets_[index];
}

size_t Type::ComputeNativeSize() const {
  switch (kind_) {
    case TypeKind::kVoid:
      return 0;
    case TypeKind::kBool:
    case TypeKind::kOctet:
    case TypeKind::kChar:
      return 1;
    case TypeKind::kI16:
    case TypeKind::kU16:
      return 2;
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kF32:
    case TypeKind::kEnum:
      return 4;
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kF64:
      return 8;
    case TypeKind::kString:
      return sizeof(char*);  // char* in the default presentation
    case TypeKind::kSequence:
      // CORBA C mapping: SeqRep{maximum, length, buffer} = 16 bytes.
      return 2 * sizeof(uint32_t) + sizeof(void*);
    case TypeKind::kArray:
      return element_->NativeSize() * bound_;
    case TypeKind::kStruct: {
      size_t size = 0;
      for (const StructField& f : fields_) {
        size_t align = f.type->NativeAlign();
        size = (size + align - 1) & ~(align - 1);
        size += f.type->NativeSize();
      }
      size_t align = NativeAlign();
      return (size + align - 1) & ~(align - 1);
    }
    case TypeKind::kUnion: {
      size_t size = 0;
      for (const UnionArm& arm : arms_) {
        size = std::max(size, arm.type->NativeSize());
      }
      size_t align = NativeAlign();
      size_t disc = (4 + align - 1) & ~(align - 1);
      return (disc + size + align - 1) & ~(align - 1);
    }
    case TypeKind::kObjRef:
      return sizeof(uint64_t);  // port name / object handle
    case TypeKind::kAlias:
      return element_->NativeSize();
  }
  return 0;
}

size_t Type::ComputeNativeAlign() const {
  switch (kind_) {
    case TypeKind::kVoid:
      return 1;
    case TypeKind::kBool:
    case TypeKind::kOctet:
    case TypeKind::kChar:
      return 1;
    case TypeKind::kI16:
    case TypeKind::kU16:
      return 2;
    case TypeKind::kI32:
    case TypeKind::kU32:
    case TypeKind::kF32:
    case TypeKind::kEnum:
      return 4;
    case TypeKind::kI64:
    case TypeKind::kU64:
    case TypeKind::kF64:
    case TypeKind::kObjRef:
      return 8;
    case TypeKind::kString:
    case TypeKind::kSequence:
      return alignof(void*);
    case TypeKind::kArray:
      return element_->NativeAlign();
    case TypeKind::kStruct: {
      size_t align = 1;
      for (const StructField& f : fields_) {
        align = std::max(align, f.type->NativeAlign());
      }
      return align;
    }
    case TypeKind::kUnion: {
      size_t align = 4;
      for (const UnionArm& arm : arms_) {
        align = std::max(align, arm.type->NativeAlign());
      }
      return align;
    }
    case TypeKind::kAlias:
      return element_->NativeAlign();
  }
  return 1;
}

TypeTable::TypeTable() {
  void_ = MakePrimitive(TypeKind::kVoid);
  bool_ = MakePrimitive(TypeKind::kBool);
  octet_ = MakePrimitive(TypeKind::kOctet);
  char_ = MakePrimitive(TypeKind::kChar);
  i16_ = MakePrimitive(TypeKind::kI16);
  u16_ = MakePrimitive(TypeKind::kU16);
  i32_ = MakePrimitive(TypeKind::kI32);
  u32_ = MakePrimitive(TypeKind::kU32);
  i64_ = MakePrimitive(TypeKind::kI64);
  u64_ = MakePrimitive(TypeKind::kU64);
  f32_ = MakePrimitive(TypeKind::kF32);
  f64_ = MakePrimitive(TypeKind::kF64);
}

Type* TypeTable::MakeType(TypeKind kind) {
  auto owned = std::unique_ptr<Type>(new Type());
  owned->kind_ = kind;
  Type* raw = owned.get();
  all_.push_back(std::move(owned));
  return raw;
}

const Type* TypeTable::MakePrimitive(TypeKind kind) {
  return MakeType(kind);
}

const Type* TypeTable::String(uint32_t bound) {
  std::string key = StrFormat("str:%u", bound);
  auto it = constructed_.find(key);
  if (it != constructed_.end()) {
    return it->second;
  }
  Type* t = MakeType(TypeKind::kString);
  t->bound_ = bound;
  constructed_[key] = t;
  return t;
}

const Type* TypeTable::Sequence(const Type* element, uint32_t bound) {
  std::string key = StrFormat("seq:%p:%u", static_cast<const void*>(element),
                              bound);
  auto it = constructed_.find(key);
  if (it != constructed_.end()) {
    return it->second;
  }
  Type* t = MakeType(TypeKind::kSequence);
  t->element_ = element;
  t->bound_ = bound;
  constructed_[key] = t;
  return t;
}

const Type* TypeTable::Array(const Type* element, uint32_t count) {
  std::string key = StrFormat("arr:%p:%u", static_cast<const void*>(element),
                              count);
  auto it = constructed_.find(key);
  if (it != constructed_.end()) {
    return it->second;
  }
  Type* t = MakeType(TypeKind::kArray);
  t->element_ = element;
  t->bound_ = count;
  constructed_[key] = t;
  return t;
}

Type* TypeTable::RegisterNamed(TypeKind kind, std::string name) {
  if (named_.count(name) != 0) {
    return nullptr;
  }
  Type* t = MakeType(kind);
  t->name_ = name;
  named_[std::move(name)] = t;
  return t;
}

Type* TypeTable::NewStruct(std::string name) {
  return RegisterNamed(TypeKind::kStruct, std::move(name));
}

Type* TypeTable::NewEnum(std::string name) {
  return RegisterNamed(TypeKind::kEnum, std::move(name));
}

Type* TypeTable::NewUnion(std::string name, const Type* discriminant,
                          std::string discriminant_name) {
  Type* t = RegisterNamed(TypeKind::kUnion, std::move(name));
  if (t != nullptr) {
    t->discriminant_ = discriminant;
    t->discriminant_name_ = std::move(discriminant_name);
  }
  return t;
}

const Type* TypeTable::NewObjRef(std::string name) {
  return RegisterNamed(TypeKind::kObjRef, std::move(name));
}

const Type* TypeTable::NewAlias(std::string name, const Type* target) {
  Type* t = RegisterNamed(TypeKind::kAlias, std::move(name));
  if (t != nullptr) {
    t->element_ = target;
  }
  return t;
}

void TypeTable::AddField(Type* struct_type, std::string name,
                         const Type* type) {
  assert(struct_type->kind_ == TypeKind::kStruct);
  struct_type->fields_.push_back(StructField{std::move(name), type});
}

void TypeTable::AddEnumMember(Type* enum_type, std::string name,
                              uint32_t value) {
  assert(enum_type->kind_ == TypeKind::kEnum);
  enum_type->members_.push_back(EnumMember{std::move(name), value});
}

void TypeTable::AddUnionArm(Type* union_type, uint32_t label, bool is_default,
                            std::string name, const Type* type) {
  assert(union_type->kind_ == TypeKind::kUnion);
  union_type->arms_.push_back(
      UnionArm{label, is_default, std::move(name), type});
}

std::vector<const Type*> TypeTable::NamedTypes() const {
  std::vector<const Type*> out;
  for (const auto& type : all_) {
    if (!type->name().empty()) {
      out.push_back(type.get());
    }
  }
  return out;
}

const Type* TypeTable::FindNamed(std::string_view name) const {
  auto it = named_.find(std::string(name));
  return it == named_.end() ? nullptr : it->second;
}

}  // namespace flexrpc
